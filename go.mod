module csaw

go 1.22
