package csaw

// The benchmark harness: one benchmark per table and figure of the paper.
// Each iteration runs the corresponding experiment end to end on the
// emulated internet (reduced sample counts; `cmd/csaw-experiments` runs the
// paper-sized versions) and republishes the experiment's key numbers as
// benchmark metrics, so `go test -bench` output records the reproduced
// shape next to wall-clock cost.

import (
	"sort"
	"testing"

	"csaw/internal/experiments"
)

// benchRuns shrinks per-series sample counts so a full -bench=. pass stays
// in CI territory; shapes are already stable at these sizes.
var benchRuns = map[string]int{
	"table1":   1,
	"table2":   2,
	"figure1a": 5,
	"figure1b": 10,
	"figure1c": 5,
	"figure2":  4,
	"table5":   3,
	"figure5a": 1,
	"figure5b": 12,
	"figure5c": 12,
	"figure6a": 6,
	"figure6b": 1,
	"table6":   4,
	"figure7a": 4,
	"figure7b": 4,
	"figure7c": 3,
	"table7":   16,
	"wild":     1,

	"classifier":           1,
	"ablation-selective":   5,
	"ablation-voting":      80,
	"ablation-multihoming": 6,
	"ablation-explore":     10,
	"ablation-fingerprint": 4,
	"fleet":                120,
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.Find(id)
	if r == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := r.Run(experiments.Options{Runs: benchRuns[id], Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = res
	}
	if last == nil {
		return
	}
	keys := make([]string, 0, len(last.Metrics))
	for k := range last.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Report a bounded number of headline metrics to keep output readable.
	for i, k := range keys {
		if i >= 8 {
			break
		}
		b.ReportMetric(last.Metrics[k], metricUnit(k))
	}
}

// metricUnit sanitizes an experiment metric key into a benchmark unit
// (no whitespace allowed).
func metricUnit(k string) string {
	out := make([]rune, 0, len(k))
	for _, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-', r == '/', r == '=':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Table 1: the ISP-A vs ISP-B filtering-mechanism matrix (§2.3).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Table 2: ping latencies to the static proxies.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Figure 1a: HTTPS/domain fronting vs static proxies (YouTube home page).
func BenchmarkFigure1a(b *testing.B) { benchExperiment(b, "figure1a") }

// Figure 1b: HTTPS vs Tor by exit-relay country.
func BenchmarkFigure1b(b *testing.B) { benchExperiment(b, "figure1b") }

// Figure 1c: Lantern vs "IP as hostname" behind a keyword filter.
func BenchmarkFigure1c(b *testing.B) { benchExperiment(b, "figure1c") }

// Figure 2: blocking-type fractions across eight surveyed ASes.
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }

// Table 5: average blocking-detection time per mechanism.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Figure 5a: serial vs parallel redundant requests on blocked pages.
func BenchmarkFigure5a(b *testing.B) { benchExperiment(b, "figure5a") }

// Figure 5b: redundancy modes on a small unblocked page under load.
func BenchmarkFigure5b(b *testing.B) { benchExperiment(b, "figure5b") }

// Figure 5c: redundancy modes on a larger unblocked page under load.
func BenchmarkFigure5c(b *testing.B) { benchExperiment(b, "figure5c") }

// Figure 6a: 1/2/3 redundant copies over separate Tor circuits.
func BenchmarkFigure6a(b *testing.B) { benchExperiment(b, "figure6a") }

// Figure 6b: local_DB record counts with and without URL aggregation.
func BenchmarkFigure6b(b *testing.B) { benchExperiment(b, "figure6b") }

// Table 6: median PLT versus the direct re-measurement probability p.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// Figure 7a: C-Saw vs Lantern vs Tor on a DNS-blocked page.
func BenchmarkFigure7a(b *testing.B) { benchExperiment(b, "figure7a") }

// Figure 7b: C-Saw vs Lantern vs Tor on an unblocked page.
func BenchmarkFigure7b(b *testing.B) { benchExperiment(b, "figure7b") }

// Figure 7c: C-Saw with Lantern vs with Tor under multi-stage blocking.
func BenchmarkFigure7c(b *testing.B) { benchExperiment(b, "figure7c") }

// Table 7: the pilot-deployment aggregates.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// §7.5: the November 2017 Twitter/Instagram blocking timeline.
func BenchmarkWild(b *testing.B) { benchExperiment(b, "wild") }

// §4.3.1: the two-phase block-page classifier's operating point.
func BenchmarkClassifier(b *testing.B) { benchExperiment(b, "classifier") }

// Ablations of the design choices DESIGN.md calls out.
func BenchmarkAblationSelectiveRedundancy(b *testing.B) {
	benchExperiment(b, "ablation-selective")
}

func BenchmarkAblationVoting(b *testing.B) { benchExperiment(b, "ablation-voting") }

func BenchmarkAblationMultihoming(b *testing.B) {
	benchExperiment(b, "ablation-multihoming")
}

func BenchmarkAblationExplore(b *testing.B) { benchExperiment(b, "ablation-explore") }

func BenchmarkAblationFingerprint(b *testing.B) {
	benchExperiment(b, "ablation-fingerprint")
}

// The population-scale fleet workload (internal/fleet); cmd/csaw-fleet and
// the BenchmarkFleet* suite in internal/fleet run the full-size versions.
func BenchmarkFleetExperiment(b *testing.B) { benchExperiment(b, "fleet") }
