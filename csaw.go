// Package csaw is the public API of this C-Saw reproduction — the system of
// "Incentivizing Censorship Measurements via Circumvention" (Nisar, Kashaf,
// Qazi, Uzmi; SIGCOMM 2018).
//
// C-Saw is a client-side proxy that measures web censorship using only the
// URLs its user actually visits and uses those measurements — its own and
// the crowd's, shared through a global database — to pick the cheapest
// working circumvention method per URL: local fixes (public DNS, HTTPS,
// domain fronting, IP-as-hostname) before relay methods (Lantern, Tor,
// static proxies). Faster page loads are the incentive that recruits
// measurement vantage points.
//
// Everything here runs against an emulated internet (see DESIGN.md for the
// substitutions): a virtual-time network with censoring ISPs, DNS/HTTP/TLS
// stacks, and simulated Tor/Lantern/static-proxy ecosystems. The same
// client code would run over real sockets given a wall clock and real
// dialers.
//
// Quick start:
//
//	w, _ := csaw.NewWorld(csaw.WorldOptions{Scale: 300, Seed: 1})
//	ispA, _, _ := w.CaseStudy() // Table-1 Pakistan scenario
//	host := w.NewClientHost("me", ispA)
//	client, _ := csaw.NewClient(w.ClientConfig(host, 1))
//	defer client.Close()
//	res := client.FetchURL(ctx, "www.youtube.com/")
//	// res.Source tells you which path served it; the local DB now holds
//	// the measurement, and SyncNow shares it.
//
// The examples/ directory contains runnable walkthroughs, and
// internal/experiments regenerates every table and figure of the paper.
package csaw

import (
	"csaw/internal/core"
	"csaw/internal/detect"
	"csaw/internal/experiments"
	"csaw/internal/globaldb"
	"csaw/internal/localdb"
	"csaw/internal/web"
	"csaw/internal/worldgen"
)

// Core client types.
type (
	// Client is the C-Saw client proxy (measurement + circumvention).
	Client = core.Client
	// Config assembles a Client.
	Config = core.Config
	// Approach is one circumvention method.
	Approach = core.Approach
	// Result is the outcome of one proxied URL fetch.
	Result = core.Result
)

// World construction.
type (
	// World is an emulated internet with censoring ISPs and circumvention
	// ecosystems.
	World = worldgen.World
	// WorldOptions configures world construction.
	WorldOptions = worldgen.Options
	// ISP is a censoring provider.
	ISP = worldgen.ISP
)

// Measurement vocabulary.
type (
	// Record is one local-database row (paper Table 3).
	Record = localdb.Record
	// Stage is one stage of (multi-stage) blocking.
	Stage = localdb.Stage
	// BlockType classifies a blocking mechanism.
	BlockType = localdb.BlockType
	// Status is a URL's blocking status.
	Status = localdb.Status
	// Outcome is one direct-path detection result (paper Figure 4).
	Outcome = detect.Outcome
	// GlobalEntry is one crowdsourced blocked-URL record with voting stats.
	GlobalEntry = globaldb.Entry
)

// Browser-level page loading.
type (
	// Browser loads pages (base document + objects) and measures PLT.
	Browser = web.Browser
	// PageResult is one page load.
	PageResult = web.PageResult
)

// Statuses.
const (
	NotMeasured = localdb.NotMeasured
	NotBlocked  = localdb.NotBlocked
	Blocked     = localdb.Blocked
)

// Blocking mechanisms.
const (
	BlockNone       = localdb.BlockNone
	BlockDNS        = localdb.BlockDNS
	BlockIP         = localdb.BlockIP
	BlockTCPTimeout = localdb.BlockTCPTimeout
	BlockHTTP       = localdb.BlockHTTP
	BlockSNI        = localdb.BlockSNI
	BlockContent    = localdb.BlockContent
)

// User preferences (§4.4).
const (
	PreferPerformance = core.PreferPerformance
	PreferAnonymity   = core.PreferAnonymity
)

// NewWorld builds an emulated internet.
func NewWorld(o WorldOptions) (*World, error) { return worldgen.New(o) }

// NewClient assembles a C-Saw client from a config (see World.ClientConfig
// for a fully wired starting point).
func NewClient(cfg Config) (*Client, error) { return core.New(cfg) }

// Experiments exposes the paper-reproduction harness.
type (
	// Experiment is a registered table/figure regenerator.
	Experiment = experiments.Runner
	// ExperimentOptions tunes a run.
	ExperimentOptions = experiments.Options
	// ExperimentResult is a regenerated table/figure.
	ExperimentResult = experiments.Result
)

// Experiments returns every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.All() }

// FindExperiment returns the regenerator with the given ID, or nil.
func FindExperiment(id string) *Experiment { return experiments.Find(id) }
