package csaw_test

import (
	"context"
	"testing"

	"csaw"
)

// TestPublicAPIEndToEnd exercises the facade the way the README's quick
// start does: build a world, run a client, fetch a blocked and an unblocked
// URL, sync with the global DB.
func TestPublicAPIEndToEnd(t *testing.T) {
	world, err := csaw.NewWorld(csaw.WorldOptions{Scale: 300, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	ispA, _, err := world.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	host := world.NewClientHost("api-test", ispA)
	client, err := csaw.NewClient(world.ClientConfig(host, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	if err := client.Start(ctx); err != nil {
		t.Fatal(err)
	}

	clean := client.FetchURL(ctx, "news.example.pk/")
	if !clean.OK() || clean.Source != "direct" || clean.Status != csaw.NotBlocked {
		t.Fatalf("clean fetch = %+v (err=%v)", clean, clean.Err)
	}
	blocked := client.FetchURL(ctx, "www.youtube.com/")
	if !blocked.OK() || blocked.Source == "direct" {
		t.Fatalf("blocked fetch = %+v (err=%v)", blocked, blocked.Err)
	}
	client.WaitIdle()
	if _, st := client.DB().Lookup("www.youtube.com/"); st != csaw.Blocked {
		t.Fatalf("db status = %v", st)
	}
	if err := client.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if st := world.GlobalDB.StatsSnapshot(); st.BlockedURLs == 0 {
		t.Fatal("nothing reported to the global DB")
	}
}

// TestExperimentRegistry sanity-checks the experiment catalogue.
func TestExperimentRegistry(t *testing.T) {
	all := csaw.Experiments()
	if len(all) < 20 {
		t.Fatalf("experiments = %d, want every table/figure + ablations", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"table1", "table5", "table6", "table7",
		"figure1a", "figure2", "figure5a", "figure6b", "figure7a", "wild", "classifier"} {
		if csaw.FindExperiment(want) == nil {
			t.Errorf("experiment %q missing", want)
		}
	}
	if csaw.FindExperiment("no-such-id") != nil {
		t.Error("FindExperiment invented an experiment")
	}
}
