// csaw-worldprobe builds a censored world and probes its ISPs with the
// Figure-4 detector, printing a Table-1-style blocking matrix. It is the
// quickest way to see the detection engine at work against every mechanism.
//
// Usage:
//
//	csaw-worldprobe [-scale S] [-seed N] [-urls host1/path,host2,...]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"csaw/internal/blockpage"
	"csaw/internal/detect"
	"csaw/internal/metrics"
	"csaw/internal/worldgen"
)

func main() {
	var (
		scale = flag.Float64("scale", 300, "virtual clock scale")
		seed  = flag.Int64("seed", 1, "random seed")
		urls  = flag.String("urls", "", "extra URLs to probe (comma separated)")
	)
	flag.Parse()

	w, err := worldgen.New(worldgen.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	ispA, ispB, err := w.CaseStudy()
	if err != nil {
		fatal(err)
	}

	probeList := []string{
		worldgen.YouTubeHost + "/",
		worldgen.PornHost + "/",
		worldgen.NewsHost + "/",
		worldgen.SmallHost + "/",
	}
	for _, u := range strings.Split(*urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			probeList = append(probeList, u)
		}
	}

	tbl := metrics.Table{
		Title:   "Blocking matrix (detected on the direct path)",
		Headers: []string{"URL", "ISP-A (AS17557)", "ISP-B (AS38193)"},
	}
	for i, url := range probeList {
		row := []string{url}
		for j, isp := range []*worldgen.ISP{ispA, ispB} {
			host := w.NewClientHost(fmt.Sprintf("probe-%d-%d", i, j), isp)
			ldns, gdns := w.Resolvers(host)
			det := &detect.Detector{
				Clock: w.Clock, Dial: host.Dial,
				LDNS: ldns, GDNS: gdns,
				Classifier: blockpage.NewClassifier(),
			}
			out := det.Measure(context.Background(), url, detect.HTTP)
			cell := "clean"
			if out.Blocked() {
				cell = out.StageSummary()
			}
			row = append(row, fmt.Sprintf("%s (%.1fs)", cell, out.Took.Seconds()))
		}
		tbl.AddRow(row...)
	}
	fmt.Println(tbl.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csaw-worldprobe:", err)
	os.Exit(1)
}
