// csaw-fleet drives a population-scale fleet of C-Saw clients through the
// emulated internet (internal/fleet) and prints the run's deterministic
// summary: same seed and population → byte-identical stdout, regardless of
// host load, worker count, or clock scale. The timing-dependent measurements
// (PLT distributions, sync volume, peak goroutines) go to -o as JSON.
//
// Usage:
//
//	csaw-fleet [-population N | -clients N] [-duration D] [-seed N]
//	           [-sites N] [-isps N] [-blocked-frac F]
//	           [-mode auto|event|scaled] [-scale S] [-workers N]
//	           [-o measured.json] [-progress]
//	           [-trace trace.jsonl] [-trace-sample N] [-failover-budget D]
//
// -mode picks the virtual-clock engine. "event" (the default under auto)
// runs the discrete-event scheduler: virtual time jumps straight to the
// next timer, so a 100k-client run finishes in real seconds and the PLT /
// virtual-seconds measurements are meaningless (every sleep is free).
// "scaled" runs the real-scaled clock (virtual time = wall time × scale),
// where PLT distributions are physically meaningful; auto selects it when
// -scale or -trace is given.
//
// -trace streams flight-recorder spans (sampled 1-in-N URLs, deterministic
// hash) as JSONL. Tracing forces workers=1, serial clients, and the scaled
// clock so the trace content — not just the summary — is byte-identical
// across same-seed runs; expect a slower wall clock.
//
// -failover-budget deadline-bounds each fetch's failover-ladder walk in
// virtual time. Fleet clients default to no budget (goroutine-scale stall
// noise would misread as dead ladders); set it on small fleets against
// censors that drop rather than reset.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"csaw/internal/fleet"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

func main() {
	var (
		population  = flag.Int("population", 500, "number of clients")
		mode        = flag.String("mode", "auto", "clock engine: auto, event (discrete-event, timing measurements meaningless), or scaled (real-scaled clock)")
		duration    = flag.Duration("duration", 0, "virtual observation window (0 = workload default, 2h)")
		seed        = flag.Int64("seed", 1, "seed for the workload plan and all client randomness")
		sites       = flag.Int("sites", 0, "site catalog size (0 = workload default)")
		isps        = flag.Int("isps", 0, "number of censoring ISPs (0 = workload default)")
		blockedFrac = flag.Float64("blocked-frac", 0, "fraction of the catalog each AS blocks (0 = workload default)")
		scale       = flag.Float64("scale", 0, "virtual clock scale (0 = auto by population)")
		workers     = flag.Int("workers", fleet.DefaultWorkers, "driver worker-pool size")
		out         = flag.String("o", "", "write the measured (timing-dependent) section as JSON to this file")
		progress    = flag.Bool("progress", false, "print live counters to stderr every virtual minute")
		traceOut    = flag.String("trace", "", "write flight-recorder spans as JSONL to this file (forces workers=1, serial clients)")
		traceSample = flag.Int("trace-sample", trace.DefaultSampleN, "trace one URL in N (deterministic hash-of-URL)")
		failBudget  = flag.Duration("failover-budget", 0, "per-fetch failover-ladder budget in virtual time (0 = fleet default: disabled; use with small fleets against dropping censors)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.IntVar(population, "clients", 500, "number of clients (alias for -population)")
	flag.Parse()

	wl := fleet.Workload{
		Population:  *population,
		Duration:    *duration,
		Seed:        *seed,
		Sites:       *sites,
		ISPs:        *isps,
		BlockedFrac: *blockedFrac,
	}.WithDefaults()

	// Clock engine. auto = discrete-event unless the operator pinned a scale
	// or asked for a trace (trace byte-stability is defined on the scaled
	// clock, where spans carry physically meaningful durations).
	eventDriven := false
	switch *mode {
	case "event":
		eventDriven = true
		if *scale > 0 {
			fatal(fmt.Errorf("-scale is meaningless with -mode event"))
		}
		if *traceOut != "" {
			fatal(fmt.Errorf("-trace needs the scaled clock (spans carry real durations); use -mode scaled"))
		}
	case "scaled":
	case "auto":
		eventDriven = *scale <= 0 && *traceOut == ""
	default:
		fatal(fmt.Errorf("unknown -mode %q (want auto, event, or scaled)", *mode))
	}

	var w *worldgen.World
	var err error
	if eventDriven {
		w, err = worldgen.New(worldgen.Options{EventDriven: true, Seed: wl.Seed})
	} else {
		if *scale <= 0 {
			*scale = autoScale(wl.Population)
		}
		w, err = worldgen.New(worldgen.Options{Scale: *scale, Seed: wl.Seed})
	}
	if err != nil {
		fatal(err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		fatal(err)
	}
	plan := fleet.BuildPlan(wl)
	if eventDriven {
		fmt.Fprintf(os.Stderr, "plan: %s (event-driven clock, %d workers)\n", plan, *workers)
	} else {
		fmt.Fprintf(os.Stderr, "plan: %s (scaled clock, scale %g, %d workers)\n", plan, *scale, *workers)
	}

	opts := fleet.Options{Workers: *workers, FailoverBudget: *failBudget}
	var traceFile *os.File
	var traceSink *trace.SortedSink
	var tracer *trace.Tracer
	if *traceOut != "" {
		// Deterministic-trace discipline: a parallel fleet's per-fetch branch
		// choices depend on cross-client sync timing, so trace content is
		// only byte-stable when the whole run is single-threaded.
		opts.Workers = 1
		opts.SerialClients = true
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceSink = trace.NewSortedSink(traceFile)
		tracer = trace.New(w.Clock, traceSink, trace.WithSampling(*traceSample))
		opts.Trace = tracer
		fmt.Fprintf(os.Stderr, "tracing to %s (1 in %d URLs; workers=1, serial clients)\n", *traceOut, *traceSample)
	}
	if *progress {
		opts.Progress = func(s fleet.Snapshot) {
			fmt.Fprintf(os.Stderr, "[%7.0fs virtual] joined %d left %d | sessions %d fetches %d (%d err) | syncs %d (%d err) | goroutines %d\n",
				s.VirtualElapsed.Seconds(), s.Joined, s.Left, s.Sessions, s.Fetches,
				s.FetchErrors, s.Syncs, s.SyncErrors, s.Goroutines)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now() //lint:allow-realtime reporting wall-clock runtime to the operator
	res, err := fleet.Run(context.Background(), w, sc, plan, opts)
	if err != nil {
		fatal(err)
	}
	//lint:allow-realtime reporting wall-clock runtime to the operator
	fmt.Fprintf(os.Stderr, "run finished in %.1fs wall\n", time.Since(start).Seconds())

	if tracer != nil {
		if err := traceSink.Flush(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		started, sampled := tracer.Stats()
		fmt.Fprintf(os.Stderr, "trace: %d spans recorded of %d fetches\n", sampled, started)
	}

	// stdout carries only the deterministic summary — the byte-identical
	// same-seed artifact.
	fmt.Print(res.Summary.Render())

	// The measured section is written even when the consistency check is
	// about to fail the run: its counters (fetch/sync errors, degraded
	// clients) are exactly what diagnosing a divergence needs.
	if *out != "" {
		raw, err := json.MarshalIndent(&res.Measured, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "measured section written to %s\n", *out)
	} else {
		fmt.Fprint(os.Stderr, res.Measured.Render())
	}

	if !res.Summary.Consistent() {
		fmt.Fprintln(os.Stderr, "ERROR: global-DB per-AS lists diverged from the plan expectation")
		os.Exit(1)
	}
}

// autoScale picks a clock scale the host can honor. Virtual deadlines are
// real deadlines divided by the scale, so the bigger the population (and the
// scheduler stalls that come with it), the more real-time slack each virtual
// timeout needs: scale down as the population grows.
func autoScale(population int) float64 {
	switch {
	case population <= 1000:
		return 2400
	case population <= 4000:
		return 1200
	default:
		return 600
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csaw-fleet:", err)
	os.Exit(1)
}
