// csaw-client runs one interactive C-Saw client against the case-study
// world: it reads URLs from stdin (one per line), fetches each through the
// proxy, and reports which path served it, the measured blocking stages,
// and the local-DB state. "!sync" forces a global-DB round, "!db" dumps the
// local database, "!stats" prints client counters.
//
// Usage:
//
//	echo "www.youtube.com/" | csaw-client [-isp A|B] [-anon] [-scale S]
//	                                      [-churn] [-trace trace.jsonl]
//
// -churn swaps the case-study world for the adversarial churn scenario:
// the client sits behind an ISP whose censor walks the escalating
// three-epoch schedule (clean → HTTP block pages with residual censorship
// → IP/SNI escalation) on virtual time, with stale-verdict re-detection
// armed. Browse worldgen.ChurnHost and watch !stats as the policy flips.
//
// -trace streams one flight-recorder span per fetch as JSONL, in the
// human-facing timing profile (durations quantized to 100ms of virtual
// time): every DNS attempt, dial verdict, TLS hello, selection decision,
// and the PLT phase breakdown. A per-source phase summary prints at exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"csaw/internal/core"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

func main() {
	var (
		ispName  = flag.String("isp", "A", "which case-study ISP to sit behind: A or B")
		anon     = flag.Bool("anon", false, "prefer anonymity (Tor-only circumvention)")
		scale    = flag.Float64("scale", 300, "virtual clock scale")
		seed     = flag.Int64("seed", 1, "random seed")
		churn    = flag.Bool("churn", false, "sit behind the adversarial churn ISP (escalating policy epochs on virtual time)")
		traceOut = flag.String("trace", "", "write flight-recorder spans as JSONL to this file (timing profile)")
	)
	flag.Parse()

	w, err := worldgen.New(worldgen.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	var isp *worldgen.ISP
	if *churn {
		originIP, err := w.AddChurnSite()
		if err != nil {
			fatal(err)
		}
		churnISP, schedule, err := w.BuildChurnISP(*seed, originIP)
		if err != nil {
			fatal(err)
		}
		isp = churnISP
		fmt.Println("censor epoch schedule (virtual time from now):")
		for i, ep := range schedule {
			fmt.Printf("  epoch %d  +%-6s %s\n", i, ep.Start.Sub(schedule[0].Start), ep.Policy.Name)
		}
		fmt.Printf("blocked site: %s (origin %s)\n", worldgen.ChurnHost, originIP)
	} else {
		ispA, ispB, err := w.CaseStudy()
		if err != nil {
			fatal(err)
		}
		isp = ispA
		if strings.EqualFold(*ispName, "B") {
			isp = ispB
		}
	}
	host := w.NewClientHost("interactive", isp)
	cfg := w.ClientConfig(host, *seed)
	if *churn {
		// Track the censor's flips so stale verdicts re-detect (the same
		// wiring the censor-churn experiment uses).
		cfg.CensorEpoch = isp.Censor.EpochStart
	}
	if *anon {
		cfg.Pref = core.PreferAnonymity
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tracer = trace.New(w.Clock, trace.NewStreamSink(f), trace.WithTiming(trace.DefaultTick))
		cfg.Trace = tracer
		fmt.Fprintf(os.Stderr, "tracing every fetch to %s\n", *traceOut)
	}
	client, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	if err := client.Start(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Printf("C-Saw client up behind %s (AS%d); registered with the global DB.\n",
		isp.AS.Name, isp.AS.Number)
	fmt.Println("Enter URLs (host/path) to browse; !db, !stats, !sync for introspection.")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "!db":
			for _, rec := range client.DB().Snapshot() {
				fmt.Printf("  %-40s %-12s stages=%v posted=%v\n", rec.URL, rec.Status, rec.Stages, rec.GlobalPosted)
			}
		case line == "!stats":
			for _, k := range []string{"served-direct", "served-circum", "served-blockpage",
				"phase2-confirm", "phase2-overturn", "refresh", "explore", "failover",
				"failover-budget-exhausted", "stale-verdict", "stale-global-ignored",
				"quarantine-bench", "quarantine-parole", "quarantine-restore",
				"quarantine-override",
				"reports-posted", "direct-remeasure", "false-report-corrected",
				"sync-ok", "sync-failures", "sync-retries", "sync-skipped", "sync-partial",
				"sync-fetch-failures", "sync-report-deferred",
				"sync-circuit-open", "sync-circuit-close"} {
				if v := client.Counter(k); v > 0 {
					fmt.Printf("  %-26s %d\n", k, v)
				}
			}
			if client.Degraded() {
				fmt.Println("  MODE: local-only (sync circuit open)")
			}
		case line == "!sync":
			client.WaitIdle() // let in-flight measurements land first
			err := client.SyncNow(context.Background())
			st := client.SyncStats()
			if err != nil {
				fmt.Println("  sync failed:", err)
			} else {
				fmt.Printf("  synced; %d globally-known blocked URLs for this AS\n", client.GlobalCacheLen())
			}
			fmt.Printf("  rounds ok=%d failed=%d retried=%d skipped=%d partial=%d posted=%d deferred=%d degraded=%v\n",
				st.OK, st.Failures, st.Retries, st.Skipped, st.Partial, st.Posted, st.Deferred, st.Degraded)
			if st.LastError != "" {
				fmt.Printf("  last error: %s\n", st.LastError)
			}
		default:
			res := client.FetchURL(context.Background(), line)
			if !res.OK() {
				fmt.Printf("  ERROR status=%s err=%v\n", res.Status, res.Err)
				continue
			}
			fmt.Printf("  %d bytes via %-16s status=%-12s took=%.2fs stages=%v\n",
				len(res.Resp.Body), res.Source, res.Status, res.Took.Seconds(), res.Stages)
		}
	}
	client.WaitIdle()
	if tracer != nil {
		if b := tracer.Breakdown(); b != "" {
			fmt.Print(b)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csaw-client:", err)
	os.Exit(1)
}
