// csaw-lint enforces the simulation's determinism invariants with a
// suite of static analyzers (see internal/lint): virtual time only,
// seeded randomness only, no real network, no dropped sync errors, no
// blocking under a mutex.
//
// Usage:
//
//	csaw-lint [-list] [packages]
//
// With no packages it checks ./... . Exit codes follow the staticcheck
// convention so CI can gate on it directly: 0 = clean, 1 = diagnostics
// were reported, 2 = the checker itself failed (bad package patterns,
// type errors, ...).
package main

import (
	"flag"
	"fmt"
	"os"

	"csaw/internal/lint"
	"csaw/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, loaded, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, lint.Analyzers(), lint.DefaultConfig(loaded.ModuleRoot))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "csaw-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
