// csaw-lint enforces the simulation's determinism invariants with a
// suite of static analyzers (see internal/lint): virtual time only,
// seeded randomness only, no real network, no dropped sync errors, no
// blocking under a mutex, no map-order leaks, no shared-slice appends,
// no unlocked cond wakeups, no cancellation-deaf retry loops, no leaked
// trace spans.
//
// Usage:
//
//	csaw-lint [-list] [-tests=false] [-json file] [-dir path] [packages]
//
// With no packages it checks ./... . Test files are analyzed by default
// (-tests=false restores source-only); -json writes the diagnostics as a
// machine-readable artifact alongside the human output; -dir analyzes
// the .go files of one directory as a standalone package (the loader the
// golden-test harness uses), ignoring package patterns.
//
// Exit codes follow the staticcheck convention so CI can gate on it
// directly: 0 = clean, 1 = diagnostics were reported, 2 = the checker
// itself failed (bad package patterns, type errors, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"csaw/internal/lint"
	"csaw/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	jsonOut := flag.String("json", "", "write diagnostics to this file as JSON")
	dir := flag.String("dir", "", "analyze one directory as a standalone package instead of package patterns")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, cfg, err := load(*dir, *tests, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, lint.Analyzers(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, analysis.EncodeJSON(diags), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "csaw-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// load resolves the three loading modes: one standalone directory, module
// patterns with tests, or module patterns without.
func load(dir string, tests bool, patterns []string) ([]*analysis.Package, *analysis.Config, error) {
	if dir != "" {
		pkg, err := analysis.LoadDir(dir, filepath.Base(dir))
		if err != nil {
			return nil, nil, err
		}
		// A standalone directory has no module root; run with the suite's
		// allowlist keyed off the directory itself.
		return []*analysis.Package{pkg}, lint.DefaultConfig(dir), nil
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadFn := analysis.Load
	if tests {
		loadFn = analysis.LoadTests
	}
	pkgs, loaded, err := loadFn("", patterns...)
	if err != nil {
		return nil, nil, err
	}
	return pkgs, lint.DefaultConfig(loaded.ModuleRoot), nil
}
