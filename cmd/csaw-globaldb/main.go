// csaw-globaldb runs a standalone global-DB server inside a minimal world
// and exercises its API end to end: registration (CAPTCHA-gated), report
// ingestion with the §5 voting mechanism, per-AS list downloads, and the
// aggregate statistics endpoint — then prints the resulting state. It is a
// demonstration-and-diagnostics binary for the crowdsourcing backend.
//
// Usage:
//
//	csaw-globaldb [-reporters N] [-spam N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"csaw/internal/globaldb"
	"csaw/internal/localdb"
	"csaw/internal/metrics"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

func main() {
	var (
		reporters = flag.Int("reporters", 5, "honest reporters to simulate")
		spam      = flag.Int("spam", 40, "URLs sprayed by one malicious reporter")
	)
	flag.Parse()

	clock := vtime.New(1000)
	n := netem.New(clock, netem.WithSeed(1))
	cloud := n.AddAS(900, "Cloud", "US")
	asn := 17557

	srvHost := n.MustAddHost("globaldb", "40.0.0.1", "us", cloud)
	srv := globaldb.NewServer(clock, nil)
	if err := srv.Attach(srvHost, 80); err != nil {
		fatal(err)
	}
	fmt.Println("global DB serving on 40.0.0.1:80 (emulated)")

	mkClient := func(i int) *globaldb.Client {
		h := n.MustAddHost(fmt.Sprintf("reporter-%d", i), fmt.Sprintf("10.0.%d.%d", i/200, 1+i%200), "pk", cloud)
		return &globaldb.Client{
			Addr: "40.0.0.1:80", Host: "globaldb.example",
			Clock: clock, ReportDial: h.Dial, FetchDial: h.Dial,
		}
	}

	ctx := context.Background()
	var clients []*globaldb.Client
	for i := 0; i < *reporters; i++ {
		c := mkClient(i)
		clients = append(clients, c)
		if err := c.Register(ctx, fmt.Sprintf("human-%d", i)); err != nil {
			fatal(err)
		}
		if _, err := c.Report(ctx, []localdb.Record{
			{URL: "www.youtube.com/", ASN: asn, Status: localdb.Blocked,
				Stages: []localdb.Stage{{Type: localdb.BlockDNS, Detail: "redirect"}}},
			{URL: "hot.example.net/", ASN: asn, Status: localdb.Blocked,
				Stages: []localdb.Stage{{Type: localdb.BlockHTTP, Detail: "blockpage"}}},
		}); err != nil {
			fatal(err)
		}
	}

	// One attacker sprays bogus URLs; the voting statistics dilute it.
	atk := mkClient(999)
	if err := atk.Register(ctx, "human-but-malicious"); err != nil {
		fatal(err)
	}
	var fakes []localdb.Record
	for i := 0; i < *spam; i++ {
		fakes = append(fakes, localdb.Record{
			URL: fmt.Sprintf("innocent-%03d.example/", i), ASN: asn, Status: localdb.Blocked,
			Stages: []localdb.Stage{{Type: localdb.BlockHTTP, Detail: "blockpage"}},
		})
	}
	if _, err := atk.Report(ctx, fakes); err != nil {
		fatal(err)
	}

	entries, err := clients[0].FetchBlocked(ctx, asn)
	if err != nil {
		fatal(err)
	}
	lax := globaldb.TrustFilter{}
	strict := globaldb.TrustFilter{MinReporters: 2, MinAvgVote: 0.1}
	tbl := metrics.Table{
		Title:   fmt.Sprintf("Blocked list for AS%d (%d honest reporters, %d-URL spray)", asn, *reporters, *spam),
		Headers: []string{"URL", "s (votes)", "n (reporters)", "default filter", "strict filter"},
	}
	laxN, strictN := 0, 0
	for _, e := range entries {
		lOK, sOK := lax.Trusted(e), strict.Trusted(e)
		if lOK {
			laxN++
		}
		if sOK {
			strictN++
		}
		if sOK || len(tbl.Rows) < 12 {
			tbl.AddRow(e.URL, fmt.Sprintf("%.3f", e.Votes), fmt.Sprintf("%d", e.Reporters),
				fmt.Sprintf("%v", lOK), fmt.Sprintf("%v", sOK))
		}
	}
	fmt.Println(tbl.String())
	fmt.Printf("default filter trusts %d/%d; strict (n≥2, s/n≥0.1) trusts %d/%d — §5's consumers pick the tradeoff\n\n",
		laxN, len(entries), strictN, len(entries))

	st := srv.StatsSnapshot()
	fmt.Printf("server stats: users=%d blocked_urls=%d domains=%d ases=%d updates=%d by_type=%v\n",
		st.Users, st.BlockedURLs, st.BlockedDomains, st.ASes, st.Updates, st.ByType)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csaw-globaldb:", err)
	os.Exit(1)
}
