// csaw-globaldb runs a standalone global-DB server inside a minimal world
// and exercises its API end to end: registration (CAPTCHA-gated), report
// ingestion with the §5 voting mechanism, per-AS list downloads, and the
// aggregate statistics endpoint — then prints the resulting state. It is a
// demonstration-and-diagnostics binary for the crowdsourcing backend.
//
// With -wal the server write-ahead-logs every mutation into the given
// directory, and the run ends with a kill-and-recover check: the store is
// reopened from snapshot+log and must serve a byte-identical blocked list.
// With -replicas N the primary streams its log to N follower replicas and
// the run demonstrates a censor blackholing the primary: a replica-set
// client times out, fails over, and is answered 304 by a follower.
//
// With -chaos the binary instead runs the deterministic chaos harness's
// fixed primary-loss schedule against a 3-node self-healing replica set:
// the founding primary is killed permanently mid-run, a follower promotes
// itself by minting the next term, and the run ends with the post-heal
// invariant checks (no acked report lost, monotonic terms, byte-identical
// replicas). -chaos-seed N runs a randomized fault schedule instead.
//
// Usage:
//
//	csaw-globaldb [-reporters N] [-spam N] [-wal DIR] [-snapshot-every N] [-replicas N]
//	csaw-globaldb -chaos [-chaos-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"csaw/internal/chaos"
	"csaw/internal/globaldb"
	"csaw/internal/globaldb/replica"
	"csaw/internal/localdb"
	"csaw/internal/metrics"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

func main() {
	var (
		reporters = flag.Int("reporters", 5, "honest reporters to simulate")
		spam      = flag.Int("spam", 40, "URLs sprayed by one malicious reporter")
		walDir    = flag.String("wal", "", "directory for the WAL+snapshot store (empty: in-memory)")
		snapEvery = flag.Int("snapshot-every", 0, "WAL compaction cadence in records (0: default, negative: never)")
		replicas  = flag.Int("replicas", 0, "follower replicas pulling the primary's log stream")
		chaosRun  = flag.Bool("chaos", false, "run the chaos harness's fixed primary-loss schedule and exit")
		chaosSeed = flag.Int64("chaos-seed", 0, "with -chaos: run the randomized schedule for this seed instead")
	)
	flag.Parse()

	if *chaosRun {
		demoChaos(*chaosSeed)
		return
	}

	clock := vtime.New(1000)
	n := netem.New(clock, netem.WithSeed(1))
	cloud := n.AddAS(900, "Cloud", "US")
	asn := 17557

	srvHost := n.MustAddHost("globaldb", "40.0.0.1", "us", cloud)
	var srv *globaldb.Server
	if *walDir != "" || *replicas > 0 {
		var err error
		srv, err = globaldb.NewDurableServer(clock, nil, globaldb.StoreOptions{
			Dir:           *walDir,
			SnapshotEvery: *snapEvery,
			Replicated:    *replicas > 0,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		srv = globaldb.NewServer(clock, nil)
	}
	if err := srv.Attach(srvHost, 80); err != nil {
		fatal(err)
	}
	mode := "in-memory sharded store"
	if *walDir != "" {
		mode = fmt.Sprintf("WAL+snapshot store in %s", *walDir)
	}
	fmt.Printf("global DB serving on 40.0.0.1:80 (emulated, %s)\n", mode)

	// Follower replicas on their own cloud hosts, as worldgen places them:
	// distinct IPs the censor must blackhole separately.
	endpoints := []string{"40.0.0.1:80"}
	var set *replica.Set
	if *replicas > 0 {
		followers := make([]*replica.Follower, *replicas)
		for i := range followers {
			host := n.MustAddHost(fmt.Sprintf("globaldb-replica-%d", i),
				fmt.Sprintf("40.0.1.%d", i+1), "us", cloud)
			f := &replica.Follower{
				Name:        fmt.Sprintf("replica-%d", i),
				Server:      globaldb.NewServer(clock, nil),
				PrimaryAddr: "40.0.0.1:80",
				PrimaryHost: "globaldb.example",
				Dial:        host.Dial,
				Clock:       clock,
			}
			if err := f.Attach(host, 80); err != nil {
				fatal(err)
			}
			followers[i] = f
			endpoints = append(endpoints, host.IP()+":80")
		}
		set = &replica.Set{Followers: followers, Clock: clock}
		fmt.Printf("replication: %d followers at %v\n", *replicas, endpoints[1:])
	}

	mkClient := func(i int) *globaldb.Client {
		h := n.MustAddHost(fmt.Sprintf("reporter-%d", i), fmt.Sprintf("10.0.%d.%d", i/200, 1+i%200), "pk", cloud)
		return &globaldb.Client{
			Addr: "40.0.0.1:80", Host: "globaldb.example",
			Clock: clock, ReportDial: h.Dial, FetchDial: h.Dial,
		}
	}

	ctx := context.Background()
	var clients []*globaldb.Client
	for i := 0; i < *reporters; i++ {
		c := mkClient(i)
		clients = append(clients, c)
		if err := c.Register(ctx, fmt.Sprintf("human-%d", i)); err != nil {
			fatal(err)
		}
		if _, err := c.Report(ctx, []localdb.Record{
			{URL: "www.youtube.com/", ASN: asn, Status: localdb.Blocked,
				Stages: []localdb.Stage{{Type: localdb.BlockDNS, Detail: "redirect"}}},
			{URL: "hot.example.net/", ASN: asn, Status: localdb.Blocked,
				Stages: []localdb.Stage{{Type: localdb.BlockHTTP, Detail: "blockpage"}}},
		}); err != nil {
			fatal(err)
		}
	}

	// One attacker sprays bogus URLs; the voting statistics dilute it.
	atk := mkClient(999)
	if err := atk.Register(ctx, "human-but-malicious"); err != nil {
		fatal(err)
	}
	var fakes []localdb.Record
	for i := 0; i < *spam; i++ {
		fakes = append(fakes, localdb.Record{
			URL: fmt.Sprintf("innocent-%03d.example/", i), ASN: asn, Status: localdb.Blocked,
			Stages: []localdb.Stage{{Type: localdb.BlockHTTP, Detail: "blockpage"}},
		})
	}
	if _, err := atk.Report(ctx, fakes); err != nil {
		fatal(err)
	}

	entries, err := clients[0].FetchBlocked(ctx, asn)
	if err != nil {
		fatal(err)
	}
	fullBytes := clients[0].Stats().ListBytes
	lax := globaldb.TrustFilter{}
	strict := globaldb.TrustFilter{MinReporters: 2, MinAvgVote: 0.1}
	tbl := metrics.Table{
		Title:   fmt.Sprintf("Blocked list for AS%d (%d honest reporters, %d-URL spray)", asn, *reporters, *spam),
		Headers: []string{"URL", "s (votes)", "n (reporters)", "default filter", "strict filter"},
	}
	laxN, strictN := 0, 0
	for _, e := range entries {
		lOK, sOK := lax.Trusted(e), strict.Trusted(e)
		if lOK {
			laxN++
		}
		if sOK {
			strictN++
		}
		if sOK || len(tbl.Rows) < 12 {
			tbl.AddRow(e.URL, fmt.Sprintf("%.3f", e.Votes), fmt.Sprintf("%d", e.Reporters),
				fmt.Sprintf("%v", lOK), fmt.Sprintf("%v", sOK))
		}
	}
	fmt.Println(tbl.String())
	fmt.Printf("default filter trusts %d/%d; strict (n≥2, s/n≥0.1) trusts %d/%d — §5's consumers pick the tradeoff\n\n",
		laxN, len(entries), strictN, len(entries))

	st := srv.StatsSnapshot()
	fmt.Printf("server stats: users=%d blocked_urls=%d domains=%d ases=%d updates=%d by_type=%v\n",
		st.Users, st.BlockedURLs, st.BlockedDomains, st.ASes, st.Updates, st.ByType)

	if set != nil {
		demoFailover(ctx, n, clock, srv, set, endpoints, asn, fullBytes)
	}
	if *walDir != "" {
		demoRecovery(srv, *walDir, *snapEvery, asn, fullBytes, len(entries))
	}
}

// demoFailover quiesces replication, then plays the §5 scenario: the censor
// blackholes the primary's IP and a replica-set client fails over to a
// follower within the same sync call — answered 304, because converged
// replicas share validator tags.
func demoFailover(ctx context.Context, n *netem.Network, clock *vtime.Clock,
	srv *globaldb.Server, set *replica.Set, endpoints []string, asn, fullBytes int) {
	// Twice: the first pass ships the log, the second carries the acks.
	for i := 0; i < 2; i++ {
		if err := set.SyncAll(ctx); err != nil {
			fatal(fmt.Errorf("replication sync: %w", err))
		}
	}
	lag := replica.Lag(srv.ReplicationFeed())
	fmt.Printf("\nreplication quiesced: head=%d, followers=%d, max lag=%d\n",
		lag.Head, len(lag.Followers), lag.MaxLag)

	h := n.MustAddHost("failover-user", "10.0.9.1", "pk", n.AS(900))
	c := &globaldb.Client{
		Replicas: endpoints, Host: "globaldb.example", Clock: clock,
		ReportDial: h.Dial, FetchDial: h.Dial,
	}
	if err := c.Register(ctx, "human-failover"); err != nil {
		fatal(err)
	}
	if _, err := c.FetchBlocked(ctx, asn); err != nil {
		fatal(err)
	}
	fmt.Printf("replica-set client synced from %s (%d list bytes)\n", c.LastServed(), c.Stats().ListBytes)

	srv.Faults().SetDrop(true) // the censor blackholes 40.0.0.1: SYNs vanish
	srv.Faults().SetOutage(true)
	start := clock.Now()
	if _, err := c.FetchBlocked(ctx, asn); err != nil {
		fatal(fmt.Errorf("failover fetch: %w", err))
	}
	elapsed := clock.Now().Sub(start)
	cs := c.Stats()
	fmt.Printf("primary blackholed: failed over to %s in %.1fs virtual (failovers=%d, 304s=%d, list bytes moved=%d)\n",
		c.LastServed(), elapsed.Seconds(), cs.Failovers, cs.Fetch304, cs.ListBytes-fullBytes)
	srv.Faults().SetDrop(false)
	srv.Faults().SetOutage(false)
}

// demoRecovery kills the durable server and reopens its directory: recovery
// replays snapshot + log tail and must serve the exact pre-kill body.
func demoRecovery(srv *globaldb.Server, dir string, snapEvery, asn, fullBytes, nEntries int) {
	if err := srv.Close(); err != nil {
		fatal(fmt.Errorf("close durable server: %w", err))
	}
	re, err := globaldb.NewWALBenchStore(dir, snapEvery)
	if err != nil {
		fatal(fmt.Errorf("recover store: %w", err))
	}
	body := re.FetchResponse(asn)
	recovered := re.Recovered()
	fmt.Printf("\nkill-and-recover from %s: replayed %d log records; blocked list is %d bytes (pre-kill %d), %d entries (pre-kill %d)\n",
		dir, recovered, len(body), fullBytes, len(re.BlockedForAS(asn)), nEntries)
	if len(body) != fullBytes || len(re.BlockedForAS(asn)) != nEntries {
		fatal(fmt.Errorf("recovered state diverges from the pre-kill state"))
	}
	if err := re.Close(); err != nil {
		fatal(fmt.Errorf("close recovered store: %w", err))
	}
	fmt.Println("recovered state matches byte-for-byte")
}

// demoChaos runs one chaos schedule — the fixed primary-loss plan, or the
// seed's randomized one — and prints the fault log, the promotion outcome,
// and the post-heal invariant checks.
func demoChaos(seed int64) {
	dir, err := os.MkdirTemp("", "csaw-chaos-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	s := chaos.PrimaryLoss()
	runSeed := int64(1)
	if seed != 0 {
		s = chaos.Generate(seed)
		runSeed = seed
	}
	fmt.Printf("chaos schedule %q: %d rounds, %d fault injections\n", s.Name, s.Rounds, len(s.Events))
	for _, ev := range s.Events {
		fmt.Printf("  round %2d: %v node=%d dur=%d\n", ev.Round, ev.Kind, ev.Node, ev.Dur)
	}

	c, checked, ticks, err := chaos.Run(context.Background(), runSeed, dir, s)
	if err != nil {
		fatal(fmt.Errorf("chaos run: %w", err))
	}
	li := c.LeaderIndex()
	term, leader, _ := c.Nodes[li].Server.TermState()
	fmt.Printf("\nconverged %d ticks after the last fault: leader node-%d, term %d led from %s\n",
		ticks, li, term, leader)
	fmt.Printf("acked reports: %d, all present on every replica\n", len(c.Acked))
	if len(c.Counts) > 0 {
		fmt.Printf("fault counters: %v\n", c.Counts)
	}
	fmt.Println("invariants verified:")
	for _, inv := range checked {
		fmt.Printf("  ✓ %s\n", inv)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csaw-globaldb:", err)
	os.Exit(1)
}
