// csaw-experiments regenerates the paper's tables and figures on the
// emulated internet.
//
// Usage:
//
//	csaw-experiments [-run all|id1,id2,...] [-runs N] [-scale S] [-seed N]
//	                 [-trace trace.jsonl] [-list]
//
// Each experiment prints its rendered table/summary and key metrics; the
// IDs match the paper artifacts (table1, figure5a, ...). See DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for recorded paper-vs-
// measured results.
//
// -trace hands trace-aware experiments (trace-breakdown) a flight recorder
// streaming JSONL spans to the given file; experiments that build several
// worlds share the one stream. -trace-profile picks the record profile:
// "timing" (default, human-facing durations floor-quantized to the tick)
// or "deterministic" (schedule-invariant structure only — same seed, same
// bytes; what the churn soak diffs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"csaw/internal/experiments"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		runs     = flag.Int("runs", 0, "override per-series sample count (0 = paper defaults)")
		scale    = flag.Float64("scale", 0, "virtual clock scale (0 = per-experiment default)")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		traceOut     = flag.String("trace", "", "write flight-recorder spans from trace-aware experiments as JSONL to this file")
		traceProfile = flag.String("trace-profile", "timing", "trace record profile: timing (quantized durations) or deterministic (schedule-invariant, byte-identical per seed)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-22s %s\n", r.ID, r.Title)
		}
		return
	}

	var selected []experiments.Runner
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r := experiments.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *r)
		}
	}

	opts := experiments.Options{Runs: *runs, Scale: *scale, Seed: *seed}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csaw-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		var profile []trace.Option
		switch *traceProfile {
		case "timing":
			profile = append(profile, trace.WithTiming(trace.DefaultTick))
		case "deterministic":
			// No timing option: records carry only the schedule-invariant
			// structure, so a re-run with the same seed is byte-identical.
		default:
			fmt.Fprintf(os.Stderr, "unknown -trace-profile %q (want timing or deterministic)\n", *traceProfile)
			os.Exit(2)
		}
		// One shared stream: each trace-aware experiment builds its world
		// (and clock) lazily, so Options carries a factory, not a tracer.
		sink := trace.NewStreamSink(f)
		opts.Trace = func(clock *vtime.Clock) *trace.Tracer {
			return trace.New(clock, sink, profile...)
		}
		fmt.Fprintf(os.Stderr, "tracing trace-aware experiments to %s (%s profile)\n", *traceOut, *traceProfile)
	}
	fmt.Printf("seed: %d\n\n", *seed)
	failed := 0
	for _, r := range selected {
		start := time.Now() //lint:allow-realtime reporting wall-clock runtime to the operator
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "!! %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.Render())
		//lint:allow-realtime reporting wall-clock runtime to the operator
		fmt.Printf("(%s finished in %.1fs wall)\n\n", r.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
