# Verification gates (see README "Verification gates").
#
#   make tier1   — the tier-1 gate: build + full test suite
#   make vet     — static analysis
#   make race    — full test suite under the race detector
#   make check   — vet + race (the pre-merge gate alongside tier1)

GO ?= go

.PHONY: all build test tier1 vet race check

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race
