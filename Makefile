# Verification gates (see README "Verification gates").
#
#   make tier1   — the tier-1 gate: build + full test suite
#   make vet     — static analysis (go vet)
#   make lint    — csaw-lint: the simulation-invariant analyzers
#   make race    — full test suite under the race detector
#   make check   — vet + race + lint (the pre-merge gate alongside tier1)

GO ?= go

.PHONY: all build test tier1 vet lint race check

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/csaw-lint ./...

race:
	$(GO) test -race ./...

check: vet race lint
