# Verification gates (see README "Verification gates").
#
#   make tier1       — the tier-1 gate: build + full test suite
#   make vet         — static analysis (go vet)
#   make lint        — csaw-lint: the simulation-invariant analyzers
#   make race        — full test suite under the race detector
#   make check       — vet + race + lint (the pre-merge gate alongside tier1)
#   make bench-fleet — emit BENCH_fleet.json (fleet throughput, the
#                      sharded-vs-legacy global-DB sync-round comparison,
#                      and the population-vs-throughput curve with its
#                      10x event-vs-scaled gate: 10k clients on a 72h
#                      steady-state window, where the scaled engine pays
#                      its window/scale real-sleep floor; takes ~10 min,
#                      most of it that floor)
#   make bench-fleet-full — bench-fleet with the 100k-client event-mode
#                      curve point included (several extra minutes)
#   make bench-globaldb — emit BENCH_globaldb.json (WAL recovery time vs
#                      log length with a compaction control, bytes/sync
#                      full-vs-delta at 1k/10k/100k URL universes gated at
#                      delta ≤ 20% of full, and the virtual failover-to-
#                      first-successful-sync latency)
#   make chaos       — deterministic chaos sweep under -race: the fixed
#                      primary-loss schedule plus 20 generated fault
#                      schedules against the replicated global DB; every
#                      seed must heal to a converged byte-identical set
#                      with no acked report lost. Emits CHAOS.json (the
#                      per-seed fault/invariant record, written even when
#                      a seed fails)
#   make soak-churn  — seeded censor-churn soak under -race: the scenario
#                      runs twice and the summary + trace artifact must be
#                      byte-identical
#   make golden      — regenerate the flight-recorder golden trace artifact
#   make fuzz        — short fuzz pass over the dnsx/httpx wire codecs
#   make cover       — coverage for core+detect+trace, gated on COVERAGE.md

GO ?= go

.PHONY: all build test tier1 vet lint race check bench-fleet bench-fleet-full bench-globaldb chaos soak-churn golden fuzz cover

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/csaw-lint -json LINT.json ./...

race:
	$(GO) test -race ./...

check: vet race lint

bench-fleet:
	CSAW_BENCH_FLEET_OUT=$(CURDIR)/BENCH_fleet.json $(GO) test ./internal/fleet -run TestEmitBenchFleet -count=1 -v -timeout 30m

bench-fleet-full:
	CSAW_BENCH_FLEET_FULL=1 CSAW_BENCH_FLEET_OUT=$(CURDIR)/BENCH_fleet.json $(GO) test ./internal/fleet -run TestEmitBenchFleet -count=1 -v -timeout 60m

bench-globaldb:
	CSAW_BENCH_GLOBALDB_OUT=$(CURDIR)/BENCH_globaldb.json $(GO) test ./internal/globaldb -run TestEmitBenchGlobalDB -count=1 -v -timeout 15m

# Chaos sweep for the replicated global DB: the fixed primary-loss schedule
# and the 20-seed randomized sweep (kills, partitions, flaps, torn writes,
# WAL bit-flips), under the race detector. CHAOS.json records every seed's
# fault mix and checked invariants and is written even on failure, so a red
# run still carries the evidence.
chaos:
	CSAW_CHAOS_OUT=$(CURDIR)/CHAOS.json $(GO) test -race ./internal/chaos -run 'TestChaosPrimaryLoss|TestChaosSweep' -count=1 -v -timeout 20m

# Determinism soak for the adversarial-churn scenario: same seed twice,
# rendered summary and deterministic-profile trace must not differ by a
# byte (classification margins must beat scheduler jitter), with the race
# detector watching the failover/settlement goroutines.
soak-churn:
	CSAW_SOAK=1 $(GO) test -race ./internal/experiments -run TestSoakChurn -count=1 -v

# Regenerate internal/core/testdata/trace_golden.jsonl after intentional
# recorder or protocol changes; the test still asserts its structural
# invariants (span count, timeout-phase events) before blessing the bytes.
golden:
	CSAW_UPDATE_GOLDEN=1 $(GO) test ./internal/core -run TestGoldenTrace -count=1

# One short engine pass per wire-codec fuzz target (plus the WAL record
# decoder — the bytes a crash can tear); the checked-in seed corpora under
# testdata/fuzz/ always run as plain regression subtests.
fuzz:
	$(GO) test ./internal/dnsx -run '^$$' -fuzz FuzzMessageDecode -fuzztime 10s
	$(GO) test ./internal/httpx -run '^$$' -fuzz FuzzReadResponse -fuzztime 10s
	$(GO) test ./internal/httpx -run '^$$' -fuzz FuzzReadRequest -fuzztime 10s
	$(GO) test ./internal/globaldb/storage -run '^$$' -fuzz FuzzReplay -fuzztime 10s

# Combined statement coverage over the measurement pipeline (core + detect
# + trace), gated against the baseline recorded in COVERAGE.md.
cover:
	$(GO) test -coverprofile=cover.out ./internal/core ./internal/detect ./internal/trace
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	base=$$(awk '/^baseline:/ { sub(/%/, "", $$2); print $$2 }' COVERAGE.md); \
	awk -v t="$$total" -v b="$$base" 'BEGIN { \
		if (t + 0 < b + 0) { printf "FAIL: coverage %.1f%% below baseline %.1f%% (COVERAGE.md)\n", t, b; exit 1 } \
		printf "coverage %.1f%% (baseline %.1f%%)\n", t, b }'
