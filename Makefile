# Verification gates (see README "Verification gates").
#
#   make tier1       — the tier-1 gate: build + full test suite
#   make vet         — static analysis (go vet)
#   make lint        — csaw-lint: the simulation-invariant analyzers
#   make race        — full test suite under the race detector
#   make check       — vet + race + lint (the pre-merge gate alongside tier1)
#   make bench-fleet — emit BENCH_fleet.json (fleet throughput + the
#                      sharded-vs-legacy global-DB sync-round comparison)

GO ?= go

.PHONY: all build test tier1 vet lint race check bench-fleet

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/csaw-lint ./...

race:
	$(GO) test -race ./...

check: vet race lint

bench-fleet:
	CSAW_BENCH_FLEET_OUT=$(CURDIR)/BENCH_fleet.json $(GO) test ./internal/fleet -run TestEmitBenchFleet -count=1 -v
