// Pilotstudy runs a miniature version of the paper's §7.4 deployment: a
// population of consenting users behind several censoring ASes browse
// naturally; their C-Saw clients measure only what they visit, report
// blocked URLs to the global DB (over Tor), and download each other's
// findings — producing Table-7-style aggregates.
//
//	go run ./examples/pilotstudy [-users N]
package main

import (
	"flag"
	"fmt"
	"log"

	"csaw"
	"csaw/internal/experiments"
)

func main() {
	users := flag.Int("users", 40, "users to simulate (the paper's pilot had 123)")
	flag.Parse()

	fmt.Printf("Simulating a pilot deployment with %d users across 16 ASes...\n\n", *users)
	res, err := experiments.Table7(csaw.ExperimentOptions{Runs: *users, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("What the numbers mean:")
	fmt.Println(" - users opted in for faster page loads, not altruism (§3);")
	fmt.Println(" - only URLs users actually visited were measured (informed consent);")
	fmt.Println(" - block pages dominate, DNS blocking is second — matching §7.4;")
	fmt.Println(" - every AS contributes measurements because every AS has users.")
}
