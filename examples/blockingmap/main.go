// Blockingmap surveys how differently ISPs censor: it builds the eight
// autonomous systems of the paper's Figure 2 (Yemen, Indonesia, Vietnam,
// Kyrgyzstan), probes the same blocked-site list through each, and prints
// the per-AS mechanism mix — the heterogeneity that makes measurement-
// driven circumvention worthwhile.
//
//	go run ./examples/blockingmap
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"csaw"
	"csaw/internal/blockpage"
	"csaw/internal/detect"
	"csaw/internal/localdb"
	"csaw/internal/web"
	"csaw/internal/worldgen"
)

func main() {
	world, err := csaw.NewWorld(csaw.WorldOptions{Scale: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The probe list: a dozen sites every surveyed AS blocks (differently).
	var blocked []string
	var sites []*web.Site
	for i := 0; i < 12; i++ {
		host := fmt.Sprintf("banned%02d.example.org", i)
		s := web.NewSite(host)
		s.AddPage("/", fmt.Sprintf("Banned %d", i), 4<<10)
		sites = append(sites, s)
		blocked = append(blocked, host)
	}
	if _, err := world.AddOrigin("origin-banned", false, sites...); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Probing the same 12 blocked sites through 8 ASes in 4 countries:")
	fmt.Println()
	fmt.Printf("%-22s %s\n", "AS (country)", "mechanism observed per site")
	for _, spec := range worldgen.Figure2ASes() {
		isp, _, err := world.BuildFigure2ISP(spec, blocked, "")
		if err != nil {
			log.Fatal(err)
		}
		client := world.NewClientHost(fmt.Sprintf("probe-as%d", spec.ASN), isp)
		ldns, gdns := world.Resolvers(client)
		det := &detect.Detector{
			Clock: world.Clock, Dial: client.Dial, LDNS: ldns, GDNS: gdns,
			Classifier:     blockpage.NewClassifier(),
			ConnectTimeout: 5 * time.Second, // survey probes fail fast
		}
		var cells []string
		counts := map[string]int{}
		for _, host := range blocked {
			out := det.Measure(context.Background(), host+"/", detect.HTTP)
			label := shortLabel(out)
			counts[label]++
			cells = append(cells, label)
		}
		fmt.Printf("%-22s %s\n", fmt.Sprintf("AS%d (%s)", spec.ASN, spec.Country), strings.Join(cells, " "))
		fmt.Printf("%-22s   mix: %v\n", "", counts)
	}
	fmt.Println("\nEvery AS blocks, but no two block alike — which is exactly why C-Saw")
	fmt.Println("measures first and then picks the cheapest fix per (URL, AS).")
}

func shortLabel(out detect.Outcome) string {
	if !out.Blocked() {
		return "....."
	}
	for _, s := range out.Stages {
		if s.Type == localdb.BlockDNS {
			if s.Detail == "redirect" {
				return "DNSrd"
			}
			return "noDNS"
		}
	}
	for _, s := range out.Stages {
		switch s.Detail {
		case "blockpage", "blockpage-redirect":
			return "BLKpg"
		case "rst":
			return "RST.."
		}
	}
	return "noHTT"
}
