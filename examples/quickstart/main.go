// Quickstart: build a censored world, run one C-Saw client behind a
// censoring ISP, and watch it detect blocking, circumvent adaptively, and
// get faster on repeat visits as the local database fills.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"csaw"
)

func main() {
	// An emulated internet: Pakistan-style distributed censorship (Table 1
	// of the paper), content origins, public DNS, a CDN front, Tor,
	// Lantern, static proxies, and the crowdsourced global DB.
	world, err := csaw.NewWorld(csaw.WorldOptions{Scale: 300, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	ispA, _, err := world.CaseStudy()
	if err != nil {
		log.Fatal(err)
	}

	// A user installs C-Saw behind ISP-A (which redirects blocked sites to
	// a block page).
	host := world.NewClientHost("alice", ispA)
	client, err := csaw.NewClient(world.ClientConfig(host, 42))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	if err := client.Start(ctx); err != nil {
		log.Fatal(err) // registers with the global DB (CAPTCHA + UUID)
	}

	browse := func(url string) {
		res := client.FetchURL(ctx, url)
		if res.Err != nil {
			fmt.Printf("  %-24s ERROR: %v\n", url, res.Err)
			return
		}
		fmt.Printf("  %-24s %6d bytes via %-14s in %5.2fs  (status: %s)\n",
			url, len(res.Resp.Body), res.Source, res.Took.Seconds(), res.Status)
	}

	fmt.Println("First visits — C-Saw measures the direct path while fetching:")
	browse("news.example.pk/") // unblocked: direct path
	browse("www.youtube.com/") // blocked: detected + circumvented in parallel
	client.WaitIdle()

	fmt.Println("\nLocal database after measuring (paper Table 3 records):")
	for _, rec := range client.DB().Snapshot() {
		fmt.Printf("  %-24s %-12s stages=%v\n", rec.URL, rec.Status, rec.Stages)
	}

	fmt.Println("\nRepeat visits — the DB now picks the cheapest working fix directly:")
	browse("www.youtube.com/")
	browse("www.youtube.com/")

	// Share measurements with the crowd and show what the global DB knows.
	if err := client.SyncNow(ctx); err != nil {
		log.Fatal(err)
	}
	stats := world.GlobalDB.StatsSnapshot()
	fmt.Printf("\nGlobal DB now holds %d blocked URL(s) from %d user(s) — the next user on this AS skips detection entirely.\n",
		stats.BlockedURLs, stats.Users)
}
