// Churn walks through the dynamic behaviours of §4.4: URL status churn in
// both directions (a site getting unblocked, and a clean site suddenly
// blocked mid-session — the Nov 2017 Twitter event), and multihoming
// detection with its stricter circumvention choice.
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"csaw"
	"csaw/internal/censor"
	"csaw/internal/worldgen"
)

func main() {
	world, err := csaw.NewWorld(csaw.WorldOptions{Scale: 300, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	ispA, ispB, err := world.CaseStudy()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// --- Scenario A: Blocked → Unblocked (the Jan 2016 YouTube story) ---
	fmt.Println("Scenario A: a blocked site gets unblocked")
	host := world.NewClientHost("churn-a", ispA)
	cfg := world.ClientConfig(host, 9)
	cfg.GlobalDB = nil
	cfg.ASNProbeAddr = ""
	cfg.TTL = time.Minute // short record lifetime so the demo is quick
	client, err := csaw.NewClient(cfg)
	if err != nil {
		log.Fatal(err)
	}
	show := func(c *csaw.Client, url string) {
		res := c.FetchURL(ctx, url)
		if res.Err != nil {
			fmt.Printf("  %-20s ERROR %v\n", url, res.Err)
			return
		}
		fmt.Printf("  %-20s via %-14s (%5.2fs, db: %s)\n", url, res.Source, res.Took.Seconds(), res.Status)
	}
	show(client, "www.youtube.com/") // detected blocked, circumvented
	client.WaitIdle()
	show(client, "www.youtube.com/") // served from the known-blocked fast path

	fmt.Println("  ... the regulator orders YouTube unblocked; the record expires ...")
	ispA.Censor.SetPolicy(&censor.Policy{})
	world.Clock.Sleep(2 * time.Minute)
	show(client, "www.youtube.com/") // redundant probe rediscovers the direct path
	client.Close()

	// --- Scenario B: Unblocked → Blocked (the Nov 2017 Twitter story) ---
	fmt.Println("\nScenario B: a clean site gets blocked mid-session")
	hostB := world.NewClientHost("churn-b", ispB)
	cfgB := world.ClientConfig(hostB, 10)
	cfgB.GlobalDB = nil
	cfgB.ASNProbeAddr = ""
	clientB, err := csaw.NewClient(cfgB)
	if err != nil {
		log.Fatal(err)
	}
	show(clientB, "news.example.pk/")
	clientB.WaitIdle()
	fmt.Println("  ... protests start; the ISP adds news.example.pk to its filter ...")
	ispB.Censor.SetPolicy(&censor.Policy{
		HTTP: []censor.HTTPRule{{Host: worldgen.NewsHost, Action: censor.HTTPBlockPage}},
	})
	show(clientB, "news.example.pk/") // direct path always measured → caught at once
	clientB.WaitIdle()
	fmt.Printf("  churn events detected: %d\n", clientB.Counter("churn-unblocked-to-blocked"))
	clientB.Close()

	// --- Multihoming: two providers that disagree (§4.4) ---
	fmt.Println("\nMultihoming: ISP-A redirects YouTube, ISP-B DNS-redirects and drops it")
	hostM := world.NewClientHost("churn-multi", ispA, ispB)
	// Restore both providers' Table-1 filtering (earlier scenarios edited it).
	ispA.Censor.SetPolicy(worldgen.ISPAPolicy("block.isp-a.pk/blocked.html", "youtube.com"))
	ispB.Censor.SetPolicy(worldgen.ISPBPolicy("10.9.0.2", "block.isp-b.pk/blocked.html", "youtube.com"))
	cfgM := world.ClientConfig(hostM, 11)
	cfgM.GlobalDB = nil
	clientM, err := csaw.NewClient(cfgM)
	if err != nil {
		log.Fatal(err)
	}
	defer clientM.Close()
	for i := 0; i < 25 && !clientM.Multihomed(); i++ {
		if err := clientM.ProbeASN(ctx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  ASN probes conclude multihomed: %v\n", clientM.Multihomed())
	for i := 0; i < 4; i++ {
		show(clientM, "www.youtube.com/")
		clientM.WaitIdle()
	}
	fmt.Println("  (the approach covers the union of both providers' blocking, so no oscillation)")
}
