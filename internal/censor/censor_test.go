package censor

import (
	"bufio"
	"context"
	"errors"
	"testing"
	"time"

	"csaw/internal/dnsx"
	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/tlsx"
	"csaw/internal/vtime"
)

// world is a censored network: client in pk behind AS 100, ISP resolver,
// block-page host inside the ISP, origin server abroad on :80 and :443.
type world struct {
	n        *netem.Network
	client   *netem.Host
	censor   *Censor
	reg      *dnsx.Registry
	resolver string // ISP resolver address
	public   string // foreign public resolver address
	originIP string
}

const originIP = "93.184.216.34"

func newWorld(t *testing.T, p *Policy) *world {
	t.Helper()
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(5), netem.WithJitter(0))
	isp := n.AddAS(100, "ISP-A", "PK")
	us := n.AddAS(200, "US", "US")

	client := n.MustAddHost("client", "10.0.0.1", "pk", isp)
	resolver := n.MustAddHost("resolver", "10.0.0.53", "pk", isp)
	public := n.MustAddHost("public-dns", "8.8.8.8", "us", us)
	origin := n.MustAddHost("origin", originIP, "us", us)
	blockHost := n.MustAddHost("block.isp.pk", "10.0.9.9", "pk", isp)
	n.SetRTT("pk", "us", 150*time.Millisecond)

	reg := dnsx.NewRegistry()
	reg.Set("www.youtube.com", originIP)
	reg.Set("ok.example.com", originIP)
	reg.Set("block.isp.pk", "10.0.9.9")

	cen := New(p)
	cen.Attach(isp)

	// ISP resolver applies the policy; public resolver is honest.
	if _, err := dnsx.NewServer(resolver, cen.ResolverHandler(reg, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := dnsx.NewServer(public, dnsx.AuthHandler(reg, 300)); err != nil {
		t.Fatal(err)
	}

	// Origin serves HTTP and pseudo-TLS HTTPS.
	pageHandler := httpx.HandlerFunc(func(req *httpx.Request, _ netem.Flow) *httpx.Response {
		return httpx.NewResponse(200, []byte("<html><title>Real Page</title><body>content of "+req.URL()+"</body></html>"))
	})
	httpx.Serve(origin.MustListen(80), pageHandler)
	serveTLS(t, origin, tlsx.CertFor("www.youtube.com", "ok.example.com"), pageHandler)

	// ISP block-page host.
	httpx.Serve(blockHost.MustListen(80), httpx.HandlerFunc(func(*httpx.Request, netem.Flow) *httpx.Response {
		resp := httpx.NewResponse(200, []byte(DefaultBlockPageHTML))
		resp.Header.Set("Content-Type", "text/html")
		return resp
	}))

	return &world{
		n: n, client: client, censor: cen, reg: reg,
		resolver: "10.0.0.53:53", public: "8.8.8.8:53", originIP: originIP,
	}
}

// serveTLS accepts pseudo-TLS connections and serves HTTP over them.
func serveTLS(t *testing.T, host *netem.Host, certs tlsx.CertFunc, h httpx.Handler) {
	t.Helper()
	l := host.MustListen(tlsx.Port)
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				tc, err := tlsx.Server(raw, certs)
				if err != nil {
					raw.Close()
					return
				}
				defer tc.Close()
				br := bufio.NewReader(tc)
				for {
					req, err := httpx.ReadRequest(br)
					if err != nil {
						return
					}
					resp := h.ServeHTTP(req, netem.Flow{})
					if err := httpx.WriteResponse(tc, resp); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func (w *world) httpClient() *httpx.Client {
	return &httpx.Client{Dial: w.client.Dial, Clock: w.n.Clock(), Timeout: 8 * time.Second}
}

func (w *world) lookup(server, name string) dnsx.Result {
	c := dnsx.NewClient(w.client, server)
	c.AttemptTimeout = 2 * time.Second
	return c.Lookup(context.Background(), name)
}

func TestDomainMatch(t *testing.T) {
	cases := []struct {
		pattern, host string
		want          bool
	}{
		{"youtube.com", "youtube.com", true},
		{"youtube.com", "www.youtube.com", true},
		{"youtube.com", "WWW.YouTube.Com", true},
		{"youtube.com", "www.youtube.com:443", true},
		{"youtube.com", "notyoutube.com", false},
		{"youtube.com", "youtube.com.evil.net", false},
		{"www.youtube.com", "youtube.com", false},
	}
	for _, c := range cases {
		if got := domainMatch(c.pattern, c.host); got != c.want {
			t.Errorf("domainMatch(%q, %q) = %v, want %v", c.pattern, c.host, got, c.want)
		}
	}
}

func TestPolicyHTTPMatching(t *testing.T) {
	p := &Policy{
		HTTP: []HTTPRule{
			{Host: "foo.com", PathPrefix: "/banned/", Action: HTTPReset},
			{Host: "bar.com", Action: HTTPBlockPage},
		},
		Keywords: []KeywordRule{{Keyword: "forbidden-word", Action: HTTPDrop}},
	}
	if p.HTTPActionFor("foo.com", "/banned/x.html") != HTTPReset {
		t.Error("path-prefix rule missed")
	}
	if p.HTTPActionFor("foo.com", "/fine.html") != HTTPClean {
		t.Error("non-matching path blocked")
	}
	if p.HTTPActionFor("www.bar.com", "/anything") != HTTPBlockPage {
		t.Error("subdomain rule missed")
	}
	if p.HTTPActionFor("baz.com", "/a-Forbidden-Word-here") != HTTPDrop {
		t.Error("keyword rule missed")
	}
	if p.HTTPActionFor("baz.com", "/clean") != HTTPClean {
		t.Error("clean URL blocked")
	}
}

func TestDNSTamperingModes(t *testing.T) {
	cases := []struct {
		act       DNSAction
		wantRC    int
		wantIP    string
		wantErrIs error
	}{
		{DNSNXDomain, dnsx.RCodeNXDomain, "", dnsx.ErrRCode},
		{DNSServFail, dnsx.RCodeServFail, "", dnsx.ErrRCode},
		{DNSRefused, dnsx.RCodeRefused, "", dnsx.ErrRCode},
		{DNSDrop, 0, "", dnsx.ErrNoResponse},
		{DNSRedirect, dnsx.RCodeNoError, "10.0.9.9", nil},
	}
	for _, c := range cases {
		t.Run(c.act.String(), func(t *testing.T) {
			w := newWorld(t, &Policy{
				DNS:        map[string]DNSAction{"youtube.com": c.act},
				RedirectIP: "10.0.9.9",
			})
			res := w.lookup(w.resolver, "www.youtube.com")
			if c.wantErrIs != nil {
				if !errors.Is(res.Err, c.wantErrIs) {
					t.Fatalf("err = %v, want %v", res.Err, c.wantErrIs)
				}
				if c.wantRC != 0 && res.RCode != c.wantRC {
					t.Fatalf("rcode = %d, want %d", res.RCode, c.wantRC)
				}
				return
			}
			if !res.OK() || res.IPs[0] != c.wantIP {
				t.Fatalf("result = %+v, want IP %s", res, c.wantIP)
			}
			// Unblocked names still resolve honestly.
			res2 := w.lookup(w.resolver, "ok.example.com")
			if !res2.OK() || res2.IPs[0] != originIP {
				t.Fatalf("clean lookup = %+v", res2)
			}
		})
	}
}

func TestForeignDNSInterception(t *testing.T) {
	p := &Policy{
		DNS:                 map[string]DNSAction{"youtube.com": DNSNXDomain},
		InterceptForeignDNS: true,
	}
	w := newWorld(t, p)
	res := w.lookup(w.public, "www.youtube.com")
	if !errors.Is(res.Err, dnsx.ErrRCode) || res.RCode != dnsx.RCodeNXDomain {
		t.Fatalf("intercepted public lookup = %+v, want forged NXDOMAIN", res)
	}
	// Clean names pass through the interceptor to the real resolver.
	res2 := w.lookup(w.public, "ok.example.com")
	if !res2.OK() || res2.IPs[0] != originIP {
		t.Fatalf("clean public lookup = %+v", res2)
	}
}

func TestPublicDNSBypassesResolverOnlyBlocking(t *testing.T) {
	// Without foreign interception, the public-DNS local fix works.
	w := newWorld(t, &Policy{DNS: map[string]DNSAction{"youtube.com": DNSNXDomain}})
	res := w.lookup(w.public, "www.youtube.com")
	if !res.OK() || res.IPs[0] != originIP {
		t.Fatalf("public lookup = %+v, want honest answer", res)
	}
}

func TestIPBlocking(t *testing.T) {
	w := newWorld(t, &Policy{IP: map[string]IPAction{originIP: IPReset}})
	_, err := w.client.DialTimeout(originIP+":80", 3*time.Second)
	if !netem.IsReset(err) {
		t.Fatalf("dial = %v, want reset", err)
	}
	if w.censor.Stats.Get("ip-reset") != 1 {
		t.Error("ip-reset not counted")
	}

	w2 := newWorld(t, &Policy{IP: map[string]IPAction{originIP: IPDrop}})
	start := w2.n.Clock().Now()
	_, err = w2.client.DialTimeout(originIP+":80", 3*time.Second)
	if !netem.IsTimeout(err) {
		t.Fatalf("dial = %v, want timeout", err)
	}
	if el := w2.n.Clock().Since(start); el < 2*time.Second {
		t.Errorf("IP drop failed after %v, want full timeout", el)
	}
}

func TestHTTPBlockPage(t *testing.T) {
	w := newWorld(t, &Policy{HTTP: []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}}})
	resp, err := w.httpClient().Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != DefaultBlockPageHTML {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
	// Clean host through the same censor is untouched.
	resp2, err := w.httpClient().Get(context.Background(), originIP+":80", "ok.example.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != 200 || string(resp2.Body) == DefaultBlockPageHTML {
		t.Fatalf("clean resp = %d %q", resp2.StatusCode, resp2.Body)
	}
}

func TestHTTPRedirectToBlockPage(t *testing.T) {
	w := newWorld(t, &Policy{
		HTTP:         []HTTPRule{{Host: "youtube.com", Action: HTTPRedirect}},
		BlockPageURL: "block.isp.pk/blocked.html",
	})
	resp, err := w.httpClient().Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 302 {
		t.Fatalf("status = %d, want 302", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://block.isp.pk/blocked.html" {
		t.Fatalf("Location = %q", loc)
	}
	// Following the redirect (via the ISP's own DNS) lands on the block page.
	res := w.lookup(w.resolver, "block.isp.pk")
	if !res.OK() {
		t.Fatalf("block host lookup: %+v", res)
	}
	resp2, err := w.httpClient().Get(context.Background(), res.IPs[0]+":80", "block.isp.pk", "/blocked.html")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp2.Body) != DefaultBlockPageHTML {
		t.Fatalf("block page body = %q", resp2.Body)
	}
}

func TestHTTPIframeBlockPage(t *testing.T) {
	w := newWorld(t, &Policy{
		HTTP:         []HTTPRule{{Host: "youtube.com", Action: HTTPIframe}},
		BlockPageURL: "block.isp.pk/blocked.html",
	})
	resp, err := w.httpClient().Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	body := string(resp.Body)
	if resp.StatusCode != 200 || !contains(body, "<iframe") || !contains(body, "block.isp.pk") {
		t.Fatalf("iframe resp = %d %q", resp.StatusCode, body)
	}
}

func contains(s, sub string) bool { return len(s) >= len(sub) && (stringContains(s, sub)) }

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestHTTPDrop(t *testing.T) {
	w := newWorld(t, &Policy{HTTP: []HTTPRule{{Host: "youtube.com", Action: HTTPDrop}}})
	c := w.httpClient()
	c.Timeout = 3 * time.Second
	start := w.n.Clock().Now()
	_, err := c.Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	if el := w.n.Clock().Since(start); el < 2*time.Second {
		t.Errorf("drop surfaced after %v, want full timeout", el)
	}
}

func TestHTTPReset(t *testing.T) {
	w := newWorld(t, &Policy{HTTP: []HTTPRule{{Host: "youtube.com", Action: HTTPReset}}})
	_, err := w.httpClient().Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err == nil || !netem.IsReset(err) {
		t.Fatalf("err = %v, want reset", err)
	}
}

func TestKeywordFilteringAndIPAsHostnameBypass(t *testing.T) {
	// Keyword censors match on host+path; using the raw IP as hostname
	// avoids the keyword (§2.3, Figure 1c).
	w := newWorld(t, &Policy{Keywords: []KeywordRule{{Keyword: "youtube", Action: HTTPReset}}})
	_, err := w.httpClient().Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err == nil {
		t.Fatal("keyword-matched request passed")
	}
	resp, err := w.httpClient().Get(context.Background(), originIP+":80", originIP, "/")
	if err != nil {
		t.Fatalf("IP-as-hostname fetch failed: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSNIBlocking(t *testing.T) {
	w := newWorld(t, &Policy{SNI: map[string]TLSAction{"youtube.com": TLSReset}})
	ctx, cancel := w.n.Clock().WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	raw, err := w.client.Dial(ctx, originIP+":443")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(w.n.Clock().Now().Add(5 * time.Second))
	if _, err := tlsx.Client(raw, "www.youtube.com", ""); err == nil {
		t.Fatal("TLS handshake with blocked SNI succeeded")
	}
}

func TestSNICleanPassesThroughInspection(t *testing.T) {
	// With SNI rules installed, *other* TLS traffic still works end to end
	// through the inspecting censor.
	w := newWorld(t, &Policy{SNI: map[string]TLSAction{"youtube.com": TLSDrop}})
	ctx, cancel := w.n.Clock().WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := w.client.Dial(ctx, originIP+":443")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(w.n.Clock().Now().Add(10 * time.Second))
	tc, err := tlsx.Client(raw, "ok.example.com", "ok.example.com")
	if err != nil {
		t.Fatalf("clean TLS handshake: %v", err)
	}
	req := httpx.NewRequest("GET", "ok.example.com", "/")
	if err := httpx.WriteRequest(tc, req); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(tc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestDomainFrontingDefeatsSNIBlocking(t *testing.T) {
	// Fronting: SNI names the unblocked front; the Host header (encrypted)
	// names the blocked site. The censor sees only the front's SNI.
	w := newWorld(t, &Policy{SNI: map[string]TLSAction{"youtube.com": TLSDrop}})
	ctx, cancel := w.n.Clock().WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := w.client.Dial(ctx, originIP+":443")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetDeadline(w.n.Clock().Now().Add(10 * time.Second))
	tc, err := tlsx.Client(raw, "ok.example.com", "")
	if err != nil {
		t.Fatalf("fronted handshake: %v", err)
	}
	req := httpx.NewRequest("GET", "www.youtube.com", "/watch")
	if err := httpx.WriteRequest(tc, req); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(tc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !stringContains(string(resp.Body), "www.youtube.com/watch") {
		t.Fatalf("fronted resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestPolicySwapMidRun(t *testing.T) {
	w := newWorld(t, &Policy{})
	c := w.httpClient()
	if _, err := c.Get(context.Background(), originIP+":80", "www.youtube.com", "/"); err != nil {
		t.Fatalf("pre-block fetch: %v", err)
	}
	w.censor.SetPolicy(&Policy{HTTP: []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}}})
	resp, err := c.Get(context.Background(), originIP+":80", "www.youtube.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != DefaultBlockPageHTML {
		t.Fatal("policy swap did not take effect")
	}
}

func TestStats(t *testing.T) {
	w := newWorld(t, &Policy{HTTP: []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}}})
	c := w.httpClient()
	for i := 0; i < 3; i++ {
		if _, err := c.Get(context.Background(), originIP+":80", "www.youtube.com", "/"); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.censor.Stats.Get("http-blockpage"); got != 3 {
		t.Fatalf("stats http-blockpage = %d, want 3", got)
	}
	if w.censor.Stats.Total() != 3 {
		t.Fatalf("total = %d", w.censor.Stats.Total())
	}
}

func TestActionStrings(t *testing.T) {
	if DNSRedirect.String() != "dns-redirect" || HTTPIframe.String() != "http-iframe" {
		t.Error("action names wrong")
	}
	if DNSAction(99).String() != "dns-action(?)" || HTTPAction(99).String() != "http-action(?)" {
		t.Error("unknown action names wrong")
	}
}

func TestDNSInjectionAndHoldOn(t *testing.T) {
	// On-path injection: the censor races a forged answer against the
	// genuine one. A plain stub accepts the first (injected) answer; a
	// stub with Hold-On [31] waits briefly and prefers the later, genuine
	// response.
	p := &Policy{
		DNS:                 map[string]DNSAction{"youtube.com": DNSInject},
		RedirectIP:          "10.0.9.9",
		InterceptForeignDNS: true,
	}
	w := newWorld(t, p)

	plain := dnsx.NewClient(w.client, w.public)
	res := plain.Lookup(context.Background(), "www.youtube.com")
	if !res.OK() || res.IPs[0] != "10.0.9.9" {
		t.Fatalf("plain stub = %+v, want the injected answer", res)
	}

	holdon := dnsx.NewClient(w.client, w.public)
	holdon.HoldOn = 2 * time.Second
	res2 := holdon.Lookup(context.Background(), "www.youtube.com")
	if !res2.OK() || res2.IPs[0] != originIP {
		t.Fatalf("hold-on stub = %+v, want the genuine answer %s", res2, originIP)
	}
	if w.censor.Stats.Get("dns-inject") < 2 {
		t.Errorf("injection events = %d", w.censor.Stats.Get("dns-inject"))
	}
}

func TestHoldOnHarmlessOnCleanPath(t *testing.T) {
	// Hold-On must not break ordinary lookups (one answer, then silence).
	w := newWorld(t, &Policy{})
	c := dnsx.NewClient(w.client, w.resolver)
	c.HoldOn = 1 * time.Second
	res := c.Lookup(context.Background(), "ok.example.com")
	if !res.OK() || res.IPs[0] != originIP {
		t.Fatalf("hold-on on clean path = %+v", res)
	}
	// The extra wait costs at most ~HoldOn.
	if res.Took > 8*time.Second {
		t.Errorf("hold-on lookup took %v", res.Took)
	}
}

func TestDNSInjectAtResolverActsAsRedirect(t *testing.T) {
	w := newWorld(t, &Policy{
		DNS:        map[string]DNSAction{"youtube.com": DNSInject},
		RedirectIP: "10.0.9.9",
	})
	res := w.lookup(w.resolver, "www.youtube.com")
	if !res.OK() || res.IPs[0] != "10.0.9.9" {
		t.Fatalf("resolver-side inject = %+v, want redirect behaviour", res)
	}
}
