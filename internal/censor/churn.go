package censor

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"csaw/internal/vtime"
)

// Epoch is one step of a censor's policy timeline: at Start (virtual time)
// the censor begins enforcing Policy. Epochs model the adversary of §5 —
// blocking events arrive mid-run, previously-working circumvention channels
// get escalated against — without any goroutine: the active epoch is
// resolved lazily on every Policy() read, so a flip takes effect on the
// first flow that arrives after its Start.
type Epoch struct {
	Start  time.Time
	Policy *Policy
}

// churnState is the adversarial-timeline machinery attached to a Censor by
// EnableChurn: the epoch schedule, the seeded RNG backing intermittent
// enforcement, and the residual-censorship table. It has its own mutex so
// lazy epoch advancement can run before Censor.mu is taken.
type churnState struct {
	mu    sync.Mutex
	clock *vtime.Clock
	rng   *rand.Rand

	epochs []Epoch
	idx    int // index of the active epoch; -1 before the schedule starts

	// residual maps a client source IP to the end of its punishment window:
	// until then, every new flow from that IP is dropped at connect time
	// (the "residual censorship" behaviour measured in the Turkmenistan and
	// Pakistan studies). Entries expire lazily.
	residual map[string]time.Time
}

// EnableChurn arms the censor's adversarial timeline: epoch schedules
// (SetSchedule), probabilistic enforcement (Policy.Intermittent), and
// residual censorship (Policy.ResidualWindow) all need a virtual clock and
// a seeded RNG, which plain static policies do not. Deterministic by
// construction: the RNG is drawn only when a rule matches, so clean traffic
// never perturbs the draw sequence.
func (c *Censor) EnableChurn(clock *vtime.Clock, seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.churn = &churnState{
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		idx:      -1,
		residual: make(map[string]time.Time),
	}
}

// SetSchedule installs the epoch timeline (sorted by Start; the slice is
// copied). Epochs whose Start has already passed apply on the next Policy()
// read; only transitions beyond the first epoch count as "epoch-flip"
// events. EnableChurn must have been called first.
func (c *Censor) SetSchedule(epochs []Epoch) {
	c.mu.Lock()
	ch := c.churn
	c.mu.Unlock()
	if ch == nil {
		panic("censor: SetSchedule before EnableChurn")
	}
	ch.mu.Lock()
	ch.epochs = append([]Epoch(nil), epochs...)
	sort.SliceStable(ch.epochs, func(i, j int) bool {
		return ch.epochs[i].Start.Before(ch.epochs[j].Start)
	})
	ch.idx = -1
	ch.mu.Unlock()
}

// advanceEpoch steps the active epoch forward to the last one whose Start
// is not after the current virtual time, swapping the active policy and
// counting one "epoch-flip" per transition past the first. Returns
// immediately when churn is off or the schedule is exhausted.
func (c *Censor) advanceEpoch() {
	c.mu.RLock()
	ch := c.churn
	c.mu.RUnlock()
	if ch == nil {
		return
	}
	ch.mu.Lock()
	if len(ch.epochs) == 0 || ch.idx >= len(ch.epochs)-1 {
		ch.mu.Unlock()
		return
	}
	now := ch.clock.Now()
	next := ch.idx
	for next < len(ch.epochs)-1 && !ch.epochs[next+1].Start.After(now) {
		next++
	}
	if next == ch.idx {
		ch.mu.Unlock()
		return
	}
	flips := next - ch.idx
	if ch.idx < 0 {
		flips-- // entering the first epoch is the initial policy, not a flip
	}
	p := ch.epochs[next].Policy
	ch.idx = next
	ch.mu.Unlock()

	for i := 0; i < flips; i++ {
		c.Stats.bump("epoch-flip")
	}
	c.SetPolicy(p)
}

// EpochIndex returns the index of the active epoch after lazy advancement
// (-1 when churn is off, the schedule is empty, or nothing has started).
func (c *Censor) EpochIndex() int {
	c.advanceEpoch()
	c.mu.RLock()
	ch := c.churn
	c.mu.RUnlock()
	if ch == nil {
		return -1
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.idx
}

// EpochStart returns the Start of the active epoch (zero time before the
// schedule begins or when churn is off). Clients use this as the
// stale-verdict oracle: any measurement taken before EpochStart describes a
// censor that no longer exists.
func (c *Censor) EpochStart() time.Time {
	c.advanceEpoch()
	c.mu.RLock()
	ch := c.churn
	c.mu.RUnlock()
	if ch == nil {
		return time.Time{}
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.idx < 0 {
		return time.Time{}
	}
	return ch.epochs[ch.idx].Start
}

// enforce reports whether a matched rule fires this time. With
// Policy.Intermittent == 0 (or churn off) enforcement is deterministic;
// otherwise the seeded RNG is consulted and the rule is skipped — the
// censor "blinks" — with probability Intermittent, counted as
// "intermittent-pass". Called only after a rule has matched, so the draw
// sequence depends only on matching traffic.
func (c *Censor) enforce(p *Policy) bool {
	if p.Intermittent <= 0 {
		return true
	}
	c.mu.RLock()
	ch := c.churn
	c.mu.RUnlock()
	if ch == nil {
		return true
	}
	ch.mu.Lock()
	skip := ch.rng.Float64() < p.Intermittent
	ch.mu.Unlock()
	if skip {
		c.Stats.bump("intermittent-pass")
	}
	return !skip
}

// triggerResidual starts (or extends) the residual-censorship window for a
// client source IP after an enforcement event. No-op unless churn is armed
// and the active policy sets ResidualWindow.
func (c *Censor) triggerResidual(p *Policy, srcIP string) {
	if p.ResidualWindow <= 0 || srcIP == "" {
		return
	}
	c.mu.RLock()
	ch := c.churn
	c.mu.RUnlock()
	if ch == nil {
		return
	}
	ch.mu.Lock()
	until := ch.clock.Now().Add(p.ResidualWindow)
	if until.After(ch.residual[srcIP]) {
		ch.residual[srcIP] = until
	}
	ch.mu.Unlock()
	c.Stats.bump("residual-arm")
}

// residualActive reports whether srcIP is inside a residual punishment
// window, expiring stale entries lazily.
func (c *Censor) residualActive(srcIP string) bool {
	c.mu.RLock()
	ch := c.churn
	c.mu.RUnlock()
	if ch == nil || srcIP == "" {
		return false
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	until, ok := ch.residual[srcIP]
	if !ok {
		return false
	}
	if ch.clock.Now().After(until) {
		delete(ch.residual, srcIP)
		return false
	}
	return true
}
