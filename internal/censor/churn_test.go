package censor

import (
	"context"
	"testing"
	"time"

	"csaw/internal/netem"
)

// fetchBody does one HTTP GET from the test client straight to the origin
// IP (no DNS dependency) and classifies the outcome.
func fetchBody(t *testing.T, w *world, host string) (string, error) {
	t.Helper()
	resp, err := w.httpClient().Get(context.Background(), w.originIP+":80", host, "/")
	if err != nil {
		return "", err
	}
	return string(resp.Body), nil
}

func TestEpochScheduleFlipsPolicy(t *testing.T) {
	w := newWorld(t, nil) // start from an empty policy; the schedule supplies them
	clock := w.n.Clock()
	now := clock.Now()

	w.censor.EnableChurn(clock, 1)
	w.censor.SetSchedule([]Epoch{
		{Start: now, Policy: &Policy{Name: "clean"}},
		{Start: now.Add(time.Hour), Policy: &Policy{
			Name: "block-youtube",
			HTTP: []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}},
		}},
	})

	if got, err := fetchBody(t, w, "www.youtube.com"); err != nil || got == DefaultBlockPageHTML {
		t.Fatalf("pre-flip fetch = %q, %v; want real page", got, err)
	}
	if idx := w.censor.EpochIndex(); idx != 0 {
		t.Fatalf("EpochIndex = %d, want 0", idx)
	}
	if flips := w.censor.Stats.Get("epoch-flip"); flips != 0 {
		t.Fatalf("epoch-flip = %d before any flip", flips)
	}

	clock.Advance(time.Hour + time.Minute)

	if got, err := fetchBody(t, w, "www.youtube.com"); err != nil || got != DefaultBlockPageHTML {
		t.Fatalf("post-flip fetch = %q, %v; want block page", got, err)
	}
	if idx := w.censor.EpochIndex(); idx != 1 {
		t.Fatalf("EpochIndex = %d, want 1", idx)
	}
	if flips := w.censor.Stats.Get("epoch-flip"); flips != 1 {
		t.Fatalf("epoch-flip = %d, want 1", flips)
	}
	if st := w.censor.EpochStart(); !st.Equal(now.Add(time.Hour)) {
		t.Fatalf("EpochStart = %v, want %v", st, now.Add(time.Hour))
	}

	// Unrelated hosts stay clean across the flip.
	if got, err := fetchBody(t, w, "ok.example.com"); err != nil || got == DefaultBlockPageHTML {
		t.Fatalf("clean fetch post-flip = %q, %v", got, err)
	}
}

func TestEpochAdvancePastSeveralEpochsCountsEachFlip(t *testing.T) {
	w := newWorld(t, nil)
	clock := w.n.Clock()
	now := clock.Now()
	w.censor.EnableChurn(clock, 1)
	w.censor.SetSchedule([]Epoch{
		{Start: now, Policy: &Policy{Name: "e0"}},
		{Start: now.Add(time.Hour), Policy: &Policy{Name: "e1"}},
		{Start: now.Add(2 * time.Hour), Policy: &Policy{Name: "e2"}},
	})
	clock.Advance(3 * time.Hour)
	if name := w.censor.Policy().Name; name != "e2" {
		t.Fatalf("active policy = %q, want e2", name)
	}
	if flips := w.censor.Stats.Get("epoch-flip"); flips != 2 {
		t.Fatalf("epoch-flip = %d, want 2 (one per transition)", flips)
	}
}

// enforcement decisions under Intermittent must follow the seeded RNG:
// same seed → same accept/skip sequence; clean traffic must not consume
// draws.
func TestIntermittentEnforcementSeededAndMatchOnly(t *testing.T) {
	run := func(cleanBetween bool) []bool {
		p := &Policy{
			HTTP:         []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}},
			Intermittent: 0.5,
		}
		w := newWorld(t, p)
		w.censor.EnableChurn(w.n.Clock(), 42)
		var blocked []bool
		for i := 0; i < 24; i++ {
			if cleanBetween {
				// Interleaved clean traffic: matches nothing, so it must not
				// advance the RNG.
				if _, err := fetchBody(t, w, "ok.example.com"); err != nil {
					t.Fatalf("clean fetch: %v", err)
				}
			}
			got, err := fetchBody(t, w, "www.youtube.com")
			if err != nil {
				t.Fatalf("fetch %d: %v", i, err)
			}
			blocked = append(blocked, got == DefaultBlockPageHTML)
		}
		return blocked
	}

	a := run(false)
	b := run(true)
	nBlocked, nPassed := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs with interleaved clean traffic: %v vs %v", i, a[i], b[i])
		}
		if a[i] {
			nBlocked++
		} else {
			nPassed++
		}
	}
	if nBlocked == 0 || nPassed == 0 {
		t.Fatalf("intermittent censor never blinked or never fired: blocked=%d passed=%d", nBlocked, nPassed)
	}
}

func TestResidualCensorshipPunishesSubsequentFlows(t *testing.T) {
	p := &Policy{
		HTTP:           []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}},
		ResidualWindow: 2 * time.Minute,
	}
	w := newWorld(t, p)
	clock := w.n.Clock()
	w.censor.EnableChurn(clock, 7)

	// Trigger: the blocked fetch serves the block page and arms the window.
	if got, err := fetchBody(t, w, "www.youtube.com"); err != nil || got != DefaultBlockPageHTML {
		t.Fatalf("trigger fetch = %q, %v; want block page", got, err)
	}
	if w.censor.Stats.Get("residual-arm") == 0 {
		t.Fatal("residual window not armed after enforcement")
	}

	// Inside the window even a clean destination is unreachable: the
	// punishment is per-client, not per-rule.
	if _, err := w.client.DialTimeout(w.originIP+":80", 3*time.Second); !netem.IsTimeout(err) {
		t.Fatalf("dial inside residual window = %v, want timeout", err)
	}
	if w.censor.Stats.Get("residual-drop") == 0 {
		t.Fatal("residual-drop not counted")
	}

	// After the window lapses the client recovers without any state reset.
	clock.Advance(3 * time.Minute)
	if got, err := fetchBody(t, w, "ok.example.com"); err != nil || got == DefaultBlockPageHTML {
		t.Fatalf("post-window clean fetch = %q, %v", got, err)
	}
}

func TestResidualRequiresEnforcement(t *testing.T) {
	// A policy with a window but no matching rule must never punish.
	p := &Policy{
		HTTP:           []HTTPRule{{Host: "youtube.com", Action: HTTPBlockPage}},
		ResidualWindow: 2 * time.Minute,
	}
	w := newWorld(t, p)
	w.censor.EnableChurn(w.n.Clock(), 7)
	if got, err := fetchBody(t, w, "ok.example.com"); err != nil || got == DefaultBlockPageHTML {
		t.Fatalf("clean fetch = %q, %v", got, err)
	}
	if _, err := w.client.DialTimeout(w.originIP+":80", 3*time.Second); err != nil {
		t.Fatalf("clean client dial = %v, want success", err)
	}
	if w.censor.Stats.Get("residual-drop") != 0 || w.censor.Stats.Get("residual-arm") != 0 {
		t.Fatal("residual machinery fired without an enforcement event")
	}
}
