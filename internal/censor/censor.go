// Package censor implements the adversary of the paper: an ISP-level,
// on-path filtering middlebox with the capabilities catalogued in §2.1.
//
// A Censor attaches to a netem.AS as its egress Interceptor and enforces a
// Policy with independent mechanisms per protocol stage:
//
//   - DNS tampering at the ISP resolver (NXDOMAIN, SERVFAIL, REFUSED,
//     dropped queries, redirects to a block-page host) and, optionally,
//     on-path interception of queries to foreign resolvers;
//   - IP blacklisting at connect time (drop the SYN or inject an RST);
//   - HTTP filtering on the request line and Host header (drop, RST,
//     direct block page, 302 redirect to a block-page URL, or an iframe
//     block page — the mechanisms of Table 1 and Figure 2) plus keyword
//     rules matched against host+path;
//   - TLS SNI filtering (drop or RST on the ClientHello).
//
// Policies are swappable at runtime, which is how the §7.5 "C-Saw in the
// wild" timeline (Twitter/Instagram blocked mid-run) is reproduced, and how
// multi-stage blocking (ISP-B in Table 1: DNS + HTTP/HTTPS) is expressed —
// just configure several stages for the same domain.
package censor

import (
	"strings"
	"sync"
	"time"
)

// DNSAction is what the censor-controlled resolver does for a name.
type DNSAction int

// DNS tampering mechanisms (Figure 2's DNS categories).
const (
	DNSClean    DNSAction = iota
	DNSNXDomain           // answer NXDOMAIN
	DNSServFail           // answer SERVFAIL
	DNSRefused            // answer REFUSED
	DNSDrop               // never answer ("No DNS")
	DNSRedirect           // answer with the policy's RedirectIP ("DNS Redir")
	// DNSInject races a forged answer against the genuine one: the on-path
	// injector replies immediately with RedirectIP and still lets the real
	// resolver's answer through afterwards — the Great-Firewall-style
	// injection that the Hold-On defense [31] exists for. Only meaningful
	// for on-path interception (InterceptForeignDNS); at the ISP resolver
	// it behaves like DNSRedirect.
	DNSInject
)

// String returns the action name.
func (a DNSAction) String() string {
	switch a {
	case DNSClean:
		return "dns-clean"
	case DNSNXDomain:
		return "dns-nxdomain"
	case DNSServFail:
		return "dns-servfail"
	case DNSRefused:
		return "dns-refused"
	case DNSDrop:
		return "dns-drop"
	case DNSRedirect:
		return "dns-redirect"
	case DNSInject:
		return "dns-inject"
	default:
		return "dns-action(?)"
	}
}

// IPAction is connect-time blocking.
type IPAction int

// IP-level mechanisms.
const (
	IPClean IPAction = iota
	IPDrop           // blackhole the SYN: client times out
	IPReset          // inject an RST: client fails fast
)

// HTTPAction is what happens to a matching HTTP request.
type HTTPAction int

// HTTP-level mechanisms.
const (
	HTTPClean     HTTPAction = iota
	HTTPDrop                 // swallow the request ("No HTTP Resp")
	HTTPReset                // inject an RST
	HTTPBlockPage            // serve the block page directly (200)
	HTTPRedirect             // 302 to the policy's BlockPageURL
	HTTPIframe               // 200 page embedding the block page in an iframe
)

// String returns the action name.
func (a HTTPAction) String() string {
	switch a {
	case HTTPClean:
		return "http-clean"
	case HTTPDrop:
		return "http-drop"
	case HTTPReset:
		return "http-reset"
	case HTTPBlockPage:
		return "http-blockpage"
	case HTTPRedirect:
		return "http-redirect"
	case HTTPIframe:
		return "http-iframe"
	default:
		return "http-action(?)"
	}
}

// TLSAction is what happens on a blacklisted SNI.
type TLSAction int

// TLS-level mechanisms.
const (
	TLSClean TLSAction = iota
	TLSDrop
	TLSReset
)

// HTTPRule blocks requests whose Host matches the Host pattern (exact
// domain or subdomain) and whose target starts with PathPrefix ("" or "/"
// matches everything).
type HTTPRule struct {
	Host       string
	PathPrefix string
	Action     HTTPAction
}

// KeywordRule blocks any request whose "host+target" contains Keyword,
// case-insensitively — the keyword filtering that the "IP as hostname"
// local fix sidesteps (§2.3).
type KeywordRule struct {
	Keyword string
	Action  HTTPAction
}

// Policy is one ISP's filtering configuration. All matching on domains uses
// suffix semantics: a rule for "youtube.com" also covers
// "www.youtube.com".
type Policy struct {
	Name string

	DNS        map[string]DNSAction
	RedirectIP string // A record served for DNSRedirect names

	IP map[string]IPAction

	HTTP     []HTTPRule
	Keywords []KeywordRule

	SNI map[string]TLSAction

	// BlockPageURL is "host/path" of the ISP block page used by
	// HTTPRedirect and HTTPIframe; BlockPageHTML is the body served for
	// HTTPBlockPage.
	BlockPageURL  string
	BlockPageHTML []byte

	// InterceptForeignDNS also applies the DNS policy on-path to queries
	// sent to resolvers outside the ISP (public-DNS censorship).
	InterceptForeignDNS bool

	// Intermittent is the probability in [0,1) that a *matched* rule is
	// skipped — the censor "blinks", as real deployments measurably do.
	// Zero keeps enforcement deterministic. Effective only after
	// Censor.EnableChurn, which provides the seeded RNG.
	Intermittent float64

	// ResidualWindow, when positive, punishes a client beyond the
	// triggering flow: after any enforcement event, *all* new flows from
	// that client's source IP are dropped at connect time until the window
	// elapses — including circumvention traffic, which is what makes a
	// failover ladder necessary. Effective only after Censor.EnableChurn,
	// which provides the virtual clock.
	ResidualWindow time.Duration
}

// domainMatch reports whether host equals pattern or is a subdomain of it.
func domainMatch(pattern, host string) bool {
	pattern = strings.ToLower(strings.TrimSuffix(pattern, "."))
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return host == pattern || strings.HasSuffix(host, "."+pattern)
}

// DNSActionFor returns the action for a queried name.
func (p *Policy) DNSActionFor(name string) DNSAction {
	for pat, act := range p.DNS {
		if domainMatch(pat, name) {
			return act
		}
	}
	return DNSClean
}

// IPActionFor returns the action for a destination IP.
func (p *Policy) IPActionFor(ip string) IPAction {
	if a, ok := p.IP[ip]; ok {
		return a
	}
	return IPClean
}

// HTTPActionFor returns the action for a request identified by host and
// target, considering URL rules first, then keyword rules.
func (p *Policy) HTTPActionFor(host, target string) HTTPAction {
	for _, r := range p.HTTP {
		if domainMatch(r.Host, host) && (r.PathPrefix == "" || strings.HasPrefix(target, r.PathPrefix)) {
			return r.Action
		}
	}
	if len(p.Keywords) > 0 {
		url := strings.ToLower(host + target)
		for _, r := range p.Keywords {
			if strings.Contains(url, strings.ToLower(r.Keyword)) {
				return r.Action
			}
		}
	}
	return HTTPClean
}

// SNIActionFor returns the action for a TLS SNI value.
func (p *Policy) SNIActionFor(sni string) TLSAction {
	for pat, act := range p.SNI {
		if domainMatch(pat, sni) {
			return act
		}
	}
	return TLSClean
}

// hasStreamRules reports whether any stream-level inspection is needed.
func (p *Policy) hasStreamRules() bool {
	return len(p.HTTP) > 0 || len(p.Keywords) > 0 || len(p.SNI) > 0 || p.InterceptForeignDNS
}

// Stats counts enforcement events, for experiments and tests.
type Stats struct {
	mu sync.Mutex
	m  map[string]int
}

func (s *Stats) bump(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]int)
	}
	s.m[key]++
}

// Get returns the count for an event key such as "http-blockpage".
func (s *Stats) Get(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// Total returns the sum of all enforcement events.
func (s *Stats) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := 0
	for _, v := range s.m {
		t += v
	}
	return t
}
