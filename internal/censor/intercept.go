package censor

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync"

	"csaw/internal/dnsx"
	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/tlsx"
)

// Censor enforces a Policy as a netem Interceptor. The active policy can be
// swapped at any time; connections established earlier keep the policy they
// started with only for decisions already taken.
type Censor struct {
	mu     sync.RWMutex
	policy *Policy
	churn  *churnState // adversarial timeline; nil until EnableChurn

	// Stats counts enforcement events by action name.
	Stats Stats
}

// New returns a Censor enforcing p; nil means an empty (pass-everything)
// policy.
func New(p *Policy) *Censor {
	if p == nil {
		p = &Policy{}
	}
	return &Censor{policy: p}
}

// Attach installs the censor on an AS egress.
func (c *Censor) Attach(as *netem.AS) { as.SetInterceptor(c) }

// Policy returns the active policy, first advancing the epoch schedule (if
// churn is armed) to the current virtual time — a policy flip takes effect
// on the first decision made after its Start. Connections established
// earlier keep the decisions they already took under the old policy.
func (c *Censor) Policy() *Policy {
	c.advanceEpoch()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.policy
}

// SetPolicy swaps the active policy (used for blocking-event timelines such
// as §7.5).
func (c *Censor) SetPolicy(p *Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

// FilterConnect implements netem.Interceptor: residual censorship first
// (a punished client's flows are dropped regardless of destination), then
// IP blacklisting.
func (c *Censor) FilterConnect(f netem.Flow) netem.Verdict {
	p := c.Policy()
	if c.residualActive(f.Src.IP) {
		c.Stats.bump("residual-drop")
		return netem.VerdictDrop
	}
	switch p.IPActionFor(f.Dst.IP) {
	case IPDrop:
		if !c.enforce(p) {
			return netem.VerdictPass
		}
		c.Stats.bump("ip-drop")
		c.triggerResidual(p, f.Src.IP)
		return netem.VerdictDrop
	case IPReset:
		if !c.enforce(p) {
			return netem.VerdictPass
		}
		c.Stats.bump("ip-reset")
		c.triggerResidual(p, f.Src.IP)
		return netem.VerdictReset
	default:
		return netem.VerdictPass
	}
}

// WantStream implements netem.Interceptor: inspect HTTP, TLS, and —
// when foreign-DNS interception is on — DNS streams.
func (c *Censor) WantStream(f netem.Flow) bool {
	p := c.Policy()
	switch f.Dst.Port {
	case 80, tlsx.Port:
		return p.hasStreamRules()
	case dnsx.Port:
		return p.InterceptForeignDNS
	default:
		return false
	}
}

// HandleStream implements netem.Interceptor.
func (c *Censor) HandleStream(f netem.Flow, s *netem.Session) {
	switch f.Dst.Port {
	case 80:
		c.handleHTTP(f, s)
	case tlsx.Port:
		c.handleTLS(f, s)
	case dnsx.Port:
		c.handleDNS(f, s)
	default:
		s.Splice()
	}
}

// handleHTTP proxies requests one at a time, enforcing URL and keyword rules.
func (c *Censor) handleHTTP(f netem.Flow, s *netem.Session) {
	client, server := s.Client(), s.Server()
	closeBoth := func() {
		client.Close()
		server.Close()
	}
	// Both readers stay local to this handler (unlike handleTLS's, which is
	// handed to the splice goroutines), so they can go back to the pool.
	cbr := httpx.GetReader(client)
	defer httpx.PutReader(cbr)
	sbr := httpx.GetReader(server)
	defer httpx.PutReader(sbr)
	for {
		req, err := httpx.ReadRequest(cbr)
		if err != nil {
			closeBoth()
			return
		}
		p := c.Policy()
		act := p.HTTPActionFor(req.Host, req.Target)
		if act != HTTPClean {
			if !c.enforce(p) {
				act = HTTPClean // the censor blinked: this request slips through
			} else {
				c.triggerResidual(p, f.Src.IP)
			}
		}
		switch act {
		case HTTPClean:
			// Count what the censor *observes* passing, per (host,target):
			// the raw material for traffic-analysis/fingerprinting studies
			// (§8 discusses whether C-Saw's redundant requests stand out).
			c.Stats.bump("http-pass")
			if err := httpx.WriteRequest(server, req); err != nil {
				closeBoth()
				return
			}
			resp, err := httpx.ReadResponse(sbr)
			if err != nil {
				closeBoth()
				return
			}
			if err := httpx.WriteResponse(client, resp); err != nil {
				closeBoth()
				return
			}
			if req.Header.Get("Connection") == "close" || resp.Header.Get("Connection") == "close" {
				closeBoth()
				return
			}
		case HTTPDrop:
			c.Stats.bump(act.String())
			s.Blackhole() // leaves the client hanging; do not close it
			return
		case HTTPReset:
			c.Stats.bump(act.String())
			s.Reset()
			return
		case HTTPBlockPage:
			c.Stats.bump(act.String())
			_ = httpx.WriteResponse(client, p.blockPageResponse())
			closeBoth()
			return
		case HTTPRedirect:
			c.Stats.bump(act.String())
			resp := httpx.NewResponse(302, []byte("blocked"))
			resp.Header.Set("Location", "http://"+p.BlockPageURL)
			resp.Header.Set("Connection", "close")
			_ = httpx.WriteResponse(client, resp)
			closeBoth()
			return
		case HTTPIframe:
			c.Stats.bump(act.String())
			_ = httpx.WriteResponse(client, p.iframeResponse())
			closeBoth()
			return
		}
	}
}

// handleTLS peeks the ClientHello for the SNI, then passes or kills.
func (c *Censor) handleTLS(f netem.Flow, s *netem.Session) {
	client, server := s.Client(), s.Server()
	var consumed bytes.Buffer
	cbr := bufio.NewReader(client)
	hello, err := tlsx.ReadHello(io.TeeReader(cbr, &consumed))
	if err != nil {
		// Not pseudo-TLS (or the client vanished): forward what we saw and
		// splice — censors pass traffic they cannot parse.
		if consumed.Len() > 0 {
			if _, werr := server.Write(consumed.Bytes()); werr != nil {
				client.Close()
				server.Close()
				return
			}
		}
		spliceBuffered(s, cbr)
		return
	}
	p := c.Policy()
	act := p.SNIActionFor(hello.Name)
	if act != TLSClean {
		if !c.enforce(p) {
			act = TLSClean
		} else {
			c.triggerResidual(p, f.Src.IP)
		}
	}
	switch act {
	case TLSDrop:
		c.Stats.bump("sni-drop")
		s.Blackhole()
	case TLSReset:
		c.Stats.bump("sni-reset")
		s.Reset()
	default:
		if _, err := server.Write(consumed.Bytes()); err != nil {
			client.Close()
			server.Close()
			return
		}
		spliceBuffered(s, cbr)
	}
}

// spliceBuffered is Session.Splice but sources the client→server direction
// from a bufio.Reader that may hold already-peeked bytes.
func spliceBuffered(s *netem.Session, cbr *bufio.Reader) {
	client, server := s.Client(), s.Server()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := io.Copy(server, cbr)
		if err != nil && netem.IsReset(err) {
			if sc, ok := server.(*netem.Conn); ok {
				sc.Reset()
				return
			}
		}
		server.Close()
	}()
	go func() {
		defer wg.Done()
		_, err := io.Copy(client, server)
		if err != nil && netem.IsReset(err) {
			if cc, ok := client.(*netem.Conn); ok {
				cc.Reset()
				return
			}
		}
		client.Close()
	}()
	wg.Wait()
}

// handleDNS applies the DNS policy on-path to queries bound for foreign
// resolvers (DNS injection).
func (c *Censor) handleDNS(f netem.Flow, s *netem.Session) {
	client, server := s.Client(), s.Server()
	defer client.Close()
	defer server.Close()
	for {
		q, err := dnsx.ReadMessage(client)
		if err != nil {
			return
		}
		name := ""
		if len(q.Questions) > 0 {
			name = q.Questions[0].Name
		}
		p := c.Policy()
		act := p.DNSActionFor(name)
		if act != DNSClean {
			if !c.enforce(p) {
				act = DNSClean
			} else {
				c.triggerResidual(p, f.Src.IP)
			}
		}
		if act == DNSInject {
			// Injection: the forged answer leaves immediately, and the
			// query still reaches the real resolver — its genuine answer
			// arrives second, which is exactly the signature Hold-On
			// detects (same ID, later, different data).
			c.Stats.bump(act.String())
			if forged := forgeDNSReply(q, DNSRedirect, p.RedirectIP); forged != nil {
				if err := dnsx.WriteMessage(client, forged); err != nil {
					return
				}
			}
			if err := dnsx.WriteMessage(server, q); err != nil {
				return
			}
			resp, err := dnsx.ReadMessage(server)
			if err != nil {
				return
			}
			if err := dnsx.WriteMessage(client, resp); err != nil {
				return
			}
			continue
		}
		if forged := forgeDNSReply(q, act, p.RedirectIP); forged != nil {
			c.Stats.bump(act.String())
			if err := dnsx.WriteMessage(client, forged); err != nil {
				return
			}
			continue
		}
		if act == DNSDrop {
			c.Stats.bump(act.String())
			continue // swallow the query
		}
		// Clean: forward and relay the answer.
		if err := dnsx.WriteMessage(server, q); err != nil {
			return
		}
		resp, err := dnsx.ReadMessage(server)
		if err != nil {
			return
		}
		if err := dnsx.WriteMessage(client, resp); err != nil {
			return
		}
	}
}

// forgeDNSReply builds the tampered response for an action, or nil if the
// action produces no response (clean or drop).
func forgeDNSReply(q *dnsx.Message, act DNSAction, redirectIP string) *dnsx.Message {
	switch act {
	case DNSNXDomain, DNSServFail, DNSRefused:
		r := q.Reply()
		switch act {
		case DNSNXDomain:
			r.RCode = dnsx.RCodeNXDomain
		case DNSServFail:
			r.RCode = dnsx.RCodeServFail
		case DNSRefused:
			r.RCode = dnsx.RCodeRefused
		}
		return r
	case DNSRedirect:
		r := q.Reply()
		name := ""
		if len(q.Questions) > 0 {
			name = q.Questions[0].Name
		}
		return r.AnswerA(name, redirectIP, 60)
	default:
		return nil
	}
}

// DefaultBlockPageHTML is the block page served when a policy does not
// provide one; its phrasing matches the templates the phase-1 classifier is
// trained on.
const DefaultBlockPageHTML = `<html><head><title>Access Denied</title>` +
	`<meta name="generator" content="isp-filter"></head>` +
	`<body><h1>This website is not accessible</h1>` +
	`<p>The site you are trying to access has been blocked under applicable law.</p>` +
	`<hr><i>Surf Safely</i></body></html>`

func (p *Policy) blockPageBody() []byte {
	if len(p.BlockPageHTML) > 0 {
		return p.BlockPageHTML
	}
	return []byte(DefaultBlockPageHTML)
}

func (p *Policy) blockPageResponse() *httpx.Response {
	resp := httpx.NewResponse(200, p.blockPageBody())
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Connection", "close")
	return resp
}

func (p *Policy) iframeResponse() *httpx.Response {
	body := fmt.Sprintf(`<html><head><title></title></head><body>`+
		`<iframe src="http://%s" width="100%%" height="100%%" frameborder="0"></iframe>`+
		`</body></html>`, p.BlockPageURL)
	resp := httpx.NewResponse(200, []byte(body))
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Connection", "close")
	return resp
}

// ResolverHandler returns a dnsx.Handler for the ISP's recursive resolver:
// it applies the DNS policy first and otherwise answers honestly from reg.
func (c *Censor) ResolverHandler(reg *dnsx.Registry, ttl uint32) dnsx.Handler {
	honest := dnsx.AuthHandler(reg, ttl)
	return dnsx.HandlerFunc(func(q *dnsx.Message, flow netem.Flow) *dnsx.Message {
		name := ""
		if len(q.Questions) > 0 {
			name = q.Questions[0].Name
		}
		p := c.Policy()
		act := p.DNSActionFor(name)
		if act != DNSClean && !c.enforce(p) {
			act = DNSClean
		}
		if act == DNSClean {
			return honest.HandleDNS(q, flow)
		}
		if act == DNSInject {
			act = DNSRedirect // a lying resolver cannot "race" itself
		}
		c.Stats.bump(act.String())
		c.triggerResidual(p, flow.Src.IP)
		return forgeDNSReply(q, act, p.RedirectIP) // nil for DNSDrop: server stays silent
	})
}
