package lantern

import (
	"context"
	"testing"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/proxynet"
	"csaw/internal/vtime"
)

func lanternWorld(t *testing.T) (*netem.Network, *netem.Host, *Network) {
	t.Helper()
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(13), netem.WithJitter(0))
	pk := n.AddAS(1, "PK-ISP", "PK")
	free := n.AddAS(2, "Free", "EU")
	client := n.MustAddHost("client", "10.0.0.1", "pk", pk)
	origin := n.MustAddHost("origin", "93.184.216.34", "us", free)
	httpx.Serve(origin.MustListen(80), httpx.HandlerFunc(func(req *httpx.Request, _ netem.Flow) *httpx.Response {
		return httpx.NewResponse(200, []byte("hello "+req.Host))
	}))
	n.SetRTT("pk", "us", 180*time.Millisecond)
	n.SetRTT("pk", "de", 250*time.Millisecond)
	n.SetRTT("de", "us", 100*time.Millisecond)

	ln := New(proxynet.IPLookup)
	return n, client, ln
}

func TestDiscoverTrustOrder(t *testing.T) {
	n, _, ln := lanternWorld(t)
	free := n.AS(2)
	pa, err := ln.RunProxy("alice", n.MustAddHost("alice-proxy", "20.1.0.1", "de", free))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ln.RunProxy("bob", n.MustAddHost("bob-proxy", "20.1.0.2", "de", free))
	if err != nil {
		t.Fatal(err)
	}
	// user ↔ alice; alice ↔ bob. bob is a friend-of-friend.
	ln.Befriend("user", "alice")
	ln.Befriend("alice", "bob")

	got := ln.Discover("user")
	if len(got) != 2 || got[0] != pa || got[1] != pb {
		t.Fatalf("Discover = %v, want [alice bob]", got)
	}
	// A stranger with no path is invisible.
	if _, err := ln.RunProxy("mallory", n.MustAddHost("mallory-proxy", "20.1.0.3", "de", free)); err != nil {
		t.Fatal(err)
	}
	if got := ln.Discover("user"); len(got) != 2 {
		t.Fatalf("stranger's proxy discovered: %v", got)
	}
}

func TestDialThroughTrustedProxy(t *testing.T) {
	n, client, ln := lanternWorld(t)
	free := n.AS(2)
	if _, err := ln.RunProxy("alice", n.MustAddHost("alice-proxy", "20.1.0.1", "de", free)); err != nil {
		t.Fatal(err)
	}
	ln.Befriend("user", "alice")
	lc := NewClient(client, ln, "user")

	c := &httpx.Client{Dial: lc.Dial, Clock: n.Clock(), Timeout: 15 * time.Second}
	resp, err := c.Get(context.Background(), "93.184.216.34:80", "blocked.example", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "hello blocked.example" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestNoFriendsNoService(t *testing.T) {
	_, client, ln := lanternWorld(t)
	lc := NewClient(client, ln, "loner")
	if _, err := lc.Dial(context.Background(), "93.184.216.34:80"); err == nil {
		t.Fatal("dial with no trusted proxies succeeded")
	}
}

func TestFailoverDownTrustOrder(t *testing.T) {
	n, client, ln := lanternWorld(t)
	free := n.AS(2)
	// alice's proxy is registered in the graph but its host is unreachable
	// (no listener — simulate it by registering then closing).
	ph := n.MustAddHost("alice-proxy", "20.1.0.1", "de", free)
	pa, err := ln.RunProxy("alice", ph)
	if err != nil {
		t.Fatal(err)
	}
	pa.srv.Close()
	if _, err := ln.RunProxy("bob", n.MustAddHost("bob-proxy", "20.1.0.2", "de", free)); err != nil {
		t.Fatal(err)
	}
	ln.Befriend("user", "alice")
	ln.Befriend("alice", "bob")

	lc := NewClient(client, ln, "user")
	c := &httpx.Client{Dial: lc.Dial, Clock: n.Clock(), Timeout: 15 * time.Second}
	resp, err := c.Get(context.Background(), "93.184.216.34:80", "x.example", "/")
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLanternPathLongerThanDirect(t *testing.T) {
	// Trust-based proxy choice ignores latency: traffic detours through the
	// friend's proxy (Figure 1c's shape).
	n, client, ln := lanternWorld(t)
	free := n.AS(2)
	if _, err := ln.RunProxy("alice", n.MustAddHost("alice-proxy", "20.1.0.1", "de", free)); err != nil {
		t.Fatal(err)
	}
	ln.Befriend("user", "alice")
	lc := NewClient(client, ln, "user")

	fetch := func(dial netem.DialFunc) time.Duration {
		start := n.Clock().Now()
		c := &httpx.Client{Dial: dial, Clock: n.Clock(), Timeout: 15 * time.Second}
		if _, err := c.Get(context.Background(), "93.184.216.34:80", "x.example", "/"); err != nil {
			t.Fatal(err)
		}
		return n.Clock().Since(start)
	}
	viaLantern := fetch(lc.Dial)
	direct := fetch(client.Dial)
	if viaLantern <= direct {
		t.Errorf("lantern %v <= direct %v, want detour cost", viaLantern, direct)
	}
}
