// Package lantern simulates Lantern (§2.2): a network of HTTPS forward
// proxies discovered through *trust relationships* rather than proximity.
// Unlike Tor it uses a single relay hop and provides no anonymity, trading
// that for availability — and because proxy choice follows the trust graph
// instead of latency, "traffic can go through longer paths compared to the
// direct approach" (§2.3, Figure 1c), which is exactly the performance
// shape the evaluation measures.
package lantern

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"

	"csaw/internal/netem"
	"csaw/internal/proxynet"
)

// ProxyPort is the port Lantern proxies listen on. It is intentionally not
// 80/443: Lantern tunnels look like ordinary TLS to an unremarkable host.
const ProxyPort = 8443

// Proxy is one volunteer-run Lantern proxy.
type Proxy struct {
	Owner string // user who runs it
	Host  *netem.Host
	srv   *proxynet.Server
}

// Addr returns the proxy's dial address.
func (p *Proxy) Addr() string { return fmt.Sprintf("%s:%d", p.Host.IP(), ProxyPort) }

// Network is the Lantern trust graph plus the proxies users run.
type Network struct {
	mu      sync.RWMutex
	friends map[string][]string // user → friends
	proxies map[string][]*Proxy // owner → proxies
	lookup  proxynet.Lookup
}

// New creates an empty Lantern network whose proxies resolve names with
// lookup.
func New(lookup proxynet.Lookup) *Network {
	return &Network{
		friends: make(map[string][]string),
		proxies: make(map[string][]*Proxy),
		lookup:  lookup,
	}
}

// Befriend records a mutual trust edge between two users.
func (n *Network) Befriend(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.friends[a] = append(n.friends[a], b)
	n.friends[b] = append(n.friends[b], a)
}

// RunProxy starts a proxy owned by user on host.
func (n *Network) RunProxy(owner string, host *netem.Host) (*Proxy, error) {
	srv, err := proxynet.Serve(host, ProxyPort, n.lookup)
	if err != nil {
		return nil, err
	}
	p := &Proxy{Owner: owner, Host: host, srv: srv}
	n.mu.Lock()
	n.proxies[owner] = append(n.proxies[owner], p)
	n.mu.Unlock()
	return p, nil
}

// Discover returns the proxies a user can reach through trust, breadth-first
// up to two hops (friends, then friends-of-friends), in deterministic order.
// This ordering — social distance, not latency — is what makes Lantern's
// paths long.
func (n *Network) Discover(user string) []*Proxy {
	n.mu.RLock()
	defer n.mu.RUnlock()
	seen := map[string]bool{user: true}
	var order []string
	frontier := append([]string(nil), n.friends[user]...)
	sort.Strings(frontier)
	for hop := 0; hop < 2 && len(frontier) > 0; hop++ {
		var next []string
		for _, f := range frontier {
			if seen[f] {
				continue
			}
			seen[f] = true
			order = append(order, f)
			next = append(next, n.friends[f]...)
		}
		sort.Strings(next)
		frontier = next
	}
	var out []*Proxy
	for _, owner := range order {
		out = append(out, n.proxies[owner]...)
	}
	return out
}

// Client tunnels through trust-discovered proxies.
type Client struct {
	host *netem.Host
	net  *Network
	user string

	mu      sync.Mutex
	proxies []*Proxy
}

// NewClient creates a Lantern client for the given user on host.
func NewClient(host *netem.Host, n *Network, user string) *Client {
	return &Client{host: host, net: n, user: user}
}

// refresh re-discovers proxies if none are cached.
func (c *Client) refresh() []*Proxy {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.proxies) == 0 {
		c.proxies = c.net.Discover(c.user)
	}
	return c.proxies
}

// Dial tunnels to address through the first reachable trusted proxy,
// failing over down the trust order.
func (c *Client) Dial(ctx context.Context, address string) (net.Conn, error) {
	proxies := c.refresh()
	if len(proxies) == 0 {
		return nil, fmt.Errorf("lantern: user %q has no trusted proxies", c.user)
	}
	clock := c.host.Network().Clock()
	var lastErr error
	for _, p := range proxies {
		conn, err := proxynet.Via(c.host.Dial, clock, p.Addr())(ctx, address)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("lantern: all %d proxies failed: %w", len(proxies), lastErr)
}

// Dialer returns the client's DialFunc.
func (c *Client) Dialer() netem.DialFunc { return c.Dial }
