package fleet

import (
	"io"
	"testing"
	"time"

	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

// TestSoakSameSeedSameSummary is the fleet determinism gate: a ~500-client
// run executed twice with the same seed must render byte-identical
// deterministic summaries — plan aggregates AND the final global-DB
// contents (per-AS URL sets down to their hashes). The whole point of the
// plan-based driver, the P=0 policy, and the affirmative-signal scenario
// (see the package comment) is to make this hold even under the race
// detector's scheduling perturbation, where `make race` runs it.
func TestSoakSameSeedSameSummary(t *testing.T) {
	wl := Workload{
		Population:   480,
		Duration:     30 * time.Minute,
		Seed:         23,
		Sites:        150,
		ISPs:         6,
		BlockedFrac:  0.18,
		MeanSessions: 1.2,
		MaxFetches:   3,
	}
	// Both runs record flight-recorder spans into a discarded stream: with
	// 48 parallel workers the trace *content* is schedule-dependent (that is
	// what csaw-fleet -trace's workers=1 discipline is for), but the soak is
	// where `make race` proves the recorder's hot path — pooled spans, lane
	// refcounts, the shared sink — is data-race-free under real contention.
	withTrace := func(w *worldgen.World, o *Options) {
		o.Workers = 48
		o.Trace = trace.New(w.Clock, trace.NewStreamSink(io.Discard), trace.WithSampling(16))
	}
	first := runFleetOpts(t, wl, 2400, withTrace)
	second := runFleetOpts(t, wl, 2400, withTrace)

	if !first.Summary.Consistent() {
		t.Errorf("run 1 diverged from plan expectation:\n%s", first.Summary.Render())
	}
	a, b := first.Summary.Render(), second.Summary.Render()
	if a != b {
		t.Errorf("same seed, different summaries\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	// The measured halves must agree on work done even though their timing
	// differs: every planned fetch executed, none lost to errors.
	for i, m := range []Measured{first.Measured, second.Measured} {
		if m.Fetches != first.Summary.Fetches || m.FetchErrors > 0 || m.Degraded > 0 {
			t.Errorf("run %d: fetches %d/%d, errors %d, degraded %d",
				i+1, m.Fetches, first.Summary.Fetches, m.FetchErrors, m.Degraded)
		}
	}
	t.Logf("soak: %d clients, %d fetches, peak %d goroutines, %d syncs",
		first.Summary.Population, first.Measured.Fetches,
		first.Measured.PeakGoroutines, first.Measured.Syncs)
}
