package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"csaw/internal/metrics"
)

// pltReservoirCap bounds per-source PLT memory at fleet scale; reservoir
// sampling keeps the quantiles unbiased (metrics.NewReservoir).
const pltReservoirCap = 4096

// Stats is the driver's live aggregate state. Workers update it as they go;
// Snapshot serves the live counters cmd/csaw-fleet prints while a run is in
// flight.
type Stats struct {
	mu sync.Mutex

	joined, left, sessions int
	fetches, fetchErrors   int
	syncs, syncErrors      int
	degraded               int
	peakGoroutines         int

	plt      map[string]*metrics.Distribution // per Result.Source
	counters map[string]int                   // folded client event counters
	seed     int64
}

func newStats(seed int64) *Stats {
	return &Stats{
		plt:      make(map[string]*metrics.Distribution),
		counters: make(map[string]int),
		seed:     seed,
	}
}

func (st *Stats) recordFetch(source string, took time.Duration, failed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fetches++
	if failed {
		st.fetchErrors++
		return
	}
	d := st.plt[source]
	if d == nil {
		h := fnv.New64a()
		h.Write([]byte(source))
		d = metrics.NewReservoir(pltReservoirCap, st.seed^int64(h.Sum64()))
		st.plt[source] = d
	}
	d.AddDuration(took)
}

func (st *Stats) recordSync(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.syncs++
	if err != nil {
		st.syncErrors++
	}
}

func (st *Stats) addCounters(c map[string]int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, v := range c {
		st.counters[k] += v
	}
}

func (st *Stats) bump(field *int) {
	st.mu.Lock()
	*field++
	st.mu.Unlock()
}

func (st *Stats) observeGoroutines(n int) {
	st.mu.Lock()
	if n > st.peakGoroutines {
		st.peakGoroutines = n
	}
	st.mu.Unlock()
}

// Snapshot is a point-in-time copy of the live counters.
type Snapshot struct {
	VirtualElapsed time.Duration
	Joined, Left   int
	Sessions       int
	Fetches        int
	FetchErrors    int
	Syncs          int
	SyncErrors     int
	Goroutines     int
}

func (st *Stats) snapshot(elapsed time.Duration, goroutines int) Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Snapshot{
		VirtualElapsed: elapsed,
		Joined:         st.joined, Left: st.left,
		Sessions: st.sessions,
		Fetches:  st.fetches, FetchErrors: st.fetchErrors,
		Syncs: st.syncs, SyncErrors: st.syncErrors,
		Goroutines: goroutines,
	}
}

// ASSummary is one AS's slice of the deterministic summary: the population
// assigned there, the policy's blocked-set size, and what the global DB
// ended up listing — which must equal the plan-level expectation.
type ASSummary struct {
	ASN           int
	Clients       int
	PolicyBlocked int
	Expected      int    // |blocked ∩ visited| from the plan
	Listed        int    // entries the global DB serves for this AS
	ExpectedHash  string // fnv64 over the sorted expected URL set
	ListedHash    string // fnv64 over the sorted listed URL set
}

// Summary is the deterministic half of a run result: pure plan aggregates
// plus the final global-DB contents. Same seed ⇒ byte-identical Render.
type Summary struct {
	Population    int
	Seed          int64
	Sites         int
	ISPs          int
	Sessions      int
	Fetches       int
	Churned       int
	DistinctSites int

	RegisteredUsers int
	BlockedURLs     int // distinct URLs reported blocked anywhere
	BlockedDomains  int
	ASesReporting   int
	BlockTypes      int

	PerAS []ASSummary
}

// Render produces the canonical summary text — the byte-identical artifact
// of the determinism gate.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet summary (seed %d) ==\n", s.Seed)
	fmt.Fprintf(&b, "population      %6d   (churned %d)\n", s.Population, s.Churned)
	fmt.Fprintf(&b, "catalog         %6d sites, %d ISPs\n", s.Sites, s.ISPs)
	fmt.Fprintf(&b, "plan            %6d sessions, %d fetches, %d distinct sites\n",
		s.Sessions, s.Fetches, s.DistinctSites)
	fmt.Fprintf(&b, "global_DB       %6d users, %d blocked URLs, %d domains, %d ASes, %d block types\n",
		s.RegisteredUsers, s.BlockedURLs, s.BlockedDomains, s.ASesReporting, s.BlockTypes)
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s  %-18s %s\n",
		"AS", "clients", "policy", "expected", "listed", "expected-hash", "listed-hash")
	for _, a := range s.PerAS {
		fmt.Fprintf(&b, "%-8d %8d %8d %8d %8d  %-18s %s\n",
			a.ASN, a.Clients, a.PolicyBlocked, a.Expected, a.Listed, a.ExpectedHash, a.ListedHash)
	}
	return b.String()
}

// Consistent reports whether every AS's listed set matches the plan-level
// expectation — the end-to-end correctness check (measure → report → sync →
// aggregate) the soak test asserts.
func (s Summary) Consistent() bool {
	for _, a := range s.PerAS {
		if a.Listed != a.Expected || a.ListedHash != a.ExpectedHash {
			return false
		}
	}
	return true
}

// PLTStats summarizes one source's page-load-time distribution (virtual
// seconds).
type PLTStats struct {
	N    int     `json:"n"`
	P50  float64 `json:"p50_s"`
	P95  float64 `json:"p95_s"`
	Mean float64 `json:"mean_s"`
	Max  float64 `json:"max_s"`
}

// Measured is the timing-dependent half of a run result: everything here
// carries scheduler jitter by design and is excluded from the determinism
// comparison.
type Measured struct {
	VirtualSeconds float64             `json:"virtual_seconds"`
	Workers        int                 `json:"workers"`
	Scale          float64             `json:"scale"`
	Fetches        int                 `json:"fetches"`
	FetchErrors    int                 `json:"fetch_errors"`
	Sessions       int                 `json:"sessions"`
	Syncs          int                 `json:"syncs"`
	SyncErrors     int                 `json:"sync_errors"`
	Joined         int                 `json:"joined"`
	Left           int                 `json:"left"`
	Degraded       int                 `json:"degraded_clients"`
	PeakGoroutines int                 `json:"peak_goroutines"`
	Updates        int                 `json:"updates"`
	PLT            map[string]PLTStats `json:"plt_by_source"`
	Counters       map[string]int      `json:"client_counters"`
}

// DeltaSyncStats is the sync-path mix of a run: how the fleet's list
// downloads split across full bodies, delta responses, and 304s, and what
// one list exchange cost on the wire. The counts come from the per-client
// global-DB counters folded at retire time, so they cover every client that
// completed its timeline.
type DeltaSyncStats struct {
	FetchFull  int `json:"fetch_full"`
	FetchDelta int `json:"fetch_delta"`
	Fetch304   int `json:"fetch_304"`
	ListBytes  int `json:"list_bytes"`
	// BytesPerSync is ListBytes over all list exchanges (full + delta + 304):
	// the average wire cost of keeping one client's list current for one
	// sync round.
	BytesPerSync float64 `json:"bytes_per_sync"`
}

// DeltaSync extracts the sync-path mix from the folded client counters.
func (m Measured) DeltaSync() DeltaSyncStats {
	d := DeltaSyncStats{
		FetchFull:  m.Counters["gdb-fetch-full"],
		FetchDelta: m.Counters["gdb-fetch-delta"],
		Fetch304:   m.Counters["gdb-fetch-304"],
		ListBytes:  m.Counters["gdb-list-bytes"],
	}
	if n := d.FetchFull + d.FetchDelta + d.Fetch304; n > 0 {
		d.BytesPerSync = float64(d.ListBytes) / float64(n)
	}
	return d
}

// Render formats the measured section for humans.
func (m Measured) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- measured (not deterministic) --\n")
	fmt.Fprintf(&b, "virtual span    %.1fs at scale %.0f, %d workers\n", m.VirtualSeconds, m.Scale, m.Workers)
	fmt.Fprintf(&b, "fetches         %d (%d errors), %d sessions\n", m.Fetches, m.FetchErrors, m.Sessions)
	fmt.Fprintf(&b, "syncs           %d (%d errors), %d updates, %d degraded clients\n",
		m.Syncs, m.SyncErrors, m.Updates, m.Degraded)
	fmt.Fprintf(&b, "lifecycle       %d joined, %d left early, peak %d goroutines\n",
		m.Joined, m.Left, m.PeakGoroutines)
	if d := m.DeltaSync(); d.FetchFull+d.FetchDelta+d.Fetch304 > 0 {
		fmt.Fprintf(&b, "sync path       %d full, %d delta, %d 304; %d list bytes (%.0f/sync)\n",
			d.FetchFull, d.FetchDelta, d.Fetch304, d.ListBytes, d.BytesPerSync)
	}
	srcs := make([]string, 0, len(m.PLT))
	for s := range m.PLT {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		p := m.PLT[s]
		fmt.Fprintf(&b, "plt %-18s n=%-6d p50=%.2fs p95=%.2fs mean=%.2fs max=%.2fs\n",
			s, p.N, p.P50, p.P95, p.Mean, p.Max)
	}
	return b.String()
}

// RunResult pairs both halves.
type RunResult struct {
	Summary  Summary
	Measured Measured
}

// setHash is the order-independent fingerprint of a URL set: fnv64 over the
// sorted, newline-joined members.
func setHash(set map[string]bool) (int, string) {
	urls := make([]string, 0, len(set))
	for u := range set {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	h := fnv.New64a()
	for _, u := range urls {
		h.Write([]byte(u))
		h.Write([]byte{'\n'})
	}
	return len(urls), fmt.Sprintf("%016x", h.Sum64())
}
