package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"csaw/internal/leakcheck"
	"csaw/internal/worldgen"
)

// runFleet builds a world + scenario for the workload and executes it.
func runFleet(t *testing.T, wl Workload, scale float64, workers int) *RunResult {
	t.Helper()
	return runFleetOpts(t, wl, scale, func(_ *worldgen.World, o *Options) { o.Workers = workers })
}

// runFleetOpts is runFleet with an options hook: mod sees the built world
// (tracers need its clock) and the default Options before the run starts.
func runFleetOpts(t *testing.T, wl Workload, scale float64, mod func(w *worldgen.World, o *Options)) *RunResult {
	t.Helper()
	return runFleetWorld(t, wl, worldgen.Options{Scale: scale, Seed: wl.Seed}, mod)
}

// runFleetWorld is the general form: the caller picks the full world options
// (clock mode included).
func runFleetWorld(t *testing.T, wl Workload, wopts worldgen.Options, mod func(w *worldgen.World, o *Options)) *RunResult {
	t.Helper()
	w, err := worldgen.New(wopts)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	plan := BuildPlan(wl)
	opts := Options{Workers: DefaultWorkers}
	if mod != nil {
		mod(w, &opts)
	}
	res, err := Run(context.Background(), w, sc, plan, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// The driver joins and retires every client over the run; afterwards
// nothing of the client plane — sync loops, background settlements,
// stop-context watchers — may survive. The baseline is taken in the
// options hook, after the world is built, so world-owned goroutines
// (listener accept loops) are excluded and only client/driver goroutines
// are measured.
func TestFleetRunLeavesNoClientGoroutines(t *testing.T) {
	wl := smokeWorkload(17)
	wl.Population = 40
	_ = runFleetOpts(t, wl, 2400, func(_ *worldgen.World, o *Options) {
		o.Workers = 8
		leakcheck.Check(t)
	})
}

// smokeWorkload is small enough for the ordinary test run.
func smokeWorkload(seed int64) Workload {
	return Workload{
		Population:   60,
		Duration:     30 * time.Minute,
		Seed:         seed,
		Sites:        80,
		ISPs:         4,
		BlockedFrac:  0.2,
		MeanSessions: 1.5,
		MaxFetches:   3,
	}
}

func TestFleetSmoke(t *testing.T) {
	res := runFleet(t, smokeWorkload(11), 2400, 16)
	s := res.Summary
	if s.RegisteredUsers != s.Population {
		t.Errorf("registered %d of %d clients", s.RegisteredUsers, s.Population)
	}
	if !s.Consistent() {
		t.Errorf("global DB diverged from the plan expectation:\n%s", s.Render())
	}
	if s.BlockedURLs == 0 {
		t.Error("no blocked URLs reported — the scenario or detection pipeline is dead")
	}
	m := res.Measured
	if m.Fetches != s.Fetches {
		t.Errorf("executed %d fetches, planned %d", m.Fetches, s.Fetches)
	}
	if m.FetchErrors > 0 {
		t.Errorf("%d fetch errors (counters: %v)", m.FetchErrors, m.Counters)
	}
	if m.SyncErrors > 0 || m.Degraded > 0 {
		t.Errorf("sync errors %d, degraded %d", m.SyncErrors, m.Degraded)
	}
	if len(m.PLT) == 0 {
		t.Error("no PLT samples recorded")
	}
	t.Logf("\n%s%s", s.Render(), m.Render())
}

// TestFleetDeltaSyncDefault: the driver sizes the global DB's delta edit
// history to the population (deltaHistoryFor), so delta sync is the fleet's
// default path. A full body on a repeat sync is legitimate only when the
// delta would not be smaller (the empty→populated transition, or heavy
// churn — the store's size guard); what must never happen is the all-full
// regime of tags falling out of history, where every sync re-downloads the
// whole list. The bound below fails that regime with wide margin while
// tolerating the converging-phase transitions.
func TestFleetDeltaSyncDefault(t *testing.T) {
	res := runFleet(t, smokeWorkload(11), 2400, 16)
	d := res.Measured.DeltaSync()
	m := res.Measured
	if d.FetchDelta == 0 {
		t.Errorf("no delta-encoded fetches in a converging run (mix: %+v)", d)
	}
	if d.Fetch304 == 0 {
		t.Errorf("no 304s in a run with quiet sync rounds (mix: %+v)", d)
	}
	if d.ListBytes == 0 || d.BytesPerSync <= 0 {
		t.Errorf("sync-path byte accounting empty: %+v", d)
	}
	// All-full would put FetchFull at roughly Joined+Syncs; converging
	// transitions cost at most a couple of fulls per client.
	if max := m.Joined + m.Syncs/2; d.FetchFull > max {
		t.Errorf("%d full list fetches (joined %d, syncs %d) — repeat syncs fell off the delta path", d.FetchFull, m.Joined, m.Syncs)
	}
	t.Logf("sync path: %d full, %d delta, %d 304; %d list bytes (%.0f/sync)",
		d.FetchFull, d.FetchDelta, d.Fetch304, d.ListBytes, d.BytesPerSync)
}

// TestDeltaHistoryClamp pins the sizing rule the driver applies.
func TestDeltaHistoryClamp(t *testing.T) {
	for _, tc := range []struct{ pop, want int }{
		{0, 64}, {10, 64}, {64, 64}, {65, 65}, {1500, 1500}, {4096, 4096}, {100_000, 4096},
	} {
		if got := deltaHistoryFor(tc.pop); got != tc.want {
			t.Errorf("deltaHistoryFor(%d) = %d, want %d", tc.pop, got, tc.want)
		}
	}
}

// TestPlanDeterminism: equal workloads yield equal plans (pure generation,
// no execution).
func TestPlanDeterminism(t *testing.T) {
	wl := smokeWorkload(5)
	a, b := BuildPlan(wl), BuildPlan(wl)
	if a.Sessions != b.Sessions || a.Fetches != b.Fetches || a.Churned != b.Churned ||
		a.DistinctSites != b.DistinctSites {
		t.Fatalf("plan aggregates diverged: %+v vs %+v", a, b)
	}
	for i := range a.Clients {
		ca, cb := a.Clients[i], b.Clients[i]
		if ca.ISP != cb.ISP || ca.Join != cb.Join || ca.Leave != cb.Leave ||
			len(ca.Sessions) != len(cb.Sessions) {
			t.Fatalf("client %d diverged: %+v vs %+v", i, ca, cb)
		}
		for j := range ca.Sessions {
			sa, sb := ca.Sessions[j], cb.Sessions[j]
			if sa.At != sb.At || len(sa.URLs) != len(sb.URLs) {
				t.Fatalf("client %d session %d diverged", i, j)
			}
			for k := range sa.URLs {
				if sa.URLs[k] != sb.URLs[k] {
					t.Fatalf("client %d session %d url %d: %s vs %s", i, j, k, sa.URLs[k], sb.URLs[k])
				}
			}
		}
	}
}

// TestWorkloadShape sanity-checks the generators: churn bounded by the
// window, sessions inside each client's active span, fetch counts capped.
func TestWorkloadShape(t *testing.T) {
	wl := Workload{Population: 300, Seed: 9}.WithDefaults()
	p := BuildPlan(wl)
	if len(p.Clients) != 300 {
		t.Fatalf("%d clients", len(p.Clients))
	}
	perISP := 0
	for _, n := range p.PerISP {
		perISP += n
	}
	if perISP != 300 {
		t.Errorf("ISP mix sums to %d", perISP)
	}
	for _, cp := range p.Clients {
		end := wl.Duration
		if cp.Leave > 0 {
			if cp.Leave <= cp.Join || cp.Leave > wl.Duration {
				t.Fatalf("client %d: leave %v outside (join %v, window %v]", cp.Index, cp.Leave, cp.Join, wl.Duration)
			}
			end = cp.Leave
		}
		if cp.Join < 0 || cp.Join > wl.JoinWindow {
			t.Fatalf("client %d: join %v outside window %v", cp.Index, cp.Join, wl.JoinWindow)
		}
		last := time.Duration(-1)
		for _, s := range cp.Sessions {
			if s.At < cp.Join || s.At > end {
				t.Fatalf("client %d: session at %v outside [%v, %v]", cp.Index, s.At, cp.Join, end)
			}
			if s.At < last {
				t.Fatalf("client %d: sessions unsorted", cp.Index)
			}
			last = s.At
			if len(s.URLs) < 1 || len(s.URLs) > wl.MaxFetches {
				t.Fatalf("client %d: %d fetches in a session (max %d)", cp.Index, len(s.URLs), wl.MaxFetches)
			}
		}
	}
	if p.Churned == 0 {
		t.Error("no churned clients at default ChurnFrac over 300 clients")
	}
}

// TestEventModeMatchesScaledMode: the Summary is a function of the seed, not
// the clock engine. A same-seed run under the discrete-event scheduler must
// render byte-for-byte the Summary the real-scaled clock produces — the
// invariant that lets the 100k-client event runs stand in for scaled runs.
func TestEventModeMatchesScaledMode(t *testing.T) {
	wl := smokeWorkload(11)
	scaled := runFleetOpts(t, wl, 2400, nil)
	event := runFleetWorld(t, wl, worldgen.Options{EventDriven: true, Seed: wl.Seed}, nil)
	if !event.Summary.Consistent() {
		t.Errorf("event-mode global DB diverged from the plan expectation:\n%s", event.Summary.Render())
	}
	if got, want := event.Summary.Render(), scaled.Summary.Render(); got != want {
		t.Errorf("event-mode summary diverged from scaled-mode:\n--- scaled ---\n%s--- event ---\n%s", want, got)
	}
}

// TestEventModeSmoke: the event engine also holds the fleet's health
// invariants (no fetch/sync errors, nothing degraded), not just the summary.
func TestEventModeSmoke(t *testing.T) {
	res := runFleetWorld(t, smokeWorkload(23), worldgen.Options{EventDriven: true, Seed: 23}, nil)
	if !res.Summary.Consistent() {
		t.Errorf("global DB diverged:\n%s", res.Summary.Render())
	}
	m := res.Measured
	if m.FetchErrors > 0 || m.SyncErrors > 0 || m.Degraded > 0 {
		t.Errorf("fetch errors %d, sync errors %d, degraded %d", m.FetchErrors, m.SyncErrors, m.Degraded)
	}
	if m.Scale != 0 {
		t.Errorf("Measured.Scale = %v under event mode, want 0", m.Scale)
	}
}

// TestFleetWALByteIdentical: durability must be invisible to the plan
// plane. A same-seed run against a WAL-backed global DB (with compaction
// exercised) renders byte-for-byte the Summary of the in-memory run — the
// write-ahead logging, snapshotting, and truncation never perturb ingest
// semantics, aggregation order, or validator tags.
func TestFleetWALByteIdentical(t *testing.T) {
	wl := smokeWorkload(11)
	mem := runFleetWorld(t, wl, worldgen.Options{EventDriven: true, Seed: wl.Seed}, nil)
	wal := runFleetWorld(t, wl, worldgen.Options{
		EventDriven:           true,
		Seed:                  wl.Seed,
		GlobalDBWALDir:        t.TempDir(),
		GlobalDBSnapshotEvery: 64, // force several compactions over the run
	}, nil)
	if !wal.Summary.Consistent() {
		t.Errorf("WAL-backed global DB diverged from the plan expectation:\n%s", wal.Summary.Render())
	}
	if got, want := wal.Summary.Render(), mem.Summary.Render(); got != want {
		t.Errorf("WAL-backed summary diverged from in-memory:\n--- mem ---\n%s--- wal ---\n%s", want, got)
	}
	if wal.Measured.SyncErrors > 0 || wal.Measured.Degraded > 0 {
		t.Errorf("sync errors %d, degraded %d against the WAL store",
			wal.Measured.SyncErrors, wal.Measured.Degraded)
	}
}

// TestFleetRunCancellation is the regression test for two driver bugs: a
// cancelled run used to let every worker finish its full timeline (minutes
// of wall time after the caller gave up), and the join/retire retry loops
// burned their full retry budgets against the dead context. The run must
// return promptly with the cancellation error and count no spurious
// degraded clients.
func TestFleetRunCancellation(t *testing.T) {
	wl := smokeWorkload(31)
	w, err := worldgen.New(worldgen.Options{Scale: 120, Seed: wl.Seed})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	plan := BuildPlan(wl)

	// At scale 120 the 30m window takes ~15s of wall time: plenty of margin
	// between "cancelled promptly" and "ran to completion".
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	opts := Options{Workers: 8, Progress: func(Snapshot) {
		once.Do(cancel) // first virtual minute: run is mid-flight
	}}
	start := time.Now() //lint:allow-realtime asserting prompt cancellation needs wall time
	res, err := Run(ctx, w, sc, plan, opts)
	took := time.Since(start) //lint:allow-realtime see above
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = (%v, %v), want context.Canceled", res, err)
	}
	if took > 8*time.Second {
		t.Errorf("cancelled run returned after %v — workers kept executing their timelines", took)
	}
}

// TestRetireClientCancelledNoDegraded: a client retired because the run was
// cancelled was aborted, not degraded — it must contribute neither sync
// attempts nor a degraded count to the stats.
func TestRetireClientCancelledNoDegraded(t *testing.T) {
	wl := smokeWorkload(37)
	w, err := worldgen.New(worldgen.Options{EventDriven: true, Seed: wl.Seed})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	plan := BuildPlan(wl)
	cl, err := joinClient(context.Background(), w, sc, &plan.Clients[0], Options{})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	st := newStats(wl.Seed)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	retireClient(ctx, cl, st)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.degraded != 0 || st.syncs != 0 || st.syncErrors != 0 {
		t.Errorf("cancelled retire recorded degraded=%d syncs=%d syncErrors=%d, want all 0",
			st.degraded, st.syncs, st.syncErrors)
	}
}
