package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"csaw/internal/core"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

// Driver tunables.
const (
	// DefaultWorkers bounds concurrently *executing* clients. Sessions are
	// virtual-time-scheduled, so workers are a concurrency budget, not a
	// parallelism requirement: a busy pool just runs sessions late, which
	// inflates measured PLTs and never changes the Summary.
	DefaultWorkers = 64
	// finalSyncRetries bounds the end-of-life sync attempts per client. The
	// Summary's listed-equals-expected invariant needs every client's last
	// pending reports flushed.
	finalSyncRetries = 5
	// detectDeadline replaces the detector's 21s/18s defaults. Affirmative
	// blocking signals answer in RTTs; the slack only absorbs scheduler
	// stalls, which at O(10k) goroutines can exceed the defaults — and a
	// blown detector deadline is not just an error, it is a *verdict*.
	detectDeadline = 2 * time.Hour
	// neverSync parks the client's periodic sync loop beyond any window;
	// the driver syncs explicitly (at join, after each session, at exit) so
	// sync traffic is worker-bounded instead of 10k free-running tickers.
	neverSync = 1000 * time.Hour
	// samplePeriod is the live-counter / goroutine-gauge cadence (virtual).
	samplePeriod = time.Minute
)

// Options tunes a fleet run.
type Options struct {
	// Workers is the driver pool size (default DefaultWorkers).
	Workers int
	// Progress, when set, receives a live Snapshot every samplePeriod of
	// virtual time.
	Progress func(Snapshot)
	// Trace attaches the flight recorder to every client. For byte-identical
	// trace artifacts, also set Workers=1 and SerialClients (see csaw-fleet
	// -trace): with parallel clients the branch each fetch takes depends on
	// cross-client sync timing, so trace *content* is schedule-dependent even
	// though the Summary is not.
	Trace *trace.Tracer
	// SerialClients forces cfg.Serial on every client: detect first, then
	// circumvent, no racing goroutines — the deterministic trace discipline.
	SerialClients bool
	// FailoverBudget overrides the per-fetch failover-ladder budget on every
	// client. Zero keeps the fleet default of disabled (-1): at O(10k)
	// goroutines a healthy fetch can measure minutes of virtual time, and a
	// budget would misread that stall noise as a dead ladder. Set it
	// (csaw-fleet -failover-budget) when driving small fleets against
	// dropping censors, where the walk must be deadline-bounded.
	FailoverBudget time.Duration
}

// Run executes the plan against a built world + fleet scenario and returns
// the deterministic Summary plus the Measured section. The world must have
// been built with BuildFleetScenario and nothing else driving it.
func Run(ctx context.Context, w *worldgen.World, sc *worldgen.FleetScenario, plan *Plan, opts Options) (*RunResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(plan.Clients) && len(plan.Clients) > 0 {
		workers = len(plan.Clients)
	}
	st := newStats(plan.Workload.Seed)
	start := w.Clock.Now()

	// Live sampler: goroutine gauge + progress callback, on virtual time.
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tk := w.Clock.NewTicker(samplePeriod)
		defer tk.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-tk.C:
				n := runtime.NumGoroutine()
				st.observeGoroutines(n)
				if opts.Progress != nil {
					opts.Progress(st.snapshot(w.Clock.Since(start), n))
				}
			}
		}
	}()

	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		var mine []*ClientPlan
		for i := range plan.Clients {
			if i%workers == wk {
				mine = append(mine, &plan.Clients[i])
			}
		}
		wg.Add(1)
		go func(mine []*ClientPlan) {
			defer wg.Done()
			if err := runWorker(ctx, w, sc, mine, st, start, opts); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(mine)
	}
	wg.Wait()
	close(sampleStop)
	sampleWG.Wait()
	st.observeGoroutines(runtime.NumGoroutine())

	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return collect(w, sc, plan, st, workers, w.Clock.Since(start)), nil
}

// event is one scheduled action of a worker's merged timeline. seq orders a
// client's own events (join < sessions < leave) under equal times.
type event struct {
	at   time.Duration
	cidx int
	seq  int
	cp   *ClientPlan
	sess *Session
}

// runWorker drives its clients' merged, time-ordered event queue: lazy
// client creation at join, explicit sync after each session, and a flush +
// close at leave (churn) or end of plan.
func runWorker(ctx context.Context, w *worldgen.World, sc *worldgen.FleetScenario,
	mine []*ClientPlan, st *Stats, start time.Time, opts Options) error {
	var events []event
	for _, cp := range mine {
		seq := 0
		events = append(events, event{at: cp.Join, cidx: cp.Index, seq: seq, cp: cp})
		for i := range cp.Sessions {
			seq++
			events = append(events, event{at: cp.Sessions[i].At, cidx: cp.Index, seq: seq, cp: cp, sess: &cp.Sessions[i]})
		}
		if cp.Leave > 0 {
			seq++
			events = append(events, event{at: cp.Leave, cidx: cp.Index, seq: seq, cp: cp})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.cidx != b.cidx {
			return a.cidx < b.cidx
		}
		return a.seq < b.seq
	})

	clients := make(map[int]*core.Client, len(mine))
	defer func() {
		// Error path: don't leak sync loops.
		for _, cl := range clients {
			cl.Close()
		}
	}()

	clock := w.Clock
	for _, ev := range events {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d := ev.at - clock.Since(start); d > 0 {
			clock.Sleep(d)
		}
		switch cl := clients[ev.cidx]; {
		case ev.seq == 0:
			// Join: build and start the client.
			c, err := joinClient(ctx, w, sc, ev.cp, opts)
			if err != nil {
				return fmt.Errorf("fleet: client %d join: %w", ev.cp.Index, err)
			}
			clients[ev.cidx] = c
			st.bump(&st.joined)
		case ev.sess != nil:
			for _, url := range ev.sess.URLs {
				res := c0fetch(ctx, cl, url)
				st.recordFetch(res.Source, res.Took, res.Err != nil)
			}
			st.bump(&st.sessions)
			st.recordSync(cl.SyncNow(ctx))
		default:
			// Leave (churn): flush and shut down early.
			retireClient(ctx, cl, st)
			delete(clients, ev.cidx)
			st.bump(&st.left)
		}
	}

	// End of window: flush and close the survivors in index order.
	idxs := make([]int, 0, len(clients))
	for i := range clients {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		retireClient(ctx, clients[i], st)
		delete(clients, i)
	}
	return nil
}

// c0fetch is FetchURL with a nil-result guard (FetchURL always returns a
// Result today; the guard keeps a future regression from panicking 10k
// goroutines deep).
func c0fetch(ctx context.Context, cl *core.Client, url string) *core.Result {
	if res := cl.FetchURL(ctx, url); res != nil {
		return res
	}
	return &core.Result{URL: url, Source: "direct", Err: fmt.Errorf("fleet: nil fetch result")}
}

// joinClient assembles a fleet-weight client (see the package comment for
// why PSet/P=0 and the raised detector deadlines are load-bearing).
func joinClient(ctx context.Context, w *worldgen.World, sc *worldgen.FleetScenario, cp *ClientPlan, opts Options) (*core.Client, error) {
	host := w.NewClientHost(fmt.Sprintf("fleet-c%05d", cp.Index), sc.ISPs[cp.ISP])
	cfg := w.LightClientConfig(host, cp.Seed)
	cfg.PSet, cfg.P = true, 0
	cfg.SyncInterval = neverSync
	cfg.DetectConnectTimeout = detectDeadline
	cfg.DetectHTTPTimeout = detectDeadline
	cfg.DNSAttemptTimeout = detectDeadline
	// Same stall rationale as the detector deadlines: at O(10k) goroutines
	// a healthy circumvention fetch can *measure* minutes of virtual time,
	// so the failover-ladder budget and quarantine (which would turn stall
	// noise into benches and fetch errors) are disabled for fleet clients
	// unless the run asks for a budget explicitly (Options.FailoverBudget).
	cfg.FailoverBudget = -1
	if opts.FailoverBudget != 0 {
		cfg.FailoverBudget = opts.FailoverBudget
	}
	cfg.Quarantine.Strikes = -1
	cfg.Trace = opts.Trace
	if opts.SerialClients {
		cfg.Serial = true
	}
	cl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	// Start registers and performs the initial list download. Registration
	// is idempotent across attempts (the UUID sticks once assigned), so a
	// sync that lost a timing race under load is safe to retry.
	var startErr error
	for attempt := 0; attempt < finalSyncRetries; attempt++ {
		if startErr = cl.Start(ctx); startErr == nil {
			return cl, nil
		}
	}
	cl.Close()
	return nil, startErr
}

// retireClient drains background work, flushes pending reports, and closes.
// The flush must succeed for the Summary invariant, hence the retry loop;
// a client that still can't sync is counted degraded, not fatal.
func retireClient(ctx context.Context, cl *core.Client, st *Stats) {
	cl.WaitIdle()
	var err error
	for attempt := 0; attempt < finalSyncRetries; attempt++ {
		if err = cl.SyncNow(ctx); err == nil {
			break
		}
	}
	st.recordSync(err)
	if cl.Degraded() || err != nil {
		st.bump(&st.degraded)
	}
	st.addCounters(cl.CountersSnapshot())
	cl.Close()
}

// collect assembles the RunResult: the deterministic Summary from the plan
// and the final global-DB state, and the Measured section from the live
// stats.
func collect(w *worldgen.World, sc *worldgen.FleetScenario, plan *Plan, st *Stats,
	workers int, elapsed time.Duration) *RunResult {
	wl := plan.Workload
	sum := Summary{
		Population:    len(plan.Clients),
		Seed:          wl.Seed,
		Sites:         wl.Sites,
		ISPs:          wl.ISPs,
		Sessions:      plan.Sessions,
		Fetches:       plan.Fetches,
		Churned:       plan.Churned,
		DistinctSites: plan.DistinctSites,
	}
	gstats := w.GlobalDB.StatsSnapshot()
	sum.RegisteredUsers = gstats.Users
	sum.BlockedURLs = gstats.BlockedURLs
	sum.BlockedDomains = gstats.BlockedDomains
	sum.ASesReporting = gstats.ASes
	sum.BlockTypes = gstats.BlockTypes

	expected := plan.ExpectedBlocked(sc)
	for j := 0; j < wl.ISPs; j++ {
		asn := worldgen.FleetBaseASN + j
		listed := make(map[string]bool)
		for _, e := range w.GlobalDB.BlockedForAS(asn) {
			listed[e.URL] = true
		}
		a := ASSummary{ASN: asn, Clients: plan.PerISP[j], PolicyBlocked: len(sc.Blocked[asn])}
		a.Expected, a.ExpectedHash = setHash(expected[asn])
		a.Listed, a.ListedHash = setHash(listed)
		sum.PerAS = append(sum.PerAS, a)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	m := Measured{
		VirtualSeconds: elapsed.Seconds(),
		Workers:        workers,
		Scale:          w.Clock.Scale(),
		Fetches:        st.fetches,
		FetchErrors:    st.fetchErrors,
		Sessions:       st.sessions,
		Syncs:          st.syncs,
		SyncErrors:     st.syncErrors,
		Joined:         st.joined,
		Left:           st.left,
		Degraded:       st.degraded,
		PeakGoroutines: st.peakGoroutines,
		Updates:        gstats.Updates,
		PLT:            make(map[string]PLTStats, len(st.plt)),
		Counters:       make(map[string]int, len(st.counters)),
	}
	for src, d := range st.plt {
		m.PLT[src] = PLTStats{
			N: d.N(), P50: d.Percentile(50), P95: d.Percentile(95),
			Mean: d.Mean(), Max: d.Max(),
		}
	}
	for k, v := range st.counters {
		m.Counters[k] = v
	}
	return &RunResult{Summary: sum, Measured: m}
}
