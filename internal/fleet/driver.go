package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"csaw/internal/core"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

// Driver tunables.
const (
	// DefaultWorkers bounds concurrently *executing* clients. Sessions are
	// virtual-time-scheduled, so workers are a concurrency budget, not a
	// parallelism requirement: a busy pool just runs sessions late, which
	// inflates measured PLTs and never changes the Summary.
	DefaultWorkers = 64
	// finalSyncRetries bounds the end-of-life sync attempts per client. The
	// Summary's listed-equals-expected invariant needs every client's last
	// pending reports flushed.
	finalSyncRetries = 5
	// detectDeadline replaces the detector's 21s/18s defaults under the
	// real-scaled clock. Affirmative blocking signals answer in RTTs; the
	// slack only absorbs scheduler stalls, which at O(10k) goroutines can
	// exceed the defaults — and a blown detector deadline is not just an
	// error, it is a *verdict*. Under the discrete-event clock the slack
	// must instead outlast shared-virtual-time drift, so joinClient uses
	// worldgen.EventFleetSlack there.
	detectDeadline = 2 * time.Hour
	// samplePeriod is the live-counter / goroutine-gauge cadence (virtual).
	samplePeriod = time.Minute
)

// Options tunes a fleet run.
type Options struct {
	// Workers is the driver pool size (default DefaultWorkers).
	Workers int
	// Progress, when set, receives a live Snapshot every samplePeriod of
	// virtual time.
	Progress func(Snapshot)
	// Trace attaches the flight recorder to every client. For byte-identical
	// trace artifacts, also set Workers=1 and SerialClients (see csaw-fleet
	// -trace): with parallel clients the branch each fetch takes depends on
	// cross-client sync timing, so trace *content* is schedule-dependent even
	// though the Summary is not.
	Trace *trace.Tracer
	// SerialClients forces cfg.Serial on every client: detect first, then
	// circumvent, no racing goroutines — the deterministic trace discipline.
	SerialClients bool
	// FailoverBudget overrides the per-fetch failover-ladder budget on every
	// client. Zero keeps the fleet default of disabled (-1): at O(10k)
	// goroutines a healthy fetch can measure minutes of virtual time, and a
	// budget would misread that stall noise as a dead ladder. Set it
	// (csaw-fleet -failover-budget) when driving small fleets against
	// dropping censors, where the walk must be deadline-bounded.
	FailoverBudget time.Duration
}

// tev is one scheduled action in the run's global timeline, packed
// struct-of-hot-fields: the dispatcher walks a single sorted slice of these
// instead of per-worker merged queues, and the slice is the discrete-event
// scheduler's natural event feed (each gap between consecutive events is
// one clock jump). seq orders a client's own events (0 = join, 1..n =
// session n, n+1 = leave) under equal times; last marks the client's final
// event, after which the worker retires it eagerly instead of holding the
// client (and its local DB) live to the end of the window.
type tev struct {
	at   time.Duration
	cidx int32
	seq  int32
	last bool
}

// buildTimeline flattens the plan into one (at, cidx, seq)-sorted slice.
func buildTimeline(plan *Plan) []tev {
	n := 0
	for i := range plan.Clients {
		n += 2 + len(plan.Clients[i].Sessions)
	}
	tl := make([]tev, 0, n)
	for i := range plan.Clients {
		cp := &plan.Clients[i]
		cidx := int32(cp.Index)
		tl = append(tl, tev{at: cp.Join, cidx: cidx, seq: 0})
		for s := range cp.Sessions {
			tl = append(tl, tev{at: cp.Sessions[s].At, cidx: cidx, seq: int32(s + 1)})
		}
		if cp.Leave > 0 {
			tl = append(tl, tev{at: cp.Leave, cidx: cidx, seq: int32(len(cp.Sessions) + 1)})
		}
		tl[len(tl)-1].last = true
	}
	sort.Slice(tl, func(i, j int) bool {
		a, b := tl[i], tl[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.cidx != b.cidx {
			return a.cidx < b.cidx
		}
		return a.seq < b.seq
	})
	return tl
}

// Run executes the plan against a built world + fleet scenario and returns
// the deterministic Summary plus the Measured section. The world must have
// been built with BuildFleetScenario and nothing else driving it.
//
// One dispatcher goroutine walks the global timeline, pacing the clock
// (sleeping under the real-scaled clock, jumping under the discrete-event
// one) and feeding a fixed worker pool; client i always lands on worker
// i%workers, so each client's events stay FIFO. Any worker error cancels
// the run-scoped context, which stops the dispatcher and drains the pool
// promptly instead of letting the other workers finish their timelines.
func Run(ctx context.Context, w *worldgen.World, sc *worldgen.FleetScenario, plan *Plan, opts Options) (*RunResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(plan.Clients) && len(plan.Clients) > 0 {
		workers = len(plan.Clients)
	}
	st := newStats(plan.Workload.Seed)
	start := w.Clock.Now()

	// Delta sync is the fleet's default sync path. The server's per-AS edit
	// history (default 64 transitions) is sized for a handful of clients; at
	// fleet scale every other client's sync advances the tag chain, so a
	// client's validator tag from one round would fall out of history before
	// its next round and every sync would pay a full-body fetch. Sizing the
	// history to the population keeps converging-phase syncs on the delta
	// path; correctness never depends on it (stale tags just fetch full).
	w.GlobalDB.SetDeltaHistory(deltaHistoryFor(len(plan.Clients)))

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var failOnce sync.Once
	var runErr error
	fail := func(err error) {
		failOnce.Do(func() {
			runErr = err
			cancelRun()
		})
	}

	// Live sampler: goroutine gauge + progress callback, on virtual time.
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tk := w.Clock.NewTicker(samplePeriod)
		defer tk.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-tk.C:
				n := runtime.NumGoroutine()
				st.observeGoroutines(n)
				if opts.Progress != nil {
					opts.Progress(st.snapshot(w.Clock.Since(start), n))
				}
			}
		}
	}()

	tl := buildTimeline(plan)
	// Clients are lazily instantiated at join and indexed by plan index;
	// slot i is owned by worker i%workers, so slots are never contended.
	clients := make([]*core.Client, len(plan.Clients))

	// Per-worker queues sized to hold every event they will ever receive:
	// the dispatcher never blocks on a slow worker, it only paces the clock.
	perWorker := make([]int, workers)
	for _, ev := range tl {
		perWorker[int(ev.cidx)%workers]++
	}
	queues := make([]chan tev, workers)
	for wk := range queues {
		queues[wk] = make(chan tev, perWorker[wk])
	}

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(queue <-chan tev) {
			defer wg.Done()
			for ev := range queue {
				if runCtx.Err() != nil {
					continue // cancelled: drain without executing
				}
				runEvent(runCtx, w, sc, plan, clients, ev, st, opts, fail)
			}
		}(queues[wk])
	}

	clock := w.Clock
	for _, ev := range tl {
		if runCtx.Err() != nil {
			break
		}
		if d := ev.at - clock.Since(start); d > 0 {
			if err := clock.SleepCtx(runCtx, d); err != nil {
				break
			}
		}
		queues[int(ev.cidx)%workers] <- ev
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	close(sampleStop)
	sampleWG.Wait()

	// Cancelled path: close whatever is still alive without syncing (the
	// context is dead; a forced flush would only mint bogus sync errors).
	for i, cl := range clients {
		if cl != nil {
			cl.Close()
			clients[i] = nil
		}
	}
	st.observeGoroutines(runtime.NumGoroutine())

	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return collect(w, sc, plan, st, workers, w.Clock.Since(start)), nil
}

// runEvent executes one timeline event on its owning worker.
func runEvent(ctx context.Context, w *worldgen.World, sc *worldgen.FleetScenario,
	plan *Plan, clients []*core.Client, ev tev, st *Stats, opts Options, fail func(error)) {
	cidx := int(ev.cidx)
	cp := &plan.Clients[cidx]
	switch {
	case ev.seq == 0:
		cl, err := joinClient(ctx, w, sc, cp, opts)
		if err != nil {
			// A join killed by run cancellation is not a client failure.
			if ctx.Err() == nil {
				fail(fmt.Errorf("fleet: client %d join: %w", cp.Index, err))
			}
			return
		}
		clients[cidx] = cl
		st.bump(&st.joined)
	case int(ev.seq) <= len(cp.Sessions):
		cl := clients[cidx]
		if cl == nil {
			return // join failed or was cancelled
		}
		sess := &cp.Sessions[ev.seq-1]
		for _, url := range sess.URLs {
			res := c0fetch(ctx, cl, url)
			st.recordFetch(res.Source, res.Took, res.Err != nil)
		}
		st.bump(&st.sessions)
		// Settle before syncing: when circumvention wins the race, the direct
		// verdict lands via a background goroutine that would otherwise race
		// this sync's PendingGlobal read. A verdict that misses its own
		// session's flush stays pending until the client's *next* sync — which
		// the plan can place more than the local_DB TTL (24 virtual hours)
		// later, at which point PendingGlobal silently drops it. For a Zipf
		// tail URL with a single visitor that loses the whole report, and with
		// it the Summary invariant (listed = blocked ∩ visited). WaitIdle is
		// sufficient: every background settle is bg.Add-ed inside FetchURL
		// before it returns, so all of this session's settles are covered.
		cl.WaitIdle()
		if err := cl.SyncNow(ctx); ctx.Err() == nil {
			st.recordSync(err)
		}
	default:
		// Leave (churn): flush and shut down early.
		if cl := clients[cidx]; cl != nil {
			retireClient(ctx, cl, st)
			clients[cidx] = nil
		}
		st.bump(&st.left)
		return // leave already retired; last needs no second pass
	}
	if ev.last {
		// The client's final planned event: retire now instead of holding
		// it (goroutine-free but memory-heavy) until the window closes.
		if cl := clients[cidx]; cl != nil {
			retireClient(ctx, cl, st)
			clients[cidx] = nil
		}
	}
}

// deltaHistoryFor sizes the global DB's per-AS delta edit history to the
// population. One edit is recorded per snapshot rebuild, and rebuilds only
// happen while updates still arrive, so population-order history covers a
// full round of everyone else's syncs during convergence. The cap bounds
// server memory: beyond it a very stale client pays one full fetch and
// re-enters the delta path, which is the designed fallback.
func deltaHistoryFor(population int) int {
	const lo, hi = 64, 4096
	switch {
	case population < lo:
		return lo
	case population > hi:
		return hi
	}
	return population
}

// c0fetch is FetchURL with a nil-result guard (FetchURL always returns a
// Result today; the guard keeps a future regression from panicking 10k
// goroutines deep).
func c0fetch(ctx context.Context, cl *core.Client, url string) *core.Result {
	if res := cl.FetchURL(ctx, url); res != nil {
		return res
	}
	return &core.Result{URL: url, Source: "direct", Err: fmt.Errorf("fleet: nil fetch result")}
}

// joinClient assembles a fleet-weight client (see the package comment for
// why PSet/P=0 and the raised detector deadlines are load-bearing).
func joinClient(ctx context.Context, w *worldgen.World, sc *worldgen.FleetScenario, cp *ClientPlan, opts Options) (*core.Client, error) {
	host := w.NewClientHost(fmt.Sprintf("fleet-c%05d", cp.Index), sc.ISPs[cp.ISP])
	cfg := w.LightClientConfig(host, cp.Seed)
	cfg.PSet, cfg.P = true, 0
	// The driver syncs explicitly (at join, after each session, at retire),
	// so the per-client background sync loop is disabled outright — at 100k
	// clients even parked tickers and loop goroutines are real weight.
	cfg.SyncInterval = -1
	deadline := detectDeadline
	if w.Clock.EventDriven() {
		deadline = worldgen.EventFleetSlack
	}
	cfg.DetectConnectTimeout = deadline
	cfg.DetectHTTPTimeout = deadline
	cfg.DNSAttemptTimeout = deadline
	// Same stall rationale as the detector deadlines: at O(10k) goroutines
	// a healthy circumvention fetch can *measure* minutes of virtual time,
	// so the failover-ladder budget and quarantine (which would turn stall
	// noise into benches and fetch errors) are disabled for fleet clients
	// unless the run asks for a budget explicitly (Options.FailoverBudget).
	cfg.FailoverBudget = -1
	if opts.FailoverBudget != 0 {
		cfg.FailoverBudget = opts.FailoverBudget
	}
	cfg.Quarantine.Strikes = -1
	cfg.Trace = opts.Trace
	if opts.SerialClients {
		cfg.Serial = true
	}
	cl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	// Start registers and performs the initial list download. Registration
	// is idempotent across attempts (the UUID sticks once assigned), so a
	// sync that lost a timing race under load is safe to retry — but a
	// cancelled run must not burn retries on a dead context.
	var startErr error
	for attempt := 0; attempt < finalSyncRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			cl.Close()
			return nil, err
		}
		if startErr = cl.Start(ctx); startErr == nil {
			return cl, nil
		}
	}
	cl.Close()
	return nil, startErr
}

// retireClient drains background work, flushes pending reports, and closes.
// The flush must succeed for the Summary invariant, hence the retry loop;
// a client that still can't sync is counted degraded, not fatal. A client
// retired by run cancellation is neither synced nor counted: it was
// aborted, not degraded.
func retireClient(ctx context.Context, cl *core.Client, st *Stats) {
	cl.WaitIdle()
	var err error
	for attempt := 0; attempt < finalSyncRetries; attempt++ {
		if ctx.Err() != nil {
			cl.Close()
			return
		}
		if err = cl.SyncNow(ctx); err == nil {
			break
		}
	}
	if ctx.Err() != nil && err != nil {
		// The last attempt died with the context: aborted, not degraded.
		cl.Close()
		return
	}
	st.recordSync(err)
	if cl.Degraded() || err != nil {
		st.bump(&st.degraded)
	}
	st.addCounters(cl.CountersSnapshot())
	cl.Close()
}

// collect assembles the RunResult: the deterministic Summary from the plan
// and the final global-DB state, and the Measured section from the live
// stats.
func collect(w *worldgen.World, sc *worldgen.FleetScenario, plan *Plan, st *Stats,
	workers int, elapsed time.Duration) *RunResult {
	wl := plan.Workload
	sum := Summary{
		Population:    len(plan.Clients),
		Seed:          wl.Seed,
		Sites:         wl.Sites,
		ISPs:          wl.ISPs,
		Sessions:      plan.Sessions,
		Fetches:       plan.Fetches,
		Churned:       plan.Churned,
		DistinctSites: plan.DistinctSites,
	}
	gstats := w.GlobalDB.StatsSnapshot()
	sum.RegisteredUsers = gstats.Users
	sum.BlockedURLs = gstats.BlockedURLs
	sum.BlockedDomains = gstats.BlockedDomains
	sum.ASesReporting = gstats.ASes
	sum.BlockTypes = gstats.BlockTypes

	expected := plan.ExpectedBlocked(sc)
	for j := 0; j < wl.ISPs; j++ {
		asn := worldgen.FleetBaseASN + j
		listed := make(map[string]bool)
		for _, e := range w.GlobalDB.BlockedForAS(asn) {
			listed[e.URL] = true
		}
		a := ASSummary{ASN: asn, Clients: plan.PerISP[j], PolicyBlocked: len(sc.Blocked[asn])}
		a.Expected, a.ExpectedHash = setHash(expected[asn])
		a.Listed, a.ListedHash = setHash(listed)
		sum.PerAS = append(sum.PerAS, a)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	m := Measured{
		VirtualSeconds: elapsed.Seconds(),
		Workers:        workers,
		Scale:          w.Clock.Scale(),
		Fetches:        st.fetches,
		FetchErrors:    st.fetchErrors,
		Sessions:       st.sessions,
		Syncs:          st.syncs,
		SyncErrors:     st.syncErrors,
		Joined:         st.joined,
		Left:           st.left,
		Degraded:       st.degraded,
		PeakGoroutines: st.peakGoroutines,
		Updates:        gstats.Updates,
		PLT:            make(map[string]PLTStats, len(st.plt)),
		Counters:       make(map[string]int, len(st.counters)),
	}
	for src, d := range st.plt {
		m.PLT[src] = PLTStats{
			N: d.N(), P50: d.Percentile(50), P95: d.Percentile(95),
			Mean: d.Mean(), Max: d.Max(),
		}
	}
	for k, v := range st.counters {
		m.Counters[k] = v
	}
	return &RunResult{Summary: sum, Measured: m}
}
