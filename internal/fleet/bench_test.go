package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

// --- The sharded-vs-legacy global-DB trajectory -------------------------
//
// benchSyncRound measures the server-side cost of the client sync loop —
// the exact store traffic core.Client.syncRound generates — against a
// steady state of 2000 clients × 5 reports across 16 ASes. Every round
// fetches the client's own-AS blocked list; a post precedes the fetch on
// every 7th round, matching the steady-state mix where most intervals have
// no new blocked URLs to report (§4.3.1: blocking events are rare relative
// to sync intervals) and re-posts keep the store size stationary. This is
// the before/after pair behind BENCH_fleet.json's ingest-throughput
// acceptance gate: the legacy store pays an O(total reports) scan plus a
// sort and a marshal for every fetch under the one global mutex, while the
// sharded store re-aggregates only a written AS — once, on the first fetch
// after the write — and serves the cached body to everyone else.

const (
	benchClients   = 2000
	benchASes      = 16
	benchPerClient = 5
)

var benchBase = time.Unix(1_000_000_000, 0)

func populateBench(tb testing.TB, s globaldb.BenchStore, perClient int) {
	for c := 0; c < benchClients; c++ {
		uuid := fmt.Sprintf("client-%05d", c)
		s.AddUser(uuid)
		asn := 100 + c%benchASes
		batch := make([]globaldb.Report, perClient)
		for r := range batch {
			batch[r] = globaldb.Report{
				URL:    fmt.Sprintf("site%d-%d.example/", c%50, r),
				ASN:    asn,
				Stages: []globaldb.WireStage{{Type: 1, Detail: "nxdomain"}},
				Tm:     benchBase,
			}
		}
		if _, ok := s.Ingest(uuid, benchBase, batch); !ok {
			tb.Fatal("bench setup: ingest rejected")
		}
	}
}

func benchSyncRound(b *testing.B, s globaldb.BenchStore) {
	populateBench(b, s, benchPerClient)
	base := time.Unix(2_000_000_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % benchClients
		uuid := fmt.Sprintf("client-%05d", c)
		asn := 100 + c%benchASes
		// 7 is coprime with the AS count so post traffic spreads over all
		// 16 ASes instead of aliasing onto a subset.
		if i%7 == 0 {
			if _, ok := s.Ingest(uuid, base.Add(time.Duration(i)*time.Second), []globaldb.Report{{
				URL:    fmt.Sprintf("site%d-%d.example/", c%50, i%benchPerClient),
				ASN:    asn,
				Stages: []globaldb.WireStage{{Type: 1, Detail: "nxdomain"}},
				Tm:     benchBase,
			}}); !ok {
				b.Fatal("ingest rejected")
			}
		}
		if body := s.FetchResponse(asn); len(body) == 0 {
			b.Fatal("empty fetch body")
		}
	}
}

func BenchmarkFleetSyncRoundLegacy(b *testing.B) {
	benchSyncRound(b, globaldb.NewLegacyBenchStore())
}

func BenchmarkFleetSyncRoundSharded(b *testing.B) {
	benchSyncRound(b, globaldb.NewShardedBenchStore())
}

// --- The end-to-end fleet run ------------------------------------------

// benchWorkload is the per-iteration fleet run: big enough that the sync
// plane and worker pool matter, small enough for -bench=. CI budgets.
func benchWorkload() Workload {
	return Workload{
		Population:   150,
		Duration:     30 * time.Minute,
		Seed:         17,
		Sites:        120,
		ISPs:         6,
		BlockedFrac:  0.18,
		MeanSessions: 1.5,
		MaxFetches:   3,
	}
}

func runBenchFleet(tb testing.TB) *RunResult {
	wl := benchWorkload()
	w, err := worldgen.New(worldgen.Options{Scale: 2400, Seed: wl.Seed})
	if err != nil {
		tb.Fatalf("world: %v", err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		tb.Fatalf("scenario: %v", err)
	}
	// The benchmark runs with the flight recorder attached at the default
	// 1-in-64 sampling: BENCH_fleet.json's numbers are the *traced* cost, so
	// a recorder hot-path regression shows up in the acceptance trajectory
	// instead of hiding behind an untraced benchmark.
	opts := Options{
		Workers: 32,
		Trace:   trace.New(w.Clock, trace.NewStreamSink(io.Discard), trace.WithSampling(trace.DefaultSampleN)),
	}
	res, err := Run(context.Background(), w, sc, BuildPlan(wl), opts)
	if err != nil {
		tb.Fatalf("run: %v", err)
	}
	return res
}

// BenchmarkFleetRun drives a full fleet run per iteration and republishes
// its headline numbers as benchmark metrics.
func BenchmarkFleetRun(b *testing.B) {
	b.ReportAllocs()
	var last *RunResult
	for i := 0; i < b.N; i++ {
		last = runBenchFleet(b)
	}
	m := last.Measured
	b.ReportMetric(float64(m.Fetches), "fetches")
	b.ReportMetric(float64(m.PeakGoroutines), "peak-goroutines")
	b.ReportMetric(float64(m.Syncs), "syncs")
	if d, ok := m.PLT["direct"]; ok {
		b.ReportMetric(d.P50, "direct-p50-s")
	}
}

// --- The population-vs-throughput curve ---------------------------------

// popPoint is one point of the population curve: one full fleet run at a
// given population, clock engine, and virtual observation window, reduced
// to its throughput headline plus the sync-path mix — the per-population
// record of what one sync round costs on the wire now that delta sync is
// the driver's default path (deltaHistoryFor sizes the server's edit
// history to the fleet).
type popPoint struct {
	Population        int            `json:"population"`
	Mode              string         `json:"mode"` // "event" | "scaled"
	WindowHours       float64        `json:"window_hours"`
	Fetches           int            `json:"fetches"`
	RealSeconds       float64        `json:"real_seconds"`
	FetchesPerRealSec float64        `json:"fetches_per_real_sec"`
	PeakGoroutines    int            `json:"peak_goroutines"`
	DeltaSync         DeltaSyncStats `json:"delta_sync"`
}

// curveScale is the scaled-clock baseline's scale for the 10k points —
// csaw-fleet's auto choice at that population (any higher and scheduler
// stalls eat into virtual deadlines). The scaled engine keeps the
// real-sleeping execution model the pre-scheduler goroutine-per-client
// driver had, so these runs are the baseline the event_speedup_10k gate
// compares against.
const curveScale = 600

// steadyWindow is the engine-comparison observation window: three virtual
// days, the regime the paper's pilot deployment actually ran in (weeks of
// wall time, a handful of sessions per client per day). A workload's session
// and fetch counts are per-client draws independent of the window, so
// stretching the window keeps the work identical and exposes the structural
// difference between the engines: the scaled clock's wall time has a
// hardware-independent floor of window/scale (72h/600 = 432 real seconds —
// that is what "goroutine-backed clients sleeping real time" costs), while
// the event engine's wall time tracks CPU work only, unchanged from the 2h
// window. More cores shrink the event side further and cannot shrink the
// floor, so the gated ratio is conservative on any multicore CI box.
const steadyWindow = 72 * time.Hour

func runCurvePoint(tb testing.TB, population int, eventDriven bool, window time.Duration) popPoint {
	wl := Workload{Population: population, Seed: 17, Duration: window}.WithDefaults()
	wopts := worldgen.Options{Seed: wl.Seed, EventDriven: eventDriven}
	mode := "event"
	if !eventDriven {
		wopts.Scale = curveScale
		mode = "scaled"
	}
	w, err := worldgen.New(wopts)
	if err != nil {
		tb.Fatalf("world: %v", err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		tb.Fatalf("scenario: %v", err)
	}
	start := time.Now() //lint:allow-realtime benchmark measures real throughput by design
	res, err := Run(context.Background(), w, sc, BuildPlan(wl), Options{})
	if err != nil {
		tb.Fatalf("run (%d clients, %s): %v", population, mode, err)
	}
	real := time.Since(start).Seconds() //lint:allow-realtime see above
	if !res.Summary.Consistent() {
		tb.Errorf("curve point (%d clients, %s) diverged from plan expectation:\n%s",
			population, mode, res.Summary.Render())
	}
	return popPoint{
		Population:        population,
		Mode:              mode,
		WindowHours:       wl.Duration.Hours(),
		Fetches:           res.Measured.Fetches,
		RealSeconds:       real,
		FetchesPerRealSec: float64(res.Measured.Fetches) / real,
		PeakGoroutines:    res.Measured.PeakGoroutines,
		DeltaSync:         res.Measured.DeltaSync(),
	}
}

// --- The BENCH_fleet.json emitter --------------------------------------

// benchFleetDoc is the emitted schema; .github/workflows/ci.yml uploads the
// file as an artifact via `make bench-fleet`. Schema 2 adds the
// population-vs-throughput curve and its event_speedup_10k gate.
type benchFleetDoc struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`

	SyncRound struct {
		LegacyNsPerOp   float64 `json:"legacy_ns_per_op"`
		ShardedNsPerOp  float64 `json:"sharded_ns_per_op"`
		Speedup         float64 `json:"speedup"`
		LegacyAllocsOp  int64   `json:"legacy_allocs_per_op"`
		ShardedAllocsOp int64   `json:"sharded_allocs_per_op"`
	} `json:"sync_round"`

	FleetRun struct {
		Population        int     `json:"population"`
		Fetches           int     `json:"fetches"`
		RealSeconds       float64 `json:"real_seconds"`
		FetchesPerRealSec float64 `json:"fetches_per_real_sec"`
		Measured
	} `json:"fleet_run"`

	// PopulationCurve: same-seed default workloads at growing populations,
	// all on the default 2h window (the numbers csaw-fleet reproduces),
	// plus the engine-comparison pair at 10k clients on the steady-state
	// 72h window. EventSpeedup10k is that pair's fetches-per-real-second
	// ratio, gated ≥10: the scaled engine pays the window/scale real-sleep
	// floor the pre-scheduler driver was built on, the event engine does
	// not. The 100k point is emitted only under CSAW_BENCH_FLEET_FULL=1.
	PopulationCurve []popPoint `json:"population_curve"`
	EventSpeedup10k float64    `json:"event_speedup_10k"`
}

// TestEmitBenchFleet writes BENCH_fleet.json when CSAW_BENCH_FLEET_OUT is
// set (`make bench-fleet`), and enforces the trajectory's acceptance gates:
// the sharded store must carry the sync-round mix at ≥5× the single-mutex
// baseline's throughput, and the discrete-event engine must push ≥10× the
// scaled engine's fetches-per-real-second at 10k clients on the 72h
// steady-state window (see steadyWindow for why that is the honest
// comparison). Set CSAW_BENCH_FLEET_FULL=1 to extend the curve to 100k
// clients.
func TestEmitBenchFleet(t *testing.T) {
	out := os.Getenv("CSAW_BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set CSAW_BENCH_FLEET_OUT=BENCH_fleet.json to emit the benchmark document")
	}

	legacy := testing.Benchmark(BenchmarkFleetSyncRoundLegacy)
	sharded := testing.Benchmark(BenchmarkFleetSyncRoundSharded)

	var doc benchFleetDoc
	doc.Schema = 2
	doc.Generated = time.Now().UTC().Format(time.RFC3339) //lint:allow-realtime artifact timestamp for the operator
	doc.SyncRound.LegacyNsPerOp = float64(legacy.NsPerOp())
	doc.SyncRound.ShardedNsPerOp = float64(sharded.NsPerOp())
	doc.SyncRound.Speedup = float64(legacy.NsPerOp()) / float64(sharded.NsPerOp())
	doc.SyncRound.LegacyAllocsOp = legacy.AllocsPerOp()
	doc.SyncRound.ShardedAllocsOp = sharded.AllocsPerOp()

	start := time.Now() //lint:allow-realtime benchmark measures real throughput by design
	res := runBenchFleet(t)
	real := time.Since(start).Seconds() //lint:allow-realtime see above
	doc.FleetRun.Population = res.Summary.Population
	doc.FleetRun.Fetches = res.Measured.Fetches
	doc.FleetRun.RealSeconds = real
	doc.FleetRun.FetchesPerRealSec = float64(res.Measured.Fetches) / real
	doc.FleetRun.Measured = res.Measured

	event1k := runCurvePoint(t, 1_000, true, 0)
	event10k := runCurvePoint(t, 10_000, true, 0)
	scaled10k := runCurvePoint(t, 10_000, false, 0)
	eventSteady := runCurvePoint(t, 10_000, true, steadyWindow)
	scaledSteady := runCurvePoint(t, 10_000, false, steadyWindow)
	doc.PopulationCurve = []popPoint{event1k, event10k, scaled10k, eventSteady, scaledSteady}
	if os.Getenv("CSAW_BENCH_FLEET_FULL") != "" {
		doc.PopulationCurve = append(doc.PopulationCurve, runCurvePoint(t, 100_000, true, 0))
	}
	doc.EventSpeedup10k = eventSteady.FetchesPerRealSec / scaledSteady.FetchesPerRealSec

	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	t.Logf("sync round: legacy %.0f ns/op, sharded %.0f ns/op → %.1fx; fleet run: %d fetches in %.2fs",
		doc.SyncRound.LegacyNsPerOp, doc.SyncRound.ShardedNsPerOp, doc.SyncRound.Speedup,
		doc.FleetRun.Fetches, real)
	for _, p := range doc.PopulationCurve {
		t.Logf("curve: %6d clients %-6s %4.0fh window %7d fetches in %7.2fs → %8.0f fetches/s (peak %d goroutines)",
			p.Population, p.Mode, p.WindowHours, p.Fetches, p.RealSeconds, p.FetchesPerRealSec, p.PeakGoroutines)
		d := p.DeltaSync
		t.Logf("       sync path: %d full, %d delta, %d 304; %d list bytes (%.0f bytes/sync)",
			d.FetchFull, d.FetchDelta, d.Fetch304, d.ListBytes, d.BytesPerSync)
	}
	t.Logf("event speedup at 10k clients (72h steady-state window): %.1fx", doc.EventSpeedup10k)
	if doc.SyncRound.Speedup < 5 {
		t.Errorf("sharded sync-round speedup %.2fx below the 5x acceptance gate", doc.SyncRound.Speedup)
	}
	if doc.EventSpeedup10k < 10 {
		t.Errorf("event-engine speedup %.2fx at 10k clients (72h window) below the 10x acceptance gate", doc.EventSpeedup10k)
	}
	if !res.Summary.Consistent() {
		t.Errorf("fleet run diverged from plan expectation:\n%s", res.Summary.Render())
	}
}
