package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

// --- The sharded-vs-legacy global-DB trajectory -------------------------
//
// benchSyncRound measures the server-side cost of the client sync loop —
// the exact store traffic core.Client.syncRound generates — against a
// steady state of 2000 clients × 5 reports across 16 ASes. Every round
// fetches the client's own-AS blocked list; a post precedes the fetch on
// every 7th round, matching the steady-state mix where most intervals have
// no new blocked URLs to report (§4.3.1: blocking events are rare relative
// to sync intervals) and re-posts keep the store size stationary. This is
// the before/after pair behind BENCH_fleet.json's ingest-throughput
// acceptance gate: the legacy store pays an O(total reports) scan plus a
// sort and a marshal for every fetch under the one global mutex, while the
// sharded store re-aggregates only a written AS — once, on the first fetch
// after the write — and serves the cached body to everyone else.

const (
	benchClients   = 2000
	benchASes      = 16
	benchPerClient = 5
)

var benchBase = time.Unix(1_000_000_000, 0)

func populateBench(tb testing.TB, s globaldb.BenchStore, perClient int) {
	for c := 0; c < benchClients; c++ {
		uuid := fmt.Sprintf("client-%05d", c)
		s.AddUser(uuid)
		asn := 100 + c%benchASes
		batch := make([]globaldb.Report, perClient)
		for r := range batch {
			batch[r] = globaldb.Report{
				URL:    fmt.Sprintf("site%d-%d.example/", c%50, r),
				ASN:    asn,
				Stages: []globaldb.WireStage{{Type: 1, Detail: "nxdomain"}},
				Tm:     benchBase,
			}
		}
		if _, ok := s.Ingest(uuid, benchBase, batch); !ok {
			tb.Fatal("bench setup: ingest rejected")
		}
	}
}

func benchSyncRound(b *testing.B, s globaldb.BenchStore) {
	populateBench(b, s, benchPerClient)
	base := time.Unix(2_000_000_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % benchClients
		uuid := fmt.Sprintf("client-%05d", c)
		asn := 100 + c%benchASes
		// 7 is coprime with the AS count so post traffic spreads over all
		// 16 ASes instead of aliasing onto a subset.
		if i%7 == 0 {
			if _, ok := s.Ingest(uuid, base.Add(time.Duration(i)*time.Second), []globaldb.Report{{
				URL:    fmt.Sprintf("site%d-%d.example/", c%50, i%benchPerClient),
				ASN:    asn,
				Stages: []globaldb.WireStage{{Type: 1, Detail: "nxdomain"}},
				Tm:     benchBase,
			}}); !ok {
				b.Fatal("ingest rejected")
			}
		}
		if body := s.FetchResponse(asn); len(body) == 0 {
			b.Fatal("empty fetch body")
		}
	}
}

func BenchmarkFleetSyncRoundLegacy(b *testing.B) {
	benchSyncRound(b, globaldb.NewLegacyBenchStore())
}

func BenchmarkFleetSyncRoundSharded(b *testing.B) {
	benchSyncRound(b, globaldb.NewShardedBenchStore())
}

// --- The end-to-end fleet run ------------------------------------------

// benchWorkload is the per-iteration fleet run: big enough that the sync
// plane and worker pool matter, small enough for -bench=. CI budgets.
func benchWorkload() Workload {
	return Workload{
		Population:   150,
		Duration:     30 * time.Minute,
		Seed:         17,
		Sites:        120,
		ISPs:         6,
		BlockedFrac:  0.18,
		MeanSessions: 1.5,
		MaxFetches:   3,
	}
}

func runBenchFleet(tb testing.TB) *RunResult {
	wl := benchWorkload()
	w, err := worldgen.New(worldgen.Options{Scale: 2400, Seed: wl.Seed})
	if err != nil {
		tb.Fatalf("world: %v", err)
	}
	sc, err := w.BuildFleetScenario(wl.Sites, wl.ISPs, wl.BlockedFrac)
	if err != nil {
		tb.Fatalf("scenario: %v", err)
	}
	// The benchmark runs with the flight recorder attached at the default
	// 1-in-64 sampling: BENCH_fleet.json's numbers are the *traced* cost, so
	// a recorder hot-path regression shows up in the acceptance trajectory
	// instead of hiding behind an untraced benchmark.
	opts := Options{
		Workers: 32,
		Trace:   trace.New(w.Clock, trace.NewStreamSink(io.Discard), trace.WithSampling(trace.DefaultSampleN)),
	}
	res, err := Run(context.Background(), w, sc, BuildPlan(wl), opts)
	if err != nil {
		tb.Fatalf("run: %v", err)
	}
	return res
}

// BenchmarkFleetRun drives a full fleet run per iteration and republishes
// its headline numbers as benchmark metrics.
func BenchmarkFleetRun(b *testing.B) {
	b.ReportAllocs()
	var last *RunResult
	for i := 0; i < b.N; i++ {
		last = runBenchFleet(b)
	}
	m := last.Measured
	b.ReportMetric(float64(m.Fetches), "fetches")
	b.ReportMetric(float64(m.PeakGoroutines), "peak-goroutines")
	b.ReportMetric(float64(m.Syncs), "syncs")
	if d, ok := m.PLT["direct"]; ok {
		b.ReportMetric(d.P50, "direct-p50-s")
	}
}

// --- The BENCH_fleet.json emitter --------------------------------------

// benchFleetDoc is the emitted schema; .github/workflows/ci.yml uploads the
// file as an artifact via `make bench-fleet`.
type benchFleetDoc struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`

	SyncRound struct {
		LegacyNsPerOp   float64 `json:"legacy_ns_per_op"`
		ShardedNsPerOp  float64 `json:"sharded_ns_per_op"`
		Speedup         float64 `json:"speedup"`
		LegacyAllocsOp  int64   `json:"legacy_allocs_per_op"`
		ShardedAllocsOp int64   `json:"sharded_allocs_per_op"`
	} `json:"sync_round"`

	FleetRun struct {
		Population        int     `json:"population"`
		Fetches           int     `json:"fetches"`
		RealSeconds       float64 `json:"real_seconds"`
		FetchesPerRealSec float64 `json:"fetches_per_real_sec"`
		Measured
	} `json:"fleet_run"`
}

// TestEmitBenchFleet writes BENCH_fleet.json when CSAW_BENCH_FLEET_OUT is
// set (`make bench-fleet`), and enforces the trajectory's acceptance gate:
// the sharded store must carry the sync-round mix at ≥5× the single-mutex
// baseline's throughput.
func TestEmitBenchFleet(t *testing.T) {
	out := os.Getenv("CSAW_BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set CSAW_BENCH_FLEET_OUT=BENCH_fleet.json to emit the benchmark document")
	}

	legacy := testing.Benchmark(BenchmarkFleetSyncRoundLegacy)
	sharded := testing.Benchmark(BenchmarkFleetSyncRoundSharded)

	var doc benchFleetDoc
	doc.Schema = 1
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	doc.SyncRound.LegacyNsPerOp = float64(legacy.NsPerOp())
	doc.SyncRound.ShardedNsPerOp = float64(sharded.NsPerOp())
	doc.SyncRound.Speedup = float64(legacy.NsPerOp()) / float64(sharded.NsPerOp())
	doc.SyncRound.LegacyAllocsOp = legacy.AllocsPerOp()
	doc.SyncRound.ShardedAllocsOp = sharded.AllocsPerOp()

	start := time.Now()
	res := runBenchFleet(t)
	real := time.Since(start).Seconds()
	doc.FleetRun.Population = res.Summary.Population
	doc.FleetRun.Fetches = res.Measured.Fetches
	doc.FleetRun.RealSeconds = real
	doc.FleetRun.FetchesPerRealSec = float64(res.Measured.Fetches) / real
	doc.FleetRun.Measured = res.Measured

	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	t.Logf("sync round: legacy %.0f ns/op, sharded %.0f ns/op → %.1fx; fleet run: %d fetches in %.2fs",
		doc.SyncRound.LegacyNsPerOp, doc.SyncRound.ShardedNsPerOp, doc.SyncRound.Speedup,
		doc.FleetRun.Fetches, real)
	if doc.SyncRound.Speedup < 5 {
		t.Errorf("sharded sync-round speedup %.2fx below the 5x acceptance gate", doc.SyncRound.Speedup)
	}
	if !res.Summary.Consistent() {
		t.Errorf("fleet run diverged from plan expectation:\n%s", res.Summary.Render())
	}
}
