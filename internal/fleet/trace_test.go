package fleet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

// TestFleetTraceDeterminism is the trace-content analogue of the soak's
// summary gate: under csaw-fleet's -trace discipline (one worker, serial
// clients, deterministic-profile recorder, sorted sink) two same-seed runs
// must produce byte-identical JSONL artifacts — every event, verdict, and
// selection decision, not just the aggregate summary.
func TestFleetTraceDeterminism(t *testing.T) {
	wl := Workload{
		Population:   24,
		Duration:     30 * time.Minute,
		Seed:         7,
		Sites:        40,
		ISPs:         3,
		BlockedFrac:  0.2,
		MeanSessions: 1.2,
		MaxFetches:   2,
	}
	run := func() string {
		var buf bytes.Buffer
		sink := trace.NewSortedSink(&buf)
		res := runFleetOpts(t, wl, 2400, func(w *worldgen.World, o *Options) {
			o.Workers = 1
			o.SerialClients = true
			o.Trace = trace.New(w.Clock, sink, trace.WithSampling(4))
		})
		if err := sink.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if res.Measured.FetchErrors > 0 {
			t.Fatalf("%d fetch errors in traced run", res.Measured.FetchErrors)
		}
		return buf.String()
	}

	a, b := run(), run()
	if a == "" {
		t.Fatal("no spans recorded — sampling or wiring is dead")
	}
	if a != b {
		t.Errorf("same seed, different traces:\n--- run 1 (%d bytes) ---\n%s--- run 2 (%d bytes) ---\n%s",
			len(a), firstDiffContext(a, b), len(b), firstDiffContext(b, a))
	}
	lines := strings.Count(a, "\n")
	t.Logf("trace determinism: %d spans, %d bytes, byte-identical across runs", lines, len(a))
}

// firstDiffContext returns the few lines around the first divergence, so a
// determinism failure reports the offending span instead of two megabyte
// blobs.
func firstDiffContext(a, b string) string {
	la, lb := strings.SplitAfter(a, "\n"), strings.SplitAfter(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 1
			if lo < 0 {
				lo = 0
			}
			hi := i + 2
			if hi > len(la) {
				hi = len(la)
			}
			return strings.Join(la[lo:hi], "")
		}
	}
	return "(prefix of the other run)\n"
}
