// Package fleet drives population-scale C-Saw deployments through the
// emulated internet: O(10k) concurrent clients with realistic workload
// structure (Zipf site popularity, a diurnal session-arrival curve, user
// churn and staggered opt-in, per-AS population mixes), a worker-pooled
// driver, and live aggregate counters. It is the load generator behind
// cmd/csaw-fleet and the BENCH_fleet.json throughput trajectory.
//
// Determinism contract. A fleet run's Summary — plan aggregates plus the
// final global-DB contents — is byte-identical across same-seed runs, and
// the soak test holds the driver to that. Three choices make it so:
//
//   - The whole workload is a *plan*, generated up front from one seeded
//     RNG. Execution never draws workload randomness, so worker scheduling
//     cannot change what any client does.
//
//   - Clients run with PSet=true, P=0: a URL the global DB already lists as
//     blocked is circumvented without re-measuring, so the set of reports a
//     run produces depends only on which (client, URL) pairs measured —
//     and the *union* per AS is exactly the blocked URLs some client there
//     visited, independent of sync timing. (The first visitor of a URL
//     always measures: a global-cache hit requires a prior report, which
//     requires a prior measurement.) Per-client report sets DO race with
//     list downloads, so reporter counts, votes, and the updates counter
//     are measured quantities, not summary quantities.
//
//   - The fleet scenario blocks only with affirmative signals (block page,
//     RST, DNS redirect) and the driver raises the detector deadlines, so a
//     scheduler stall under load can never flip a verdict to tcp-timeout.
//
// Everything timing-derived — PLTs, throughput, goroutine counts, sync
// volume — lives in Measured and is excluded from the comparison: virtual
// time is scaled real time, so those carry scheduler jitter by design.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"csaw/internal/worldgen"
)

// Workload parameterizes the synthetic population.
type Workload struct {
	Population int           // number of clients (default 500)
	Duration   time.Duration // virtual window, one compressed diurnal cycle (default 2h)
	Seed       int64         // drives all workload randomness (default 1)

	Sites       int     // catalog size (default 400)
	ISPs        int     // censoring ASes (default 12)
	BlockedFrac float64 // fraction of the catalog each AS blocks (default 0.15)

	// ZipfS/ZipfV shape site popularity (default 1.07/1.0 — a heavy head
	// with a long tail, the standard web-popularity shape).
	ZipfS, ZipfV float64
	// MeanSessions is the Poisson mean of browsing sessions per client over
	// the window (default 2). MaxFetches caps page loads per session
	// (default 4; the count is geometric, continue-probability 0.55).
	MeanSessions float64
	MaxFetches   int
	// ChurnFrac is the fraction of clients that opt out partway (default
	// 0.08). JoinWindow spreads opt-in over the window's start (default
	// Duration/3).
	ChurnFrac  float64
	JoinWindow time.Duration
}

// WithDefaults fills zero fields with the defaults documented above.
// BuildPlan applies it internally; callers that need the effective values
// (e.g. to size the scenario) call it themselves.
func (w Workload) WithDefaults() Workload {
	if w.Population <= 0 {
		w.Population = 500
	}
	if w.Duration <= 0 {
		w.Duration = 2 * time.Hour
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
	if w.Sites <= 0 {
		w.Sites = 400
	}
	if w.ISPs <= 0 {
		w.ISPs = 12
	}
	if w.BlockedFrac <= 0 {
		w.BlockedFrac = 0.15
	}
	if w.ZipfS <= 1 {
		w.ZipfS = 1.07
	}
	if w.ZipfV < 1 {
		w.ZipfV = 1.0
	}
	if w.MeanSessions <= 0 {
		w.MeanSessions = 2
	}
	if w.MaxFetches <= 0 {
		w.MaxFetches = 4
	}
	if w.ChurnFrac < 0 {
		w.ChurnFrac = 0
	}
	if w.ChurnFrac == 0 {
		w.ChurnFrac = 0.08
	}
	if w.JoinWindow <= 0 || w.JoinWindow > w.Duration {
		w.JoinWindow = w.Duration / 3
	}
	return w
}

// Session is one planned browsing session: a point in the window and the
// pages loaded, in order.
type Session struct {
	At   time.Duration
	URLs []string
}

// ClientPlan is everything one client will do.
type ClientPlan struct {
	Index int
	ISP   int   // index into the scenario's ISPs; ASN = FleetBaseASN + ISP
	Seed  int64 // the client's core.Config seed
	Join  time.Duration
	// Leave is nonzero for churned clients: the client opts out (final sync,
	// close) at this offset instead of staying to the end.
	Leave    time.Duration
	Sessions []Session
}

// Plan is the full precomputed workload plus its deterministic aggregates.
type Plan struct {
	Workload Workload
	Clients  []ClientPlan

	Sessions      int
	Fetches       int
	Churned       int
	DistinctSites int
	PerISP        []int // clients per ISP index
}

// diurnal is the session-arrival intensity over the window, x in [0,1)
// mapped onto one day with the peak mid-window: real deployments see a
// deep night-time trough, and the trough is what makes the global DB's
// cached snapshots pay (long fetch-only stretches between writes).
func diurnal(x float64) float64 {
	return 0.35 + 0.325*(1+math.Sin(2*math.Pi*(x-0.25)))
}

// poisson draws from Poisson(mean) by Knuth's product method — exact, and
// cheap at the small means used here.
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// BuildPlan generates the deterministic workload plan. All randomness comes
// from one seeded RNG drawn in a fixed order, so equal Workloads yield
// equal plans.
func BuildPlan(w Workload) *Plan {
	w = w.WithDefaults()
	rng := rand.New(rand.NewSource(w.Seed))
	zipf := rand.NewZipf(rng, w.ZipfS, w.ZipfV, uint64(w.Sites-1))

	// Per-AS population mix: ISPs get uneven shares, like real markets.
	weights := make([]float64, w.ISPs)
	total := 0.0
	for i := range weights {
		weights[i] = 0.25 + rng.Float64()
		total += weights[i]
	}

	p := &Plan{Workload: w, PerISP: make([]int, w.ISPs)}
	seen := make(map[string]bool)
	for c := 0; c < w.Population; c++ {
		cp := ClientPlan{Index: c, Seed: w.Seed + int64(c)*7919}

		pick := rng.Float64() * total
		for i, wt := range weights {
			if pick -= wt; pick < 0 {
				cp.ISP = i
				break
			}
		}
		p.PerISP[cp.ISP]++

		cp.Join = time.Duration(rng.Float64() * float64(w.JoinWindow))
		end := w.Duration
		if rng.Float64() < w.ChurnFrac {
			frac := 0.3 + 0.5*rng.Float64()
			cp.Leave = cp.Join + time.Duration(frac*float64(w.Duration-cp.Join))
			end = cp.Leave
			p.Churned++
		}

		n := poisson(rng, w.MeanSessions)
		for s := 0; s < n; s++ {
			// Thinning: propose uniform in the client's active span, accept
			// against the diurnal intensity.
			var at time.Duration
			for {
				at = cp.Join + time.Duration(rng.Float64()*float64(end-cp.Join))
				if rng.Float64() < diurnal(float64(at)/float64(w.Duration)) {
					break
				}
			}
			k := 1
			for k < w.MaxFetches && rng.Float64() < 0.55 {
				k++
			}
			sess := Session{At: at}
			for f := 0; f < k; f++ {
				url := worldgen.FleetSiteURL(int(zipf.Uint64()))
				sess.URLs = append(sess.URLs, url)
				seen[url] = true
			}
			cp.Sessions = append(cp.Sessions, sess)
			p.Sessions++
			p.Fetches += k
		}
		sortSessions(cp.Sessions)
		p.Clients = append(p.Clients, cp)
	}
	p.DistinctSites = len(seen)
	return p
}

// sortSessions orders a client's sessions by time (stable: ties keep draw
// order).
func sortSessions(ss []Session) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].At < ss[j-1].At; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// ExpectedBlocked computes, per ASN, the exact URL set the global DB must
// list after the run: the blocked URLs some client of that AS visits. This
// is the plan-level ground truth the Summary is checked against.
func (p *Plan) ExpectedBlocked(sc *worldgen.FleetScenario) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	for i := range p.Clients {
		cp := &p.Clients[i]
		asn := worldgen.FleetBaseASN + cp.ISP
		blocked := sc.Blocked[asn]
		for _, s := range cp.Sessions {
			for _, u := range s.URLs {
				if blocked[u] {
					if out[asn] == nil {
						out[asn] = make(map[string]bool)
					}
					out[asn][u] = true
				}
			}
		}
	}
	return out
}

// String summarizes the plan in one line (progress logs).
func (p *Plan) String() string {
	return fmt.Sprintf("fleet plan: %d clients, %d sessions, %d fetches, %d churned, %d distinct sites",
		len(p.Clients), p.Sessions, p.Fetches, p.Churned, p.DistinctSites)
}
