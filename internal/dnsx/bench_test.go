package dnsx

import "testing"

// BenchmarkMarshalQuery measures query encoding.
func BenchmarkMarshalQuery(b *testing.B) {
	q := NewQuery(42, "www.youtube.com")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshalResponse measures response decoding.
func BenchmarkUnmarshalResponse(b *testing.B) {
	resp := NewQuery(42, "www.youtube.com").Reply().
		AnswerA("www.youtube.com", "203.0.113.1", 300).
		AnswerA("www.youtube.com", "203.0.113.2", 300)
	raw, err := resp.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
