package dnsx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xBEEF, "www.YouTube.com.")
	b, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xBEEF || got.Response || !got.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.youtube.com" || got.Questions[0].Type != TypeA {
		t.Fatalf("question mismatch: %+v", got.Questions)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "blocked.example.pk")
	resp := q.Reply()
	resp.Authoritative = true
	resp.AnswerA("blocked.example.pk", "203.0.113.7", 300)
	resp.AnswerA("blocked.example.pk", "203.0.113.8", 300)
	resp.Authority = append(resp.Authority, RR{Name: "example.pk", Type: TypeNS, Class: ClassIN, TTL: 600, Data: "ns1.example.pk"})
	resp.Additional = append(resp.Additional, RR{Name: "meta.example.pk", Type: TypeTXT, Class: ClassIN, TTL: 60, Data: "hello world"})

	b, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative || got.RCode != RCodeNoError {
		t.Fatalf("flags mismatch: %+v", got)
	}
	if ips := got.AnswerIPs(); !reflect.DeepEqual(ips, []string{"203.0.113.7", "203.0.113.8"}) {
		t.Fatalf("answers = %v", ips)
	}
	if got.Authority[0].Data != "ns1.example.pk" {
		t.Fatalf("NS = %q", got.Authority[0].Data)
	}
	if got.Additional[0].Data != "hello world" {
		t.Fatalf("TXT = %q", got.Additional[0].Data)
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	for _, rc := range []int{RCodeNoError, RCodeServFail, RCodeNXDomain, RCodeRefused} {
		resp := NewQuery(1, "x.example").Reply()
		resp.RCode = rc
		b, err := resp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.RCode != rc {
			t.Errorf("rcode %d round-tripped to %d", rc, got.RCode)
		}
	}
}

func TestCompressionPointerDecode(t *testing.T) {
	// Hand-craft a response with a compression pointer: the answer name
	// points back at the question name at offset 12.
	q := NewQuery(0x1234, "a.example.com")
	head, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	head[7] = 1 // ANCOUNT = 1
	head[2] |= 0x80
	msg := append([]byte{}, head...)
	msg = append(msg, 0xC0, 12)             // name: pointer to offset 12
	msg = append(msg, 0, 1, 0, 1)           // TYPE A, CLASS IN
	msg = append(msg, 0, 0, 1, 44)          // TTL 300
	msg = append(msg, 0, 4, 10, 20, 30, 40) // RDLENGTH 4, 10.20.30.40

	got, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[0].Name != "a.example.com" || got.Answers[0].Data != "10.20.30.40" {
		t.Fatalf("answer = %+v", got.Answers[0])
	}
}

func TestPointerLoopRejected(t *testing.T) {
	q := NewQuery(9, "x.example")
	b, _ := q.Marshal()
	b[5] = 2 // QDCOUNT=2; second question will be a forward pointer
	b = append(b, 0xC0, byte(len(b)), 0, 1, 0, 1)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("forward/self pointer accepted")
	}
}

func TestTruncatedRejected(t *testing.T) {
	q := NewQuery(3, "abc.example.com")
	b, _ := q.Marshal()
	for _, cut := range []int{0, 5, 11, len(b) - 1} {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBadNames(t *testing.T) {
	long := strings.Repeat("a", 64)
	for _, name := range []string{"bad..example", long + ".example"} {
		q := NewQuery(1, name)
		if _, err := q.Marshal(); err == nil {
			t.Errorf("name %q marshalled", name)
		}
	}
}

func TestBadIPv4(t *testing.T) {
	for _, ip := range []string{"1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"} {
		m := NewQuery(1, "x.example").Reply().AnswerA("x.example", ip, 1)
		if _, err := m.Marshal(); err == nil {
			t.Errorf("IP %q marshalled", ip)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	if CanonicalName("WWW.Example.COM.") != "www.example.com" {
		t.Fatal("canonicalization wrong")
	}
}

func TestRCodeNames(t *testing.T) {
	cases := map[int]string{0: "NOERROR", 2: "SERVFAIL", 3: "NXDOMAIN", 5: "REFUSED", 9: "RCODE9"}
	for rc, want := range cases {
		if got := RCodeName(rc); got != want {
			t.Errorf("RCodeName(%d) = %q, want %q", rc, got, want)
		}
	}
}

// TestQuickRoundTrip property-tests the codec: any well-formed message built
// from generated labels and IPs survives Marshal → Unmarshal.
func TestQuickRoundTrip(t *testing.T) {
	f := func(id uint16, labels [3]uint8, ip [4]byte, ttl uint32, rcode uint8) bool {
		name := ""
		for i, l := range labels {
			lab := strings.Repeat(string(rune('a'+i)), int(l%63)+1)
			if i > 0 {
				name += "."
			}
			name += lab
		}
		m := NewQuery(id, name).Reply()
		m.RCode = int(rcode % 6)
		if m.RCode == RCodeNoError {
			m.AnswerA(name, formatIPv4(ip[:]), ttl)
		}
		b, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if got.ID != id || got.RCode != m.RCode || got.Questions[0].Name != CanonicalName(name) {
			return false
		}
		if m.RCode == RCodeNoError && (len(got.Answers) != 1 || got.Answers[0].Data != formatIPv4(ip[:]) || got.Answers[0].TTL != ttl) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnmarshalNoPanic fuzzes the decoder with arbitrary bytes: it must
// return errors, never panic.
func TestQuickUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
