package dnsx

import (
	"encoding/binary"
	"io"
	"net"
	"sort"
	"sync"

	"csaw/internal/netem"
)

// Registry is the emulated internet's authoritative name data: the honest
// mapping from hostnames to IPs. Recursive resolvers (honest or censored)
// resolve against it.
type Registry struct {
	mu sync.RWMutex
	m  map[string][]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string][]string)}
}

// Set registers the IPs for a name, replacing any previous entry.
func (r *Registry) Set(name string, ips ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[CanonicalName(name)] = append([]string(nil), ips...)
}

// Lookup returns the IPs for name, or nil if unknown.
func (r *Registry) Lookup(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ips := r.m[CanonicalName(name)]
	return append([]string(nil), ips...)
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler answers DNS queries. The flow carries who is asking and through
// which AS, so censoring handlers can apply per-AS policy.
type Handler interface {
	HandleDNS(q *Message, flow netem.Flow) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q *Message, flow netem.Flow) *Message

// HandleDNS implements Handler.
func (f HandlerFunc) HandleDNS(q *Message, flow netem.Flow) *Message { return f(q, flow) }

// AuthHandler answers from a Registry: A records for known names with the
// given TTL, NXDOMAIN otherwise.
func AuthHandler(reg *Registry, ttl uint32) Handler {
	return HandlerFunc(func(q *Message, _ netem.Flow) *Message {
		resp := q.Reply()
		resp.Authoritative = true
		if len(q.Questions) == 0 {
			resp.RCode = RCodeFormErr
			return resp
		}
		question := q.Questions[0]
		if question.Type != TypeA {
			resp.RCode = RCodeNotImp
			return resp
		}
		ips := reg.Lookup(question.Name)
		if len(ips) == 0 {
			resp.RCode = RCodeNXDomain
			return resp
		}
		for _, ip := range ips {
			resp.AnswerA(question.Name, ip, ttl)
		}
		return resp
	})
}

// Server serves DNS over length-prefixed frames on an emulated listener.
type Server struct {
	l *netem.Listener
	h Handler

	mu     sync.Mutex
	closed bool
}

// Port is the conventional DNS port.
const Port = 53

// Serve starts a server on the listener; it returns immediately and serves
// until the listener or server is closed.
func Serve(l *netem.Listener, h Handler) *Server {
	s := &Server{l: l, h: h}
	go s.acceptLoop()
	return s
}

// NewServer listens on the host's DNS port and serves h.
func NewServer(host *netem.Host, h Handler) (*Server, error) {
	l, err := host.Listen(Port)
	if err != nil {
		return nil, err
	}
	return Serve(l, h), nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		q, err := ReadMessage(conn)
		if err != nil {
			return
		}
		var flow netem.Flow
		if nc, ok := conn.(*netem.Conn); ok {
			flow = nc.Flow()
		}
		resp := s.h.HandleDNS(q, flow)
		if resp == nil {
			// Handler chose to drop the query (censor "No DNS" case): say
			// nothing and let the client time out, but keep the conn so
			// retries on it also vanish.
			continue
		}
		if err := WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.l.Close()
}

// WriteMessage writes one length-prefixed DNS message.
func WriteMessage(w io.Writer, m *Message) error {
	b, err := m.Marshal()
	if err != nil {
		return err
	}
	frame := make([]byte, 2+len(b))
	binary.BigEndian.PutUint16(frame, uint16(len(b)))
	copy(frame[2:], b)
	_, err = w.Write(frame)
	return err
}

// ReadMessage reads one length-prefixed DNS message.
func ReadMessage(r io.Reader) (*Message, error) {
	var lb [2]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	b := make([]byte, binary.BigEndian.Uint16(lb[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return Unmarshal(b)
}
