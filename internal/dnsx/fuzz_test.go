package dnsx

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzMessageDecode throws arbitrary wire bytes at the decoder — the bytes a
// censor's resolver actually controls. Properties: Unmarshal never panics,
// and the codec reaches a fixed point after one normalization pass: any
// successfully decoded message that re-encodes must decode again and encode
// to identical bytes (decoded names are canonicalized — lowercased,
// compression pointers flattened — so the *first* re-encode may differ from
// the input, but never the second).
func FuzzMessageDecode(f *testing.F) {
	q, _ := NewQuery(0x1234, "www.youtube.com").Marshal()
	f.Add(q)
	resp, _ := NewQuery(7, "news.example.pk").Reply().AnswerA("news.example.pk", "10.9.8.7", 300).Marshal()
	f.Add(resp)
	nx := NewQuery(9, "missing.example").Reply()
	nx.RCode = RCodeNXDomain
	nxb, _ := nx.Marshal()
	f.Add(nxb)
	// A response using a compression pointer back into the question.
	f.Add([]byte{
		0x12, 0x34, 0x81, 0x80, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
		0x01, 'a', 0x02, 'b', 'c', 0x00, 0x00, 0x01, 0x00, 0x01, // question a.bc A IN
		0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3C, 0x00, 0x04, 0x7F, 0x00, 0x00, 0x01,
	})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		b1, err := m.Marshal()
		if err != nil {
			// Decoded labels can be unencodable (a label containing ".",
			// or one that outgrows 63 bytes under ToLower's UTF-8 repair);
			// rejecting those on encode is correct behavior.
			return
		}
		m2, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v\n% x", err, b1)
		}
		b2, err := m2.Marshal()
		if err != nil {
			t.Fatalf("decoded canonical message does not re-encode: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode∘decode not a fixed point:\nb1: % x\nb2: % x", b1, b2)
		}
	})
}

// TestMessageRoundTripExact is the seeded exact-equality complement of the
// fuzz target: messages built through the package's own constructors (whose
// names are canonical by construction) must survive Marshal→Unmarshal with
// every field intact.
func TestMessageRoundTripExact(t *testing.T) {
	msgs := []*Message{
		NewQuery(1, "www.youtube.com"),
		NewQuery(0xFFFF, "a.very.deep.subdomain.example.pk"),
		NewQuery(2, "hot.example.net").Reply().AnswerA("hot.example.net", "203.0.113.9", 60),
	}
	nx := NewQuery(3, "blocked.example").Reply()
	nx.RCode = RCodeNXDomain
	msgs = append(msgs, nx)
	cname := NewQuery(4, "cdn.example").Reply()
	cname.Answers = append(cname.Answers,
		RR{Name: "cdn.example", Type: TypeCNAME, Class: ClassIN, TTL: 30, Data: "edge.example"},
		RR{Name: "edge.example", Type: TypeA, Class: ClassIN, TTL: 30, Data: "198.51.100.4"})
	cname.Authority = append(cname.Authority,
		RR{Name: "example", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: "ns1.example"})
	cname.Additional = append(cname.Additional,
		RR{Name: "note.example", Type: TypeTXT, Class: ClassIN, TTL: 10, Data: "censorship measurement"})
	msgs = append(msgs, cname)

	for i, m := range msgs {
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("msg %d: marshal: %v", i, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("msg %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("msg %d: round trip changed the message:\nin:  %+v\nout: %+v", i, m, got)
		}
	}
}
