// Package dnsx implements the DNS subset the C-Saw reproduction needs: an
// RFC-1035-style wire codec (A/CNAME/TXT records, compression-pointer
// decoding), authoritative and recursive servers that run on emulated hosts,
// and a stub resolver whose timeout/retry behaviour reproduces the detection
// times in Table 5 of the paper (REFUSED fails in one RTT, SERVFAIL after
// retries ≈10.6 s, silent drops after the full attempt budget).
//
// Transport note: queries travel over netem stream connections with a
// two-byte length prefix — DNS-over-TCP framing — because the emulator
// models connections, not datagrams. Every failure mode a censor can induce
// on UDP DNS (no answer, bogus answer, NXDOMAIN/SERVFAIL/REFUSED, redirect
// to a block-page host) is representable on this transport, which is what
// the detection logic cares about.
package dnsx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Query/response codes (RCODEs) used by the censor and detection logic.
const (
	RCodeNoError  = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
	RCodeNotImp   = 4
	RCodeRefused  = 5
)

// RCodeName returns the conventional name for an RCODE.
func RCodeName(rc int) string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", rc)
	}
}

// Record types.
const (
	TypeA     = 1
	TypeNS    = 2
	TypeCNAME = 5
	TypeTXT   = 16
)

// ClassIN is the only class in use.
const ClassIN = 1

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a resource record. Data holds the presentation form: a dotted quad
// for A records, a domain name for CNAME/NS, and raw text for TXT.
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  string
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              int
	Questions          []Question
	Answers            []RR
	Authority          []RR
	Additional         []RR
}

// NewQuery builds a recursive A query for name.
func NewQuery(id uint16, name string) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: CanonicalName(name), Type: TypeA, Class: ClassIN}},
	}
}

// Reply builds a response skeleton echoing the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		Opcode:             m.Opcode,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: true,
		Questions:          append([]Question(nil), m.Questions...),
	}
	return r
}

// AnswerA appends an A record answer for the query's name.
func (m *Message) AnswerA(name, ip string, ttl uint32) *Message {
	m.Answers = append(m.Answers, RR{Name: CanonicalName(name), Type: TypeA, Class: ClassIN, TTL: ttl, Data: ip})
	return m
}

// CanonicalName lowercases and strips any trailing dot.
func CanonicalName(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// Errors returned by the codec.
var (
	ErrTruncatedMessage = errors.New("dnsx: truncated message")
	ErrBadName          = errors.New("dnsx: bad domain name")
	ErrBadPointer       = errors.New("dnsx: bad compression pointer")
)

const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Marshal encodes the message to wire format (no name compression on
// encode; compression pointers are handled on decode).
func (m *Message) Marshal() ([]byte, error) {
	buf := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(buf[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= flagAA
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.RCode & 0xF)
	binary.BigEndian.PutUint16(buf[2:4], flags)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(m.Additional)))

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, set := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range set {
			if buf, err = appendRR(buf, rr); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendName(buf []byte, name string) ([]byte, error) {
	name = CanonicalName(name)
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
	}
	return append(buf, 0), nil
}

func appendRR(buf []byte, rr RR) ([]byte, error) {
	buf, err := appendName(buf, rr.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, rr.Type)
	buf = binary.BigEndian.AppendUint16(buf, rr.Class)
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	var rdata []byte
	switch rr.Type {
	case TypeA:
		ip, err := parseIPv4(rr.Data)
		if err != nil {
			return nil, err
		}
		rdata = ip
	case TypeCNAME, TypeNS:
		rdata, err = appendName(nil, rr.Data)
		if err != nil {
			return nil, err
		}
	case TypeTXT:
		if len(rr.Data) > 255 {
			return nil, fmt.Errorf("dnsx: TXT data too long (%d)", len(rr.Data))
		}
		rdata = append([]byte{byte(len(rr.Data))}, rr.Data...)
	default:
		rdata = []byte(rr.Data)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rdata)))
	return append(buf, rdata...), nil
}

func parseIPv4(s string) ([]byte, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return nil, fmt.Errorf("dnsx: bad IPv4 %q", s)
	}
	ip := make([]byte, 4)
	for i, p := range parts {
		var v int
		for _, c := range p {
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("dnsx: bad IPv4 %q", s)
			}
			v = v*10 + int(c-'0')
		}
		if len(p) == 0 || v > 255 {
			return nil, fmt.Errorf("dnsx: bad IPv4 %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

func formatIPv4(b []byte) string {
	return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3])
}

// Unmarshal decodes a wire-format message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncatedMessage
	}
	m := &Message{ID: binary.BigEndian.Uint16(b[0:2])}
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Response = flags&flagQR != 0
	m.Opcode = uint8(flags >> 11 & 0xF)
	m.Authoritative = flags&flagAA != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.RCode = int(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))
	ns := int(binary.BigEndian.Uint16(b[8:10]))
	ar := int(binary.BigEndian.Uint16(b[10:12]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(b, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(b) {
			return nil, ErrTruncatedMessage
		}
		q.Type = binary.BigEndian.Uint16(b[off:])
		q.Class = binary.BigEndian.Uint16(b[off+2:])
		off += 4
		m.Questions = append(m.Questions, q)
	}
	readRRs := func(count int) ([]RR, error) {
		var rrs []RR
		for i := 0; i < count; i++ {
			var rr RR
			rr.Name, off, err = readName(b, off)
			if err != nil {
				return nil, err
			}
			if off+10 > len(b) {
				return nil, ErrTruncatedMessage
			}
			rr.Type = binary.BigEndian.Uint16(b[off:])
			rr.Class = binary.BigEndian.Uint16(b[off+2:])
			rr.TTL = binary.BigEndian.Uint32(b[off+4:])
			rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
			off += 10
			if off+rdlen > len(b) {
				return nil, ErrTruncatedMessage
			}
			rdata := b[off : off+rdlen]
			switch rr.Type {
			case TypeA:
				if rdlen != 4 {
					return nil, fmt.Errorf("dnsx: A record rdlen %d", rdlen)
				}
				rr.Data = formatIPv4(rdata)
			case TypeCNAME, TypeNS:
				name, _, err := readName(b, off)
				if err != nil {
					return nil, err
				}
				rr.Data = name
			case TypeTXT:
				if rdlen > 0 {
					n := int(rdata[0])
					if n+1 > rdlen {
						return nil, ErrTruncatedMessage
					}
					rr.Data = string(rdata[1 : 1+n])
				}
			default:
				rr.Data = string(rdata)
			}
			off += rdlen
			rrs = append(rrs, rr)
		}
		return rrs, nil
	}
	if m.Answers, err = readRRs(an); err != nil {
		return nil, err
	}
	if m.Authority, err = readRRs(ns); err != nil {
		return nil, err
	}
	if m.Additional, err = readRRs(ar); err != nil {
		return nil, err
	}
	return m, nil
}

// readName decodes a possibly-compressed domain name starting at off,
// returning the name and the offset just past it in the original stream.
func readName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, ErrBadPointer
		}
		if off >= len(b) {
			return "", 0, ErrTruncatedMessage
		}
		c := int(b[off])
		switch {
		case c == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := (c&0x3F)<<8 | int(b[off+1])
			if !jumped {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			off = ptr
			jumped = true
		case c&0xC0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+c > len(b) {
				return "", 0, ErrTruncatedMessage
			}
			labels = append(labels, string(b[off+1:off+1+c]))
			off += 1 + c
		}
	}
}

// AnswerIPs extracts the A-record IPs from a response, following at most one
// CNAME level for the queried name.
func (m *Message) AnswerIPs() []string {
	var ips []string
	for _, rr := range m.Answers {
		if rr.Type == TypeA {
			ips = append(ips, rr.Data)
		}
	}
	return ips
}
