package dnsx

import (
	"context"
	"errors"
	"testing"
	"time"

	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// dnsWorld builds a client in "pk" with an ISP resolver 25ms away and a
// public resolver 180ms away, both resolving against the same registry.
func dnsWorld(t *testing.T) (n *netem.Network, client *netem.Host, reg *Registry, ispHandler *swappableHandler) {
	t.Helper()
	clock := vtime.New(500)
	n = netem.New(clock, netem.WithSeed(11), netem.WithJitter(0))
	isp := n.AddAS(100, "ISP-A", "PK")
	usAS := n.AddAS(200, "US", "US")
	client = n.MustAddHost("client", "10.0.0.1", "pk", isp)
	resolver := n.MustAddHost("resolver.isp", "10.0.0.53", "pk-isp", isp)
	public := n.MustAddHost("public-dns", "8.8.8.8", "us", usAS)
	n.SetRTT("pk", "pk-isp", 25*time.Millisecond)
	n.SetRTT("pk", "us", 180*time.Millisecond)

	reg = NewRegistry()
	reg.Set("www.youtube.com", "216.58.1.1")
	reg.Set("news.example.pk", "203.0.113.50")

	ispHandler = &swappableHandler{h: AuthHandler(reg, 300)}
	if _, err := NewServer(resolver, ispHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(public, AuthHandler(reg, 300)); err != nil {
		t.Fatal(err)
	}
	return n, client, reg, ispHandler
}

type swappableHandler struct{ h Handler }

func (s *swappableHandler) HandleDNS(q *Message, f netem.Flow) *Message { return s.h.HandleDNS(q, f) }

func TestLookupSuccess(t *testing.T) {
	n, client, _, _ := dnsWorld(t)
	c := NewClient(client, "10.0.0.53:53")
	res := c.Lookup(context.Background(), "www.youtube.com")
	if !res.OK() {
		t.Fatalf("lookup failed: %+v", res)
	}
	if res.IPs[0] != "216.58.1.1" {
		t.Fatalf("IPs = %v", res.IPs)
	}
	if res.Took > 3*time.Second {
		t.Errorf("clean lookup took %v, want ~2 RTT", res.Took)
	}
	_ = n
}

func TestLookupNXDomainFast(t *testing.T) {
	_, client, _, _ := dnsWorld(t)
	c := NewClient(client, "10.0.0.53:53")
	res := c.Lookup(context.Background(), "no-such-host.example")
	if res.Err == nil || !errors.Is(res.Err, ErrRCode) || res.RCode != RCodeNXDomain {
		t.Fatalf("want NXDOMAIN error, got %+v", res)
	}
	if res.Took > 3*time.Second {
		t.Errorf("NXDOMAIN took %v, want fast", res.Took)
	}
}

func TestLookupRefusedFast(t *testing.T) {
	// Table 5: DNS "Server Refused" is detected in ~0.025s — one RTT.
	_, client, _, isp := dnsWorld(t)
	isp.h = HandlerFunc(func(q *Message, _ netem.Flow) *Message {
		r := q.Reply()
		r.RCode = RCodeRefused
		return r
	})
	c := NewClient(client, "10.0.0.53:53")
	res := c.Lookup(context.Background(), "www.youtube.com")
	if !errors.Is(res.Err, ErrRCode) || res.RCode != RCodeRefused {
		t.Fatalf("want REFUSED, got %+v", res)
	}
	if res.Took > 3*time.Second {
		t.Errorf("REFUSED took %v, want ~one RTT", res.Took)
	}
}

func TestLookupServfailSlow(t *testing.T) {
	// Table 5: SERVFAIL blocking detected after ~10.6s — the stub holds the
	// attempt budget hoping the failure is transient.
	_, client, _, isp := dnsWorld(t)
	isp.h = HandlerFunc(func(q *Message, _ netem.Flow) *Message {
		r := q.Reply()
		r.RCode = RCodeServFail
		return r
	})
	c := NewClient(client, "10.0.0.53:53")
	res := c.Lookup(context.Background(), "www.youtube.com")
	if !errors.Is(res.Err, ErrRCode) || res.RCode != RCodeServFail {
		t.Fatalf("want SERVFAIL, got %+v", res)
	}
	if res.Took < 9*time.Second || res.Took > 14*time.Second {
		t.Errorf("SERVFAIL detection took %v, want ~10s", res.Took)
	}
}

func TestLookupDropTimesOut(t *testing.T) {
	// Dropped queries burn the full attempt budget (~10s with defaults).
	_, client, _, isp := dnsWorld(t)
	isp.h = HandlerFunc(func(*Message, netem.Flow) *Message { return nil })
	c := NewClient(client, "10.0.0.53:53")
	res := c.Lookup(context.Background(), "www.youtube.com")
	if !errors.Is(res.Err, ErrNoResponse) {
		t.Fatalf("want ErrNoResponse, got %+v", res)
	}
	if res.Took < 9*time.Second || res.Took > 14*time.Second {
		t.Errorf("drop detection took %v, want ~10s", res.Took)
	}
}

func TestLookupRedirectReturnsCensorIP(t *testing.T) {
	// DNS redirect blocking: the resolver answers with a block-page host.
	_, client, _, isp := dnsWorld(t)
	isp.h = HandlerFunc(func(q *Message, _ netem.Flow) *Message {
		return q.Reply().AnswerA(q.Questions[0].Name, "10.10.10.10", 60)
	})
	c := NewClient(client, "10.0.0.53:53")
	res := c.Lookup(context.Background(), "www.youtube.com")
	if !res.OK() || res.IPs[0] != "10.10.10.10" {
		t.Fatalf("redirect result = %+v", res)
	}
}

func TestFallbackToSecondServer(t *testing.T) {
	// If the ISP resolver drops queries, a second configured resolver (the
	// public DNS local-fix) answers on the same attempt round.
	_, client, _, isp := dnsWorld(t)
	isp.h = HandlerFunc(func(*Message, netem.Flow) *Message { return nil })
	c := NewClient(client, "10.0.0.53:53", "8.8.8.8:53")
	res := c.Lookup(context.Background(), "www.youtube.com")
	if !res.OK() {
		t.Fatalf("fallback lookup failed: %+v", res)
	}
	if res.Server != "8.8.8.8:53" {
		t.Fatalf("answered by %s, want public DNS", res.Server)
	}
}

func TestLookupNoServers(t *testing.T) {
	_, client, _, _ := dnsWorld(t)
	c := &Client{Dial: client.Dial, Clock: client.Network().Clock()}
	if res := c.Lookup(context.Background(), "x.example"); res.Err == nil {
		t.Fatal("lookup with no servers succeeded")
	}
}

func TestLookupContextCancel(t *testing.T) {
	_, client, _, isp := dnsWorld(t)
	isp.h = HandlerFunc(func(*Message, netem.Flow) *Message { return nil })
	c := NewClient(client, "10.0.0.53:53")
	ctx, cancel := client.Network().Clock().WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res := c.Lookup(ctx, "www.youtube.com")
	if res.Err == nil {
		t.Fatal("lookup under cancelled ctx succeeded")
	}
	if res.Took > 4500*time.Millisecond {
		t.Errorf("cancelled lookup took %v", res.Took)
	}
}

func TestRegistryUpdate(t *testing.T) {
	_, client, reg, _ := dnsWorld(t)
	c := NewClient(client, "10.0.0.53:53")
	reg.Set("new.example.pk", "203.0.113.99")
	res := c.Lookup(context.Background(), "new.example.pk")
	if !res.OK() || res.IPs[0] != "203.0.113.99" {
		t.Fatalf("lookup of updated name = %+v", res)
	}
	if names := reg.Names(); len(names) != 3 {
		t.Fatalf("registry names = %v", names)
	}
}

func TestServerMultipleQueriesPerConn(t *testing.T) {
	_, client, _, _ := dnsWorld(t)
	ctx, cancel := client.Network().Clock().WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := client.Dial(ctx, "10.0.0.53:53")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		q := NewQuery(uint16(i+1), "www.youtube.com")
		if err := WriteMessage(conn, q); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(i+1) || len(resp.AnswerIPs()) != 1 {
			t.Fatalf("query %d: %+v", i, resp)
		}
	}
}
