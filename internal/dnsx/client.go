package dnsx

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"csaw/internal/netem"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// Stub resolver defaults, chosen to reproduce the detection-time profile of
// Table 5: a resolver that answers REFUSED fails in one RTT (~25 ms); one
// that answers SERVFAIL is retried on a full attempt budget (~10.6 s); one
// that drops queries burns Attempts × AttemptTimeout (~10 s).
const (
	DefaultAttemptTimeout = 5 * time.Second
	DefaultAttempts       = 2
)

// Client is a stub resolver. Zero values of AttemptTimeout and Attempts take
// the defaults above.
type Client struct {
	Dial           netem.DialFunc
	Clock          *vtime.Clock
	Servers        []string // resolver addresses, "ip:53", tried in order
	AttemptTimeout time.Duration
	Attempts       int
	// HoldOn, when positive, enables the Hold-On defense against on-path
	// DNS injection [31]: after the first answer arrives, keep listening
	// for up to this long; if a second answer for the same query shows up,
	// prefer it — the genuine response travels farther than the injector's
	// and lands later.
	HoldOn time.Duration

	id atomic.Uint32
}

// NewClient builds a stub resolver for a host using the given resolver
// addresses.
func NewClient(host *netem.Host, servers ...string) *Client {
	return &Client{Dial: host.Dial, Clock: host.Network().Clock(), Servers: servers}
}

// Result is the outcome of a lookup.
type Result struct {
	Name   string
	IPs    []string
	RCode  int           // meaningful when Err == nil or errors.Is(Err, ErrRCode)
	Server string        // resolver that produced the final outcome
	Took   time.Duration // virtual time spent
	Err    error
}

// Errors produced by Lookup, distinguishable with errors.Is.
var (
	// ErrNoResponse means every attempt timed out with no answer at all —
	// the censor's query/response-drop case ("No DNS" in Figure 2).
	ErrNoResponse = errors.New("dnsx: no response")
	// ErrRCode means the resolver answered with a non-zero RCODE; Result.RCode
	// holds it.
	ErrRCode = errors.New("dnsx: resolver returned error rcode")
)

// OK reports whether the lookup yielded usable addresses.
func (r Result) OK() bool { return r.Err == nil && len(r.IPs) > 0 }

func (c *Client) attemptTimeout() time.Duration {
	if c.AttemptTimeout > 0 {
		return c.AttemptTimeout
	}
	return DefaultAttemptTimeout
}

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return DefaultAttempts
}

// Lookup resolves name to A records using the client's retry policy.
func (c *Client) Lookup(ctx context.Context, name string) (res Result) {
	start := c.Clock.Now()
	res = Result{Name: CanonicalName(name)}
	defer func() { res.Took = c.Clock.Since(start) }()

	// Flight recorder: the whole lookup — including the dials to each
	// resolver — counts as the lane's DNS phase; each query attempt and its
	// verdict (rcode, answer, timeout) is an event.
	lane := trace.FromContext(ctx)
	mark := lane.Begin(trace.PhaseDNS)
	defer mark.End()

	if len(c.Servers) == 0 {
		res.Err = fmt.Errorf("dnsx: no resolvers configured")
		return res
	}

	sawServfail := false
	for attempt := 0; attempt < c.attempts(); attempt++ {
		for _, server := range c.Servers {
			attemptStart := c.Clock.Now()
			lane.Event("dns", "query", res.Name+" @"+server)
			msg, err := c.exchange(ctx, server, name)
			switch {
			case err == nil:
				res.Server = server
				res.RCode = msg.RCode
				lane.Event("dns", "rcode", RCodeName(msg.RCode))
				switch msg.RCode {
				case RCodeNoError:
					res.IPs = msg.AnswerIPs()
					if len(res.IPs) == 0 {
						res.Err = fmt.Errorf("%w: empty NOERROR answer", ErrRCode)
					} else {
						lane.Event("dns", "answer", strings.Join(res.IPs, ","))
					}
					return res
				case RCodeNXDomain, RCodeRefused:
					// Authoritative-style failures: no point retrying, which
					// is why REFUSED blocking is detected in ~one RTT.
					res.Err = fmt.Errorf("%w: %s", ErrRCode, RCodeName(msg.RCode))
					return res
				case RCodeServFail:
					// Possibly transient: hold on for the rest of the attempt
					// budget and retry, the behaviour that stretches SERVFAIL
					// blocking detection to ~10.6s.
					sawServfail = true
					spent := c.Clock.Since(attemptStart)
					if rest := c.attemptTimeout() - spent; rest > 0 {
						if c.Clock.SleepCtx(ctx, rest) != nil {
							res.Err = ctx.Err()
							return res
						}
					}
				default:
					res.Err = fmt.Errorf("%w: %s", ErrRCode, RCodeName(msg.RCode))
					return res
				}
			case ctx.Err() != nil:
				lane.Event("dns", "cancelled", server)
				res.Err = ctx.Err()
				return res
			default:
				// Timeout or transport failure: move to the next attempt.
				lane.Event("dns", "no-answer", server)
			}
		}
	}
	if sawServfail {
		res.RCode = RCodeServFail
		res.Err = fmt.Errorf("%w: %s after %d attempts", ErrRCode, RCodeName(RCodeServFail), c.attempts())
		return res
	}
	res.Err = fmt.Errorf("%w: %s after %d attempts", ErrNoResponse, res.Name, c.attempts())
	return res
}

// exchange performs one query/response round with one resolver.
func (c *Client) exchange(ctx context.Context, server, name string) (*Message, error) {
	actx, cancel := c.Clock.WithTimeout(ctx, c.attemptTimeout())
	defer cancel()
	conn, err := c.Dial(actx, server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := c.Clock.Now().Add(c.attemptTimeout())
	_ = conn.SetDeadline(deadline)
	// The conn deadline covers the attempt budget; also unblock promptly if
	// the caller's context ends first.
	stop := context.AfterFunc(actx, func() { conn.Close() })
	defer stop()

	id := uint16(c.id.Add(1))
	q := NewQuery(id, name)
	if err := WriteMessage(conn, q); err != nil {
		return nil, err
	}
	for {
		resp, err := ReadMessage(conn)
		if err != nil {
			return nil, err
		}
		if resp.ID != id || !resp.Response {
			continue // stray or spoofed-mismatch message; keep waiting
		}
		if c.HoldOn > 0 {
			if later := c.holdOn(conn, id); later != nil {
				return later, nil
			}
		}
		return resp, nil
	}
}

// holdOn waits briefly for a second answer to the same query and returns
// it, or nil if none arrives — the injected answer always arrives first,
// so a conflicting later answer is the genuine one.
func (c *Client) holdOn(conn interface {
	Read([]byte) (int, error)
	SetReadDeadline(t time.Time) error
}, id uint16) *Message {
	_ = conn.SetReadDeadline(c.Clock.Now().Add(c.HoldOn))
	defer conn.SetReadDeadline(c.Clock.Now().Add(c.attemptTimeout()))
	for {
		resp, err := ReadMessage(conn)
		if err != nil {
			return nil // silence: the first answer stands
		}
		if resp.ID == id && resp.Response {
			return resp
		}
	}
}
