// Package tlsx is a pseudo-TLS layer for the emulated internet.
//
// What the paper's censors act on is TLS's *observable surface*: the Server
// Name Indication travels in cleartext in the ClientHello, while the HTTP
// Host header and payload are encrypted (§2.1, §2.2). tlsx reproduces
// exactly that surface — a cleartext handshake carrying the SNI and the
// server's certificate name, followed by a keystream-obscured byte stream —
// without real cryptography, which the system under test never depends on.
// Domain fronting works as in the paper: the client connects to a front
// host with the front's name in the SNI while the encrypted Host header
// names the blocked back end (§2.2).
//
// Handshake wire format (all cleartext, censor-parseable):
//
//	"TLSX" | type(1) | nameLen(2) | name | random(8)
//
// where type 0x01 is a ClientHello (name = SNI) and 0x02 a ServerHello
// (name = certificate subject). The subsequent stream is XORed with a
// per-direction xorshift keystream seeded from both randoms.
package tlsx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strings"
	"sync"
)

// Port is the conventional HTTPS port in the emulated world.
const Port = 443

var magic = [4]byte{'T', 'L', 'S', 'X'}

// Handshake message types.
const (
	typeClientHello = 0x01
	typeServerHello = 0x02
)

// Errors returned by the handshake.
var (
	ErrNotTLSX       = errors.New("tlsx: not a TLSX handshake")
	ErrCertMismatch  = errors.New("tlsx: certificate name mismatch")
	ErrNoCertForName = errors.New("tlsx: server has no certificate for SNI")
)

// maxNameLen bounds SNI/certificate names.
const maxNameLen = 255

// Hello is a parsed handshake message.
type Hello struct {
	Type   byte
	Name   string // SNI for ClientHello, certificate subject for ServerHello
	Random [8]byte
}

// marshalHello encodes a handshake message.
func marshalHello(typ byte, name string, random [8]byte) ([]byte, error) {
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("tlsx: name too long (%d)", len(name))
	}
	b := make([]byte, 0, 4+1+2+len(name)+8)
	b = append(b, magic[:]...)
	b = append(b, typ)
	b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	b = append(b, random[:]...)
	return b, nil
}

// ReadHello parses one handshake message from r. Censors use this on raw
// streams to extract the SNI.
func ReadHello(r io.Reader) (*Hello, error) {
	var head [7]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	if [4]byte(head[0:4]) != magic {
		return nil, ErrNotTLSX
	}
	h := &Hello{Type: head[4]}
	nameLen := int(binary.BigEndian.Uint16(head[5:7]))
	if nameLen > maxNameLen {
		return nil, ErrNotTLSX
	}
	buf := make([]byte, nameLen+8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	h.Name = string(buf[:nameLen])
	copy(h.Random[:], buf[nameLen:])
	return h, nil
}

// SniffClientHello reports whether b begins a TLSX ClientHello and if so the
// SNI it carries. It needs at most PeekLen bytes.
func SniffClientHello(b []byte) (sni string, ok bool) {
	if len(b) < 7 || [4]byte(b[0:4]) != magic || b[4] != typeClientHello {
		return "", false
	}
	nameLen := int(binary.BigEndian.Uint16(b[5:7]))
	if nameLen > maxNameLen || len(b) < 7+nameLen {
		return "", false
	}
	return string(b[7 : 7+nameLen]), true
}

// PeekLen is how many bytes a censor must peek to read any SNI.
const PeekLen = 7 + maxNameLen

// keystream is a xorshift64-based pseudo-random byte stream. It provides
// payload opacity to the on-path observer, standing in for TLS's real
// cipher (see the package comment for why this is sufficient here).
type keystream struct {
	state uint64
	buf   [8]byte
	pos   int
}

func newKeystream(clientRand, serverRand [8]byte, direction string) *keystream {
	h := fnv.New64a()
	h.Write(clientRand[:])
	h.Write(serverRand[:])
	io.WriteString(h, direction)
	s := h.Sum64()
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &keystream{state: s, pos: 8}
}

func (k *keystream) xor(b []byte) {
	for i := range b {
		if k.pos == 8 {
			k.state ^= k.state << 13
			k.state ^= k.state >> 7
			k.state ^= k.state << 17
			binary.BigEndian.PutUint64(k.buf[:], k.state)
			k.pos = 0
		}
		b[i] ^= k.buf[k.pos]
		k.pos++
	}
}

// Conn is an established pseudo-TLS connection.
type Conn struct {
	net.Conn
	peerName string // server cert (client side) or SNI (server side)

	rmu sync.Mutex
	rks *keystream
	wmu sync.Mutex
	wks *keystream
}

// PeerName returns the certificate name (on clients) or the received SNI
// (on servers).
func (c *Conn) PeerName() string { return c.peerName }

// Read decrypts from the underlying connection.
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.rmu.Lock()
		c.rks.xor(b[:n])
		c.rmu.Unlock()
	}
	return n, err
}

// Write encrypts to the underlying connection.
func (c *Conn) Write(b []byte) (int, error) {
	enc := make([]byte, len(b))
	copy(enc, b)
	c.wmu.Lock()
	c.wks.xor(enc)
	n, err := c.Conn.Write(enc)
	if n < len(b) && err == nil {
		err = io.ErrShortWrite
	}
	c.wmu.Unlock()
	return n, err
}

// randomFrom derives an 8-byte handshake random. Determinism is fine: the
// randoms only diversify keystreams, they carry no security weight here.
func randomFrom(parts ...string) [8]byte {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	var r [8]byte
	binary.BigEndian.PutUint64(r[:], h.Sum64())
	return r
}

// Client performs the client side of the handshake over conn, offering sni.
// If expectCert is non-empty the server's certificate name must match it.
func Client(conn net.Conn, sni, expectCert string) (*Conn, error) {
	cr := randomFrom("client", sni, conn.LocalAddr().String())
	hello, err := marshalHello(typeClientHello, sni, cr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(hello); err != nil {
		return nil, err
	}
	sh, err := ReadHello(conn)
	if err != nil {
		return nil, err
	}
	if sh.Type != typeServerHello {
		return nil, ErrNotTLSX
	}
	if expectCert != "" && !nameMatches(sh.Name, expectCert) {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrCertMismatch, sh.Name, expectCert)
	}
	return &Conn{
		Conn:     conn,
		peerName: sh.Name,
		rks:      newKeystream(cr, sh.Random, "s2c"),
		wks:      newKeystream(cr, sh.Random, "c2s"),
	}, nil
}

// CertFunc maps a received SNI to the certificate name the server presents,
// or "" to refuse the handshake. CDN/front servers present per-site certs.
type CertFunc func(sni string) string

// CertFor returns a CertFunc serving exactly the given names.
func CertFor(names ...string) CertFunc {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[strings.ToLower(n)] = true
	}
	return func(sni string) string {
		if set[strings.ToLower(sni)] {
			return strings.ToLower(sni)
		}
		return ""
	}
}

// Server performs the server side of the handshake over conn.
func Server(conn net.Conn, certs CertFunc) (*Conn, error) {
	ch, err := ReadHello(conn)
	if err != nil {
		return nil, err
	}
	if ch.Type != typeClientHello {
		return nil, ErrNotTLSX
	}
	cert := certs(ch.Name)
	if cert == "" {
		return nil, fmt.Errorf("%w: %q", ErrNoCertForName, ch.Name)
	}
	sr := randomFrom("server", cert, conn.LocalAddr().String())
	hello, err := marshalHello(typeServerHello, cert, sr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(hello); err != nil {
		return nil, err
	}
	return &Conn{
		Conn:     conn,
		peerName: ch.Name,
		rks:      newKeystream(ch.Random, sr, "c2s"),
		wks:      newKeystream(ch.Random, sr, "s2c"),
	}, nil
}

// nameMatches compares certificate names case-insensitively, honouring a
// single leading wildcard label ("*.cdn.example").
func nameMatches(cert, want string) bool {
	cert, want = strings.ToLower(cert), strings.ToLower(want)
	if cert == want {
		return true
	}
	if rest, ok := strings.CutPrefix(cert, "*."); ok {
		if i := strings.IndexByte(want, '.'); i >= 0 && want[i+1:] == rest {
			return true
		}
	}
	return false
}
