package tlsx

import "testing"

// BenchmarkKeystream measures payload obscuring throughput (per 4KB).
func BenchmarkKeystream(b *testing.B) {
	ks := newKeystream(randomFrom("c"), randomFrom("s"), "c2s")
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		ks.xor(buf)
	}
}

// BenchmarkSniffClientHello measures the censor's per-connection peek.
func BenchmarkSniffClientHello(b *testing.B) {
	hello, err := marshalHello(typeClientHello, "www.youtube.com", randomFrom("x"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := SniffClientHello(hello); !ok {
			b.Fatal("sniff failed")
		}
	}
}
