package tlsx

import (
	"context"
	"net"

	"csaw/internal/trace"
)

// ClientCtx is Client plus flight-recorder instrumentation: when the
// context carries a trace lane, the handshake is timed as PhaseTLS and the
// offered SNI and handshake verdict are recorded.
func ClientCtx(ctx context.Context, conn net.Conn, sni, expectCert string) (*Conn, error) {
	l := trace.FromContext(ctx)
	if l == nil {
		return Client(conn, sni, expectCert)
	}
	l.Event("tls", "hello", sni)
	m := l.Begin(trace.PhaseTLS)
	c, err := Client(conn, sni, expectCert)
	m.End()
	if err != nil {
		l.Event("tls", "error", err.Error())
		return nil, err
	}
	l.Event("tls", "ok", c.PeerName())
	return c, nil
}
