package tlsx

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

// handshakePair runs client and server handshakes over a net.Pipe.
func handshakePair(t *testing.T, sni, expectCert string, certs CertFunc) (*Conn, *Conn, error, error) {
	t.Helper()
	pc, ps := net.Pipe()
	var (
		cc, sc            *Conn
		clientErr, srvErr error
		clientOK          = make(chan struct{})
		serverOK          = make(chan struct{})
	)
	go func() {
		defer close(clientOK)
		cc, clientErr = Client(pc, sni, expectCert)
		if clientErr != nil {
			pc.Close() // unblock the peer on a synchronous pipe
		}
	}()
	go func() {
		defer close(serverOK)
		sc, srvErr = Server(ps, certs)
		if srvErr != nil {
			ps.Close()
		}
	}()
	<-clientOK
	<-serverOK
	return cc, sc, clientErr, srvErr
}

func TestHandshakeAndEcho(t *testing.T) {
	cc, sc, cerr, serr := handshakePair(t, "www.youtube.com", "www.youtube.com", CertFor("www.youtube.com"))
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	if sc.PeerName() != "www.youtube.com" {
		t.Fatalf("server saw SNI %q", sc.PeerName())
	}
	if cc.PeerName() != "www.youtube.com" {
		t.Fatalf("client saw cert %q", cc.PeerName())
	}

	msg := []byte("GET / HTTP/1.1\r\nHost: www.youtube.com\r\n\r\n")
	go func() {
		cc.Write(msg)
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("server read %q", buf)
	}

	// And the other direction.
	reply := []byte("HTTP/1.1 200 OK\r\n\r\n")
	go func() { sc.Write(reply) }()
	buf2 := make([]byte, len(reply))
	if _, err := io.ReadFull(cc, buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, reply) {
		t.Fatalf("client read %q", buf2)
	}
}

func TestPayloadIsOpaqueOnWire(t *testing.T) {
	// The censor must not see the Host header in the ciphertext.
	pc, ps := net.Pipe()
	var wire bytes.Buffer

	done := make(chan struct{})
	go func() {
		defer close(done)
		sc, err := Server(ps, CertFor("front.cdn.example"))
		if err != nil {
			return
		}
		io.Copy(io.Discard, sc)
	}()

	// Tap the client→server bytes by wrapping the client side.
	tap := &tapConn{Conn: pc, sink: &wire}
	cc, err := Client(tap, "front.cdn.example", "")
	if err != nil {
		t.Fatal(err)
	}
	secret := "Host: blocked.backend.example"
	if _, err := cc.Write([]byte(secret)); err != nil {
		t.Fatal(err)
	}
	pc.Close()
	<-done

	onWire := wire.String()
	if !strings.Contains(onWire, "front.cdn.example") {
		t.Error("SNI should be cleartext on the wire")
	}
	if strings.Contains(onWire, "blocked.backend") {
		t.Error("encrypted payload leaked the Host header")
	}
}

type tapConn struct {
	net.Conn
	sink *bytes.Buffer
}

func (c *tapConn) Write(b []byte) (int, error) {
	c.sink.Write(b)
	return c.Conn.Write(b)
}

func TestCertMismatch(t *testing.T) {
	_, _, cerr, _ := handshakePair(t, "evil.example", "good.example", CertFor("evil.example"))
	if cerr == nil {
		t.Fatal("client accepted wrong certificate")
	}
}

func TestServerRefusesUnknownSNI(t *testing.T) {
	_, _, cerr, serr := handshakePair(t, "unknown.example", "", CertFor("known.example"))
	if serr == nil {
		t.Fatal("server handshook for unknown SNI")
	}
	_ = cerr // client fails too (EOF/short read); exact error not important
}

func TestWildcardCert(t *testing.T) {
	if !nameMatches("*.cdn.example", "img7.cdn.example") {
		t.Error("wildcard should match one label")
	}
	if nameMatches("*.cdn.example", "cdn.example") {
		t.Error("wildcard should not match the bare domain")
	}
	if !nameMatches("A.Example", "a.example") {
		t.Error("match should be case-insensitive")
	}
}

func TestSniffClientHello(t *testing.T) {
	cr := randomFrom("x")
	hello, err := marshalHello(typeClientHello, "www.youtube.com", cr)
	if err != nil {
		t.Fatal(err)
	}
	sni, ok := SniffClientHello(hello)
	if !ok || sni != "www.youtube.com" {
		t.Fatalf("sniff = %q %v", sni, ok)
	}
	if _, ok := SniffClientHello([]byte("GET / HTTP/1.1\r\n")); ok {
		t.Error("sniffed SNI from plain HTTP")
	}
	if _, ok := SniffClientHello(hello[:5]); ok {
		t.Error("sniffed SNI from truncated hello")
	}
}

func TestReadHelloRejectsGarbage(t *testing.T) {
	if _, err := ReadHello(strings.NewReader("NOPE....")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadHello(strings.NewReader("TL")); err == nil {
		t.Error("short read accepted")
	}
}

func TestNameTooLong(t *testing.T) {
	if _, err := marshalHello(typeClientHello, strings.Repeat("a", 300), [8]byte{}); err == nil {
		t.Error("oversized name accepted")
	}
}

func TestQuickKeystreamSymmetry(t *testing.T) {
	// Property: XOR with the same keystream twice is the identity, across
	// arbitrary chunking.
	f := func(data []byte, cut uint8) bool {
		var cr, sr [8]byte
		cr = randomFrom("c")
		sr = randomFrom("s")
		enc := newKeystream(cr, sr, "d")
		dec := newKeystream(cr, sr, "d")
		buf := append([]byte(nil), data...)
		k := int(cut)
		if k > len(buf) {
			k = len(buf)
		}
		enc.xor(buf[:k])
		enc.xor(buf[k:])
		dec.xor(buf)
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeystreamDirectionsDiffer(t *testing.T) {
	cr, sr := randomFrom("c"), randomFrom("s")
	a := make([]byte, 64)
	b := make([]byte, 64)
	newKeystream(cr, sr, "c2s").xor(a)
	newKeystream(cr, sr, "s2c").xor(b)
	if bytes.Equal(a, b) {
		t.Fatal("directional keystreams identical")
	}
}
