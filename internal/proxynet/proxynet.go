// Package proxynet implements simple CONNECT-style forward proxies: the
// "static proxies spread throughout the world" that §2.3 compares against
// (Table 2 lists their ping latencies), and the building block Lantern's
// HTTPS proxies reuse.
//
// Protocol: the client opens a stream and sends one line,
//
//	CONNECT <host-or-ip>:<port>\n
//
// the proxy resolves and dials the target from *its* vantage point (which is
// the whole circumvention value: the proxy sits outside the censored
// region), answers "OK\n" or "ERR <reason>\n", and then splices bytes both
// ways.
package proxynet

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"csaw/internal/netem"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// Port is the conventional static-proxy port.
const Port = 3128

// Lookup resolves a hostname to an IP from the proxy's vantage point.
type Lookup func(ctx context.Context, host string) (string, error)

// IPLookup passes IP literals through and fails everything else; proxies in
// worlds without DNS use it.
func IPLookup(_ context.Context, host string) (string, error) {
	if isIPLiteral(host) {
		return host, nil
	}
	return "", fmt.Errorf("proxynet: cannot resolve %q", host)
}

func isIPLiteral(s string) bool {
	dots := 0
	for _, c := range s {
		switch {
		case c == '.':
			dots++
		case c < '0' || c > '9':
			return false
		}
	}
	return dots == 3
}

// Server is a running CONNECT proxy.
type Server struct {
	host    *netem.Host
	l       *netem.Listener
	lookup  Lookup
	clock   *vtime.Clock
	timeout time.Duration
}

// Serve starts a CONNECT proxy on host:port. The lookup resolves names for
// clients that tunnel by hostname; nil means IP literals only.
func Serve(host *netem.Host, port int, lookup Lookup) (*Server, error) {
	if lookup == nil {
		lookup = IPLookup
	}
	l, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s := &Server{host: host, l: l, lookup: lookup, clock: host.Network().Clock(), timeout: 30 * time.Second}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the proxy's dial address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// SetTimeout replaces the per-exchange idle timeout (virtual). Population-
// scale runs raise it: at high clock scales a short virtual timeout is only
// milliseconds of real slack, and scheduler stalls would sever healthy
// tunnels. Call before the proxy carries traffic.
func (s *Server) SetTimeout(d time.Duration) {
	if d > 0 {
		s.timeout = d
	}
}

// Close stops the proxy.
func (s *Server) Close() error { return s.l.Close() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	target, ok := strings.CutPrefix(strings.TrimSpace(line), "CONNECT ")
	if !ok {
		fmt.Fprintf(conn, "ERR bad request\n")
		conn.Close()
		return
	}
	host, port, err := netem.SplitAddr(target)
	if err != nil {
		fmt.Fprintf(conn, "ERR bad target\n")
		conn.Close()
		return
	}
	ctx, cancel := s.clock.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	ip := host
	if !isIPLiteral(host) {
		ip, err = s.lookup(ctx, host)
		if err != nil {
			fmt.Fprintf(conn, "ERR resolve: %v\n", err)
			conn.Close()
			return
		}
	}
	upstream, err := s.host.Dial(ctx, fmt.Sprintf("%s:%d", ip, port))
	if err != nil {
		fmt.Fprintf(conn, "ERR dial: %v\n", err)
		conn.Close()
		return
	}
	if _, err := io.WriteString(conn, "OK\n"); err != nil {
		conn.Close()
		upstream.Close()
		return
	}
	Splice(conn, br, upstream)
}

// Splice copies a↔b until both directions end, sourcing the a→b direction
// from ar (which may hold buffered bytes). Resets propagate.
func Splice(a net.Conn, ar io.Reader, b net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := io.Copy(b, ar)
		if err != nil && netem.IsReset(err) {
			if nc, ok := b.(*netem.Conn); ok {
				nc.Reset()
				return
			}
		}
		b.Close()
	}()
	go func() {
		defer wg.Done()
		_, err := io.Copy(a, b)
		if err != nil && netem.IsReset(err) {
			if nc, ok := a.(*netem.Conn); ok {
				nc.Reset()
				return
			}
		}
		a.Close()
	}()
	wg.Wait()
}

// Via returns a DialFunc that tunnels every connection through the proxy at
// proxyAddr. The returned conns behave like direct conns to the target.
func Via(base netem.DialFunc, clock *vtime.Clock, proxyAddr string) netem.DialFunc {
	return func(ctx context.Context, address string) (net.Conn, error) {
		lane := trace.FromContext(ctx)
		lane.Event("relay", "connect", proxyAddr)
		conn, err := base(ctx, proxyAddr)
		if err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			// Map the context deadline into the virtual frame before arming
			// the conn deadline: wall-clock re-inflated under a real-scaled
			// clock, already virtual under a discrete-event one.
			_ = conn.SetDeadline(clock.VirtualDeadline(dl))
		}
		if _, err := fmt.Fprintf(conn, "CONNECT %s\n", address); err != nil {
			conn.Close()
			return nil, err
		}
		br := bufio.NewReader(conn)
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("proxynet: tunnel to %s: %w", address, err)
		}
		line = strings.TrimSpace(line)
		if line != "OK" {
			conn.Close()
			lane.Event("relay", "tunnel-refused", address)
			return nil, fmt.Errorf("proxynet: tunnel to %s refused: %s", address, line)
		}
		_ = conn.SetDeadline(time.Time{})
		lane.Event("relay", "tunnel-ok", address)
		return &tunnelConn{Conn: conn, br: br}, nil
	}
}

// tunnelConn reads through the handshake bufio.Reader so no bytes are lost.
type tunnelConn struct {
	net.Conn
	br *bufio.Reader
}

func (c *tunnelConn) Read(b []byte) (int, error) { return c.br.Read(b) }
