package proxynet

import (
	"context"
	"testing"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

func proxyWorld(t *testing.T) (*netem.Network, *netem.Host, *Server) {
	t.Helper()
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(17), netem.WithJitter(0))
	pk := n.AddAS(1, "PK", "PK")
	eu := n.AddAS(2, "EU", "EU")
	client := n.MustAddHost("client", "10.0.0.1", "pk", pk)
	proxyHost := n.MustAddHost("proxy-uk", "20.2.0.1", "uk", eu)
	origin := n.MustAddHost("origin", "93.184.216.34", "us", eu)
	n.SetRTT("pk", "uk", 228*time.Millisecond) // Table 2: UK proxy
	n.SetRTT("pk", "us", 186*time.Millisecond)
	n.SetRTT("uk", "us", 80*time.Millisecond)

	httpx.Serve(origin.MustListen(80), httpx.HandlerFunc(func(req *httpx.Request, _ netem.Flow) *httpx.Response {
		return httpx.NewResponse(200, []byte("origin says hi"))
	}))
	srv, err := Serve(proxyHost, Port, IPLookup)
	if err != nil {
		t.Fatal(err)
	}
	return n, client, srv
}

func TestTunnelRoundTrip(t *testing.T) {
	n, client, srv := proxyWorld(t)
	dial := Via(client.Dial, n.Clock(), srv.Addr())
	c := &httpx.Client{Dial: dial, Clock: n.Clock(), Timeout: 15 * time.Second}
	resp, err := c.Get(context.Background(), "93.184.216.34:80", "x.example", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "origin says hi" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestTunnelToDeadTargetFails(t *testing.T) {
	n, client, srv := proxyWorld(t)
	dial := Via(client.Dial, n.Clock(), srv.Addr())
	ctx, cancel := n.Clock().WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := dial(ctx, "93.184.216.34:81"); err == nil {
		t.Fatal("tunnel to closed port succeeded")
	}
}

func TestTunnelByHostnameNeedsLookup(t *testing.T) {
	n, client, srv := proxyWorld(t)
	dial := Via(client.Dial, n.Clock(), srv.Addr())
	ctx, cancel := n.Clock().WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// IPLookup refuses hostnames.
	if _, err := dial(ctx, "blocked.example:80"); err == nil {
		t.Fatal("hostname tunnel succeeded without a resolver")
	}
}

func TestTunnelByHostnameWithLookup(t *testing.T) {
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(18), netem.WithJitter(0))
	as := n.AddAS(1, "X", "EU")
	client := n.MustAddHost("client", "10.0.0.1", "pk", as)
	proxyHost := n.MustAddHost("proxy", "20.2.0.1", "de", as)
	origin := n.MustAddHost("origin", "93.184.216.34", "us", as)
	httpx.Serve(origin.MustListen(80), httpx.HandlerFunc(func(*httpx.Request, netem.Flow) *httpx.Response {
		return httpx.NewResponse(200, []byte("by name"))
	}))
	lookup := func(_ context.Context, host string) (string, error) {
		return "93.184.216.34", nil
	}
	srv, err := Serve(proxyHost, Port, lookup)
	if err != nil {
		t.Fatal(err)
	}
	dial := Via(client.Dial, clock, srv.Addr())
	c := &httpx.Client{Dial: dial, Clock: clock, Timeout: 15 * time.Second}
	resp, err := c.Get(context.Background(), "blocked.example:80", "blocked.example", "/")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "by name" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestProxyAddsLatency(t *testing.T) {
	// Table 2 / Figure 1a shape: a far proxy costs more than the direct path.
	n, client, srv := proxyWorld(t)
	fetch := func(dial netem.DialFunc) time.Duration {
		start := n.Clock().Now()
		c := &httpx.Client{Dial: dial, Clock: n.Clock(), Timeout: 15 * time.Second}
		if _, err := c.Get(context.Background(), "93.184.216.34:80", "x", "/"); err != nil {
			t.Fatal(err)
		}
		return n.Clock().Since(start)
	}
	viaProxy := fetch(Via(client.Dial, n.Clock(), srv.Addr()))
	direct := fetch(client.Dial)
	if viaProxy <= direct {
		t.Errorf("proxy %v <= direct %v", viaProxy, direct)
	}
}

func TestBadConnectLineRejected(t *testing.T) {
	n, client, srv := proxyWorld(t)
	ctx, cancel := n.Clock().WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := client.Dial(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(n.Clock().Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("GARBAGE LINE\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nr, err := conn.Read(buf)
	if err != nil || string(buf[:3]) != "ERR" {
		t.Fatalf("read = %q err=%v, want ERR", buf[:nr], err)
	}
}

func TestIPLookup(t *testing.T) {
	if ip, err := IPLookup(context.Background(), "1.2.3.4"); err != nil || ip != "1.2.3.4" {
		t.Fatal("IP literal refused")
	}
	if _, err := IPLookup(context.Background(), "example.com"); err == nil {
		t.Fatal("hostname accepted")
	}
}
