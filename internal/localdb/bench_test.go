package localdb

import (
	"fmt"
	"testing"
	"time"

	"csaw/internal/vtime"
)

// BenchmarkPutAggregated measures writes with §4.4 aggregation active.
func BenchmarkPutAggregated(b *testing.B) {
	db := New(vtime.New(1000), time.Hour, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Put(fmt.Sprintf("site%d.example/p%d", i%50, i%7), 1, NotBlocked, nil)
	}
}

// BenchmarkLookupLongestPrefix measures the read path with prefix matching.
func BenchmarkLookupLongestPrefix(b *testing.B) {
	db := New(vtime.New(1000), time.Hour, true)
	for i := 0; i < 50; i++ {
		db.Put(fmt.Sprintf("site%d.example/banned/p", i), 1, Blocked, []Stage{{Type: BlockHTTP}})
		db.Put(fmt.Sprintf("site%d.example/", i), 1, NotBlocked, nil)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = db.Lookup(fmt.Sprintf("site%d.example/banned/p/deep.html", i%50))
	}
}
