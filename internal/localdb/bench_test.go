package localdb

import (
	"fmt"
	"testing"
	"time"

	"csaw/internal/vtime"
)

// BenchmarkPutAggregated measures writes with §4.4 aggregation active.
func BenchmarkPutAggregated(b *testing.B) {
	db := New(vtime.New(1000), time.Hour, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Put(fmt.Sprintf("site%d.example/p%d", i%50, i%7), 1, NotBlocked, nil)
	}
}

// BenchmarkLookupLongestPrefix measures the read path with prefix matching.
func BenchmarkLookupLongestPrefix(b *testing.B) {
	db := New(vtime.New(1000), time.Hour, true)
	for i := 0; i < 50; i++ {
		db.Put(fmt.Sprintf("site%d.example/banned/p", i), 1, Blocked, []Stage{{Type: BlockHTTP}})
		db.Put(fmt.Sprintf("site%d.example/", i), 1, NotBlocked, nil)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = db.Lookup(fmt.Sprintf("site%d.example/banned/p/deep.html", i%50))
	}
}

// BenchmarkLookupParallel measures the fleet-shaped read path: many
// concurrent readers against a populated DB. With the RWMutex read path
// lookups proceed in parallel instead of serializing behind one mutex —
// compare against BenchmarkLookupContended, which mixes in writers.
func BenchmarkLookupParallel(b *testing.B) {
	db := New(vtime.New(1000), time.Hour, true)
	for i := 0; i < 200; i++ {
		db.Put(fmt.Sprintf("site%d.example/banned/p", i), 1, Blocked, []Stage{{Type: BlockHTTP}})
		db.Put(fmt.Sprintf("site%d.example/", i), 1, NotBlocked, nil)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_, _ = db.Lookup(fmt.Sprintf("site%d.example/banned/p/deep.html", i%200))
			i++
		}
	})
}

// BenchmarkLookupContended is the mixed fleet workload: a 1:64
// write:read ratio (clients mostly look up, occasionally record).
func BenchmarkLookupContended(b *testing.B) {
	db := New(vtime.New(1000), time.Hour, true)
	for i := 0; i < 200; i++ {
		db.Put(fmt.Sprintf("site%d.example/", i), 1, NotBlocked, nil)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%64 == 0 {
				db.Put(fmt.Sprintf("site%d.example/", i%200), 1, NotBlocked, nil)
			} else {
				_, _ = db.Lookup(fmt.Sprintf("site%d.example/p.html", i%200))
			}
			i++
		}
	})
}
