package localdb

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"csaw/internal/vtime"
)

func newDB(aggregate bool) (*DB, *vtime.Clock) {
	clock := vtime.New(10000)
	return New(clock, time.Hour, aggregate), clock
}

func TestSplitJoinURL(t *testing.T) {
	cases := []struct{ in, host, path string }{
		{"WWW.Foo.com/A.html", "www.foo.com", "/A.html"},
		{"foo.com", "foo.com", "/"},
		{"http://foo.com/x", "foo.com", "/x"},
		{"https://foo.com", "foo.com", "/"},
	}
	for _, c := range cases {
		h, p := SplitURL(c.in)
		if h != c.host || p != c.path {
			t.Errorf("SplitURL(%q) = %q %q", c.in, h, p)
		}
	}
	if JoinURL("Foo.com", "") != "foo.com/" {
		t.Error("JoinURL default path wrong")
	}
	if BaseURL("foo.com/a/b") != "foo.com/" {
		t.Error("BaseURL wrong")
	}
}

func TestLookupNotMeasured(t *testing.T) {
	db, _ := newDB(true)
	if _, s := db.Lookup("foo.com/"); s != NotMeasured {
		t.Fatalf("status = %v", s)
	}
}

func TestBlockedBaseCoversDerived(t *testing.T) {
	// §4.4 HTTP case (a): base blocked → derived considered blocked.
	db, _ := newDB(true)
	db.Put("foo.com/", 100, Blocked, []Stage{{Type: BlockHTTP, Detail: "blockpage"}})
	if _, s := db.Lookup("foo.com/a.html"); s != Blocked {
		t.Fatalf("derived status = %v, want Blocked", s)
	}
	if db.Len() != 1 {
		t.Fatalf("records = %d, want 1", db.Len())
	}
}

func TestBlockedDerivedKeepsOwnRecord(t *testing.T) {
	// §4.4 HTTP case (b): a derived block does not condemn the base.
	db, _ := newDB(true)
	db.Put("foo.com/banned/x.html", 100, Blocked, []Stage{{Type: BlockHTTP}})
	if _, s := db.Lookup("foo.com/"); s != NotMeasured {
		t.Fatalf("base status = %v, want NotMeasured", s)
	}
	if _, s := db.Lookup("foo.com/banned/x.html"); s != Blocked {
		t.Fatal("derived not blocked")
	}
	// Children of the blocked path inherit via prefix matching.
	if _, s := db.Lookup("foo.com/banned/x.html?lang=ur"); s != Blocked {
		t.Fatal("query variant not covered")
	}
}

func TestUnblockedCollapsesToBase(t *testing.T) {
	// §4.4 case (c): unblocked measurements keep one base record.
	db, _ := newDB(true)
	db.Put("foo.com/a.html", 100, NotBlocked, nil)
	db.Put("foo.com/b.html", 100, NotBlocked, nil)
	db.Put("foo.com/c/d.html", 100, NotBlocked, nil)
	if db.Len() != 1 {
		t.Fatalf("records = %d, want 1 (collapsed)", db.Len())
	}
	if _, s := db.Lookup("foo.com/zzz.html"); s != NotBlocked {
		t.Fatalf("derived of unblocked base = %v", s)
	}
}

func TestLongestPrefixPrefersDerivedBlock(t *testing.T) {
	// Cases (b)+(c) together need longest-prefix matching (§4.4).
	db, _ := newDB(true)
	db.Put("foo.com/ok.html", 100, NotBlocked, nil)
	db.Put("foo.com/banned/x.html", 100, Blocked, []Stage{{Type: BlockHTTP}})
	if _, s := db.Lookup("foo.com/other.html"); s != NotBlocked {
		t.Fatal("base unblocked record lost")
	}
	if _, s := db.Lookup("foo.com/banned/x.html"); s != Blocked {
		t.Fatal("blocked derived record lost after unblocked collapse")
	}
}

func TestHostLevelBlockingAggregatesToBase(t *testing.T) {
	// IP/DNS/HTTPS blocking → single base record even for derived URL.
	for _, bt := range []BlockType{BlockDNS, BlockIP, BlockSNI, BlockTCPTimeout} {
		db, _ := newDB(true)
		db.Put("foo.com/deep/page.html", 100, Blocked, []Stage{{Type: bt}})
		if db.Len() != 1 {
			t.Fatalf("%v: records = %d", bt, db.Len())
		}
		if _, s := db.Lookup("foo.com/completely/other"); s != Blocked {
			t.Fatalf("%v: host-level block not covering host", bt)
		}
	}
}

func TestNoAggregationKeepsEveryRecord(t *testing.T) {
	db, _ := newDB(false)
	for i := 0; i < 10; i++ {
		db.Put(fmt.Sprintf("foo.com/p%d.html", i), 100, NotBlocked, nil)
	}
	if db.Len() != 10 {
		t.Fatalf("records = %d, want 10", db.Len())
	}
	// And a base record does not vouch for unmeasured URLs.
	db.Put("bar.com/", 100, NotBlocked, nil)
	if _, s := db.Lookup("bar.com/x.html"); s != NotMeasured {
		t.Fatalf("unaggregated base vouched for derived: %v", s)
	}
}

func TestAggregationSavesRecords(t *testing.T) {
	// The Figure 6b claim, as an invariant: aggregated count ≤ raw count.
	agg, _ := newDB(true)
	raw, _ := newDB(false)
	urls := []string{}
	for site := 0; site < 15; site++ {
		for p := 0; p < 6; p++ {
			urls = append(urls, fmt.Sprintf("site%d.example/p%d.html", site, p))
		}
	}
	for _, u := range urls {
		agg.Put(u, 1, NotBlocked, nil)
		raw.Put(u, 1, NotBlocked, nil)
	}
	if agg.Len() >= raw.Len() {
		t.Fatalf("aggregated %d >= raw %d", agg.Len(), raw.Len())
	}
	if agg.Len() != 15 {
		t.Fatalf("aggregated = %d, want 15 (one per site)", agg.Len())
	}
}

func TestExpiryChurnsToNotMeasured(t *testing.T) {
	// §4.4 scenario A: Blocked→Unblocked discovered after record expiry.
	clock := vtime.New(10000)
	db := New(clock, 2*time.Second, true)
	db.Put("foo.com/", 1, Blocked, []Stage{{Type: BlockHTTP}})
	if _, s := db.Lookup("foo.com/"); s != Blocked {
		t.Fatal("fresh record not blocked")
	}
	clock.Sleep(3 * time.Second)
	if _, s := db.Lookup("foo.com/"); s != NotMeasured {
		t.Fatalf("expired record status = %v, want NotMeasured", s)
	}
}

func TestExpirePurges(t *testing.T) {
	clock := vtime.New(10000)
	db := New(clock, time.Second, true)
	db.Put("a.com/", 1, Blocked, []Stage{{Type: BlockDNS}})
	db.Put("b.com/", 1, NotBlocked, nil)
	clock.Sleep(2 * time.Second)
	db.Put("c.com/", 1, NotBlocked, nil)
	if purged := db.Expire(); purged != 2 {
		t.Fatalf("purged = %d, want 2", purged)
	}
	if db.Len() != 1 {
		t.Fatalf("len = %d, want 1", db.Len())
	}
}

func TestPendingGlobalAndMarkPosted(t *testing.T) {
	db, _ := newDB(true)
	db.Put("a.com/", 1, Blocked, []Stage{{Type: BlockDNS, Detail: "nxdomain"}})
	db.Put("b.com/", 1, NotBlocked, nil)
	db.Put("c.com/x", 1, Blocked, []Stage{{Type: BlockHTTP}})
	pending := db.PendingGlobal()
	if len(pending) != 2 {
		t.Fatalf("pending = %v", pending)
	}
	if pending[0].URL != "a.com/" || pending[1].URL != "c.com/x" {
		t.Fatalf("pending order = %v", pending)
	}
	db.MarkPosted("a.com/")
	if p := db.PendingGlobal(); len(p) != 1 || p[0].URL != "c.com/x" {
		t.Fatalf("after mark: %v", p)
	}
}

func TestPathCovers(t *testing.T) {
	cases := []struct {
		stored, query string
		want          bool
	}{
		{"/", "/anything", true},
		{"/a", "/a", true},
		{"/a", "/a/b", true},
		{"/a", "/ab", false},
		{"/a/", "/a/b", true},
		{"/a", "/a?x=1", true},
	}
	for _, c := range cases {
		if got := pathCovers(c.stored, c.query); got != c.want {
			t.Errorf("pathCovers(%q, %q) = %v", c.stored, c.query, got)
		}
	}
}

func TestStatusAndBlockTypeStrings(t *testing.T) {
	if Blocked.String() != "blocked" || NotMeasured.String() != "not-measured" {
		t.Error("status names")
	}
	if BlockDNS.String() != "dns" || BlockTCPTimeout.String() != "tcp-timeout" {
		t.Error("block type names")
	}
	if !BlockDNS.HostLevel() || BlockHTTP.HostLevel() {
		t.Error("HostLevel wrong")
	}
}

// TestQuickAggregationInvariants property-tests the DB: (1) the aggregated
// record count never exceeds the unaggregated count by more than one
// synthesized base record per host, (2) a URL recorded blocked (with
// nothing newer covering it) never reads back NotBlocked.
func TestQuickAggregationInvariants(t *testing.T) {
	type op struct {
		Site    uint8
		Page    uint8
		Blocked bool
		Host    bool // host-level mechanism
	}
	f := func(ops []op) bool {
		agg, _ := newDB(true)
		raw, _ := newDB(false)
		for _, o := range ops {
			url := fmt.Sprintf("s%d.example/p%d", o.Site%5, o.Page%8)
			st := NotBlocked
			var stages []Stage
			if o.Blocked {
				st = Blocked
				bt := BlockHTTP
				if o.Host {
					bt = BlockDNS
				}
				stages = []Stage{{Type: bt}}
			}
			agg.Put(url, 1, st, stages)
			raw.Put(url, 1, st, stages)
		}
		hosts := map[string]bool{}
		for _, o := range ops {
			hosts[fmt.Sprintf("s%d.example", o.Site%5)] = true
		}
		if agg.Len() > raw.Len()+len(hosts) {
			return false
		}
		// Replay: final write per URL must dominate the readback unless a
		// newer, more specific blocked record covers it — conservatively
		// check only URLs whose final write was Blocked.
		final := map[string]bool{}
		for _, o := range ops {
			url := fmt.Sprintf("s%d.example/p%d", o.Site%5, o.Page%8)
			final[url] = o.Blocked
		}
		for url, blocked := range final {
			if blocked {
				if _, s := agg.Lookup(url); s == NotBlocked {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
