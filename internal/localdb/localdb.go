// Package localdb is C-Saw's client-side measurement store: an in-memory
// table of the URLs the user has visited with their blocking status (Table 3
// of the paper), entry expiry on a system timer (the URL-churn mechanism of
// §4.4, scenario Blocked→Unblocked), and the URL-aggregation scheme of §4.4
// that collapses records to cut the memory footprint on constrained devices
// (evaluated in Figure 6b):
//
//   - host-level blocking (IP, DNS, HTTPS/SNI) stores one record at the
//     base URL, covering every derived URL;
//   - HTTP blocking of the base URL covers every derived URL;
//   - HTTP blocking of a derived URL stores that URL's own record (censors
//     sometimes block single pages);
//   - an *unblocked* measurement, base or derived, collapses to a single
//     base-URL record.
//
// Lookups use longest-prefix matching on path segments so a blocked derived
// record wins over an unblocked base record.
package localdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"csaw/internal/vtime"
)

// Status is a URL's blocking status (Table 3).
type Status int

// Statuses. NotMeasured covers both never-measured URLs and expired records.
const (
	NotMeasured Status = iota
	NotBlocked
	Blocked
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case NotMeasured:
		return "not-measured"
	case NotBlocked:
		return "not-blocked"
	case Blocked:
		return "blocked"
	default:
		return "status(?)"
	}
}

// BlockType classifies a blocking mechanism, the vocabulary shared by the
// detection engine, the local and global databases, and the experiment
// reports (Figure 2's categories and Table 7's rows).
type BlockType int

// Blocking mechanisms.
const (
	BlockNone       BlockType = iota
	BlockDNS                  // DNS tampering of any flavour
	BlockIP                   // RST at connect time
	BlockTCPTimeout           // SYN blackholed: TCP connect timeout
	BlockHTTP                 // block page, dropped or reset HTTP exchange
	BlockSNI                  // HTTPS/SNI-based blocking
	BlockContent              // content manipulation caught by phase 2
)

// String returns the block-type name.
func (b BlockType) String() string {
	switch b {
	case BlockNone:
		return "none"
	case BlockDNS:
		return "dns"
	case BlockIP:
		return "ip"
	case BlockTCPTimeout:
		return "tcp-timeout"
	case BlockHTTP:
		return "http"
	case BlockSNI:
		return "sni"
	case BlockContent:
		return "content"
	default:
		return "block(?)"
	}
}

// HostLevel reports whether the mechanism filters a whole host (IP address
// or hostname) rather than individual URLs — the distinction §4.4's
// aggregation rules turn on.
func (b BlockType) HostLevel() bool {
	return b == BlockIP || b == BlockDNS || b == BlockSNI || b == BlockTCPTimeout
}

// Stage is one stage of (possibly multi-stage) blocking: the mechanism and
// a human-readable detail such as the DNS rcode or HTTP disposition.
type Stage struct {
	Type   BlockType
	Detail string
}

// Record is one local_DB row (Table 3).
type Record struct {
	URL          string // "host/path", the index
	ASN          int    // AS the measurement egressed through
	Measured     time.Time
	Status       Status
	Stages       []Stage // stage-1..stage-k blocking
	GlobalPosted bool
}

// PrimaryType returns the first stage's mechanism, or BlockNone.
func (r *Record) PrimaryType() BlockType {
	if len(r.Stages) == 0 {
		return BlockNone
	}
	return r.Stages[0].Type
}

// SplitURL splits "host/path" (scheme-less) into host and path.
func SplitURL(url string) (host, path string) {
	url = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return strings.ToLower(url[:i]), url[i:]
	}
	return strings.ToLower(url), "/"
}

// JoinURL is the inverse of SplitURL.
func JoinURL(host, path string) string {
	if path == "" {
		path = "/"
	}
	return strings.ToLower(host) + path
}

// BaseURL returns the host's base URL ("host/").
func BaseURL(url string) string {
	host, _ := SplitURL(url)
	return host + "/"
}

// DB is the local database. All methods are safe for concurrent use; the
// read path (Lookup and the snapshot accessors) takes only a read lock, so
// fleet-scale concurrent lookups do not serialize behind writers.
type DB struct {
	clock *vtime.Clock
	ttl   time.Duration
	// Aggregate enables the §4.4 aggregation rules; the Figure 6b ablation
	// turns it off.
	aggregate bool

	mu sync.RWMutex
	m  map[string]map[string]*Record // host → path → record
}

// DefaultTTL is the record lifetime: long relative to page loads, short
// enough to track URL churn ("blocking events happen on long time scales",
// §4.3.1).
const DefaultTTL = 24 * time.Hour

// New creates a DB. ttl ≤ 0 selects DefaultTTL.
func New(clock *vtime.Clock, ttl time.Duration, aggregate bool) *DB {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &DB{clock: clock, ttl: ttl, aggregate: aggregate, m: make(map[string]map[string]*Record)}
}

// expired reports whether a record is stale.
func (db *DB) expired(r *Record) bool {
	return db.clock.Since(r.Measured) > db.ttl
}

// Lookup returns the record governing url and its effective status.
// NotMeasured means no live record applies.
//
// Lookups run under the read lock; hitting an expired record upgrades to
// the write lock only to purge it (the rare path — records expire once).
func (db *DB) Lookup(url string) (Record, Status) {
	host, path := SplitURL(url)
	db.mu.RLock()
	best, r := db.matchLocked(host, path)
	if r == nil {
		db.mu.RUnlock()
		return Record{}, NotMeasured
	}
	if db.expired(r) {
		db.mu.RUnlock()
		db.purgeExpired(host, best)
		return Record{}, NotMeasured
	}
	// A base-URL unblocked record does not vouch for unmeasured derived
	// URLs when aggregation is off; with aggregation it does (case c).
	if !db.aggregate && best != path {
		db.mu.RUnlock()
		return Record{}, NotMeasured
	}
	rec, status := *r, r.Status
	db.mu.RUnlock()
	return rec, status
}

// matchLocked finds the longest-prefix matching record for host/path
// (§4.4 cases b+c). Caller holds db.mu (either mode).
func (db *DB) matchLocked(host, path string) (string, *Record) {
	paths := db.m[host]
	if paths == nil {
		return "", nil
	}
	best := ""
	for p := range paths {
		if pathCovers(p, path) && len(p) > len(best) {
			best = p
		}
	}
	if best == "" {
		return "", nil
	}
	return best, paths[best]
}

// purgeExpired re-checks under the write lock and drops the record if it
// is still present and stale.
func (db *DB) purgeExpired(host, path string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	paths := db.m[host]
	if paths == nil {
		return
	}
	if r := paths[path]; r != nil && db.expired(r) {
		delete(paths, path)
		if len(paths) == 0 {
			delete(db.m, host)
		}
	}
}

// pathCovers reports whether a stored path governs the queried path:
// exact match, or prefix at a segment boundary (base "/" covers all).
func pathCovers(stored, query string) bool {
	if stored == query || stored == "/" {
		return true
	}
	if !strings.HasPrefix(query, stored) {
		return false
	}
	return strings.HasSuffix(stored, "/") || query[len(stored)] == '/' || query[len(stored)] == '?'
}

// Put records a measurement outcome for url, applying the aggregation rules.
func (db *DB) Put(url string, asn int, status Status, stages []Stage) {
	host, path := SplitURL(url)
	rec := &Record{
		URL:      JoinURL(host, path),
		ASN:      asn,
		Measured: db.clock.Now(),
		Status:   status,
		Stages:   append([]Stage(nil), stages...),
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	paths := db.m[host]
	if paths == nil {
		paths = make(map[string]*Record)
		db.m[host] = paths
	}

	if !db.aggregate {
		paths[path] = rec
		return
	}

	switch {
	case status == Blocked && rec.PrimaryType().HostLevel():
		// IP/DNS/HTTPS blocking filters the whole host: keep one base
		// record and drop now-redundant derived records.
		rec.URL = JoinURL(host, "/")
		clearOthers(paths, "/")
		paths["/"] = rec
	case status == Blocked:
		// HTTP blocking: base blocks everything (case a); a derived URL
		// gets its own record (case b).
		if path == "/" {
			clearOthers(paths, "/")
		}
		paths[path] = rec
	default:
		// Unblocked (case c): one record at the base URL. Blocked derived
		// records are kept — they are more specific knowledge and the
		// longest-prefix match prefers them.
		rec.URL = JoinURL(host, "/")
		for p, r := range paths {
			if r.Status != Blocked && p != "/" {
				delete(paths, p)
			}
		}
		if base, ok := paths["/"]; !ok || base.Status != Blocked {
			paths["/"] = rec
		}
	}
}

// clearOthers removes every path except keep.
func clearOthers(paths map[string]*Record, keep string) {
	for p := range paths {
		if p != keep {
			delete(paths, p)
		}
	}
}

// MarkPosted flags the record for url as reported to the global DB.
func (db *DB) MarkPosted(url string) {
	host, path := SplitURL(url)
	db.mu.Lock()
	defer db.mu.Unlock()
	if paths := db.m[host]; paths != nil {
		if r := paths[path]; r != nil {
			r.GlobalPosted = true
		} else if r := paths["/"]; r != nil {
			r.GlobalPosted = true
		}
	}
}

// PendingGlobal returns blocked, unexpired records not yet posted to the
// global DB, sorted by URL for deterministic sync batches.
func (db *DB) PendingGlobal() []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	for _, paths := range db.m {
		for _, r := range paths {
			if r.Status == Blocked && !r.GlobalPosted && !db.expired(r) {
				out = append(out, *r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Len returns the number of live records (the Figure 6b metric).
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, paths := range db.m {
		for _, r := range paths {
			if !db.expired(r) {
				n++
			}
		}
	}
	return n
}

// Expire removes stale records and returns how many were purged.
func (db *DB) Expire() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	purged := 0
	for host, paths := range db.m {
		for p, r := range paths {
			if db.expired(r) {
				delete(paths, p)
				purged++
			}
		}
		if len(paths) == 0 {
			delete(db.m, host)
		}
	}
	return purged
}

// Snapshot returns a copy of all live records, sorted by URL.
func (db *DB) Snapshot() []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	for _, paths := range db.m {
		for _, r := range paths {
			if !db.expired(r) {
				out = append(out, *r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
