package localdb

import (
	"testing"
	"time"

	"csaw/internal/vtime"
)

// stamp rewrites a record's Measured time so tests can place it precisely
// relative to the flowing virtual clock.
func stamp(t *testing.T, db *DB, url string, at time.Time) {
	t.Helper()
	host, path := SplitURL(url)
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.m[host][path]
	if r == nil {
		t.Fatalf("no record for %s", url)
	}
	r.Measured = at
}

// TestExpiryExactlyAtTTLBoundary pins the strict-inequality contract: a
// record is alive for the full TTL *inclusive* (expired() uses >, not >=)
// and dies on the first tick past it. A near-frozen clock (1ns of virtual
// time per real second) makes Advance arithmetic exact, so the boundary is
// observable to the nanosecond.
func TestExpiryExactlyAtTTLBoundary(t *testing.T) {
	const ttl = 100 * time.Millisecond
	clock := vtime.New(1e-9)
	db := New(clock, ttl, false)
	db.Put("foo.com/", 1, Blocked, []Stage{{Type: BlockHTTP}})

	clock.Advance(ttl)
	if _, s := db.Lookup("foo.com/"); s != Blocked {
		t.Fatalf("record exactly at TTL = %v, want Blocked (expiry must be strict)", s)
	}
	if got := db.Len(); got != 1 {
		t.Fatalf("Len at TTL = %d, want 1", got)
	}
	if got := len(db.PendingGlobal()); got != 1 {
		t.Fatalf("PendingGlobal at TTL = %d records, want 1", got)
	}

	clock.Advance(time.Microsecond)
	if _, s := db.Lookup("foo.com/"); s != NotMeasured {
		t.Fatalf("record past TTL = %v, want NotMeasured", s)
	}
	// The expired-record Lookup purges: the record is gone, not just hidden.
	if got := db.Len(); got != 0 {
		t.Fatalf("Len past TTL = %d, want 0 after purge", got)
	}
	if got := len(db.PendingGlobal()); got != 0 {
		t.Fatalf("PendingGlobal past TTL = %d records, want 0", got)
	}
}

// TestExpiryBoundaryAcrossClockScales brackets the TTL boundary at the
// clock scales fleet runs actually use. Virtual time flows with real time
// × scale, so at scale 10⁴ a scheduler stall is minutes of virtual drift —
// the FleetSlack failure mode. The test models that drift explicitly: the
// record is stamped driftBudget (two real seconds of virtual time) in the
// future, so the alive check tolerates any stall shorter than the budget,
// while the expired check advances past the budget and must still fire.
// Guards against expiry drifting to >= (records dying a tick early) or to
// a slack-relative comparison that would never expire at high scales.
func TestExpiryBoundaryAcrossClockScales(t *testing.T) {
	for _, scale := range []float64{1, 300, 10000} {
		clock := vtime.New(scale)
		db := New(clock, DefaultTTL, true)
		db.Put("bar.com/", 7, NotBlocked, nil)

		driftBudget := clock.Virtual(2 * time.Second)
		if driftBudget >= DefaultTTL {
			t.Fatalf("scale %v: drift budget %v swallows the TTL", scale, driftBudget)
		}
		stamp(t, db, "bar.com/", clock.Now().Add(driftBudget))

		// One full TTL later the record must still be alive: its effective
		// age is ttl − driftBudget + drift, under ttl for any drift inside
		// the budget.
		clock.Advance(DefaultTTL)
		if _, s := db.Lookup("bar.com/"); s != NotBlocked {
			t.Errorf("scale %v: record at TTL (minus drift budget) = %v, want NotBlocked", scale, s)
		}

		// Consuming the budget pushes the age strictly past the TTL.
		clock.Advance(driftBudget)
		if _, s := db.Lookup("bar.com/"); s != NotMeasured {
			t.Errorf("scale %v: record past TTL = %v, want NotMeasured", scale, s)
		}
	}
}
