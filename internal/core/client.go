package core

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csaw/internal/blockpage"
	"csaw/internal/detect"
	"csaw/internal/dnsx"
	"csaw/internal/globaldb"
	"csaw/internal/localdb"
	"csaw/internal/metrics"
	"csaw/internal/netem"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// Preference is the user's configuration knob of §4.4: performance picks
// the cheapest working approach; anonymity restricts to anonymous ones.
type Preference int

// Preferences.
const (
	PreferPerformance Preference = iota
	PreferAnonymity
)

// Defaults for the tunable parameters the paper evaluates.
const (
	// DefaultP is the probability of re-measuring the direct path for a
	// globally-reported blocked URL (§4.3.1; Table 6 recommends p ≤ 0.25).
	DefaultP = 0.1
	// DefaultExploreEvery is n: every n-th access to a blocked URL uses a
	// randomly chosen approach to track improving approaches (§4.3.2).
	DefaultExploreEvery = 5
	// DefaultMaxConns bounds the proxy's concurrent upstream connections —
	// the client-load coupling behind Figure 5b/c and Table 6.
	DefaultMaxConns = 8
	// DefaultSyncInterval is the global-DB report/download period.
	DefaultSyncInterval = 5 * time.Minute
	// DefaultASNProbeInterval is the multihoming probe period (§4.4).
	DefaultASNProbeInterval = 2 * time.Minute
	// DefaultFailoverBudget bounds one FetchURL's walk down the failover
	// ladder (circumFetchVia): generous enough for the full worst case —
	// maxAttempts transport timeouts back to back — so it only cuts off
	// runaway fetches, never a ladder making progress. Tighten it per
	// scenario when a censor drops connections instead of resetting them.
	DefaultFailoverBudget = 4 * time.Minute
)

// Config assembles a C-Saw client.
type Config struct {
	Host  *netem.Host
	Clock *vtime.Clock
	// LDNS/GDNS are the ISP and public resolver addresses.
	LDNS []string
	GDNS []string
	// Approaches are the available circumvention methods.
	Approaches []*Approach
	// GlobalDB, when set, enables crowdsourcing: registration, periodic
	// reports, and blocked-list downloads. CaptchaToken models the user's
	// solved CAPTCHA.
	GlobalDB     *globaldb.Client
	CaptchaToken string
	// ASNProbeAddr/Host point at the ASN-echo service for multihoming
	// detection; empty disables probing.
	ASNProbeAddr string
	ASNProbeHost string

	// P, ExploreEvery, MaxConns, SyncInterval, ASNProbeInterval default as
	// above when zero. TTL is the local_DB record lifetime. A negative
	// SyncInterval disables the background sync loop entirely (no goroutine,
	// no ticker): the owner drives synchronization explicitly via SyncNow,
	// as the fleet driver does for its 100k clients.
	P                float64
	PSet             bool // distinguishes P=0 (valid: trust global DB fully) from unset
	ExploreEvery     int
	MaxConns         int
	SyncInterval     time.Duration
	ASNProbeInterval time.Duration
	TTL              time.Duration

	// Copies is how many redundant circumvention copies to race (Figure 6a);
	// default 1. RedundantDelay staggers the circumvention copy behind the
	// direct request (Figure 5b/c "2 copies (with delay)"); if the direct
	// response lands within the delay, the copy is never sent.
	Copies         int
	RedundantDelay time.Duration
	// Serial disables parallel redundancy: detect on the direct path first,
	// then circumvent (the Figure 5a baseline).
	Serial bool
	// NoSelectiveRedundancy issues redundant requests even for URLs known
	// unblocked — the ablation of §4.3.1's selective-redundancy tradeoff.
	NoSelectiveRedundancy bool
	// NoAggregate disables §4.4 URL aggregation (Figure 6b ablation).
	NoAggregate bool
	// NoMultihoming disables multihoming adaptation even when probing
	// detects it (ablation).
	NoMultihoming bool

	// Sync tunes the fault tolerance of the global-DB sync pipeline
	// (retry/backoff, report-queue bounds, circuit breaker). The zero value
	// selects the documented defaults.
	Sync SyncPolicy

	// Quarantine tunes approach quarantine-with-probation (see
	// QuarantinePolicy); the zero value selects the documented defaults,
	// Strikes < 0 disables it.
	Quarantine QuarantinePolicy

	// FailoverBudget is the total virtual time one fetch may spend walking
	// the circumvention failover ladder before giving up with whatever it
	// has. Zero selects DefaultFailoverBudget; negative disables the budget.
	FailoverBudget time.Duration

	// CensorEpoch, when set, is the stale-verdict oracle: the start of the
	// censor's current policy epoch. DB records measured before it describe
	// an adversary that no longer exists and are re-detected instead of
	// trusted (worldgen wires this to the ISP censor's EpochStart). In a
	// deployment this would be a coarse signal such as "blocking event
	// reported for this AS" from the global DB.
	CensorEpoch func() time.Time

	// DetectConnectTimeout / DetectHTTPTimeout override the detector's
	// virtual-time deadlines when positive. Fleet runs raise them so a
	// scheduler stall under O(10k) goroutines cannot turn a slow-but-alive
	// direct path into a spurious timeout verdict and desync same-seed runs.
	DetectConnectTimeout time.Duration
	DetectHTTPTimeout    time.Duration
	// DNSAttemptTimeout overrides the stub resolvers' per-attempt deadline
	// when positive — same rationale: a DNS query that times out reads as
	// DNS blocking, so fleet runs give it stall headroom.
	DNSAttemptTimeout time.Duration

	// Trace, when set, records a flight-recorder span for every (sampled)
	// FetchURL: per-lane protocol events and the PLT phase breakdown.
	Trace *trace.Tracer

	Pref  Preference
	Trust globaldb.TrustFilter
	Seed  int64
}

func (c *Config) p() float64 {
	if c.PSet || c.P > 0 {
		return c.P
	}
	return DefaultP
}

// Client is a running C-Saw client proxy.
type Client struct {
	cfg   Config
	clock *vtime.Clock
	db    *localdb.DB
	det   *detect.Detector
	ldns  *dnsx.Client
	gdns  *dnsx.Client

	tracer   *trace.Tracer
	traceSeq atomic.Uint64 // per-client span sequence number

	sem chan struct{} // client connection-load budget

	mu          sync.Mutex
	rng         *rand.Rand
	globalCache map[string]globaldb.Entry
	ewma        map[string]*metrics.EWMA
	access      map[string]int
	seenASNs    map[int]bool
	multihomed  bool
	counters    map[string]int
	quar        map[string]*quarState // approach quarantine (see quarantine.go)

	// Sync circuit-breaker state (guarded by mu).
	syncFails     int // consecutive failed rounds
	syncDegraded  bool
	syncOpenUntil time.Time
	lastSyncErr   error
	lastSyncOK    time.Time

	bg     sync.WaitGroup // in-flight background measurements/reports
	loops  sync.WaitGroup // periodic sync and probe loops
	stop   chan struct{}
	stopMu sync.Once
}

// New assembles a client from the config.
func New(cfg Config) (*Client, error) {
	if cfg.Host == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("core: Host and Clock are required")
	}
	if len(cfg.LDNS) == 0 || len(cfg.GDNS) == 0 {
		return nil, fmt.Errorf("core: LDNS and GDNS resolvers are required")
	}
	maxConns := cfg.MaxConns
	if maxConns <= 0 {
		maxConns = DefaultMaxConns
	}
	ldns := &dnsx.Client{Dial: cfg.Host.Dial, Clock: cfg.Clock, Servers: cfg.LDNS,
		AttemptTimeout: cfg.DNSAttemptTimeout}
	gdns := &dnsx.Client{Dial: cfg.Host.Dial, Clock: cfg.Clock, Servers: cfg.GDNS,
		AttemptTimeout: cfg.DNSAttemptTimeout}
	c := &Client{
		cfg:         cfg,
		clock:       cfg.Clock,
		tracer:      cfg.Trace,
		db:          localdb.New(cfg.Clock, cfg.TTL, !cfg.NoAggregate),
		ldns:        ldns,
		gdns:        gdns,
		sem:         make(chan struct{}, maxConns),
		rng:         rand.New(rand.NewSource(cfg.Seed + 1)),
		globalCache: make(map[string]globaldb.Entry),
		ewma:        make(map[string]*metrics.EWMA),
		access:      make(map[string]int),
		seenASNs:    make(map[int]bool),
		counters:    make(map[string]int),
		stop:        make(chan struct{}),
	}
	c.det = &detect.Detector{
		Clock:          cfg.Clock,
		Dial:           c.limited(cfg.Host.Dial),
		LDNS:           ldns,
		GDNS:           gdns,
		Classifier:     blockpage.NewClassifier(),
		ConnectTimeout: cfg.DetectConnectTimeout,
		HTTPTimeout:    cfg.DetectHTTPTimeout,
	}
	// Every approach's upstream connections draw from the same client
	// budget: that coupling is what makes extra copies and direct-path
	// re-measurement cost PLT at load (Figure 5b/c, Table 6).
	for _, a := range cfg.Approaches {
		a.Transport.Dialer = c.limited(a.Transport.Dialer)
	}
	return c, nil
}

// DB exposes the local database (read-mostly, for experiments and tools).
func (c *Client) DB() *localdb.DB { return c.db }

// Clock returns the client's clock.
func (c *Client) Clock() *vtime.Clock { return c.clock }

// Detector returns the client's direct-path detector.
func (c *Client) Detector() *detect.Detector { return c.det }

// ASN returns the client's (primary) AS number.
func (c *Client) ASN() int { return c.cfg.Host.ASes()[0].Number }

// Counter returns a named event count ("served-direct", "served-circum",
// "phase2-confirm", "phase2-overturn", "refresh", ...).
func (c *Client) Counter(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

func (c *Client) bump(name string) {
	c.mu.Lock()
	c.counters[name]++
	c.mu.Unlock()
}

// CountersSnapshot returns a copy of every event counter — the fleet driver
// folds these into its aggregate summary without N per-name lock round-trips.
// The global DB client's sync-path outcomes ride along under "gdb-" names
// (nonzero only), so fleet summaries account full vs delta vs 304 syncs,
// list bytes, and replica failovers without reaching into the client.
func (c *Client) CountersSnapshot() map[string]int {
	c.mu.Lock()
	out := make(map[string]int, len(c.counters)+6)
	for k, v := range c.counters {
		out[k] = v
	}
	c.mu.Unlock()
	if c.cfg.GlobalDB != nil {
		gs := c.cfg.GlobalDB.Stats()
		for _, kv := range []struct {
			name string
			v    int
		}{
			{"gdb-fetch-full", gs.FetchFull},
			{"gdb-fetch-delta", gs.FetchDelta},
			{"gdb-fetch-304", gs.Fetch304},
			{"gdb-list-bytes", gs.ListBytes},
			{"gdb-failovers", gs.Failovers},
			{"gdb-replica-down", gs.ReplicaDown},
		} {
			if kv.v != 0 {
				out[kv.name] = kv.v
			}
		}
	}
	return out
}

// limited wraps a dialer with the client's connection budget.
func (c *Client) limited(dial netem.DialFunc) netem.DialFunc {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		select {
		case c.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, &netem.OpError{Op: "dial", Addr: addr, Err: netem.ErrTimeout}
		}
		raw, err := dial(ctx, addr)
		if err != nil {
			<-c.sem
			return nil, err
		}
		return &slotConn{Conn: raw, release: func() { <-c.sem }}, nil
	}
}

// slotConn returns its budget slot exactly once, on Close.
type slotConn struct {
	net.Conn
	once    sync.Once
	release func()
}

// Close implements net.Conn.
func (s *slotConn) Close() error {
	err := s.Conn.Close()
	s.once.Do(s.release)
	return err
}

// Flow exposes the underlying netem flow when present (servers introspect
// peers through it).
func (s *slotConn) Flow() netem.Flow {
	if fc, ok := s.Conn.(interface{ Flow() netem.Flow }); ok {
		return fc.Flow()
	}
	return netem.Flow{}
}

func (c *Client) failoverBudget() time.Duration {
	if c.cfg.FailoverBudget != 0 {
		return c.cfg.FailoverBudget
	}
	return DefaultFailoverBudget
}

// stopCtx derives a context that is additionally cancelled when the client
// shuts down, so background measurements never outlive Close. The returned
// cancel must be called (it also reaps the watcher goroutine).
func (c *Client) stopCtx(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		select {
		case <-c.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// Close stops background work.
func (c *Client) Close() {
	c.stopMu.Do(func() { close(c.stop) })
	c.loops.Wait()
	c.bg.Wait()
}

// WaitIdle blocks until background measurements and reports finish —
// deterministic test and experiment checkpoints.
func (c *Client) WaitIdle() { c.bg.Wait() }

// Multihomed reports whether probing has concluded the client is
// multihomed.
func (c *Client) Multihomed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.multihomed
}
