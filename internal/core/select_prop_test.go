package core

import (
	"fmt"
	"math/rand"
	"testing"

	"csaw/internal/localdb"
	"csaw/internal/metrics"
)

// White-box property tests for the §4.3.2 approach selection: the EWMA
// machinery is exercised directly on a skeletal Client (no network, no
// world), so the properties hold by the arithmetic, not by scenario luck.

// newSelectClient builds the minimal Client the selection path touches.
// ExploreEvery is set beyond any test's access count so the deterministic
// best-EWMA ordering is what's under test; the exploration property drives
// c.access explicitly.
func newSelectClient(seed int64, approaches []*Approach) *Client {
	return &Client{
		cfg: Config{Approaches: approaches, ExploreEvery: 1 << 30},
		//lint:allow-rand seeded test randomness
		rng:      rand.New(rand.NewSource(seed)),
		ewma:     make(map[string]*metrics.EWMA),
		access:   make(map[string]int),
		counters: make(map[string]int),
	}
}

func relay(name string) *Approach {
	return &Approach{Name: name, Kind: KindRelay, Handles: handlesAll}
}

// TestSelectOrderInvariantUnderPermutation: the chosen approach depends only
// on each approach's own observation sequence, not on how the sequences
// were interleaved globally — the EWMA is per-(approach, URL) state, so any
// permutation of reports that preserves per-approach order must elect the
// same winner.
func TestSelectOrderInvariantUnderPermutation(t *testing.T) {
	const url = "blocked.example/"
	// Per-approach observation sequences with distinct final EWMAs.
	seqs := [][]float64{
		{3.0, 2.5, 2.8},            // tor: settles high
		{1.2, 0.9, 1.1, 0.8},       // https: settles lowest
		{failurePenaltySeconds, 4}, // proxy: penalized
	}
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	winner := ""
	// 40 seeded interleavings, each a permutation of `flat` that keeps every
	// approach's observations in order (stable shuffle by next-index draw).
	for trial := 0; trial < 40; trial++ {
		apps := []*Approach{relay("tor"), relay("https"), relay("proxy")}
		c := newSelectClient(int64(trial), apps)
		//lint:allow-rand seeded test randomness
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		idx := make([]int, len(seqs)) // next unconsumed observation per approach
		remaining := total
		for remaining > 0 {
			ai := rng.Intn(len(seqs))
			if idx[ai] >= len(seqs[ai]) {
				continue
			}
			c.ewmaObserve(apps[ai], url, seqs[ai][idx[ai]])
			idx[ai]++
			remaining--
		}
		got := c.selectApproach(nil, url, nil)
		if got == nil {
			t.Fatal("no approach selected")
		}
		if winner == "" {
			winner = got.Name
		} else if got.Name != winner {
			t.Fatalf("trial %d: interleaving changed the winner: %s vs %s", trial, got.Name, winner)
		}
	}
	if winner != "https" {
		t.Errorf("winner %s; want https (lowest settled EWMA)", winner)
	}
}

// TestSelectUntriedWinsTies: an approach with no observations scores an
// optimistic zero, so it must beat any approach with a real (positive)
// average — and among several untried candidates the reservoir tie-break
// must reach each of them across seeds, not just the first in config order.
func TestSelectUntriedWinsTies(t *testing.T) {
	const url = "blocked.example/"
	picked := make(map[string]int)
	for seed := int64(0); seed < 200; seed++ {
		apps := []*Approach{relay("tried"), relay("fresh-a"), relay("fresh-b")}
		c := newSelectClient(seed, apps)
		c.ewmaObserve(apps[0], url, 0.4) // a genuinely good, but tried, approach
		got := c.selectApproach(nil, url, nil)
		if got == nil {
			t.Fatal("no approach selected")
		}
		if got.Name == "tried" {
			t.Fatalf("seed %d: tried approach (EWMA 0.4) beat an untried one", seed)
		}
		picked[got.Name]++
	}
	if picked["fresh-a"] == 0 || picked["fresh-b"] == 0 {
		t.Errorf("tie-break never reached one untried candidate: %v", picked)
	}
}

// TestSelectCheaperApproachOvertakes: a failing local-ish approach sits at
// the failure penalty while a relay serves steadily; once the cheap approach
// starts succeeding, geometric EWMA decay must hand it the selection within
// a bounded number of successes (alpha 0.3 ⇒ ~13 to fall from 120s under a
// 2s incumbent).
func TestSelectCheaperApproachOvertakes(t *testing.T) {
	const url = "blocked.example/"
	apps := []*Approach{relay("cheap"), relay("tor")}
	c := newSelectClient(1, apps)
	// History: cheap failed twice (two penalties), tor has served steadily.
	c.ewmaObserve(apps[0], url, failurePenaltySeconds)
	c.ewmaObserve(apps[0], url, failurePenaltySeconds)
	for i := 0; i < 10; i++ {
		c.ewmaObserve(apps[1], url, 2.0)
	}
	if got := c.selectApproach(nil, url, nil); got.Name != "tor" {
		t.Fatalf("with cheap penalized, selection = %s, want tor", got.Name)
	}
	overtook := -1
	for i := 0; i < 30; i++ {
		c.ewmaObserve(apps[0], url, 0.5) // cheap starts succeeding
		c.ewmaObserve(apps[1], url, 2.0) // tor keeps its steady state
		if got := c.selectApproach(nil, url, nil); got.Name == "cheap" {
			overtook = i + 1
			break
		}
	}
	if overtook < 0 {
		t.Fatal("cheap approach never overtook the relay in 30 successes")
	}
	if overtook > 20 {
		t.Errorf("overtake took %d successes; EWMA decay should need ~13", overtook)
	}
	t.Logf("overtook after %d successes", overtook)
}

// TestSelectLocalFixPreferred: an applicable local fix wins over relays
// regardless of their averages (§4.3.2's tiering), and exploration (every
// n-th access) still only draws among relays when no local fix applies.
func TestSelectLocalFixPreferred(t *testing.T) {
	const url = "dns-blocked.example/"
	stages := []localdb.Stage{{Type: localdb.BlockDNS}}
	local := &Approach{
		Name: "gdns",
		Kind: KindLocalFix,
		Handles: func(string, []localdb.Stage) bool {
			return true
		},
	}
	apps := []*Approach{relay("tor"), local}
	c := newSelectClient(3, apps)
	c.ewmaObserve(apps[0], url, 0.1) // relay looks excellent
	c.ewmaObserve(local, url, 5.0)   // local fix looks slow
	if got := c.selectApproach(nil, url, stages); got.Name != "gdns" {
		t.Fatalf("selection = %s; the applicable local fix must win the tier", got.Name)
	}
	// Unknown stages (nil): only relays qualify.
	if got := c.selectApproach(nil, url, nil); got.Name != "tor" {
		t.Fatalf("selection with unknown stages = %s, want the relay", got.Name)
	}
}

// TestSelectExploreCadence: with ExploreEvery = n, every n-th access to the
// same URL draws from the full relay pool instead of the best average —
// counted over many accesses, the "explore" counter must tick exactly on
// the cadence.
func TestSelectExploreCadence(t *testing.T) {
	const url = "blocked.example/"
	apps := []*Approach{relay("a"), relay("b"), relay("c")}
	c := newSelectClient(5, apps)
	c.cfg.ExploreEvery = 4
	c.ewmaObserve(apps[0], url, 0.5)
	c.ewmaObserve(apps[1], url, 1.0)
	c.ewmaObserve(apps[2], url, 2.0)
	const accesses = 40
	for i := 0; i < accesses; i++ {
		if c.selectApproach(nil, url, nil) == nil {
			t.Fatal("no approach selected")
		}
	}
	if got, want := c.counters["explore"], accesses/4; got != want {
		t.Errorf("explore fired %d times over %d accesses (n=4), want %d", got, accesses, want)
	}
}

// TestCandidateOrderTiersAndBounds: failover order puts the selected
// approach first, then remaining applicable local fixes, then relays in
// EWMA order, truncated to four attempts.
func TestCandidateOrderTiersAndBounds(t *testing.T) {
	const url = "blocked.example/"
	stages := []localdb.Stage{{Type: localdb.BlockDNS}}
	mkLocal := func(name string) *Approach {
		return &Approach{Name: name, Kind: KindLocalFix, Handles: func(string, []localdb.Stage) bool { return true }}
	}
	l1, l2 := mkLocal("fix-1"), mkLocal("fix-2")
	r1, r2, r3 := relay("r1"), relay("r2"), relay("r3")
	c := newSelectClient(9, []*Approach{r1, l1, r2, l2, r3})
	c.ewmaObserve(r1, url, 3.0)
	c.ewmaObserve(r2, url, 1.0)
	c.ewmaObserve(r3, url, 2.0)
	c.ewmaObserve(l2, url, 9.0)

	order := c.candidateOrder(url, stages, l1)
	if len(order) != 4 {
		t.Fatalf("candidate order has %d entries, want the 4-attempt cap", len(order))
	}
	var names []string
	for _, a := range order {
		names = append(names, a.Name)
	}
	want := []string{"fix-1", "fix-2", "r2", "r3"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("candidate order %v, want %v", names, want)
	}
}
