package core_test

import (
	"context"
	"testing"
	"time"

	"csaw/internal/censor"
	"csaw/internal/core"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/web"
	"csaw/internal/worldgen"
)

// newCaseStudyClient builds the §2.3 world and a C-Saw client behind the
// given ISP(s).
func newCaseStudyClient(t *testing.T, mutate func(*core.Config), isps ...string) (*worldgen.World, *core.Client) {
	t.Helper()
	w, err := worldgen.New(worldgen.Options{Scale: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ispA, ispB, err := w.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	sel := map[string]*worldgen.ISP{"ISP-A": ispA, "ISP-B": ispB}
	var behind []*worldgen.ISP
	for _, name := range isps {
		behind = append(behind, sel[name])
	}
	if len(behind) == 0 {
		behind = []*worldgen.ISP{ispA}
	}
	host := w.NewClientHost("client-1", behind...)
	cfg := w.ClientConfig(host, 5)
	if mutate != nil {
		mutate(&cfg)
	}
	client, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return w, client
}

func fetchURL(t *testing.T, c *core.Client, url string) *core.Result {
	t.Helper()
	return c.FetchURL(context.Background(), url)
}

func TestCleanURLServedDirect(t *testing.T) {
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	res := fetchURL(t, c, worldgen.NewsHost+"/")
	if !res.OK() || res.Source != "direct" {
		t.Fatalf("result = %+v (err=%v)", res, res.Err)
	}
	c.WaitIdle()
	if _, st := c.DB().Lookup(worldgen.NewsHost + "/"); st != localdb.NotBlocked {
		t.Fatalf("db status = %v", st)
	}
	if c.Counter("served-direct") != 1 {
		t.Error("served-direct not counted")
	}
}

func TestBlockedURLServedViaCircumvention(t *testing.T) {
	// ISP-A redirects YouTube to a block page; an unmeasured fetch must
	// detect it and serve the real page from a circumvention path.
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res.OK() {
		t.Fatalf("fetch failed: %v", res.Err)
	}
	if res.Source == "direct" {
		t.Fatalf("blocked URL served from direct path")
	}
	if !web.LooksLikeHTML(res.Resp.Body) || len(res.Resp.Body) < 10<<10 {
		t.Fatalf("served body doesn't look like the real page (%d bytes)", len(res.Resp.Body))
	}
	c.WaitIdle()
	rec, st := c.DB().Lookup(worldgen.YouTubeHost + "/")
	if st != localdb.Blocked {
		t.Fatalf("db status = %v", st)
	}
	if rec.PrimaryType() != localdb.BlockHTTP {
		t.Fatalf("recorded stages = %+v", rec.Stages)
	}
	if c.Counter("phase2-confirm") != 1 {
		t.Error("block page not confirmed by phase 2")
	}
}

func TestMultiStageISPBDetected(t *testing.T) {
	// ISP-B: DNS redirect + HTTP drop + SNI drop for YouTube.
	_, c := newCaseStudyClient(t, nil, "ISP-B")
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res.OK() || res.Source == "direct" {
		t.Fatalf("result = %+v err=%v", res, res.Err)
	}
	c.WaitIdle()
	rec, st := c.DB().Lookup(worldgen.YouTubeHost + "/")
	if st != localdb.Blocked {
		t.Fatalf("status = %v", st)
	}
	types := map[localdb.BlockType]bool{}
	for _, s := range rec.Stages {
		types[s.Type] = true
	}
	if !types[localdb.BlockDNS] && !types[localdb.BlockHTTP] {
		t.Fatalf("stages = %+v, want DNS and/or HTTP evidence", rec.Stages)
	}
}

func TestLocalFixSelectedForDNSBlocking(t *testing.T) {
	// A DNS-only blocked URL must take the public-DNS local fix, not a
	// relay (§4.3.2 local-fix preference).
	w, c := newCaseStudyClient(t, nil, "ISP-A")
	w.ISPs["ISP-A"].Censor.SetPolicy(&censor.Policy{
		DNS: map[string]censor.DNSAction{"youtube.com": censor.DNSNXDomain},
	})
	// Seed the DB via a first fetch (detects DNS blocking).
	first := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !first.OK() {
		t.Fatalf("first fetch: %v", first.Err)
	}
	c.WaitIdle()
	// Now the DB says blocked(dns): the second fetch must use a local fix
	// (untried fixes tie at EWMA 0 and break randomly, so any applicable
	// fix may win — but never a relay).
	second := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !second.OK() {
		t.Fatalf("second fetch: %v", second.Err)
	}
	fixes := map[string]bool{"public-dns": true, "https": true, "ip-as-hostname": true, "domain-fronting": true}
	if !fixes[second.Source] {
		t.Fatalf("source = %q, want a local fix", second.Source)
	}
}

func TestHTTPSFixForHTTPBlocking(t *testing.T) {
	w, c := newCaseStudyClient(t, nil, "ISP-A")
	w.ISPs["ISP-A"].Censor.SetPolicy(&censor.Policy{
		HTTP: []censor.HTTPRule{{Host: "youtube.com", Action: censor.HTTPReset}},
	})
	first := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !first.OK() {
		t.Fatalf("first fetch: %v", first.Err)
	}
	c.WaitIdle()
	second := fetchURL(t, c, worldgen.YouTubeHost+"/")
	fixes := map[string]bool{"https": true, "ip-as-hostname": true, "domain-fronting": true}
	if !second.OK() || !fixes[second.Source] {
		t.Fatalf("source = %q err=%v, want a local fix that defeats HTTP blocking", second.Source, second.Err)
	}
}

func TestAnonymityPreferenceUsesTorOnly(t *testing.T) {
	_, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.Pref = core.PreferAnonymity
	}, "ISP-A")
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res.OK() {
		t.Fatalf("fetch: %v", res.Err)
	}
	if res.Source != "tor" && res.Source != "tor-bridge" {
		t.Fatalf("source = %q, want an anonymous approach", res.Source)
	}
	// And subsequent known-blocked fetches stay on anonymous approaches
	// (tor or tor-bridge), never a local fix or Lantern.
	c.WaitIdle()
	res2 := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res2.OK() || (res2.Source != "tor" && res2.Source != "tor-bridge") {
		t.Fatalf("second source = %q", res2.Source)
	}
}

func TestSerialModeSlowerThanParallel(t *testing.T) {
	// Figure 5a: parallel redundancy hides detection time behind the
	// circumvention fetch.
	_, serial := newCaseStudyClient(t, func(cfg *core.Config) { cfg.Serial = true }, "ISP-B")
	_, parallel := newCaseStudyClient(t, nil, "ISP-B")

	rs := fetchURL(t, serial, worldgen.YouTubeHost+"/")
	rp := fetchURL(t, parallel, worldgen.YouTubeHost+"/")
	if !rs.OK() || !rp.OK() {
		t.Fatalf("fetches failed: %v / %v", rs.Err, rp.Err)
	}
	if rp.Took >= rs.Took {
		t.Errorf("parallel %v >= serial %v", rp.Took, rs.Took)
	}
}

func TestRedundantDelaySkipsCopyForFastClean(t *testing.T) {
	// Footnote 10: with a stagger delay, a clean page answered within the
	// delay never triggers the circumvention copy. Run at a low clock
	// scale so the virtual delay dwarfs real scheduling noise.
	w, err := worldgen.New(worldgen.Options{Scale: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ispA, _, err := w.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	host := w.NewClientHost("client-1", ispA)
	cfg := w.ClientConfig(host, 5)
	cfg.RedundantDelay = 3 * time.Second
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	res := fetchURL(t, c, worldgen.NewsHost+"/")
	if !res.OK() || res.Source != "direct" {
		t.Fatalf("result = %+v", res)
	}
	c.WaitIdle()
	if got := c.Counter("circum-copy-sent"); got != 0 {
		t.Fatalf("redundant copy sent %d times despite fast direct response", got)
	}
}

func TestChurnBlockedToUnblocked(t *testing.T) {
	// §4.4 scenario A: after the record expires, redundant measurement
	// discovers the unblocking and the URL goes back to the direct path.
	w, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.TTL = 30 * time.Second
	}, "ISP-A")
	if res := fetchURL(t, c, worldgen.YouTubeHost+"/"); !res.OK() || res.Source == "direct" {
		t.Fatalf("first fetch: %+v err=%v", res, res.Err)
	}
	c.WaitIdle()
	// Censor lifts the block (the Jan 2016 YouTube unblocking).
	w.ISPs["ISP-A"].Censor.SetPolicy(&censor.Policy{})
	w.Clock.Sleep(time.Minute) // let the record expire
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res.OK() || res.Source != "direct" {
		t.Fatalf("post-unblock fetch = %+v err=%v", res, res.Err)
	}
	c.WaitIdle()
	if _, st := c.DB().Lookup(worldgen.YouTubeHost + "/"); st != localdb.NotBlocked {
		t.Fatalf("db status = %v after unblock", st)
	}
}

func TestChurnUnblockedToBlocked(t *testing.T) {
	// §4.4 scenario B: the direct path is always measured, so new blocking
	// is caught on the next access.
	w, c := newCaseStudyClient(t, nil, "ISP-A")
	if res := fetchURL(t, c, worldgen.NewsHost+"/"); !res.OK() || res.Source != "direct" {
		t.Fatalf("pre-block fetch: %+v", res)
	}
	c.WaitIdle()
	w.ISPs["ISP-A"].Censor.SetPolicy(&censor.Policy{
		HTTP: []censor.HTTPRule{{Host: worldgen.NewsHost, Action: censor.HTTPBlockPage}},
	})
	res := fetchURL(t, c, worldgen.NewsHost+"/")
	if !res.OK() || res.Source == "direct" {
		t.Fatalf("post-block fetch = %+v err=%v", res, res.Err)
	}
	c.WaitIdle()
	if c.Counter("churn-unblocked-to-blocked") != 1 {
		t.Error("churn not counted")
	}
	if _, st := c.DB().Lookup(worldgen.NewsHost + "/"); st != localdb.Blocked {
		t.Fatalf("db status = %v", st)
	}
}

func TestPhase2OverturnsFalsePositive(t *testing.T) {
	// A legitimate small page whose wording trips phase 1 must be
	// exonerated by the size comparison and served from the direct path.
	w, c := newCaseStudyClient(t, nil, "ISP-A")
	site := web.NewSite("editorial.example.org")
	site.AddPage("/", "Essay: Access Denied — a history of the filtered web", 1500)
	if _, err := w.AddOrigin("origin-editorial", true, site); err != nil {
		t.Fatal(err)
	}
	res := fetchURL(t, c, "editorial.example.org/")
	if !res.OK() {
		t.Fatalf("fetch: %v", res.Err)
	}
	c.WaitIdle()
	if c.Counter("phase2-overturn") == 0 {
		t.Skip("phase 1 did not suspect this page; heuristic got stricter")
	}
	if _, st := c.DB().Lookup("editorial.example.org/"); st != localdb.NotBlocked {
		t.Fatalf("db status = %v, want NotBlocked after overturn", st)
	}
}

func TestGlobalDBSharingBetweenClients(t *testing.T) {
	// Client 1 measures a blocked URL and reports it; client 2 on the same
	// AS downloads the list and circumvents on first access.
	w, err := worldgen.New(worldgen.Options{Scale: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ispA, _, err := w.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	_ = ispA

	mk := func(name string, seed int64) *core.Client {
		host := w.NewClientHost(name, w.ISPs["ISP-A"])
		cfg := w.ClientConfig(host, seed)
		cfg.PSet = true // p = 0: no direct re-measure, deterministic source
		client, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(client.Close)
		if err := client.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		return client
	}
	c1 := mk("reporter", 11)
	c2 := mk("beneficiary", 12)

	if res := fetchURL(t, c1, worldgen.YouTubeHost+"/"); !res.OK() {
		t.Fatalf("c1 fetch: %v", res.Err)
	}
	c1.WaitIdle()
	if err := c1.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c1.Counter("reports-posted") == 0 {
		t.Fatal("c1 posted no reports")
	}
	if err := c2.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c2.GlobalCacheLen() == 0 {
		t.Fatal("c2 has no global entries")
	}
	res := fetchURL(t, c2, worldgen.YouTubeHost+"/")
	if !res.OK() {
		t.Fatalf("c2 fetch: %v", res.Err)
	}
	if res.Source == "direct" {
		t.Fatalf("c2 used the direct path despite the global report")
	}
	// And crucially: c2 never paid detection time (no redundant probe).
	if c2.Counter("churn-unblocked-to-blocked")+c2.Counter("phase2-confirm") != 0 {
		t.Error("c2 ran detection despite global knowledge")
	}
}

func TestFalseGlobalReportCorrectedWithP1(t *testing.T) {
	// A malicious report marks a clean URL blocked; with p=1 the client
	// re-measures the direct path and corrects its view.
	w, err := worldgen.New(worldgen.Options{Scale: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.CaseStudy(); err != nil {
		t.Fatal(err)
	}
	host := w.NewClientHost("victim", w.ISPs["ISP-A"])
	cfg := w.ClientConfig(host, 13)
	cfg.P, cfg.PSet = 1.0, true
	cfg.Trust.MinAvgVote = 0.001 // accept even the attacker's diluted votes
	client, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	if err := client.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Attacker reports the (clean) news site as blocked.
	attacker := w.NewClientHost("attacker", w.ISPs["ISP-A"])
	acfg := w.ClientConfig(attacker, 14)
	ac, err := core.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ac.Close)
	if err := ac.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ac.DB().Put(worldgen.NewsHost+"/", 17557, localdb.Blocked,
		[]localdb.Stage{{Type: localdb.BlockHTTP, Detail: "blockpage"}})
	if err := ac.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	if err := client.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if client.GlobalCacheLen() == 0 {
		t.Fatal("victim never saw the false report")
	}
	res := fetchURL(t, client, worldgen.NewsHost+"/")
	if !res.OK() {
		t.Fatalf("fetch: %v", res.Err)
	}
	client.WaitIdle()
	if client.Counter("false-report-corrected") == 0 {
		t.Fatal("false report not corrected despite p=1")
	}
	if _, st := client.DB().Lookup(worldgen.NewsHost + "/"); st != localdb.NotBlocked {
		t.Fatalf("db status = %v after correction", st)
	}
}

func TestMultihomingDetection(t *testing.T) {
	_, c := newCaseStudyClient(t, nil, "ISP-A", "ISP-B")
	// Probe until both egress ASes have been observed.
	for i := 0; i < 30 && !c.Multihomed(); i++ {
		if err := c.ProbeASN(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Multihomed() {
		t.Fatal("multihoming never detected across 30 probes")
	}
}

func TestSinglehomedNeverMultihomed(t *testing.T) {
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	for i := 0; i < 10; i++ {
		if err := c.ProbeASN(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if c.Multihomed() {
		t.Fatal("singlehomed client marked multihomed")
	}
}

func TestExplorationEveryN(t *testing.T) {
	// Exploration applies to relay selection (§4.3.2), so give the client
	// only relay approaches.
	_, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.ExploreEvery = 3
		cfg.PSet = true
		var relays []*core.Approach
		for _, a := range cfg.Approaches {
			if a.Kind == core.KindRelay {
				relays = append(relays, a)
			}
		}
		cfg.Approaches = relays
	}, "ISP-B")
	// Warm the DB.
	if res := fetchURL(t, c, worldgen.YouTubeHost+"/watch"); !res.OK() {
		t.Fatalf("warm fetch: %v", res.Err)
	}
	c.WaitIdle()
	for i := 0; i < 12; i++ {
		if res := fetchURL(t, c, worldgen.YouTubeHost+"/watch"); !res.OK() {
			t.Fatalf("fetch %d: %v", i, res.Err)
		}
	}
	if c.Counter("explore") == 0 {
		t.Error("no exploration in 12 accesses with n=3")
	}
}

func TestPreferAnonymityWithNoTorFails(t *testing.T) {
	_, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.Pref = core.PreferAnonymity
		var kept []*core.Approach
		for _, a := range cfg.Approaches {
			if !a.Anonymous {
				kept = append(kept, a)
			}
		}
		cfg.Approaches = kept
	}, "ISP-A")
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	// With no anonymous approach available the client must not fall back
	// to a non-anonymous one: it serves the block page (least-bad) or
	// fails, but never leaks through Lantern/proxies.
	if res.Err == nil {
		if res.Source != "direct" {
			t.Fatalf("served via %q despite anonymity preference", res.Source)
		}
		if c.Counter("served-blockpage") == 0 {
			t.Fatal("expected the block page to be what was served")
		}
	}
}

func TestTorBridgeFallbackWhenRelaysBlacklisted(t *testing.T) {
	// §8 robustness: a censor blacklists every public Tor relay IP; an
	// anonymity-preferring client falls over to bridges and keeps working.
	w, err := worldgen.New(worldgen.Options{Scale: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ispA, _, err := w.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	// The Table-1 policy plus an IP blacklist of all public relays.
	p := worldgen.ISPAPolicy("block.isp-a.pk/blocked.html", "youtube.com")
	p.IP = map[string]censor.IPAction{}
	for _, r := range w.TorDir.PublicRelays() {
		p.IP[r.Host.IP()] = censor.IPReset
	}
	ispA.Censor.SetPolicy(p)

	host := w.NewClientHost("bridge-user", ispA)
	cfg := w.ClientConfig(host, 21)
	cfg.GlobalDB = nil
	cfg.Pref = core.PreferAnonymity // tor and tor-bridge only
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res.OK() {
		t.Fatalf("fetch with blacklisted relays: %v", res.Err)
	}
	if res.Source != "tor-bridge" {
		t.Fatalf("served via %q, want tor-bridge", res.Source)
	}
	// The failover counter only fires when plain tor is tried first; the
	// untried-tie random break may elect tor-bridge directly, so the only
	// hard invariant is the source above.
}

func TestDoPostNeverDuplicated(t *testing.T) {
	// §4.3.1 footnote 7: POSTs are not duplicated — a POST to an
	// unmeasured URL takes the direct path only, with no redundant copy.
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	req := httpx.NewRequest("POST", worldgen.NewsHost, "/submit")
	req.Body = []byte(`comment=hello`)
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "direct" {
		t.Fatalf("POST went via %q", res.Source)
	}
	c.WaitIdle()
	if got := c.Counter("circum-copy-sent"); got != 0 {
		t.Fatalf("POST was duplicated %d times", got)
	}
}

func TestDoPostToBlockedURLUsesApproach(t *testing.T) {
	// A POST to a known-blocked URL rides the selected approach, once.
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	// Learn that the host is blocked first.
	if res := fetchURL(t, c, worldgen.YouTubeHost+"/"); !res.OK() {
		t.Fatalf("warm fetch: %v", res.Err)
	}
	c.WaitIdle()
	req := httpx.NewRequest("POST", worldgen.YouTubeHost, "/comment")
	req.Body = []byte(`text=hi`)
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source == "direct" {
		t.Fatalf("POST to blocked URL went direct")
	}
}

func TestDoGetDelegatesToFetchURL(t *testing.T) {
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	req := httpx.NewRequest("GET", worldgen.NewsHost, "/")
	res, err := c.Do(context.Background(), req)
	if err != nil || !res.OK() || res.Source != "direct" {
		t.Fatalf("GET via Do = %+v err=%v", res, err)
	}
}

func TestCDNBlockingDiscovered(t *testing.T) {
	// §7.4's headline discovery: blocking of CDN servers. The news page
	// embeds objects from a third-party CDN; when the censor blocks the
	// CDN host, C-Saw notices *because the browser routes every embedded
	// object through the proxy*, which measures each on the direct path.
	w, c := newCaseStudyClient(t, nil, "ISP-A")
	cdnIP := w.Registry.Lookup(worldgen.CDNHost)[0]
	p := worldgen.ISPAPolicy("block.isp-a.pk/blocked.html", "youtube.com")
	p.IP = map[string]censor.IPAction{cdnIP: censor.IPReset}
	w.ISPs["ISP-A"].Censor.SetPolicy(p)

	b := &web.Browser{Transport: c, ClockSrc: w.Clock}
	pr := b.Load(context.Background(), worldgen.NewsHost, "/")
	if !pr.OK() {
		t.Fatalf("news load: %v", pr.Err)
	}
	if pr.Objects == 0 {
		t.Fatalf("no objects fetched (CDN objects should come via circumvention): %+v", pr)
	}
	c.WaitIdle()
	rec, st := c.DB().Lookup(worldgen.CDNHost + "/lib/analytics.js")
	if st != localdb.Blocked {
		t.Fatalf("CDN blocking not recorded: status=%v rec=%+v", st, rec)
	}
	if rec.PrimaryType() != localdb.BlockIP {
		t.Fatalf("CDN blocking mechanism = %v, want ip", rec.PrimaryType())
	}
	// And the page host itself stays clean.
	if _, st := c.DB().Lookup(worldgen.NewsHost + "/"); st != localdb.NotBlocked {
		t.Fatalf("news host status = %v", st)
	}
}

func TestRefreshOnPhase1FalseNegative(t *testing.T) {
	// §4.3.1: a phase-1 false negative (block page served as if clean) is
	// corrected by a page refresh once the circumvented copy arrives and
	// phase 2 sees the size mismatch. Craft a censor whose "block page"
	// looks like an innocuous small page (no phrases, links out).
	w, c := newCaseStudyClient(t, nil, "ISP-A")
	stealthy := []byte(`<html><head><title>Service notice</title></head><body>` +
		`<p>Please try again later, or visit <a href="http://help.isp.example/">support</a>.</p></body></html>`)
	w.ISPs["ISP-A"].Censor.SetPolicy(&censor.Policy{
		HTTP:          []censor.HTTPRule{{Host: worldgen.LargeHost, Action: censor.HTTPBlockPage}},
		BlockPageHTML: stealthy,
	})
	res := fetchURL(t, c, worldgen.LargeHost+"/")
	if !res.OK() {
		t.Fatalf("fetch: %v", res.Err)
	}
	c.WaitIdle()
	if c.Counter("refresh") == 0 {
		t.Fatal("phase-1 false negative not corrected by refresh")
	}
	if _, st := c.DB().Lookup(worldgen.LargeHost + "/"); st != localdb.Blocked {
		t.Fatalf("db status = %v after refresh correction", st)
	}
}
