package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
)

// Start registers with the global DB (solving the CAPTCHA), performs an
// initial download of the blocked list for the client's AS(es) (the
// initialization step of §3), and launches the background sync and
// multihoming-probe loops. It is a no-op for clients without a global DB.
func (c *Client) Start(ctx context.Context) error {
	if c.cfg.GlobalDB != nil && c.cfg.GlobalDB.UUID() == "" {
		if err := c.cfg.GlobalDB.Register(ctx, c.cfg.CaptchaToken); err != nil {
			return fmt.Errorf("core: registration: %w", err)
		}
	}
	if err := c.SyncNow(ctx); err != nil {
		return err
	}
	c.startLoops()
	return nil
}

// startLoops launches the periodic sync and ASN probe goroutines. A
// negative SyncInterval means the owner syncs explicitly (SyncNow) and no
// loop goroutine or ticker is created at all — the fleet driver runs 100k
// clients this way, so "one parked ticker per client" is not a rounding
// error there.
func (c *Client) startLoops() {
	if c.cfg.GlobalDB != nil && c.cfg.SyncInterval >= 0 {
		interval := c.cfg.SyncInterval
		if interval == 0 {
			interval = DefaultSyncInterval
		}
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			tk := c.clock.NewTicker(interval)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					c.syncWithRetry(interval)
				case <-c.stop:
					return
				}
			}
		}()
	}
	if c.cfg.ASNProbeAddr != "" {
		interval := c.cfg.ASNProbeInterval
		if interval <= 0 {
			interval = DefaultASNProbeInterval
		}
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			tk := c.clock.NewTicker(interval)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					ctx, cancel := c.clock.WithTimeout(context.Background(), interval)
					if err := c.ProbeASN(ctx); err != nil {
						// A failed probe postpones multihoming detection; it
						// must show up in the counters, not vanish.
						c.bump("asn-probe-failures")
					}
					cancel()
				case <-c.stop:
					return
				}
			}
		}()
	}
}

// syncWithRetry drives one background round: a failed round is retried with
// exponential backoff and jitter (in virtual time, so virtual-time tests
// stay deterministic) until it succeeds, the retry budget is spent, the
// circuit breaker opens, or the client stops.
func (c *Client) syncWithRetry(timeout time.Duration) {
	pol := c.cfg.Sync
	for attempt := 0; ; attempt++ {
		ctx, cancel := c.clock.WithTimeout(context.Background(), timeout)
		err := c.SyncNow(ctx)
		cancel()
		if err == nil || errors.Is(err, ErrSyncDegraded) || attempt >= pol.retries() {
			return
		}
		c.bump("sync-retries")
		select {
		case <-c.clock.After(pol.Backoff(attempt, c.roll())):
		case <-c.stop:
			return
		}
	}
}

// SyncNow runs one synchronization round: post pending blocked records
// (over the report path — Tor in a full deployment) and refresh the local
// copy of the global blocked list for every AS the client uses. Failures
// are partial, not total: an acknowledged report batch stays acknowledged
// (never re-posted), and a failed per-AS fetch keeps that AS's stale cache
// entries instead of discarding what other ASes returned. While the circuit
// breaker is open SyncNow returns ErrSyncDegraded without touching the
// network.
func (c *Client) SyncNow(ctx context.Context) error {
	g := c.cfg.GlobalDB
	if g == nil {
		return nil
	}
	if !c.syncAdmit() {
		c.bump("sync-skipped")
		return ErrSyncDegraded
	}
	err := c.syncRound(ctx)
	c.syncFinish(err)
	return err
}

// syncAdmit decides whether a round may run: always while the breaker is
// closed, and one half-open probe once the open-state cooldown has passed.
func (c *Client) syncAdmit() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.syncDegraded {
		return true
	}
	return !c.clock.Now().Before(c.syncOpenUntil)
}

// syncFinish folds a round's outcome into the failure counters and the
// circuit breaker.
func (c *Client) syncFinish(err error) {
	pol := c.cfg.Sync
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		c.syncFails = 0
		c.lastSyncErr = nil
		c.lastSyncOK = c.clock.Now()
		c.counters["sync-ok"]++
		if c.syncDegraded {
			// Half-open probe succeeded: close the circuit, leave
			// local-only mode.
			c.syncDegraded = false
			c.counters["sync-circuit-close"]++
		}
		return
	}
	c.syncFails++
	c.lastSyncErr = err
	c.counters["sync-failures"]++
	if after := pol.breakerAfter(); after > 0 && c.syncFails >= after {
		if !c.syncDegraded {
			c.syncDegraded = true
			c.counters["sync-circuit-open"]++
		}
		c.syncOpenUntil = c.clock.Now().Add(pol.breakerReset())
	}
}

// syncRound does the actual report + fetch work of one round.
func (c *Client) syncRound(ctx context.Context) error {
	g := c.cfg.GlobalDB
	pol := c.cfg.Sync
	var errs []error

	// Report phase. The pending queue is bounded: a round takes on at most
	// MaxPending records (overflow stays safely in the local_DB and is
	// counted), posted oldest-first in MaxBatch batches. A record is marked
	// posted only after the server acknowledged its batch, so a failed
	// batch is retried later rather than lost, and an acknowledged one is
	// never re-posted.
	pending := c.db.PendingGlobal()
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].Measured.Before(pending[j].Measured)
	})
	if over := len(pending) - pol.maxPending(); over > 0 {
		if pol.DropOldest {
			pending = pending[over:]
		} else {
			pending = pending[:pol.maxPending()]
		}
		c.mu.Lock()
		c.counters["sync-report-deferred"] += over
		c.mu.Unlock()
	}
	for len(pending) > 0 {
		batch := pending
		if len(batch) > pol.maxBatch() {
			batch = batch[:pol.maxBatch()]
		}
		if _, err := g.Report(ctx, batch); err != nil {
			errs = append(errs, fmt.Errorf("report (%d pending): %w", len(pending), err))
			break
		}
		for _, r := range batch {
			c.db.MarkPosted(r.URL)
		}
		c.mu.Lock()
		c.counters["reports-posted"] += len(batch)
		c.mu.Unlock()
		pending = pending[len(batch):]
	}

	// Fetch phase, independently per AS: one provider's failure must not
	// discard what the others returned.
	fresh := make(map[string]globaldb.Entry)
	failedAS := make(map[int]bool)
	fetchedOK := 0
	for _, as := range c.cfg.Host.ASes() {
		entries, err := g.FetchBlocked(ctx, as.Number)
		if err != nil {
			failedAS[as.Number] = true
			errs = append(errs, fmt.Errorf("fetch AS%d: %w", as.Number, err))
			c.bump("sync-fetch-failures")
			continue
		}
		fetchedOK++
		for _, e := range entries {
			if !c.cfg.Trust.Trusted(e) {
				continue
			}
			if prev, ok := fresh[e.URL]; ok {
				// Multihomed clients merge stages across providers (§4.4).
				fresh[e.URL] = mergeEntries(prev, e)
				continue
			}
			fresh[e.URL] = e
		}
	}
	c.mu.Lock()
	if len(failedAS) > 0 {
		// Keep the stale view for the ASes we could not refresh; serving
		// yesterday's blocked list beats forgetting it (§5 resilience).
		for url, e := range c.globalCache {
			if !failedAS[e.ASN] {
				continue
			}
			if prev, ok := fresh[url]; ok {
				fresh[url] = mergeEntries(prev, e)
			} else {
				fresh[url] = e
			}
		}
		if fetchedOK > 0 {
			c.counters["sync-partial"]++
		}
	}
	c.globalCache = fresh
	c.mu.Unlock()
	return errors.Join(errs...)
}

// mergeEntries unions two entries' stages. The stage slices may be shared
// with the globaldb client's conditional-fetch cache (and with earlier
// rounds' globalCache entries), so the merge must never append in place:
// the full slice expression pins capacity to force copy-on-append.
func mergeEntries(a, b globaldb.Entry) globaldb.Entry {
	seen := make(map[localdb.BlockType]bool)
	merged := a
	merged.Stages = a.Stages[:len(a.Stages):len(a.Stages)]
	for _, s := range a.Stages {
		seen[localdb.BlockType(s.Type)] = true
	}
	for _, s := range b.Stages {
		if !seen[localdb.BlockType(s.Type)] {
			merged.Stages = append(merged.Stages, s)
			seen[localdb.BlockType(s.Type)] = true
		}
	}
	merged.Votes += b.Votes
	if b.Reporters > merged.Reporters {
		merged.Reporters = b.Reporters
	}
	return merged
}

// GlobalCacheLen reports how many globally-reported blocked URLs the client
// currently trusts.
func (c *Client) GlobalCacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.globalCache)
}

// Degraded reports whether the sync circuit breaker has dropped the client
// into local-only mode (stale global cache, no DB traffic).
func (c *Client) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncDegraded
}

// SyncStats snapshots the sync pipeline's health counters.
func (c *Client) SyncStats() SyncStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := SyncStats{
		Posted:              c.counters["reports-posted"],
		OK:                  c.counters["sync-ok"],
		Failures:            c.counters["sync-failures"],
		Retries:             c.counters["sync-retries"],
		Skipped:             c.counters["sync-skipped"],
		Partial:             c.counters["sync-partial"],
		Deferred:            c.counters["sync-report-deferred"],
		ConsecutiveFailures: c.syncFails,
		Degraded:            c.syncDegraded,
		LastSuccess:         c.lastSyncOK,
	}
	if c.lastSyncErr != nil {
		st.LastError = c.lastSyncErr.Error()
	}
	return st
}

// ProbeASN asks the ASN-echo service which AS this connection egressed
// through and folds the answer into multihoming detection (§4.4: "if over
// short timescales, more than one ASN is returned, we mark the network to
// be multi-homed").
func (c *Client) ProbeASN(ctx context.Context) error {
	if c.cfg.ASNProbeAddr == "" {
		return fmt.Errorf("core: no ASN probe service configured")
	}
	hc := &httpx.Client{Dial: c.cfg.Host.Dial, Clock: c.clock, Timeout: 10 * time.Second}
	host := c.cfg.ASNProbeHost
	if host == "" {
		host = "asn.echo"
	}
	resp, err := hc.Get(ctx, c.cfg.ASNProbeAddr, host, "/asn")
	if err != nil {
		return err
	}
	asn, err := strconv.Atoi(strings.TrimSpace(string(resp.Body)))
	if err != nil || asn == 0 {
		return fmt.Errorf("core: bad ASN echo %q", resp.Body)
	}
	c.mu.Lock()
	c.seenASNs[asn] = true
	if len(c.seenASNs) > 1 {
		c.multihomed = true
	}
	c.mu.Unlock()
	return nil
}

// currentASN is the AS number recorded with measurements: the single
// provider's, or the primary one for multihomed hosts (per-measurement
// egress attribution is not observable to a real client either).
func (c *Client) currentASN() int {
	return c.cfg.Host.ASes()[0].Number
}
