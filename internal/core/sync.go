package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
)

// Start registers with the global DB (solving the CAPTCHA), performs an
// initial download of the blocked list for the client's AS(es) (the
// initialization step of §3), and launches the background sync and
// multihoming-probe loops. It is a no-op for clients without a global DB.
func (c *Client) Start(ctx context.Context) error {
	if c.cfg.GlobalDB != nil && c.cfg.GlobalDB.UUID() == "" {
		if err := c.cfg.GlobalDB.Register(ctx, c.cfg.CaptchaToken); err != nil {
			return fmt.Errorf("core: registration: %w", err)
		}
	}
	if err := c.SyncNow(ctx); err != nil {
		return err
	}
	c.startLoops()
	return nil
}

// startLoops launches the periodic sync and ASN probe goroutines.
func (c *Client) startLoops() {
	if c.cfg.GlobalDB != nil {
		interval := c.cfg.SyncInterval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			tk := c.clock.NewTicker(interval)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					ctx, cancel := c.clock.WithTimeout(context.Background(), interval)
					_ = c.SyncNow(ctx)
					cancel()
				case <-c.stop:
					return
				}
			}
		}()
	}
	if c.cfg.ASNProbeAddr != "" {
		interval := c.cfg.ASNProbeInterval
		if interval <= 0 {
			interval = DefaultASNProbeInterval
		}
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			tk := c.clock.NewTicker(interval)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					ctx, cancel := c.clock.WithTimeout(context.Background(), interval)
					_ = c.ProbeASN(ctx)
					cancel()
				case <-c.stop:
					return
				}
			}
		}()
	}
}

// SyncNow runs one synchronization round: post pending blocked records
// (over the report path — Tor in a full deployment) and refresh the local
// copy of the global blocked list for every AS the client uses.
func (c *Client) SyncNow(ctx context.Context) error {
	g := c.cfg.GlobalDB
	if g == nil {
		return nil
	}
	pending := c.db.PendingGlobal()
	if len(pending) > 0 {
		if _, err := g.Report(ctx, pending); err != nil {
			return err
		}
		for _, r := range pending {
			c.db.MarkPosted(r.URL)
		}
		c.mu.Lock()
		c.counters["reports-posted"] += len(pending)
		c.mu.Unlock()
	}

	fresh := make(map[string]globaldb.Entry)
	for _, as := range c.cfg.Host.ASes() {
		entries, err := g.FetchBlocked(ctx, as.Number)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !c.cfg.Trust.Trusted(e) {
				continue
			}
			if prev, ok := fresh[e.URL]; ok {
				// Multihomed clients merge stages across providers (§4.4).
				fresh[e.URL] = mergeEntries(prev, e)
				continue
			}
			fresh[e.URL] = e
		}
	}
	c.mu.Lock()
	c.globalCache = fresh
	c.mu.Unlock()
	return nil
}

// mergeEntries unions two entries' stages.
func mergeEntries(a, b globaldb.Entry) globaldb.Entry {
	seen := make(map[localdb.BlockType]bool)
	merged := a
	for _, s := range a.Stages {
		seen[localdb.BlockType(s.Type)] = true
	}
	for _, s := range b.Stages {
		if !seen[localdb.BlockType(s.Type)] {
			merged.Stages = append(merged.Stages, s)
			seen[localdb.BlockType(s.Type)] = true
		}
	}
	merged.Votes += b.Votes
	if b.Reporters > merged.Reporters {
		merged.Reporters = b.Reporters
	}
	return merged
}

// GlobalCacheLen reports how many globally-reported blocked URLs the client
// currently trusts.
func (c *Client) GlobalCacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.globalCache)
}

// ProbeASN asks the ASN-echo service which AS this connection egressed
// through and folds the answer into multihoming detection (§4.4: "if over
// short timescales, more than one ASN is returned, we mark the network to
// be multi-homed").
func (c *Client) ProbeASN(ctx context.Context) error {
	if c.cfg.ASNProbeAddr == "" {
		return fmt.Errorf("core: no ASN probe service configured")
	}
	hc := &httpx.Client{Dial: c.cfg.Host.Dial, Clock: c.clock, Timeout: 10 * time.Second}
	host := c.cfg.ASNProbeHost
	if host == "" {
		host = "asn.echo"
	}
	resp, err := hc.Get(ctx, c.cfg.ASNProbeAddr, host, "/asn")
	if err != nil {
		return err
	}
	asn, err := strconv.Atoi(strings.TrimSpace(string(resp.Body)))
	if err != nil || asn == 0 {
		return fmt.Errorf("core: bad ASN echo %q", resp.Body)
	}
	c.mu.Lock()
	c.seenASNs[asn] = true
	if len(c.seenASNs) > 1 {
		c.multihomed = true
	}
	c.mu.Unlock()
	return nil
}

// currentASN is the AS number recorded with measurements: the single
// provider's, or the primary one for multihomed hosts (per-measurement
// egress attribution is not observable to a real client either).
func (c *Client) currentASN() int {
	return c.cfg.Host.ASes()[0].Number
}
