// Package core implements the C-Saw client: the local proxy of §4.3 with
// its measurement module (Algorithm 1, redundant requests, the two-phase
// block-page check) and circumvention module (local fixes before relays,
// EWMA-based approach selection with periodic exploration), plus the
// supporting machinery of §4.4 — URL aggregation via localdb, churn
// handling, multihoming detection — and the global-DB synchronization and
// privacy plumbing of §5.
package core

import (
	"context"
	"fmt"
	"net"

	"csaw/internal/dnsx"
	"csaw/internal/lantern"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/proxynet"
	"csaw/internal/tor"
	"csaw/internal/vtime"
	"csaw/internal/web"
)

// Kind distinguishes local fixes from relay-based approaches; §4.3.2:
// "we always prefer local-fixes over relay-based approaches".
type Kind int

// Approach kinds.
const (
	KindLocalFix Kind = iota
	KindRelay
)

// Approach is one circumvention method the client can dispatch a URL over.
type Approach struct {
	Name string
	Kind Kind
	// Anonymous marks approaches that hide the user (Tor); the
	// PreferAnonymity user preference restricts selection to these (§4.4).
	Anonymous bool
	// Transport fetches URLs over this approach.
	Transport *web.Transport
	// Handles reports whether the approach can defeat the given blocking
	// stages for the given URL. Relay approaches handle everything.
	Handles func(url string, stages []localdb.Stage) bool
	// Isolate, when non-nil, returns a transport with fresh path state —
	// a new Tor circuit — for redundant copies over separate circuits
	// (Figure 6a) and exploration.
	Isolate func() *web.Transport
}

// String returns the approach name.
func (a *Approach) String() string { return a.Name }

// handlesAll is the relay predicate.
func handlesAll(string, []localdb.Stage) bool { return true }

// stagesWithin reports whether every stage's mechanism is in allowed.
func stagesWithin(stages []localdb.Stage, allowed ...localdb.BlockType) bool {
	if len(stages) == 0 {
		return false
	}
	for _, s := range stages {
		ok := false
		for _, a := range allowed {
			if s.Type == a {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CombinedLookup resolves via the local resolver and falls back to the
// global one — what a local fix uses when only part of the stack is
// tampered with.
func CombinedLookup(ldns, gdns *dnsx.Client) func(context.Context, string) (string, error) {
	return func(ctx context.Context, host string) (string, error) {
		if res := ldns.Lookup(ctx, host); res.OK() {
			return res.IPs[0], nil
		}
		if res := gdns.Lookup(ctx, host); res.OK() {
			return res.IPs[0], nil
		}
		return "", fmt.Errorf("core: cannot resolve %q on any path", host)
	}
}

// GDNSLookup resolves only via the global resolver (used by fixes for
// DNS-tampered names).
func GDNSLookup(gdns *dnsx.Client) func(context.Context, string) (string, error) {
	return func(ctx context.Context, host string) (string, error) {
		if res := gdns.Lookup(ctx, host); res.OK() {
			return res.IPs[0], nil
		}
		return "", fmt.Errorf("core: global DNS cannot resolve %q", host)
	}
}

// PublicDNSFix builds the local fix for pure DNS blocking: resolve via the
// public resolver and fetch directly (§4.3.2).
func PublicDNSFix(host *netem.Host, clock *vtime.Clock, gdns *dnsx.Client) *Approach {
	return &Approach{
		Name: "public-dns",
		Kind: KindLocalFix,
		Transport: &web.Transport{
			Label:  "public-dns",
			Dialer: host.Dial,
			Lookup: GDNSLookup(gdns),
			Clock:  clock,
		},
		Handles: func(_ string, stages []localdb.Stage) bool {
			return stagesWithin(stages, localdb.BlockDNS)
		},
	}
}

// HTTPSFix builds the local fix for HTTP-level blocking: fetch the same
// content over TLS so the URL/keyword filter on port 80 sees nothing
// (§4.3.2: "in case of HTTP blocking, HTTPS is used as a local-fix").
// DNS-tampered names resolve via the global resolver.
func HTTPSFix(host *netem.Host, clock *vtime.Clock, ldns, gdns *dnsx.Client) *Approach {
	return &Approach{
		Name: "https",
		Kind: KindLocalFix,
		Transport: &web.Transport{
			Label:  "https",
			Dialer: host.Dial,
			Lookup: CombinedLookup(ldns, gdns),
			TLS:    true,
			Clock:  clock,
		},
		Handles: func(_ string, stages []localdb.Stage) bool {
			return stagesWithin(stages, localdb.BlockHTTP, localdb.BlockDNS)
		},
	}
}

// FrontingFix builds the domain-fronting local fix: connect to a front
// host with the front's name in the SNI; the encrypted Host header names
// the blocked site (§2.2). frontable limits it to sites the front actually
// serves ("if supported by the destination server").
func FrontingFix(host *netem.Host, clock *vtime.Clock, frontHost, frontIP string, frontable func(host string) bool) *Approach {
	return &Approach{
		Name: "domain-fronting",
		Kind: KindLocalFix,
		Transport: &web.Transport{
			Label:  "domain-fronting",
			Dialer: host.Dial,
			Lookup: web.StaticLookup(map[string]string{}), // never used: addr forced below
			TLS:    true,
			SNI:    func(string) string { return frontHost },
			Clock:  clock,
		},
		Handles: func(url string, stages []localdb.Stage) bool {
			h, _ := localdb.SplitURL(url)
			if !frontable(h) {
				return false
			}
			// Fronting defeats every mechanism aimed at the blocked site:
			// the censor only ever sees the front's name and address.
			return len(stages) > 0
		},
	}
}

// NewFrontingFix is FrontingFix with the lookup routed to the front's IP.
func NewFrontingFix(host *netem.Host, clock *vtime.Clock, frontHost, frontIP string, frontable func(string) bool) *Approach {
	a := FrontingFix(host, clock, frontHost, frontIP, frontable)
	a.Transport.Lookup = func(context.Context, string) (string, error) { return frontIP, nil }
	return a
}

// IPAsHostnameFix fetches the blocked site by raw IP with the IP in the
// Host header, evading hostname/keyword filters and tampered DNS (§2.3,
// Figure 1c).
func IPAsHostnameFix(host *netem.Host, clock *vtime.Clock, gdns *dnsx.Client) *Approach {
	lookup := GDNSLookup(gdns)
	t := &web.Transport{
		Label:              "ip-as-hostname",
		Dialer:             host.Dial,
		Lookup:             lookup,
		HostHeaderFromAddr: true,
		Clock:              clock,
	}
	return &Approach{
		Name:      "ip-as-hostname",
		Kind:      KindLocalFix,
		Transport: t,
		Handles: func(_ string, stages []localdb.Stage) bool {
			return stagesWithin(stages, localdb.BlockHTTP, localdb.BlockDNS)
		},
	}
}

// StaticProxyApproach tunnels through a fixed CONNECT proxy outside the
// censored region (the Figure 1a comparators).
func StaticProxyApproach(name string, host *netem.Host, clock *vtime.Clock, proxyAddr string) *Approach {
	return &Approach{
		Name: name,
		Kind: KindRelay,
		Transport: &web.Transport{
			Label:  name,
			Dialer: proxynet.Via(host.Dial, clock, proxyAddr),
			Clock:  clock,
		},
		Handles: handlesAll,
	}
}

// TorApproach tunnels through a simulated Tor client; copies over separate
// circuits come from Isolate.
func TorApproach(tc *tor.Client, clock *vtime.Clock) *Approach {
	return &Approach{
		Name:      "tor",
		Kind:      KindRelay,
		Anonymous: true,
		Transport: &web.Transport{Label: "tor", Dialer: tc.Dial, Clock: clock},
		Handles:   handlesAll,
		Isolate: func() *web.Transport {
			circ, err := tc.NewCircuit()
			if err != nil {
				return &web.Transport{Label: "tor", Dialer: tc.Dial, Clock: clock}
			}
			dial := func(ctx context.Context, addr string) (net.Conn, error) {
				return tc.DialVia(ctx, circ, addr)
			}
			return &web.Transport{Label: "tor", Dialer: dial, Clock: clock}
		},
	}
}

// TorBridgeApproach is Tor entered through unlisted bridges — the fallback
// for censors that blacklist the public relay list (§8: "using Tor bridges
// and pluggable transports makes it more challenging to block Tor"). It
// ranks behind plain Tor by construction: the approach-selection EWMA only
// routes traffic here once the public entries start failing.
func TorBridgeApproach(tc *tor.Client, clock *vtime.Clock) *Approach {
	tc.UseBridge = true
	return &Approach{
		Name:      "tor-bridge",
		Kind:      KindRelay,
		Anonymous: true,
		Transport: &web.Transport{Label: "tor-bridge", Dialer: tc.Dial, Clock: clock},
		Handles:   handlesAll,
	}
}

// LanternApproach tunnels through a simulated Lantern client.
func LanternApproach(lc *lantern.Client, clock *vtime.Clock) *Approach {
	return &Approach{
		Name:      "lantern",
		Kind:      KindRelay,
		Transport: &web.Transport{Label: "lantern", Dialer: lc.Dial, Clock: clock},
		Handles:   handlesAll,
	}
}
