package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"csaw/internal/censor"
	"csaw/internal/core"
	"csaw/internal/localdb"
	"csaw/internal/worldgen"
)

// TestConcurrentClientUse hammers one client's fetch, sync, and stats paths
// from many goroutines, specifically racing globalCache replacement
// (SyncNow) against lookups (FetchURL) and length/stat reads. It exists to
// run under -race; the assertions are secondary.
func TestConcurrentClientUse(t *testing.T) {
	w, c, gdb, _ := newSyncWorld(t, func(cfg *core.Config) {
		cfg.MaxConns = 32
	}, "ISP-A")
	w.ISPs["ISP-A"].Censor.SetPolicy(&censor.Policy{
		DNS: map[string]censor.DNSAction{"youtube.com": censor.DNSNXDomain},
	})
	ctx := context.Background()
	if err := gdb.Register(ctx, "human-test"); err != nil {
		t.Fatal(err)
	}
	// Enough pending reports and server-side entries that every sync round
	// does real cache-replacement work.
	for i := 0; i < 8; i++ {
		c.DB().Put(fmt.Sprintf("pre-%d.example/", i), 17557, localdb.Blocked,
			[]localdb.Stage{{Type: localdb.BlockDNS}})
	}

	const (
		fetchers = 4
		syncers  = 2
		readers  = 4
		rounds   = 8
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				url := worldgen.YouTubeHost + "/"
				if r%2 == 1 {
					url = worldgen.NewsHost + "/"
				}
				// Load-induced timeouts are fine here; data races are what
				// this test is for.
				_ = c.FetchURL(ctx, url)
			}
		}(i)
	}
	for i := 0; i < syncers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				_ = c.SyncNow(ctx) //lint:allow-droperr contention stress; overlapping syncs legitimately fail
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < rounds*4; r++ {
				_ = c.GlobalCacheLen()
				_ = c.Counter("served-direct")
				_ = c.SyncStats()
				_ = c.Degraded()
				_ = c.Multihomed()
				time.Sleep(time.Millisecond) //lint:allow-realtime real-time stagger to vary interleavings under -race
			}
		}()
	}
	close(start)
	wg.Wait()
	c.WaitIdle()

	// The pre-seeded reports must have landed exactly once despite
	// concurrent SyncNow calls racing over the same pending queue... or at
	// least once each with no losses; the server's per-(url,asn) idempotency
	// plus MarkPosted means none may be left pending.
	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	if left := len(c.DB().PendingGlobal()); left != 0 {
		t.Fatalf("%d reports still pending after concurrent syncs", left)
	}
	if c.GlobalCacheLen() == 0 {
		t.Fatal("global cache empty after syncs against a seeded DB")
	}
}
