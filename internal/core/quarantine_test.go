package core

import (
	"testing"
	"time"

	"csaw/internal/vtime"
)

// quarClient builds the minimal Client the quarantine state machine needs:
// a clock and a counters map.
func quarClient(pol QuarantinePolicy) *Client {
	return &Client{
		cfg:      Config{Quarantine: pol},
		clock:    vtime.New(1),
		counters: make(map[string]int),
	}
}

func TestQuarantineBenchAfterStrikes(t *testing.T) {
	c := quarClient(QuarantinePolicy{})
	a := &Approach{Name: "tor"}

	c.quarStrike(nil, a)
	if !c.quarAllowed(a) {
		t.Fatal("benched after one strike; default is two")
	}
	c.quarStrike(nil, a)
	if c.quarAllowed(a) {
		t.Fatal("not benched after two strikes")
	}
	if c.Counter("quarantine-bench") != 1 {
		t.Fatalf("quarantine-bench = %d, want 1", c.Counter("quarantine-bench"))
	}

	// Bench expires into probation: allowed again without any success.
	c.clock.Advance(DefaultBenchBase + time.Second)
	if !c.quarAllowed(a) {
		t.Fatal("not allowed on probation after bench expiry")
	}

	// One probation failure re-benches immediately with a doubled sentence.
	c.quarStrike(nil, a)
	if c.quarAllowed(a) {
		t.Fatal("probation failure did not re-bench")
	}
	c.clock.Advance(DefaultBenchBase + time.Second)
	if c.quarAllowed(a) {
		t.Fatal("second bench should last 2×BenchBase, but expired after ~1×")
	}
	c.clock.Advance(DefaultBenchBase)
	if !c.quarAllowed(a) {
		t.Fatal("second bench did not expire after 2×BenchBase")
	}

	// A probation success restores full trust: the next failure is strike
	// one again, not an instant re-bench.
	c.quarRestore(nil, a)
	if c.Counter("quarantine-restore") != 1 {
		t.Fatalf("quarantine-restore = %d, want 1", c.Counter("quarantine-restore"))
	}
	c.quarStrike(nil, a)
	if !c.quarAllowed(a) {
		t.Fatal("restored approach benched after a single strike")
	}
}

func TestQuarantineBenchBackoffCapped(t *testing.T) {
	pol := QuarantinePolicy{BenchBase: time.Minute, BenchMax: 5 * time.Minute}
	for benches, want := range map[int]time.Duration{
		1:  time.Minute,
		2:  2 * time.Minute,
		3:  4 * time.Minute,
		4:  5 * time.Minute, // capped
		40: 5 * time.Minute, // shift-overflow guard
	} {
		if got := pol.benchFor(benches); got != want {
			t.Errorf("benchFor(%d) = %v, want %v", benches, got, want)
		}
	}
}

func TestQuarantineDisabled(t *testing.T) {
	c := quarClient(QuarantinePolicy{Strikes: -1})
	a := &Approach{Name: "tor"}
	for i := 0; i < 10; i++ {
		c.quarStrike(nil, a)
	}
	if !c.quarAllowed(a) {
		t.Fatal("disabled quarantine benched an approach")
	}
	if c.Counter("quarantine-bench") != 0 {
		t.Fatal("disabled quarantine counted a bench")
	}
}

func TestQuarantineOverrideWhenAllBenched(t *testing.T) {
	c := quarClient(QuarantinePolicy{Strikes: 1})
	a := &Approach{Name: "a", Kind: KindRelay}
	b := &Approach{Name: "b", Kind: KindRelay}
	c.quarStrike(nil, a)
	c.quarStrike(nil, b)

	locals, relays := c.quarFilterTiers(nil, nil, []*Approach{a, b})
	if len(locals) != 0 || len(relays) != 2 {
		t.Fatalf("override did not return the original tiers: %d locals, %d relays", len(locals), len(relays))
	}
	if c.Counter("quarantine-override") != 1 {
		t.Fatalf("quarantine-override = %d, want 1", c.Counter("quarantine-override"))
	}

	// With one healthy relay the benched one stays filtered out.
	ok := &Approach{Name: "ok", Kind: KindRelay}
	_, relays = c.quarFilterTiers(nil, nil, []*Approach{a, ok})
	if len(relays) != 1 || relays[0] != ok {
		t.Fatalf("filter kept %v, want only the healthy relay", relays)
	}
}
