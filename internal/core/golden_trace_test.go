package core_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"csaw/internal/core"
	"csaw/internal/trace"
	"csaw/internal/worldgen"
)

const goldenTracePath = "testdata/trace_golden.jsonl"

// goldenTraceRun plays a fixed scenario behind ISP-B — the multi-stage
// censor of Table 1 — through one serial client with the deterministic
// trace profile, and returns the sorted JSONL artifact. The URL list walks
// the blocking spectrum: a clean site, YouTube (DNS redirect + SNI drop +
// HTTP drop, so detection concludes via timeout verdicts), an iframe block
// page, an NXDOMAIN host, and a repeat of the blocked URL (served from the
// local_DB through the selected approach instead of re-measuring).
func goldenTraceRun(t *testing.T) string {
	t.Helper()
	w, err := worldgen.New(worldgen.Options{Scale: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	_, ispB, err := w.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	host := w.NewClientHost("golden", ispB)
	cfg := w.ClientConfig(host, 11)
	cfg.Serial = true

	var buf bytes.Buffer
	sink := trace.NewSortedSink(&buf)
	cfg.Trace = trace.New(w.Clock, sink) // deterministic profile: no durations

	client, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	urls := []string{
		worldgen.NewsHost + "/",
		worldgen.YouTubeHost + "/",
		worldgen.PornHost + "/",
		"no-such.example/",
		worldgen.YouTubeHost + "/",
	}
	for _, url := range urls {
		fetchURL(t, client, url)
		client.WaitIdle() // drain background settlement before the next span
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.String()
}

// TestGoldenTrace byte-compares the scenario's trace against the checked-in
// golden artifact. Regenerate with `make golden` (CSAW_UPDATE_GOLDEN=1)
// after intentional recorder or protocol changes — the diff then documents
// exactly what the change did to the observable fetch pipeline.
func TestGoldenTrace(t *testing.T) {
	got := goldenTraceRun(t)

	// Structural invariants first, so a regeneration can't silently bless a
	// trace that lost the interesting events.
	if n := strings.Count(got, "\n"); n != 5 {
		t.Fatalf("trace has %d spans, want 5 (one per fetch)", n)
	}
	if !strings.Contains(got, `"timeout-phase"`) {
		t.Error("no timeout-phase detect events: ISP-B's drop stages must surface timeout verdicts")
	}
	for _, want := range []string{`"dns"`, `"select"`, `"verdict"`} {
		if !strings.Contains(got, want) {
			t.Errorf("trace missing %s events", want)
		}
	}

	if os.Getenv("CSAW_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %d bytes", len(got))
	}

	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("read golden (run `make golden` to generate): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace diverged from golden (run `make golden` if intentional):\n--- got ---\n%s--- golden ---\n%s",
			firstTraceDiff(got, string(want)), firstTraceDiff(string(want), got))
	}

	// Same-process, same-seed replay must be byte-identical: the recorder
	// may not leak pool state or map order between runs.
	again := goldenTraceRun(t)
	if again != got {
		t.Errorf("second in-process run diverged:\n%s", firstTraceDiff(got, again))
	}
}

// firstTraceDiff returns the lines around the first divergence between two
// JSONL artifacts.
func firstTraceDiff(a, b string) string {
	la, lb := strings.SplitAfter(a, "\n"), strings.SplitAfter(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 1
			if lo < 0 {
				lo = 0
			}
			hi := i + 2
			if hi > len(la) {
				hi = len(la)
			}
			return strings.Join(la[lo:hi], "")
		}
	}
	return "(prefix of the other artifact)\n"
}
