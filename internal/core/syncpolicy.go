package core

import (
	"errors"
	"time"
)

// ErrSyncDegraded is returned by SyncNow while the sync circuit breaker is
// open: the client is in local-only mode, serving from the stale global
// cache and the local_DB without touching the network.
var ErrSyncDegraded = errors.New("core: sync circuit open (local-only mode)")

// Defaults for SyncPolicy. A zero SyncPolicy selects all of them.
const (
	// DefaultSyncRetries is how many times a failed background sync round is
	// retried (with backoff) before waiting for the next tick.
	DefaultSyncRetries = 3
	// DefaultSyncBackoffBase is the first retry delay; each further retry
	// doubles it up to DefaultSyncBackoffMax.
	DefaultSyncBackoffBase = 2 * time.Second
	// DefaultSyncBackoffMax caps the exponential backoff.
	DefaultSyncBackoffMax = time.Minute
	// DefaultSyncJitterFrac is the maximum random extension of a backoff
	// delay, as a fraction of the delay, to de-synchronize client retries.
	DefaultSyncJitterFrac = 0.2
	// DefaultSyncMaxBatch bounds how many reports ride in one Report call.
	DefaultSyncMaxBatch = 64
	// DefaultSyncMaxPending bounds how many pending reports one sync round
	// will take on; the rest stay in the local_DB for later rounds.
	DefaultSyncMaxPending = 1024
	// DefaultSyncBreakerAfter is how many consecutive failed rounds open
	// the circuit breaker.
	DefaultSyncBreakerAfter = 3
	// DefaultSyncBreakerReset is how long the breaker stays open before a
	// half-open probe round is allowed through.
	DefaultSyncBreakerReset = 10 * time.Minute
)

// SyncPolicy tunes the fault tolerance of the client↔global_DB sync
// pipeline (§5: the paper's deployment assumed flaky censored links and a
// DB the censor may block outright). The zero value selects the defaults
// above; negative Retries/BreakerAfter disable retries or the breaker.
type SyncPolicy struct {
	// Retries is the extra attempts per failed background round; 0 selects
	// DefaultSyncRetries, negative disables retrying.
	Retries int
	// BackoffBase/BackoffMax shape the exponential retry schedule.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterFrac randomly extends each backoff by up to this fraction.
	JitterFrac float64
	// MaxBatch is the largest report batch posted per Report call.
	MaxBatch int
	// MaxPending bounds the report queue a single round takes on. Overflow
	// stays in the local_DB: by default the newest records are deferred to
	// later rounds; DropOldest instead defers the oldest so fresh evidence
	// is reported first after a long outage.
	MaxPending int
	DropOldest bool
	// BreakerAfter consecutive failed rounds open the circuit breaker and
	// drop the client into local-only mode; 0 selects the default, negative
	// disables the breaker. BreakerReset is the open-state cooldown before
	// a half-open probe.
	BreakerAfter int
	BreakerReset time.Duration
}

func (p SyncPolicy) retries() int {
	if p.Retries == 0 {
		return DefaultSyncRetries
	}
	if p.Retries < 0 {
		return 0
	}
	return p.Retries
}

func (p SyncPolicy) backoffBase() time.Duration {
	if p.BackoffBase <= 0 {
		return DefaultSyncBackoffBase
	}
	return p.BackoffBase
}

func (p SyncPolicy) backoffMax() time.Duration {
	if p.BackoffMax <= 0 {
		return DefaultSyncBackoffMax
	}
	return p.BackoffMax
}

func (p SyncPolicy) jitterFrac() float64 {
	if p.JitterFrac <= 0 {
		return DefaultSyncJitterFrac
	}
	return p.JitterFrac
}

func (p SyncPolicy) maxBatch() int {
	if p.MaxBatch <= 0 {
		return DefaultSyncMaxBatch
	}
	return p.MaxBatch
}

func (p SyncPolicy) maxPending() int {
	if p.MaxPending <= 0 {
		return DefaultSyncMaxPending
	}
	return p.MaxPending
}

func (p SyncPolicy) breakerAfter() int {
	if p.BreakerAfter == 0 {
		return DefaultSyncBreakerAfter
	}
	if p.BreakerAfter < 0 {
		return 0 // disabled
	}
	return p.BreakerAfter
}

func (p SyncPolicy) breakerReset() time.Duration {
	if p.BreakerReset <= 0 {
		return DefaultSyncBreakerReset
	}
	return p.BreakerReset
}

// Backoff returns the virtual-time delay before retry number attempt
// (0-based): BackoffBase doubled per attempt, capped at BackoffMax, extended
// by jitter·JitterFrac of itself (jitter in [0,1)).
func (p SyncPolicy) Backoff(attempt int, jitter float64) time.Duration {
	d := p.backoffBase()
	max := p.backoffMax()
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		d += time.Duration(jitter * p.jitterFrac() * float64(d))
	}
	return d
}

// SyncStats is a snapshot of the sync pipeline's health, for experiments
// and operators ("!sync" in csaw-client).
type SyncStats struct {
	// Posted is the total reports acknowledged by the global DB.
	Posted int
	// OK/Failures/Retries/Skipped count sync rounds: successes, failures,
	// backoff retries, and rounds skipped while the breaker was open.
	OK       int
	Failures int
	Retries  int
	Skipped  int
	// Partial counts rounds where some but not all per-AS fetches failed.
	Partial int
	// Deferred counts reports pushed past a round's MaxPending bound.
	Deferred int
	// ConsecutiveFailures feeds the breaker; Degraded reports local-only
	// mode; LastError is the most recent round's failure ("" after a
	// success); LastSuccess is the virtual time of the last good round.
	ConsecutiveFailures int
	Degraded            bool
	LastError           string
	LastSuccess         time.Time
}
