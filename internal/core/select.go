package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/metrics"
	"csaw/internal/trace"
	"csaw/internal/web"
)

// selectApproach picks the circumvention approach expected to yield the
// smallest PLT (§4.3.2): local fixes over relays, then the best moving
// average among relays, with a random choice every n-th access to keep
// exploring. Unknown stages (nil) mean "we don't know the mechanism yet",
// which only relays are guaranteed to beat.
func (c *Client) selectApproach(sp *trace.Span, url string, stages []localdb.Stage) *Approach {
	var locals, relays []*Approach
	for _, a := range c.cfg.Approaches {
		if c.cfg.Pref == PreferAnonymity && !a.Anonymous {
			continue
		}
		switch {
		case a.Kind == KindLocalFix && stages != nil && a.Handles(url, stages):
			locals = append(locals, a)
		case a.Kind == KindRelay:
			relays = append(relays, a)
		}
	}
	// Quarantine: benched approaches are invisible to selection unless the
	// bench emptied every tier (see quarFilterTiers).
	locals, relays = c.quarFilterTiers(sp, locals, relays)
	if len(locals) > 0 {
		a := c.bestByEWMA(url, locals)
		c.traceChoice(sp, url, a, "local-fix", locals)
		return a
	}
	if len(relays) == 0 {
		return nil
	}
	// Every n-th access to this URL explores a random approach (§4.3.2).
	explore := false
	n := c.cfg.ExploreEvery
	if n <= 0 {
		n = DefaultExploreEvery
	}
	c.mu.Lock()
	c.access[url]++
	if c.access[url]%n == 0 {
		explore = true
	}
	c.mu.Unlock()
	if explore && len(relays) > 1 {
		c.bump("explore")
		a := relays[c.pick(len(relays))]
		c.traceChoice(sp, url, a, "explore", relays)
		return a
	}
	a := c.bestByEWMA(url, relays)
	c.traceChoice(sp, url, a, "best-ewma", relays)
	return a
}

// traceChoice records the selection decision on the span: every candidate
// with its current moving average (the EWMA inputs, numeric only in the
// timing profile), then the chosen approach with the reason.
func (c *Client) traceChoice(sp *trace.Span, url string, chosen *Approach, reason string, candidates []*Approach) {
	if sp == nil || chosen == nil {
		return
	}
	for _, a := range candidates {
		v := 0.0
		if e := c.ewmaFor(a, url, false); e != nil {
			if val, ok := e.Value(); ok {
				v = val
			}
		}
		sp.EventNum("select", "candidate", a.Name, v)
	}
	sp.Event("select", "chosen", chosen.Name+" "+reason)
}

// pick draws a uniform index.
func (c *Client) pick(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// bestByEWMA returns the candidate with the lowest moving-average PLT for
// this URL. Untried approaches score zero (optimistic), so each gets tried
// before the averages take over; ties among them break randomly — a strict
// "<" would always elect the first untried candidate in config order and
// the others would never get their §4.3.2 exploration turn.
func (c *Client) bestByEWMA(url string, candidates []*Approach) *Approach {
	var best *Approach
	bestVal := math.Inf(1)
	ties := 0
	for _, a := range candidates {
		v := 0.0 // optimistic default for the untried
		if e := c.ewmaFor(a, url, false); e != nil {
			if val, ok := e.Value(); ok {
				v = val
			}
		}
		switch {
		case best == nil || v < bestVal:
			best, bestVal, ties = a, v, 1
		case v == bestVal:
			// Reservoir-sample among equals so each tied candidate is
			// equally likely to be picked.
			ties++
			if c.pick(ties) == 0 {
				best = a
			}
		}
	}
	return best
}

// ewmaFor returns the moving average for an approach, creating it when
// create is set. §4.3.2 keeps the average per (approach, URL); local fixes
// behave uniformly across URLs, so theirs collapse to per-approach.
func (c *Client) ewmaFor(a *Approach, url string, create bool) *metrics.EWMA {
	key := a.Name
	if a.Kind == KindRelay {
		key = a.Name + "|" + url
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.ewma[key]
	if e == nil && create {
		e = metrics.NewEWMA(0.3)
		c.ewma[key] = e
	}
	return e
}

// circumFetch selects an approach and fetches through it.
func (c *Client) circumFetch(ctx context.Context, url string, stages []localdb.Stage) (*httpx.Response, string, error) {
	app := c.selectApproach(trace.SpanFromContext(ctx), url, stages)
	return c.circumFetchVia(ctx, app, url, stages)
}

// circumFetchVia fetches via a specific approach, racing cfg.Copies
// isolated copies (separate Tor circuits, Figure 6a); if every copy fails,
// it fails over down the remaining candidates — penalizing each failure in
// the moving averages (and striking the quarantine record) so future
// selection avoids broken approaches. The whole ladder walk shares one
// virtual-time deadline budget (Config.FailoverBudget): a censor that
// *drops* instead of resetting cannot pin a fetch for attempts × transport
// timeout.
func (c *Client) circumFetchVia(ctx context.Context, app *Approach, url string, stages []localdb.Stage) (*httpx.Response, string, error) {
	if app == nil {
		return nil, "", fmt.Errorf("core: no circumvention approach available for %s (pref=%d)", url, c.cfg.Pref)
	}
	host, path := localdb.SplitURL(url)
	copies := c.cfg.Copies
	if copies <= 0 {
		copies = 1
	}
	sp := trace.SpanFromContext(ctx)
	parent := ctx
	if b := c.failoverBudget(); b > 0 {
		var cancel context.CancelFunc
		ctx, cancel = c.clock.WithTimeout(ctx, b)
		defer cancel()
	}
	var firstErr error
	for attempt, a := range c.candidateOrder(url, stages, app) {
		if attempt > 0 {
			c.bump("failover")
			copies = 1 // redundancy was for the chosen approach only
		}
		lane := sp.Lane(a.Name)
		lane.Event("circum", "attempt", a.Name)
		start := c.clock.Now()
		resp, err := c.raceCopies(trace.WithLane(ctx, lane), a, copies, host, path)
		if err == nil && resp.StatusCode >= 400 {
			// The approach reached *a* server but not the content (e.g. an
			// IP-addressed request to shared hosting): a failed
			// circumvention, not a success.
			err = fmt.Errorf("core: %s returned %d for %s", a.Name, resp.StatusCode, url)
		}
		if err == nil {
			seconds := c.clock.Since(start).Seconds()
			lane.Event("circum", "ok", a.Name)
			lane.Close()
			sp.EventNum("select", "observe", a.Name, seconds)
			c.ewmaObserve(a, url, seconds)
			c.quarRestore(sp, a)
			return resp, a.Name, nil
		}
		lane.Event("circum", "fail", err.Error())
		lane.Close()
		if ctx.Err() == nil {
			// Only a failure the approach had time to earn counts against
			// it; a budget expiry (or caller cancellation) mid-attempt
			// blames the deadline, not the approach — neither the moving
			// average nor the quarantine record remembers it, so a
			// budget-cut rung stays effectively untried.
			sp.EventNum("select", "observe", a.Name, failurePenaltySeconds)
			c.ewmaObserve(a, url, failurePenaltySeconds)
			c.quarStrike(sp, a)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("core: circumvention via %s failed: %w", a.Name, err)
		}
		if ctx.Err() != nil {
			if parent.Err() == nil {
				c.bump("failover-budget-exhausted")
				sp.Event("circum", "budget-exhausted", a.Name)
			}
			break
		}
	}
	return nil, app.Name, firstErr
}

// failurePenaltySeconds is the EWMA penalty a failed circumvention attempt
// observes — far above any plausible PLT, so a failing approach sinks in
// the §4.3.2 ordering until successes pull it back.
const failurePenaltySeconds = 120

// candidateOrder is the failover sequence: the selected approach, then the
// other applicable local fixes, then relays, each tier in EWMA order —
// benched approaches excluded (the selected one is exempt: selection
// already vetted or overrode it).
func (c *Client) candidateOrder(url string, stages []localdb.Stage, first *Approach) []*Approach {
	out := []*Approach{first}
	seen := map[*Approach]bool{first: true}
	appendBest := func(cands []*Approach) {
		for len(cands) > 0 {
			best := c.bestByEWMA(url, cands)
			out = append(out, best)
			var rest []*Approach
			for _, a := range cands {
				if a != best {
					rest = append(rest, a)
				}
			}
			cands = rest
		}
	}
	var locals, relays []*Approach
	for _, a := range c.cfg.Approaches {
		if seen[a] {
			continue
		}
		if c.cfg.Pref == PreferAnonymity && !a.Anonymous {
			continue
		}
		if !c.quarAllowed(a) {
			continue
		}
		switch {
		case a.Kind == KindLocalFix && stages != nil && a.Handles(url, stages):
			locals = append(locals, a)
		case a.Kind == KindRelay:
			relays = append(relays, a)
		}
	}
	appendBest(locals)
	appendBest(relays)
	const maxAttempts = 4
	if len(out) > maxAttempts {
		out = out[:maxAttempts]
	}
	return out
}

func (c *Client) ewmaObserve(app *Approach, url string, seconds float64) {
	c.ewmaFor(app, url, true).Observe(seconds)
}

// ewmaResetLocked forgets an approach's moving averages (per-approach for
// local fixes, per-URL for relays). Caller holds c.mu. Used when a bench
// expires into probation: the pre-bench average was poisoned by the very
// failures that benched the approach, and an approach scored by a poisoned
// average would never be re-probed — resetting it to untried (optimistic
// zero) is what makes the probation probe actually run.
func (c *Client) ewmaResetLocked(app *Approach) {
	delete(c.ewma, app.Name)
	prefix := app.Name + "|"
	for k := range c.ewma {
		if strings.HasPrefix(k, prefix) {
			delete(c.ewma, k)
		}
	}
}

// raceCopies launches k copies of the fetch (each over isolated path state
// when the approach supports it) and returns the first success.
func (c *Client) raceCopies(ctx context.Context, app *Approach, k int, host, path string) (*httpx.Response, error) {
	if k == 1 {
		return app.Transport.Fetch(ctx, host, path)
	}
	type one struct {
		resp *httpx.Response
		err  error
	}
	ch := make(chan one, k)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		t := app.Transport
		if i > 0 && app.Isolate != nil {
			iso := app.Isolate()
			iso.Dialer = c.limited(iso.Dialer)
			t = iso
		}
		wg.Add(1)
		go func(t *web.Transport) {
			defer wg.Done()
			resp, err := t.Fetch(rctx, host, path)
			ch <- one{resp, err}
		}(t)
	}
	go func() { wg.Wait(); close(ch) }()
	var lastErr error
	for o := range ch {
		if o.err == nil {
			cancel() // winner takes all; losers are abandoned
			return o.resp, nil
		}
		lastErr = o.err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no copies launched")
	}
	return nil, lastErr
}
