package core

import (
	"context"
	"fmt"

	"csaw/internal/globaldb"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/trace"
)

// Do proxies an arbitrary HTTP request. Non-idempotent methods are never
// duplicated ("to avoid multiple writes, HTTP POST requests are not
// duplicated", §4.3.1 footnote 7): a POST to an unmeasured URL goes out on
// the direct path only, and to a known-blocked URL over the selected
// circumvention approach only — no redundant copy, no racing.
//
// GET requests delegate to FetchURL and enjoy the full Algorithm-1
// treatment.
func (c *Client) Do(ctx context.Context, req *httpx.Request) (*Result, error) {
	if req.Method == "GET" {
		res := c.FetchURL(ctx, localdb.JoinURL(req.Host, req.Target))
		return res, res.Err
	}
	url := localdb.JoinURL(req.Host, req.Target)
	rec, status := c.db.Lookup(url)
	stages := rec.Stages
	if status != localdb.Blocked {
		if e, ok := c.globalLookup(url); ok {
			status = localdb.Blocked
			stages = globaldb.FromWire(e.Stages)
		}
	}

	start := c.clock.Now()
	if status == localdb.Blocked {
		app := c.selectApproach(trace.SpanFromContext(ctx), url, stages)
		if app == nil {
			return nil, fmt.Errorf("core: no approach can carry %s %s", req.Method, url)
		}
		resp, err := c.sendVia(ctx, app, req)
		if err != nil {
			return nil, err
		}
		c.bump("served-circum")
		return &Result{URL: url, Resp: resp, Source: app.Name, Status: status, Stages: stages, Took: c.clock.Since(start)}, nil
	}

	// Unmeasured or clean: one direct attempt, never duplicated. A failure
	// is reported to the caller; the next GET will measure properly.
	resp, err := c.sendDirect(ctx, req)
	if err != nil {
		c.bump("post-direct-failed")
		return nil, fmt.Errorf("core: direct %s %s: %w", req.Method, url, err)
	}
	c.bump("served-direct")
	return &Result{URL: url, Resp: resp, Source: "direct", Status: status, Took: c.clock.Since(start)}, nil
}

// sendDirect performs one non-GET exchange on the direct path, resolving
// via LDNS with GDNS fallback.
func (c *Client) sendDirect(ctx context.Context, req *httpx.Request) (*httpx.Response, error) {
	host, _ := localdb.SplitURL(req.Host)
	ip := host
	if !isIPLiteralCore(host) {
		addr, err := CombinedLookup(c.ldns, c.gdns)(ctx, host)
		if err != nil {
			return nil, err
		}
		ip = addr
	}
	hc := &httpx.Client{Dial: c.det.Dial, Clock: c.clock}
	return hc.Do(ctx, ip+":80", req)
}

// sendVia performs one non-GET exchange through an approach's transport:
// same dialer, resolution, and (pseudo-)TLS/SNI rules as its GET path.
func (c *Client) sendVia(ctx context.Context, app *Approach, req *httpx.Request) (*httpx.Response, error) {
	t := app.Transport
	resp, err := t.RoundTrip(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("core: %s %s via %s: %w", req.Method, req.Host+req.Target, app.Name, err)
	}
	return resp, nil
}

func isIPLiteralCore(s string) bool {
	dots := 0
	for _, c := range s {
		switch {
		case c == '.':
			dots++
		case c < '0' || c > '9':
			return false
		}
	}
	return dots == 3
}
