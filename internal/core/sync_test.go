package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"csaw/internal/core"
	"csaw/internal/globaldb"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/worldgen"
)

// newSyncWorld builds a world plus a client whose background loops stay
// quiet (hour-long sync interval, no ASN probe) so tests drive SyncNow
// deterministically. It also returns the client's globaldb handle and host
// so tests can register and seed the DB directly.
func newSyncWorld(t *testing.T, mutate func(*core.Config), isps ...string) (*worldgen.World, *core.Client, *globaldb.Client, *netem.Host) {
	t.Helper()
	var gdb *globaldb.Client
	var host *netem.Host
	w, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.SyncInterval = time.Hour
		cfg.ASNProbeAddr = ""
		if mutate != nil {
			mutate(cfg)
		}
		gdb = cfg.GlobalDB
		host = cfg.Host
	}, isps...)
	return w, c, gdb, host
}

func TestSyncPartialASFailure(t *testing.T) {
	// A multihomed client keeps the reachable AS's fresh list AND the failed
	// AS's stale entries when one per-AS fetch dies mid-round.
	w, c, _, host := newSyncWorld(t, nil, "ISP-A", "ISP-B")
	ctx := context.Background()

	// Seed the DB with one entry per AS via a direct reporter.
	seeder := &globaldb.Client{
		Addr: w.GlobalDBAddr, Host: worldgen.GlobalDBHost,
		Clock: w.Clock, ReportDial: host.Dial, FetchDial: host.Dial,
	}
	if err := seeder.Register(ctx, "human-seeder"); err != nil {
		t.Fatal(err)
	}
	asA, asB := 17557, 38193
	if _, err := seeder.Report(ctx, []localdb.Record{
		{URL: "a.example/", ASN: asA, Status: localdb.Blocked, Stages: []localdb.Stage{{Type: localdb.BlockDNS}}},
		{URL: "b.example/", ASN: asB, Status: localdb.Blocked, Stages: []localdb.Stage{{Type: localdb.BlockHTTP, Detail: "blockpage"}}},
	}); err != nil {
		t.Fatal(err)
	}

	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	if n := c.GlobalCacheLen(); n != 2 {
		t.Fatalf("cache = %d entries after healthy sync, want 2", n)
	}

	// Fail only AS-B fetches: the round errors but keeps both the fresh
	// AS-A list and AS-B's stale entry.
	w.GlobalDB.Faults().SetPathFilter(fmt.Sprintf("asn=%d", asB))
	w.GlobalDB.Faults().SetOutage(true)
	err := c.SyncNow(ctx)
	if err == nil || errors.Is(err, core.ErrSyncDegraded) {
		t.Fatalf("partial failure should surface an error, got %v", err)
	}
	if n := c.GlobalCacheLen(); n != 2 {
		t.Fatalf("cache = %d entries after partial failure, want 2 (stale AS-B entry kept)", n)
	}
	st := c.SyncStats()
	if st.Partial != 1 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want Partial=1 Failures=1", st)
	}
	if c.Counter("sync-fetch-failures") != 1 {
		t.Fatalf("sync-fetch-failures = %d, want 1", c.Counter("sync-fetch-failures"))
	}

	// Recovery clears the error path and refreshes everything.
	w.GlobalDB.Faults().SetOutage(false)
	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	if st := c.SyncStats(); st.LastError != "" || st.ConsecutiveFailures != 0 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestSyncCircuitBreaker(t *testing.T) {
	// Consecutive failures open the breaker (local-only mode, no network
	// traffic); after the reset window a half-open probe closes it again,
	// and no pending report is lost or double-posted across the outage.
	w, c, gdb, _ := newSyncWorld(t, func(cfg *core.Config) {
		cfg.Sync = core.SyncPolicy{Retries: -1, BreakerAfter: 2, BreakerReset: 10 * time.Minute}
	}, "ISP-A")
	ctx := context.Background()
	if err := gdb.Register(ctx, "human-test"); err != nil {
		t.Fatal(err)
	}
	c.DB().Put("blocked.example/", 17557, localdb.Blocked, []localdb.Stage{{Type: localdb.BlockDNS}})

	w.GlobalDB.Faults().SetOutage(true)
	for i := 0; i < 2; i++ {
		if err := c.SyncNow(ctx); err == nil {
			t.Fatalf("sync %d succeeded during outage", i)
		}
	}
	if !c.Degraded() {
		t.Fatal("breaker still closed after BreakerAfter failures")
	}
	injected := w.GlobalDB.Faults().Injected()
	if err := c.SyncNow(ctx); !errors.Is(err, core.ErrSyncDegraded) {
		t.Fatalf("open-breaker sync = %v, want ErrSyncDegraded", err)
	}
	if got := w.GlobalDB.Faults().Injected(); got != injected {
		t.Fatalf("open breaker still generated traffic (%d → %d requests faulted)", injected, got)
	}
	if c.Counter("sync-skipped") != 1 {
		t.Fatalf("sync-skipped = %d, want 1", c.Counter("sync-skipped"))
	}

	// The outage ends; after the reset window a half-open probe recovers.
	w.GlobalDB.Faults().SetOutage(false)
	if err := c.SyncNow(ctx); !errors.Is(err, core.ErrSyncDegraded) {
		t.Fatalf("pre-window sync = %v, want still degraded", err)
	}
	w.Clock.Advance(11 * time.Minute)
	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if c.Degraded() {
		t.Fatal("breaker still open after successful probe")
	}
	if c.Counter("sync-circuit-open") != 1 || c.Counter("sync-circuit-close") != 1 {
		t.Fatalf("breaker counters open=%d close=%d, want 1/1",
			c.Counter("sync-circuit-open"), c.Counter("sync-circuit-close"))
	}

	// Exactly-once across the outage: the one pending report was posted
	// once, and nothing is pending anymore.
	if up := w.GlobalDB.StatsSnapshot().Updates; up != 1 {
		t.Fatalf("server updates = %d, want exactly 1 across the outage", up)
	}
	if left := len(c.DB().PendingGlobal()); left != 0 {
		t.Fatalf("%d reports still pending after recovery", left)
	}
}

func TestSyncBatchingAndOverflow(t *testing.T) {
	// MaxPending bounds a round's report intake (overflow deferred, not
	// lost); MaxBatch splits the posts; every record is posted exactly once.
	w, c, gdb, _ := newSyncWorld(t, func(cfg *core.Config) {
		cfg.Sync = core.SyncPolicy{MaxBatch: 2, MaxPending: 3}
	}, "ISP-A")
	ctx := context.Background()
	if err := gdb.Register(ctx, "human-test"); err != nil {
		t.Fatal(err)
	}
	const total = 5
	for i := 0; i < total; i++ {
		c.DB().Put(fmt.Sprintf("blocked-%d.example/", i), 17557, localdb.Blocked,
			[]localdb.Stage{{Type: localdb.BlockDNS}})
	}

	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("first round: %v", err)
	}
	if st := c.SyncStats(); st.Posted != 3 || st.Deferred != 2 {
		t.Fatalf("stats after first round = %+v, want Posted=3 Deferred=2", st)
	}
	if left := len(c.DB().PendingGlobal()); left != 2 {
		t.Fatalf("pending after first round = %d, want 2", left)
	}

	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("second round: %v", err)
	}
	if st := c.SyncStats(); st.Posted != total {
		t.Fatalf("posted = %d, want %d", st.Posted, total)
	}
	if up := w.GlobalDB.StatsSnapshot().Updates; up != total {
		t.Fatalf("server updates = %d, want %d (each record exactly once)", up, total)
	}
}

func TestSyncReportFailureRetriesNextRound(t *testing.T) {
	// A failed Report leaves its records pending; the next round posts them
	// without double-posting anything already acknowledged.
	w, c, gdb, _ := newSyncWorld(t, func(cfg *core.Config) {
		cfg.Sync = core.SyncPolicy{MaxBatch: 2, Retries: -1}
	}, "ISP-A")
	ctx := context.Background()
	if err := gdb.Register(ctx, "human-test"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.DB().Put(fmt.Sprintf("blocked-%d.example/", i), 17557, localdb.Blocked,
			[]localdb.Stage{{Type: localdb.BlockDNS}})
	}
	if err := c.SyncNow(ctx); err != nil { // warm-up round with no faults
		t.Fatalf("warm-up: %v", err)
	}
	if up := w.GlobalDB.StatsSnapshot().Updates; up != 4 {
		t.Fatalf("updates = %d, want 4", up)
	}

	// Now 2 fresh records, and the very next report post fails.
	c.DB().Put("late-0.example/", 17557, localdb.Blocked, []localdb.Stage{{Type: localdb.BlockDNS}})
	c.DB().Put("late-1.example/", 17557, localdb.Blocked, []localdb.Stage{{Type: localdb.BlockDNS}})
	w.GlobalDB.Faults().SetPathFilter(globaldb.PathReport)
	w.GlobalDB.Faults().FailNext(1)
	if err := c.SyncNow(ctx); err == nil {
		t.Fatal("round with failed report returned nil")
	}
	if left := len(c.DB().PendingGlobal()); left != 2 {
		t.Fatalf("pending after failed report = %d, want 2 (kept for retry)", left)
	}
	if err := c.SyncNow(ctx); err != nil {
		t.Fatalf("retry round: %v", err)
	}
	if up := w.GlobalDB.StatsSnapshot().Updates; up != 6 {
		t.Fatalf("updates = %d, want 6 (no loss, no double-post)", up)
	}
}

func TestSyncBackgroundRetryRecovers(t *testing.T) {
	// The background loop retries a failed round with backoff instead of
	// dropping the error on the floor (the old `_ = c.SyncNow(ctx)`).
	w, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.SyncInterval = 30 * time.Second // 100ms real at scale 300
		cfg.ASNProbeAddr = ""
		cfg.Sync = core.SyncPolicy{Retries: 2, BackoffBase: 2 * time.Second, BackoffMax: 5 * time.Second}
	}, "ISP-A")
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The next round's first fetch fails; its in-loop retry must recover.
	w.GlobalDB.Faults().SetPathFilter("asn=")
	w.GlobalDB.Faults().FailNext(1)

	deadline := time.Now().Add(10 * time.Second) //lint:allow-realtime polling a background goroutine's progress needs wall time
	for time.Now().Before(deadline) {
		st := c.SyncStats()
		if st.Retries >= 1 && st.OK >= 2 && !st.Degraded && st.ConsecutiveFailures == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond) //lint:allow-realtime see above
	}
	t.Fatalf("background retry never recovered: %+v", c.SyncStats())
}

func TestSyncBackoffSchedule(t *testing.T) {
	p := core.SyncPolicy{BackoffBase: time.Second, BackoffMax: 8 * time.Second, JitterFrac: 0.5}
	for i, want := range []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second,
	} {
		if got := p.Backoff(i, 0); got != want {
			t.Errorf("Backoff(%d, 0) = %v, want %v", i, got, want)
		}
	}
	// Full jitter extends by JitterFrac of the delay.
	if got := p.Backoff(1, 1.0); got != 3*time.Second {
		t.Errorf("Backoff(1, 1.0) = %v, want 3s", got)
	}
	// Zero policy uses the documented defaults.
	var zero core.SyncPolicy
	if got := zero.Backoff(0, 0); got != core.DefaultSyncBackoffBase {
		t.Errorf("zero policy base = %v", got)
	}
}
