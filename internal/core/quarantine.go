package core

import (
	"time"

	"csaw/internal/trace"
)

// Quarantine defaults: two consecutive hard failures bench an approach for
// two minutes; each re-bench doubles the sentence up to half an hour.
const (
	DefaultQuarantineStrikes = 2
	DefaultBenchBase         = 2 * time.Minute
	DefaultBenchMax          = 30 * time.Minute
)

// QuarantinePolicy tunes approach quarantine: hard circumvention failures
// bench an approach (it stops being selected), the bench expires into a
// probation probe, and a probation failure re-benches with exponential
// backoff — so a blacklisted approach costs one failed fetch per backoff
// period instead of one per fetch, while still being re-probed often
// enough to notice the censor relenting. The zero value selects the
// documented defaults; Strikes < 0 disables quarantine entirely.
type QuarantinePolicy struct {
	// Strikes is how many consecutive failures bench an approach
	// (default DefaultQuarantineStrikes; negative disables quarantine).
	Strikes int
	// BenchBase is the first bench duration (default DefaultBenchBase);
	// each subsequent bench doubles it, capped at BenchMax
	// (default DefaultBenchMax).
	BenchBase time.Duration
	BenchMax  time.Duration
}

func (p QuarantinePolicy) disabled() bool { return p.Strikes < 0 }

func (p QuarantinePolicy) strikes() int {
	if p.Strikes > 0 {
		return p.Strikes
	}
	return DefaultQuarantineStrikes
}

func (p QuarantinePolicy) benchFor(benches int) time.Duration {
	base := p.BenchBase
	if base <= 0 {
		base = DefaultBenchBase
	}
	max := p.BenchMax
	if max <= 0 {
		max = DefaultBenchMax
	}
	d := base << (benches - 1)
	if benches > 30 || d <= 0 || d > max { // shift overflow guard + cap
		d = max
	}
	return d
}

// quarState is one approach's quarantine record (guarded by Client.mu).
type quarState struct {
	strikes int       // consecutive failures since the last success
	benches int       // completed bench count — the backoff exponent
	until   time.Time // benched until; an expired until means probation
	paroled bool      // bench expiry observed: probation probe armed
}

// quarStrike records a hard circumvention failure. Enough consecutive
// strikes bench the approach; any failure while on probation (benches > 0)
// re-benches immediately with a doubled sentence.
func (c *Client) quarStrike(sp *trace.Span, a *Approach) {
	pol := c.cfg.Quarantine
	if pol.disabled() {
		return
	}
	c.mu.Lock()
	if c.quar == nil {
		c.quar = make(map[string]*quarState)
	}
	s := c.quar[a.Name]
	if s == nil {
		s = &quarState{}
		c.quar[a.Name] = s
	}
	s.strikes++
	bench := s.benches > 0 || s.strikes >= pol.strikes()
	if bench {
		s.benches++
		s.strikes = 0
		s.paroled = false
		s.until = c.clock.Now().Add(pol.benchFor(s.benches))
	}
	c.mu.Unlock()
	if bench {
		c.bump("quarantine-bench")
		sp.Event("quarantine", "bench", a.Name)
	}
}

// quarRestore clears an approach's quarantine record after a successful
// fetch: probation served, full trust restored.
func (c *Client) quarRestore(sp *trace.Span, a *Approach) {
	if c.cfg.Quarantine.disabled() {
		return
	}
	c.mu.Lock()
	s := c.quar[a.Name]
	benched := s != nil && s.benches > 0
	if s != nil {
		delete(c.quar, a.Name)
	}
	c.mu.Unlock()
	if benched {
		c.bump("quarantine-restore")
		sp.Event("quarantine", "restore", a.Name)
	}
}

// quarAllowed reports whether an approach may be selected: never benched,
// or its bench has expired (a probation probe). The first call that
// observes an expired bench paroles the approach: its moving averages are
// reset so the probation probe actually runs (§4.3.2 selection scores
// untried approaches optimistically) — the averages were poisoned by the
// failures that benched it, which may describe a censor condition (e.g.
// residual censorship) that has since passed. A probe success records a
// fresh average and restores trust; a probe failure re-benches with
// doubled backoff (quarStrike), so a genuinely dead approach costs one
// probe per exponential backoff period.
func (c *Client) quarAllowed(a *Approach) bool {
	if c.cfg.Quarantine.disabled() {
		return true
	}
	c.mu.Lock()
	s := c.quar[a.Name]
	if s == nil || s.until.IsZero() {
		c.mu.Unlock()
		return true
	}
	if c.clock.Now().Before(s.until) {
		c.mu.Unlock()
		return false
	}
	parole := !s.paroled
	if parole {
		s.paroled = true
		c.ewmaResetLocked(a)
	}
	c.mu.Unlock()
	if parole {
		c.bump("quarantine-parole")
	}
	return true
}

// quarFilterTiers drops benched approaches from both selection tiers at
// once, so the override decision considers their union: benched locals must
// not shadow healthy relays, but when *everything* is benched the original
// tiers come back — a client with only benched approaches must still try
// something — and the override is counted.
func (c *Client) quarFilterTiers(sp *trace.Span, locals, relays []*Approach) ([]*Approach, []*Approach) {
	if c.cfg.Quarantine.disabled() {
		return locals, relays
	}
	allowed := func(cands []*Approach) []*Approach {
		out := cands[:0:0]
		for _, a := range cands {
			if c.quarAllowed(a) {
				out = append(out, a)
			}
		}
		return out
	}
	fl, fr := allowed(locals), allowed(relays)
	if len(fl)+len(fr) == 0 && len(locals)+len(relays) > 0 {
		c.bump("quarantine-override")
		sp.Event("quarantine", "override", "all-benched")
		return locals, relays
	}
	return fl, fr
}
