package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"csaw/internal/blockpage"
	"csaw/internal/detect"
	"csaw/internal/globaldb"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/trace"
)

// Result is one proxied URL fetch.
type Result struct {
	URL    string
	Resp   *httpx.Response
	Source string // "direct" or the approach name
	Status localdb.Status
	Stages []localdb.Stage
	Took   time.Duration
	Err    error
}

// OK reports whether a response was served.
func (r *Result) OK() bool { return r.Err == nil && r.Resp != nil }

// Fetch implements web.Fetcher: the browser-facing entry point.
func (c *Client) Fetch(ctx context.Context, host, path string) (*httpx.Response, error) {
	res := c.FetchURL(ctx, localdb.JoinURL(host, path))
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Resp, nil
}

// FetchURL runs Algorithm 1 for one URL ("host/path").
func (c *Client) FetchURL(ctx context.Context, url string) (res *Result) {
	start := c.clock.Now()
	defer func() { res.Took = c.clock.Since(start) }()

	url = localdb.JoinURL(localdb.SplitURL(url))
	// Flight recorder: one span per fetch; emission waits for background
	// lanes (the redundant copy can outlive this call).
	sp := c.tracer.Start(c.cfg.Host.Name(), c.traceSeq.Add(1), url)
	if sp != nil {
		ctx = trace.WithSpan(ctx, sp)
		defer func() { sp.Finish(res.Source, res.Status.String(), res.Err) }()
	}
	rec, status := c.db.Lookup(url)
	stages := rec.Stages
	fromGlobal := false
	// Stale-verdict re-detection: a verdict measured before the censor's
	// current policy epoch (Config.CensorEpoch) describes an adversary that
	// no longer exists — treat the URL as unmeasured and re-detect.
	epoch := c.censorEpoch()
	if status != localdb.NotMeasured && !epoch.IsZero() && rec.Measured.Before(epoch) {
		c.bump("stale-verdict")
		sp.Event("db", "stale-verdict", status.String())
		status, stages = localdb.NotMeasured, nil
	}
	// Algorithm 1: consult the global list only when the local_DB does not
	// already say blocked.
	if status != localdb.Blocked {
		if e, ok := c.globalLookup(url); ok {
			if !epoch.IsZero() && e.LastTp.Before(epoch) {
				// The crowd's report predates the flip too: ignore it rather
				// than circumvent on outdated intelligence.
				c.bump("stale-global-ignored")
				sp.Event("db", "stale-global", "ignored")
			} else {
				status = localdb.Blocked
				stages = globaldb.FromWire(e.Stages)
				fromGlobal = true
			}
		}
	}
	if status == localdb.Blocked && c.Multihomed() && !c.cfg.NoMultihoming {
		// §4.4: under multihoming, circumvent for the union of the blocking
		// observed across providers (the "more strict censorship").
		stages = c.mergedStages(url, stages)
	}
	if sp != nil {
		detail := status.String()
		if fromGlobal {
			detail += " global"
		}
		sp.Event("db", "lookup", detail)
	}

	switch status {
	case localdb.Blocked:
		return c.fetchBlocked(ctx, url, stages, fromGlobal)
	case localdb.NotBlocked:
		if c.cfg.NoSelectiveRedundancy {
			return c.fetchUnmeasured(ctx, url)
		}
		return c.fetchKnownClean(ctx, url)
	default:
		return c.fetchUnmeasured(ctx, url)
	}
}

// globalLookup consults the local copy of the global_DB (exact URL, then
// the host's base URL).
func (c *Client) globalLookup(url string) (globaldb.Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.globalCache[url]; ok {
		return e, true
	}
	e, ok := c.globalCache[localdb.BaseURL(url)]
	return e, ok
}

// mergedStages unions locally known stages with globally reported ones.
func (c *Client) mergedStages(url string, stages []localdb.Stage) []localdb.Stage {
	seen := make(map[localdb.BlockType]bool, len(stages))
	out := append([]localdb.Stage(nil), stages...)
	for _, s := range stages {
		seen[s.Type] = true
	}
	if e, ok := c.globalLookup(url); ok {
		for _, ws := range globaldb.FromWire(e.Stages) {
			if !seen[ws.Type] {
				seen[ws.Type] = true
				out = append(out, ws)
			}
		}
	}
	return out
}

// censorEpoch evaluates the stale-verdict oracle (zero when unset).
func (c *Client) censorEpoch() time.Time {
	if c.cfg.CensorEpoch == nil {
		return time.Time{}
	}
	return c.cfg.CensorEpoch()
}

// recordOutcome writes a detection outcome into the local_DB. A
// not-measured status is an *aborted* measurement (client shutdown,
// failover-budget expiry — see detect's context rewrite), not a verdict;
// recording it would evict a real one.
func (c *Client) recordOutcome(url string, status localdb.Status, stages []localdb.Stage) {
	if status == localdb.NotMeasured {
		return
	}
	c.db.Put(url, c.currentASN(), status, stages)
}

// fetchKnownClean serves a URL the DB says is unblocked: fetch the direct
// path (which implicitly measures it — churn scenario B) without a
// redundant copy (selective redundancy, §4.3.1).
func (c *Client) fetchKnownClean(ctx context.Context, url string) *Result {
	lane := trace.SpanFromContext(ctx).Lane("direct")
	out := c.det.Measure(trace.WithLane(ctx, lane), url, detect.HTTP)
	lane.Close()
	if out.Status == localdb.NotMeasured {
		// Aborted measurement (shutdown / budget expiry): no verdict, no page.
		return &Result{URL: url, Source: "direct", Status: out.Status, Err: out.Err}
	}
	if !out.Blocked() {
		c.recordOutcome(url, localdb.NotBlocked, nil)
		c.bump("served-direct")
		return &Result{URL: url, Resp: out.Response, Source: "direct", Status: localdb.NotBlocked}
	}
	// The URL got blocked since we last looked (Unblocked→Blocked churn):
	// circumvent now, confirming phase-1 suspicions against the copy.
	c.bump("churn-unblocked-to-blocked")
	return c.confirmAndServe(ctx, url, out)
}

// fetchUnmeasured handles status not-measured: redundant requests on the
// direct path and one or more circumvention paths (§4.3.1).
func (c *Client) fetchUnmeasured(ctx context.Context, url string) *Result {
	sp := trace.SpanFromContext(ctx)
	if c.cfg.Serial {
		lane := sp.Lane("direct")
		out := c.det.Measure(trace.WithLane(ctx, lane), url, detect.HTTP)
		lane.Close()
		if out.Status == localdb.NotMeasured {
			return &Result{URL: url, Source: "direct", Status: out.Status, Err: out.Err}
		}
		if !out.Blocked() {
			c.recordOutcome(url, localdb.NotBlocked, nil)
			c.bump("served-direct")
			return &Result{URL: url, Resp: out.Response, Source: "direct", Status: localdb.NotBlocked}
		}
		return c.confirmAndServe(ctx, url, out)
	}

	// The direct lane is opened before the goroutine launches so the span
	// cannot emit before the background measurement lands its events. The
	// measurement context is additionally stop-aware: a client Close must
	// be able to unhang a detector stalled on a blackholed connect whose
	// virtual timeout will never fire again.
	directLane := sp.Lane("direct")
	directCh := make(chan detect.Outcome, 1)
	dctx, dcancel := c.stopCtx(ctx)
	go func() {
		defer dcancel()
		out := c.det.Measure(trace.WithLane(dctx, directLane), url, detect.HTTP)
		directLane.Close()
		directCh <- out
	}()

	circumCh := make(chan circumOut, 1)
	launchNow := make(chan struct{})
	var copyMu sync.Mutex
	copyLaunched, copySkipped := false, false
	// The redundant copy must be able to outlive this call: when the direct
	// response is served first, the copy keeps running in the background so
	// phase 2 can still catch a phase-1 false negative (§4.3.1). The
	// transport's own timeout bounds it — and client shutdown cancels it.
	cctx, ccancel := c.stopCtx(context.WithoutCancel(ctx))
	// The copy goroutine opens circumvention lanes after this call may have
	// returned; the hold keeps the span from emitting (and being pool-
	// recycled) until it is done.
	sp.Hold()
	go func() {
		defer sp.Release()
		defer ccancel()
		if d := c.cfg.RedundantDelay; d > 0 {
			// Staggered copy: if the direct path answers within the delay,
			// the redundant request is never sent (§7.1, footnote 10).
			select {
			case <-c.clock.After(d):
			case <-launchNow:
			case <-cctx.Done():
				circumCh <- circumOut{err: cctx.Err()}
				return
			}
		}
		copyMu.Lock()
		if copySkipped {
			copyMu.Unlock()
			circumCh <- circumOut{err: fmt.Errorf("core: redundant copy skipped")}
			return
		}
		copyLaunched = true
		copyMu.Unlock()
		c.bump("circum-copy-sent")
		resp, source, err := c.circumFetch(cctx, url, nil)
		circumCh <- circumOut{resp: resp, source: source, err: err}
	}()

	select {
	case out := <-directCh:
		if out.Status == localdb.NotMeasured {
			// Aborted measurement (shutdown): nothing to serve or record.
			return &Result{URL: url, Source: "direct", Status: out.Status, Err: out.Err}
		}
		if !out.Blocked() && !out.Suspected {
			// Clean direct response: serve immediately. If the copy has
			// not been sent yet (still inside the stagger delay), it never
			// will be; if it was, it completes in the background and phase
			// 2 still gets to catch a phase-1 false negative via refresh.
			copyMu.Lock()
			if !copyLaunched && c.cfg.RedundantDelay > 0 {
				copySkipped = true
			}
			copyMu.Unlock()
			c.finishPhase2FalseNegative(url, out, circumCh)
			c.recordOutcome(url, localdb.NotBlocked, nil)
			c.bump("served-direct")
			return &Result{URL: url, Resp: out.Response, Source: "direct", Status: localdb.NotBlocked}
		}
		// Direct path blocked or suspected: we need the circumvented copy.
		close(launchNow)
		cr := <-circumCh
		return c.settle(url, out, cr.resp, cr.source, cr.err)
	case cr := <-circumCh:
		if cr.err == nil {
			// The circumvention path won the race: serve it (§7.1 "the
			// faster of the two responses is shown to the user") and let
			// the direct measurement finish in the background.
			c.bump("served-circum")
			c.bg.Add(1)
			go func() {
				defer c.bg.Done()
				// Honor shutdown: Close must not wait behind a direct
				// measurement that can no longer finish (directCh is
				// buffered, so the measuring goroutine never blocks).
				select {
				case out := <-directCh:
					c.settleBackground(url, out, cr.resp)
				case <-c.stop:
				}
			}()
			return &Result{URL: url, Resp: cr.resp, Source: cr.source, Status: localdb.NotMeasured}
		}
		// Circumvention failed; fall back to whatever the direct path says.
		out := <-directCh
		return c.settle(url, out, nil, "", cr.err)
	}
}

// confirmAndServe circumvents for a URL whose direct measurement concluded
// blocking, applying phase 2 to suspected block pages.
func (c *Client) confirmAndServe(ctx context.Context, url string, out detect.Outcome) *Result {
	resp, source, err := c.circumFetch(ctx, url, out.Stages)
	return c.settle(url, out, resp, source, err)
}

// settle reconciles the direct outcome with the circumvented copy, updates
// the DB, and chooses what to serve.
func (c *Client) settle(url string, out detect.Outcome, circ *httpx.Response, source string, circErr error) *Result {
	if circErr != nil {
		circ = nil
	}
	status, stages := c.reconcile(url, out, circ)
	if status == localdb.NotBlocked && out.Response != nil {
		c.bump("served-direct")
		return &Result{URL: url, Resp: out.Response, Source: "direct", Status: status}
	}
	if circ == nil {
		// Blocked and no circumvented copy: surface the block page itself
		// (the least-bad option) or the failure.
		if out.Response != nil {
			c.bump("served-blockpage")
			return &Result{URL: url, Resp: out.Response, Source: "direct", Status: status, Stages: stages}
		}
		err := circErr
		if err == nil {
			err = out.Err
		}
		if err == nil {
			err = fmt.Errorf("core: %s blocked and no circumvention available", url)
		}
		return &Result{URL: url, Source: source, Status: status, Stages: stages, Err: err}
	}
	c.bump("served-circum")
	return &Result{URL: url, Resp: circ, Source: source, Status: status, Stages: stages}
}

// reconcile applies phase 2 (§4.3.1) and records the final verdict.
func (c *Client) reconcile(url string, out detect.Outcome, circ *httpx.Response) (localdb.Status, []localdb.Stage) {
	status := out.Status
	stages := out.Stages
	if out.Suspected && circ != nil {
		if blockpage.Phase2(respLen(out.Response), len(circ.Body)) {
			c.bump("phase2-confirm")
		} else {
			// Phase-1 false positive: the direct page was real.
			c.bump("phase2-overturn")
			stages = dropBlockPageStage(stages)
			if len(stages) == 0 {
				status = localdb.NotBlocked
			}
		}
	}
	c.recordOutcome(url, status, stages)
	return status, stages
}

// settleBackground finishes measurement bookkeeping after the user was
// already served the circumvented copy, including the phase-1
// false-negative correction (page refresh, §4.3.1).
func (c *Client) settleBackground(url string, out detect.Outcome, circ *httpx.Response) localdb.Status {
	status := out.Status
	stages := out.Stages
	switch {
	case out.Suspected && circ != nil:
		if blockpage.Phase2(respLen(out.Response), len(circ.Body)) {
			c.bump("phase2-confirm")
		} else {
			c.bump("phase2-overturn")
			stages = dropBlockPageStage(stages)
			if len(stages) == 0 {
				status = localdb.NotBlocked
			}
		}
	case !out.Blocked() && out.Response != nil && circ != nil:
		// Phase-1 called it clean; the circumvented copy disagrees on size
		// badly enough to mean manipulation → issue a refresh.
		if blockpage.Phase2(respLen(out.Response), len(circ.Body)) {
			c.bump("refresh")
			status = localdb.Blocked
			stages = []localdb.Stage{{Type: localdb.BlockContent, Detail: "size-mismatch"}}
		}
	}
	c.recordOutcome(url, status, stages)
	return status
}

// circumOut is the result of one circumvention attempt.
type circumOut struct {
	resp   *httpx.Response
	source string
	err    error
}

// finishPhase2FalseNegative arms the background page-refresh check for a
// direct response already served to the user.
func (c *Client) finishPhase2FalseNegative(url string, out detect.Outcome, circumCh <-chan circumOut) {
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		// Honor shutdown: the copy sender never blocks (circumCh is
		// buffered), so abandoning the receive leaks nothing.
		select {
		case cr := <-circumCh:
			if cr.err != nil || cr.resp == nil {
				return
			}
			c.settleBackground(url, out, cr.resp)
		case <-c.stop:
		}
	}()
}

func respLen(r *httpx.Response) int {
	if r == nil {
		return 0
	}
	return len(r.Body)
}

// dropBlockPageStage removes the phase-1 block-page stage, keeping any
// independently detected stages (e.g. a DNS redirect).
func dropBlockPageStage(stages []localdb.Stage) []localdb.Stage {
	var out []localdb.Stage
	for _, s := range stages {
		if (s.Type == localdb.BlockHTTP || s.Type == localdb.BlockSNI) &&
			(s.Detail == "blockpage" || s.Detail == "blockpage-redirect") {
			continue
		}
		out = append(out, s)
	}
	return out
}

// fetchBlocked serves a URL known (locally or globally) to be blocked:
// circumvent with the selected approach; for globally-reported URLs on
// relay approaches, re-measure the direct path with probability p
// (§4.3.1 "low overhead vs resilience to false reports"). Local-fix URLs
// use the direct path anyway, which measures it by default (Table 6 note).
func (c *Client) fetchBlocked(ctx context.Context, url string, stages []localdb.Stage, fromGlobal bool) *Result {
	app := c.selectApproach(trace.SpanFromContext(ctx), url, stages)
	if fromGlobal && c.roll() < c.cfg.p() {
		// Validate the global report against the direct path. The
		// measurement runs in the background but draws on the client's
		// shared connection budget — slots held through long detection
		// timeouts are what makes p cost PLT under load (Table 6).
		c.bump("direct-remeasure")
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			// Stop-aware: Close cancels the measurement even when the
			// virtual clock (and thus the timeout below) never advances
			// again.
			sctx, scancel := c.stopCtx(context.Background())
			defer scancel()
			mctx, cancel := c.clock.WithTimeout(sctx, time.Minute)
			defer cancel()
			out := c.det.Measure(mctx, url, detect.HTTP)
			if out.Status == localdb.NotMeasured {
				return // aborted mid-measure: not a verdict
			}
			if !out.Blocked() {
				c.bump("false-report-corrected")
				c.recordOutcome(url, localdb.NotBlocked, nil)
			} else {
				c.recordOutcome(url, out.Status, out.Stages)
			}
		}()
	}
	resp, source, err := c.circumFetchVia(ctx, app, url, stages)
	if err != nil {
		return &Result{URL: url, Source: source, Status: localdb.Blocked, Stages: stages, Err: err}
	}
	c.bump("served-circum")
	return &Result{URL: url, Resp: resp, Source: source, Status: localdb.Blocked, Stages: stages}
}

// roll draws a uniform [0,1) sample.
func (c *Client) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}
