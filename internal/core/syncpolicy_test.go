package core

import (
	"errors"
	"testing"
	"time"

	"csaw/internal/vtime"
)

// syncClient builds the minimal Client the breaker state machine needs: a
// clock, a policy, and a counters map (same shape as quarClient).
func syncClient(pol SyncPolicy) *Client {
	return &Client{
		cfg:      Config{Sync: pol},
		clock:    vtime.New(1),
		counters: make(map[string]int),
	}
}

// TestSyncBackoffSchedule pins the deterministic (jitter-free) backoff
// ladder: base doubled per attempt, capped at max, defaults filled in.
func TestSyncBackoffSchedule(t *testing.T) {
	for _, tc := range []struct {
		name    string
		pol     SyncPolicy
		attempt int
		want    time.Duration
	}{
		{"default-first", SyncPolicy{}, 0, DefaultSyncBackoffBase},
		{"default-doubles", SyncPolicy{}, 1, 2 * DefaultSyncBackoffBase},
		{"default-doubles-again", SyncPolicy{}, 2, 4 * DefaultSyncBackoffBase},
		{"default-capped", SyncPolicy{}, 10, DefaultSyncBackoffMax},
		{"custom-base", SyncPolicy{BackoffBase: time.Second}, 2, 4 * time.Second},
		{"custom-cap", SyncPolicy{BackoffBase: time.Second, BackoffMax: 3 * time.Second}, 2, 3 * time.Second},
		{"huge-attempt-no-overflow", SyncPolicy{BackoffBase: time.Second, BackoffMax: 8 * time.Second}, 200, 8 * time.Second},
	} {
		if got := tc.pol.Backoff(tc.attempt, 0); got != tc.want {
			t.Errorf("%s: Backoff(%d, 0) = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
}

// TestSyncBackoffJitterBounds checks the jitter contract: for jitter j in
// [0,1) the delay is extended by exactly j·JitterFrac of itself, so it stays
// within [d, d·(1+JitterFrac)).
func TestSyncBackoffJitterBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  SyncPolicy
	}{
		{"default-frac", SyncPolicy{}},
		{"half-frac", SyncPolicy{JitterFrac: 0.5, BackoffBase: 10 * time.Second}},
		{"tiny-frac", SyncPolicy{JitterFrac: 0.01, BackoffBase: time.Minute, BackoffMax: time.Hour}},
	} {
		for attempt := 0; attempt < 6; attempt++ {
			base := tc.pol.Backoff(attempt, 0)
			hi := time.Duration(float64(base) * (1 + tc.pol.jitterFrac()))
			for _, j := range []float64{0.001, 0.25, 0.5, 0.999} {
				got := tc.pol.Backoff(attempt, j)
				if got < base || got >= hi {
					t.Errorf("%s: Backoff(%d, %v) = %v outside [%v, %v)",
						tc.name, attempt, j, got, base, hi)
				}
				want := base + time.Duration(j*tc.pol.jitterFrac()*float64(base))
				if got != want {
					t.Errorf("%s: Backoff(%d, %v) = %v, want exactly %v",
						tc.name, attempt, j, got, want)
				}
			}
			// Jitter must be monotone in j for a fixed attempt.
			if a, b := tc.pol.Backoff(attempt, 0.1), tc.pol.Backoff(attempt, 0.9); a > b {
				t.Errorf("%s: jitter not monotone at attempt %d: %v > %v", tc.name, attempt, a, b)
			}
		}
	}
}

// TestSyncBreakerTransitions walks the circuit through its full life on
// virtual time: closed → open after BreakerAfter consecutive failures →
// half-open probe after BreakerReset → re-open on probe failure → closed on
// probe success.
func TestSyncBreakerTransitions(t *testing.T) {
	c := syncClient(SyncPolicy{})
	fail := errors.New("db unreachable")

	// Closed: failures below the threshold keep admitting rounds.
	for i := 0; i < DefaultSyncBreakerAfter-1; i++ {
		if !c.syncAdmit() {
			t.Fatalf("breaker open after %d failures (threshold %d)", i, DefaultSyncBreakerAfter)
		}
		c.syncFinish(fail)
	}
	if c.Counter("sync-circuit-open") != 0 {
		t.Fatal("circuit opened below the failure threshold")
	}

	// The threshold failure opens the circuit: no rounds until the reset.
	c.syncFinish(fail)
	if c.Counter("sync-circuit-open") != 1 {
		t.Fatalf("sync-circuit-open = %d, want 1", c.Counter("sync-circuit-open"))
	}
	if !c.Degraded() {
		t.Fatal("client not degraded with the circuit open")
	}
	if c.syncAdmit() {
		t.Fatal("open circuit admitted a round")
	}
	c.clock.Advance(DefaultSyncBreakerReset - time.Second)
	if c.syncAdmit() {
		t.Fatal("open circuit admitted a round before the reset cooldown")
	}

	// Half-open: exactly the cooldown elapses, one probe goes through; its
	// failure re-opens (no second open-transition counted) for a fresh
	// cooldown.
	c.clock.Advance(time.Second)
	if !c.syncAdmit() {
		t.Fatal("no half-open probe after the reset cooldown")
	}
	c.syncFinish(fail)
	if c.Counter("sync-circuit-open") != 1 {
		t.Fatalf("re-open counted as a new transition: %d", c.Counter("sync-circuit-open"))
	}
	if c.syncAdmit() {
		t.Fatal("failed probe did not restart the cooldown")
	}

	// A successful probe closes the circuit and resets the failure streak:
	// the next failure is streak one, far from re-opening.
	c.clock.Advance(DefaultSyncBreakerReset)
	if !c.syncAdmit() {
		t.Fatal("no probe after the second cooldown")
	}
	c.syncFinish(nil)
	if c.Counter("sync-circuit-close") != 1 {
		t.Fatalf("sync-circuit-close = %d, want 1", c.Counter("sync-circuit-close"))
	}
	if c.Degraded() || !c.syncAdmit() {
		t.Fatal("closed circuit still degraded or not admitting")
	}
	c.syncFinish(fail)
	if c.Degraded() {
		t.Fatal("one failure after recovery re-opened the circuit")
	}
}

// TestSyncBreakerDisabled: a negative BreakerAfter never opens the circuit,
// no matter the failure streak.
func TestSyncBreakerDisabled(t *testing.T) {
	c := syncClient(SyncPolicy{BreakerAfter: -1})
	for i := 0; i < 20; i++ {
		c.syncFinish(errors.New("down"))
	}
	if c.Degraded() || !c.syncAdmit() {
		t.Fatal("disabled breaker opened the circuit")
	}
	if c.Counter("sync-circuit-open") != 0 {
		t.Fatal("disabled breaker counted an open transition")
	}
}
