package core_test

import (
	"sync"
	"testing"
	"time"

	"csaw/internal/core"
	"csaw/internal/leakcheck"
	"csaw/internal/localdb"
	"csaw/internal/worldgen"
)

// A nanosecond failover budget expires inside the first circumvention
// attempt: the ladder must stop, count the exhaustion, and still serve the
// least-bad thing it has (the block page) rather than walking all four
// candidates.
func TestFailoverBudgetExhaustion(t *testing.T) {
	_, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.FailoverBudget = time.Nanosecond
	}, "ISP-A")
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if res.Err == nil && res.Source != "direct" {
		t.Fatalf("circumvention succeeded under a 1ns budget: source=%s", res.Source)
	}
	if c.Counter("failover-budget-exhausted") == 0 {
		t.Fatal("failover-budget-exhausted not counted")
	}
	// The budget expiry must not have benched the approach it interrupted.
	if c.Counter("quarantine-bench") != 0 {
		t.Fatal("budget expiry struck the quarantine record")
	}
}

// A negative budget disables the ladder deadline entirely.
func TestFailoverBudgetDisabled(t *testing.T) {
	_, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.FailoverBudget = -1
	}, "ISP-A")
	res := fetchURL(t, c, worldgen.YouTubeHost+"/")
	if !res.OK() || res.Source == "direct" {
		t.Fatalf("blocked fetch = %+v (err=%v), want circumvented", res, res.Err)
	}
	if c.Counter("failover-budget-exhausted") != 0 {
		t.Fatal("budget counted while disabled")
	}
}

// A local-DB verdict recorded before the censor's current epoch must be
// re-detected, once; the fresh verdict is then trusted again.
func TestStaleVerdictRedetection(t *testing.T) {
	var mu sync.Mutex
	var epoch time.Time
	w, c := newCaseStudyClient(t, func(cfg *core.Config) {
		cfg.CensorEpoch = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return epoch
		}
	}, "ISP-A")

	url := worldgen.NewsHost + "/"
	if res := fetchURL(t, c, url); !res.OK() || res.Source != "direct" {
		t.Fatalf("baseline fetch = %+v (err=%v)", res, res.Err)
	}
	c.WaitIdle()
	if c.Counter("stale-verdict") != 0 {
		t.Fatal("stale-verdict before any epoch")
	}

	// The censor flips an hour later; the NotBlocked record now predates
	// the epoch and must not be trusted.
	w.Clock.Advance(time.Hour)
	mu.Lock()
	epoch = w.Clock.Now()
	mu.Unlock()

	if res := fetchURL(t, c, url); !res.OK() {
		t.Fatalf("re-detect fetch failed: %v", res.Err)
	}
	c.WaitIdle()
	if got := c.Counter("stale-verdict"); got != 1 {
		t.Fatalf("stale-verdict = %d, want 1", got)
	}
	if _, st := c.DB().Lookup(url); st != localdb.NotBlocked {
		t.Fatalf("re-detected status = %v", st)
	}

	// The re-measured record is fresh: no second re-detection.
	if res := fetchURL(t, c, url); !res.OK() {
		t.Fatalf("post-re-detect fetch failed: %v", res.Err)
	}
	if got := c.Counter("stale-verdict"); got != 1 {
		t.Fatalf("stale-verdict = %d after fresh record, want 1", got)
	}
}

// Close alone — no WaitIdle — must reap every background goroutine the
// fetch pipeline spawned: settle/refresh workers, redundant-copy watchers,
// stop-context watchers.
func TestCloseReapsBackgroundWork(t *testing.T) {
	_, c := newCaseStudyClient(t, nil, "ISP-A")
	// Warm the world (transports, proxies, classifier) before the baseline
	// so only fetch-pipeline goroutines are measured below.
	_ = fetchURL(t, c, worldgen.NewsHost+"/")
	_ = fetchURL(t, c, worldgen.YouTubeHost+"/")
	c.WaitIdle()

	leakcheck.Check(t)
	// Blocked and clean fetches in flight leave background settlement and
	// redundant-copy goroutines behind; Close must not strand them.
	_ = fetchURL(t, c, worldgen.YouTubeHost+"/")
	_ = fetchURL(t, c, worldgen.SmallHost+"/")
	c.Close()
}
