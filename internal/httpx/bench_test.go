package httpx

import (
	"bufio"
	"bytes"
	"testing"
)

// BenchmarkWriteRequest measures request serialization.
func BenchmarkWriteRequest(b *testing.B) {
	req := NewRequest("GET", "www.youtube.com", "/watch?v=abc")
	req.Header.Set("User-Agent", "csaw/1.0")
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteRequest(&buf, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadResponse measures response parsing including a 4KB body.
func BenchmarkReadResponse(b *testing.B) {
	resp := NewResponse(200, make([]byte, 4096))
	resp.Header.Set("Content-Type", "text/html")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadResponse(bufio.NewReader(bytes.NewReader(raw))); err != nil {
			b.Fatal(err)
		}
	}
}
