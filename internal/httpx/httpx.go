// Package httpx is a small HTTP/1.1 implementation for the emulated
// internet. The standard net/http could not be reused as-is for this
// repository's purposes: the censor middlebox needs to parse and forge
// requests from raw netem streams, the C-Saw proxy needs to connect to one
// address while sending a different Host header (domain fronting, "IP as
// hostname"), and all timeouts must run on the virtual clock. The subset
// implemented — request/response codecs with Content-Length bodies,
// keep-alive, a dial-decoupled client, and a handler-based server — is what
// the paper's workloads exercise.
package httpx

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Header holds HTTP headers with case-insensitive keys (stored canonically).
type Header map[string][]string

// CanonicalKey normalizes a header name: "content-length" → "Content-Length".
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - 'a' + 'A'
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}

// Set replaces the values for key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = []string{value} }

// Add appends a value for key.
func (h Header) Add(key, value string) {
	k := CanonicalKey(key)
	h[k] = append(h[k], value)
}

// Get returns the first value for key, or "".
func (h Header) Get(key string) string {
	if vs := h[CanonicalKey(key)]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Del removes key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// clone deep-copies the header.
func (h Header) clone() Header {
	c := make(Header, len(h))
	for k, vs := range h {
		c[k] = append([]string(nil), vs...)
	}
	return c
}

// Request is an HTTP request. Target is the origin-form request target
// (path plus optional query), and Host the Host header value; a censor
// matches its URL blacklist against "Host + Target" (§2.1).
type Request struct {
	Method string
	Target string
	Proto  string
	Host   string
	Header Header
	Body   []byte

	// ctx is the request's lifetime: the server derives it from its own
	// run context, so handlers that issue upstream calls (the replica
	// forwarder, proxies) stop when the caller is gone instead of holding
	// resources for a client that hung up.
	ctx context.Context
}

// Context returns the request's context, never nil: requests built outside
// a server (tests, clients) default to context.Background().
func (r *Request) Context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// WithContext returns a shallow copy of r carrying ctx.
func (r *Request) WithContext(ctx context.Context) *Request {
	r2 := *r
	r2.ctx = ctx
	return &r2
}

// NewRequest builds a GET-style request with an initialized header.
func NewRequest(method, host, target string) *Request {
	if target == "" {
		target = "/"
	}
	return &Request{Method: method, Target: target, Proto: "HTTP/1.1", Host: host, Header: Header{}}
}

// URL returns the conventional "host/target" form used as a database key.
func (r *Request) URL() string { return r.Host + r.Target }

// Response is an HTTP response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string
	Header     Header
	Body       []byte
}

// NewResponse builds a response with the given status and body, setting
// Content-Length.
func NewResponse(code int, body []byte) *Response {
	r := &Response{Proto: "HTTP/1.1", StatusCode: code, Status: StatusText(code), Header: Header{}}
	r.Header.Set("Content-Length", strconv.Itoa(len(body)))
	r.Body = body
	return r
}

// StatusText returns the reason phrase for the handful of codes in use.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 421:
		return "Misdirected Request"
	case 429:
		return "Too Many Requests"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// Codec errors.
var (
	ErrMalformed = errors.New("httpx: malformed message")
	ErrTooLarge  = errors.New("httpx: message too large")
)

// Limits protecting the parsers.
const (
	maxLineBytes   = 16 << 10
	maxHeaderCount = 128
	// MaxBodyBytes bounds bodies accepted by the codecs.
	MaxBodyBytes = 32 << 20
)

// WriteRequest serializes a request. The Host header is emitted from
// r.Host; Content-Length is set from the body.
func WriteRequest(w io.Writer, r *Request) error {
	var b strings.Builder
	target := r.Target
	if target == "" {
		target = "/"
	}
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, target, proto)
	fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	writeHeaders(&b, r.Header, len(r.Body), r.Method != "GET" && r.Method != "HEAD" || len(r.Body) > 0)
	b.WriteString("\r\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

// WriteResponse serializes a response, always emitting Content-Length.
func WriteResponse(w io.Writer, r *Response) error {
	var b strings.Builder
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	status := r.Status
	if status == "" {
		status = StatusText(r.StatusCode)
	}
	fmt.Fprintf(&b, "%s %d %s\r\n", proto, r.StatusCode, status)
	writeHeaders(&b, r.Header, len(r.Body), true)
	b.WriteString("\r\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

func writeHeaders(b *strings.Builder, h Header, bodyLen int, forceLen bool) {
	keys := make([]string, 0, len(h))
	for k := range h {
		if k == "Host" || k == "Content-Length" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range h[k] {
			fmt.Fprintf(b, "%s: %s\r\n", k, v)
		}
	}
	if forceLen || bodyLen > 0 {
		fmt.Fprintf(b, "Content-Length: %d\r\n", bodyLen)
	}
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2], Header: Header{}}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	req.Host = req.Header.Get("Host")
	req.Header.Del("Host")
	req.Body, err = readBody(br, req.Header)
	return req, err
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{Proto: parts[0], StatusCode: code, Header: Header{}}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	resp.Body, err = readBody(br, resp.Header)
	return resp, err
}

func readLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		chunk, isPrefix, err := br.ReadLine()
		if err != nil {
			return "", err
		}
		sb.Write(chunk)
		if sb.Len() > maxLineBytes {
			return "", ErrTooLarge
		}
		if !isPrefix {
			return sb.String(), nil
		}
	}
}

func readHeaders(br *bufio.Reader, h Header) error {
	for count := 0; ; count++ {
		if count > maxHeaderCount {
			return ErrTooLarge
		}
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		key := strings.TrimSpace(line[:i])
		if key == "" {
			// A whitespace-only key would serialize as ": v", which no
			// parser (ours included) reads back.
			return fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		h.Add(key, strings.TrimSpace(line[i+1:]))
	}
}

func readBody(br *bufio.Reader, h Header) ([]byte, error) {
	cl := h.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
	}
	if n > MaxBodyBytes {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}
