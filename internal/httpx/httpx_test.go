package httpx

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"csaw/internal/netem"
	"csaw/internal/vtime"
)

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("GET", "www.youtube.com", "/watch?v=abc")
	req.Header.Set("User-Agent", "csaw/1.0")
	req.Header.Add("Accept", "text/html")
	req.Header.Add("Accept", "image/png")

	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != "/watch?v=abc" || got.Host != "www.youtube.com" {
		t.Fatalf("parsed %+v", got)
	}
	if len(got.Header["Accept"]) != 2 {
		t.Fatalf("Accept = %v", got.Header["Accept"])
	}
	if got.URL() != "www.youtube.com/watch?v=abc" {
		t.Fatalf("URL() = %q", got.URL())
	}
}

func TestRequestWithBody(t *testing.T) {
	req := NewRequest("POST", "api.example.com", "/submit")
	req.Body = []byte(`{"vote":1}`)
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != `{"vote":1}` {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(302, []byte("<html>moved</html>"))
	resp.Header.Set("Location", "http://block.isp.pk/blocked.html")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 302 || got.Header.Get("Location") != "http://block.isp.pk/blocked.html" {
		t.Fatalf("parsed %+v", got)
	}
	if string(got.Body) != "<html>moved</html>" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	h := Header{}
	h.Set("content-length", "5")
	if h.Get("Content-Length") != "5" {
		t.Fatal("case-insensitive get failed")
	}
	h.Del("CONTENT-LENGTH")
	if h.Get("content-length") != "" {
		t.Fatal("delete failed")
	}
	if CanonicalKey("x-forwarded-for") != "X-Forwarded-For" {
		t.Fatal("canonical key wrong")
	}
}

func TestMalformedRejected(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",                         // missing proto
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
		"HTTP/1.1 abc OK\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(c))); err == nil {
			if _, err2 := ReadResponse(bufio.NewReader(strings.NewReader(c))); err2 == nil {
				t.Errorf("input %q accepted by both parsers", c)
			}
		}
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader("HTTP/1.1 abc OK\r\n\r\n"))); err == nil {
		t.Error("bad status code accepted")
	}
}

func TestBodyLengthLimits(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 99999999999\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("oversized content-length accepted")
	}
	raw = "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("negative content-length accepted")
	}
	raw = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(302) != "Found" || StatusText(418) != "Status 418" {
		t.Fatal("status text wrong")
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	// Property: headers with token keys and printable values survive a
	// request round trip.
	clean := func(s string, allowDash bool) string {
		var b strings.Builder
		for _, c := range s {
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || (allowDash && c == '-') {
				b.WriteRune(c)
			}
		}
		if b.Len() == 0 {
			return "X"
		}
		return b.String()
	}
	f := func(key, val string) bool {
		k := clean(key, true)
		v := clean(val, false)
		req := NewRequest("GET", "h.example", "/")
		req.Header.Set(k, v)
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.Header.Get(k) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReadNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = ReadRequest(bufio.NewReader(bytes.NewReader(b)))
		_, _ = ReadResponse(bufio.NewReader(bytes.NewReader(b)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// httpWorld builds a client and a server host with a test handler.
func httpWorld(t *testing.T, h Handler) (*netem.Network, *Client, *Server) {
	t.Helper()
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(3), netem.WithJitter(0))
	as := n.AddAS(1, "ISP", "PK")
	us := n.AddAS(2, "US", "US")
	ch := n.MustAddHost("client", "10.0.0.1", "pk", as)
	sh := n.MustAddHost("server", "93.184.216.34", "us", us)
	n.SetRTT("pk", "us", 100*time.Millisecond)
	srv := Serve(sh.MustListen(80), h)
	client := &Client{Dial: ch.Dial, Clock: clock}
	return n, client, srv
}

func TestClientServerExchange(t *testing.T) {
	_, client, srv := httpWorld(t, HandlerFunc(func(req *Request, _ netem.Flow) *Response {
		if req.Target == "/hello" {
			return NewResponse(200, []byte("world "+req.Host))
		}
		return NewResponse(404, nil)
	}))
	defer srv.Close()
	resp, err := client.Get(context.Background(), "93.184.216.34:80", "example.com", "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "world example.com" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestClientTimeoutOnSilentServer(t *testing.T) {
	n, client, srv := httpWorld(t, HandlerFunc(func(*Request, netem.Flow) *Response { return nil }))
	defer srv.Close()
	client.Timeout = 2 * time.Second
	start := n.Clock().Now()
	_, err := client.Get(context.Background(), "93.184.216.34:80", "example.com", "/")
	if err == nil {
		t.Fatal("request to silent server succeeded")
	}
	if el := n.Clock().Since(start); el < 1500*time.Millisecond || el > 10*time.Second {
		t.Errorf("timeout after %v, want ~2s", el)
	}
}

func TestServerFlowVisible(t *testing.T) {
	var gotAS int
	_, client, srv := httpWorld(t, HandlerFunc(func(_ *Request, flow netem.Flow) *Response {
		if flow.EgressAS != nil {
			gotAS = flow.EgressAS.Number
		}
		return NewResponse(204, nil)
	}))
	defer srv.Close()
	if _, err := client.Get(context.Background(), "93.184.216.34:80", "x", "/"); err != nil {
		t.Fatal(err)
	}
	if gotAS != 1 {
		t.Fatalf("server saw egress AS %d, want 1", gotAS)
	}
}

func TestMuxRouting(t *testing.T) {
	mux := NewMux()
	mux.Handle("a.example", "/", HandlerFunc(func(*Request, netem.Flow) *Response {
		return NewResponse(200, []byte("site-a"))
	}))
	mux.Handle("a.example", "/deep/", HandlerFunc(func(*Request, netem.Flow) *Response {
		return NewResponse(200, []byte("deep"))
	}))
	mux.Handle("", "/", HandlerFunc(func(*Request, netem.Flow) *Response {
		return NewResponse(200, []byte("fallback"))
	}))

	cases := []struct{ host, path, want string }{
		{"a.example", "/", "site-a"},
		{"A.EXAMPLE:80", "/x", "site-a"},
		{"a.example", "/deep/page", "deep"},
		{"other.example", "/", "fallback"},
	}
	for _, c := range cases {
		resp := mux.ServeHTTP(NewRequest("GET", c.host, c.path), netem.Flow{})
		if string(resp.Body) != c.want {
			t.Errorf("%s%s → %q, want %q", c.host, c.path, resp.Body, c.want)
		}
	}
}

func TestMuxUnknownHost404(t *testing.T) {
	mux := NewMux()
	mux.Handle("a.example", "/", HandlerFunc(func(*Request, netem.Flow) *Response {
		return NewResponse(200, nil)
	}))
	if resp := mux.ServeHTTP(NewRequest("GET", "b.example", "/"), netem.Flow{}); resp.StatusCode != 404 {
		t.Fatalf("unknown host → %d, want 404", resp.StatusCode)
	}
}
