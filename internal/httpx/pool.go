package httpx

import (
	"bufio"
	"io"
	"sync"
)

// readerPool recycles parse buffers. The simulation opens one connection per
// HTTP exchange (Connection: close semantics keep censor stream state per
// request), so the 4 KiB bufio.Reader behind every parse is among the
// largest allocations on the serve path; recycling it is a measurable GC
// win at fleet scale. ReadRequest/ReadResponse copy everything they return,
// so a released reader never aliases parsed data.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

// GetReader returns a pooled bufio.Reader reading from r.
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader returns br to the pool. Release only a reader this goroutine is
// the sole referent of — never one handed to a splice or copy goroutine —
// and do not touch it afterwards.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}
