package httpx

import (
	"bufio"
	"context"
	"strconv"

	"csaw/internal/trace"
)

// ReadResponseCtx is ReadResponse plus flight-recorder instrumentation:
// when the context carries a trace lane, the wait for the first response
// byte is timed as PhaseTTFB and the rest of the parse as PhaseBody, with
// the status code recorded on success.
func ReadResponseCtx(ctx context.Context, br *bufio.Reader) (*Response, error) {
	l := trace.FromContext(ctx)
	if l == nil {
		return ReadResponse(br)
	}
	m := l.Begin(trace.PhaseTTFB)
	_, peekErr := br.Peek(1)
	m.End()
	if peekErr == nil {
		l.Event("http", "first-byte", "")
	}
	m = l.Begin(trace.PhaseBody)
	resp, err := ReadResponse(br)
	m.End()
	if err != nil {
		l.Event("http", "response-error", err.Error())
		return nil, err
	}
	l.Event("http", "response", strconv.Itoa(resp.StatusCode))
	return resp, nil
}
