package httpx

import (
	"context"
	"time"

	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// DefaultTimeout bounds one request/response exchange in virtual time. It is
// deliberately generous: blocked requests are expected to fail via the more
// specific dial/read timeouts first.
const DefaultTimeout = 60 * time.Second

// Client issues HTTP exchanges over whatever dialer it is given — netem
// hosts, Tor circuits, Lantern tunnels, and CONNECT proxies all provide a
// netem.DialFunc. One connection is used per exchange (Connection: close
// semantics), which is also what keeps censor stream-inspection state per
// request.
type Client struct {
	Dial    netem.DialFunc
	Clock   *vtime.Clock
	Timeout time.Duration // virtual; DefaultTimeout when zero
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Do connects to address, sends req, and reads one response. The address is
// decoupled from req.Host on purpose: domain fronting connects to the front
// while naming the back end in the Host header, and the "IP as hostname"
// local fix connects to the blocked site's IP with the IP in the Host line.
func (c *Client) Do(ctx context.Context, address string, req *Request) (*Response, error) {
	ctx, cancel := c.Clock.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.Dial(ctx, address)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(c.Clock.Now().Add(c.timeout()))
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if req.Header == nil {
		req.Header = Header{}
	}
	if req.Header.Get("Connection") == "" {
		req.Header.Set("Connection", "close")
	}
	if err := WriteRequest(conn, req); err != nil {
		return nil, err
	}
	br := GetReader(conn)
	resp, err := ReadResponse(br)
	PutReader(br)
	return resp, err
}

// Get fetches host+target from address.
func (c *Client) Get(ctx context.Context, address, host, target string) (*Response, error) {
	return c.Do(ctx, address, NewRequest("GET", host, target))
}
