package httpx

import (
	"context"
	"net"
	"strings"
	"sync"

	"csaw/internal/netem"
)

// Handler produces a response for a request. The flow identifies the caller
// (source address and egress AS) the way a real server sees a peer address;
// the ASN-echo and global-DB services key on it.
type Handler interface {
	ServeHTTP(req *Request, flow netem.Flow) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request, flow netem.Flow) *Response

// ServeHTTP implements Handler.
func (f HandlerFunc) ServeHTTP(req *Request, flow netem.Flow) *Response { return f(req, flow) }

// Server serves HTTP on a listener, with keep-alive support.
type Server struct {
	l      net.Listener
	h      Handler
	ctx    context.Context // cancelled when the server closes
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
}

// Serve starts serving in the background and returns immediately.
func Serve(l net.Listener, h Handler) *Server {
	s := &Server{l: l, h: h}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	go s.acceptLoop()
	return s
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var flow netem.Flow
	if fc, ok := conn.(interface{ Flow() netem.Flow }); ok {
		flow = fc.Flow()
	}
	br := GetReader(conn)
	defer PutReader(br)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			return
		}
		resp := s.h.ServeHTTP(req.WithContext(s.ctx), flow)
		if resp == nil {
			// Handler chose to drop the request (used by censor simulations
			// and misbehaving-server tests): say nothing.
			continue
		}
		if err := WriteResponse(conn, resp); err != nil {
			return
		}
		if strings.EqualFold(req.Header.Get("Connection"), "close") ||
			strings.EqualFold(resp.Header.Get("Connection"), "close") {
			return
		}
	}
}

// Close stops accepting; established connections finish naturally, but
// requests dispatched after Close see a cancelled context, so handler
// upstream calls abort instead of lingering.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cancel()
	return s.l.Close()
}

// Mux routes by exact host and longest path prefix, enough for origin and
// CDN servers hosting several sites.
type Mux struct {
	mu     sync.RWMutex
	routes map[string][]muxEntry // host → entries sorted by decreasing prefix length
}

type muxEntry struct {
	prefix string
	h      Handler
}

// NewMux returns an empty Mux.
func NewMux() *Mux { return &Mux{routes: make(map[string][]muxEntry)} }

// Handle registers a handler for a host and path prefix. Host "" is the
// fallback for unknown hosts.
func (m *Mux) Handle(host, prefix string, h Handler) {
	if prefix == "" {
		prefix = "/"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:allow-sliceshare m.mu is held exclusively and the map slot is rebound below before unlock
	entries := append(m.routes[host], muxEntry{prefix: prefix, h: h})
	for i := len(entries) - 1; i > 0 && len(entries[i].prefix) > len(entries[i-1].prefix); i-- {
		entries[i], entries[i-1] = entries[i-1], entries[i]
	}
	m.routes[host] = entries
}

// ServeHTTP implements Handler.
func (m *Mux) ServeHTTP(req *Request, flow netem.Flow) *Response {
	host := strings.ToLower(req.Host)
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, key := range []string{host, ""} {
		for _, e := range m.routes[key] {
			if strings.HasPrefix(req.Target, e.prefix) {
				return e.h.ServeHTTP(req, flow)
			}
		}
	}
	return NewResponse(404, []byte("not found: "+req.Host+req.Target))
}
