package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// The fuzz properties are fixed-point round-trips: whatever the parser
// accepts, the writer must serialize to bytes the parser reads back to the
// same message (write∘read idempotent after one normalization pass). This
// catches both panics on hostile input — the block-page classifier feeds
// ReadResponse whatever a censor injects — and writer/parser asymmetries
// like headers that serialize unparseably.

func FuzzReadResponse(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello"))
	f.Add([]byte("HTTP/1.1 302 Found\r\nLocation: http://block.example/blocked.html\r\nContent-Length: 0\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 204\r\n\r\n"))
	f.Add([]byte("HTTP/1.0 599 Weird Status Text \r\nX-A: 1\r\nX-A: 2\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := WriteResponse(&b1, r1); err != nil {
			t.Fatalf("parsed response does not serialize: %v", err)
		}
		r2, err := ReadResponse(bufio.NewReader(bytes.NewReader(b1.Bytes())))
		if err != nil {
			t.Fatalf("serialized response does not parse: %v\n%q", err, b1.String())
		}
		var b2 bytes.Buffer
		if err := WriteResponse(&b2, r2); err != nil {
			t.Fatalf("re-parsed response does not serialize: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("write∘read not a fixed point:\nb1: %q\nb2: %q", b1.String(), b2.String())
		}
		if r2.StatusCode != r1.StatusCode || !bytes.Equal(r2.Body, r1.Body) {
			t.Fatalf("status/body changed across round-trip: %d/%q vs %d/%q",
				r1.StatusCode, r1.Body, r2.StatusCode, r2.Body)
		}
	})
}

func FuzzReadRequest(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: www.youtube.com\r\n\r\n"))
	f.Add([]byte("POST /submit HTTP/1.1\r\nHost: api.example\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("GET /watch?v=x HTTP/1.1\r\nHost: a\r\nCookie: k=v; k2=v2\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if strings.ContainsAny(r1.Method, " \t") || strings.ContainsAny(r1.Target, " \t") {
			// The request line is space-delimited; a method or target that
			// itself contains whitespace cannot survive serialization.
			return
		}
		var b1 bytes.Buffer
		if err := WriteRequest(&b1, r1); err != nil {
			t.Fatalf("parsed request does not serialize: %v", err)
		}
		r2, err := ReadRequest(bufio.NewReader(bytes.NewReader(b1.Bytes())))
		if err != nil {
			t.Fatalf("serialized request does not parse: %v\n%q", err, b1.String())
		}
		var b2 bytes.Buffer
		if err := WriteRequest(&b2, r2); err != nil {
			t.Fatalf("re-parsed request does not serialize: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("write∘read not a fixed point:\nb1: %q\nb2: %q", b1.String(), b2.String())
		}
		if r2.Method != r1.Method || !bytes.Equal(r2.Body, r1.Body) {
			t.Fatalf("method/body changed across round-trip")
		}
	})
}
