package trace

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Record is the transient, structured form of one emitted span. It is valid
// only for the duration of the Sink.Span call (its slices alias pooled
// memory); sinks that retain it must Clone it.
type Record struct {
	Client string
	Seq    uint64
	URL    string
	Source string
	Status string
	Err    string
	PLT    time.Duration
	// HasPhases is set when a lane matching Source existed: Phases then
	// partitions PLT exactly (DNS..body from the serving lane, Switch = its
	// start offset, Other = the remainder).
	HasPhases bool
	Phases    [NumPhases]time.Duration
	Events    []Event // span-level events
	Lanes     []LaneRecord
}

// LaneRecord is one lane of a Record.
type LaneRecord struct {
	Name   string
	Start  time.Duration
	Events []Event
}

// Clone deep-copies the record for retention beyond the Sink.Span call.
func (r *Record) Clone() *Record {
	c := *r
	c.Events = append([]Event(nil), r.Events...)
	c.Lanes = append([]LaneRecord(nil), r.Lanes...)
	for i := range c.Lanes {
		c.Lanes[i].Events = append([]Event(nil), r.Lanes[i].Events...)
	}
	return &c
}

// Sink receives emitted spans. line is the encoded JSONL line (newline
// included) and rec the transient structured form; both are valid only for
// the duration of the call and must be copied if retained. Implementations
// must be safe for concurrent use.
type Sink interface {
	Span(line []byte, rec *Record)
}

// encodeRecord appends the JSONL line for rec to dst. Field order is fixed
// by hand so the artifact is byte-stable; the timing profile adds "plt",
// "phases", per-event "t"/"num", and per-lane "start", all floor-quantized
// to tick.
func encodeRecord(dst []byte, rec *Record, timing bool, tick time.Duration) []byte {
	dst = append(dst, `{"client":`...)
	dst = appendJSONString(dst, rec.Client)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, rec.Seq, 10)
	dst = append(dst, `,"url":`...)
	dst = appendJSONString(dst, rec.URL)
	dst = append(dst, `,"source":`...)
	dst = appendJSONString(dst, rec.Source)
	dst = append(dst, `,"status":`...)
	dst = appendJSONString(dst, rec.Status)
	if rec.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = appendJSONString(dst, rec.Err)
	}
	if timing {
		dst = append(dst, `,"plt":`...)
		dst = appendQuantized(dst, rec.PLT, tick)
		if rec.HasPhases {
			dst = append(dst, `,"phases":{`...)
			for p := Phase(0); p < NumPhases; p++ {
				if p > 0 {
					dst = append(dst, ',')
				}
				dst = appendJSONString(dst, p.String())
				dst = append(dst, ':')
				dst = appendQuantized(dst, rec.Phases[p], tick)
			}
			dst = append(dst, '}')
		}
	}
	if len(rec.Events) > 0 {
		dst = append(dst, `,"events":[`...)
		for i := range rec.Events {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendEvent(dst, &rec.Events[i], timing, tick)
		}
		dst = append(dst, ']')
	}
	if len(rec.Lanes) > 0 {
		dst = append(dst, `,"lanes":[`...)
		for i := range rec.Lanes {
			l := &rec.Lanes[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"lane":`...)
			dst = appendJSONString(dst, l.Name)
			if timing {
				dst = append(dst, `,"start":`...)
				dst = appendQuantized(dst, l.Start, tick)
			}
			if len(l.Events) > 0 {
				dst = append(dst, `,"events":[`...)
				for j := range l.Events {
					if j > 0 {
						dst = append(dst, ',')
					}
					dst = appendEvent(dst, &l.Events[j], timing, tick)
				}
				dst = append(dst, ']')
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}', '\n')
	return dst
}

func appendEvent(dst []byte, e *Event, timing bool, tick time.Duration) []byte {
	dst = append(dst, '{')
	if timing {
		dst = append(dst, `"t":`...)
		dst = appendQuantized(dst, e.T, tick)
		dst = append(dst, ',')
	}
	dst = append(dst, `"layer":`...)
	dst = appendJSONString(dst, e.Layer)
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, e.Name)
	if e.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, e.Detail)
	}
	if timing && e.HasNum {
		dst = append(dst, `,"num":`...)
		dst = strconv.AppendFloat(dst, e.Num, 'g', 6, 64)
	}
	dst = append(dst, '}')
	return dst
}

// appendQuantized renders d floored to tick, as a JSON string like "1.5s".
func appendQuantized(dst []byte, d time.Duration, tick time.Duration) []byte {
	if d < 0 {
		d = 0
	}
	if tick > 0 {
		d -= d % tick
	}
	dst = append(dst, '"')
	dst = append(dst, d.String()...)
	dst = append(dst, '"')
	return dst
}

// appendJSONString appends s as a JSON string literal with minimal escaping.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

func hexDigit(b byte) byte {
	if b < 10 {
		return '0' + b
	}
	return 'a' + b - 10
}

// StreamSink writes each span's line to w as it is emitted — the right sink
// for a single serial client (csaw-client, the golden scenario), where
// emission order is the program order.
type StreamSink struct {
	mu sync.Mutex
	w  io.Writer
	n  int
}

// NewStreamSink builds a streaming sink.
func NewStreamSink(w io.Writer) *StreamSink { return &StreamSink{w: w} }

// Span implements Sink.
func (s *StreamSink) Span(line []byte, _ *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	_, _ = s.w.Write(line)
}

// Count returns how many spans were written.
func (s *StreamSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// SortedSink buffers encoded lines and writes them sorted by (client, seq)
// on Flush — the fleet sink, where spans from many clients finish in
// scheduler order but the artifact must have a canonical one.
type SortedSink struct {
	mu    sync.Mutex
	w     io.Writer
	lines []sortedLine
}

type sortedLine struct {
	client string
	seq    uint64
	line   []byte
}

// NewSortedSink builds a sorting sink over w.
func NewSortedSink(w io.Writer) *SortedSink { return &SortedSink{w: w} }

// Span implements Sink.
func (s *SortedSink) Span(line []byte, rec *Record) {
	cp := append([]byte(nil), line...)
	s.mu.Lock()
	s.lines = append(s.lines, sortedLine{client: rec.Client, seq: rec.Seq, line: cp})
	s.mu.Unlock()
}

// Count returns how many spans are buffered.
func (s *SortedSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lines)
}

// Flush sorts and writes every buffered line.
func (s *SortedSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.lines, func(i, j int) bool {
		a, b := s.lines[i], s.lines[j]
		if a.client != b.client {
			return a.client < b.client
		}
		return a.seq < b.seq
	})
	for _, l := range s.lines {
		if _, err := s.w.Write(l.line); err != nil {
			return err
		}
	}
	s.lines = nil
	return nil
}

// CollectSink retains cloned records for test assertions.
type CollectSink struct {
	mu   sync.Mutex
	recs []*Record
}

// Span implements Sink.
func (s *CollectSink) Span(_ []byte, rec *Record) {
	c := rec.Clone()
	s.mu.Lock()
	s.recs = append(s.recs, c)
	s.mu.Unlock()
}

// Records returns the collected records.
func (s *CollectSink) Records() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Record(nil), s.recs...)
}
