package trace

import "context"

// Context plumbing: the span rides the fetch's context from core.Client
// down to the layers; each concurrent path (direct measurement, each
// circumvention attempt) overrides the lane. Nil values add nothing to the
// context, so the disabled path allocates nothing.

type spanKey struct{}
type laneKey struct{}

// WithSpan attaches a span to the context (no-op for nil).
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithLane attaches a lane to the context (no-op for nil).
func WithLane(ctx context.Context, l *Lane) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, laneKey{}, l)
}

// FromContext returns the context's lane, or nil.
func FromContext(ctx context.Context) *Lane {
	l, _ := ctx.Value(laneKey{}).(*Lane)
	return l
}
