package trace

import (
	"fmt"
	"sort"

	"csaw/internal/metrics"
)

// Per-source PLT phase aggregation: every emitted span with a serving lane
// feeds exact (unquantized) durations into one Distribution per (source,
// phase), the per-approach breakdown EXPERIMENTS.md's observability section
// shows. Aggregation always uses the exact in-memory values, regardless of
// the emission profile.

type sourceAgg struct {
	n      int
	plt    *metrics.Distribution
	phases [NumPhases]*metrics.Distribution
}

func newSourceAgg() *sourceAgg {
	a := &sourceAgg{plt: metrics.NewDistribution()}
	for i := range a.phases {
		a.phases[i] = metrics.NewDistribution()
	}
	return a
}

// aggregate folds one record into the per-source breakdown.
func (t *Tracer) aggregate(rec *Record) {
	if !rec.HasPhases {
		return
	}
	t.mu.Lock()
	a := t.agg[rec.Source]
	if a == nil {
		a = newSourceAgg()
		t.agg[rec.Source] = a
	}
	t.mu.Unlock()
	// Distributions lock internally; only map access needs t.mu.
	a.plt.AddDuration(rec.PLT)
	for p := Phase(0); p < NumPhases; p++ {
		a.phases[p].AddDuration(rec.Phases[p])
	}
	t.mu.Lock()
	a.n++
	t.mu.Unlock()
}

// Breakdown renders the per-source PLT phase breakdown as an aligned table:
// one row per serving source, mean seconds per phase.
func (t *Tracer) Breakdown() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	sources := make([]string, 0, len(t.agg))
	for s := range t.agg {
		sources = append(sources, s)
	}
	t.mu.Unlock()
	if len(sources) == 0 {
		return ""
	}
	sort.Strings(sources)

	tbl := &metrics.Table{Title: "PLT phase breakdown by serving source", Headers: []string{
		"source", "n", "plt-mean", "dns", "connect", "tls", "ttfb", "body", "switch", "other"}}
	for _, src := range sources {
		t.mu.Lock()
		a := t.agg[src]
		n := a.n
		t.mu.Unlock()
		row := []string{src, fmt.Sprintf("%d", n), fmt.Sprintf("%.2fs", a.plt.Mean())}
		for p := Phase(0); p < NumPhases; p++ {
			row = append(row, fmt.Sprintf("%.2fs", a.phases[p].Mean()))
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}
