package trace

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"csaw/internal/vtime"
)

// frozenClock returns a clock whose real-time drift is negligible (1ns of
// virtual time per real second): tests drive it exclusively with Advance, so
// measured durations are exact.
func frozenClock() *vtime.Clock { return vtime.New(1e-9) }

// --- Nil safety: the disabled recorder costs nothing --------------------

func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("c", 1, "example.com/")
		sp.Event("db", "lookup", "miss")
		sp.EventNum("select", "observe", "tor", 1.5)
		l := sp.Lane("direct")
		l.Event("dns", "query", "example.com")
		l.Add(PhaseDNS, time.Millisecond)
		m := l.Begin(PhaseConnect)
		m.End()
		l.Close()
		sp.Hold()
		sp.Release()
		sp.Finish("direct", "clean", nil)
		c2 := WithSpan(ctx, sp)
		c3 := WithLane(c2, l)
		if SpanFromContext(c3) != nil || FromContext(c3) != nil {
			t.Fatal("nil span/lane came back non-nil")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled tracer path allocates %.1f per fetch, want 0", allocs)
	}
	if s, n := tr.Stats(); s != 0 || n != 0 {
		t.Errorf("nil tracer stats = %d/%d", s, n)
	}
}

func TestSampledOutSpanIsNil(t *testing.T) {
	var buf bytes.Buffer
	tr := New(frozenClock(), NewStreamSink(&buf), WithSampling(1<<20))
	// Find a URL the sampler rejects.
	url := ""
	for i := 0; i < 100; i++ {
		u := fmt.Sprintf("site%d.example/", i)
		if !Sampled(u, 1<<20) {
			url = u
			break
		}
	}
	if url == "" {
		t.Fatal("no sampled-out URL in 100 tries at 1-in-2^20")
	}
	if sp := tr.Start("c", 1, url); sp != nil {
		t.Fatal("sampled-out Start returned a live span")
	}
	started, sampled := tr.Stats()
	if started != 1 || sampled != 0 {
		t.Errorf("stats = %d/%d, want 1 started 0 sampled", started, sampled)
	}
}

// --- Sampling: deterministic hash of the URL ----------------------------

func TestSampledDeterministic(t *testing.T) {
	if !Sampled("anything", 1) || !Sampled("", 0) {
		t.Error("n <= 1 must sample everything")
	}
	hits := 0
	const total, n = 20000, 64
	for i := 0; i < total; i++ {
		u := fmt.Sprintf("host%d.example/page%d", i%500, i)
		a, b := Sampled(u, n), Sampled(u, n)
		if a != b {
			t.Fatalf("Sampled(%q) not deterministic", u)
		}
		if a {
			hits++
		}
	}
	// FNV spreads well; 1-in-64 over 20k URLs should land near 312.
	if hits < total/n/2 || hits > total/n*2 {
		t.Errorf("1-in-%d sampling hit %d of %d (expected ≈%d)", n, hits, total, total/n)
	}
}

// --- Encoding: fixed field order, two profiles --------------------------

// record plays one simple fetch through a tracer and returns the JSONL.
func record(t *testing.T, opts ...Option) string {
	t.Helper()
	var buf bytes.Buffer
	clock := frozenClock()
	tr := New(clock, NewStreamSink(&buf), opts...)
	sp := tr.Start("c1", 7, "example.com/")
	sp.Event("db", "lookup", "miss")
	clock.Advance(150 * time.Millisecond)
	l := sp.Lane("direct")
	l.Event("dns", "query", `example.com @"ldns"`)
	l.Add(PhaseDNS, 120*time.Millisecond)
	clock.Advance(120 * time.Millisecond)
	sp.EventNum("select", "observe", "direct", 0.27)
	l.Close()
	sp.Finish("direct", "clean", nil)
	return buf.String()
}

func TestEncodeDeterministicProfile(t *testing.T) {
	got := record(t)
	want := `{"client":"c1","seq":7,"url":"example.com/","source":"direct","status":"clean",` +
		`"events":[{"layer":"db","name":"lookup","detail":"miss"},` +
		`{"layer":"select","name":"observe","detail":"direct"}],` +
		`"lanes":[{"lane":"direct","events":[{"layer":"dns","name":"query","detail":"example.com @\"ldns\""}]}]}` + "\n"
	if got != want {
		t.Errorf("deterministic profile line:\n got %s want %s", got, want)
	}
	// The deterministic artifact must never carry measured numbers.
	for _, banned := range []string{`"plt"`, `"phases"`, `"t"`, `"num"`, `"start"`} {
		if strings.Contains(got, banned) {
			t.Errorf("deterministic profile leaked %s", banned)
		}
	}
}

func TestEncodeTimingProfile(t *testing.T) {
	got := record(t, WithTiming(100*time.Millisecond))
	// PLT = 270ms floored to 200ms; lane start = 150ms → 100ms; dns = 120ms
	// → 100ms; other = 270−150−120 = 0.
	want := `{"client":"c1","seq":7,"url":"example.com/","source":"direct","status":"clean",` +
		`"plt":"200ms",` +
		`"phases":{"dns":"100ms","connect":"0s","tls":"0s","ttfb":"0s","body":"0s","switch":"100ms","other":"0s"},` +
		`"events":[{"t":"0s","layer":"db","name":"lookup","detail":"miss"},` +
		`{"t":"200ms","layer":"select","name":"observe","detail":"direct","num":0.27}],` +
		`"lanes":[{"lane":"direct","start":"100ms",` +
		`"events":[{"t":"100ms","layer":"dns","name":"query","detail":"example.com @\"ldns\""}]}]}` + "\n"
	if got != want {
		t.Errorf("timing profile line:\n got %s want %s", got, want)
	}
}

func TestJSONStringEscaping(t *testing.T) {
	got := string(appendJSONString(nil, "a\"b\\c\x01d"))
	want := "\"a\\\"b\\\\c\\u0001d\""
	if got != want {
		t.Errorf("escaping: got %s want %s", got, want)
	}
}

// --- The phase partition property ---------------------------------------

// TestPhasePartitionSumsToPLT drives varied serial fetches through the
// recorder and checks the acceptance property: for every record with a
// serving lane, the seven phases partition the PLT exactly (the emitted
// artifact floors each term to the tick, so the raw record is where the
// invariant is exact).
func TestPhasePartitionSumsToPLT(t *testing.T) {
	clock := frozenClock()
	sink := &CollectSink{}
	tr := New(clock, sink)
	for i := 0; i < 40; i++ {
		sp := tr.Start("c", uint64(i), fmt.Sprintf("s%d.example/", i))
		// Detection burns i×7ms before the serving lane opens.
		clock.Advance(time.Duration(i*7) * time.Millisecond)
		serving := "direct"
		if i%3 == 0 {
			// A failed attempt first: its lane never matches the source.
			fail := sp.Lane("tor")
			clock.Advance(time.Duration(i) * time.Millisecond)
			fail.Add(PhaseConnect, time.Duration(i)*time.Millisecond)
			fail.Close()
			serving = "https"
		}
		l := sp.Lane(serving)
		for p := PhaseDNS; p <= PhaseBody; p++ {
			d := time.Duration((i+int(p))%9) * time.Millisecond
			m := l.Begin(p)
			clock.Advance(d)
			m.End()
		}
		// Unattributed tail: select/db bookkeeping → PhaseOther.
		clock.Advance(time.Duration(i%5) * time.Millisecond)
		l.Close()
		sp.Finish(serving, "clean", nil)
	}
	recs := sink.Records()
	if len(recs) != 40 {
		t.Fatalf("recorded %d spans, want 40", len(recs))
	}
	for _, r := range recs {
		if !r.HasPhases {
			t.Errorf("span %d: no phase partition (lanes %d, source %s)", r.Seq, len(r.Lanes), r.Source)
			continue
		}
		var sum time.Duration
		for p := Phase(0); p < NumPhases; p++ {
			if r.Phases[p] < 0 {
				t.Errorf("span %d: negative %s phase %v", r.Seq, p, r.Phases[p])
			}
			sum += r.Phases[p]
		}
		if sum != r.PLT {
			t.Errorf("span %d: phases sum to %v, PLT %v", r.Seq, sum, r.PLT)
		}
	}
}

// TestPhasePartitionWithFailoverLadder replays the span shape the mid-fetch
// failover ladder produces — stale-verdict re-detection, failed candidate
// lanes with partial phase measurements, quarantine and budget span events,
// and a late-starting serving lane — and checks the partition invariant
// survives: the serving lane's phases plus switch plus other still sum
// exactly to the PLT, with the failed lanes' time attributed to the switch
// penalty rather than double-counted.
func TestPhasePartitionWithFailoverLadder(t *testing.T) {
	clock := frozenClock()
	sink := &CollectSink{}
	tr := New(clock, sink)

	sp := tr.Start("c", 1, "blocked.example/")
	sp.Event("db", "stale-verdict", "not-blocked")

	// Re-detection: a direct measurement that ends in a Blocked verdict.
	det := sp.Lane("direct")
	m := det.Begin(PhaseDNS)
	clock.Advance(40 * time.Millisecond)
	m.End()
	m = det.Begin(PhaseConnect)
	clock.Advance(30 * time.Millisecond)
	m.End()
	det.Event("detect", "verdict", "blocked")
	det.Close()

	// The ladder walks two candidates that fail mid-fetch; each failure
	// benches its approach at the span level.
	for _, name := range []string{"gdns", "front"} {
		l := sp.Lane(name)
		l.Event("circum", "attempt", name)
		m := l.Begin(PhaseConnect)
		clock.Advance(55 * time.Millisecond)
		m.End()
		m = l.Begin(PhaseTLS)
		clock.Advance(20 * time.Millisecond)
		m.End()
		l.Event("circum", "fail", name+": connection reset")
		l.Close()
		sp.Event("quarantine", "bench", name)
	}
	sp.Event("circum", "budget-exhausted", "front")

	// The serving lane opens 220ms in: 70ms of re-detection plus two 75ms
	// failed rungs. All of that must land in PhaseSwitch.
	serve := sp.Lane("tor")
	phaseMS := map[Phase]int{PhaseDNS: 10, PhaseConnect: 15, PhaseTLS: 25, PhaseTTFB: 5, PhaseBody: 60}
	for p := PhaseDNS; p <= PhaseBody; p++ {
		m := serve.Begin(p)
		clock.Advance(time.Duration(phaseMS[p]) * time.Millisecond)
		m.End()
	}
	clock.Advance(12 * time.Millisecond) // unattributed bookkeeping tail
	serve.Close()
	sp.Finish("tor", "circumvented", nil)

	recs := sink.Records()
	if len(recs) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(recs))
	}
	r := recs[0]
	if !r.HasPhases {
		t.Fatal("no phase partition despite a serving lane")
	}
	if len(r.Lanes) != 4 {
		t.Fatalf("recorded %d lanes, want 4 (detect + 2 failed + serving)", len(r.Lanes))
	}
	var sum time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if r.Phases[p] < 0 {
			t.Errorf("negative %s phase %v", p, r.Phases[p])
		}
		sum += r.Phases[p]
	}
	if sum != r.PLT {
		t.Errorf("phases sum to %v, PLT %v", sum, r.PLT)
	}
	if want := 220 * time.Millisecond; r.Phases[PhaseSwitch] != want {
		t.Errorf("switch = %v, want %v (re-detect + failed rungs)", r.Phases[PhaseSwitch], want)
	}
	if want := 12 * time.Millisecond; r.Phases[PhaseOther] != want {
		t.Errorf("other = %v, want %v", r.Phases[PhaseOther], want)
	}
	// The span-level failover events must all survive into the record.
	events := map[string]int{}
	for _, e := range r.Events {
		events[e.Layer+"/"+e.Name]++
	}
	for name, want := range map[string]int{
		"db/stale-verdict": 1, "quarantine/bench": 2, "circum/budget-exhausted": 1,
	} {
		if events[name] != want {
			t.Errorf("event %s recorded %d times, want %d", name, events[name], want)
		}
	}
}

// --- Lifetime: lanes and holds defer emission ---------------------------

func TestEmissionWaitsForLanesAndHolds(t *testing.T) {
	var buf bytes.Buffer
	sink := NewStreamSink(&buf)
	tr := New(frozenClock(), sink)

	sp := tr.Start("c", 1, "a.example/")
	bg := sp.Lane("direct") // background measurement outliving the fetch
	sp.Hold()               // the redundant-copy goroutine
	sp.Finish("global", "blocked", nil)
	if sink.Count() != 0 {
		t.Fatal("span emitted while a lane and a hold were still open")
	}
	bg.Close()
	if sink.Count() != 0 {
		t.Fatal("span emitted while a hold was still open")
	}
	late := sp.Lane("tor") // the copy goroutine opens its lane after Finish
	sp.Release()
	if sink.Count() != 0 {
		t.Fatal("span emitted while the late lane was open")
	}
	late.Close()
	if sink.Count() != 1 {
		t.Fatalf("span not emitted after last lane closed (count %d)", sink.Count())
	}
	if got := buf.String(); !strings.Contains(got, `"lane":"tor"`) {
		t.Errorf("late lane missing from record: %s", got)
	}
	// Double Close / double Finish stay idempotent.
	late.Close()
	sp2 := tr.Start("c", 2, "a.example/")
	sp2.Finish("direct", "clean", nil)
	sp2.Finish("direct", "clean", nil)
	if sink.Count() != 2 {
		t.Errorf("idempotence broken: %d spans emitted, want 2", sink.Count())
	}
}

// TestPoolReuseKeepsRecordsClean runs many sequential spans (each emission
// recycles the span and its lanes) and checks no state bleeds between them.
func TestPoolReuseKeepsRecordsClean(t *testing.T) {
	sink := &CollectSink{}
	tr := New(frozenClock(), sink)
	for i := 0; i < 200; i++ {
		sp := tr.Start("c", uint64(i), fmt.Sprintf("u%d.example/", i))
		sp.Event("db", "lookup", fmt.Sprintf("miss-%d", i))
		l := sp.Lane("direct")
		l.Event("dns", "query", fmt.Sprintf("u%d.example", i))
		l.Close()
		sp.Finish("direct", "clean", nil)
	}
	recs := sink.Records()
	if len(recs) != 200 {
		t.Fatalf("recorded %d spans", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || r.URL != fmt.Sprintf("u%d.example/", i) {
			t.Fatalf("span %d carries seq %d url %s", i, r.Seq, r.URL)
		}
		if len(r.Events) != 1 || len(r.Lanes) != 1 || len(r.Lanes[0].Events) != 1 {
			t.Fatalf("span %d: stale pooled state: %d events, %d lanes", i, len(r.Events), len(r.Lanes))
		}
		if want := fmt.Sprintf("miss-%d", i); r.Events[0].Detail != want {
			t.Fatalf("span %d: event detail %q, want %q", i, r.Events[0].Detail, want)
		}
	}
}

// TestConcurrentSpans exercises the pools and the sink under parallel
// recording; `make race` turns this into the recorder's data-race gate.
func TestConcurrentSpans(t *testing.T) {
	sink := &CollectSink{}
	tr := New(frozenClock(), sink)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start(fmt.Sprintf("c%d", w), uint64(i), "shared.example/")
				l := sp.Lane("direct")
				l.Event("dns", "query", "shared.example")
				l.Add(PhaseDNS, time.Millisecond)
				done := make(chan struct{})
				sp.Hold()
				go func() {
					defer sp.Release()
					bg := sp.Lane("tor")
					bg.Event("circum", "attempt", "tor")
					bg.Close()
					close(done)
				}()
				l.Close()
				sp.Finish("direct", "clean", nil)
				<-done
			}
		}(w)
	}
	wg.Wait()
	if got := len(sink.Records()); got != workers*perWorker {
		t.Errorf("recorded %d spans, want %d", got, workers*perWorker)
	}
	if started, sampled := tr.Stats(); started != workers*perWorker || sampled != started {
		t.Errorf("stats %d/%d", started, sampled)
	}
}

// --- Sinks --------------------------------------------------------------

func TestSortedSinkCanonicalOrder(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSortedSink(&buf)
	emit := func(client string, seq uint64) {
		rec := &Record{Client: client, Seq: seq}
		sink.Span([]byte(fmt.Sprintf("%s/%d\n", client, seq)), rec)
	}
	emit("b", 2)
	emit("a", 2)
	emit("b", 1)
	emit("a", 1)
	if sink.Count() != 4 {
		t.Fatalf("buffered %d", sink.Count())
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "a/1\na/2\nb/1\nb/2\n"
	if buf.String() != want {
		t.Errorf("sorted output %q, want %q", buf.String(), want)
	}
	if sink.Count() != 0 {
		t.Error("Flush did not drain the buffer")
	}
}

// TestBreakdownAggregates checks the per-source table the experiments print.
func TestBreakdownAggregates(t *testing.T) {
	clock := frozenClock()
	tr := New(clock, NewStreamSink(bytes.NewBuffer(nil)))
	for i := 0; i < 3; i++ {
		sp := tr.Start("c", uint64(i), "x.example/")
		l := sp.Lane("direct")
		m := l.Begin(PhaseDNS)
		clock.Advance(100 * time.Millisecond)
		m.End()
		l.Close()
		sp.Finish("direct", "clean", nil)
	}
	b := tr.Breakdown()
	if !strings.Contains(b, "direct") || !strings.Contains(b, "0.10s") {
		t.Errorf("breakdown missing the aggregated source/phase:\n%s", b)
	}
	if tr2 := New(frozenClock(), nil); tr2.Breakdown() != "" {
		t.Error("empty tracer should render an empty breakdown")
	}
}
