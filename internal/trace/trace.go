// Package trace is C-Saw's flight recorder: a per-fetch record of where
// page-load time went, across every layer of the emulated internet the
// censor can touch. The paper's incentive argument is a PLT argument
// (§2.4, §5) — the client keeps users by serving the fastest working path —
// so the recorder's unit of account is one FetchURL call (a Span) broken
// into the concurrent paths that raced to serve it (Lanes: the direct
// measurement and each circumvention attempt), and each lane into the
// protocol phases a censor interferes with: DNS, TCP connect, TLS, TTFB,
// body, plus the circumvention-switch penalty (how long the serving lane
// waited to even start) and an "other" remainder so the phases always sum
// exactly to the reported PLT.
//
// Design constraints, in order:
//
//   - Zero allocation when disabled. A nil *Tracer starts a nil *Span; every
//     method is nil-receiver safe and a no-op, and context helpers do not
//     allocate for nil values. The fleet's hot path pays one pointer test.
//   - Pooled when enabled. Spans and lanes come from sync.Pools and return
//     there after emission; event slices keep their backing arrays.
//   - Virtual time only. All timestamps come from the *vtime.Clock; the
//     package obeys csaw-lint's vtimecheck and uses no randomness (randdet).
//   - Deterministic artifacts. Virtual elapsed time is scaled real time, so
//     *measured durations are not byte-stable* across runs (DESIGN.md,
//     "Determinism"). The recorder therefore has two emission profiles: the
//     default deterministic profile emits the schedule-invariant structure
//     (lanes, events, verdicts, selection reasons) and omits measured
//     numbers; WithTiming adds durations floor-quantized to a tick for
//     human consumption. Golden traces and fleet traces use the former.
//   - Sampled at scale. Sampling is a deterministic hash of the URL
//     (Sampled), so same-seed runs sample the same spans.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"csaw/internal/vtime"
)

// Phase indexes the PLT breakdown of one lane.
type Phase int

// Phases, in emission order. PhaseSwitch and PhaseOther are computed at
// Finish: the serving lane's start offset, and the PLT remainder.
const (
	PhaseDNS Phase = iota
	PhaseConnect
	PhaseTLS
	PhaseTTFB
	PhaseBody
	PhaseSwitch
	PhaseOther
	NumPhases
)

// String returns the phase's JSON key.
func (p Phase) String() string {
	switch p {
	case PhaseDNS:
		return "dns"
	case PhaseConnect:
		return "connect"
	case PhaseTLS:
		return "tls"
	case PhaseTTFB:
		return "ttfb"
	case PhaseBody:
		return "body"
	case PhaseSwitch:
		return "switch"
	case PhaseOther:
		return "other"
	default:
		return "phase(?)"
	}
}

// Event is one recorded observation: a DNS attempt, a dial verdict, a TLS
// hello, a selection decision. T is the virtual offset from the span start;
// Num is an optional numeric payload (an EWMA value, a PLT sample) emitted
// only in the timing profile, since measured numbers are not byte-stable.
type Event struct {
	T      time.Duration
	Layer  string
	Name   string
	Detail string
	Num    float64
	HasNum bool
}

// DefaultTick is the duration quantum of the timing profile.
const DefaultTick = 100 * time.Millisecond

// DefaultSampleN is the fleet default: trace one URL in 64.
const DefaultSampleN = 64

// Tracer owns the clock, the sampling policy, the emission profile, the
// span/lane pools, and the per-source phase aggregation.
type Tracer struct {
	clock   *vtime.Clock
	sink    Sink
	sampleN uint64
	timing  bool
	tick    time.Duration

	spanPool sync.Pool
	lanePool sync.Pool
	bufPool  sync.Pool

	started atomic.Uint64 // spans requested
	sampled atomic.Uint64 // spans actually recorded

	mu  sync.Mutex
	agg map[string]*sourceAgg
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSampling traces one URL in n (deterministic hash-of-URL). n <= 1
// traces everything.
func WithSampling(n int) Option {
	return func(t *Tracer) {
		if n > 1 {
			t.sampleN = uint64(n)
		}
	}
}

// WithTiming switches to the timing profile: emitted records carry PLT,
// phase durations, and event offsets, floor-quantized to tick (DefaultTick
// when tick <= 0). Timing records are for humans and aggregation; they are
// not byte-stable across runs.
func WithTiming(tick time.Duration) Option {
	return func(t *Tracer) {
		t.timing = true
		if tick <= 0 {
			tick = DefaultTick
		}
		t.tick = tick
	}
}

// New builds a tracer. clock and sink are required.
func New(clock *vtime.Clock, sink Sink, opts ...Option) *Tracer {
	t := &Tracer{clock: clock, sink: sink, sampleN: 1, tick: DefaultTick}
	t.spanPool.New = func() any { return new(Span) }
	t.lanePool.New = func() any { return new(Lane) }
	t.bufPool.New = func() any { b := make([]byte, 0, 1024); return &b }
	t.agg = make(map[string]*sourceAgg)
	for _, o := range opts {
		o(t)
	}
	return t
}

// Sampled reports whether the deterministic hash-of-URL sampler traces url
// at rate 1-in-n.
func Sampled(url string, n int) bool {
	if n <= 1 {
		return true
	}
	return fnv64a(url)%uint64(n) == 0
}

// fnv64a is the 64-bit FNV-1a hash.
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Stats returns how many spans were requested and how many were sampled in.
func (t *Tracer) Stats() (started, sampled uint64) {
	if t == nil {
		return 0, 0
	}
	return t.started.Load(), t.sampled.Load()
}

// Start opens a span for one fetch. Returns nil (all ops no-op) on a nil
// tracer or when the URL is sampled out.
func (t *Tracer) Start(client string, seq uint64, url string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	if t.sampleN > 1 && fnv64a(url)%t.sampleN != 0 {
		return nil
	}
	t.sampled.Add(1)
	s := t.spanPool.Get().(*Span)
	s.tr = t
	s.client = client
	s.seq = seq
	s.url = url
	s.start = t.clock.Now()
	s.open = 1 // the fetch itself; released by Finish
	s.finished = false
	s.source, s.status, s.errStr = "", "", ""
	s.plt = 0
	return s
}

// Span is one FetchURL call. All mutation is guarded by mu; methods are
// nil-receiver safe.
type Span struct {
	tr     *Tracer
	client string
	seq    uint64
	url    string
	start  time.Time

	mu       sync.Mutex
	events   []Event // span-level (DB decisions, selection)
	lanes    []*Lane
	open     int // Finish hold + open lanes + explicit holds
	finished bool

	source, status, errStr string
	plt                    time.Duration
}

// Event records a span-level event (not tied to one network path).
func (s *Span) Event(layer, name, detail string) {
	if s == nil || s.tr == nil {
		return
	}
	t := s.tr.clock.Since(s.start)
	s.mu.Lock()
	s.events = append(s.events, Event{T: t, Layer: layer, Name: name, Detail: detail})
	s.mu.Unlock()
}

// EventNum is Event with a numeric payload (emitted only under WithTiming).
func (s *Span) EventNum(layer, name, detail string, num float64) {
	if s == nil || s.tr == nil {
		return
	}
	t := s.tr.clock.Since(s.start)
	s.mu.Lock()
	s.events = append(s.events, Event{T: t, Layer: layer, Name: name, Detail: detail, Num: num, HasNum: true})
	s.mu.Unlock()
}

// Lane opens a recording lane for one concurrent path ("direct" or an
// approach name). The lane must be Closed by whoever drives the path; the
// span is emitted only after Finish AND every lane has closed, so lanes may
// outlive the fetch (background direct measurements do).
func (s *Span) Lane(name string) *Lane {
	if s == nil || s.tr == nil {
		return nil
	}
	l := s.tr.lanePool.Get().(*Lane)
	l.span = s
	l.name = name
	l.start = s.tr.clock.Since(s.start)
	l.closed = false
	for i := range l.phases {
		l.phases[i] = 0
	}
	s.mu.Lock()
	s.lanes = append(s.lanes, l)
	s.open++
	s.mu.Unlock()
	return l
}

// Hold keeps the span alive across a goroutine that may open lanes later
// (the staggered redundant copy). Pair with Release.
func (s *Span) Hold() {
	if s == nil || s.tr == nil {
		return
	}
	s.mu.Lock()
	s.open++
	s.mu.Unlock()
}

// Release undoes Hold and emits the span if it was the last reference.
func (s *Span) Release() {
	if s == nil || s.tr == nil {
		return
	}
	s.mu.Lock()
	s.open--
	emit := s.open == 0 && s.finished
	s.mu.Unlock()
	if emit {
		s.emit()
	}
}

// Finish seals the span with the fetch result. Emission happens now, or
// when the last background lane closes. Like Lane.Close, a stray call after
// the span emitted and was recycled (tr nilled) is a best-effort no-op.
func (s *Span) Finish(source, status string, err error) {
	if s == nil || s.tr == nil {
		return
	}
	plt := s.tr.clock.Since(s.start)
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.source, s.status = source, status
	if err != nil {
		s.errStr = err.Error()
	}
	s.plt = plt
	s.open--
	emit := s.open == 0
	s.mu.Unlock()
	if emit {
		s.emit()
	}
}

// Lane is one concurrent path within a span. Methods are nil-receiver safe;
// concurrent copies of one attempt may share a lane (guarded by the span's
// mutex).
type Lane struct {
	span   *Span
	closed bool
	name   string
	start  time.Duration
	phases [NumPhases]time.Duration
	events []Event
}

// Name returns the lane's name ("direct" or the approach name).
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Span returns the owning span (nil-safe).
func (l *Lane) Span() *Span {
	if l == nil {
		return nil
	}
	return l.span
}

// Event records a lane event.
func (l *Lane) Event(layer, name, detail string) {
	if l == nil || l.span == nil {
		return
	}
	s := l.span
	t := s.tr.clock.Since(s.start)
	s.mu.Lock()
	l.events = append(l.events, Event{T: t, Layer: layer, Name: name, Detail: detail})
	s.mu.Unlock()
}

// EventNum is Event with a numeric payload.
func (l *Lane) EventNum(layer, name, detail string, num float64) {
	if l == nil || l.span == nil {
		return
	}
	s := l.span
	t := s.tr.clock.Since(s.start)
	s.mu.Lock()
	l.events = append(l.events, Event{T: t, Layer: layer, Name: name, Detail: detail, Num: num, HasNum: true})
	s.mu.Unlock()
}

// Add accumulates a phase duration measured by the caller.
func (l *Lane) Add(p Phase, d time.Duration) {
	if l == nil || l.span == nil || d <= 0 {
		return
	}
	s := l.span
	s.mu.Lock()
	l.phases[p] += d
	s.mu.Unlock()
}

// Mark is an in-flight phase measurement (a value; no allocation).
type Mark struct {
	lane *Lane
	p    Phase
	t0   time.Time
}

// Begin starts measuring a phase; End stops and accumulates it.
func (l *Lane) Begin(p Phase) Mark {
	if l == nil || l.span == nil {
		return Mark{}
	}
	return Mark{lane: l, p: p, t0: l.span.tr.clock.Now()}
}

// End finishes the measurement started by Begin.
func (m Mark) End() {
	if m.lane == nil || m.lane.span == nil {
		return
	}
	m.lane.Add(m.p, m.lane.span.tr.clock.Since(m.t0))
}

// Close seals the lane. Every opened lane must be closed exactly once; the
// span emits when the last reference (lanes, holds, Finish) drops. A stray
// Close after the span emitted (l.span nilled at recycle) is a no-op rather
// than a panic — best-effort only, since a recycled lane may already serve
// another span.
func (l *Lane) Close() {
	if l == nil {
		return
	}
	s := l.span
	if s == nil {
		return
	}
	s.mu.Lock()
	if l.closed {
		s.mu.Unlock()
		return
	}
	l.closed = true
	s.open--
	emit := s.open == 0 && s.finished
	s.mu.Unlock()
	if emit {
		s.emit()
	}
}

// emit builds the transient Record, aggregates the phase breakdown, hands
// the encoded line to the sink, and recycles the span and its lanes. Called
// exactly once, after the last reference drops, so no locking is needed for
// the span's own state.
func (s *Span) emit() {
	t := s.tr
	rec := Record{
		Client: s.client,
		Seq:    s.seq,
		URL:    s.url,
		Source: s.source,
		Status: s.status,
		Err:    s.errStr,
		PLT:    s.plt,
		Events: s.events,
	}
	// The serving lane: the first lane whose name matches the result source.
	// Its sequential phases, plus the switch penalty (its start offset) and
	// the remainder, partition the PLT exactly.
	for _, l := range s.lanes {
		rec.Lanes = append(rec.Lanes, LaneRecord{Name: l.name, Start: l.start, Events: l.events})
		if !rec.HasPhases && l.name == s.source {
			rec.HasPhases = true
			rec.Phases = l.phases
			rec.Phases[PhaseSwitch] = l.start
			rest := s.plt - l.start
			for p := PhaseDNS; p <= PhaseBody; p++ {
				rest -= l.phases[p]
			}
			if rest < 0 {
				rest = 0
			}
			rec.Phases[PhaseOther] = rest
		}
	}
	t.aggregate(&rec)
	if t.sink != nil {
		bp := t.bufPool.Get().(*[]byte)
		line := encodeRecord((*bp)[:0], &rec, t.timing, t.tick)
		t.sink.Span(line, &rec)
		*bp = line[:0]
		t.bufPool.Put(bp)
	}
	// Recycle.
	for _, l := range s.lanes {
		l.span = nil
		l.events = l.events[:0]
		t.lanePool.Put(l)
	}
	s.lanes = s.lanes[:0]
	s.events = s.events[:0]
	s.tr = nil
	t.spanPool.Put(s)
}
