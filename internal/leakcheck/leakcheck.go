// Package leakcheck asserts that a test leaves no goroutines behind — the
// guard for the client-shutdown contract: Close must reap the sync/probe
// loops, background settlement goroutines, and stop-context watchers, even
// when the virtual clock never advances again.
//
// It deliberately uses wall-clock polling (the goroutines being reaped run
// on real scheduler time once their contexts are cancelled; virtual time is
// irrelevant to teardown) and a small tolerance for runtime-internal
// goroutines.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Tolerance absorbs runtime-owned goroutines that come and go outside the
// test's control (GC workers, timer goroutines, netem housekeeping started
// by earlier tests in the same binary).
const Tolerance = 3

// Check snapshots the goroutine count and registers a cleanup that fails
// the test if, after polling for a grace period, more than baseline +
// Tolerance goroutines remain. Call it first thing in a test:
//
//	func TestX(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
func Check(t testing.TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second) //lint:allow-realtime goroutine settling is real-scheduler time, not simulation time
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= baseline+Tolerance {
				return
			}
			if time.Now().After(deadline) { //lint:allow-realtime real settling deadline
				break
			}
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond) //lint:allow-realtime real backoff between goroutine-count polls
		}
		t.Errorf("leakcheck: %d goroutines still running (baseline %d, tolerance %d)\n%s",
			n, baseline, Tolerance, stacks())
	})
}

// stacks renders the live goroutine stacks, trimmed to the interesting
// lines so a failure report stays readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	gs := strings.Split(string(buf), "\n\n")
	sort.Strings(gs)
	var b strings.Builder
	for i, g := range gs {
		if i >= 25 {
			fmt.Fprintf(&b, "... and %d more\n", len(gs)-i)
			break
		}
		b.WriteString(g)
		b.WriteString("\n\n")
	}
	return b.String()
}
