package detect

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"csaw/internal/blockpage"
	"csaw/internal/censor"
	"csaw/internal/dnsx"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/tlsx"
	"csaw/internal/vtime"
)

// tlsServer completes a pseudo-TLS handshake presenting whatever name the
// client asked for.
func tlsServer(raw net.Conn) (net.Conn, error) {
	return tlsx.Server(raw, func(sni string) string { return strings.ToLower(sni) })
}

func newReader(c net.Conn) *bufio.Reader { return bufio.NewReader(c) }

const (
	originIP = "93.184.216.34"
	blockIP  = "10.0.9.9"
)

// detWorld builds a censored world and a Detector for its client.
func detWorld(t *testing.T, p *censor.Policy) (*netem.Network, *Detector, *censor.Censor) {
	t.Helper()
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(31), netem.WithJitter(0))
	isp := n.AddAS(100, "ISP-A", "PK")
	us := n.AddAS(200, "US", "US")
	client := n.MustAddHost("client", "10.0.0.1", "pk", isp)
	resolver := n.MustAddHost("resolver", "10.0.0.53", "pk", isp)
	public := n.MustAddHost("public-dns", "8.8.8.8", "us", us)
	origin := n.MustAddHost("origin", originIP, "us", us)
	blockHost := n.MustAddHost("block.isp.pk", blockIP, "pk", isp)
	n.SetRTT("pk", "us", 150*time.Millisecond)

	reg := dnsx.NewRegistry()
	reg.Set("www.youtube.com", originIP)
	reg.Set("ok.example.com", originIP)
	reg.Set("block.isp.pk", blockIP)

	cen := censor.New(p)
	cen.Attach(isp)
	if _, err := dnsx.NewServer(resolver, cen.ResolverHandler(reg, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := dnsx.NewServer(public, dnsx.AuthHandler(reg, 300)); err != nil {
		t.Fatal(err)
	}

	// Origin serves real pages on 80 and 443 (any SNI it hosts).
	pageBody := []byte("<html><head><title>Real</title></head><body>" +
		string(make([]byte, 2000)) + "</body></html>")
	h := httpx.HandlerFunc(func(req *httpx.Request, _ netem.Flow) *httpx.Response {
		resp := httpx.NewResponse(200, pageBody)
		resp.Header.Set("Content-Type", "text/html")
		return resp
	})
	httpx.Serve(origin.MustListen(80), h)
	serveTLS(origin, h)

	// ISP block-page host answers everything with the block page.
	httpx.Serve(blockHost.MustListen(80), httpx.HandlerFunc(func(*httpx.Request, netem.Flow) *httpx.Response {
		resp := httpx.NewResponse(200, []byte(censor.DefaultBlockPageHTML))
		resp.Header.Set("Content-Type", "text/html")
		return resp
	}))

	ldns := dnsx.NewClient(client, "10.0.0.53:53")
	gdns := dnsx.NewClient(client, "8.8.8.8:53")
	det := &Detector{
		Clock:      clock,
		Dial:       client.Dial,
		LDNS:       ldns,
		GDNS:       gdns,
		Classifier: blockpage.NewClassifier(),
	}
	return n, det, cen
}

func serveTLS(host *netem.Host, h httpx.Handler) {
	// Reuse the web-origin style TLS loop via web.ServeHTTPS semantics
	// without importing web (keep detect's tests to its own layer).
	l := host.MustListen(443)
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				tc, err := tlsServer(raw)
				if err != nil {
					raw.Close()
					return
				}
				defer tc.Close()
				req, err := httpx.ReadRequest(newReader(tc))
				if err != nil {
					return
				}
				_ = httpx.WriteResponse(tc, h.ServeHTTP(req, netem.Flow{}))
			}()
		}
	}()
}

func measure(t *testing.T, det *Detector, url string, scheme Scheme) Outcome {
	t.Helper()
	return det.Measure(context.Background(), url, scheme)
}

func TestCleanURL(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if out.Blocked() || out.Response == nil {
		t.Fatalf("clean URL: %+v (err=%v)", out, out.Err)
	}
	if out.Took > 5*time.Second {
		t.Errorf("clean detection took %v", out.Took)
	}
}

func TestDNSModesDetected(t *testing.T) {
	cases := []struct {
		act        censor.DNSAction
		detail     string
		minT, maxT time.Duration
	}{
		// Table 5 timing shape: REFUSED fast, SERVFAIL ~10s, drop ~10s.
		{censor.DNSNXDomain, "nxdomain", 0, 6 * time.Second},
		{censor.DNSRefused, "refused", 0, 6 * time.Second},
		{censor.DNSServFail, "servfail", 9 * time.Second, 16 * time.Second},
		{censor.DNSDrop, "no-response", 9 * time.Second, 16 * time.Second},
	}
	for _, c := range cases {
		t.Run(c.detail, func(t *testing.T) {
			_, det, _ := detWorld(t, &censor.Policy{
				DNS: map[string]censor.DNSAction{"youtube.com": c.act},
			})
			out := measure(t, det, "www.youtube.com/", HTTP)
			if !out.Blocked() || out.PrimaryType() != localdb.BlockDNS {
				t.Fatalf("outcome = %+v", out)
			}
			if out.Stages[0].Detail != c.detail {
				t.Errorf("detail = %q, want %q", out.Stages[0].Detail, c.detail)
			}
			if out.Took < c.minT || out.Took > c.maxT {
				t.Errorf("took %v, want in [%v, %v]", out.Took, c.minT, c.maxT)
			}
			// The direct path continued via GDNS and found the real page.
			if out.Response == nil && len(out.Stages) == 1 {
				t.Errorf("no response despite single-stage DNS blocking")
			}
		})
	}
}

func TestIPReset(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{IP: map[string]censor.IPAction{originIP: censor.IPReset}})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.PrimaryType() != localdb.BlockIP {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Took > 5*time.Second {
		t.Errorf("RST detection took %v, want fast", out.Took)
	}
}

func TestIPDropTakesConnectTimeout(t *testing.T) {
	// Table 5: TCP/IP blocking ≈ 21s.
	_, det, _ := detWorld(t, &censor.Policy{IP: map[string]censor.IPAction{originIP: censor.IPDrop}})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.PrimaryType() != localdb.BlockTCPTimeout {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Took < 19*time.Second || out.Took > 28*time.Second {
		t.Errorf("took %v, want ~21s", out.Took)
	}
}

func TestMultiStageDNSPlusTCP(t *testing.T) {
	// Table 5's worst case (~32.7s): DNS drop, then TCP/IP drop via GDNS IP.
	_, det, _ := detWorld(t, &censor.Policy{
		DNS: map[string]censor.DNSAction{"youtube.com": censor.DNSDrop},
		IP:  map[string]censor.IPAction{originIP: censor.IPDrop},
	})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || len(out.Stages) != 2 {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Stages[0].Type != localdb.BlockDNS || out.Stages[1].Type != localdb.BlockTCPTimeout {
		t.Fatalf("stages = %s", out.StageSummary())
	}
	if out.Took < 28*time.Second || out.Took > 40*time.Second {
		t.Errorf("took %v, want ~32s", out.Took)
	}
}

func TestHTTPBlockPagePhase1(t *testing.T) {
	// Table 5: HTTP block page ≈ 1.8s — much faster than timeout cases.
	_, det, _ := detWorld(t, &censor.Policy{HTTP: []censor.HTTPRule{{Host: "youtube.com", Action: censor.HTTPBlockPage}}})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.PrimaryType() != localdb.BlockHTTP || !out.Suspected {
		t.Fatalf("outcome = %+v stages=%s", out, out.StageSummary())
	}
	if out.Stages[0].Detail != "blockpage" {
		t.Errorf("detail = %q", out.Stages[0].Detail)
	}
	if out.Took > 6*time.Second {
		t.Errorf("took %v, want ~2s", out.Took)
	}
}

func TestHTTPRedirectBlockPage(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{
		HTTP:         []censor.HTTPRule{{Host: "youtube.com", Action: censor.HTTPRedirect}},
		BlockPageURL: "block.isp.pk/blocked.html",
	})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.Stages[0].Detail != "blockpage-redirect" {
		t.Fatalf("outcome = %+v stages=%s", out, out.StageSummary())
	}
}

func TestHTTPIframeBlockPage(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{
		HTTP:         []censor.HTTPRule{{Host: "youtube.com", Action: censor.HTTPIframe}},
		BlockPageURL: "block.isp.pk/blocked.html",
	})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.PrimaryType() != localdb.BlockHTTP {
		t.Fatalf("iframe block page not caught: %+v", out)
	}
}

func TestHTTPDropTimesOut(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{HTTP: []censor.HTTPRule{{Host: "youtube.com", Action: censor.HTTPDrop}}})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.PrimaryType() != localdb.BlockHTTP {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Took < 15*time.Second {
		t.Errorf("took %v, want ~HTTP timeout", out.Took)
	}
}

func TestHTTPResetFast(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{HTTP: []censor.HTTPRule{{Host: "youtube.com", Action: censor.HTTPReset}}})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() || out.Stages[0].Detail != "rst" {
		t.Fatalf("outcome = %+v stages=%s", out, out.StageSummary())
	}
	if out.Took > 6*time.Second {
		t.Errorf("took %v, want fast", out.Took)
	}
}

func TestDNSRedirectToBlockPageHost(t *testing.T) {
	// The resolver redirects to the ISP block-page host: Figure 4's
	// "HTTP/S Blocking + Possible DNS" combined box.
	_, det, _ := detWorld(t, &censor.Policy{
		DNS:        map[string]censor.DNSAction{"youtube.com": censor.DNSRedirect},
		RedirectIP: blockIP,
	})
	out := measure(t, det, "www.youtube.com/", HTTP)
	if !out.Blocked() {
		t.Fatalf("outcome = %+v", out)
	}
	var hasHTTP, hasDNS bool
	for _, s := range out.Stages {
		hasHTTP = hasHTTP || (s.Type == localdb.BlockHTTP && s.Detail == "blockpage")
		hasDNS = hasDNS || (s.Type == localdb.BlockDNS && s.Detail == "redirect")
	}
	if !hasHTTP || !hasDNS {
		t.Fatalf("stages = %s, want blockpage + dns redirect", out.StageSummary())
	}
}

func TestSNIBlockingDetected(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{SNI: map[string]censor.TLSAction{"youtube.com": censor.TLSReset}})
	out := measure(t, det, "www.youtube.com/", HTTPS)
	if !out.Blocked() || out.PrimaryType() != localdb.BlockSNI {
		t.Fatalf("outcome = %+v stages=%s", out, out.StageSummary())
	}
}

func TestHTTPSCleanThroughInspector(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{SNI: map[string]censor.TLSAction{"youtube.com": censor.TLSReset}})
	out := measure(t, det, "ok.example.com/", HTTPS)
	if out.Blocked() {
		t.Fatalf("clean HTTPS blocked: %+v stages=%s err=%v", out, out.StageSummary(), out.Err)
	}
}

func TestUnresolvableIsNotCensorship(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{})
	out := measure(t, det, "no-such-site.example/", HTTP)
	if out.Blocked() {
		t.Fatalf("dead name declared blocked: %+v", out)
	}
	if out.Err == nil {
		t.Error("expected an unresolvable error")
	}
}

func TestDeadPortIsNotCensorship(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{})
	out := measure(t, det, "block.isp.pk/x", HTTPS) // block host has no 443
	if out.Blocked() {
		t.Fatalf("refused port declared blocked: %+v stages=%s", out, out.StageSummary())
	}
}

func TestIPLiteralSkipsDNS(t *testing.T) {
	_, det, _ := detWorld(t, &censor.Policy{DNS: map[string]censor.DNSAction{"youtube.com": censor.DNSDrop}})
	out := measure(t, det, originIP+"/", HTTP)
	if out.Blocked() {
		t.Fatalf("IP-literal URL blocked: %+v", out)
	}
	if out.Took > 5*time.Second {
		t.Errorf("IP-literal fetch took %v (DNS should be skipped)", out.Took)
	}
}

func TestStageSummary(t *testing.T) {
	o := Outcome{Stages: []localdb.Stage{{Type: localdb.BlockDNS, Detail: "nxdomain"}, {Type: localdb.BlockHTTP}}}
	if s := o.StageSummary(); s != "dns(nxdomain)+http" {
		t.Fatalf("summary = %q", s)
	}
	if (&Outcome{}).StageSummary() != "none" {
		t.Fatal("empty summary wrong")
	}
}
