// Package detect implements C-Saw's in-line blocking detection for the
// direct path: the flowchart of Figure 4 in the paper. One measurement
// walks the protocol stack the way a censor can interfere with it:
//
//	local DNS → (on failure) global DNS → TCP connect → HTTP/S request
//	→ block-page classification (phase 1)
//
// recording the mechanism at each stage (supporting multi-stage blocking,
// e.g. ISP-B's DNS + HTTP/HTTPS in Table 1) and how long detection took —
// the quantity Table 5 reports per mechanism. A block page found after a
// suspicious DNS answer is attributed to "HTTP/S blocking + possible DNS",
// exactly the combined box in Figure 4, by comparing the local and global
// resolutions.
package detect

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"csaw/internal/blockpage"
	"csaw/internal/dnsx"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/tlsx"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// Default stage timeouts, tuned to the client behaviours behind Table 5:
// a blackholed SYN surfaces after ~21 s of connect retries, a swallowed GET
// after the HTTP read timeout.
const (
	DefaultConnectTimeout = 21 * time.Second
	DefaultHTTPTimeout    = 18 * time.Second
)

// Scheme selects the protocol measured on the direct path.
type Scheme int

// Schemes.
const (
	HTTP Scheme = iota
	HTTPS
)

// String returns the scheme name.
func (s Scheme) String() string {
	if s == HTTPS {
		return "https"
	}
	return "http"
}

// Outcome is one direct-path measurement.
type Outcome struct {
	URL    string
	Scheme Scheme
	Status localdb.Status
	Stages []localdb.Stage
	// Suspected marks a phase-1 block-page verdict that phase 2 (size
	// comparison against a circumvented copy) should confirm (§4.3.1).
	Suspected bool
	// Response is the direct-path response, if any — served to the user
	// when the page is clean.
	Response *httpx.Response
	// ResolvedIP is the address the direct path used.
	ResolvedIP string
	// Took is the total virtual time of the measurement, including any
	// post-verdict continuation (e.g. fetching via GDNS after DNS blocking
	// was established).
	Took time.Duration
	// Detected is the virtual time at which the (last) blocking verdict
	// was reached — Table 5's detection-time metric. Zero when clean.
	Detected time.Duration
	// TimeoutPhase names the protocol phase whose timeout produced a
	// timeout-derived blocking verdict ("dns", "connect", "tls", "http").
	// Empty when the verdict did not come from a timeout — needed to
	// attribute the burnt detection time to the right PLT phase.
	TimeoutPhase string
	// Err is the underlying failure for diagnostics.
	Err error
}

// Blocked reports whether the outcome concluded blocking.
func (o *Outcome) Blocked() bool { return o.Status == localdb.Blocked }

// PrimaryType returns the first detected mechanism.
func (o *Outcome) PrimaryType() localdb.BlockType {
	if len(o.Stages) == 0 {
		return localdb.BlockNone
	}
	return o.Stages[0].Type
}

// StageSummary renders the stages as "dns(nxdomain)+http(blockpage)".
func (o *Outcome) StageSummary() string {
	if len(o.Stages) == 0 {
		return "none"
	}
	parts := make([]string, len(o.Stages))
	for i, s := range o.Stages {
		if s.Detail != "" {
			parts[i] = fmt.Sprintf("%s(%s)", s.Type, s.Detail)
		} else {
			parts[i] = s.Type.String()
		}
	}
	return strings.Join(parts, "+")
}

// Detector measures the direct path.
type Detector struct {
	Clock *vtime.Clock
	// Dial is the direct-path dialer.
	Dial netem.DialFunc
	// LDNS is the stub resolver pointed at the ISP resolver; GDNS at a
	// public resolver outside the ISP (Figure 4's "Global DNS Query").
	LDNS, GDNS *dnsx.Client
	// Classifier is the phase-1 block-page heuristic.
	Classifier *blockpage.Classifier
	// ConnectTimeout and HTTPTimeout override the defaults when positive.
	ConnectTimeout time.Duration
	HTTPTimeout    time.Duration
}

func (d *Detector) connectTimeout() time.Duration {
	if d.ConnectTimeout > 0 {
		return d.ConnectTimeout
	}
	return DefaultConnectTimeout
}

func (d *Detector) httpTimeout() time.Duration {
	if d.HTTPTimeout > 0 {
		return d.HTTPTimeout
	}
	return DefaultHTTPTimeout
}

// Measure runs the Figure-4 flowchart for url ("host/path") over the given
// scheme and returns the verdict.
func (d *Detector) Measure(ctx context.Context, url string, scheme Scheme) (out Outcome) {
	start := d.Clock.Now()
	out = Outcome{URL: url, Scheme: scheme, Status: localdb.NotBlocked}
	defer func() { out.Took = d.Clock.Since(start) }()

	// Flight recorder: every stage verdict lands on the context's lane; the
	// summary verdict (status + stages + timed-out phase) is recorded once,
	// whichever return path runs.
	lane := trace.FromContext(ctx)
	if lane != nil {
		lane.Event("detect", "measure", scheme.String()+" "+url)
		defer func() {
			if out.TimeoutPhase != "" {
				lane.Event("detect", "timeout-phase", out.TimeoutPhase)
			}
			lane.Event("detect", "verdict", out.Status.String()+" "+out.StageSummary())
		}()
	}
	// A blocking verdict reached only because the *caller's* context expired
	// or was cancelled mid-measurement describes the caller — a failover
	// deadline budget, a client shutdown — not the censor, and must never be
	// recorded as a verdict. (Registered after the lane defer so the trace
	// records the rewritten verdict.)
	defer func() {
		if ctx.Err() != nil && out.Status == localdb.Blocked {
			out.Status = localdb.NotMeasured
			out.Suspected = false
			out.Stages = nil
			out.Detected = 0
			out.TimeoutPhase = ""
			if out.Err == nil {
				out.Err = ctx.Err()
			}
		}
	}()

	host, path := localdb.SplitURL(url)

	// Stage 1: DNS. IP-literal hosts skip resolution (the "IP as hostname"
	// fix measures no DNS stage).
	ip := host
	var dnsStage *localdb.Stage
	if !isIPLiteral(host) {
		res := d.LDNS.Lookup(ctx, host)
		switch {
		case res.OK():
			ip = res.IPs[0]
		default:
			// LDNS failed or was tampered with: blocking is detectable
			// right here (Table 5 clocks REFUSED at one RTT); the global
			// query that follows is the continuation, not the detection.
			out.Detected = d.Clock.Since(start)
			detail := dnsDetail(res)
			gres := d.GDNS.Lookup(ctx, host)
			if !gres.OK() {
				gdetail := dnsDetail(gres)
				if silentDNS(detail) && silentDNS(gdetail) && ctx.Err() == nil {
					// Both resolvers went *silent*. Dead names answer with
					// NXDOMAIN; dropped queries on both the ISP and the
					// global path mean on-path DNS interception (a censor
					// poisoning/dropping foreign resolver traffic — the
					// counter-circumvention escalation). That is a verdict,
					// not an unresolvable name.
					out.TimeoutPhase = "dns"
					out.Stages = append(out.Stages, localdb.Stage{Type: localdb.BlockDNS, Detail: detail})
					out.Status = localdb.Blocked
					out.Detected = d.Clock.Since(start)
					out.Err = fmt.Errorf("detect: %s: DNS silent on local and global paths: local %v, global %v", host, res.Err, gres.Err)
					return out
				}
				// Not resolvable anywhere: a dead name, not censorship.
				out.Detected = 0
				out.Err = fmt.Errorf("detect: %s unresolvable: local %v, global %v", host, res.Err, gres.Err)
				return out
			}
			ip = gres.IPs[0]
			if detail == "no-response" || detail == "timeout" {
				out.TimeoutPhase = "dns"
			}
			dnsStage = &localdb.Stage{Type: localdb.BlockDNS, Detail: detail}
			out.Stages = append(out.Stages, *dnsStage)
			out.Status = localdb.Blocked
		}
	}
	out.ResolvedIP = ip

	// Stage 2: TCP connect.
	port := 80
	if scheme == HTTPS {
		port = tlsx.Port
	}
	cctx, cancel := d.Clock.WithTimeout(ctx, d.connectTimeout())
	mark := lane.Begin(trace.PhaseConnect)
	conn, err := d.Dial(cctx, fmt.Sprintf("%s:%d", ip, port))
	mark.End()
	cancel()
	if err != nil {
		out.Status = localdb.Blocked
		out.Err = err
		out.Detected = d.Clock.Since(start)
		switch {
		case netem.IsReset(err):
			out.Stages = append(out.Stages, localdb.Stage{Type: localdb.BlockIP, Detail: "rst"})
		case netem.IsTimeout(err):
			out.TimeoutPhase = "connect"
			out.Stages = append(out.Stages, localdb.Stage{Type: localdb.BlockTCPTimeout, Detail: "connect-timeout"})
		case netem.IsRefused(err) && dnsStage != nil:
			// Redirected to a host that refuses the port: DNS blocking
			// already established; nothing to add.
		case netem.IsRefused(err):
			// Refused: either the real service is down, or a clean-looking
			// DNS answer silently redirected us to a host that does not
			// serve this port (ISP-B's HTTPS behaviour in Table 1). The
			// global resolver disambiguates.
			if !isIPLiteral(host) {
				if g := d.GDNS.Lookup(ctx, host); g.OK() && !containsStr(g.IPs, ip) {
					out.Stages = append(out.Stages, localdb.Stage{Type: localdb.BlockDNS, Detail: "redirect"})
					out.Detected = d.Clock.Since(start)
					break
				}
			}
			out.Status = localdb.NotBlocked
			out.Stages = nil
			out.Detected = 0
		default:
			out.Stages = append(out.Stages, localdb.Stage{Type: localdb.BlockTCPTimeout, Detail: "connect-failed"})
		}
		return out
	}
	defer conn.Close()

	// Stage 3: the HTTP/S exchange.
	_ = conn.SetDeadline(d.Clock.Now().Add(d.httpTimeout()))
	var stream net.Conn = conn
	if scheme == HTTPS {
		tc, err := tlsx.ClientCtx(ctx, conn, host, "")
		if err != nil {
			out.Status = localdb.Blocked
			out.Err = err
			detail := "handshake-failed"
			if netem.IsReset(err) {
				detail = "rst"
			} else if netem.IsTimeout(err) {
				detail = "handshake-timeout"
				out.TimeoutPhase = "tls"
			}
			out.Stages = append(out.Stages, localdb.Stage{Type: localdb.BlockSNI, Detail: detail})
			out.Detected = d.Clock.Since(start)
			return out
		}
		stream = tc
	}

	req := httpx.NewRequest("GET", host, path)
	req.Header.Set("Connection", "close")
	if err := httpx.WriteRequest(stream, req); err != nil {
		out.Status = localdb.Blocked
		out.Err = err
		out.Stages = append(out.Stages, localdb.Stage{Type: httpBlockFor(scheme), Detail: "write-failed"})
		out.Detected = d.Clock.Since(start)
		return out
	}
	resp, err := httpx.ReadResponseCtx(ctx, bufio.NewReader(stream))
	if err != nil {
		out.Status = localdb.Blocked
		out.Err = err
		detail := "no-response"
		if netem.IsReset(err) {
			detail = "rst"
		} else if errors.Is(err, context.DeadlineExceeded) || netem.IsTimeout(err) {
			detail = "get-timeout"
			out.TimeoutPhase = "http"
		}
		out.Stages = append(out.Stages, localdb.Stage{Type: httpBlockFor(scheme), Detail: detail})
		out.Detected = d.Clock.Since(start)
		// The HTTP failure may have happened on a DNS-redirected host
		// (multi-stage blocking, Table 1's ISP-B): cross-check the local
		// resolution against the global one.
		out.appendDNSRedirect(d, ctx, host, ip, dnsStage)
		return out
	}
	out.Response = resp

	// Stage 4: block-page detection (phase 1), including one redirect hop —
	// censors commonly 302 to an in-ISP block-page host (Table 1, ISP-A).
	body := resp.Body
	redirected := false
	if resp.StatusCode == 301 || resp.StatusCode == 302 {
		if loc := resp.Header.Get("Location"); loc != "" {
			if fetched := d.fetchRedirect(ctx, loc); fetched != nil {
				body = fetched
				redirected = true
			}
		}
	}
	if d.Classifier != nil && blockpage.Phase1MaxLen >= len(body) {
		if v := d.Classifier.Phase1(body); v.Suspected {
			out.Status = localdb.Blocked
			out.Suspected = true
			detail := "blockpage"
			if redirected {
				detail = "blockpage-redirect"
			}
			lane.Event("http", "blockpage-match", detail)
			out.Stages = append(out.Stages, localdb.Stage{Type: httpBlockFor(scheme), Detail: detail})
			out.Detected = d.Clock.Since(start)
			// "+ Possible DNS" (Figure 4): if the local answer differs from
			// the global one, the block page came via a DNS redirect.
			out.appendDNSRedirect(d, ctx, host, ip, dnsStage)
			return out
		}
	}
	// Clean page. A tampered DNS stage may still have been recorded
	// (multi-stage detection found only the DNS stage blocking).
	return out
}

// appendDNSRedirect adds a dns(redirect) stage when the local resolution
// disagrees with the global one and no DNS stage was recorded yet.
func (o *Outcome) appendDNSRedirect(d *Detector, ctx context.Context, host, usedIP string, dnsStage *localdb.Stage) {
	if dnsStage != nil || isIPLiteral(host) {
		return
	}
	if g := d.GDNS.Lookup(ctx, host); g.OK() && !containsStr(g.IPs, usedIP) {
		o.Stages = append(o.Stages, localdb.Stage{Type: localdb.BlockDNS, Detail: "redirect"})
	}
}

// fetchRedirect retrieves a redirect target over the direct path for
// classification only.
func (d *Detector) fetchRedirect(ctx context.Context, loc string) []byte {
	host, path := localdb.SplitURL(loc)
	ip := host
	if !isIPLiteral(host) {
		res := d.LDNS.Lookup(ctx, host)
		if !res.OK() {
			return nil
		}
		ip = res.IPs[0]
	}
	cctx, cancel := d.Clock.WithTimeout(ctx, d.httpTimeout())
	defer cancel()
	conn, err := d.Dial(cctx, ip+":80")
	if err != nil {
		return nil
	}
	defer conn.Close()
	_ = conn.SetDeadline(d.Clock.Now().Add(d.httpTimeout()))
	req := httpx.NewRequest("GET", host, path)
	req.Header.Set("Connection", "close")
	if err := httpx.WriteRequest(conn, req); err != nil {
		return nil
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil
	}
	return resp.Body
}

func httpBlockFor(s Scheme) localdb.BlockType {
	if s == HTTPS {
		return localdb.BlockSNI
	}
	return localdb.BlockHTTP
}

// silentDNS reports whether a DNS failure detail means "no usable answer
// ever arrived" — the signature of dropped/intercepted queries, as opposed
// to an authoritative NXDOMAIN/SERVFAIL which proves a resolver was heard.
func silentDNS(detail string) bool {
	return detail == "no-response" || detail == "timeout"
}

func dnsDetail(res dnsx.Result) string {
	switch {
	case errors.Is(res.Err, dnsx.ErrNoResponse):
		return "no-response"
	case errors.Is(res.Err, context.DeadlineExceeded):
		// The caller's deadline expired mid-lookup: a DNS-phase timeout,
		// not a generic failure.
		return "timeout"
	case res.RCode != dnsx.RCodeNoError:
		return strings.ToLower(dnsx.RCodeName(res.RCode))
	default:
		return "failed"
	}
}

func isIPLiteral(s string) bool {
	dots := 0
	for _, c := range s {
		switch {
		case c == '.':
			dots++
		case c < '0' || c > '9':
			return false
		}
	}
	return dots == 3
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
