// Package metrics provides the small statistics toolkit the experiment
// harness uses: empirical distributions (for the paper's CDF figures),
// percentiles, moving averages (the circumvention module's PLT estimator),
// and plain-text table/CDF rendering for experiment reports.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Distribution is an accumulating empirical distribution. It is safe for
// concurrent Add.
//
// Two modes exist. The exact mode (NewDistribution) stores every sample:
// percentiles are exact, memory is O(n). The reservoir mode (NewReservoir)
// keeps a bounded uniform sample via Vitter's Algorithm R plus exact
// running count/sum/min/max, so fleet-scale runs can fold millions of PLT
// samples into a fixed footprint; percentiles are then estimates over the
// reservoir while N, Mean, Min and Max stay exact. The reservoir's
// randomness comes from a caller-seeded source so same-seed runs keep the
// repository's determinism guarantee.
type Distribution struct {
	mu     sync.Mutex
	vals   []float64
	sorted bool

	// Reservoir state. cap == 0 means exact mode; then n == len(vals) and
	// sum/min/max mirror the stored samples.
	cap      int
	rng      *rand.Rand
	n        int64
	sum      float64
	min, max float64
}

// NewDistribution returns an empty exact distribution.
func NewDistribution() *Distribution { return &Distribution{} }

// NewReservoir returns a bounded distribution holding at most capacity
// samples, replacing uniformly at random (Algorithm R) once full. The seed
// drives the replacement choices; thread it from the experiment seed.
func NewReservoir(capacity int, seed int64) *Distribution {
	if capacity <= 0 {
		panic("metrics: non-positive reservoir capacity")
	}
	return &Distribution{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// FromDurations builds a distribution of seconds from durations.
func FromDurations(ds []time.Duration) *Distribution {
	d := NewDistribution()
	for _, v := range ds {
		d.AddDuration(v)
	}
	return d
}

// Add records a value.
func (d *Distribution) Add(v float64) {
	d.mu.Lock()
	d.addLocked(v)
	d.mu.Unlock()
}

// addLocked folds one observation in. Caller holds d.mu.
func (d *Distribution) addLocked(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	if d.cap == 0 || len(d.vals) < d.cap {
		d.vals = append(d.vals, v)
		d.sorted = false
		return
	}
	// Algorithm R: the i-th observation (1-based) replaces a random slot
	// with probability cap/i.
	if j := d.rng.Int63n(d.n); j < int64(d.cap) {
		d.vals[j] = v
		d.sorted = false
	}
}

// AddDuration records a duration in seconds.
func (d *Distribution) AddDuration(v time.Duration) { d.Add(v.Seconds()) }

// N returns the number of observations (not the stored sample size).
func (d *Distribution) N() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.n)
}

// SampleSize returns how many samples are held in memory: N() in exact
// mode, at most the reservoir capacity otherwise.
func (d *Distribution) SampleSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.vals)
}

// Sampled reports whether the distribution is a bounded reservoir.
func (d *Distribution) Sampled() bool { return d.cap > 0 }

func (d *Distribution) sortedVals() []float64 {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	return d.vals
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation, or NaN when empty.
func (d *Distribution) Percentile(p float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	vals := d.sortedVals()
	n := len(vals)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return vals[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return vals[n-1]
	}
	frac := rank - float64(lo)
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (d *Distribution) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean over every observation (exact in both
// modes), or NaN when empty.
func (d *Distribution) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return math.NaN()
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest observation (exact in both modes), or NaN.
func (d *Distribution) Min() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return math.NaN()
	}
	return d.min
}

// Max returns the largest observation (exact in both modes), or NaN.
func (d *Distribution) Max() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return math.NaN()
	}
	return d.max
}

// Merge folds another distribution's observations into d. In exact mode
// (both exact) the samples are concatenated. When d is a reservoir, the
// merged reservoir is a uniform sample of the union: slots are drawn from
// the two source samples in proportion to the observation counts they
// represent, so a 10k-observation reservoir outweighs a 100-observation
// one. The other distribution is snapshotted first and never mutated, and
// the two locks are never held together, so concurrent Merges in opposite
// directions cannot deadlock.
//
// Merging a sampled distribution into an exact one promotes d to a
// reservoir (capacity and seed taken from the source) — the union cannot
// be exact once either side has forgotten samples.
func (d *Distribution) Merge(o *Distribution) {
	if o == nil || d == o {
		return
	}
	o.mu.Lock()
	ovals := append([]float64(nil), o.vals...)
	on, osum, omin, omax, ocap := o.n, o.sum, o.min, o.max, o.cap
	o.mu.Unlock()
	if on == 0 {
		return
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cap == 0 && ocap > 0 {
		// Promote: d's exact samples become a full reservoir of themselves.
		d.cap = ocap
		if d.cap < len(d.vals) {
			d.cap = len(d.vals)
		}
		d.rng = rand.New(rand.NewSource(int64(len(d.vals))*2654435761 + on))
	}
	if d.n == 0 || omin < d.min {
		d.min = omin
	}
	if d.n == 0 || omax > d.max {
		d.max = omax
	}
	if d.cap == 0 {
		// Exact + exact: concatenate.
		d.vals = append(d.vals, ovals...)
		d.sorted = false
		d.n += on
		d.sum += osum
		return
	}
	// Weighted reservoir merge: fill the target by drawing without
	// replacement from the two samples, choosing the source of each slot
	// in proportion to the remaining observation mass it represents.
	a, b := d.vals, ovals
	wa, wb := float64(d.n), float64(on)
	merged := make([]float64, 0, d.cap)
	ra := rand.New(rand.NewSource(d.rng.Int63()))
	for len(merged) < d.cap && (len(a) > 0 || len(b) > 0) {
		pickA := len(b) == 0
		if len(a) > 0 && len(b) > 0 {
			pickA = ra.Float64() < wa/(wa+wb)
		}
		if pickA {
			i := ra.Intn(len(a))
			merged = append(merged, a[i])
			a[i] = a[len(a)-1]
			a = a[:len(a)-1]
			wa -= float64(d.n) / float64(max(len(d.vals), 1))
		} else {
			i := ra.Intn(len(b))
			merged = append(merged, b[i])
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			wb -= float64(on) / float64(max(len(ovals), 1))
		}
	}
	d.vals = merged
	d.sorted = false
	d.n += on
	d.sum += osum
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	X float64
	Y float64
}

// CDF returns the empirical CDF sampled at every data point.
func (d *Distribution) CDF() []CDFPoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	vals := d.sortedVals()
	out := make([]CDFPoint, len(vals))
	for i, v := range vals {
		out[i] = CDFPoint{X: v, Y: float64(i+1) / float64(len(vals))}
	}
	return out
}

// EWMA is the exponentially weighted moving average the circumvention
// module keeps per (approach, URL) to pick the lowest-PLT method (§4.3.2).
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	init  bool
}

// NewEWMA creates an EWMA with the given smoothing factor (0 < alpha ≤ 1).
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds a new sample in.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.val, e.init = v, true
		return
	}
	e.val = e.alpha*v + (1-e.alpha)*e.val
}

// ObserveDuration folds a duration (in seconds) in.
func (e *EWMA) ObserveDuration(d time.Duration) { e.Observe(d.Seconds()) }

// Value returns the current average and whether any sample was observed.
func (e *EWMA) Value() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val, e.init
}

// Table renders experiment results as aligned plain text.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named distribution, for multi-line CDF summaries.
type Series struct {
	Name string
	Dist *Distribution
}

// SummarizeCDFs renders percentile summaries for several series — the
// textual stand-in for the paper's CDF plots.
func SummarizeCDFs(title string, series []Series) string {
	t := Table{
		Title:   title,
		Headers: []string{"series", "n", "p10", "p25", "median", "p75", "p90", "p95", "mean"},
	}
	for _, s := range series {
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Dist.N()),
			fmtSec(s.Dist.Percentile(10)),
			fmtSec(s.Dist.Percentile(25)),
			fmtSec(s.Dist.Median()),
			fmtSec(s.Dist.Percentile(75)),
			fmtSec(s.Dist.Percentile(90)),
			fmtSec(s.Dist.Percentile(95)),
			fmtSec(s.Dist.Mean()),
		)
	}
	return t.String()
}

func fmtSec(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2fs", v)
}
