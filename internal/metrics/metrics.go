// Package metrics provides the small statistics toolkit the experiment
// harness uses: empirical distributions (for the paper's CDF figures),
// percentiles, moving averages (the circumvention module's PLT estimator),
// and plain-text table/CDF rendering for experiment reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Distribution is an accumulating empirical distribution. It is safe for
// concurrent Add.
type Distribution struct {
	mu     sync.Mutex
	vals   []float64
	sorted bool
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution { return &Distribution{} }

// FromDurations builds a distribution of seconds from durations.
func FromDurations(ds []time.Duration) *Distribution {
	d := NewDistribution()
	for _, v := range ds {
		d.AddDuration(v)
	}
	return d
}

// Add records a value.
func (d *Distribution) Add(v float64) {
	d.mu.Lock()
	d.vals = append(d.vals, v)
	d.sorted = false
	d.mu.Unlock()
}

// AddDuration records a duration in seconds.
func (d *Distribution) AddDuration(v time.Duration) { d.Add(v.Seconds()) }

// N returns the sample count.
func (d *Distribution) N() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.vals)
}

func (d *Distribution) sortedVals() []float64 {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	return d.vals
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation, or NaN when empty.
func (d *Distribution) Percentile(p float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	vals := d.sortedVals()
	n := len(vals)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return vals[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return vals[n-1]
	}
	frac := rank - float64(lo)
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (d *Distribution) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean, or NaN when empty.
func (d *Distribution) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.vals) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range d.vals {
		s += v
	}
	return s / float64(len(d.vals))
}

// Min returns the smallest sample, or NaN.
func (d *Distribution) Min() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.vals) == 0 {
		return math.NaN()
	}
	return d.sortedVals()[0]
}

// Max returns the largest sample, or NaN.
func (d *Distribution) Max() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.vals) == 0 {
		return math.NaN()
	}
	vals := d.sortedVals()
	return vals[len(vals)-1]
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	X float64
	Y float64
}

// CDF returns the empirical CDF sampled at every data point.
func (d *Distribution) CDF() []CDFPoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	vals := d.sortedVals()
	out := make([]CDFPoint, len(vals))
	for i, v := range vals {
		out[i] = CDFPoint{X: v, Y: float64(i+1) / float64(len(vals))}
	}
	return out
}

// EWMA is the exponentially weighted moving average the circumvention
// module keeps per (approach, URL) to pick the lowest-PLT method (§4.3.2).
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	init  bool
}

// NewEWMA creates an EWMA with the given smoothing factor (0 < alpha ≤ 1).
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds a new sample in.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.val, e.init = v, true
		return
	}
	e.val = e.alpha*v + (1-e.alpha)*e.val
}

// ObserveDuration folds a duration (in seconds) in.
func (e *EWMA) ObserveDuration(d time.Duration) { e.Observe(d.Seconds()) }

// Value returns the current average and whether any sample was observed.
func (e *EWMA) Value() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val, e.init
}

// Table renders experiment results as aligned plain text.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named distribution, for multi-line CDF summaries.
type Series struct {
	Name string
	Dist *Distribution
}

// SummarizeCDFs renders percentile summaries for several series — the
// textual stand-in for the paper's CDF plots.
func SummarizeCDFs(title string, series []Series) string {
	t := Table{
		Title:   title,
		Headers: []string{"series", "n", "p10", "p25", "median", "p75", "p90", "p95", "mean"},
	}
	for _, s := range series {
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Dist.N()),
			fmtSec(s.Dist.Percentile(10)),
			fmtSec(s.Dist.Percentile(25)),
			fmtSec(s.Dist.Median()),
			fmtSec(s.Dist.Percentile(75)),
			fmtSec(s.Dist.Percentile(90)),
			fmtSec(s.Dist.Percentile(95)),
			fmtSec(s.Dist.Mean()),
		)
	}
	return t.String()
}

func fmtSec(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2fs", v)
}
