package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// drawLognormal produces a heavy-tailed sample stream shaped like fleet
// PLT measurements (most sub-second, a long blocked-detection tail).
func drawLognormal(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(rng.NormFloat64()*0.8 - 0.5)
	}
	return out
}

// relErr is the relative error of got vs want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestReservoirPercentilesTrackExact is the property test: a bounded
// reservoir's percentile estimates over a large stream must track the
// exact percentiles within a few percent, while holding only `cap`
// samples, and its N/Mean/Min/Max must be exact.
func TestReservoirPercentilesTrackExact(t *testing.T) {
	const (
		n   = 200_000
		cap = 2048
	)
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		vals := drawLognormal(rng, n)
		exact := NewDistribution()
		res := NewReservoir(cap, seed*31)
		for _, v := range vals {
			exact.Add(v)
			res.Add(v)
		}
		if res.N() != n {
			t.Fatalf("seed %d: reservoir N = %d, want %d", seed, res.N(), n)
		}
		if got := res.SampleSize(); got != cap {
			t.Fatalf("seed %d: sample size = %d, want %d", seed, got, cap)
		}
		if res.Mean() != exact.Mean() {
			t.Errorf("seed %d: mean %v != exact %v", seed, res.Mean(), exact.Mean())
		}
		if res.Min() != exact.Min() || res.Max() != exact.Max() {
			t.Errorf("seed %d: min/max (%v,%v) != exact (%v,%v)",
				seed, res.Min(), res.Max(), exact.Min(), exact.Max())
		}
		for _, p := range []float64{10, 25, 50, 75, 90, 95} {
			e, g := exact.Percentile(p), res.Percentile(p)
			if relErr(g, e) > 0.08 {
				t.Errorf("seed %d: p%.0f estimate %.4f vs exact %.4f (err %.1f%%)",
					seed, p, g, e, 100*relErr(g, e))
			}
		}
	}
}

// TestReservoirDeterministic: same seed, same stream → identical sample.
func TestReservoirDeterministic(t *testing.T) {
	build := func() *Distribution {
		rng := rand.New(rand.NewSource(5))
		d := NewReservoir(128, 99)
		for _, v := range drawLognormal(rng, 10_000) {
			d.Add(v)
		}
		return d
	}
	a, b := build(), build()
	for _, p := range []float64{1, 50, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%.0f differs across same-seed reservoirs: %v vs %v",
				p, a.Percentile(p), b.Percentile(p))
		}
	}
}

// TestMergeExact: exact+exact merge concatenates and percentiles equal a
// single distribution over the union.
func TestMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := drawLognormal(rng, 5000)
	whole := NewDistribution()
	a, b := NewDistribution(), NewDistribution()
	for i, v := range vals {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, p := range []float64{10, 50, 90} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Errorf("p%.0f merged %v != whole %v", p, a.Percentile(p), whole.Percentile(p))
		}
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != whole %v", a.Mean(), whole.Mean())
	}
}

// TestMergeReservoirs is the fleet-shaped property: per-worker reservoirs
// merged into one must estimate the union's percentiles. Workers see
// different value scales so a broken (unweighted) merge would skew hard.
func TestMergeReservoirs(t *testing.T) {
	const cap = 2048
	rng := rand.New(rand.NewSource(11))
	exact := NewDistribution()
	merged := NewReservoir(cap, 1)
	for w := 0; w < 8; w++ {
		part := NewReservoir(cap, int64(w)+100)
		// Uneven worker sizes: the merge must weight by observation count.
		n := 5_000 * (w + 1)
		for _, v := range drawLognormal(rng, n) {
			scaled := v * (1 + 0.1*float64(w))
			exact.Add(scaled)
			part.Add(scaled)
		}
		merged.Merge(part)
	}
	if merged.N() != exact.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), exact.N())
	}
	// Summation order differs between the two accumulations, so compare up
	// to float rounding.
	if relErr(merged.Mean(), exact.Mean()) > 1e-12 {
		t.Errorf("merged mean %v != exact %v", merged.Mean(), exact.Mean())
	}
	for _, p := range []float64{25, 50, 75, 90, 95} {
		e, g := exact.Percentile(p), merged.Percentile(p)
		if relErr(g, e) > 0.12 {
			t.Errorf("p%.0f merged %.4f vs exact %.4f (err %.1f%%)",
				p, g, e, 100*relErr(g, e))
		}
	}
}

// TestMergePromotesExact: merging a reservoir into an exact distribution
// must not silently pretend exactness.
func TestMergePromotesExact(t *testing.T) {
	exact := NewDistribution()
	for i := 0; i < 100; i++ {
		exact.Add(float64(i))
	}
	res := NewReservoir(64, 9)
	for i := 0; i < 10_000; i++ {
		res.Add(float64(i % 500))
	}
	exact.Merge(res)
	if !exact.Sampled() {
		t.Fatal("exact distribution not promoted to sampled after reservoir merge")
	}
	if exact.N() != 10_100 {
		t.Fatalf("N = %d, want 10100", exact.N())
	}
	if exact.SampleSize() > 100+64 {
		t.Fatalf("sample size %d exceeds both sources", exact.SampleSize())
	}
}
