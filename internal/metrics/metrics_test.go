package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentiles(t *testing.T) {
	d := NewDistribution()
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if m := d.Median(); math.Abs(m-50.5) > 0.01 {
		t.Errorf("median = %f", m)
	}
	if p := d.Percentile(0); p != 1 {
		t.Errorf("p0 = %f", p)
	}
	if p := d.Percentile(100); p != 100 {
		t.Errorf("p100 = %f", p)
	}
	if p := d.Percentile(95); math.Abs(p-95.05) > 0.01 {
		t.Errorf("p95 = %f", p)
	}
	if mean := d.Mean(); math.Abs(mean-50.5) > 0.01 {
		t.Errorf("mean = %f", mean)
	}
	if d.Min() != 1 || d.Max() != 100 || d.N() != 100 {
		t.Error("min/max/n wrong")
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := NewDistribution()
	if !math.IsNaN(d.Median()) || !math.IsNaN(d.Mean()) || !math.IsNaN(d.Min()) || !math.IsNaN(d.Max()) {
		t.Error("empty distribution should be NaN everywhere")
	}
	if len(d.CDF()) != 0 {
		t.Error("empty CDF should have no points")
	}
}

func TestSingleSample(t *testing.T) {
	d := NewDistribution()
	d.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if d.Percentile(p) != 7 {
			t.Errorf("p%f = %f", p, d.Percentile(p))
		}
	}
}

func TestFromDurations(t *testing.T) {
	d := FromDurations([]time.Duration{time.Second, 3 * time.Second})
	if m := d.Mean(); math.Abs(m-2) > 1e-9 {
		t.Errorf("mean = %f", m)
	}
}

func TestCDFMonotonic(t *testing.T) {
	d := NewDistribution()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	cdf := d.CDF()
	if len(cdf) != 5 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].Y <= cdf[i-1].Y {
			t.Fatalf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
	if cdf[len(cdf)-1].Y != 1.0 {
		t.Error("CDF does not reach 1")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Value(); ok {
		t.Fatal("unobserved EWMA reports a value")
	}
	e.Observe(10)
	if v, _ := e.Value(); v != 10 {
		t.Fatalf("first observation = %f", v)
	}
	e.Observe(20)
	if v, _ := e.Value(); math.Abs(v-15) > 1e-9 {
		t.Fatalf("after 20 = %f, want 15", v)
	}
	e.ObserveDuration(5 * time.Second)
	if v, _ := e.Value(); math.Abs(v-10) > 1e-9 {
		t.Fatalf("after 5s = %f, want 10", v)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "Table X", Headers: []string{"col", "value"}}
	tbl.AddRow("a", "1")
	tbl.AddRow("long-name", "2")
	s := tbl.String()
	if !strings.Contains(s, "Table X") || !strings.Contains(s, "long-name") {
		t.Fatalf("render = %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
}

func TestSummarizeCDFs(t *testing.T) {
	a := FromDurations([]time.Duration{time.Second, 2 * time.Second})
	s := SummarizeCDFs("Figure N", []Series{{Name: "direct", Dist: a}, {Name: "empty", Dist: NewDistribution()}})
	if !strings.Contains(s, "direct") || !strings.Contains(s, "1.50s") || !strings.Contains(s, "-") {
		t.Fatalf("summary = %q", s)
	}
}

// TestQuickPercentileBounds property-tests: percentiles are within [min,
// max] and monotone in p.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		d := NewDistribution()
		for _, v := range vals {
			d.Add(v)
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			q := d.Percentile(p)
			if q < vals[0] || q > vals[len(vals)-1] {
				return false
			}
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
