package web

import (
	"bufio"
	"sort"
	"strconv"
	"strings"
	"sync"

	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/tlsx"
)

// Origin serves one or more sites from an emulated host over HTTP (:80) and
// pseudo-TLS (:443). An Origin hosting several sites is also a CDN/front
// server: it answers for every hosted name, so a client can front a blocked
// site behind an unblocked one on the same Origin (§2.2).
type Origin struct {
	host *netem.Host

	mu    sync.RWMutex
	sites map[string]*Site
}

// NewOrigin starts serving the given sites on host.
func NewOrigin(host *netem.Host, sites ...*Site) (*Origin, error) {
	o := &Origin{host: host, sites: make(map[string]*Site)}
	for _, s := range sites {
		o.sites[s.Host] = s
	}
	httpl, err := host.Listen(80)
	if err != nil {
		return nil, err
	}
	httpx.Serve(httpl, httpx.HandlerFunc(o.serve))
	tlsl, err := host.Listen(tlsx.Port)
	if err != nil {
		return nil, err
	}
	go o.serveTLSLoop(tlsl)
	return o, nil
}

// AddSite starts serving another site from this origin.
func (o *Origin) AddSite(s *Site) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sites[s.Host] = s
}

// Hosts returns the names this origin answers for.
func (o *Origin) Hosts() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	hosts := make([]string, 0, len(o.sites))
	for h := range o.sites {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// site returns the hosted site for a (possibly port-suffixed) Host header.
func (o *Origin) site(hostHeader string) *Site {
	h := strings.ToLower(hostHeader)
	if i := strings.IndexByte(h, ':'); i >= 0 {
		h = h[:i]
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	if s := o.sites[h]; s != nil {
		return s
	}
	// "IP as hostname": requests addressed to our bare IP serve the sole
	// hosted site (how a single-site origin answers IP-addressed requests).
	if h == o.host.IP() && len(o.sites) == 1 {
		for _, s := range o.sites {
			return s
		}
	}
	return nil
}

func (o *Origin) serve(req *httpx.Request, _ netem.Flow) *httpx.Response {
	s := o.site(req.Host)
	if s == nil {
		return httpx.NewResponse(404, []byte("no such site: "+req.Host))
	}
	path := req.Target
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if p := s.Page(path); p != nil {
		resp := httpx.NewResponse(200, RenderHTML(p))
		resp.Header.Set("Content-Type", "text/html")
		return resp
	}
	if size := s.objectSize(path); size >= 0 {
		resp := httpx.NewResponse(200, ObjectBody(size))
		resp.Header.Set("Content-Type", "application/octet-stream")
		return resp
	}
	return httpx.NewResponse(404, []byte("not found: "+req.Host+path))
}

// certFunc serves any hosted site name.
func (o *Origin) certFunc(sni string) string {
	if o.site(sni) != nil {
		return strings.ToLower(sni)
	}
	return ""
}

func (o *Origin) serveTLSLoop(l *netem.Listener) {
	for {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			tc, err := tlsx.Server(raw, o.certFunc)
			if err != nil {
				raw.Close()
				return
			}
			defer tc.Close()
			var flow netem.Flow
			if nc, ok := raw.(*netem.Conn); ok {
				flow = nc.Flow()
			}
			br := bufio.NewReader(tc)
			for {
				req, err := httpx.ReadRequest(br)
				if err != nil {
					return
				}
				resp := o.serve(req, flow)
				if err := httpx.WriteResponse(tc, resp); err != nil {
					return
				}
				if strings.EqualFold(req.Header.Get("Connection"), "close") {
					return
				}
			}
		}()
	}
}

// ServeHTTPS serves an arbitrary httpx.Handler over pseudo-TLS on host:443
// with the given certificates — used by services that are not site origins
// (the global DB front end, for instance).
func ServeHTTPS(host *netem.Host, certs tlsx.CertFunc, h httpx.Handler) (*netem.Listener, error) {
	l, err := host.Listen(tlsx.Port)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				tc, err := tlsx.Server(raw, certs)
				if err != nil {
					raw.Close()
					return
				}
				defer tc.Close()
				var flow netem.Flow
				if nc, ok := raw.(*netem.Conn); ok {
					flow = nc.Flow()
				}
				br := bufio.NewReader(tc)
				for {
					req, err := httpx.ReadRequest(br)
					if err != nil {
						return
					}
					resp := h.ServeHTTP(req, flow)
					if resp == nil {
						continue
					}
					if err := httpx.WriteResponse(tc, resp); err != nil {
						return
					}
					if strings.EqualFold(req.Header.Get("Connection"), "close") {
						return
					}
				}
			}()
		}
	}()
	return l, nil
}

// ASNEchoPath is the path served by the ASN echo service.
const ASNEchoPath = "/asn"

// ServeASNEcho runs the "what is my ASN" service on host:80: it answers with
// the egress AS number of the caller's connection. C-Saw clients probe it
// periodically to detect multihoming (§4.4).
func ServeASNEcho(host *netem.Host) error {
	l, err := host.Listen(80)
	if err != nil {
		return err
	}
	httpx.Serve(l, httpx.HandlerFunc(func(req *httpx.Request, flow netem.Flow) *httpx.Response {
		asn := 0
		if flow.EgressAS != nil {
			asn = flow.EgressAS.Number
		}
		return httpx.NewResponse(200, []byte(strconv.Itoa(asn)))
	}))
	return nil
}
