package web

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/vtime"
)

// newBufReader isolates the buffered-reader construction so transport.go
// and browser.go share one definition.
func newBufReader(r io.Reader) *bufio.Reader { return bufio.NewReader(r) }

// Fetcher fetches one URL. *Transport implements it for plain paths; the
// C-Saw client implements it so a Browser routed through the proxy measures
// end-user PLT including adaptive circumvention.
type Fetcher interface {
	Fetch(ctx context.Context, host, path string) (*httpx.Response, error)
}

// Browser loads pages the way the paper measures PLT: fetch the base
// document, parse its embedded links, fetch every object over a bounded
// number of parallel connections, and report the elapsed virtual time until
// the last byte.
type Browser struct {
	Transport Fetcher
	// ClockSrc times the load (PLT); required.
	ClockSrc *vtime.Clock
	// MaxConns bounds parallel object fetches; browsers conventionally use
	// 6 per host, which is the default.
	MaxConns int
	// MaxRedirects bounds redirect following on the base document (censors
	// redirect to block pages); default 3.
	MaxRedirects int
}

// NewBrowser builds a Browser over a plain transport, timing with the
// transport's clock.
func NewBrowser(t *Transport) *Browser { return &Browser{Transport: t, ClockSrc: t.Clock} }

// PageResult is the outcome of one page load.
type PageResult struct {
	Host, Path string
	Status     int
	Body       []byte // final base document
	Redirects  int
	Objects    int // embedded objects successfully fetched
	ObjectErrs int
	Bytes      int // total bytes received
	PLT        time.Duration
	Err        error
}

// OK reports whether the base document loaded with a 2xx status.
func (r PageResult) OK() bool { return r.Err == nil && r.Status >= 200 && r.Status < 300 }

func (b *Browser) maxConns() int {
	if b.MaxConns > 0 {
		return b.MaxConns
	}
	return 6
}

func (b *Browser) maxRedirects() int {
	if b.MaxRedirects > 0 {
		return b.MaxRedirects
	}
	return 3
}

// Load fetches host+path and its sub-resources via the browser's transport.
func (b *Browser) Load(ctx context.Context, host, path string) (res PageResult) {
	t := b.Transport
	start := b.ClockSrc.Now()
	res = PageResult{Host: host, Path: path}
	defer func() { res.PLT = b.ClockSrc.Since(start) }()

	curHost, curPath := host, path
	for {
		resp, err := t.Fetch(ctx, curHost, curPath)
		if err != nil {
			res.Err = err
			return res
		}
		res.Status = resp.StatusCode
		res.Body = resp.Body
		res.Bytes += len(resp.Body)
		if resp.StatusCode == 301 || resp.StatusCode == 302 {
			if res.Redirects >= b.maxRedirects() {
				res.Err = fmt.Errorf("web: too many redirects for %s%s", host, path)
				return res
			}
			loc := resp.Header.Get("Location")
			if loc == "" {
				res.Err = fmt.Errorf("web: redirect without Location from %s%s", curHost, curPath)
				return res
			}
			res.Redirects++
			link := parseLink(loc)
			if link.Host != "" {
				curHost = link.Host
			}
			curPath = link.Path
			continue
		}
		break
	}

	links := ExtractLinks(res.Body)
	if len(links) == 0 {
		return res
	}

	sem := make(chan struct{}, b.maxConns())
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, link := range links {
		wg.Add(1)
		go func(link Link) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			oHost := link.Host
			if oHost == "" {
				oHost = curHost
			}
			resp, err := t.Fetch(ctx, oHost, link.Path)
			mu.Lock()
			defer mu.Unlock()
			if err != nil || resp.StatusCode != 200 {
				res.ObjectErrs++
				return
			}
			res.Objects++
			res.Bytes += len(resp.Body)
		}(link)
	}
	wg.Wait()
	return res
}

// LooksLikeHTML reports whether a body is an HTML document (used to decide
// whether sub-resources should be parsed).
func LooksLikeHTML(body []byte) bool {
	head := strings.ToLower(string(body[:min(len(body), 256)]))
	return strings.Contains(head, "<html") || strings.Contains(head, "<!doctype html")
}
