// Package web models the web content and clients of the emulated internet:
// sites made of base pages plus embedded objects, origin and CDN servers
// that serve them over HTTP and pseudo-TLS, a pluggable Transport used by
// every circumvention path, and a browser-like Fetcher that measures page
// load times (PLTs) the way the paper's evaluation does — base page fetch,
// parse embedded links, parallel object fetches, PLT = time until the last
// object lands.
package web

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Object is an embedded resource served by the page's own host.
type Object struct {
	Path string
	Size int
}

// ObjectRef is an embedded resource on another host (e.g. a CDN); pages with
// external refs are how the pilot study surfaced CDN-server blocking (§7.4).
type ObjectRef struct {
	Host string
	Path string
	Size int
}

// Page is a base HTML document plus its embedded objects.
type Page struct {
	Host     string
	Path     string
	Title    string
	BaseSize int // target size of the HTML document in bytes
	Objects  []Object
	External []ObjectRef
}

// TotalSize returns base size plus all object sizes, the "page size" the
// paper quotes (e.g. the ~360 KB YouTube home page).
func (p *Page) TotalSize() int {
	t := p.BaseSize
	for _, o := range p.Objects {
		t += o.Size
	}
	for _, o := range p.External {
		t += o.Size
	}
	return t
}

// Site is a host and its pages.
type Site struct {
	Host  string
	mu    sync.RWMutex
	pages map[string]*Page
}

// NewSite returns an empty site for host.
func NewSite(host string) *Site {
	return &Site{Host: strings.ToLower(host), pages: make(map[string]*Page)}
}

// AddPage creates a page at path with the given title and base size, plus
// one same-host object per size in objSizes (auto-named under
// /assets/). It returns the page for further decoration.
func (s *Site) AddPage(path, title string, baseSize int, objSizes ...int) *Page {
	if path == "" {
		path = "/"
	}
	p := &Page{Host: s.Host, Path: path, Title: title, BaseSize: baseSize}
	slug := strings.Trim(strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return '-'
	}, strings.ToLower(path)), "-")
	if slug == "" {
		slug = "index"
	}
	for i, size := range objSizes {
		p.Objects = append(p.Objects, Object{Path: fmt.Sprintf("/assets/%s-%d.bin", slug, i), Size: size})
	}
	s.mu.Lock()
	s.pages[path] = p
	s.mu.Unlock()
	return p
}

// AddExternal adds an object served from another host to the page.
func (p *Page) AddExternal(host, path string, size int) *Page {
	p.External = append(p.External, ObjectRef{Host: strings.ToLower(host), Path: path, Size: size})
	return p
}

// Page returns the page at path, or nil.
func (s *Site) Page(path string) *Page {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages[path]
}

// Paths returns all page paths, sorted.
func (s *Site) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	paths := make([]string, 0, len(s.pages))
	for p := range s.pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// objectSize returns the size of a same-host object by path, or -1.
func (s *Site) objectSize(path string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.pages {
		for _, o := range p.Objects {
			if o.Path == path {
				return o.Size
			}
		}
		for _, o := range p.External {
			if o.Host == s.Host && o.Path == path {
				return o.Size
			}
		}
	}
	return -1
}

// RenderHTML produces the page's HTML: head with title, img tags for every
// object (relative for same-host, absolute for external), and deterministic
// filler to reach BaseSize.
func RenderHTML(p *Page) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html>\n<head><title>%s</title></head>\n<body>\n<h1>%s</h1>\n", p.Title, p.Title)
	for _, o := range p.Objects {
		fmt.Fprintf(&b, "<img src=\"%s\" alt=\"asset\">\n", o.Path)
	}
	for _, o := range p.External {
		fmt.Fprintf(&b, "<img src=\"http://%s%s\" alt=\"ext\">\n", o.Host, o.Path)
	}
	const tail = "</body>\n</html>\n"
	filler := p.BaseSize - b.Len() - len(tail)
	if filler > 0 {
		b.WriteString("<p>")
		chunk := "lorem ipsum dolor sit amet consectetur adipiscing elit sed do "
		for filler > len(chunk)+4 {
			b.WriteString(chunk)
			filler -= len(chunk)
		}
		b.WriteString(strings.Repeat(".", max(filler-4, 0)))
		b.WriteString("</p>")
	}
	b.WriteString(tail)
	return []byte(b.String())
}

// Link is a reference extracted from HTML.
type Link struct {
	Host string // "" for same-host
	Path string
}

// ExtractLinks scans HTML for src attributes (img, script, iframe) and
// stylesheet hrefs — the subset of sub-resources the emulated browser loads.
func ExtractLinks(html []byte) []Link {
	var links []Link
	s := string(html)
	for _, attr := range []string{`src="`, `href="`} {
		rest := s
		for {
			i := strings.Index(rest, attr)
			if i < 0 {
				break
			}
			rest = rest[i+len(attr):]
			j := strings.IndexByte(rest, '"')
			if j < 0 {
				break
			}
			val := rest[:j]
			rest = rest[j+1:]
			if attr == `href="` && !strings.HasSuffix(val, ".css") {
				continue
			}
			links = append(links, parseLink(val))
		}
	}
	return links
}

func parseLink(val string) Link {
	for _, scheme := range []string{"http://", "https://"} {
		if rest, ok := strings.CutPrefix(val, scheme); ok {
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				return Link{Host: strings.ToLower(rest[:i]), Path: rest[i:]}
			}
			return Link{Host: strings.ToLower(rest), Path: "/"}
		}
	}
	if !strings.HasPrefix(val, "/") {
		val = "/" + val
	}
	return Link{Path: val}
}

// ObjectBody returns deterministic filler bytes of the given size for
// serving objects.
func ObjectBody(size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte('a' + (i*7)%26)
	}
	return b
}
