package web

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/tlsx"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// Transport is one way of fetching a URL: the direct path or any
// circumvention approach. The C-Saw circumvention module builds one
// Transport per approach (direct, public-DNS fix, HTTPS fix, domain
// fronting, IP-as-hostname, static proxy, Lantern, Tor) and the browser
// fetcher is agnostic to which one it drives.
type Transport struct {
	// Label identifies the transport in results ("direct", "tor", ...).
	Label string
	// Dialer opens the underlying stream. Required.
	Dialer netem.DialFunc
	// Lookup resolves a hostname to an IP. If nil, "host:port" is passed to
	// Dialer verbatim — Tor-style remote resolution at the exit.
	Lookup func(ctx context.Context, host string) (string, error)
	// TLS selects pseudo-TLS (port 443) instead of HTTP (port 80).
	TLS bool
	// SNI overrides the TLS server name (domain fronting). Nil means the
	// request host.
	SNI func(host string) string
	// HostHeader overrides the Host header. Nil means the request host.
	HostHeader func(host string) string
	// HostHeaderFromAddr sends the *resolved connect address* as the Host
	// header — the "IP as hostname" local fix (§2.3): the URL carries the
	// blocked site's IP instead of its keyword-filterable name.
	HostHeaderFromAddr bool
	// VerifyCert requires the server certificate to match the SNI.
	VerifyCert bool
	// Clock drives timeouts. Required.
	Clock *vtime.Clock
	// Timeout bounds one exchange (virtual). Zero means DefaultTimeout.
	Timeout time.Duration
}

// DefaultTransportTimeout bounds one exchange when Transport.Timeout is 0.
// It must exceed the longest blocking-detection time (~33 s, Table 5).
const DefaultTransportTimeout = 45 * time.Second

func (t *Transport) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return DefaultTransportTimeout
}

// Port returns the destination port implied by the transport's scheme.
func (t *Transport) Port() int {
	if t.TLS {
		return tlsx.Port
	}
	return 80
}

// Fetch performs one GET for host+path and returns the response.
func (t *Transport) Fetch(ctx context.Context, host, path string) (*httpx.Response, error) {
	return t.RoundTrip(ctx, httpx.NewRequest("GET", host, path))
}

// RoundTrip sends an arbitrary request over the transport, applying its
// resolution, TLS/SNI, and Host-header rules — the path Fetch uses, and
// the one non-GET requests (never duplicated, §4.3.1) ride as well.
func (t *Transport) RoundTrip(ctx context.Context, req *httpx.Request) (*httpx.Response, error) {
	ctx, cancel := t.Clock.WithTimeout(ctx, t.timeout())
	defer cancel()

	host := req.Host
	addr, err := t.connectAddr(ctx, host)
	if err != nil {
		return nil, err
	}
	// Flight recorder: the dial — including any relay/tunnel handshake the
	// Dialer hides — is the lane's connect phase.
	mark := trace.FromContext(ctx).Begin(trace.PhaseConnect)
	conn, err := t.Dialer(ctx, addr)
	mark.End()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(t.Clock.Now().Add(t.timeout()))
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	var stream net.Conn = conn
	if t.TLS {
		sni := host
		if t.SNI != nil {
			sni = t.SNI(host)
		}
		expect := ""
		if t.VerifyCert {
			expect = sni
		}
		tc, err := tlsx.ClientCtx(ctx, conn, sni, expect)
		if err != nil {
			return nil, fmt.Errorf("transport %s: tls: %w", t.Label, err)
		}
		stream = tc
	}

	hostHeader := host
	switch {
	case t.HostHeader != nil:
		hostHeader = t.HostHeader(host)
	case t.HostHeaderFromAddr:
		if ip, _, err := netem.SplitAddr(addr); err == nil {
			hostHeader = ip
		}
	}
	req.Host = hostHeader
	if req.Header == nil {
		req.Header = httpx.Header{}
	}
	req.Header.Set("Connection", "close")
	if err := httpx.WriteRequest(stream, req); err != nil {
		return nil, err
	}
	return readResponseCtx(ctx, stream)
}

// connectAddr decides what address to hand to the dialer.
func (t *Transport) connectAddr(ctx context.Context, host string) (string, error) {
	port := t.Port()
	if t.Lookup == nil {
		return fmt.Sprintf("%s:%d", host, port), nil
	}
	if isIPLiteral(host) {
		return fmt.Sprintf("%s:%d", host, port), nil
	}
	ip, err := t.Lookup(ctx, host)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s:%d", ip, port), nil
}

// isIPLiteral reports whether s looks like a dotted-quad IP.
func isIPLiteral(s string) bool {
	dots := 0
	for _, c := range s {
		switch {
		case c == '.':
			dots++
		case c < '0' || c > '9':
			return false
		}
	}
	return dots == 3
}

func readResponseCtx(ctx context.Context, stream net.Conn) (*httpx.Response, error) {
	br := newBufReader(stream)
	return httpx.ReadResponseCtx(ctx, br)
}

// StaticLookup returns a Lookup that serves from a fixed map (tests and
// pre-resolved flows).
func StaticLookup(m map[string]string) func(context.Context, string) (string, error) {
	return func(_ context.Context, host string) (string, error) {
		if ip, ok := m[strings.ToLower(host)]; ok {
			return ip, nil
		}
		return "", fmt.Errorf("web: no address for %q", host)
	}
}
