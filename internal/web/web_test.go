package web

import (
	"context"
	"strings"
	"testing"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

func TestRenderAndExtract(t *testing.T) {
	s := NewSite("www.youtube.com")
	p := s.AddPage("/", "YouTube", 4096, 1000, 2000)
	p.AddExternal("cdn.example.net", "/lib.js", 500)

	html := RenderHTML(p)
	if len(html) < 4000 || len(html) > 4200 {
		t.Errorf("rendered size %d, want ≈4096", len(html))
	}
	if !strings.Contains(string(html), "<title>YouTube</title>") {
		t.Error("title missing")
	}
	links := ExtractLinks(html)
	if len(links) != 3 {
		t.Fatalf("links = %v, want 3", links)
	}
	ext := 0
	for _, l := range links {
		if l.Host == "cdn.example.net" {
			ext++
			if l.Path != "/lib.js" {
				t.Errorf("external path = %q", l.Path)
			}
		}
	}
	if ext != 1 {
		t.Errorf("external links = %d", ext)
	}
}

func TestExtractCSSHrefOnly(t *testing.T) {
	html := []byte(`<link rel="stylesheet" href="/style.css"><a href="/page.html">x</a><script src="/app.js"></script>`)
	links := ExtractLinks(html)
	if len(links) != 2 {
		t.Fatalf("links = %v, want script+css only", links)
	}
}

func TestParseLink(t *testing.T) {
	cases := []struct {
		in       string
		host, pt string
	}{
		{"/a/b.png", "", "/a/b.png"},
		{"http://cdn.x.net/a.js", "cdn.x.net", "/a.js"},
		{"https://CDN.X.NET", "cdn.x.net", "/"},
		{"img.png", "", "/img.png"},
	}
	for _, c := range cases {
		got := parseLink(c.in)
		if got.Host != c.host || got.Path != c.pt {
			t.Errorf("parseLink(%q) = %+v", c.in, got)
		}
	}
}

func TestPageTotalSize(t *testing.T) {
	s := NewSite("x.example")
	p := s.AddPage("/", "X", 1000, 200, 300)
	p.AddExternal("cdn.example", "/o.bin", 500)
	if got := p.TotalSize(); got != 2000 {
		t.Fatalf("TotalSize = %d, want 2000", got)
	}
}

func TestObjectBodyDeterministic(t *testing.T) {
	a, b := ObjectBody(100), ObjectBody(100)
	if string(a) != string(b) || len(a) != 100 {
		t.Fatal("object body not deterministic")
	}
}

// webWorld: client in pk, origin in us hosting two sites, with working DNS
// via a static lookup.
func webWorld(t *testing.T) (*netem.Network, *netem.Host, *Origin) {
	t.Helper()
	clock := vtime.New(500)
	n := netem.New(clock, netem.WithSeed(9), netem.WithJitter(0), netem.WithBandwidth(1<<20))
	pk := n.AddAS(1, "ISP", "PK")
	us := n.AddAS(2, "US", "US")
	client := n.MustAddHost("client", "10.0.0.1", "pk", pk)
	originHost := n.MustAddHost("origin", "93.184.216.34", "us", us)
	n.SetRTT("pk", "us", 100*time.Millisecond)

	yt := NewSite("www.youtube.com")
	yt.AddPage("/", "YouTube", 8192, 20000, 30000, 10000)
	small := NewSite("small.example.com")
	small.AddPage("/", "Small", 2048)

	origin, err := NewOrigin(originHost, yt, small)
	if err != nil {
		t.Fatal(err)
	}
	return n, client, origin
}

func testTransport(n *netem.Network, client *netem.Host, tls bool) *Transport {
	return &Transport{
		Label:  "direct",
		Dialer: client.Dial,
		Lookup: StaticLookup(map[string]string{
			"www.youtube.com":   "93.184.216.34",
			"small.example.com": "93.184.216.34",
		}),
		TLS:     tls,
		Clock:   n.Clock(),
		Timeout: 20 * time.Second,
	}
}

func TestBrowserLoadsPageWithObjects(t *testing.T) {
	n, client, _ := webWorld(t)
	b := NewBrowser(testTransport(n, client, false))
	res := b.Load(context.Background(), "www.youtube.com", "/")
	if !res.OK() {
		t.Fatalf("load failed: %+v", res)
	}
	if res.Objects != 3 || res.ObjectErrs != 0 {
		t.Fatalf("objects = %d errs = %d, want 3/0", res.Objects, res.ObjectErrs)
	}
	if res.Bytes < 68000 {
		t.Errorf("bytes = %d, want ≈68KB", res.Bytes)
	}
	if res.PLT <= 0 {
		t.Error("PLT not measured")
	}
}

func TestBrowserHTTPS(t *testing.T) {
	n, client, _ := webWorld(t)
	tr := testTransport(n, client, true)
	tr.VerifyCert = true
	b := NewBrowser(tr)
	res := b.Load(context.Background(), "small.example.com", "/")
	if !res.OK() {
		t.Fatalf("https load failed: %+v", res)
	}
}

func TestDomainFrontingTransport(t *testing.T) {
	// SNI says small.example.com; Host header asks for the blocked site.
	// The shared origin serves it.
	n, client, _ := webWorld(t)
	tr := testTransport(n, client, true)
	tr.SNI = func(string) string { return "small.example.com" }
	tr.Lookup = StaticLookup(map[string]string{
		"www.youtube.com":   "93.184.216.34",
		"small.example.com": "93.184.216.34",
	})
	resp, err := tr.Fetch(context.Background(), "www.youtube.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "YouTube") {
		t.Fatalf("fronted fetch = %d", resp.StatusCode)
	}
}

func TestIPAsHostnameTransport(t *testing.T) {
	n, client, _ := webWorld(t)
	clock := n.Clock()
	// Single-site origin so the IP-addressed request is unambiguous.
	us := n.AS(2)
	oh := n.MustAddHost("porn-origin", "198.51.100.7", "us", us)
	site := NewSite("porn.example.net")
	site.AddPage("/", "Adult Site", 2000)
	if _, err := NewOrigin(oh, site); err != nil {
		t.Fatal(err)
	}
	tr := &Transport{
		Label:      "ip-as-hostname",
		Dialer:     client.Dial,
		Lookup:     StaticLookup(map[string]string{}),
		HostHeader: func(string) string { return "198.51.100.7" },
		Clock:      clock,
		Timeout:    10 * time.Second,
	}
	resp, err := tr.Fetch(context.Background(), "198.51.100.7", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "Adult Site") {
		t.Fatalf("ip-as-hostname fetch = %d %q", resp.StatusCode, resp.Body[:40])
	}
}

func TestBrowserFollowsRedirect(t *testing.T) {
	n, client, _ := webWorld(t)
	us := n.AS(2)
	rh := n.MustAddHost("redirector", "198.51.100.8", "us", us)
	l := rh.MustListen(80)
	httpx.Serve(l, httpx.HandlerFunc(func(req *httpx.Request, _ netem.Flow) *httpx.Response {
		resp := httpx.NewResponse(302, nil)
		resp.Header.Set("Location", "http://small.example.com/")
		return resp
	}))
	tr := testTransport(n, client, false)
	tr.Lookup = StaticLookup(map[string]string{
		"small.example.com": "93.184.216.34",
		"redir.example.com": "198.51.100.8",
	})
	b := NewBrowser(tr)
	res := b.Load(context.Background(), "redir.example.com", "/old")
	if !res.OK() || res.Redirects != 1 {
		t.Fatalf("redirect load: %+v", res)
	}
	if !strings.Contains(string(res.Body), "Small") {
		t.Error("final body is not the redirect target")
	}
}

func TestBrowserRedirectLoopBounded(t *testing.T) {
	n, client, _ := webWorld(t)
	us := n.AS(2)
	rh := n.MustAddHost("loop", "198.51.100.9", "us", us)
	httpx.Serve(rh.MustListen(80), httpx.HandlerFunc(func(*httpx.Request, netem.Flow) *httpx.Response {
		resp := httpx.NewResponse(302, nil)
		resp.Header.Set("Location", "http://loop.example.com/")
		return resp
	}))
	tr := testTransport(n, client, false)
	tr.Lookup = StaticLookup(map[string]string{"loop.example.com": "198.51.100.9"})
	b := NewBrowser(tr)
	res := b.Load(context.Background(), "loop.example.com", "/")
	if res.Err == nil {
		t.Fatal("redirect loop not bounded")
	}
}

func TestPLTScalesWithPageSize(t *testing.T) {
	n, client, _ := webWorld(t)
	b := NewBrowser(testTransport(n, client, false))
	big := b.Load(context.Background(), "www.youtube.com", "/")
	small := b.Load(context.Background(), "small.example.com", "/")
	if !big.OK() || !small.OK() {
		t.Fatalf("loads failed: %+v %+v", big.Err, small.Err)
	}
	if big.PLT <= small.PLT {
		t.Errorf("big page PLT %v <= small page PLT %v", big.PLT, small.PLT)
	}
}

func TestASNEcho(t *testing.T) {
	n, client, _ := webWorld(t)
	us := n.AS(2)
	eh := n.MustAddHost("asn-echo", "198.51.100.100", "us", us)
	if err := ServeASNEcho(eh); err != nil {
		t.Fatal(err)
	}
	c := &httpx.Client{Dial: client.Dial, Clock: n.Clock(), Timeout: 5 * time.Second}
	resp, err := c.Get(context.Background(), "198.51.100.100:80", "asn.echo", ASNEchoPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "1" {
		t.Fatalf("ASN echo = %q, want 1", resp.Body)
	}
}

func TestOriginUnknownHost404(t *testing.T) {
	n, client, _ := webWorld(t)
	tr := testTransport(n, client, false)
	tr.Lookup = StaticLookup(map[string]string{"unknown.example": "93.184.216.34"})
	resp, err := tr.Fetch(context.Background(), "unknown.example", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLooksLikeHTML(t *testing.T) {
	if !LooksLikeHTML([]byte("<!DOCTYPE html><html>...")) {
		t.Error("doctype not detected")
	}
	if LooksLikeHTML(ObjectBody(100)) {
		t.Error("binary detected as HTML")
	}
}

func TestIsIPLiteral(t *testing.T) {
	if !isIPLiteral("10.0.0.1") || isIPLiteral("example.com") || isIPLiteral("1.2.3") {
		t.Error("isIPLiteral wrong")
	}
}
