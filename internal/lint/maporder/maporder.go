// Package maporder flags map iteration whose order can leak into an
// ordered result: ranging over a map while appending to a slice, writing
// to a stream/hash/builder, or sending on a channel. Go randomizes map
// iteration order per run, so any of these shapes makes a Summary line, a
// set hash, or a serialized artifact differ between two same-seed runs —
// the exact determinism the fleet's byte-identical-summary gate exists to
// protect (DESIGN.md "Determinism").
//
// The deterministic idiom is collect-then-sort: append the keys, sort,
// then emit. The analyzer accepts it mechanically — an append target that
// is later passed to a sort.*/slices.Sort* call, or to a local helper
// whose name starts with "sort", in the same function is not reported.
// Appends assigned to a destination indexed by the loop variables
// (m2[k] = append(m2[k], v), c[k] = append([]T(nil), vs...)) are per-key
// and order-independent, so they pass too. Stream writes and channel
// sends inside the loop have no after-the-fact repair and are always
// reported.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"csaw/internal/lint/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag map iteration feeding ordered output (append/write/send) without a later sort; map order must never reach a summary, hash, or artifact",
	Suppress: "maporder",
	Run:      run,
}

// sortFuncs are the recognized order-restoring calls, per package.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// streamMethods are order-sensitive sink methods: each call appends to a
// stream whose final content depends on call order.
var streamMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// fmtPrinters are the fmt package's stream-appending functions.
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc inspects one function body: find every range-over-map, then
// every ordered emission inside it, then look for a downstream sort.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorts := collectSorts(pass, body)
	reported := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, isRange := n.(*ast.RangeStmt)
		if !isRange || !isMapRange(pass, rng) {
			return true
		}
		loopVars := rangeVars(pass, rng)
		checkLoopBody(pass, rng, loopVars, sorts, reported)
		return true
	})
}

// collectSorts records (expression, position) for the first argument of
// every sort call in the body, so "append then sort" is recognized no
// matter how the statements nest.
func collectSorts(pass *analysis.Pass, body *ast.BlockStmt) map[string][]token.Pos {
	sorts := make(map[string][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || len(call.Args) == 0 {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			_, path, qualified := pass.PkgFuncRef(fun)
			if !qualified || !sortFuncs[path][fun.Sel.Name] {
				return true
			}
		case *ast.Ident:
			// A local helper named sort* (sortEntries, sortByURL, ...) is
			// trusted to restore order in its first argument.
			if !strings.HasPrefix(strings.ToLower(fun.Name), "sort") {
				return true
			}
		default:
			return true
		}
		key := types.ExprString(call.Args[0])
		sorts[key] = append(sorts[key], call.Pos())
		return true
	})
	return sorts
}

// checkLoopBody reports the order-sensitive emissions inside one
// range-over-map body. Nested function literals are skipped: they
// typically run elsewhere, and entering them would double-report when
// they contain their own map ranges.
func checkLoopBody(pass *analysis.Pass, rng *ast.RangeStmt, loopVars map[types.Object]bool,
	sorts map[string][]token.Pos, reported map[token.Pos]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// An append assigned to a per-key destination is
			// order-independent no matter what it appends to:
			// c[k] = append([]T(nil), vs...) clones one entry per key.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !usesVars(pass, lhs, loopVars) {
					continue
				}
				ast.Inspect(n.Rhs[i], func(m ast.Node) bool {
					if call, isCall := m.(*ast.CallExpr); isCall {
						if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" {
							reported[call.Pos()] = true
						}
					}
					return true
				})
			}
		case *ast.SendStmt:
			if !reported[n.Arrow] {
				reported[n.Arrow] = true
				pass.Reportf(n.Arrow, "channel send inside range over map: delivery order follows map order; collect and sort first (or annotate //lint:allow-maporder <reason>)")
			}
		case *ast.CallExpr:
			checkCall(pass, n, rng, loopVars, sorts, reported)
		}
		return true
	})
}

// checkCall classifies one call inside a map-range body.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt,
	loopVars map[types.Object]bool, sorts map[string][]token.Pos, reported map[token.Pos]bool) {
	if reported[call.Pos()] {
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "append" || len(call.Args) == 0 {
			return
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
			return // a local function shadowing append
		}
		target := ast.Unparen(call.Args[0])
		if usesVars(pass, target, loopVars) {
			return // per-key append (m[k] = append(m[k], v)): order-free
		}
		if sortedAfter(sorts, types.ExprString(target), rng.Pos()) {
			return // collect-then-sort idiom
		}
		reported[call.Pos()] = true
		pass.Reportf(call.Pos(), "append to %s inside range over map bakes map order into the slice; sort it before use (or annotate //lint:allow-maporder <reason>)", types.ExprString(target))
	case *ast.SelectorExpr:
		if _, path, qualified := pass.PkgFuncRef(fun); qualified {
			if path == "fmt" && fmtPrinters[fun.Sel.Name] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "fmt.%s inside range over map emits in map order; collect and sort first (or annotate //lint:allow-maporder <reason>)", fun.Sel.Name)
			}
			return
		}
		if streamMethods[fun.Sel.Name] && isStreamReceiver(pass, fun.X) {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(), "%s.%s inside range over map writes in map order; collect and sort first (or annotate //lint:allow-maporder <reason>)", types.ExprString(fun.X), fun.Sel.Name)
		}
	}
}

// sortedAfter reports whether expr is sorted at some position after the
// loop begins (sorting inside the loop after each append is deterministic
// too, so any position past the range keyword counts).
func sortedAfter(sorts map[string][]token.Pos, expr string, loopPos token.Pos) bool {
	for _, p := range sorts[expr] {
		if p > loopPos {
			return true
		}
	}
	return false
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, has := pass.TypesInfo.Types[rng.X]
	if !has {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// rangeVars collects the loop's key/value variable objects. Only the :=
// form defines objects; `for k = range m` with an outer k is resolved
// through Uses instead.
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, isIdent := e.(*ast.Ident)
		if !isIdent || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// usesVars reports whether the expression references any of the range
// statement's own key/value variables (making the write per-key).
func usesVars(pass *analysis.Pass, e ast.Expr, loopVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && loopVars[obj] {
			found = true
		}
		return !found
	})
	return found
}

// isStreamReceiver limits the method-name heuristic to receivers that are
// plausibly streams: anything whose type (or pointee) is a named type
// outside this package's basic kinds. Keeping it permissive is fine —
// Write/Encode on a non-stream is vanishingly rare, and a false positive
// carries a suppression with a reason.
func isStreamReceiver(pass *analysis.Pass, recv ast.Expr) bool {
	tv, has := pass.TypesInfo.Types[recv]
	if !has {
		return false
	}
	t := tv.Type
	for {
		p, isPtr := t.Underlying().(*types.Pointer)
		if !isPtr {
			break
		}
		t = p.Elem()
	}
	switch t.Underlying().(type) {
	case *types.Basic, *types.Map, *types.Slice:
		return false
	}
	return true
}
