// Package a exercises the maporder positive and negative cases.
package a

import (
	"bytes"
	"fmt"
	"sort"
)

// bad: append inside a map range with no downstream sort.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "bakes map order into the slice"
	}
	return keys
}

// good: collect-then-sort.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// good: sorting via sort.Slice also counts.
func appendThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// good: per-key write — the target is indexed by the loop variable.
func perKeyAppend(m map[string][]int) map[string][]int {
	out := make(map[string][]int)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// bad: channel send in map range delivers in map order.
func sendInRange(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

// bad: stream write in map range.
func writeInRange(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want "writes in map order"
	}
	return buf.String()
}

// bad: fmt printing in map range.
func printInRange(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "emits in map order"
	}
}

// good: ranging a slice is ordered already.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// mixed: the outer append is a finding, but the literal's body is not
// entered, so the inner append reports nothing.
func litInRange(m map[string]int) []func() []string {
	var fns []func() []string
	for k := range m {
		k := k
		fns = append(fns, func() []string { // want "bakes map order into the slice"
			var inner []string
			inner = append(inner, k)
			return inner
		})
	}
	return fns
}

// good: a local helper named sort* restores order.
func localSortHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(ks []string) { sort.Strings(ks) }

// good: clone-per-key — the append result lands in a per-key slot.
func clonePerKey(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append([]int(nil), vs...)
	}
	return out
}

// good: suppressed with a reason.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow-maporder order discarded by the caller's set-union
		keys = append(keys, k)
	}
	return keys
}
