// Package clean is the maporder negative golden: deterministic idioms
// only, zero findings expected.
package clean

import "sort"

// Collect keys, sort, then emit — the canonical deterministic shape.
func Summarize(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// Per-key aggregation: map writes indexed by the loop key are order-free.
func Invert(m map[string]string) map[string][]string {
	out := make(map[string][]string)
	for k, v := range m {
		out[v] = append(out[v], k)
	}
	return out
}

// Order-free reductions over a map are fine.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
