package maporder_test

import (
	"testing"

	"csaw/internal/lint/linttest"
	"csaw/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "testdata", "a", nil)
}

func TestMaporderClean(t *testing.T) {
	linttest.RunClean(t, maporder.Analyzer, "testdata", "clean", nil)
}
