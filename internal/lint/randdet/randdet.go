// Package randdet forbids the unseeded process-global math/rand source.
// Every stochastic choice in the simulation — jitter, loss, exploration,
// fault firing — must come from a *rand.Rand seeded from the experiment's
// root seed, so that the same seed replays the same world. A call like
// rand.Intn draws from the shared global source, which differs across
// processes and interleaves across goroutines: two runs of the same
// experiment diverge by construction.
//
// Constructing seeded sources (rand.New, rand.NewSource, rand.NewZipf and
// the math/rand/v2 equivalents) is what the rule demands, so those stay
// legal; every other package-level math/rand reference is flagged.
package randdet

import (
	"go/ast"

	"csaw/internal/lint/analysis"
)

var randPkgs = map[string]map[string]bool{
	// allowed package-level names per rand package
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true, "Rand": true, "Source": true, "Source64": true, "Zipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true, "Rand": true, "Source": true, "Zipf": true, "PCG": true, "ChaCha8": true},
}

// Analyzer is the randdet analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "randdet",
	Doc:      "forbid the global math/rand source (rand.Intn, rand.Float64, ...); randomness must come from a seeded *rand.Rand threaded from config",
	Suppress: "rand",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := importPath(spec)
			if randPkgs[path] != nil && spec.Name != nil && spec.Name.Name == "." {
				pass.Reportf(spec.Pos(), "dot-import of %s hides global-source calls from review; import it qualified", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			_, path, ok := pass.PkgFuncRef(sel)
			if !ok {
				return true
			}
			allowed, isRand := randPkgs[path]
			if !isRand || allowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "rand.%s uses the process-global math/rand source; draw from a seeded *rand.Rand threaded from the experiment seed", sel.Sel.Name)
			return true
		})
	}
	return nil
}

func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1]
}
