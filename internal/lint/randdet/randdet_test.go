package randdet_test

import (
	"testing"

	"csaw/internal/lint/linttest"
	"csaw/internal/lint/randdet"
)

func TestRanddet(t *testing.T) {
	linttest.Run(t, randdet.Analyzer, "testdata", "b", nil)
}
