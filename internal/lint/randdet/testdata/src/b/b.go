// Package b exercises randdet: package-level math/rand (and v2) draws
// are flagged, seeded-source construction and *rand.Rand methods are not,
// and a local identifier shadowing the package name never matches.
package b

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn uses the process-global math/rand source`
	_ = rand.Float64()                 // want `rand\.Float64 uses the process-global`
	_ = rand.Int63()                   // want `rand\.Int63 uses the process-global`
	_ = rand.Perm(5)                   // want `rand\.Perm uses the process-global`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the process-global`
	rand.Seed(42)                      // want `rand\.Seed uses the process-global`
	_ = v2.IntN(5)                     // want `rand\.IntN uses the process-global`
	_ = v2.Float64()                   // want `rand\.Float64 uses the process-global`
}

func good(seed int64) {
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10)
	_ = r.Float64()
	z := rand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
	var src rand.Source = rand.NewSource(seed)
	_ = src
	p := v2.New(v2.NewPCG(1, 2))
	_ = p.IntN(5)
}

type randLike struct{}

func (randLike) Intn(n int) int { return n }

func shadowed() {
	rand := randLike{}
	_ = rand.Intn(3) // a value selection, not the package: no diagnostic
}

func suppressed() {
	_ = rand.Intn(3) //lint:allow-rand demo of a justified global draw
}
