// Package errdrop flags discarded errors from the sync-critical call
// surface: the globaldb and netem packages and the sync functions of
// internal/core (everything declared in internal/core/sync.go). Those
// errors feed the sync failure counters and the circuit breaker — a
// dropped one is a sync outage the stats never see, which is exactly the
// failure mode the PR-1 fault-tolerance work exists to surface.
//
// Both spellings of discarding are flagged: a bare call statement and a
// blank assignment (_ = f(), v, _ := f() at the error position), plus
// go/defer statements whose call returns an error nobody can observe.
package errdrop

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"csaw/internal/lint/analysis"
)

// scopePkgs are the packages whose every error-returning function is in
// scope.
var scopePkgs = map[string]bool{
	"csaw/internal/globaldb": true,
	"csaw/internal/netem":    true,
}

// scopeFiles maps a package to the declaring files whose functions are in
// scope (for packages only partially sync-critical).
var scopeFiles = map[string]map[string]bool{
	"csaw/internal/core": {"sync.go": true},
}

// Analyzer is the errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "errdrop",
	Doc:      "flag discarded errors (_ = and bare calls) from core/sync, globaldb and netem functions; those errors feed the sync failure counters",
	Suppress: "droperr",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if fn := inScope(pass, call); fn != nil {
						pass.Reportf(call.Pos(), "%s returns an error that is silently dropped; handle it or annotate //lint:allow-droperr <reason>", fnName(fn))
					}
				}
			case *ast.GoStmt:
				if fn := inScope(pass, s.Call); fn != nil {
					pass.Reportf(s.Pos(), "go %s discards the call's error; wrap it in a closure that records the failure", fnName(fn))
				}
			case *ast.DeferStmt:
				if fn := inScope(pass, s.Call); fn != nil {
					pass.Reportf(s.Pos(), "defer %s discards the call's error; wrap it in a closure that records the failure", fnName(fn))
				}
			case *ast.AssignStmt:
				checkAssign(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blank-assigned error results of in-scope calls.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	// Tuple form: a, _ := f()
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := scoped(pass, call)
		if fn == nil {
			return
		}
		for _, i := range analysis.ErrorResultIndexes(fn.Type().(*types.Signature)) {
			if i < len(s.Lhs) && isBlank(s.Lhs[i]) {
				pass.Reportf(s.Lhs[i].Pos(), "error result of %s assigned to _; handle it or annotate //lint:allow-droperr <reason>", fnName(fn))
			}
		}
		return
	}
	// Parallel form: _ = f(), x, _ = f(), g()
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) || !isBlank(s.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn := inScope(pass, call); fn != nil {
			pass.Reportf(s.Lhs[i].Pos(), "error result of %s assigned to _; handle it or annotate //lint:allow-droperr <reason>", fnName(fn))
		}
	}
}

// inScope resolves the call's callee and reports it if it is a
// sync-critical function returning at least one error.
func inScope(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := scoped(pass, call)
	if fn == nil {
		return nil
	}
	if len(analysis.ErrorResultIndexes(fn.Type().(*types.Signature))) == 0 {
		return nil
	}
	return fn
}

// scoped reports whether the callee belongs to the sync-critical surface.
func scoped(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if scopePkgs[path] {
		return fn
	}
	files := scopeFiles[path]
	if files == nil {
		return nil
	}
	pos := pass.Fset.Position(fn.Pos())
	if !files[filepath.Base(pos.Filename)] {
		return nil
	}
	return fn
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func fnName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return types.TypeString(recv.Type(), types.RelativeTo(fn.Pkg())) + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
