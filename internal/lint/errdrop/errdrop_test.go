package errdrop_test

import (
	"testing"

	"csaw/internal/lint/errdrop"
	"csaw/internal/lint/linttest"
)

func TestErrdrop(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "testdata", "c", nil)
}
