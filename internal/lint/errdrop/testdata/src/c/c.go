// Package c exercises errdrop: dropped errors from the sync-critical
// surface (globaldb, netem, and core's sync.go functions) are flagged in
// every discarding spelling; handled errors and out-of-scope callees are
// not.
package c

import (
	"context"
	"strconv"

	"csaw/internal/core"
	"csaw/internal/globaldb"
	"csaw/internal/netem"
)

func bareCalls(ctx context.Context, g *globaldb.Client) {
	g.Register(ctx, "tok") // want `\*Client\.Register returns an error that is silently dropped`
	g.Report(ctx, nil)     // want `\*Client\.Report returns an error that is silently dropped`
}

func blankAssigns(ctx context.Context, g *globaldb.Client, h *netem.Host) {
	_ = g.Register(ctx, "tok") // want `error result of \*Client\.Register assigned to _`
	_, _ = g.Report(ctx, nil)  // want `error result of \*Client\.Report assigned to _`
	n, _ := g.Report(ctx, nil) // want `error result of \*Client\.Report assigned to _`
	_ = n
	_, _ = h.Listen(80) // want `error result of \*Host\.Listen assigned to _`
}

func goAndDefer(ctx context.Context, g *globaldb.Client) {
	go g.Register(ctx, "tok")    // want `go \*Client\.Register discards the call's error`
	defer g.Register(ctx, "tok") // want `defer \*Client\.Register discards the call's error`
}

func coreSyncScope(ctx context.Context, c *core.Client) {
	_ = c.ProbeASN(ctx) // want `error result of \*Client\.ProbeASN assigned to _`
	c.SyncNow(ctx)      // want `\*Client\.SyncNow returns an error that is silently dropped`
}

func outOfScope(ctx context.Context) {
	// core.New is declared in client.go, not sync.go: not sync-critical.
	cl, _ := core.New(core.Config{})
	_ = cl
	// strconv is nowhere near the scope.
	_, _ = strconv.Atoi("7")
	_ = ctx.Err()
}

func handled(ctx context.Context, g *globaldb.Client) error {
	if err := g.Register(ctx, "tok"); err != nil {
		return err
	}
	n, err := g.Report(ctx, nil)
	_ = n
	return err
}

func suppressed(ctx context.Context, c *core.Client) {
	_ = c.ProbeASN(ctx) //lint:allow-droperr best-effort probe, failure is benign
}
