// Package multi is the multichecker golden package: one source file with
// findings from several analyzers at once, used to pin cross-analyzer
// output ordering (diagnostics sort by position, then analyzer name).
package multi

import (
	"context"
	"sync"
	"time"
)

type hub struct {
	mu    sync.Mutex
	cond  *sync.Cond
	peers map[string][]string
	log   []string
}

// maporder: map order reaches the returned slice.
func (h *hub) names() []string {
	var out []string
	for name := range h.peers {
		out = append(out, name) // want "bakes map order into the slice"
	}
	return out
}

// sliceshare: append into a field's backing array under a fresh name.
func (h *hub) appendLog(line string) []string {
	snapshot := append(h.log, line) // want "shared backing array"
	return snapshot
}

// condwake: wakeup without the mutex.
func (h *hub) nudge() {
	h.cond.Broadcast() // want "without h.cond's mutex held"
}

// ctxloop: blocking retry loop deaf to its context.
func (h *hub) pump(ctx context.Context, ch chan string) {
	for { // want "never consults the context"
		line, ok := <-ch
		if !ok {
			return
		}
		h.mu.Lock()
		h.log = append(h.log, line)
		h.mu.Unlock()
	}
}

// vtimecheck: wall-clock read outside internal/vtime (same line also
// trips nothing else — keeps one legacy analyzer in the golden mix).
func (h *hub) stamp() time.Time {
	return time.Now() // want "wall-clock time"
}
