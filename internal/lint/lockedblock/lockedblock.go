// Package lockedblock flags blocking operations performed while holding a
// sync.Mutex or sync.RWMutex: channel sends, and virtual-time sleeps
// (vtime.Clock.Sleep and friends). A send or sleep under a lock couples
// the lock's hold time to scheduling or to virtual latency — at clock
// scale 300 a 100ms virtual sleep holds the lock for real microseconds,
// but at scale 1 it holds it for 100ms, and a send with no ready receiver
// holds it forever. Both shapes have caused simulator deadlocks in
// similar systems; the analyzer keeps them out by construction.
//
// The analysis is per-function and syntactic about control flow: a region
// counts as locked from a mu.Lock()/mu.RLock() statement until the
// matching Unlock in the same statement list, or to the end of the
// function when the unlock is deferred. Function literals are not entered
// (they usually run on another goroutine or after the unlock).
package lockedblock

import (
	"go/ast"
	"go/types"

	"csaw/internal/lint/analysis"
)

// sleeps are the blocking entry points of csaw/internal/vtime.
var sleeps = map[string]bool{
	"Sleep":            true,
	"SleepCtx":         true,
	"SleepRealPrecise": true,
	"SpinUntil":        true,
}

// Analyzer is the lockedblock analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockedblock",
	Doc:      "flag channel sends and vtime sleeps while holding a sync.Mutex/RWMutex",
	Suppress: "lockedblock",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass}
			w.stmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// stmts walks one statement list. held maps the rendered mutex expression
// ("c.mu") to whether it is currently locked; lock-state changes persist
// across the list, while nested lists get a copy so a conditional Lock
// does not leak past its branch.
func (w *walker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, locks, ok := w.lockCall(s.X); ok {
			if locks {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the region locked to the end of the
		// function — that is the intended pattern, nothing to do. Other
		// deferred calls run after the unlock; skip them.
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the lock.
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(s.Arrow, "channel send while holding %s; a send with no ready receiver blocks the critical section", anyKey(held))
		}
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && len(held) > 0 {
				w.pass.Reportf(send.Arrow, "channel send (in select without default) while holding %s", anyKey(held))
			}
			w.stmts(cc.Body, clone(held))
		}
	case *ast.BlockStmt:
		w.stmts(s.List, clone(held))
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		w.stmts(s.Body.List, clone(held))
	case *ast.RangeStmt:
		w.stmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr flags vtime sleep calls inside e while a lock is held. Function
// literals are not entered.
func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := w.pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "csaw/internal/vtime" && sleeps[fn.Name()] {
			w.pass.Reportf(call.Pos(), "vtime sleep %s while holding %s; the critical section's hold time scales with virtual latency", fn.Name(), anyKey(held))
		}
		return true
	})
}

// lockCall matches mu.Lock/RLock/Unlock/RUnlock on a sync mutex and
// returns the rendered mutex expression.
func (w *walker) lockCall(e ast.Expr) (mu string, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var locking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
		locking = false
	default:
		return "", false, false
	}
	tv, has := w.pass.TypesInfo.Types[sel.X]
	if !has || !isMutex(tv.Type) {
		return "", false, false
	}
	return types.ExprString(sel.X), locking, true
}

// isMutex reports whether t (possibly behind pointers) is sync.Mutex or
// sync.RWMutex.
func isMutex(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func clone(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// anyKey returns one held mutex name for the message.
func anyKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
