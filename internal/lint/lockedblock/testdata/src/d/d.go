// Package d exercises lockedblock: channel sends and vtime sleeps under
// a held sync.Mutex/RWMutex are flagged; sends after unlock, sends in
// select-with-default, and function literals are not.
package d

import (
	"sync"
	"time"

	"csaw/internal/vtime"
)

func sendUnderLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while holding mu`
	mu.Unlock()
	ch <- 2 // unlocked: fine
}

func sleepUnderLock(mu *sync.Mutex, c *vtime.Clock) {
	mu.Lock()
	c.Sleep(time.Second) // want `vtime sleep Sleep while holding mu`
	mu.Unlock()
	c.Sleep(time.Second) // unlocked: fine
}

func deferredUnlock(mu *sync.RWMutex, ch chan int, c *vtime.Clock) {
	mu.RLock()
	defer mu.RUnlock()
	ch <- 1 // want `channel send while holding mu`
	if err := c.SleepCtx(nil, time.Second); err != nil { // want `vtime sleep SleepCtx while holding mu`
		return
	}
}

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func (g *guarded) method(c *vtime.Clock) {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu`
	vtime.SleepRealPrecise(time.Millisecond) // want `vtime sleep SleepRealPrecise while holding g\.mu`
	g.mu.Unlock()
}

func selects(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1: // want `channel send \(in select without default\) while holding mu`
	}
	select {
	case ch <- 1: // has default, never blocks: fine
	default:
	}
}

func funcLits(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() { ch <- 1 }() // other goroutine: fine
	f := func() { ch <- 2 } // not entered: fine
	_ = f
	mu.Unlock()
}

func branchScoped(mu *sync.Mutex, ch chan int, b bool) {
	if b {
		mu.Lock()
		ch <- 1 // want `channel send while holding mu`
		mu.Unlock()
	}
	ch <- 2 // the conditional lock does not leak here: fine
}

func loops(mu *sync.Mutex, ch chan int, xs []int) {
	mu.Lock()
	for range xs {
		ch <- 1 // want `channel send while holding mu`
	}
	mu.Unlock()
	for _, x := range xs {
		ch <- x // unlocked: fine
	}
}

func notAMutex(ch chan int) {
	var mu fakeMutex
	mu.Lock()
	ch <- 1 // fakeMutex is not sync.Mutex: fine
	mu.Unlock()
}

type fakeMutex struct{}

func (fakeMutex) Lock()   {}
func (fakeMutex) Unlock() {}

func suppressed(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 //lint:allow-lockedblock buffered channel sized to writers
	mu.Unlock()
}
