package lockedblock_test

import (
	"testing"

	"csaw/internal/lint/linttest"
	"csaw/internal/lint/lockedblock"
)

func TestLockedblock(t *testing.T) {
	linttest.Run(t, lockedblock.Analyzer, "testdata", "d", nil)
}
