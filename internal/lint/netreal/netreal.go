// Package netreal forbids real network I/O. The repository's internet is
// in-process — netem dials, in-memory conns, the httpx/dnsx/tlsx protocol
// stands-in — so experiments run hermetically and deterministically.
// Importing net or net/http for their *types* (net.Conn, net.Listener)
// is how the substrates interoperate and stays legal; calling the
// functions that actually open sockets or resolve names is not.
package netreal

import (
	"go/ast"

	"csaw/internal/lint/analysis"
)

// forbidden maps package paths to the identifiers that reach the real
// network: dialers, listeners, resolvers, and whole-client entry points.
var forbidden = map[string]map[string]bool{
	"net": {
		"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true,
		"DialUDP": true, "DialUnix": true, "Dialer": true,
		"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenIP": true,
		"ListenPacket": true, "ListenUnix": true, "ListenConfig": true,
		"Resolver": true, "ResolveTCPAddr": true, "ResolveUDPAddr": true, "ResolveIPAddr": true,
		"LookupHost": true, "LookupIP": true, "LookupAddr": true, "LookupCNAME": true,
		"LookupMX": true, "LookupNS": true, "LookupPort": true, "LookupSRV": true, "LookupTXT": true,
	},
	"net/http": {
		"Get": true, "Head": true, "Post": true, "PostForm": true,
		"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
		"DefaultClient": true, "DefaultTransport": true,
		"Client": true, "Server": true, "Transport": true,
	},
	"crypto/tls": {
		"Dial": true, "DialWithDialer": true, "Dialer": true,
	},
}

// Analyzer is the netreal analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "netreal",
	Doc:      "forbid real network I/O (net.Dial, net.Listen, http clients/servers, resolvers); the simulation's internet is in-process",
	Suppress: "network",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			_, path, ok := pass.PkgFuncRef(sel)
			if !ok {
				return true
			}
			names := forbidden[path]
			if names == nil || !names[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s reaches the real network; the simulation's internet is in-process (netem/httpx/dnsx)", pkgShort(path), sel.Sel.Name)
			return true
		})
	}
	return nil
}

func pkgShort(path string) string {
	switch path {
	case "net/http":
		return "http"
	case "crypto/tls":
		return "tls"
	}
	return path
}
