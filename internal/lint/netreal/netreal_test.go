package netreal_test

import (
	"testing"

	"csaw/internal/lint/linttest"
	"csaw/internal/lint/netreal"
)

func TestNetreal(t *testing.T) {
	linttest.Run(t, netreal.Analyzer, "testdata", "e", nil)
}
