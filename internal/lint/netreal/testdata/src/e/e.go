// Package e exercises netreal: socket-opening and resolving entry points
// are flagged; using net types for in-process interop is not.
package e

import (
	"net"
	"net/http"
)

func bad() {
	_, _ = net.Dial("tcp", "example.com:80") // want `net\.Dial reaches the real network`
	_, _ = net.Listen("tcp", ":0")           // want `net\.Listen reaches the real network`
	_, _ = net.LookupHost("example.com")     // want `net\.LookupHost reaches the real network`
	var d net.Dialer                         // want `net\.Dialer reaches the real network`
	_ = d
	_, _ = http.Get("http://example.com") // want `http\.Get reaches the real network`
	_ = http.ListenAndServe(":8080", nil) // want `http\.ListenAndServe reaches the real network`
	var c http.Client                     // want `http\.Client reaches the real network`
	_ = c
}

func good(c net.Conn, l net.Listener, addr net.Addr) string {
	// Interface types are how the in-process substrates interoperate.
	_ = l
	_ = addr
	host, _, err := net.SplitHostPort("10.0.0.1:80")
	if err != nil {
		return ""
	}
	_ = c
	_ = http.StatusOK
	return host
}
