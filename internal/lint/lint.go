// Package lint assembles the csaw-lint analyzer suite and the repository
// policy (allowlists) it runs under. The analyzers machine-check the
// simulation's determinism invariants:
//
//   - vtimecheck: all timing flows through internal/vtime
//   - randdet: all randomness comes from seeded *rand.Rand sources
//   - errdrop: sync-critical errors are never silently dropped
//   - lockedblock: no channel sends or vtime sleeps under a mutex
//   - netreal: no real network I/O — the internet is in-process
//   - maporder: map iteration order never reaches ordered output
//   - sliceshare: no appends into shared backing arrays
//   - condwake: sync.Cond wakeups happen under the guarding mutex
//   - ctxloop: blocking retry loops honor their context
//   - spanbalance: trace spans are finished on every return path
//
// The last five mechanize the bug classes PR 6 fixed by hand (the
// mergeEntries aliasing leak, the netem lost wakeup, the fleet driver's
// cancellation-deaf retry ladders, and the span-leak audit); see
// DESIGN.md "Static analysis" for each analyzer's invariant, the
// documented allowlist, and the suppression directives.
package lint

import (
	"csaw/internal/lint/analysis"
	"csaw/internal/lint/condwake"
	"csaw/internal/lint/ctxloop"
	"csaw/internal/lint/errdrop"
	"csaw/internal/lint/lockedblock"
	"csaw/internal/lint/maporder"
	"csaw/internal/lint/netreal"
	"csaw/internal/lint/randdet"
	"csaw/internal/lint/sliceshare"
	"csaw/internal/lint/spanbalance"
	"csaw/internal/lint/vtimecheck"
)

// Analyzers returns the full csaw-lint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		vtimecheck.Analyzer,
		randdet.Analyzer,
		errdrop.Analyzer,
		lockedblock.Analyzer,
		netreal.Analyzer,
		maporder.Analyzer,
		sliceshare.Analyzer,
		condwake.Analyzer,
		ctxloop.Analyzer,
		spanbalance.Analyzer,
	}
}

// Allowlist is the documented set of path exemptions. Keep this list
// short and justified — every entry is a place where the invariant is
// deliberately, structurally violated, not an escape hatch of
// convenience. Inline //lint:allow-* directives cover one-off cases and
// are likewise documented in DESIGN.md.
var Allowlist = map[string][]string{
	"vtimecheck": {
		// The virtual clock is the one component that must read the wall
		// clock: it converts real elapsed time into virtual time.
		"internal/vtime/",
		// Real-deadline plumbing: netem conns implement net.Conn
		// SetDeadline semantics, which are expressed in real time by
		// contract (vtime.Clock.Deadline converts virtual deadlines
		// before they reach the conn).
		"internal/netem/conn.go",
	},
}

// DefaultConfig returns the repository policy for a module rooted at
// root (as reported by analysis.Load).
func DefaultConfig(root string) *analysis.Config {
	return &analysis.Config{ModuleRoot: root, Allow: Allowlist}
}
