package analysis

import (
	"go/ast"
	"go/types"
)

// PkgFuncRef resolves a qualified reference pkg.Name (where pkg is an
// imported package name) to the referenced object and the package's
// import path. It returns ok=false for anything else — in particular for
// selections on values, so a local variable shadowing a package name
// never matches.
func (p *Pass) PkgFuncRef(sel *ast.SelectorExpr) (obj types.Object, path string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return nil, "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return nil, "", false
	}
	obj = p.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return nil, "", false
	}
	return obj, pn.Imported().Path(), true
}

// Callee resolves the *types.Func a call invokes (package function,
// method, or qualified function), or nil for indirect calls through
// function values and type conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// ErrorResultIndexes returns the positions of error-typed results in the
// callee's signature (nil if none).
func ErrorResultIndexes(sig *types.Signature) []int {
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, okN := res.At(i).Type().(*types.Named); okN &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			idx = append(idx, i)
		}
	}
	return idx
}
