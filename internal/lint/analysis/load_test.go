package analysis

import (
	"go/types"
	"strings"
	"testing"
)

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, cfg, err := Load("", "csaw/internal/globaldb")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "csaw/internal/globaldb" {
		t.Fatalf("got %d packages", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || !p.Types.Complete() {
		t.Fatal("package not type-checked")
	}
	if cfg.ModuleRoot == "" {
		t.Fatal("module root not detected")
	}
	// Objects imported from export data must carry positions: errdrop
	// scopes core's sync functions by declaring file.
	core := p.Types.Imports()
	_ = core
	obj := p.Types.Scope().Lookup("FaultPolicy")
	if obj == nil {
		t.Fatal("FaultPolicy not found")
	}
	pos := p.Fset.Position(obj.Pos())
	if !strings.HasSuffix(pos.Filename, "faults.go") {
		t.Errorf("FaultPolicy declared at %q, want faults.go", pos.Filename)
	}
}

func TestImportedObjectPositions(t *testing.T) {
	pkgs, _, err := Load("", "csaw/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var corePkg *types.Package
	for _, imp := range pkgs[0].Types.Imports() {
		if imp.Path() == "csaw/internal/core" {
			corePkg = imp
		}
	}
	if corePkg == nil {
		t.Fatal("experiments does not import core")
	}
	obj := corePkg.Scope().Lookup("New")
	if obj == nil {
		t.Fatal("core.New not found via export data")
	}
	pos := pkgs[0].Fset.Position(obj.Pos())
	t.Logf("core.New declared at %v", pos)
	if !strings.HasSuffix(pos.Filename, "client.go") {
		t.Errorf("core.New position %q does not point at client.go", pos.Filename)
	}
}
