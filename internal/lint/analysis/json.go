package analysis

import (
	"bytes"
	"encoding/json"
)

// jsonDiagnostic is the machine-readable form of one Diagnostic, shaped
// for CI annotation tooling (file/line/col split out, stable field
// order).
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// EncodeJSON renders diagnostics as an indented JSON array with a
// trailing newline. Run returns diagnostics position-sorted, so the
// encoding is byte-stable for identical findings — the lint suite's own
// determinism is tested the same way the simulation's is.
func EncodeJSON(diags []Diagnostic) []byte {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	// Encoding []jsonDiagnostic cannot fail; Encode appends the newline.
	_ = enc.Encode(out)
	return buf.Bytes()
}
