// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The module deliberately has no external dependencies, so the official
// framework is unavailable; this package keeps its shape (Analyzer, Pass,
// Reportf) so the csaw-lint analyzers read like ordinary go/analysis
// analyzers and could be ported to the real framework mechanically.
//
// On top of the x/tools vocabulary it adds the two pieces of policy the
// simulation's invariants need: per-analyzer path allowlists (whole
// packages or single files exempt from a check, e.g. internal/vtime for
// vtimecheck) and //lint:allow-<keyword> <reason> suppression directives
// for individually justified exceptions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "vtimecheck").
	Name string
	// Doc is the one-paragraph description shown by csaw-lint -list.
	Doc string
	// Suppress is the //lint:allow-<Suppress> directive keyword that
	// silences this analyzer's diagnostics for one line or declaration.
	// Empty means the analyzer cannot be suppressed inline.
	Suppress string
	// Run inspects one package and reports diagnostics via pass.Reportf.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Config is the repo policy applied by Run: which paths are exempt from
// which analyzers.
type Config struct {
	// ModuleRoot is the absolute module directory; allowlist entries are
	// matched against file paths relative to it. Load fills it in.
	ModuleRoot string
	// Allow maps an analyzer name to slash-separated path prefixes
	// (relative to ModuleRoot) exempt from that analyzer. An entry ending
	// in "/" exempts a directory tree; otherwise it exempts the exact
	// file or the directory of that name.
	Allow map[string][]string
}

// allowed reports whether relpath is exempt from the named analyzer.
func (c *Config) allowed(analyzer, relpath string) bool {
	if c == nil {
		return false
	}
	for _, pre := range c.Allow[analyzer] {
		if relpath == pre || strings.HasPrefix(relpath, strings.TrimSuffix(pre, "/")+"/") {
			return true
		}
	}
	return false
}

// Rel returns path relative to the module root, slash-separated.
func (c *Config) Rel(path string) string {
	if c == nil || c.ModuleRoot == "" {
		return path
	}
	return strings.TrimPrefix(path, strings.TrimSuffix(c.ModuleRoot, "/")+"/")
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppression directives and the config
// allowlist are applied here, and malformed directives (unknown keyword,
// missing reason) are themselves reported so the escape hatch stays
// auditable.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	keywords := make(map[string]bool)
	for _, a := range analyzers {
		if a.Suppress != "" {
			keywords[a.Suppress] = true
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := scanDirectives(pkg, keywords)
		for i := range bad {
			bad[i].Pos.Filename = cfg.Rel(bad[i].Pos.Filename)
		}
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				rel := cfg.Rel(d.Pos.Filename)
				if cfg.allowed(a.Name, rel) {
					return
				}
				if a.Suppress != "" && sup.covers(a.Suppress, d.Pos) {
					return
				}
				d.Pos.Filename = rel
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// DirectivePrefix introduces a suppression comment:
// //lint:allow-<keyword> <reason>.
const DirectivePrefix = "//lint:allow-"

// suppressions records, per file, which lines and declaration ranges each
// keyword covers.
type suppressions struct {
	// lines maps keyword -> filename -> set of covered lines. A directive
	// on line L covers diagnostics on L and L+1 (same-line and
	// preceding-line placement).
	lines map[string]map[string]map[int]bool
	// spans maps keyword -> filename -> covered [start,end] line ranges
	// (directives in a declaration's doc comment cover the whole decl).
	spans map[string]map[string][][2]int
}

func (s *suppressions) add(kw, file string, line int) {
	if s.lines[kw] == nil {
		s.lines[kw] = make(map[string]map[int]bool)
	}
	if s.lines[kw][file] == nil {
		s.lines[kw][file] = make(map[int]bool)
	}
	s.lines[kw][file][line] = true
}

func (s *suppressions) addSpan(kw, file string, start, end int) {
	if s.spans[kw] == nil {
		s.spans[kw] = make(map[string][][2]int)
	}
	s.spans[kw][file] = append(s.spans[kw][file], [2]int{start, end})
}

func (s *suppressions) covers(kw string, pos token.Position) bool {
	if lines := s.lines[kw][pos.Filename]; lines[pos.Line] || lines[pos.Line-1] {
		return true
	}
	for _, span := range s.spans[kw][pos.Filename] {
		if pos.Line >= span[0] && pos.Line <= span[1] {
			return true
		}
	}
	return false
}

// scanDirectives collects //lint:allow-* directives from a package and
// reports malformed ones. A directive in a top-level declaration's doc
// comment covers the whole declaration; anywhere else it covers its own
// line and the next.
func scanDirectives(pkg *Package, keywords map[string]bool) (*suppressions, []Diagnostic) {
	sup := &suppressions{
		lines: make(map[string]map[string]map[int]bool),
		spans: make(map[string]map[string][][2]int),
	}
	var bad []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Analyzer: "lintdirective", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		docs := make(map[*ast.CommentGroup][2]int) // doc group -> decl line span
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docs[doc] = [2]int{pkg.Fset.Position(decl.Pos()).Line, pkg.Fset.Position(decl.End()).Line}
			}
		}
		for _, cg := range f.Comments {
			span, isDoc := docs[cg]
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				kw, reason, _ := strings.Cut(rest, " ")
				if !keywords[kw] {
					report(pos, "unknown suppression keyword %q in %s", kw, c.Text)
					continue
				}
				if strings.TrimSpace(reason) == "" {
					report(pos, "suppression %s%s needs a reason", DirectivePrefix, kw)
					continue
				}
				if isDoc {
					sup.addSpan(kw, pos.Filename, span[0], span[1])
				} else {
					sup.add(kw, pos.Filename, pos.Line)
				}
			}
		}
	}
	return sup, bad
}
