package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// listFields is the -json field list shared by every go list invocation.
const listFields = "ImportPath,Dir,Export,GoFiles,Standard,ForTest,ImportMap,Module,Error"

// Load parses and type-checks the module packages matching the go
// patterns (e.g. "./..."), rooted at dir (""= current directory).
//
// There is no golang.org/x/tools dependency to lean on, so dependencies
// are not type-checked from source: `go list -export` compiles the whole
// dependency graph into the build cache and hands back compiler export
// data, which the stdlib gc importer reads. Only the packages being
// analyzed are parsed; everything they import — stdlib and module
// packages alike — is loaded from export data. cgo is disabled so every
// dependency has a pure-Go, exportable build.
func Load(dir string, patterns ...string) ([]*Package, *Config, error) {
	return load(dir, false, patterns)
}

// LoadTests is Load with the targets' test files included: each package
// with in-package _test.go files is analyzed as its test variant (whose
// file set is a strict superset of the plain build), external _test
// packages load alongside their subjects, and the synthetic generated
// test mains are skipped. Determinism bugs in tests corrupt golden
// artifacts just as surely as bugs in the code under test, so the lint
// gate runs in this mode.
func LoadTests(dir string, patterns ...string) ([]*Package, *Config, error) {
	return load(dir, true, patterns)
}

func load(dir string, tests bool, patterns []string) ([]*Package, *Config, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listArgs := func(extra ...string) []string {
		args := []string{"list"}
		if tests {
			args = append(args, "-test")
		}
		args = append(args, extra...)
		return append(args, patterns...)
	}
	targets, err := goList(dir, listArgs("-json=ImportPath,ForTest"))
	if err != nil {
		return nil, nil, err
	}
	want := selectTargets(targets, tests)
	universe, err := goList(dir, listArgs("-export", "-json="+listFields, "-deps"))
	if err != nil {
		return nil, nil, err
	}
	meta := make(map[string]*listPkg, len(universe))
	var modRoot string
	for _, p := range universe {
		meta[p.ImportPath] = p
		if p.Module != nil && p.Module.Dir != "" {
			modRoot = p.Module.Dir
		}
	}

	fset := token.NewFileSet()
	shared := &exportImporter{fset: fset, meta: meta, loaded: make(map[string]*types.Package)}
	var pkgs []*Package
	for _, p := range universe {
		if !want[p.ImportPath] {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		imp := types.Importer(shared)
		if len(p.ImportMap) > 0 {
			// Test variants resolve some imports to other variants (the
			// package under test, with its export_test.go declarations);
			// give them a private importer so the shared cache never hands
			// a plain build where the variant is required.
			imp = &exportImporter{fset: fset, meta: meta, resolve: p.ImportMap, loaded: make(map[string]*types.Package)}
		}
		pkg, err := typeCheck(fset, p, imp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, &Config{ModuleRoot: modRoot}, nil
}

// selectTargets picks which listed targets to analyze. Without -test that
// is every listed package. With -test, each package is analyzed at most
// once: the in-package test variant ("pkg [pkg.test]") supersedes the
// plain package, external test packages ("pkg_test [pkg.test]") are kept,
// and the generated test mains ("pkg.test") are skipped outright.
func selectTargets(targets []*listPkg, tests bool) map[string]bool {
	want := make(map[string]bool, len(targets))
	if !tests {
		for _, t := range targets {
			want[t.ImportPath] = true
		}
		return want
	}
	superseded := make(map[string]bool)
	for _, t := range targets {
		if t.ForTest != "" && basePath(t.ImportPath) == t.ForTest {
			superseded[t.ForTest] = true
		}
	}
	for _, t := range targets {
		switch {
		case t.ForTest != "":
			want[t.ImportPath] = true
		case strings.HasSuffix(t.ImportPath, ".test"):
			// Generated test main: cache-resident synthetic source.
		case !superseded[t.ImportPath]:
			want[t.ImportPath] = true
		}
	}
	return want
}

// basePath strips go list's " [pkg.test]" variant suffix.
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// goList runs a go list invocation and decodes its JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo off: every package must have pure-Go export data (see Load).
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args[:2], " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files directly under dir (in
// sorted name order) as one standalone package called importPath. This is
// the loader behind the linttest golden harness and csaw-lint's -dir
// mode: golden packages live outside the module graph, so they load by
// directory, not by pattern.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return ParseAndCheck(dir, importPath, files)
}

// ParseAndCheck parses the given files as one package and type-checks it
// against export data resolved through `go list` run in dir.
func ParseAndCheck(dir, importPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	imports := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
		for _, spec := range af.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	meta := make(map[string]*listPkg)
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for imp := range imports {
			paths = append(paths, imp)
		}
		sort.Strings(paths)
		args := append([]string{"list", "-export", "-json=" + listFields, "-deps"}, paths...)
		universe, err := goList(dir, args)
		if err != nil {
			return nil, err
		}
		for _, p := range universe {
			meta[p.ImportPath] = p
		}
	}
	imp := &exportImporter{fset: fset, meta: meta, loaded: make(map[string]*types.Package)}
	return typeCheckFiles(fset, importPath, dir, asts, imp)
}

// typeCheck parses a listed package's files and type-checks them.
func typeCheck(fset *token.FileSet, p *listPkg, imp types.Importer) (*Package, error) {
	var asts []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	pkg, err := typeCheckFiles(fset, basePath(p.ImportPath), p.Dir, asts, imp)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

func typeCheckFiles(fset *token.FileSet, importPath, dir string, asts []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

// exportImporter satisfies types.Importer by reading compiler export data
// located via `go list -export`. resolve, when set, redirects source
// import paths to go list variant keys (test-variant ImportMap) before
// the meta lookup.
type exportImporter struct {
	fset    *token.FileSet
	meta    map[string]*listPkg
	resolve map[string]string
	loaded  map[string]*types.Package
	gc      types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.loaded[path]; ok {
		return p, nil
	}
	if e.gc == nil {
		e.gc = importer.ForCompiler(e.fset, "gc", func(path string) (io.ReadCloser, error) {
			if to, ok := e.resolve[path]; ok {
				path = to
			}
			m, ok := e.meta[path]
			if !ok || m.Export == "" {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(m.Export)
		})
	}
	pkg, err := e.gc.Import(path)
	if err != nil {
		return nil, err
	}
	e.loaded[path] = pkg
	return pkg, nil
}
