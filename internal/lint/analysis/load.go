package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load parses and type-checks the module packages matching the go
// patterns (e.g. "./..."), rooted at dir (""= current directory).
//
// There is no golang.org/x/tools dependency to lean on, so dependencies
// are not type-checked from source: `go list -export` compiles the whole
// dependency graph into the build cache and hands back compiler export
// data, which the stdlib gc importer reads. Only the packages being
// analyzed are parsed; everything they import — stdlib and module
// packages alike — is loaded from export data. cgo is disabled so every
// dependency has a pure-Go, exportable build.
func Load(dir string, patterns ...string) ([]*Package, *Config, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	want := make(map[string]bool, len(targets))
	for _, t := range targets {
		want[t.ImportPath] = true
	}
	universe, err := goList(dir, append([]string{"list", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error", "-deps"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	meta := make(map[string]*listPkg, len(universe))
	var modRoot string
	for _, p := range universe {
		meta[p.ImportPath] = p
		if p.Module != nil && p.Module.Dir != "" {
			modRoot = p.Module.Dir
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{fset: fset, meta: meta, loaded: make(map[string]*types.Package)}
	var pkgs []*Package
	for _, p := range universe {
		if !want[p.ImportPath] {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheck(fset, p, imp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, &Config{ModuleRoot: modRoot}, nil
}

// goList runs a go list invocation and decodes its JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo off: every package must have pure-Go export data (see Load).
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args[:2], " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ParseAndCheck parses the given files as one package and type-checks it
// against export data resolved through `go list` run in dir. It backs the
// golden-test harness, which checks testdata packages that are not part
// of the module proper.
func ParseAndCheck(dir, importPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	imports := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
		for _, spec := range af.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	meta := make(map[string]*listPkg)
	if len(imports) > 0 {
		args := []string{"list", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error", "-deps"}
		for imp := range imports {
			args = append(args, imp)
		}
		universe, err := goList(dir, args)
		if err != nil {
			return nil, err
		}
		for _, p := range universe {
			meta[p.ImportPath] = p
		}
	}
	imp := &exportImporter{fset: fset, meta: meta, loaded: make(map[string]*types.Package)}
	return typeCheckFiles(fset, importPath, dir, asts, imp)
}

// typeCheck parses a listed package's files and type-checks them.
func typeCheck(fset *token.FileSet, p *listPkg, imp types.Importer) (*Package, error) {
	var asts []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	pkg, err := typeCheckFiles(fset, p.ImportPath, p.Dir, asts, imp)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

func typeCheckFiles(fset *token.FileSet, importPath, dir string, asts []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

// exportImporter satisfies types.Importer by reading compiler export data
// located via `go list -export`.
type exportImporter struct {
	fset   *token.FileSet
	meta   map[string]*listPkg
	loaded map[string]*types.Package
	gc     types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.loaded[path]; ok {
		return p, nil
	}
	if e.gc == nil {
		e.gc = importer.ForCompiler(e.fset, "gc", func(path string) (io.ReadCloser, error) {
			m, ok := e.meta[path]
			if !ok || m.Export == "" {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(m.Export)
		})
	}
	pkg, err := e.gc.Import(path)
	if err != nil {
		return nil, err
	}
	e.loaded[path] = pkg
	return pkg, nil
}
