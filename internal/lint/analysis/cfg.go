package analysis

// This file is the framework's lightweight per-function control-flow
// walk: a must-analysis over the statement tree, precise enough to answer
// "is this obligation discharged on every path to a function exit?"
// without building a real CFG. Analyzers that only need "is this node
// inside a loop body?" can walk the AST directly; spanbalance-style
// lifetime checks come here.
//
// The walk is a tiny abstract interpreter. The abstract state is a
// bitmask of the obligation states reachable along the paths that arrive
// at a program point (inactive / active / done), joined by union at merge
// points. Branches fork the mask, loops iterate the body transfer to a
// fixpoint (the mask only grows, so at most three rounds), and a return
// reached with the active bit set is a violation. Unstructured control
// flow (goto) makes the walker bail out rather than guess.

import (
	"go/ast"
	"go/token"
)

// flowMask is a set of obligation states reachable at a program point.
type flowMask uint8

const (
	flowInactive flowMask = 1 << iota // acquire not executed on this path
	flowActive                        // acquired and not yet discharged
	flowDone                          // discharged, or ownership handed off
)

// An Obligation ties an acquire site to its discharge condition for
// MustDischarge: from the moment Acquire executes, every path to a
// function exit must pass a discharging (or escaping) node.
type Obligation struct {
	// Acquire is the statement that activates the obligation (compared by
	// pointer identity during the walk).
	Acquire ast.Stmt
	// Discharges reports whether n discharges the obligation (e.g. the
	// matching Finish/Release call). It is consulted over full statement
	// subtrees including nested function literals, so a discharge wrapped
	// in a deferred or spawned closure counts: registering the defer (or
	// handing the value to a goroutine) is the last act this function is
	// responsible for.
	Discharges func(n ast.Node) bool
	// Escapes optionally reports whether n transfers ownership out of the
	// function (stored, passed along, returned, captured); an escaped
	// obligation is the new owner's to discharge, not this function's.
	Escapes func(n ast.Node) bool
}

// MustDischarge walks one function body and reports whether some path
// from the Acquire statement to a function exit leaves the obligation
// undischarged. Nested function literals are opaque to control flow
// (their returns are not this function's exits) but transparent to the
// discharge predicate. panic, os.Exit, runtime.Goexit and testing
// Fatal*/Skip* calls end a path without a violation. Functions containing
// goto are skipped entirely (returns false): the walker reasons about
// structured control flow only.
func MustDischarge(body *ast.BlockStmt, ob *Obligation) bool {
	if body == nil {
		return false
	}
	e := &flowEngine{ob: ob}
	ast.Inspect(body, func(n ast.Node) bool {
		if b, isBranch := n.(*ast.BranchStmt); isBranch && b.Tok == token.GOTO {
			e.bail = true
		}
		return !e.bail
	})
	if e.bail {
		return false
	}
	out := e.list(body.List, flowInactive, nil, nil)
	if out&flowActive != 0 {
		e.leak = true // fell off the end of the function still active
	}
	return e.leak
}

// flowEngine carries the per-walk flags: leak (a violating exit was
// reached) and bail (unsupported control flow, give up silently).
type flowEngine struct {
	ob   *Obligation
	leak bool
	bail bool
}

// list walks a statement list, threading the mask through each statement;
// a statement that never falls through (return, break, ...) makes the
// rest of the list unreachable.
func (e *flowEngine) list(stmts []ast.Stmt, in flowMask, brk, cont *flowMask) flowMask {
	for _, s := range stmts {
		if in == 0 {
			return 0
		}
		in = e.stmt(s, in, brk, cont)
	}
	return in
}

// stmt returns the mask of states on paths falling through s to the next
// statement (0 = no path falls through). brk and cont collect the states
// flowing to the innermost enclosing break/continue targets.
func (e *flowEngine) stmt(s ast.Stmt, in flowMask, brk, cont *flowMask) flowMask {
	if s == nil || in == 0 {
		return in
	}
	if s == e.ob.Acquire {
		return flowActive
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return e.list(s.List, in, brk, cont)
	case *ast.IfStmt:
		in = e.stmt(s.Init, in, brk, cont)
		in = e.transform(s.Cond, in)
		then := e.stmt(s.Body, in, brk, cont)
		els := in
		if s.Else != nil {
			els = e.stmt(s.Else, in, brk, cont)
		}
		return then | els
	case *ast.ForStmt:
		in = e.stmt(s.Init, in, brk, cont)
		var breaks, continues flowMask
		cur := in
		for {
			cur = e.transform(s.Cond, cur)
			out := e.stmt(s.Body, cur, &breaks, &continues)
			out = e.stmt(s.Post, out|continues, &breaks, &continues)
			next := cur | out
			if next == cur {
				break
			}
			cur = next
		}
		exits := breaks
		if s.Cond != nil {
			exits |= cur // the condition can fail on entry or any iteration
		}
		return exits
	case *ast.RangeStmt:
		in = e.transform(s.X, in)
		var breaks, continues flowMask
		cur := in
		for {
			out := e.stmt(s.Body, cur, &breaks, &continues)
			next := cur | out | continues
			if next == cur {
				break
			}
			cur = next
		}
		return cur | breaks // zero iterations always possible
	case *ast.SwitchStmt:
		in = e.stmt(s.Init, in, brk, cont)
		in = e.transform(s.Tag, in)
		return e.clauses(s.Body, in, cont)
	case *ast.TypeSwitchStmt:
		in = e.stmt(s.Init, in, brk, cont)
		return e.clauses(s.Body, in, cont)
	case *ast.SelectStmt:
		if len(s.Body.List) == 0 {
			return 0 // select{} blocks forever
		}
		var out, breaks flowMask
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cin := e.stmt(cc.Comm, in, &breaks, cont)
			out |= e.list(cc.Body, cin, &breaks, cont)
		}
		return out | breaks
	case *ast.ReturnStmt:
		if e.transform(s, in)&flowActive != 0 {
			e.leak = true
		}
		return 0
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if brk != nil {
				*brk |= in
			}
		case token.CONTINUE:
			if cont != nil {
				*cont |= in
			}
		case token.FALLTHROUGH:
			return in // consumed by clauses
		}
		return 0
	case *ast.LabeledStmt:
		return e.stmt(s.Stmt, in, brk, cont)
	case *ast.ExprStmt:
		if terminalCall(s.X) {
			return 0 // panic / Fatal / Exit: the path ends, obligation moot
		}
		return e.transform(s, in)
	default:
		// Assignments, declarations, sends, defers, go statements, ...:
		// a single transfer over the whole subtree.
		return e.transform(s, in)
	}
}

// clauses walks a switch body: each clause forks from the entry mask
// (plus any fallthrough mask from the previous clause); falling off a
// clause exits the switch unless the clause ends in fallthrough. A
// missing default keeps the skip-everything path alive.
func (e *flowEngine) clauses(body *ast.BlockStmt, in flowMask, cont *flowMask) flowMask {
	var out, breaks, ft flowMask
	hasDefault := false
	for _, c := range body.List {
		cc, isCase := c.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		end := e.list(cc.Body, in|ft, &breaks, cont)
		ft = 0
		if n := len(cc.Body); n > 0 {
			if b, isBranch := cc.Body[n-1].(*ast.BranchStmt); isBranch && b.Tok == token.FALLTHROUGH {
				ft = end
				continue
			}
		}
		out |= end
	}
	if !hasDefault {
		out |= in
	}
	return out | breaks
}

// transform applies a node's effect to the mask: executing a subtree that
// contains a discharging (or escaping) node moves active paths to done.
func (e *flowEngine) transform(n ast.Node, in flowMask) flowMask {
	if n == nil || in&flowActive == 0 {
		return in
	}
	if containsNode(n, e.ob.Discharges) || (e.ob.Escapes != nil && containsNode(n, e.ob.Escapes)) {
		return (in &^ flowActive) | flowDone
	}
	return in
}

// containsNode reports whether pred holds for any node in the subtree,
// including inside nested function literals.
func containsNode(root ast.Node, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if pred(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// terminalCall recognizes calls that end the path without returning:
// panic, os.Exit, runtime.Goexit, and the testing Fatal/Skip family.
// Name-based on purpose — the walker has no business being fooled by a
// local helper named Fatalf that returns, but the cost of that mistake is
// a missed diagnostic, not a false one.
func terminalCall(x ast.Expr) bool {
	call, isCall := ast.Unparen(x).(*ast.CallExpr)
	if !isCall {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "FailNow", "Exit", "Goexit",
			"Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
