package condwake_test

import (
	"testing"

	"csaw/internal/lint/condwake"
	"csaw/internal/lint/linttest"
)

func TestCondwake(t *testing.T) {
	linttest.Run(t, condwake.Analyzer, "testdata", "a", nil)
}

func TestCondwakeClean(t *testing.T) {
	linttest.RunClean(t, condwake.Analyzer, "testdata", "clean", nil)
}
