// Package clean is the condwake negative golden: every wakeup happens
// under the guarding mutex, zero findings expected.
package clean

import "sync"

type queue struct {
	mu    sync.Mutex
	ready *sync.Cond
	items []int
}

func newQueue() *queue {
	q := &queue{}
	q.ready = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(x int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, x)
	q.ready.Signal()
}

func (q *queue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.ready.Wait()
	}
	x := q.items[0]
	q.items = q.items[1:]
	return x
}

func (q *queue) close() {
	q.mu.Lock()
	q.ready.Broadcast()
	q.mu.Unlock()
}
