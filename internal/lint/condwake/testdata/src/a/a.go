// Package a exercises the condwake positive and negative cases.
package a

import (
	"sync"
	"time"
)

type pipe struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// bad: wakeup with no lock held — races with a parking waiter.
func (p *pipe) bareWake() {
	p.n++
	p.cond.Broadcast() // want "without p.cond's mutex held"
}

// bad: Signal is just as lost as Broadcast.
func (p *pipe) bareSignal() {
	p.cond.Signal() // want "without p.cond's mutex held"
}

// bad: the netem deadline-timer shape — the runtime invokes the method
// value with no locks held.
func (p *pipe) timerWake(d time.Duration) *time.Timer {
	return time.AfterFunc(d, p.cond.Broadcast) // want "used as a callback"
}

// bad: a goroutine does not inherit the caller's locks, held or not.
func (p *pipe) goWake() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go p.cond.Broadcast() // want "runs the wakeup without p.cond's mutex"
}

// good: wakeup inside the critical section.
func (p *pipe) lockedWake() {
	p.mu.Lock()
	p.n++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// good: deferred unlock holds the lock to the end of the function.
func (p *pipe) deferredWake() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	p.cond.Signal()
}

// good: locking through the cond's own Locker field.
func (p *pipe) viaLocker() {
	p.cond.L.Lock()
	p.n++
	p.cond.Broadcast()
	p.cond.L.Unlock()
}

// good: the PR 6 fix — route callbacks through a method that locks.
func (p *pipe) lockedBroadcast() {
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) timerWakeFixed(d time.Duration) *time.Timer {
	return time.AfterFunc(d, p.lockedBroadcast)
}

// good: suppressed with a reason.
func (p *pipe) suppressedWake() {
	//lint:allow-condwake single-waiter protocol tolerates a spurious miss
	p.cond.Broadcast()
}
