// Package condwake flags sync.Cond wakeups that can be lost: a
// Broadcast()/Signal() call made without the cond's mutex held, or a
// Broadcast/Signal method value handed to a callback (time.AfterFunc,
// goroutine) that will run unlocked. The race is the classic lost
// wakeup: a waiter checks its predicate under the lock, finds it false,
// and — between releasing the lock inside Wait and parking — an unlocked
// Broadcast fires into the void. The waiter then parks forever even
// though the state it waits for has changed. The netem pipe hit exactly
// this (its deadline timer fired cond.Broadcast bare) and PR 6 fixed it
// by routing every wakeup through a lockedBroadcast helper; this
// analyzer keeps the fix structural.
//
// The analysis reuses lockedblock's region tracking: a mutex (or the
// cond's sync.Locker field) counts as held from a Lock() statement to the
// matching Unlock in the same list, and a deferred Unlock holds it to the
// end of the function. A wakeup inside a function whose doc comment or
// name says "locked" still needs the lock actually taken in scope — the
// analyzer checks code, not comments. A wakeup that is intentionally
// unlocked (valid when the protocol tolerates spurious loss) carries
// //lint:allow-condwake <reason>.
package condwake

import (
	"go/ast"
	"go/token"
	"go/types"

	"csaw/internal/lint/analysis"
)

// Analyzer is the condwake analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "condwake",
	Doc:      "flag sync.Cond Broadcast/Signal without the guarding mutex held (including method values passed as callbacks); unlocked wakeups race with Wait and get lost",
	Suppress: "condwake",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass}
			w.stmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type walker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool
}

// reportOnce deduplicates: expr's traversal and methodValues' recursion
// can reach the same selector through nested calls.
func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	if w.reported == nil {
		w.reported = make(map[token.Pos]bool)
	}
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// stmts walks one statement list, tracking held locks exactly like
// lockedblock: changes persist across the list, nested lists get a copy.
func (w *walker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, locks, ok := w.lockCall(s.X); ok {
			if locks {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// Deferred Unlock keeps the region locked; a deferred wakeup runs
		// at return, when a deferred-unlock pattern still holds the lock.
		// Check the call's arguments for bare method values either way.
		w.methodValues(s.Call)
	case *ast.GoStmt:
		// The goroutine runs without this frame's locks. A wakeup method
		// value as the go target is the AfterFunc shape verbatim.
		w.methodValues(s.Call)
		if cond, name, ok := w.wakeMethodValue(s.Call.Fun); ok {
			w.reportOnce(s.Call.Pos(), "go %s.%s runs the wakeup without %s's mutex; wrap it in a method that locks first (or annotate //lint:allow-condwake <reason>)", cond, name, cond)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm {
				if cc.Comm != nil {
					w.stmt(cc.Comm, clone(held))
				}
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, clone(held))
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		w.stmts(s.Body.List, clone(held))
	case *ast.RangeStmt:
		w.stmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr inspects an expression for wakeup calls and bare wakeup method
// values. Function literals are not entered (they run later, under
// whatever locks their eventual caller holds); method values passed as
// arguments are caught by methodValues regardless of nesting.
func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		w.methodValues(call)
		cond, name, isWake := w.wakeMethodValue(call.Fun)
		if !isWake {
			return true
		}
		if !w.condLockHeld(cond, held) {
			w.reportOnce(call.Pos(), "%s.%s without %s's mutex held; an unlocked wakeup races with Wait and can be lost (or annotate //lint:allow-condwake <reason>)", cond, name, cond)
		}
		return true
	})
}

// methodValues flags wakeup method values appearing in argument position
// of a call — time.AfterFunc(d, p.cond.Broadcast) is the netem bug
// verbatim: the runtime invokes the callback with no locks held. A
// selector that is the Fun of a nested call is a call, not a value, and
// is handled by the call check in expr.
func (w *walker) methodValues(call *ast.CallExpr) {
	for _, arg := range call.Args {
		w.scanValue(arg)
	}
}

// scanValue walks e flagging wakeup method values; call Funs are skipped
// (call position), call arguments recursed.
func (w *walker) scanValue(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if c, isCall := n.(*ast.CallExpr); isCall {
			for _, a := range c.Args {
				w.scanValue(a)
			}
			return false
		}
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		if cond, name, isWake := w.wakeMethodValue(sel); isWake {
			w.reportOnce(sel.Pos(), "%s.%s used as a callback runs without %s's mutex; pass a method that locks before waking (or annotate //lint:allow-condwake <reason>)", cond, name, cond)
			return false
		}
		return true
	})
}

// wakeMethodValue matches a selector expression E.Broadcast / E.Signal
// where E is a *sync.Cond, returning the rendered cond expression.
func (w *walker) wakeMethodValue(fun ast.Expr) (cond, name string, ok bool) {
	sel, isSel := ast.Unparen(fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if sel.Sel.Name != "Broadcast" && sel.Sel.Name != "Signal" {
		return "", "", false
	}
	tv, has := w.pass.TypesInfo.Types[sel.X]
	if !has || !isCond(tv.Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// condLockHeld reports whether any lock guarding cond is held. Without
// flow-sensitive aliasing we accept any held mutex in scope: the common
// shapes are `p.mu.Lock(); ...; p.cond.Broadcast()` and
// `p.cond.L.Lock(); ...; p.cond.Signal()`, and a function that locks
// *some* mutex around the wakeup is almost always locking the right one.
// The analyzer's job is catching the zero-locks-held case.
func (w *walker) condLockHeld(cond string, held map[string]bool) bool {
	return len(held) > 0
}

// lockCall matches Lock/RLock/Unlock/RUnlock on a sync.Mutex, RWMutex, or
// sync.Locker (covering cond.L.Lock()).
func (w *walker) lockCall(e ast.Expr) (mu string, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var locking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
		locking = false
	default:
		return "", false, false
	}
	tv, has := w.pass.TypesInfo.Types[sel.X]
	if !has || !isLockable(tv.Type) {
		return "", false, false
	}
	return types.ExprString(sel.X), locking, true
}

// isLockable reports whether t (possibly behind pointers) is sync.Mutex,
// sync.RWMutex, or the sync.Locker interface (a Cond's L field).
func isLockable(t types.Type) bool {
	for {
		p, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "Locker")
}

// isCond reports whether t (possibly behind pointers) is sync.Cond.
func isCond(t types.Type) bool {
	for {
		p, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond"
}

func clone(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
