// Package clean is the sliceshare negative golden: ownership-respecting
// appends only, zero findings expected.
package clean

type buffer struct {
	data []byte
}

// Self-append: the owner grows its own storage.
func (b *buffer) push(p []byte) {
	b.data = append(b.data, p...)
}

// Reset-and-refill: truncating first stays within owned storage.
func (b *buffer) reset(p []byte) {
	b.data = append(b.data[:0], p...)
}

// Full slice expression: capacity pinned, append must copy.
func (b *buffer) snapshot(extra byte) []byte {
	return append(b.data[:len(b.data):len(b.data)], extra)
}

// Locals accumulate freely.
func gather(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
