// Package a exercises the sliceshare positive and negative cases.
package a

type cache struct {
	items  []int
	byName map[string][]int
}

func (c *cache) get() []int { return c.items }

// bad: append to a struct field bound to a fresh name — spare capacity
// writes into the field's backing array.
func aliasField(c *cache, x int) []int {
	out := append(c.items, x) // want "shared backing array"
	return out
}

// bad: returning the append directly is the same aliasing.
func aliasReturn(c *cache, x int) []int {
	return append(c.items, x) // want "shared backing array"
}

// bad: a map element is shared with everyone holding the map.
func aliasMapElem(c *cache, k string, x int) []int {
	merged := append(c.byName[k], x) // want "shared backing array"
	return merged
}

// bad: a getter's return value is a view of receiver state.
func aliasGetter(c *cache, x int) []int {
	out := append(c.get(), x) // want "shared backing array"
	return out
}

// bad: a two-index subslice of a field is still the field's array.
func aliasSubslice(c *cache, x int) []int {
	out := append(c.items[:1], x) // want "shared backing array"
	return out
}

// good: self-append — the owner mutating its own storage.
func selfAppend(c *cache, x int) {
	c.items = append(c.items, x)
}

// good: truncate-and-append back into the same field.
func truncateAppend(c *cache, x int) {
	c.items = append(c.items[:0], x)
}

// good: per-key self-append on a map element.
func mapSelfAppend(c *cache, k string, x int) {
	c.byName[k] = append(c.byName[k], x)
}

// good: full slice expression pins capacity, forcing a copy.
func fullSlice(c *cache, x int) []int {
	out := append(c.items[:len(c.items):len(c.items)], x)
	return out
}

// good: plain locals are owned by this function.
func localAppend(x int) []int {
	var out []int
	out = append(out, x)
	other := append(out, x)
	return other
}

// good: package-level function results are fresh values by convention.
func clonedAppend(c *cache, x int) []int {
	out := append(cloneInts(c.items), x)
	return out
}

func cloneInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}

// good: suppressed with a reason.
func suppressed(c *cache, x int) []int {
	//lint:allow-sliceshare caller passes an exclusively-owned scratch cache
	out := append(c.items, x)
	return out
}
