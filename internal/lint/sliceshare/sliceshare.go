// Package sliceshare flags appends that can silently write into a shared
// backing array: append(x, ...) where x is read out of a struct field, a
// container element, or a getter's return value, and the result is NOT
// assigned back to that same expression. When such a slice has spare
// capacity, append writes in place — mutating whatever else aliases the
// array. That is the mergeEntries bug class: the globaldb client's
// conditional-fetch cache handed out cached Entry.Stages slices, a merge
// appended "into" them, and one client's view leaked into another round's
// cache (fixed by hand in PR 6; this analyzer makes the fix structural).
//
// Safe shapes, accepted mechanically:
//
//	x = append(x, ...)                      // self-append: mutating your own field
//	y = append(x[:len(x):len(x)], ...)      // full slice expression: capacity pinned, forced copy
//	y = append(slices.Clone(x), ...)        // package-level helpers return fresh slices
//	y = append(local, ...)                  // plain locals are owned by this function
//
// A deliberate alias (the caller guarantees exclusive ownership) carries
// //lint:allow-sliceshare <reason>.
package sliceshare

import (
	"go/ast"
	"go/types"

	"csaw/internal/lint/analysis"
)

// Analyzer is the sliceshare analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "sliceshare",
	Doc:      "flag append to a slice read from a shared struct/getter without a full slice expression or clone; spare capacity makes append write into the shared backing array",
	Suppress: "sliceshare",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// First pass: appends in assignment position, where the
		// self-append exemption applies.
		handled := make(map[*ast.CallExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			as, isAssign := n.(*ast.AssignStmt)
			if !isAssign || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call := appendCall(pass, rhs)
				if call == nil {
					continue
				}
				handled[call] = true
				src := ast.Unparen(call.Args[0])
				if !shared(pass, src) {
					continue
				}
				lhs := types.ExprString(ast.Unparen(as.Lhs[i]))
				if lhs == types.ExprString(src) || lhs == types.ExprString(sliceBase(src)) {
					// x = append(x, ...) and x = append(x[:n], ...):
					// self-append, possibly truncating first — the owner
					// mutating its own storage.
					continue
				}
				report(pass, call, src)
			}
			return true
		})
		// Second pass: appends in any other position (returned, passed as
		// an argument, nested in a larger expression) — there is no
		// "assigned back" there, so a shared source is always a finding.
		ast.Inspect(f, func(n ast.Node) bool {
			call := appendCall(pass, n)
			if call == nil || handled[call] {
				return true
			}
			if src := ast.Unparen(call.Args[0]); shared(pass, src) {
				report(pass, call, src)
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, call *ast.CallExpr, src ast.Expr) {
	pass.Reportf(call.Pos(), "append to %s may write into a shared backing array; pin capacity with %s[:len(%s):len(%s)] or copy first (or annotate //lint:allow-sliceshare <reason>)",
		types.ExprString(src), types.ExprString(src), types.ExprString(src), types.ExprString(src))
}

// appendCall returns n as a builtin append call with arguments, or nil.
func appendCall(pass *analysis.Pass, n ast.Node) *ast.CallExpr {
	e, isExpr := n.(ast.Expr)
	if !isExpr {
		return nil
	}
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) == 0 {
		return nil
	}
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return call
}

// sliceBase strips two-index slice expressions: the base of c.items[:n]
// is c.items. Three-index expressions are not stripped — they already
// pin capacity and never reach the self-append comparison.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		s, isSlice := e.(*ast.SliceExpr)
		if !isSlice || s.Slice3 {
			return e
		}
		e = ast.Unparen(s.X)
	}
}

// shared reports whether the append source is read out of shared state: a
// struct field or package-level variable (selector), a container element
// (index expression), or a method call's return value (getters handing
// out internal slices). Plain locals, package-function results
// (slices.Clone and friends return fresh slices), and full three-index
// slice expressions are not shared.
func shared(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// pkg.Var is shared state too; pkg.Func is handled under CallExpr.
		_, isVar := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		return isVar
	case *ast.IndexExpr:
		// An element of a map or slice: whoever holds the container sees
		// the mutation. Exempt elements of locally-built composites? No —
		// the container expression rarely distinguishes them; locals
		// indexed by loop vars stay self-appends in practice.
		return true
	case *ast.SliceExpr:
		if e.Slice3 {
			return false // full slice expression: capacity pinned
		}
		return shared(pass, ast.Unparen(e.X))
	case *ast.CallExpr:
		sel, isSel := e.Fun.(*ast.SelectorExpr)
		if !isSel {
			return false // conversions, builtins, local func results
		}
		if _, _, qualified := pass.PkgFuncRef(sel); qualified {
			return false // package function: returns a fresh value by convention
		}
		// A method call: getters return views of receiver state.
		return true
	}
	return false
}
