package sliceshare_test

import (
	"testing"

	"csaw/internal/lint/linttest"
	"csaw/internal/lint/sliceshare"
)

func TestSliceshare(t *testing.T) {
	linttest.Run(t, sliceshare.Analyzer, "testdata", "a", nil)
}

func TestSliceshareClean(t *testing.T) {
	linttest.RunClean(t, sliceshare.Analyzer, "testdata", "clean", nil)
}
