// Package spanbalance flags trace spans that can leak: a value acquired
// from csaw/internal/trace — a Span from Tracer.Start, a Mark from
// Lane.Begin, or a Hold() on a span — that some path to a function exit
// neither discharges (Finish / End / Release) nor hands off (stored,
// returned, passed along). A leaked span never emits, its flight-recorder
// slot stays occupied, and a held span pins its buffers until process
// exit; PR 6 balanced every Start with a deferred Finish and every Hold
// with a deferred Release by hand, and this analyzer keeps new code on
// that discipline.
//
// The check runs on the framework's must-discharge walk
// (analysis.MustDischarge): from the acquire statement, every structured
// path to a return must pass the matching call. Discharges inside
// deferred or spawned closures count — registering `defer sp.Finish(...)`
// is the last act the function is responsible for. Any other use of the
// acquired value (assigning it to a field, passing it to a callee,
// returning it) is an ownership transfer and ends the obligation.
// Lane.Close is deliberately out of scope: lanes may outlive the fetch
// that opened them (the flight recorder closes them at retirement).
package spanbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"csaw/internal/lint/analysis"
)

// Analyzer is the spanbalance analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "spanbalance",
	Doc:      "flag trace acquisitions (Tracer.Start, Lane.Begin, Span.Hold) not discharged (Finish, End, Release) on every path; leaked spans never emit and pin recorder slots",
	Suppress: "spanbalance",
	Run:      run,
}

const tracePath = "csaw/internal/trace"

// dischargeFor maps the acquiring method to its discharging method.
var dischargeFor = map[string]string{
	"Start": "Finish",
	"Begin": "End",
	"Hold":  "Release",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkBody finds every acquire statement directly in body (nested
// literals have their own walk) and runs the must-discharge analysis for
// each.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	acqs := collectAcquires(pass, body)
	if len(acqs) == 0 {
		return
	}
	recv := receiverIdents(body)
	for _, acq := range acqs {
		ob := &analysis.Obligation{
			Acquire:    acq.stmt,
			Discharges: acq.discharges(pass),
			Escapes:    acq.escapes(pass, recv),
		}
		if analysis.MustDischarge(body, ob) {
			pass.Reportf(acq.pos, "%s acquired here is not %s'd on every return path; defer the %s or hand the value off (or annotate //lint:allow-spanbalance <reason>)",
				acq.what, acq.discharge, acq.discharge)
		}
	}
}

// receiverIdents collects the identifiers appearing as the receiver of a
// method call (the sel.X of a CallExpr's Fun) anywhere in body. A tracked
// variable in receiver position is being used, not handed off; any other
// appearance transfers ownership.
func receiverIdents(body *ast.BlockStmt) map[*ast.Ident]bool {
	recv := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
				recv[id] = true
			}
		}
		return true
	})
	return recv
}

// An acquire is one tracked acquisition site.
type acquire struct {
	stmt      ast.Stmt     // the acquiring statement (Obligation.Acquire)
	pos       token.Pos    // report position
	what      string       // human name: "span sp", "mark m", "hold on sp"
	discharge string       // Finish / End / Release
	obj       types.Object // the bound variable (nil for Hold)
	expr      string       // for Hold: the receiver expression string
}

// discharges builds the predicate matching the discharging call.
func (a *acquire) discharges(pass *analysis.Pass) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return false
		}
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != a.discharge {
			return false
		}
		if a.obj != nil {
			id, isIdent := ast.Unparen(sel.X).(*ast.Ident)
			return isIdent && pass.TypesInfo.Uses[id] == a.obj
		}
		return types.ExprString(sel.X) == a.expr
	}
}

// escapes builds the ownership-transfer predicate: any appearance of the
// acquired variable outside receiver position — returned, stored in a
// struct or map, sent on a channel, passed to a callee, captured by a
// composite literal — makes someone else responsible for the discharge.
func (a *acquire) escapes(pass *analysis.Pass, recv map[*ast.Ident]bool) func(ast.Node) bool {
	if a.obj == nil {
		return nil // Hold tracks an expression, not a binding; no escape
	}
	return func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || recv[id] {
			return false
		}
		return pass.TypesInfo.Uses[id] == a.obj
	}
}

// collectAcquires walks body (skipping nested function literals) and
// returns the acquisition statements: `v := E.Start(...)`,
// `v := E.Begin(...)`, and bare `E.Hold()` statements, plus escapes
// handled later. Assignments that discard the value (`_ = ...`) and
// multi-value shapes the tracker cannot follow are skipped.
func collectAcquires(pass *analysis.Pass, body *ast.BlockStmt) []*acquire {
	var out []*acquire
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, isCall := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !isCall {
				return true
			}
			name, isAcq := traceAcquire(pass, call)
			if !isAcq || name == "Hold" {
				return true
			}
			id, isIdent := s.Lhs[0].(*ast.Ident)
			if !isIdent || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			what := "span " + id.Name
			if name == "Begin" {
				what = "mark " + id.Name
			}
			out = append(out, &acquire{
				stmt: s, pos: call.Pos(), what: what,
				discharge: dischargeFor[name], obj: obj,
			})
		case *ast.ExprStmt:
			call, isCall := ast.Unparen(s.X).(*ast.CallExpr)
			if !isCall {
				return true
			}
			name, isAcq := traceAcquire(pass, call)
			if !isAcq || name != "Hold" {
				return true
			}
			recv := types.ExprString(ast.Unparen(call.Fun.(*ast.SelectorExpr).X))
			out = append(out, &acquire{
				stmt: s, pos: call.Pos(), what: "hold on " + recv,
				discharge: "Release", expr: recv,
			})
		}
		return true
	})
	return out
}

// traceAcquire reports whether call is Tracer.Start, Lane.Begin, or
// Span.Hold from csaw/internal/trace, returning the method name.
func traceAcquire(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePath {
		return "", false
	}
	if _, tracked := dischargeFor[fn.Name()]; !tracked {
		return "", false
	}
	// Only method calls count: the selector receiver anchors the
	// discharge matching.
	if _, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); !isSel {
		return "", false
	}
	return fn.Name(), true
}
