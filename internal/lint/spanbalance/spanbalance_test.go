package spanbalance_test

import (
	"testing"

	"csaw/internal/lint/linttest"
	"csaw/internal/lint/spanbalance"
)

func TestSpanbalance(t *testing.T) {
	linttest.Run(t, spanbalance.Analyzer, "testdata", "a", nil)
}

func TestSpanbalanceClean(t *testing.T) {
	linttest.RunClean(t, spanbalance.Analyzer, "testdata", "clean", nil)
}
