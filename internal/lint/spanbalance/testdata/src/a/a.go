// Package a exercises the spanbalance positive and negative cases.
package a

import (
	"errors"

	"csaw/internal/trace"
)

// bad: the early return leaks the span — no Finish on that path.
func leakEarlyReturn(tr *trace.Tracer, fail bool) error {
	sp := tr.Start("c1", 1, "http://x/") // want "not Finish'd on every return path"
	if fail {
		return errors.New("bailed without finishing")
	}
	sp.Finish("direct", "ok", nil)
	return nil
}

// bad: falling off the end without a Finish leaks too.
func leakFallOff(tr *trace.Tracer) {
	sp := tr.Start("c1", 2, "http://x/") // want "not Finish'd on every return path"
	sp.Event("app", "started", "")
}

// bad: a mark ended on one branch only.
func leakMark(sp *trace.Span, deep bool) {
	lane := sp.Lane("probe")
	m := lane.Begin(trace.PhaseConnect) // want "not End'd on every return path"
	if deep {
		m.End()
	}
}

// bad: a hold with a conditional release pins the span's buffers.
func leakHold(sp *trace.Span, keep bool) {
	sp.Hold() // want "not Release'd on every return path"
	if keep {
		return
	}
	sp.Release()
}

// good: the canonical shape — deferred Finish covers every path.
func deferredFinish(tr *trace.Tracer, fail bool) error {
	sp := tr.Start("c1", 3, "http://x/")
	defer func() { sp.Finish("direct", "ok", nil) }()
	if fail {
		return errors.New("covered by the defer")
	}
	return nil
}

// good: both branches discharge.
func branchesFinish(tr *trace.Tracer, fail bool) {
	sp := tr.Start("c1", 4, "http://x/")
	if fail {
		sp.Finish("direct", "error", errors.New("x"))
		return
	}
	sp.Finish("direct", "ok", nil)
}

// good: handing the span to a goroutine transfers ownership; the
// closure's own walk sees the Release.
func heldAcrossGoroutine(sp *trace.Span, done chan struct{}) {
	sp.Hold()
	go func() {
		defer sp.Release()
		<-done
	}()
}

// good: returning the span makes the caller responsible.
func startAndReturn(tr *trace.Tracer) *trace.Span {
	sp := tr.Start("c1", 5, "http://x/")
	return sp
}

// good: storing the span transfers ownership to the struct's owner.
type fetchState struct {
	sp *trace.Span
}

func startAndStore(tr *trace.Tracer, st *fetchState) {
	sp := tr.Start("c1", 6, "http://x/")
	st.sp = sp
}

// good: marks balanced in sequence.
func balancedMarks(sp *trace.Span) {
	lane := sp.Lane("probe")
	m := lane.Begin(trace.PhaseDNS)
	m.End()
	m2 := lane.Begin(trace.PhaseConnect)
	m2.End()
}

// good: a panic path is not a leak.
func finishOrPanic(tr *trace.Tracer, fail bool) {
	sp := tr.Start("c1", 7, "http://x/")
	if fail {
		panic("unreachable in production")
	}
	sp.Finish("direct", "ok", nil)
}

// good: suppressed with a reason.
func suppressed(tr *trace.Tracer) {
	//lint:allow-spanbalance span intentionally leaked to measure recorder backpressure
	sp := tr.Start("c1", 8, "http://x/")
	_ = sp
}
