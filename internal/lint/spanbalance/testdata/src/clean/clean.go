// Package clean is the spanbalance negative golden: every acquisition is
// discharged or handed off, zero findings expected.
package clean

import (
	"csaw/internal/trace"
)

// The fetch shape from internal/core: start, defer the finish, work.
func fetchShape(tr *trace.Tracer, work func() (string, error)) error {
	sp := tr.Start("client", 1, "http://target/")
	var status string
	var err error
	defer func() { sp.Finish("direct", status, err) }()
	status, err = work()
	return err
}

// The failover shape: hold the span across a background goroutine.
func failoverShape(sp *trace.Span, done chan struct{}) {
	sp.Hold()
	go func() {
		defer sp.Release()
		<-done
	}()
}

// The phase-timing shape: balanced marks on a lane.
func timedPhases(sp *trace.Span, dial func()) {
	lane := sp.Lane("fetch")
	m := lane.Begin(trace.PhaseConnect)
	dial()
	m.End()
}
