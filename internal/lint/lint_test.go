package lint_test

import (
	"bytes"
	"testing"

	"csaw/internal/lint"
	"csaw/internal/lint/analysis"
	"csaw/internal/lint/linttest"
)

// TestMultichecker runs the full suite against a golden package whose
// want comments span several analyzers, exercising cross-analyzer
// suppression scanning and diagnostic ordering through the same pipeline
// cmd/csaw-lint uses.
func TestMultichecker(t *testing.T) {
	linttest.RunAnalyzers(t, lint.Analyzers(), "testdata", "multi", nil)
}

// TestMulticheckerDeterministic loads the golden package from scratch
// twice, runs the whole suite each time, and byte-compares both the
// rendered text and the JSON artifact. The linter gates a determinism
// suite; its own output must hold itself to the same standard.
func TestMulticheckerDeterministic(t *testing.T) {
	runOnce := func() (string, []byte) {
		pkg, err := analysis.LoadDir("testdata/src/multi", "multi")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, lint.Analyzers(), nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		var text bytes.Buffer
		for _, d := range diags {
			text.WriteString(d.String())
			text.WriteByte('\n')
		}
		return text.String(), analysis.EncodeJSON(diags)
	}
	text1, json1 := runOnce()
	text2, json2 := runOnce()
	if text1 != text2 {
		t.Errorf("rendered diagnostics differ between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", text1, text2)
	}
	if !bytes.Equal(json1, json2) {
		t.Errorf("JSON diagnostics differ between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", json1, json2)
	}
	if text1 == "" {
		t.Fatal("golden multi package produced no diagnostics; the determinism comparison is vacuous")
	}
}
