// Package linttest is an analysistest-style golden-test harness for the
// csaw-lint analyzers. A test package lives under testdata/src/<name>/
// next to the analyzer's test file; expectations are written as
//
//	badCall() // want "regexp matching the diagnostic"
//
// comments on the offending line (multiple quoted patterns allowed). The
// harness type-checks the package with the same export-data importer the
// real linter uses, runs the analyzer through the real suppression and
// allowlist pipeline (so //lint:allow-* behaviour is testable), and
// fails the test on any unmatched expectation or unexpected diagnostic.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"csaw/internal/lint/analysis"
)

// want is one expectation parsed from a // want comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run checks the analyzer against testdata/src/<pkg> under dir (usually
// "testdata" relative to the test). cfg may be nil for no allowlist.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkg string, cfg *analysis.Config) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{a}, dir, pkg, cfg)
}

// RunAnalyzers is Run over a whole suite at once: the golden package's
// want comments must account for every analyzer's findings together,
// which is how the multichecker meta-test exercises cross-analyzer
// ordering.
func RunAnalyzers(t *testing.T, as []*analysis.Analyzer, dir, pkg string, cfg *analysis.Config) {
	t.Helper()
	loaded, files := loadGolden(t, dir, pkg)
	wants, err := parseWants(files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{loaded}, as, cfg)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// RunClean asserts the golden package produces zero diagnostics and
// carries zero want comments — the negative-case companion to Run. A
// want comment in a clean package is a test bug (the expectation would
// silently never be checked against the right analyzer), so it fails
// loudly.
func RunClean(t *testing.T, a *analysis.Analyzer, dir, pkg string, cfg *analysis.Config) {
	t.Helper()
	loaded, files := loadGolden(t, dir, pkg)
	wants, err := parseWants(files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	if len(wants) > 0 {
		t.Fatalf("linttest: clean package %s has %d want comment(s); move them to a positive golden package", pkg, len(wants))
	}
	diags, err := analysis.Run([]*analysis.Package{loaded}, []*analysis.Analyzer{a}, cfg)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in clean package: %s", d)
	}
}

// loadGolden loads testdata/src/<pkg> through the same LoadDir path
// csaw-lint's -dir mode uses, and returns the loaded package plus its
// file list (sorted, as LoadDir reads them) for want parsing.
func loadGolden(t *testing.T, dir, pkg string) (*analysis.Package, []string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "src", pkg)
	loaded, err := analysis.LoadDir(pkgdir, pkg)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, f := range loaded.Files {
		files = append(files, loaded.Fset.Position(f.Pos()).Filename)
	}
	return loaded, files
}

// match marks and reports the first unmatched expectation covering d.
func match(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want(\+\d+)?\s+(.*)$`)

// parseWants extracts // want "..." expectations from the files. A
// "// want+N" form expects the diagnostic N lines below the comment —
// for lines whose own comment slot is taken by a //lint: directive.
func parseWants(files []string) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, _ = strconv.Atoi(m[1][1:])
			}
			pats, err := splitQuoted(m[2])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", f, i+1, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %v", f, i+1, err)
				}
				wants = append(wants, &want{file: f, line: i + 1 + offset, pattern: re})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// splitQuoted parses a sequence of quoted patterns: "a" `b`. Backticks
// carry no escaping; inside double quotes \" stands for a quote.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want patterns must be quoted with \" or `, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if quote == '"' && s[i] == '\\' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		pat := s[1:end]
		if quote == '"' {
			pat = strings.ReplaceAll(pat, `\"`, `"`)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want clause")
	}
	return out, nil
}
