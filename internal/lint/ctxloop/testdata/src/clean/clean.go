// Package clean is the ctxloop negative golden: every blocking loop
// honors its context, zero findings expected.
package clean

import "context"

func worker(ctx context.Context, jobs chan func()) {
	for {
		select {
		case <-ctx.Done():
			return
		case job, ok := <-jobs:
			if !ok {
				return
			}
			job()
		}
	}
}

func retry(ctx context.Context, attempt func(context.Context) error) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = attempt(ctx); err == nil {
			return nil
		}
	}
	return err
}

func checksum(ctx context.Context, data []byte) uint32 {
	var sum uint32
	for _, b := range data {
		sum = sum*31 + uint32(b)
	}
	return sum
}
