// Package a exercises the ctxloop positive and negative cases.
package a

import "context"

type clock interface {
	Sleep(ms int)
}

// bad: retries forever after cancellation — never consults ctx.
func retryDeaf(ctx context.Context, c clock, try func() error) error {
	var err error
	for i := 0; i < 5; i++ { // want "never consults the context"
		if err = try(); err == nil {
			return nil
		}
		c.Sleep(100)
	}
	return err
}

// bad: blocking receive loop without a ctx.Done case.
func drainDeaf(ctx context.Context, ch chan int) int {
	total := 0
	for { // want "never consults the context"
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// good: checks ctx.Err each iteration.
func retryChecked(ctx context.Context, c clock, try func() error) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = try(); err == nil {
			return nil
		}
		c.Sleep(100)
	}
	return err
}

// good: selects on ctx.Done.
func drainChecked(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

// good: passing ctx to the callee delegates the honoring, even though
// the loop blocks between attempts.
func retryDelegated(ctx context.Context, c clock, try func(context.Context) error) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = try(ctx); err == nil {
			return nil
		}
		c.Sleep(100)
	}
	return err
}

// good: a pure computation loop has no cancellation window.
func sum(ctx context.Context, xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// good: no context parameter, nothing to honor.
func retryNoCtx(c clock, try func() error) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = try(); err == nil {
			return nil
		}
		c.Sleep(100)
	}
	return err
}

// good: a select with default does not block the iteration.
func pollNonBlocking(ctx context.Context, ch chan int) int {
	total := 0
	for i := 0; i < 3; i++ {
		select {
		case v := <-ch:
			total += v
		default:
		}
	}
	return total
}

// bad: a function literal with its own ctx param is checked on its own.
func spawner(parent context.Context, c clock) func(context.Context) {
	return func(ctx context.Context) {
		for { // want "never consults the context"
			c.Sleep(50)
		}
	}
}

// good: suppressed with a reason.
func finalFlush(ctx context.Context, c clock, flush func() error) {
	//lint:allow-ctxloop shutdown flush must run to completion
	for flush() != nil {
		c.Sleep(10)
	}
}
