// Package ctxloop flags retry/poll loops that ignore their context: a
// function takes a context.Context, contains a non-range for-loop that
// blocks each iteration (select, channel receive, or a sleep call), and
// neither the loop condition nor its body ever consults the context. Such
// a loop keeps retrying after cancellation — the fleet driver's
// joinClient/retireClient loops did exactly this until PR 6 added
// ctx.Err() checks, turning shutdown from "wait for the retry ladder to
// run dry" into "return promptly". The analyzer makes that check
// structural.
//
// Any reference to the context parameter inside the loop counts as
// consulting it: ctx.Err(), ctx.Done() in a select, or passing ctx to a
// callee (which is then responsible for honoring it). Loops that never
// block are not flagged — a pure computation loop has no cancellation
// window. A loop that deliberately runs to completion regardless of
// cancellation (cleanup, final flush) carries
// //lint:allow-ctxloop <reason>.
package ctxloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"csaw/internal/lint/analysis"
)

// Analyzer is the ctxloop analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxloop",
	Doc:      "flag blocking retry/poll loops in context-carrying functions that never consult the context; they keep retrying after cancellation",
	Suppress: "ctxloop",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ftype, body = n.Type, n.Body
			case *ast.FuncLit:
				ftype, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ctxs := ctxParams(pass, ftype)
			if len(ctxs) == 0 {
				return true // no context to honor
			}
			checkBody(pass, body, ctxs)
			// Keep walking: nested literals are checked against their own
			// parameter lists (a literal without a ctx param that captures
			// the outer ctx is the outer function's loop to check).
			return true
		})
	}
	return nil
}

// ctxParams collects the context.Context parameter objects of one
// function signature.
func ctxParams(pass *analysis.Pass, ftype *ast.FuncType) map[types.Object]bool {
	ctxs := make(map[types.Object]bool)
	if ftype.Params == nil {
		return ctxs
	}
	for _, field := range ftype.Params.List {
		if !isContext(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				ctxs[obj] = true
			}
		}
	}
	return ctxs
}

// isContext reports whether the type expression denotes context.Context.
func isContext(pass *analysis.Pass, e ast.Expr) bool {
	tv, has := pass.TypesInfo.Types[e]
	if !has {
		return false
	}
	named, isNamed := tv.Type.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkBody flags the offending loops directly inside body (not inside
// nested function literals, which are checked against their own
// signatures).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctxs map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		loop, isFor := n.(*ast.ForStmt)
		if !isFor {
			return true
		}
		if !loopBlocks(pass, loop.Body) {
			return true // pure computation: no cancellation window
		}
		if usesAny(pass, loop, ctxs) {
			return true // cond or body consults the context
		}
		pass.Reportf(loop.For, "loop blocks each iteration but never consults the context; check ctx.Err() or select on ctx.Done() so cancellation stops the retries (or annotate //lint:allow-ctxloop <reason>)")
		return true
	})
}

// blockerNames are call names treated as blocking an iteration. Matched
// by method/function name so vtime.Sleep, clock.Sleep, and time.Sleep all
// count without a package list.
var blockerNames = map[string]bool{
	"Sleep":            true,
	"SleepCtx":         true,
	"SleepRealPrecise": true,
	"SpinUntil":        true,
	"Wait":             true,
}

// loopBlocks reports whether the loop body blocks on each iteration:
// a select statement, a channel receive, or a recognized sleep/wait
// call. Nested loops are skipped — their blocking is their own
// iteration's business, and the outer loop is flagged (or not) on its
// own operations.
func loopBlocks(pass *analysis.Pass, body *ast.BlockStmt) bool {
	blocks := false
	for _, s := range body.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if blocks {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				return false
			case *ast.SelectStmt:
				// A select with a default never blocks.
				for _, c := range n.Body.List {
					if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
						return false
					}
				}
				blocks = true
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks = true
					return false
				}
			case *ast.CallExpr:
				if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel && blockerNames[sel.Sel.Name] {
					blocks = true
					return false
				}
				if id, isIdent := n.Fun.(*ast.Ident); isIdent && blockerNames[id.Name] {
					blocks = true
					return false
				}
			}
			return true
		})
		if blocks {
			return true
		}
	}
	return false
}

// usesAny reports whether the loop (condition, post, or body — including
// nested function literals, since passing ctx into a closure or callee
// delegates the honoring) references any of the context objects.
func usesAny(pass *analysis.Pass, loop *ast.ForStmt, ctxs map[types.Object]bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && ctxs[obj] {
			found = true
		}
		return !found
	})
	return found
}
