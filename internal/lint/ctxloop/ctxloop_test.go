package ctxloop_test

import (
	"testing"

	"csaw/internal/lint/ctxloop"
	"csaw/internal/lint/linttest"
)

func TestCtxloop(t *testing.T) {
	linttest.Run(t, ctxloop.Analyzer, "testdata", "a", nil)
}

func TestCtxloopClean(t *testing.T) {
	linttest.RunClean(t, ctxloop.Analyzer, "testdata", "clean", nil)
}
