// Package vtimecheck forbids reading or waiting on the wall clock outside
// the virtual-time substrate. Every latency and timeout in the simulation
// must flow through *vtime.Clock so that clock scaling works and two runs
// of the same experiment see the same virtual schedule; a stray time.Now
// or time.Sleep silently anchors an experiment to the machine it runs on.
//
// internal/vtime itself and the real-deadline plumbing in
// internal/netem/conn.go are allowlisted (see lint.DefaultConfig);
// individually justified uses carry //lint:allow-realtime <reason>.
package vtimecheck

import (
	"go/ast"

	"csaw/internal/lint/analysis"
)

// forbidden are the time package's wall-clock entry points. Everything
// else in package time (Duration arithmetic, time.Time formatting,
// constants) is value manipulation and stays legal.
var forbidden = map[string]string{
	"Now":       "read the virtual clock: vtime.Clock.Now",
	"Sleep":     "sleep in virtual time: vtime.Clock.Sleep",
	"After":     "use vtime.Clock.After",
	"AfterFunc": "use vtime.Clock.AfterFunc",
	"NewTimer":  "use vtime.Clock.After/AfterFunc",
	"NewTicker": "use vtime.Clock.NewTicker",
	"Tick":      "use vtime.Clock.NewTicker",
	"Since":     "use vtime.Clock.Since",
	"Until":     "compute from vtime.Clock.Now",
}

// Analyzer is the vtimecheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "vtimecheck",
	Doc:      "forbid wall-clock time (time.Now, time.Sleep, timers) outside internal/vtime; all timing must flow through vtime.Clock",
	Suppress: "realtime",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			_, path, ok := pass.PkgFuncRef(sel)
			if !ok || path != "time" {
				return true
			}
			if hint, bad := forbidden[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(), "time.%s is wall-clock time; %s (or annotate //lint:allow-realtime <reason>)", sel.Sel.Name, hint)
			}
			return true
		})
	}
	return nil
}
