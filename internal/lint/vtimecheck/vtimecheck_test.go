package vtimecheck_test

import (
	"testing"

	"csaw/internal/lint/analysis"
	"csaw/internal/lint/linttest"
	"csaw/internal/lint/vtimecheck"
)

func TestVtimecheck(t *testing.T) {
	linttest.Run(t, vtimecheck.Analyzer, "testdata", "a", nil)
}

func TestVtimecheckAllowlist(t *testing.T) {
	cfg := &analysis.Config{
		ModuleRoot: "testdata/src",
		Allow:      map[string][]string{"vtimecheck": {"allowed/"}},
	}
	linttest.Run(t, vtimecheck.Analyzer, "testdata", "allowed", cfg)
}
