// Package a exercises vtimecheck: wall-clock reads and timers are
// flagged, Duration/Time value manipulation is not, and both suppression
// placements (same line, preceding line, declaration doc) work.
package a

import "time"

func bad() {
	_ = time.Now()                         // want `time\.Now is wall-clock time`
	time.Sleep(time.Second)                // want `time\.Sleep is wall-clock time`
	<-time.After(time.Second)              // want `time\.After is wall-clock time`
	time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc is wall-clock time`
	t := time.NewTimer(time.Second)        // want `time\.NewTimer is wall-clock time`
	_ = t
	tk := time.NewTicker(time.Second) // want `time\.NewTicker is wall-clock time`
	_ = tk
	_ = time.Since(time.Time{}) // want `time\.Since is wall-clock time`
	_ = time.Until(time.Time{}) // want `time\.Until is wall-clock time`
}

func good() {
	d := 3 * time.Second
	_ = d.Seconds()
	var t time.Time
	_ = t.Add(time.Minute)
	_ = time.Date(2017, time.November, 25, 0, 0, 0, 0, time.UTC)
	_ = time.Duration(5)
}

func suppressedSameLine() {
	start := time.Now() //lint:allow-realtime wall-clock runtime report
	_ = start
}

func suppressedPrecedingLine() {
	//lint:allow-realtime the deadline is real by contract
	time.Sleep(time.Millisecond)
}

//lint:allow-realtime the whole helper deliberately measures wall time
func suppressedDecl() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Since(start)
}

// want+1 `needs a reason`
//lint:allow-realtime
func reasonlessDirective() {
	_ = time.Now() // want `time\.Now is wall-clock time`
}

// want+1 `unknown suppression keyword`
//lint:allow-wallclock oops wrong keyword
func unknownKeyword() {
	_ = time.Now() // want `time\.Now is wall-clock time`
}
