// Package allowed sits on the vtimecheck allowlist in its test's config:
// nothing here may be reported even though it reads the wall clock.
package allowed

import "time"

func realDeadlinePlumbing() time.Time {
	deadline := time.Now().Add(time.Second)
	time.Sleep(time.Millisecond)
	return deadline
}
