package globaldb

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// CaptchaVerifier decides whether a registration's CAPTCHA token represents
// a solved challenge. The default accepts tokens with the "human-" prefix —
// the simulation stand-in for Google's risk-analysis API (§5) — so tests
// and experiments can model bots by sending anything else.
type CaptchaVerifier func(token string) bool

// DefaultCaptcha is the stand-in verifier.
func DefaultCaptcha(token string) bool { return strings.HasPrefix(token, "human-") }

// RegistrationRateLimit caps registrations per source IP per hour, the
// server's second line against fake-account floods.
const RegistrationRateLimit = 5

// Server is the global_DB + server_DB.
type Server struct {
	clock   *vtime.Clock
	captcha CaptchaVerifier
	faults  FaultPolicy

	mu           sync.Mutex
	uuidSeq      uint64
	clients      map[string]map[string]*clientReport // uuid → "url|asn" → report
	users        map[string]bool                     // registered uuids
	regByIP      map[string][]time.Time              // registration times per source IP
	lastRegSweep time.Time
	updates      int
	revoked      map[string]bool
}

type clientReport struct {
	url    string
	asn    int
	stages []WireStage
	tm     time.Time
	tp     time.Time
}

// NewServer creates a server. A nil verifier selects DefaultCaptcha.
func NewServer(clock *vtime.Clock, captcha CaptchaVerifier) *Server {
	if captcha == nil {
		captcha = DefaultCaptcha
	}
	return &Server{
		clock:        clock,
		captcha:      captcha,
		clients:      make(map[string]map[string]*clientReport),
		users:        make(map[string]bool),
		regByIP:      make(map[string][]time.Time),
		lastRegSweep: clock.Now(),
		revoked:      make(map[string]bool),
	}
}

// Faults exposes the server's fault-injection policy (experiments flip it
// at runtime to model outages and flaky paths).
func (s *Server) Faults() *FaultPolicy { return &s.faults }

// Attach starts serving the API on host:port over plain HTTP.
func (s *Server) Attach(host *netem.Host, port int) error {
	l, err := host.Listen(port)
	if err != nil {
		return err
	}
	httpx.Serve(l, s.Handler())
	return nil
}

// Handler returns the API as an httpx.Handler so it can also be mounted
// behind pseudo-TLS or a fronting CDN (§5: blocking access to the
// global_DB is countered by moving it).
func (s *Server) Handler() httpx.Handler {
	return httpx.HandlerFunc(func(req *httpx.Request, flow netem.Flow) *httpx.Response {
		if resp, fired := s.faults.intercept(req); fired {
			return resp // nil = say nothing; the client times out
		}
		path := req.Target
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		switch {
		case req.Method == "POST" && path == PathRegister:
			return s.handleRegister(req, flow)
		case req.Method == "POST" && path == PathReport:
			return s.handleReport(req)
		case req.Method == "GET" && path == PathFetch:
			return s.handleFetch(req)
		case req.Method == "GET" && path == PathStats:
			return jsonResponse(200, s.StatsSnapshot())
		default:
			return httpx.NewResponse(404, []byte("unknown endpoint"))
		}
	})
}

func jsonResponse(code int, v any) *httpx.Response {
	b, err := json.Marshal(v)
	if err != nil {
		return httpx.NewResponse(500, []byte(err.Error()))
	}
	resp := httpx.NewResponse(code, b)
	resp.Header.Set("Content-Type", "application/json")
	return resp
}

func (s *Server) handleRegister(req *httpx.Request, flow netem.Flow) *httpx.Response {
	if !s.captcha(req.Header.Get(CaptchaHeader)) {
		return httpx.NewResponse(403, []byte("captcha failed"))
	}
	srcIP := flow.Src.IP
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepRegLocked(now)
	// Rate-limit registrations per source IP (sliding hour). The IP is used
	// only for this in-memory counter and never stored with measurements.
	recent := s.regByIP[srcIP][:0]
	for _, t := range s.regByIP[srcIP] {
		if now.Sub(t) < time.Hour {
			recent = append(recent, t)
		}
	}
	if len(recent) >= RegistrationRateLimit {
		s.regByIP[srcIP] = recent
		return httpx.NewResponse(429, []byte("registration rate limit"))
	}
	s.regByIP[srcIP] = append(recent, now)

	// UUID: a cryptographic-hash-of-time identifier (§4.2). FNV suffices
	// for the simulation; the property used is uniqueness, not secrecy.
	s.uuidSeq++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", now.UnixNano(), s.uuidSeq)
	uuid := fmt.Sprintf("%016x", h.Sum64())
	s.users[uuid] = true
	return jsonResponse(200, RegisterResponse{UUID: uuid})
}

// regSweepInterval bounds how often the full regByIP map is pruned.
const regSweepInterval = time.Hour

// sweepRegLocked drops source IPs whose registration timestamps have all
// aged out of the sliding rate-limit window. Without it, an IP that
// registers once and never again would keep its map entry forever — at the
// paper's millions-of-users scale that is an unbounded leak. Amortized to
// one O(#IPs) pass per regSweepInterval. Caller holds s.mu.
func (s *Server) sweepRegLocked(now time.Time) {
	if now.Sub(s.lastRegSweep) < regSweepInterval {
		return
	}
	s.lastRegSweep = now
	for ip, times := range s.regByIP {
		live := false
		for _, t := range times {
			if now.Sub(t) < time.Hour {
				live = true
				break
			}
		}
		if !live {
			delete(s.regByIP, ip)
		}
	}
}

func (s *Server) handleReport(req *httpx.Request) *httpx.Response {
	var body ReportRequest
	if err := json.Unmarshal(req.Body, &body); err != nil {
		return httpx.NewResponse(400, []byte("bad json"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.users[body.UUID] || s.revoked[body.UUID] {
		return httpx.NewResponse(403, []byte("unknown or revoked uuid"))
	}
	reports := s.clients[body.UUID]
	if reports == nil {
		reports = make(map[string]*clientReport)
		s.clients[body.UUID] = reports
	}
	now := s.clock.Now()
	accepted := 0
	for _, r := range body.Reports {
		if r.URL == "" || r.ASN == 0 {
			continue
		}
		key := r.URL + "|" + strconv.Itoa(r.ASN)
		reports[key] = &clientReport{url: r.URL, asn: r.ASN, stages: r.Stages, tm: r.Tm, tp: now}
		accepted++
		s.updates++
	}
	return jsonResponse(200, ReportResponse{Accepted: accepted})
}

func (s *Server) handleFetch(req *httpx.Request) *httpx.Response {
	asn := 0
	if i := strings.Index(req.Target, "asn="); i >= 0 {
		v := req.Target[i+4:]
		if j := strings.IndexByte(v, '&'); j >= 0 {
			v = v[:j]
		}
		asn, _ = strconv.Atoi(v)
	}
	if asn == 0 {
		return httpx.NewResponse(400, []byte("missing asn"))
	}
	return jsonResponse(200, FetchResponse{ASN: asn, Entries: s.BlockedForAS(asn)})
}

// BlockedForAS aggregates the blocked-URL entries for an AS with voting
// statistics: s_jk = Σ 1/d_i over clients i reporting (j,k), n_jk = count.
func (s *Server) BlockedForAS(asn int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := make(map[string]*Entry)
	for uuid, reports := range s.clients {
		if s.revoked[uuid] {
			continue
		}
		d := len(reports)
		if d == 0 {
			continue
		}
		vote := 1.0 / float64(d)
		for _, r := range reports {
			if r.asn != asn {
				continue
			}
			e := agg[r.url]
			if e == nil {
				e = &Entry{URL: r.url, ASN: asn, Stages: r.stages}
				agg[r.url] = e
			}
			e.Votes += vote
			e.Reporters++
			if r.tp.After(e.LastTp) {
				e.LastTp = r.tp
				e.Stages = r.stages
			}
		}
	}
	out := make([]Entry, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sortEntries(out)
	return out
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].URL < es[j-1].URL; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Revoke invalidates a UUID (§5: revoking identified malicious users [54]).
func (s *Server) Revoke(uuid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[uuid] = true
}

// StatsSnapshot aggregates the Table-7 numbers from current state.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Users:  len(s.users),
		ByType: make(map[string]int),
	}
	urls := make(map[string]bool)
	domains := make(map[string]bool)
	ases := make(map[int]bool)
	types := make(map[string]bool)
	urlType := make(map[string]string)
	for uuid, reports := range s.clients {
		if s.revoked[uuid] {
			continue
		}
		for _, r := range reports {
			urls[r.url] = true
			host, _ := localdb.SplitURL(r.url)
			domains[host] = true
			ases[r.asn] = true
			primary := "unknown"
			if len(r.stages) > 0 {
				primary = localdb.BlockType(r.stages[0].Type).String()
				if r.stages[0].Detail != "" {
					primary = primary + ":" + r.stages[0].Detail
				}
			}
			types[primaryClass(r.stages)] = true
			urlType[r.url] = primaryClass(r.stages)
			_ = primary
		}
	}
	for _, cls := range urlType {
		st.ByType[cls]++
	}
	st.BlockedURLs = len(urls)
	st.BlockedDomains = len(domains)
	st.ASes = len(ases)
	st.BlockTypes = len(types)
	st.Updates = s.updates
	return st
}

// primaryClass maps stage lists to the Table-7 reporting classes. DNS
// evidence anywhere in the stages classifies the URL as DNS blocking —
// a block page reached through a DNS redirect is still DNS censorship.
func primaryClass(stages []WireStage) string {
	if len(stages) == 0 {
		return "unknown"
	}
	for _, s := range stages {
		if localdb.BlockType(s.Type) == localdb.BlockDNS {
			return "dns"
		}
	}
	first := localdb.BlockType(stages[0].Type)
	switch first {
	case localdb.BlockDNS:
		return "dns"
	case localdb.BlockTCPTimeout, localdb.BlockIP:
		return "tcp-timeout"
	case localdb.BlockHTTP:
		switch stages[0].Detail {
		case "blockpage", "blockpage-redirect":
			return "blockpage"
		case "rst":
			return "rst"
		default:
			return "http-no-response"
		}
	case localdb.BlockSNI:
		return "sni"
	default:
		return first.String()
	}
}
