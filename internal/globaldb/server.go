package globaldb

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"csaw/internal/globaldb/storage"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// CaptchaVerifier decides whether a registration's CAPTCHA token represents
// a solved challenge. The default accepts tokens with the "human-" prefix —
// the simulation stand-in for Google's risk-analysis API (§5) — so tests
// and experiments can model bots by sending anything else.
type CaptchaVerifier func(token string) bool

// DefaultCaptcha is the stand-in verifier.
func DefaultCaptcha(token string) bool { return strings.HasPrefix(token, "human-") }

// RegistrationRateLimit caps registrations per source IP per hour, the
// server's second line against fake-account floods.
const RegistrationRateLimit = 5

// Server is the global_DB + server_DB. Measurement state lives behind the
// store interface (sharded by default; see sharded.go); the Server itself
// keeps only the HTTP surface and the registration rate limiter.
type Server struct {
	clock   *vtime.Clock
	captcha CaptchaVerifier
	faults  FaultPolicy
	store   store
	durable *durableStore // non-nil when built by NewDurableServer
	terms   termState     // promotion term + fencing state (see term.go)

	mu           sync.Mutex // guards the registration state below
	uuidSeq      uint64
	regByIP      map[string][]time.Time // registration times per source IP
	lastRegSweep time.Time
}

// NewServer creates a server. A nil verifier selects DefaultCaptcha.
func NewServer(clock *vtime.Clock, captcha CaptchaVerifier) *Server {
	return newServerWith(clock, captcha, newShardedStore(), nil)
}

// NewDurableServer creates a server whose store write-ahead-logs every
// mutation under o.Dir (see StoreOptions): kill it at any point and a new
// NewDurableServer over the same directory recovers the exact state —
// byte-identical /v1/blocked bodies and the same validator tags. With
// o.Replicated it also serves the replication feed on PathRepl for
// followers (see the replica package).
func NewDurableServer(clock *vtime.Clock, captcha CaptchaVerifier, o StoreOptions) (*Server, error) {
	d, err := newDurableStore(o)
	if err != nil {
		return nil, err
	}
	return newServerWith(clock, captcha, d, d), nil
}

func newServerWith(clock *vtime.Clock, captcha CaptchaVerifier, st store, d *durableStore) *Server {
	if captcha == nil {
		captcha = DefaultCaptcha
	}
	s := &Server{
		clock:        clock,
		captcha:      captcha,
		store:        st,
		durable:      d,
		regByIP:      make(map[string][]time.Time),
		lastRegSweep: clock.Now(),
	}
	if d != nil {
		// Re-derive the term view from the recovered record stream. The node
		// restarts unfenced; if leadership moved on while it was down, the
		// replica controller's reconciliation will fence it.
		s.terms.term, s.terms.leader, s.terms.base = d.termState()
	}
	return s
}

// Close flushes and closes the durable backend (no-op for in-memory
// servers), returning any latched durability error.
func (s *Server) Close() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.close()
}

// ReplicationFeed returns the replication stream when the server was built
// with StoreOptions.Replicated, else nil.
func (s *Server) ReplicationFeed() *storage.Feed {
	if s.durable == nil {
		return nil
	}
	return s.durable.feed
}

// Apply replays one replicated record through the store. Followers call
// this for every record pulled from the primary; applying the primary's
// log in order converges the follower to the primary's exact state,
// including validator tags.
func (s *Server) Apply(rec *storage.Record) { applyRecord(s.store, rec) }

// Faults exposes the server's fault-injection policy (experiments flip it
// at runtime to model outages and flaky paths).
func (s *Server) Faults() *FaultPolicy { return &s.faults }

// Attach starts serving the API on host:port over plain HTTP.
func (s *Server) Attach(host *netem.Host, port int) error {
	l, err := host.Listen(port)
	if err != nil {
		return err
	}
	httpx.Serve(l, s.Handler())
	return nil
}

// Handler returns the API as an httpx.Handler so it can also be mounted
// behind pseudo-TLS or a fronting CDN (§5: blocking access to the
// global_DB is countered by moving it).
func (s *Server) Handler() httpx.Handler {
	return httpx.HandlerFunc(func(req *httpx.Request, flow netem.Flow) *httpx.Response {
		if resp, fired := s.faults.intercept(req); fired {
			return resp // nil = say nothing; the client times out
		}
		path := req.Target
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		switch {
		case req.Method == "POST" && path == PathRegister:
			return s.handleRegister(req, flow)
		case req.Method == "POST" && path == PathReport:
			return s.handleReport(req)
		case req.Method == "POST" && path == PathReplPush:
			return s.handleReplPush(req)
		case req.Method == "GET" && path == PathFetch:
			return s.handleFetch(req)
		case req.Method == "GET" && path == PathRepl:
			return s.handleRepl(req)
		case req.Method == "GET" && path == PathStats:
			return jsonResponse(200, s.StatsSnapshot())
		default:
			return httpx.NewResponse(404, []byte("unknown endpoint"))
		}
	})
}

func jsonResponse(code int, v any) *httpx.Response {
	b, err := json.Marshal(v)
	if err != nil {
		return httpx.NewResponse(500, []byte(err.Error()))
	}
	resp := httpx.NewResponse(code, b)
	resp.Header.Set("Content-Type", "application/json")
	return resp
}

func (s *Server) handleRegister(req *httpx.Request, flow netem.Flow) *httpx.Response {
	if s.Fenced() {
		return s.fencedResponse()
	}
	if !s.captcha(req.Header.Get(CaptchaHeader)) {
		return httpx.NewResponse(403, []byte("captcha failed"))
	}
	srcIP := flow.Src.IP
	now := s.clock.Now()
	s.mu.Lock()
	s.sweepRegLocked(now)
	// Rate-limit registrations per source IP (sliding hour). The IP is used
	// only for this in-memory counter and never stored with measurements.
	recent := s.regByIP[srcIP][:0]
	for _, t := range s.regByIP[srcIP] {
		if now.Sub(t) < time.Hour {
			recent = append(recent, t)
		}
	}
	if len(recent) >= RegistrationRateLimit {
		s.regByIP[srcIP] = recent
		s.mu.Unlock()
		return httpx.NewResponse(429, []byte("registration rate limit"))
	}
	s.regByIP[srcIP] = append(recent, now)

	// UUID: a cryptographic-hash-of-time identifier (§4.2). FNV suffices
	// for the simulation; the property used is uniqueness, not secrecy.
	s.uuidSeq++
	seq := s.uuidSeq
	s.mu.Unlock()

	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", now.UnixNano(), seq)
	uuid := fmt.Sprintf("%016x", h.Sum64())
	s.store.addUser(uuid)
	if s.strictUnavailable() {
		// Strict durability rejected the addUser: the UUID was never stored,
		// so acking it would hand the client a dead identity.
		return httpx.NewResponse(503, []byte("durability lost"))
	}
	return jsonResponse(200, RegisterResponse{UUID: uuid})
}

// regSweepInterval bounds how often the full regByIP map is pruned.
const regSweepInterval = time.Hour

// sweepRegLocked drops source IPs whose registration timestamps have all
// aged out of the sliding rate-limit window. Without it, an IP that
// registers once and never again would keep its map entry forever — at the
// paper's millions-of-users scale that is an unbounded leak. Amortized to
// one O(#IPs) pass per regSweepInterval. Caller holds s.mu.
func (s *Server) sweepRegLocked(now time.Time) {
	if now.Sub(s.lastRegSweep) < regSweepInterval {
		return
	}
	s.lastRegSweep = now
	for ip, times := range s.regByIP {
		live := false
		for _, t := range times {
			if now.Sub(t) < time.Hour {
				live = true
				break
			}
		}
		if !live {
			delete(s.regByIP, ip)
		}
	}
}

func (s *Server) handleReport(req *httpx.Request) *httpx.Response {
	if s.Fenced() {
		return s.fencedResponse()
	}
	var body ReportRequest
	if err := json.Unmarshal(req.Body, &body); err != nil {
		return httpx.NewResponse(400, []byte("bad json"))
	}
	accepted, ok := s.store.ingest(body.UUID, s.clock.Now(), body.Reports)
	if !ok {
		if s.strictUnavailable() {
			return httpx.NewResponse(503, []byte("durability lost"))
		}
		return httpx.NewResponse(403, []byte("unknown or revoked uuid"))
	}
	return jsonResponse(200, ReportResponse{Accepted: accepted})
}

// queryParam extracts one query parameter from a request target, or "".
func queryParam(target, key string) string {
	i := strings.Index(target, key+"=")
	if i < 0 {
		return ""
	}
	v := target[i+len(key)+1:]
	if j := strings.IndexByte(v, '&'); j >= 0 {
		v = v[:j]
	}
	return v
}

func (s *Server) handleFetch(req *httpx.Request) *httpx.Response {
	asn, _ := strconv.Atoi(queryParam(req.Target, "asn"))
	if asn == 0 {
		return httpx.NewResponse(400, []byte("missing asn"))
	}
	fr := s.store.fetchResponse(asn, req.Header.Get("If-None-Match"))
	if fr.notModified {
		resp := httpx.NewResponse(304, nil)
		resp.Header.Set("ETag", fr.tag)
		return resp
	}
	resp := httpx.NewResponse(200, fr.body)
	resp.Header.Set("Content-Type", "application/json")
	if fr.tag != "" {
		resp.Header.Set("ETag", fr.tag)
	}
	if fr.delta {
		resp.Header.Set(DeltaHeader, DeltaEncoding)
	}
	return resp
}

// replMaxBytes caps one replication pull's payload when the follower does
// not ask for a bound.
const replMaxBytes = 1 << 20

// handleRepl serves a replication pull: framed WAL records starting at
// from, at most max bytes (at least one record when any is available). The
// follower's previous offset doubles as its acknowledgement — pulling from
// N means everything below N was applied — so lag tracking needs no extra
// round trip.
func (s *Server) handleRepl(req *httpx.Request) *httpx.Response {
	feed := s.ReplicationFeed()
	if feed == nil {
		return httpx.NewResponse(404, []byte("replication not enabled"))
	}
	if s.Fenced() {
		// A fenced node's stream is a stale lineage; pulling from it would
		// fork the follower. Send the puller to the leader instead.
		return s.fencedResponse()
	}
	from, err := strconv.ParseUint(queryParam(req.Target, "from"), 10, 64)
	if err != nil {
		return httpx.NewResponse(400, []byte("bad from"))
	}
	maxBytes := replMaxBytes
	if m, err := strconv.Atoi(queryParam(req.Target, "max")); err == nil && m > 0 {
		maxBytes = m
	}
	if follower := queryParam(req.Target, "follower"); follower != "" {
		feed.Ack(follower, from)
	}
	data, next := feed.ReadFrom(from, maxBytes)
	term, leader, base := s.TermState()
	atTerm, atLeader := s.TermAt(from)
	resp := httpx.NewResponse(200, data)
	resp.Header.Set("Content-Type", "application/octet-stream")
	resp.Header.Set(ReplNextHeader, strconv.FormatUint(next, 10))
	resp.Header.Set(ReplHeadHeader, strconv.FormatUint(feed.Head(), 10))
	resp.Header.Set(TermHeader, strconv.FormatInt(term, 10))
	resp.Header.Set(LeaderHeader, leader)
	resp.Header.Set(ReplBaseHeader, strconv.FormatUint(base, 10))
	resp.Header.Set(ReplTermAtHeader, strconv.FormatInt(atTerm, 10))
	resp.Header.Set(ReplLeaderAtHeader, atLeader)
	return resp
}

// BlockedForAS aggregates the blocked-URL entries for an AS with voting
// statistics: s_jk = Σ 1/d_i over clients i reporting (j,k), n_jk = count.
// Served from a cached per-AS snapshot; see sharded.go.
func (s *Server) BlockedForAS(asn int) []Entry { return s.store.blockedForAS(asn) }

// Revoke invalidates a UUID (§5: revoking identified malicious users [54]).
func (s *Server) Revoke(uuid string) { s.store.revoke(uuid) }

// StatsSnapshot aggregates the Table-7 numbers from current state.
func (s *Server) StatsSnapshot() Stats { return s.store.stats() }

// SetDeltaHistory raises the per-AS delta edit-history cap above its
// default of 64. Population-scale drivers size it to the fleet so a
// client's tag from one sync round is still in the history a round later,
// keeping the converging phase on the delta path instead of full fetches.
func (s *Server) SetDeltaHistory(n int) {
	if t, ok := s.store.(interface{ setDeltaHistory(int) }); ok {
		t.setDeltaHistory(n)
	}
}

// primaryClass maps stage lists to the Table-7 reporting classes. DNS
// evidence anywhere in the stages classifies the URL as DNS blocking —
// a block page reached through a DNS redirect is still DNS censorship.
func primaryClass(stages []WireStage) string {
	if len(stages) == 0 {
		return "unknown"
	}
	for _, s := range stages {
		if localdb.BlockType(s.Type) == localdb.BlockDNS {
			return "dns"
		}
	}
	first := localdb.BlockType(stages[0].Type)
	switch first {
	case localdb.BlockDNS:
		return "dns"
	case localdb.BlockTCPTimeout, localdb.BlockIP:
		return "tcp-timeout"
	case localdb.BlockHTTP:
		switch stages[0].Detail {
		case "blockpage", "blockpage-redirect":
			return "blockpage"
		case "rst":
			return "rst"
		default:
			return "http-no-response"
		}
	case localdb.BlockSNI:
		return "sni"
	default:
		return first.String()
	}
}
