package globaldb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"csaw/internal/vtime"
)

// walWorkload feeds a deterministic report history into a store: users
// registering, reporting over several virtual minutes, one lost-ack
// re-post, one revocation.
func walWorkload(t *testing.T, s store, users, rounds int) {
	t.Helper()
	for u := 0; u < users; u++ {
		s.addUser(fmt.Sprintf("user-%03d", u))
	}
	for r := 0; r < rounds; r++ {
		now := utc.Add(time.Duration(r) * time.Minute)
		for u := 0; u < users; u++ {
			batch := []Report{
				{URL: fmt.Sprintf("site%d.example/", (u+r)%7), ASN: 100 + u%3,
					Stages: []WireStage{{Type: 1, Detail: "nxdomain"}}, Tm: now},
				{URL: fmt.Sprintf("deep%d.example/x", r%5), ASN: 100 + r%3,
					Stages: []WireStage{{Type: 2, Detail: "rst"}}, Tm: now},
			}
			if _, ok := s.ingest(fmt.Sprintf("user-%03d", u), now, batch); !ok {
				t.Fatalf("ingest rejected for user %d round %d", u, r)
			}
			if r == rounds/2 {
				// Lost ack: the client retries the identical batch.
				s.ingest(fmt.Sprintf("user-%03d", u), now.Add(time.Second), batch)
			}
		}
	}
	s.revoke("user-001")
}

// observeStore captures everything a client can see: per-AS bodies, tags,
// and stats.
func observeStore(t *testing.T, s store) string {
	t.Helper()
	var out bytes.Buffer
	for asn := 100; asn <= 103; asn++ {
		fr := s.fetchResponse(asn, "")
		fmt.Fprintf(&out, "asn %d tag %q body %s\n", asn, fr.tag, fr.body)
	}
	fmt.Fprintf(&out, "stats %+v\n", s.stats())
	return out.String()
}

// TestWALKillAndRestart is the tentpole durability pin: kill the store (no
// graceful shutdown beyond Close), reopen the same directory, and every
// /v1/blocked body and validator tag must be byte-identical — including
// the serialized virtual-time instants inside the entries.
func TestWALKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	walWorkload(t, d, 6, 5)
	before := observeStore(t, d)
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	d2, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d2.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if d2.recovered == 0 {
		t.Fatal("restart replayed no log records")
	}
	after := observeStore(t, d2)
	if before != after {
		t.Fatalf("state diverged across restart:\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// The restarted store keeps working: new reports land and bump tags.
	d2.addUser("late")
	if _, ok := d2.ingest("late", utc.Add(time.Hour), []Report{{URL: "late.example/", ASN: 100, Tm: utc}}); !ok {
		t.Fatal("post-restart ingest rejected")
	}
	fr := d2.fetchResponse(100, "")
	if !bytes.Contains(fr.body, []byte("late.example/")) {
		t.Fatal("post-restart report not served")
	}
}

// TestWALRestartMatchesUninterrupted splits the workload across a restart
// and requires the final state to be byte-identical to a store that never
// restarted — recovery composes with live writes, not just with a quiesced
// log.
func TestWALRestartMatchesUninterrupted(t *testing.T) {
	for _, snapshotEvery := range []int{-1, 7} {
		t.Run(fmt.Sprintf("snapshotEvery=%d", snapshotEvery), func(t *testing.T) {
			dir := t.TempDir()
			d, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: snapshotEvery})
			if err != nil {
				t.Fatal(err)
			}
			walWorkload(t, d, 4, 3) // first half
			if err := d.close(); err != nil {
				t.Fatal(err)
			}
			d2, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: snapshotEvery})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := d2.close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			secondHalf(t, d2)

			ref, err := newDurableStore(StoreOptions{}) // in-memory reference
			if err != nil {
				t.Fatal(err)
			}
			walWorkload(t, ref, 4, 3)
			secondHalf(t, ref)

			got, want := observeStore(t, d2), observeStore(t, ref)
			if got != want {
				t.Fatalf("restarted store diverges from uninterrupted reference:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if snapshotEvery > 0 {
				if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
					t.Fatalf("compaction never wrote a snapshot: %v", err)
				}
			}
		})
	}
}

func secondHalf(t *testing.T, s store) {
	t.Helper()
	now := utc.Add(time.Hour)
	s.addUser("resumed")
	if _, ok := s.ingest("resumed", now, []Report{
		{URL: "fresh.example/", ASN: 101, Stages: []WireStage{{Type: 3, Detail: "blockpage"}}, Tm: now},
	}); !ok {
		t.Fatal("second-half ingest rejected")
	}
	if _, ok := s.ingest("user-000", now.Add(time.Minute), []Report{
		{URL: "site0.example/", ASN: 100, Stages: []WireStage{{Type: 1, Detail: "nxdomain"}}, Tm: now},
	}); !ok {
		t.Fatal("second-half re-report rejected")
	}
	s.revoke("user-002")
}

// TestWALCompactionBoundsRecovery pins that compaction truncates the log:
// after enough writes, reopening replays only the records since the last
// snapshot, not the whole history.
func TestWALCompactionBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	walWorkload(t, d, 6, 6) // 6 addUser + 6*6 ingests + re-posts + revoke >> 10
	before := observeStore(t, d)
	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	d2, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d2.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if d2.recovered >= 10 {
		t.Fatalf("recovered %d log records despite SnapshotEvery=10", d2.recovered)
	}
	if after := observeStore(t, d2); after != before {
		t.Fatalf("compacted restart diverged:\n--- got ---\n%s--- want ---\n%s", after, before)
	}
}

// TestWALTornTailRecovery damages the log's tail (the signature of a crash
// mid-append) and requires recovery to keep every whole record, drop the
// torn one, and accept new writes.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	walWorkload(t, d, 3, 2)
	intact := observeStore(t, d)
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, walFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-record: drop the last 3 bytes, then append frame-header noise.
	torn := append(append([]byte(nil), b[:len(b)-3]...), 0xff, 0x00)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("torn tail must not abort recovery: %v", err)
	}
	defer func() {
		if err := d2.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	// The torn record was the revocation of user-001 (last record written).
	// Everything before it must be intact; the store still accepts writes.
	recovered := observeStore(t, d2)
	if recovered == intact {
		t.Fatal("observations identical despite a dropped tail record")
	}
	d2.revoke("user-001")
	if got := observeStore(t, d2); got != intact {
		t.Fatalf("re-applying the lost mutation did not converge:\n--- got ---\n%s--- want ---\n%s", got, intact)
	}
	if err := d2.Err(); err != nil {
		t.Fatalf("durability degraded after torn-tail recovery: %v", err)
	}
}

// TestDurableServerRestart exercises the same guarantee at the Server
// level, via NewDurableServer.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	clock := vtime.New(1000)
	srv, err := NewDurableServer(clock, nil, StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv.store.addUser("u")
	if _, ok := srv.store.ingest("u", clock.Now(), []Report{
		{URL: "a.example/", ASN: 55, Stages: []WireStage{{Type: 1, Detail: "nx"}}, Tm: clock.Now()},
	}); !ok {
		t.Fatal("ingest rejected")
	}
	before := srv.store.fetchResponse(55, "")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewDurableServer(clock, nil, StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	after := srv2.store.fetchResponse(55, "")
	if !bytes.Equal(before.body, after.body) || before.tag != after.tag {
		t.Fatalf("server restart: body/tag mismatch: %q/%q vs %q/%q",
			before.body, before.tag, after.body, after.tag)
	}
	// A conditional fetch with the pre-restart tag still hits.
	if fr := srv2.store.fetchResponse(55, before.tag); !fr.notModified {
		t.Fatalf("pre-restart tag %q not honored after recovery", before.tag)
	}
}
