package globaldb

import (
	"encoding/json"
	"strconv"
	"sync"
	"time"
)

// legacyStore is the original single-mutex store: every register, report and
// fetch serializes behind one lock, and every fetch re-aggregates and re-sorts
// the whole client table. It is retained verbatim as the before side of the
// fleet before/after benchmark (BenchmarkSyncRound* in bench_test.go); the
// server itself now runs shardedStore.
type legacyStore struct {
	mu      sync.Mutex
	clients map[string]map[string]*clientReport // uuid → "url|asn" → report
	users   map[string]bool
	revoked map[string]bool
	updates int
}

func newLegacyStore() *legacyStore {
	return &legacyStore{
		clients: make(map[string]map[string]*clientReport),
		users:   make(map[string]bool),
		revoked: make(map[string]bool),
	}
}

func (s *legacyStore) addUser(uuid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[uuid] = true
}

func (s *legacyStore) ingest(uuid string, now time.Time, reports []Report) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.users[uuid] || s.revoked[uuid] {
		return 0, false
	}
	m := s.clients[uuid]
	if m == nil {
		m = make(map[string]*clientReport)
		s.clients[uuid] = m
	}
	accepted := 0
	for _, r := range reports {
		if r.URL == "" || r.ASN == 0 {
			continue
		}
		key := r.URL + "|" + strconv.Itoa(r.ASN)
		if _, seen := m[key]; !seen {
			s.updates++
		}
		m[key] = &clientReport{url: r.URL, asn: r.ASN, stages: r.Stages, tm: r.Tm, tp: now}
		accepted++
	}
	return accepted, true
}

// blockedForAS aggregates the blocked-URL entries for an AS with voting
// statistics: s_jk = Σ 1/d_i over clients i reporting (j,k), n_jk = count.
// This is the O(total reports) + sort-per-call path the sharded store's
// snapshot cache replaces.
func (s *legacyStore) blockedForAS(asn int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := make(map[string]*Entry)
	for uuid, reports := range s.clients {
		if s.revoked[uuid] {
			continue
		}
		d := len(reports)
		if d == 0 {
			continue
		}
		vote := 1.0 / float64(d)
		for _, r := range reports {
			if r.asn != asn {
				continue
			}
			e := agg[r.url]
			if e == nil {
				e = &Entry{URL: r.url, ASN: asn, Stages: r.stages}
				agg[r.url] = e
			}
			e.Votes += vote
			e.Reporters++
			if r.tp.After(e.LastTp) {
				e.LastTp = r.tp
				e.Stages = r.stages
			}
		}
	}
	out := make([]Entry, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sortEntries(out)
	return out
}

// fetchResponse re-marshals on every call and has no cheap change detector,
// so it never offers a validator tag: the result carries tag "" and the
// full body, regardless of the caller's If-None-Match value. The inm
// parameter is deliberately ignored rather than compared — a client that
// cached a non-empty tag from a previous (sharded) store must get a fresh
// full body here, never a spurious 304 that would freeze its list across a
// store swap or a failover to a tagless backend.
func (s *legacyStore) fetchResponse(asn int, _ string) fetchResult {
	b, err := json.Marshal(FetchResponse{ASN: asn, Entries: s.blockedForAS(asn)})
	if err != nil {
		return fetchResult{body: []byte("{}")}
	}
	return fetchResult{body: b}
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].URL < es[j-1].URL; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func (s *legacyStore) revoke(uuid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[uuid] = true
}

func (s *legacyStore) stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Users: len(s.users), ByType: make(map[string]int)}
	urls := make(map[string]bool)
	domains := make(map[string]bool)
	ases := make(map[int]bool)
	types := make(map[string]bool)
	urlType := make(map[string]string)
	for uuid, reports := range s.clients {
		if s.revoked[uuid] {
			continue
		}
		for _, r := range reports {
			statsFold(r, urls, domains, ases, types, urlType)
		}
	}
	for _, cls := range urlType {
		st.ByType[cls]++
	}
	st.BlockedURLs = len(urls)
	st.BlockedDomains = len(domains)
	st.ASes = len(ases)
	st.BlockTypes = len(types)
	st.Updates = s.updates
	return st
}
