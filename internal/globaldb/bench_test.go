package globaldb

import (
	"fmt"
	"testing"
	"time"
)

// benchStore pre-populates a store with the fleet steady state: nClients
// registered clients spread over nASes ASes, each holding perClient reports.
func benchStore(s store, nClients, nASes, perClient int) {
	base := time.Unix(1_000_000_000, 0)
	for c := 0; c < nClients; c++ {
		uuid := fmt.Sprintf("client-%05d", c)
		s.addUser(uuid)
		asn := 100 + c%nASes
		batch := make([]Report, perClient)
		for r := range batch {
			batch[r] = Report{
				URL:    fmt.Sprintf("site%d-%d.example/", c%50, r),
				ASN:    asn,
				Stages: []WireStage{{Type: 1, Detail: "nxdomain"}},
				Tm:     base,
			}
		}
		if _, ok := s.ingest(uuid, base, batch); !ok {
			panic("bench setup: ingest rejected")
		}
	}
}

// The sync-round before/after pair (legacy vs sharded under the realistic
// post/fetch mix) lives in internal/fleet's BenchmarkFleetSyncRound* — the
// BENCH_fleet.json trajectory — via the exported BenchStore surface.

// benchIngest measures the pure report-ingest path (no fetches): the sharded
// store must not regress on plain writes.
func benchIngest(b *testing.B, s store) {
	const nClients = 2000
	benchStore(s, nClients, 16, 1)
	base := time.Unix(2_000_000_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % nClients
		uuid := fmt.Sprintf("client-%05d", c)
		if _, ok := s.ingest(uuid, base, []Report{{
			URL: fmt.Sprintf("fresh-%d.example/", i), ASN: 100 + c%16, Tm: base,
		}}); !ok {
			b.Fatal("ingest rejected")
		}
	}
}

func BenchmarkIngestLegacy(b *testing.B)  { benchIngest(b, newLegacyStore()) }
func BenchmarkIngestSharded(b *testing.B) { benchIngest(b, newShardedStore()) }
