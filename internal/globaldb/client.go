package globaldb

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// Client talks to the global DB. Its dialer decides the path: C-Saw sends
// censorship reports over Tor so a snooping censor cannot identify
// contributors (§5 "User privacy and resilience to detection"), while
// list fetches may use any reachable path.
//
// The DB may be deployed as a replica set (§5: blocking access to the
// global_DB is countered by moving it — here, by having more than one).
// Replicas lists the endpoints in preference order; every API call tries
// the first healthy one and fails over on transport errors (timeouts,
// resets, refused connections — the signature of a censor blackholing the
// primary's IP). An HTTP error status is a server answer, not
// unreachability, and never triggers failover. Failed endpoints are
// retried after ReplicaCooldown.
type Client struct {
	Addr string // server "ip:port" (or "host:port" for hostname-capable dialers)
	// Replicas is the replica set in preference order. Empty means Addr is
	// the only endpoint. When non-empty it replaces Addr entirely (list
	// Addr first to keep it primary).
	Replicas []string
	Host     string // Host header value
	Clock    *vtime.Clock
	// ReportDial carries report traffic (Tor in the paper's deployment);
	// FetchDial carries registration and list downloads.
	ReportDial netem.DialFunc
	FetchDial  netem.DialFunc
	// Timeout bounds each API call (virtual); default 30s.
	Timeout time.Duration
	// ReplicaCooldown is how long a failed endpoint sits out before being
	// retried (virtual); default 5m.
	ReplicaCooldown time.Duration
	// Trace, when set, records a span per failed-over API call on the
	// "repl" lane.
	Trace *trace.Tracer

	mu         sync.Mutex
	uuid       string
	blocked    map[int]*blockedCache // per-AS conditional-fetch cache
	down       map[string]time.Time  // endpoint → retry-at (virtual)
	lastServed string
	seq        uint64
	stats      ClientStats
}

// ClientStats counts the client's sync-path outcomes.
type ClientStats struct {
	FetchFull    int // 200 full-body list fetches
	FetchDelta   int // 200 delta-encoded list fetches
	Fetch304     int // 304 not-modified answers
	ListBytes    int // list bytes received (full + delta bodies)
	Failovers    int // API calls served by a non-first-preference endpoint
	ReplicaDown  int // healthy→down endpoint transitions observed
	LeaderChases int // fenced (421) answers whose leader hint was followed
}

// blockedCache is one AS's last successfully fetched list plus the server's
// validator tag for it. The entries slice is shared with FetchBlocked's
// return value and must be treated as read-only.
type blockedCache struct {
	tag     string
	entries []Entry
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c *Client) cooldown() time.Duration {
	if c.ReplicaCooldown > 0 {
		return c.ReplicaCooldown
	}
	return 5 * time.Minute
}

// UUID returns the registered identity, or "".
func (c *Client) UUID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.uuid
}

// SetUUID restores a previously assigned identity.
func (c *Client) SetUUID(u string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.uuid = u
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// LastServed returns the endpoint that answered the most recent successful
// call, or "".
func (c *Client) LastServed() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastServed
}

func (c *Client) endpoints() []string {
	if len(c.Replicas) > 0 {
		return c.Replicas
	}
	return []string{c.Addr}
}

// attemptOrder returns the endpoints to try: healthy ones first in
// preference order, then cooling-down ones (soonest retry first) as a last
// resort — a client never refuses to try just because everything recently
// failed.
func (c *Client) attemptOrder(eps []string) []string {
	now := c.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	healthy := make([]string, 0, len(eps))
	var cooling []string
	for _, ep := range eps {
		if until, bad := c.down[ep]; bad && now.Before(until) {
			cooling = append(cooling, ep)
		} else {
			healthy = append(healthy, ep)
		}
	}
	return append(healthy, cooling...)
}

func (c *Client) markDown(ep string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down == nil {
		c.down = make(map[string]time.Time)
	}
	if until, bad := c.down[ep]; !bad || c.Clock.Now().After(until) {
		c.stats.ReplicaDown++
	}
	c.down[ep] = c.Clock.Now().Add(c.cooldown())
}

func (c *Client) noteServed(ep string, failedOver bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.down, ep)
	c.lastServed = ep
	if failedOver {
		c.stats.Failovers++
	}
}

func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// maxLeaderChase bounds how many fencing hints one call follows: two hops
// cover a hint that itself lands on a freshly demoted node.
const maxLeaderChase = 2

// chaseLeader follows fencing rejections to the hinted leader, at most
// maxLeaderChase hops. It returns the final answer and the endpoint that
// produced it; a hop that fails at the transport layer keeps the previous
// (fenced) answer so the caller's failover logic sees an HTTP status, not a
// phantom outage.
func (c *Client) chaseLeader(ctx context.Context, hc *httpx.Client, ep string, req *httpx.Request,
	resp *httpx.Response, sp *trace.Span) (*httpx.Response, string) {
	for hop := 0; hop < maxLeaderChase && resp.StatusCode == StatusFenced; hop++ {
		hint := resp.Header.Get(LeaderHeader)
		if hint == "" || hint == ep {
			break
		}
		if sp != nil {
			sp.Event("repl", "chase", hint)
		}
		next, err := hc.Do(ctx, hint, req)
		if err != nil {
			break
		}
		c.mu.Lock()
		c.stats.LeaderChases++
		c.mu.Unlock()
		resp, ep = next, hint
	}
	return resp, ep
}

func (c *Client) do(ctx context.Context, dial netem.DialFunc, req *httpx.Request) (*httpx.Response, error) {
	hc := &httpx.Client{Dial: dial, Clock: c.Clock, Timeout: c.timeout()}
	eps := c.endpoints()
	if len(eps) == 1 {
		resp, err := hc.Do(ctx, eps[0], req)
		if err == nil {
			resp, _ = c.chaseLeader(ctx, hc, eps[0], req, resp, nil)
			c.noteServed(eps[0], false)
		}
		return resp, err
	}
	var sp *trace.Span
	if c.Trace != nil {
		sp = c.Trace.Start("globaldb", c.nextSeq(), req.Target)
	}
	var lastErr error
	for _, ep := range c.attemptOrder(eps) {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if sp != nil {
			sp.Event("repl", "attempt", ep)
		}
		resp, err := hc.Do(ctx, ep, req)
		if err == nil {
			resp, servedBy := c.chaseLeader(ctx, hc, ep, req, resp, sp)
			c.noteServed(servedBy, servedBy != eps[0])
			if sp != nil {
				sp.Event("repl", "served", servedBy)
				sp.Finish("globaldb", "ok", nil)
			}
			return resp, nil
		}
		lastErr = err
		c.markDown(ep)
		if sp != nil {
			sp.Event("repl", "down", ep)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("globaldb: no endpoints")
	}
	if sp != nil {
		sp.Finish("globaldb", "error", lastErr)
	}
	return nil, lastErr
}

// Register solves the CAPTCHA (the token models the user's solution) and
// obtains a UUID.
func (c *Client) Register(ctx context.Context, captchaToken string) error {
	req := httpx.NewRequest("POST", c.Host, PathRegister)
	req.Header.Set(CaptchaHeader, captchaToken)
	resp, err := c.do(ctx, c.FetchDial, req)
	if err != nil {
		return fmt.Errorf("globaldb: register: %w", err)
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("globaldb: register: %d %s", resp.StatusCode, resp.Body)
	}
	var rr RegisterResponse
	if err := json.Unmarshal(resp.Body, &rr); err != nil {
		return fmt.Errorf("globaldb: register: %w", err)
	}
	c.SetUUID(rr.UUID)
	return nil
}

// Report posts blocked-URL records (over the report path) and returns how
// many the server accepted.
func (c *Client) Report(ctx context.Context, recs []localdb.Record) (int, error) {
	uuid := c.UUID()
	if uuid == "" {
		return 0, fmt.Errorf("globaldb: not registered")
	}
	body := ReportRequest{UUID: uuid}
	for _, r := range recs {
		if r.Status != localdb.Blocked {
			continue // only blocked URLs are ever reported (§3)
		}
		body.Reports = append(body.Reports, Report{
			URL: r.URL, ASN: r.ASN, Stages: ToWire(r.Stages), Tm: r.Measured,
		})
	}
	if len(body.Reports) == 0 {
		return 0, nil
	}
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req := httpx.NewRequest("POST", c.Host, PathReport)
	req.Header.Set("Content-Type", "application/json")
	req.Body = b
	resp, err := c.do(ctx, c.ReportDial, req)
	if err != nil {
		return 0, fmt.Errorf("globaldb: report: %w", err)
	}
	if resp.StatusCode != 200 {
		return 0, fmt.Errorf("globaldb: report: %d %s", resp.StatusCode, resp.Body)
	}
	var rr ReportResponse
	if err := json.Unmarshal(resp.Body, &rr); err != nil {
		return 0, err
	}
	return rr.Accepted, nil
}

// FetchBlocked downloads the blocked-URL list for an AS. Fetches are
// conditional: the client remembers the server's validator tag per AS and
// sends it as If-None-Match. A 304 answer reuses the cached entries; a
// delta-encoded 200 (DeltaHeader set) carries only the entries changed
// since the cached tag and is merged locally; a plain 200 replaces the
// cache — including downgrading the cached tag to "" when the serving
// store offers none (a failover to a tagless backend must not leave a
// stale tag that a later tagged backend could spuriously match).
// The returned slice may be shared with the cache: callers must not
// mutate it or the Stages slices inside.
func (c *Client) FetchBlocked(ctx context.Context, asn int) ([]Entry, error) {
	c.mu.Lock()
	cached := c.blocked[asn]
	c.mu.Unlock()
	req := httpx.NewRequest("GET", c.Host, fmt.Sprintf("%s?asn=%d", PathFetch, asn))
	if cached != nil && cached.tag != "" {
		req.Header.Set("If-None-Match", cached.tag)
	}
	resp, err := c.do(ctx, c.FetchDial, req)
	if err != nil {
		return nil, fmt.Errorf("globaldb: fetch: %w", err)
	}
	if resp.StatusCode == 304 && cached != nil {
		c.mu.Lock()
		c.stats.Fetch304++
		c.mu.Unlock()
		return cached.entries, nil
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("globaldb: fetch: %d %s", resp.StatusCode, resp.Body)
	}
	tag := resp.Header.Get("ETag")
	if resp.Header.Get(DeltaHeader) == DeltaEncoding {
		if cached == nil {
			return nil, fmt.Errorf("globaldb: delta response without a cached base")
		}
		var dr DeltaResponse
		if err := json.Unmarshal(resp.Body, &dr); err != nil {
			return nil, err
		}
		if dr.Since != cached.tag {
			return nil, fmt.Errorf("globaldb: delta base %q, cached %q", dr.Since, cached.tag)
		}
		entries := mergeDelta(cached.entries, dr.Changed, dr.Removed)
		c.storeList(asn, tag, entries, len(resp.Body), true)
		return entries, nil
	}
	var fr FetchResponse
	if err := json.Unmarshal(resp.Body, &fr); err != nil {
		return nil, err
	}
	c.storeList(asn, tag, fr.Entries, len(resp.Body), false)
	return fr.Entries, nil
}

// storeList replaces an AS's cache after a 200 answer. The cache always
// tracks the last answer — tag "" included — so a tag from one backend can
// never be replayed against another that has moved past it.
func (c *Client) storeList(asn int, tag string, entries []Entry, bodyLen int, delta bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blocked == nil {
		c.blocked = make(map[int]*blockedCache)
	}
	c.blocked[asn] = &blockedCache{tag: tag, entries: entries}
	c.stats.ListBytes += bodyLen
	if delta {
		c.stats.FetchDelta++
	} else {
		c.stats.FetchFull++
	}
}

// FetchStats downloads the server's aggregate statistics.
func (c *Client) FetchStats(ctx context.Context) (Stats, error) {
	req := httpx.NewRequest("GET", c.Host, PathStats)
	resp, err := c.do(ctx, c.FetchDial, req)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
