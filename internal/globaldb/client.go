package globaldb

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// Client talks to the global DB. Its dialer decides the path: C-Saw sends
// censorship reports over Tor so a snooping censor cannot identify
// contributors (§5 "User privacy and resilience to detection"), while
// list fetches may use any reachable path.
type Client struct {
	Addr  string // server "ip:port" (or "host:port" for hostname-capable dialers)
	Host  string // Host header value
	Clock *vtime.Clock
	// ReportDial carries report traffic (Tor in the paper's deployment);
	// FetchDial carries registration and list downloads.
	ReportDial netem.DialFunc
	FetchDial  netem.DialFunc
	// Timeout bounds each API call (virtual); default 30s.
	Timeout time.Duration

	mu      sync.Mutex
	uuid    string
	blocked map[int]*blockedCache // per-AS conditional-fetch cache
}

// blockedCache is one AS's last successfully fetched list plus the server's
// validator tag for it. The entries slice is shared with FetchBlocked's
// return value and must be treated as read-only.
type blockedCache struct {
	tag     string
	entries []Entry
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

// UUID returns the registered identity, or "".
func (c *Client) UUID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.uuid
}

// SetUUID restores a previously assigned identity.
func (c *Client) SetUUID(u string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.uuid = u
}

func (c *Client) do(ctx context.Context, dial netem.DialFunc, req *httpx.Request) (*httpx.Response, error) {
	hc := &httpx.Client{Dial: dial, Clock: c.Clock, Timeout: c.timeout()}
	return hc.Do(ctx, c.Addr, req)
}

// Register solves the CAPTCHA (the token models the user's solution) and
// obtains a UUID.
func (c *Client) Register(ctx context.Context, captchaToken string) error {
	req := httpx.NewRequest("POST", c.Host, PathRegister)
	req.Header.Set(CaptchaHeader, captchaToken)
	resp, err := c.do(ctx, c.FetchDial, req)
	if err != nil {
		return fmt.Errorf("globaldb: register: %w", err)
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("globaldb: register: %d %s", resp.StatusCode, resp.Body)
	}
	var rr RegisterResponse
	if err := json.Unmarshal(resp.Body, &rr); err != nil {
		return fmt.Errorf("globaldb: register: %w", err)
	}
	c.SetUUID(rr.UUID)
	return nil
}

// Report posts blocked-URL records (over the report path) and returns how
// many the server accepted.
func (c *Client) Report(ctx context.Context, recs []localdb.Record) (int, error) {
	uuid := c.UUID()
	if uuid == "" {
		return 0, fmt.Errorf("globaldb: not registered")
	}
	body := ReportRequest{UUID: uuid}
	for _, r := range recs {
		if r.Status != localdb.Blocked {
			continue // only blocked URLs are ever reported (§3)
		}
		body.Reports = append(body.Reports, Report{
			URL: r.URL, ASN: r.ASN, Stages: ToWire(r.Stages), Tm: r.Measured,
		})
	}
	if len(body.Reports) == 0 {
		return 0, nil
	}
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req := httpx.NewRequest("POST", c.Host, PathReport)
	req.Header.Set("Content-Type", "application/json")
	req.Body = b
	resp, err := c.do(ctx, c.ReportDial, req)
	if err != nil {
		return 0, fmt.Errorf("globaldb: report: %w", err)
	}
	if resp.StatusCode != 200 {
		return 0, fmt.Errorf("globaldb: report: %d %s", resp.StatusCode, resp.Body)
	}
	var rr ReportResponse
	if err := json.Unmarshal(resp.Body, &rr); err != nil {
		return 0, err
	}
	return rr.Accepted, nil
}

// FetchBlocked downloads the blocked-URL list for an AS. Fetches are
// conditional: the client remembers the server's validator tag per AS and
// sends it as If-None-Match, and a 304 answer reuses the cached entries
// without transferring or re-decoding the list — at fleet scale most sync
// rounds hit a converged list, and the decode is the dominant sync cost.
// The returned slice may be shared with that cache: callers must not
// mutate it or the Stages slices inside.
func (c *Client) FetchBlocked(ctx context.Context, asn int) ([]Entry, error) {
	c.mu.Lock()
	cached := c.blocked[asn]
	c.mu.Unlock()
	req := httpx.NewRequest("GET", c.Host, fmt.Sprintf("%s?asn=%d", PathFetch, asn))
	if cached != nil {
		req.Header.Set("If-None-Match", cached.tag)
	}
	resp, err := c.do(ctx, c.FetchDial, req)
	if err != nil {
		return nil, fmt.Errorf("globaldb: fetch: %w", err)
	}
	if resp.StatusCode == 304 && cached != nil {
		return cached.entries, nil
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("globaldb: fetch: %d %s", resp.StatusCode, resp.Body)
	}
	var fr FetchResponse
	if err := json.Unmarshal(resp.Body, &fr); err != nil {
		return nil, err
	}
	if tag := resp.Header.Get("ETag"); tag != "" {
		c.mu.Lock()
		if c.blocked == nil {
			c.blocked = make(map[int]*blockedCache)
		}
		c.blocked[asn] = &blockedCache{tag: tag, entries: fr.Entries}
		c.mu.Unlock()
	}
	return fr.Entries, nil
}

// FetchStats downloads the server's aggregate statistics.
func (c *Client) FetchStats(ctx context.Context) (Stats, error) {
	req := httpx.NewRequest("GET", c.Host, PathStats)
	resp, err := c.do(ctx, c.FetchDial, req)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
