package globaldb

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

func TestDiffEntries(t *testing.T) {
	e := func(url string, n int) Entry { return Entry{URL: url, ASN: 1, Reporters: n} }
	old := []Entry{e("a/", 1), e("b/", 1), e("c/", 1)}
	new := []Entry{e("a/", 1), e("b/", 2), e("d/", 1)}
	changed, removed := diffEntries(old, new)
	if !reflect.DeepEqual(changed, []Entry{e("b/", 2), e("d/", 1)}) {
		t.Fatalf("changed = %+v", changed)
	}
	if !reflect.DeepEqual(removed, []string{"c/"}) {
		t.Fatalf("removed = %+v", removed)
	}
	if c, r := diffEntries(old, old); c != nil || r != nil {
		t.Fatalf("self diff: %+v %+v", c, r)
	}
}

func TestMergeDeltaReconstructsFullList(t *testing.T) {
	e := func(url string, n int) Entry { return Entry{URL: url, ASN: 1, Reporters: n} }
	base := []Entry{e("a/", 1), e("b/", 1), e("c/", 1)}
	got := mergeDelta(base, []Entry{e("b/", 2), e("d/", 1)}, []string{"c/"})
	want := []Entry{e("a/", 1), e("b/", 2), e("d/", 1)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	// Base must be untouched and the result freshly allocated.
	if !reflect.DeepEqual(base, []Entry{e("a/", 1), e("b/", 1), e("c/", 1)}) {
		t.Fatal("mergeDelta mutated its base")
	}
	if got := mergeDelta(nil, []Entry{e("x/", 1)}, nil); len(got) != 1 {
		t.Fatalf("merge into empty base: %+v", got)
	}
}

// TestShardedDeltaServing pins the store-level delta contract: a stale tag
// still in the edit history gets a DeltaResponse whose application to the
// cached entries reproduces the current full list exactly; unknown tags
// fall back to the full body.
func TestShardedDeltaServing(t *testing.T) {
	s := newShardedStore()
	s.addUser("u1")
	s.addUser("u2")
	s.addUser("u3")
	stage := []WireStage{{Type: 1, Detail: "nxdomain"}}
	// A wide baseline from u1 in one batch: u1's per-client d never changes
	// again, so these entries' votes stay fixed and only genuine drift lands
	// in the edit history. (A lone reporter adding URLs one at a time would
	// change its d — and with it every entry's vote — making each "delta" as
	// large as the full list; the size guard then rightly serves full bodies.)
	base := make([]Report, 0, 10)
	for i := 0; i < 10; i++ {
		base = append(base, Report{URL: fmt.Sprintf("base%02d.example/", i), ASN: 100, Stages: stage, Tm: utc})
	}
	if _, ok := s.ingest("u1", utc, base); !ok {
		t.Fatal("ingest rejected")
	}
	first := s.fetchResponse(100, "")
	if first.delta || first.tag == "" {
		t.Fatalf("first fetch: %+v", first)
	}
	var firstList FetchResponse
	if err := json.Unmarshal(first.body, &firstList); err != nil {
		t.Fatal(err)
	}

	// Drift across two observed snapshots: u2 adds an entry (observed), then
	// u3 adds another while u2's entry is revoked away. The delta from
	// first.tag must fold both edits: u2's URL appears only in removed,
	// u3's only in changed.
	s.ingest("u2", utc.Add(time.Minute), []Report{{URL: "added-u2.example/", ASN: 100, Stages: stage, Tm: utc}})
	if mid := s.fetchResponse(100, ""); mid.tag == first.tag {
		t.Fatal("tag did not move after u2's report")
	}
	s.ingest("u3", utc.Add(2*time.Minute), []Report{{URL: "added-u3.example/", ASN: 100, Stages: stage, Tm: utc}})
	s.revoke("u2")

	cur := s.fetchResponse(100, "")
	if cur.tag == first.tag {
		t.Fatal("tag did not move")
	}
	var full FetchResponse
	if err := json.Unmarshal(cur.body, &full); err != nil {
		t.Fatal(err)
	}

	res := s.fetchResponse(100, first.tag)
	if !res.delta {
		t.Fatalf("stale in-history tag %q not served a delta: %+v", first.tag, res)
	}
	if res.tag != cur.tag {
		t.Fatalf("delta tag %q != current %q", res.tag, cur.tag)
	}
	if len(res.body) >= len(cur.body) {
		t.Fatalf("delta body %dB not smaller than full %dB", len(res.body), len(cur.body))
	}
	var dr DeltaResponse
	if err := json.Unmarshal(res.body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Since != first.tag || dr.ASN != 100 {
		t.Fatalf("delta envelope: %+v", dr)
	}
	merged := mergeDelta(firstList.Entries, dr.Changed, dr.Removed)
	if !entriesEqual(merged, full.Entries) {
		t.Fatalf("delta merge diverges from full list:\n got %+v\nwant %+v", merged, full.Entries)
	}
	if len(dr.Removed) != 1 || dr.Removed[0] != "added-u2.example/" {
		t.Fatalf("delta removed = %v, want the revoked u2 URL", dr.Removed)
	}
	if len(dr.Changed) != 1 || dr.Changed[0].URL != "added-u3.example/" {
		t.Fatalf("delta changed = %+v, want only u3's addition", dr.Changed)
	}

	// Unknown tag (e.g. from before this store's history): full body.
	if res := s.fetchResponse(100, "999.0"); res.delta || res.notModified {
		t.Fatalf("unknown tag answered %+v", res)
	}
	// Current tag: 304, not a delta.
	if res := s.fetchResponse(100, cur.tag); !res.notModified {
		t.Fatalf("current tag answered %+v", res)
	}
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !entryEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestDeltaHistoryCap pins that the history stays bounded and that a tag
// older than the cap falls back to the full body.
func TestDeltaHistoryCap(t *testing.T) {
	s := newShardedStore()
	s.addUser("u")
	s.ingest("u", utc, []Report{{URL: "seed.example/", ASN: 100, Tm: utc}})
	oldest := s.fetchResponse(100, "")
	for i := 0; i < deltaHistoryMax+10; i++ {
		s.ingest("u", utc.Add(time.Duration(i+1)*time.Minute), []Report{
			{URL: fmt.Sprintf("u%d.example/", i), ASN: 100, Tm: utc},
		})
		s.fetchResponse(100, "") // observe every snapshot so each edit is recorded
	}
	idx := s.asIndexFor(100, false)
	idx.snapMu.Lock()
	hist := len(idx.history)
	idx.snapMu.Unlock()
	if hist > deltaHistoryMax {
		t.Fatalf("history grew to %d, cap is %d", hist, deltaHistoryMax)
	}
	res := s.fetchResponse(100, oldest.tag)
	if res.delta || res.notModified {
		t.Fatalf("evicted tag must fall back to full body, got %+v", res)
	}
}

// deltaWorld is gdbWorld plus a second client in the same AS, used to
// cross-check that a delta-synced client sees exactly what a full-fetch
// client sees.
func TestClientDeltaSync(t *testing.T) {
	_, _, mk := gdbWorld(t)
	reporter := mk("rep", "10.0.0.1")
	register(t, reporter)
	syncer := mk("sync", "10.0.0.2")
	fresh := mk("fresh", "10.0.0.3")

	post := func(c *Client, urls ...string) {
		t.Helper()
		recs := make([]localdb.Record, 0, len(urls))
		for _, u := range urls {
			recs = append(recs, blockedRec(u, 100, localdb.BlockDNS, "nxdomain"))
		}
		if _, err := c.Report(context.Background(), recs); err != nil {
			t.Fatal(err)
		}
	}
	// A wide baseline in one batch: the reporter's d is fixed afterwards, so
	// the baseline entries never change again and the later drift is a small
	// delta rather than a full rewrite.
	post(reporter, "one.example/", "two.example/", "three.example/", "four.example/", "five.example/")
	if _, err := syncer.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Converged: next sync is a 304.
	if _, err := syncer.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}

	// Drift from a different client so the baseline votes stay untouched.
	reporter2 := mk("rep2", "10.0.0.4")
	register(t, reporter2)
	post(reporter2, "six.example/")
	got, err := syncer.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, want) {
		t.Fatalf("delta-synced list diverges from full fetch:\n got %+v\nwant %+v", got, want)
	}
	st := syncer.Stats()
	if st.FetchFull != 1 || st.Fetch304 != 1 || st.FetchDelta != 1 {
		t.Fatalf("syncer stats = %+v, want 1 full + 1 304 + 1 delta", st)
	}
	if fs := fresh.Stats(); fs.FetchDelta != 0 || fs.FetchFull != 1 {
		t.Fatalf("fresh stats = %+v", fs)
	}
	if st.ListBytes <= fresh.Stats().ListBytes {
		// The syncer transferred a full body AND a delta; the fresh client
		// one larger full body. The delta must have cost less than a second
		// full fetch.
		t.Logf("syncer bytes %d, fresh bytes %d", st.ListBytes, fresh.Stats().ListBytes)
	}
}

// TestClientTagDowngrade is the satellite-c regression: a client that
// fetched from a tagged store, then (after a failover or store swap) gets a
// 200 without an ETag, must drop its cached tag — never re-sending the
// stale tag where it could spuriously match another backend's unrelated
// tag.
func TestClientTagDowngrade(t *testing.T) {
	clock := vtime.New(1000)
	n := netem.New(clock, netem.WithSeed(41), netem.WithJitter(0))
	pk := n.AddAS(100, "ISP", "PK")
	cloud := n.AddAS(900, "Cloud", "US")
	n.SetRTT("pk", "us", 100*time.Millisecond)

	// Two backends at different addresses: a sharded (tagged) one and a
	// legacy (tagless) one, with different content for the same AS.
	tagged := NewServer(clock, nil)
	if err := tagged.Attach(n.MustAddHost("tagged", "40.0.0.1", "us", cloud), 80); err != nil {
		t.Fatal(err)
	}
	tagless := newServerWith(clock, nil, newLegacyStore(), nil)
	if err := tagless.Attach(n.MustAddHost("tagless", "40.0.0.2", "us", cloud), 80); err != nil {
		t.Fatal(err)
	}
	for i, srv := range []*Server{tagged, tagless} {
		srv.store.addUser("seed")
		if _, ok := srv.store.ingest("seed", clock.Now(), []Report{
			{URL: fmt.Sprintf("backend%d.example/", i), ASN: 100, Tm: clock.Now()},
		}); !ok {
			t.Fatal("seed ingest rejected")
		}
	}

	h := n.MustAddHost("client", "10.0.0.1", "pk", pk)
	c := &Client{Addr: "40.0.0.1:80", Host: "globaldb.example", Clock: clock,
		ReportDial: h.Dial, FetchDial: h.Dial}

	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	tag := c.blocked[100].tag
	c.mu.Unlock()
	if tag == "" {
		t.Fatal("tagged backend served no tag")
	}

	// "Failover": the client now talks to the tagless backend.
	c.Addr = "40.0.0.2:80"
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].URL != "backend1.example/" {
		t.Fatalf("tagless backend served %+v, want its own content", entries)
	}
	c.mu.Lock()
	tag = c.blocked[100].tag
	c.mu.Unlock()
	if tag != "" {
		t.Fatalf("cached tag %q survived a tagless 200; must downgrade to \"\"", tag)
	}

	// Back on a tagged backend whose current tag happens to equal the
	// original stale one: the client must not send a stale If-None-Match
	// (it has none), so it gets the real full body, not a spurious 304.
	c.Addr = "40.0.0.1:80"
	entries, err = c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].URL != "backend0.example/" {
		t.Fatalf("re-fetch from tagged backend served %+v", entries)
	}
	if st := c.Stats(); st.Fetch304 != 0 {
		t.Fatalf("spurious 304 across backends: %+v", st)
	}
}
