package storage

import (
	"sort"
	"sync"
)

// Feed is the primary's in-memory replication stream: every mutation the
// durable store applies is appended here as a pre-framed record, and
// followers pull ranges by sequence number, acknowledging the offset they
// have durably applied. Sequence numbers are record counts since the feed
// was created (frame i has sequence i), so a follower's offset doubles as
// "how many records of the primary's history it holds".
//
// The feed keeps the full history for the primary's lifetime: followers in
// the emulated worlds attach at sequence 0 before traffic starts, and a
// run's record count is bounded by the scenario. A production design would
// trim below the minimum acknowledged offset and fall back to a snapshot
// transfer for laggards; Stats surfaces the lag that policy would key on.
type Feed struct {
	mu     sync.Mutex
	frames [][]byte
	acks   map[string]uint64
}

// NewFeed returns an empty feed.
func NewFeed() *Feed {
	return &Feed{acks: make(map[string]uint64)}
}

// Append adds one record to the stream.
func (f *Feed) Append(rec *Record) {
	frame := AppendFrame(nil, EncodeRecord(nil, rec))
	f.mu.Lock()
	f.frames = append(f.frames, frame)
	f.mu.Unlock()
}

// Head returns the next sequence number to be written (= records appended).
func (f *Feed) Head() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return uint64(len(f.frames))
}

// ReadFrom returns a contiguous run of framed records starting at sequence
// from, bounded by maxBytes (at least one record is returned when any is
// available, so a single oversized record cannot wedge a follower), plus
// the sequence the next read should start at.
func (f *Feed) ReadFrom(from uint64, maxBytes int) (data []byte, next uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	next = from
	if from > uint64(len(f.frames)) {
		return nil, uint64(len(f.frames))
	}
	for next < uint64(len(f.frames)) {
		frame := f.frames[next]
		if len(data) > 0 && len(data)+len(frame) > maxBytes {
			break
		}
		data = append(data, frame...)
		next++
	}
	return data, next
}

// Reset drops the feed's entire history and all follower acks. Used when a
// node wipes its state to resync from a new leader: the rebuilt stream
// restarts at sequence 0.
func (f *Feed) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frames = nil
	f.acks = make(map[string]uint64)
}

// Ack records that follower has durably applied every record below seq.
// Acks never move backwards. A first ack at 0 still registers the follower,
// so Stats shows attached-but-behind followers with their full lag instead
// of omitting them.
func (f *Feed) Ack(follower string, seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur, ok := f.acks[follower]; !ok || seq > cur {
		f.acks[follower] = seq
	}
}

// FollowerAck is one follower's replication offset and lag.
type FollowerAck struct {
	Name  string `json:"name"`
	Acked uint64 `json:"acked"`
	Lag   uint64 `json:"lag"`
}

// FeedStats is the primary-side replication state: the head sequence and
// each follower's acknowledged offset, plus the worst lag.
type FeedStats struct {
	Head      uint64        `json:"head"`
	Followers []FollowerAck `json:"followers"`
	MaxLag    uint64        `json:"max_lag"`
}

// Stats snapshots the feed. Followers are sorted by name so the output is
// deterministic.
func (f *Feed) Stats() FeedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FeedStats{Head: uint64(len(f.frames))}
	names := make([]string, 0, len(f.acks))
	for name := range f.acks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		acked := f.acks[name]
		lag := st.Head - acked
		if acked > st.Head {
			lag = 0
		}
		st.Followers = append(st.Followers, FollowerAck{Name: name, Acked: acked, Lag: lag})
		if lag > st.MaxLag {
			st.MaxLag = lag
		}
	}
	return st
}
