package storage

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// The fuzz property is the recovery contract: Replay over arbitrary bytes
// must never panic, must stop at the first invalid frame (returning an
// ErrCorrupt-wrapped error, never replaying garbage past it), and every
// record it does deliver must re-encode to bytes that decode back to the
// same record — so a log written by us and damaged by anything (torn tail,
// bit flip, zero-length frame) recovers exactly its valid prefix.
func FuzzReplay(f *testing.F) {
	f.Add(framedSeed())
	f.Add(framedSeed()[:len(framedSeed())-3])       // torn tail
	f.Add(append(framedSeed(), 0, 0, 0, 0, 0, 0, 0, 0)) // zero-length frame
	flipped := framedSeed()
	flipped[len(flipped)/2] ^= 0x10 // bit-flipped checksum or payload
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // absurd length field
	// Mid-file damage with intact frames behind it — the ReplayFile
	// history-loss case; plain Replay still just stops at the bad frame.
	midFlip := framedSeed()
	midFlip[frameHeaderLen+2] ^= 0xFF // payload byte of the FIRST frame
	f.Add(midFlip)
	// A leadership change mid-stream: KindTerm frames ride the same log.
	f.Add(append(AppendFrame(nil, EncodeRecord(nil,
		&Record{Kind: KindTerm, UUID: "30.0.0.1:80", Now: 3})), framedSeed()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []*Record
		good, err := Replay(bytes.NewReader(data), func(r *Record) error {
			recs = append(recs, r)
			return nil
		})
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of [0,%d]", good, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay error outside the corruption contract: %v", err)
		}
		// Replaying just the good prefix must yield the same records with no
		// tail error — the offset really is a clean cut point.
		var again []*Record
		good2, err2 := Replay(bytes.NewReader(data[:good]), func(r *Record) error {
			again = append(again, r)
			return nil
		})
		if err2 != nil || good2 != good {
			t.Fatalf("good prefix does not replay cleanly: good2=%d err=%v", good2, err2)
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("prefix replay produced different records")
		}
		// Each delivered record round-trips through the codec.
		for i, r := range recs {
			enc := EncodeRecord(nil, r)
			back, err := DecodeRecord(enc)
			if err != nil {
				t.Fatalf("record %d does not re-decode: %v", i, err)
			}
			if !reflect.DeepEqual(back, r) {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}
	})
}

func framedSeed() []byte {
	var b []byte
	for _, r := range []*Record{
		{Kind: KindAddUser, UUID: "fuzz-user"},
		{Kind: KindIngest, UUID: "fuzz-user", Now: 1511568000000000000, Reports: []Report{
			{URL: "blocked.example/", ASN: 17557, Tm: 7,
				Stages: []Stage{{Type: 1, Detail: "redirect"}}},
		}},
		{Kind: KindRevoke, UUID: "fuzz-user"},
	} {
		b = AppendFrame(b, EncodeRecord(nil, r))
	}
	return b
}
