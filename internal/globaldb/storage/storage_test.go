package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []*Record {
	return []*Record{
		{Kind: KindAddUser, UUID: "user-a"},
		{Kind: KindIngest, UUID: "user-a", Now: 1511568000 * int64(1e9), Reports: []Report{
			{URL: "blocked.example/", ASN: 17557, Tm: 1511567000 * int64(1e9),
				Stages: []Stage{{Type: 1, Detail: "redirect"}, {Type: 3, Detail: "blockpage"}}},
			{URL: "other.example/x", ASN: 45595, Tm: -1, Stages: nil},
			{URL: "third.example/", ASN: 45595, Tm: 0, Stages: []Stage{}},
		}},
		{Kind: KindRevoke, UUID: "user-a"},
		{Kind: KindIngest, UUID: "user-b", Now: 42, Reports: nil},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		enc := EncodeRecord(nil, rec)
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d: round trip mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	enc := EncodeRecord(nil, &Record{Kind: KindAddUser, UUID: "u"})
	if _, err := DecodeRecord(append(enc, 0xff)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	enc := EncodeRecord(nil, &Record{Kind: KindAddUser, UUID: "u"})
	enc[0] = 99
	if _, err := DecodeRecord(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind: got %v, want ErrCorrupt", err)
	}
}

func replayAll(t *testing.T, b []byte) (recs []*Record, good int64, err error) {
	t.Helper()
	good, err = Replay(bytes.NewReader(b), func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	return recs, good, err
}

func framed(recs []*Record) []byte {
	var b []byte
	for _, r := range recs {
		b = AppendFrame(b, EncodeRecord(nil, r))
	}
	return b
}

func TestReplayCleanStream(t *testing.T) {
	want := sampleRecords()
	b := framed(want)
	got, good, err := replayAll(t, b)
	if err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if good != int64(len(b)) {
		t.Fatalf("good = %d, want %d", good, len(b))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ")
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	want := sampleRecords()
	b := framed(want)
	for cut := 1; cut < 12; cut++ {
		torn := b[:len(b)-cut]
		got, good, err := replayAll(t, torn)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: err = %v, want ErrCorrupt", cut, err)
		}
		if len(got) != len(want)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), len(want)-1)
		}
		if good <= 0 || good >= int64(len(b)) {
			t.Fatalf("cut %d: good offset %d out of range", cut, good)
		}
	}
}

func TestReplayStopsAtBitFlip(t *testing.T) {
	want := sampleRecords()
	b := framed(want)
	// Flip a payload bit inside the second frame: records before it replay,
	// nothing at or after it does.
	first := frameHeaderLen + len(EncodeRecord(nil, want[0]))
	flip := append([]byte(nil), b...)
	flip[first+frameHeaderLen+2] ^= 0x40
	got, good, err := replayAll(t, flip)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}
	if len(got) != 1 || good != int64(first) {
		t.Fatalf("bit flip: replayed %d records to offset %d, want 1 to %d", len(got), good, first)
	}
}

func TestReplayStopsAtZeroLengthFrame(t *testing.T) {
	b := framed(sampleRecords()[:1])
	b = append(b, make([]byte, frameHeaderLen)...) // length 0, CRC 0
	got, good, err := replayAll(t, b)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length frame: err = %v, want ErrCorrupt", err)
	}
	if len(got) != 1 || good != int64(len(framed(sampleRecords()[:1]))) {
		t.Fatalf("zero-length frame: replayed %d records to %d", len(got), good)
	}
}

func TestLogAppendReplayTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d", l.Records(), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn tail, then verify recovery semantics: replay stops at
	// the damage, truncation removes it, and appending continues cleanly.
	if err := os.WriteFile(path, append(readFile(t, path), 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	good, err := ReplayFile(path, func(r *Record) error { got = append(got, r); return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn log tail: err = %v, want ErrCorrupt", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("torn log lost good records")
	}

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Truncate(good); err != nil {
		t.Fatal(err)
	}
	extra := &Record{Kind: KindAddUser, UUID: "user-c"}
	if err := l2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got = nil
	if _, err := ReplayFile(path, func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("after truncate+append: %v", err)
	}
	if !reflect.DeepEqual(got, append(append([]*Record(nil), want...), extra)) {
		t.Fatalf("post-recovery log contents differ")
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReplayFileMissing(t *testing.T) {
	good, err := ReplayFile(filepath.Join(t.TempDir(), "nope"), func(*Record) error {
		t.Fatal("fn called for missing file")
		return nil
	})
	if good != 0 || err != nil {
		t.Fatalf("missing file: good=%d err=%v", good, err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot")
	st := &State{
		Users: []UserState{
			{UUID: "a", Reports: []StoredReport{
				{URL: "u/", ASN: 1, Tm: 5, Tp: 9, Stages: []Stage{{Type: 2, Detail: "rst"}}},
			}},
			{UUID: "b", Revoked: true},
		},
		Updates:    7,
		RevEpoch:   3,
		ASVersions: []ASVersion{{ASN: 1, Version: 12}},
	}
	if err := WriteSnapshot(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("snapshot round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestSnapshotMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if st, err := ReadSnapshot(filepath.Join(dir, "none")); st != nil || err != nil {
		t.Fatalf("missing snapshot: %v %v", st, err)
	}
	path := filepath.Join(dir, "snap")
	if err := WriteSnapshot(path, &State{Updates: 1}); err != nil {
		t.Fatal(err)
	}
	b := readFile(t, path)
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestFeedReadAck(t *testing.T) {
	f := NewFeed()
	recs := sampleRecords()
	for _, r := range recs {
		f.Append(r)
	}
	if f.Head() != uint64(len(recs)) {
		t.Fatalf("Head = %d, want %d", f.Head(), len(recs))
	}

	// Read everything from 0 and verify the frames replay to the originals.
	data, next := f.ReadFrom(0, 1<<20)
	if next != uint64(len(recs)) {
		t.Fatalf("next = %d, want %d", next, len(recs))
	}
	var got []*Record
	if _, err := Replay(bytes.NewReader(data), func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("feed frames differ from appended records")
	}

	// A tiny byte budget still makes progress one record at a time.
	data, next = f.ReadFrom(1, 1)
	if len(data) == 0 || next != 2 {
		t.Fatalf("bounded read: %d bytes, next %d", len(data), next)
	}

	f.Ack("f1", 2)
	f.Ack("f2", uint64(len(recs)))
	f.Ack("f1", 1) // acks never regress
	st := f.Stats()
	if st.Head != uint64(len(recs)) || st.MaxLag != uint64(len(recs))-2 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Followers) != 2 || st.Followers[0].Name != "f1" || st.Followers[0].Acked != 2 {
		t.Fatalf("followers: %+v", st.Followers)
	}

	// Reading past head is a no-op positioned at head.
	if data, next := f.ReadFrom(99, 10); data != nil || next != uint64(len(recs)) {
		t.Fatalf("past-head read: %v %d", data, next)
	}
}

func TestReplayFileTornTailIsNotHistoryLoss(t *testing.T) {
	// A cut anywhere inside the final frame is a crash mid-append: recovery
	// reports ErrCorrupt so the caller truncates and continues. It must NOT
	// escalate to ErrHistoryLoss — no committed record sits past the damage.
	want := sampleRecords()
	full := framed(want)
	lastStart := len(framed(want[:len(want)-1]))
	path := filepath.Join(t.TempDir(), "wal")
	for cut := lastStart + 1; cut < len(full); cut += 3 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []*Record
		good, err := ReplayFile(path, func(r *Record) error { got = append(got, r); return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: err = %v, want ErrCorrupt", cut, err)
		}
		if errors.Is(err, ErrHistoryLoss) {
			t.Fatalf("cut at %d: torn tail misreported as history loss: %v", cut, err)
		}
		if good != int64(lastStart) || len(got) != len(want)-1 {
			t.Fatalf("cut at %d: good=%d records=%d, want good=%d records=%d",
				cut, good, len(got), lastStart, len(want)-1)
		}
	}
}

func TestReplayFileMidFileCorruptionIsHistoryLoss(t *testing.T) {
	// A bad frame with intact frames behind it means committed history was
	// damaged in place; truncating would drop the valid suffix, so ReplayFile
	// must refuse with ErrHistoryLoss rather than inviting the torn-tail fix.
	want := sampleRecords()
	full := framed(want)
	firstEnd := len(framed(want[:1]))
	path := filepath.Join(t.TempDir(), "wal")

	corrupt := append([]byte(nil), full...)
	corrupt[firstEnd+frameHeaderLen+1] ^= 0xFF // payload byte of frame 2
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	good, err := ReplayFile(path, func(r *Record) error { got = append(got, r); return nil })
	if !errors.Is(err, ErrHistoryLoss) {
		t.Fatalf("mid-file flip: err = %v, want ErrHistoryLoss", err)
	}
	if good != int64(firstEnd) || len(got) != 1 {
		t.Fatalf("mid-file flip: good=%d records=%d, want good=%d records=1", good, len(got), firstEnd)
	}

	// The same flip in the FINAL frame is indistinguishable from a torn
	// append and stays a truncatable ErrCorrupt.
	lastStart := len(framed(want[:len(want)-1]))
	tailFlip := append([]byte(nil), full...)
	tailFlip[lastStart+frameHeaderLen+1] ^= 0xFF
	if err := os.WriteFile(path, tailFlip, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReplayFile(path, func(*Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) || errors.Is(err, ErrHistoryLoss) {
		t.Fatalf("final-frame flip: err = %v, want plain ErrCorrupt", err)
	}
}

func TestLogTearNextRecovery(t *testing.T) {
	// TearNext cuts the next append short: the record is reported
	// non-durable, replay stops at the last good frame, and truncate+append
	// resumes a clean log — the full crash-mid-append recovery cycle.
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want[:2] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.TearNext(5)
	if err := l.Append(want[2]); !errors.Is(err, ErrInjectedTear) {
		t.Fatalf("torn append: err = %v, want ErrInjectedTear", err)
	}
	if l.Records() != 2 {
		t.Fatalf("Records() = %d after tear, want 2", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Record
	good, err := ReplayFile(path, func(r *Record) error { got = append(got, r); return nil })
	if !errors.Is(err, ErrCorrupt) || errors.Is(err, ErrHistoryLoss) {
		t.Fatalf("replay after tear: err = %v, want plain ErrCorrupt", err)
	}
	if len(got) != 2 {
		t.Fatalf("replay after tear: %d records, want 2", len(got))
	}

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Truncate(good); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(want[2]); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got = nil
	if _, err := ReplayFile(path, func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if !reflect.DeepEqual(got, want[:3]) {
		t.Fatalf("recovered log contents differ")
	}
}
