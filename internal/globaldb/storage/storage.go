// Package storage is the global DB's durability and replication substrate:
// a write-ahead log of length-prefixed, checksummed mutation records, a
// versioned snapshot codec for compaction, and an in-memory replication
// feed the primary streams records from.
//
// The package deliberately defines its own wire structs instead of reusing
// globaldb's (globaldb imports storage, not the other way around). All
// timestamps are explicit int64 UnixNano values: virtual-time instants
// serialize exactly, so replaying a log reproduces byte-identical
// aggregation output. Decoders restore them with time.Unix(0, n).UTC() —
// the vtime clock hands out UTC instants, and a Local-zone round trip
// would change the JSON bodies the server serves.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record kinds, one per store mutation. The values are part of the on-disk
// format and must not be renumbered.
const (
	KindAddUser byte = 1
	KindIngest  byte = 2
	KindRevoke  byte = 3
	// KindTerm marks a leadership change in the replicated stream: Now
	// carries the term number and UUID the new leader's client-facing
	// address. It reuses the existing record fields, so the frame format is
	// unchanged; streams written before promotion existed simply contain no
	// term records (the founding leader serves term 1 implicitly).
	KindTerm byte = 4
)

// Stage mirrors one detection stage of a report.
type Stage struct {
	Type   int
	Detail string
}

// Report is one blocked-URL measurement inside an ingest record. Tm is the
// client's measurement time as UnixNano.
type Report struct {
	URL    string
	ASN    int
	Stages []Stage
	Tm     int64
}

// Record is one logged store mutation. Now is the server's (virtual) ingest
// time as UnixNano; it is meaningful only for KindIngest, where replay must
// reuse the original time rather than the clock at recovery.
type Record struct {
	Kind    byte
	UUID    string
	Now     int64
	Reports []Report
}

// ErrCorrupt marks a frame or record that failed validation. Replay stops
// cleanly at the first such frame; callers distinguish it from an apply
// error with errors.Is.
var ErrCorrupt = errors.New("storage: corrupt record")

// ErrHistoryLoss marks a log whose corruption is followed by further valid
// records: not a torn tail from a crash mid-append, but damage to committed
// history (a flipped bit, an overwritten region). Truncating at the bad
// frame would silently drop the valid records behind it, so recovery must
// hard-error instead. Deliberately does not wrap ErrCorrupt: callers that
// truncate on ErrCorrupt treat this as fatal without any code change.
var ErrHistoryLoss = errors.New("storage: corruption inside committed history")

// maxFrame bounds a frame's payload so a corrupted length field cannot ask
// the reader to allocate gigabytes before the checksum gets a chance to
// reject it.
const maxFrame = 1 << 26

// frameHeaderLen is the length prefix plus the CRC32 of the payload.
const frameHeaderLen = 8

// EncodeRecord appends rec's binary encoding to dst and returns the
// extended slice. The layout is kind byte, then uvarint-length-prefixed
// strings and varint integers; every field is written unconditionally so
// the encoding is a pure function of the record.
func EncodeRecord(dst []byte, rec *Record) []byte {
	dst = append(dst, rec.Kind)
	dst = appendString(dst, rec.UUID)
	dst = binary.AppendVarint(dst, rec.Now)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Reports)))
	for _, r := range rec.Reports {
		dst = appendString(dst, r.URL)
		dst = binary.AppendVarint(dst, int64(r.ASN))
		dst = binary.AppendVarint(dst, r.Tm)
		// Stage counts are shifted by one so nil (0) and empty-but-present
		// (1) stay distinct: Entry.Stages marshals without omitempty, so a
		// replay that collapsed []Stage{} to nil would flip "stages":[] to
		// "stages":null in served bodies and break byte-identity.
		if r.Stages == nil {
			dst = binary.AppendUvarint(dst, 0)
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.Stages))+1)
		for _, st := range r.Stages {
			dst = binary.AppendVarint(dst, int64(st.Type))
			dst = appendString(dst, st.Detail)
		}
	}
	return dst
}

// DecodeRecord parses one record payload. It rejects unknown kinds,
// truncated fields, and trailing garbage — a flipped bit that survives the
// frame CRC (or a handcrafted payload, as in the fuzz target) must produce
// an error, never a half-read record.
func DecodeRecord(p []byte) (*Record, error) {
	d := decoder{buf: p}
	rec := &Record{Kind: d.byte()}
	switch rec.Kind {
	case KindAddUser, KindIngest, KindRevoke, KindTerm:
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, rec.Kind)
	}
	rec.UUID = d.string()
	rec.Now = d.varint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(p)) {
		// More reports than bytes remaining: a corrupt count. Guarding here
		// bounds the allocation below.
		return nil, fmt.Errorf("%w: report count %d exceeds payload", ErrCorrupt, n)
	}
	if n > 0 && d.err == nil {
		rec.Reports = make([]Report, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		r := Report{URL: d.string(), ASN: int(d.varint()), Tm: d.varint()}
		ns := d.uvarint()
		if d.err == nil && ns > uint64(len(p)) {
			return nil, fmt.Errorf("%w: stage count %d exceeds payload", ErrCorrupt, ns)
		}
		if ns > 0 && d.err == nil {
			// ns-1 stages follow; ns == 1 restores an empty non-nil slice.
			r.Stages = make([]Stage, 0, ns-1)
			for j := uint64(1); j < ns && d.err == nil; j++ {
				r.Stages = append(r.Stages, Stage{Type: int(d.varint()), Detail: d.string()})
			}
		}
		rec.Reports = append(rec.Reports, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	return rec, nil
}

// AppendFrame wraps payload in the log frame format — uint32 LE length,
// uint32 LE CRC32 (IEEE) of the payload, payload — and appends it to dst.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Replay decodes framed records from r, invoking fn for each in order. It
// returns the number of bytes consumed by complete valid frames. A nil
// error means the stream ended exactly on a frame boundary; an error
// wrapping ErrCorrupt means the stream was cut or corrupted after good
// bytes (a torn tail after a crash, a flipped bit, a zero-length frame) —
// replay stops cleanly at that point and nothing after it is applied. Any
// other error came from fn and aborts the replay.
func Replay(r io.Reader, fn func(*Record) error) (good int64, err error) {
	var hdr [frameHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return good, nil
			}
			return good, fmt.Errorf("%w: torn frame header: %v", ErrCorrupt, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 {
			return good, fmt.Errorf("%w: zero-length frame", ErrCorrupt)
		}
		if n > maxFrame {
			return good, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, fmt.Errorf("%w: torn frame payload: %v", ErrCorrupt, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return good, err
		}
		if err := fn(rec); err != nil {
			return good, err
		}
		good += frameHeaderLen + int64(n)
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decoder is a cursor over a record payload that latches the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
