package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Log is an append-only write-ahead log of framed records. Appends are
// flushed to the file before returning, so state recovered after an
// in-simulation "kill" (close the store, reopen from disk) contains every
// acknowledged mutation. The Log itself is not goroutine-safe; the durable
// store serializes appends under its write mutex, which is also what fixes
// the replay order.
type Log struct {
	path string
	f    *os.File
	w    *bufio.Writer
	buf  []byte // scratch for encode+frame, reused across appends
	recs int64  // records appended since open (not lifetime)
	tear int    // >= 0: next Append writes only this many bytes (fault hook)
}

// ErrInjectedTear is returned by an Append whose write was deliberately cut
// short via TearNext. The partial frame is on disk; the record is not
// durable.
var ErrInjectedTear = errors.New("storage: injected torn write")

// TearNext arms a fault-injection hook: the next Append writes only the
// first keep bytes of its frame, flushes them, and returns ErrInjectedTear.
// This simulates a crash mid-append — the canonical torn tail that recovery
// must truncate away. Chaos schedules use it to exercise the recovery path
// deterministically.
func (l *Log) TearNext(keep int) {
	if keep < 0 {
		keep = 0
	}
	l.tear = keep
}

// OpenLog opens (creating if needed) the log at path for appending.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		closeErr := f.Close()
		return nil, fmt.Errorf("storage: seek log end: %v (close: %v)", err, closeErr)
	}
	return &Log{path: path, f: f, w: bufio.NewWriter(f), tear: -1}, nil
}

// Append encodes, frames, writes and flushes one record.
func (l *Log) Append(rec *Record) error {
	l.buf = l.buf[:0]
	payload := EncodeRecord(l.buf, rec)
	l.buf = payload // keep the grown buffer for reuse
	framed := AppendFrame(nil, payload)
	if l.tear >= 0 {
		keep := l.tear
		l.tear = -1
		if keep > len(framed) {
			keep = len(framed)
		}
		if _, err := l.w.Write(framed[:keep]); err != nil {
			return err
		}
		if err := l.w.Flush(); err != nil {
			return err
		}
		return ErrInjectedTear
	}
	if _, err := l.w.Write(framed); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.recs++
	return nil
}

// Records reports how many records were appended since open.
func (l *Log) Records() int64 { return l.recs }

// Size returns the current log file size in bytes.
func (l *Log) Size() (int64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate cuts the log to n bytes. Recovery truncates away a torn tail so
// later appends continue from the last good frame; compaction truncates to
// zero after writing a snapshot.
func (l *Log) Truncate(n int64) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(n); err != nil {
		return err
	}
	_, err := l.f.Seek(n, 0)
	return err
}

// Close flushes and closes the file.
func (l *Log) Close() error {
	if err := l.w.Flush(); err != nil {
		closeErr := l.f.Close()
		return fmt.Errorf("storage: flush log: %v (close: %v)", err, closeErr)
	}
	return l.f.Close()
}

// ReplayFile opens path and replays its records through fn, returning the
// byte offset of the end of the last good frame. A missing file replays
// zero records. The tail error follows Replay's contract — nil for a clean
// end, ErrCorrupt-wrapped for a torn tail (the caller should truncate to
// good and continue), anything else from fn — with one sharpening: if the
// corruption is followed by a later intact frame, the damage is inside
// committed history rather than a crash mid-append, and the error wraps
// ErrHistoryLoss instead. Truncating there would silently drop the valid
// records behind the bad frame, so callers must treat it as fatal. A
// corrupted final frame is indistinguishable from a torn append and is
// truncated like one.
func ReplayFile(path string, fn func(*Record) error) (good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	good, replayErr := Replay(bufio.NewReader(f), fn)
	if closeErr := f.Close(); replayErr == nil && closeErr != nil {
		return good, closeErr
	}
	if replayErr != nil && errors.Is(replayErr, ErrCorrupt) {
		if tail, rerr := os.ReadFile(path); rerr == nil && int64(len(tail)) > good {
			if off, ok := laterValidFrame(tail[good:]); ok {
				return good, fmt.Errorf("%w: valid frame at offset %d after corruption at %d: %v",
					ErrHistoryLoss, good+off, good, replayErr)
			}
		}
	}
	return good, replayErr
}

// laterValidFrame scans data (the bytes from the first corrupt frame on)
// for an intact frame starting strictly after the corruption point: a sane
// length, a matching CRC, and a payload that decodes. Offset 0 is skipped —
// that is the corrupt frame itself.
func laterValidFrame(data []byte) (off int64, ok bool) {
	for i := 1; i+frameHeaderLen <= len(data); i++ {
		n := binary.LittleEndian.Uint32(data[i : i+4])
		if n == 0 || n > maxFrame || i+frameHeaderLen+int(n) > len(data) {
			continue
		}
		sum := binary.LittleEndian.Uint32(data[i+4 : i+8])
		payload := data[i+frameHeaderLen : i+frameHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			continue
		}
		if _, err := DecodeRecord(payload); err != nil {
			continue
		}
		return int64(i), true
	}
	return 0, false
}
