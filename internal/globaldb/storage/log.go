package storage

import (
	"bufio"
	"fmt"
	"os"
)

// Log is an append-only write-ahead log of framed records. Appends are
// flushed to the file before returning, so state recovered after an
// in-simulation "kill" (close the store, reopen from disk) contains every
// acknowledged mutation. The Log itself is not goroutine-safe; the durable
// store serializes appends under its write mutex, which is also what fixes
// the replay order.
type Log struct {
	path string
	f    *os.File
	w    *bufio.Writer
	buf  []byte // scratch for encode+frame, reused across appends
	recs int64  // records appended since open (not lifetime)
}

// OpenLog opens (creating if needed) the log at path for appending.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		closeErr := f.Close()
		return nil, fmt.Errorf("storage: seek log end: %v (close: %v)", err, closeErr)
	}
	return &Log{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Append encodes, frames, writes and flushes one record.
func (l *Log) Append(rec *Record) error {
	l.buf = l.buf[:0]
	payload := EncodeRecord(l.buf, rec)
	l.buf = payload // keep the grown buffer for reuse
	framed := AppendFrame(nil, payload)
	if _, err := l.w.Write(framed); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.recs++
	return nil
}

// Records reports how many records were appended since open.
func (l *Log) Records() int64 { return l.recs }

// Size returns the current log file size in bytes.
func (l *Log) Size() (int64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate cuts the log to n bytes. Recovery truncates away a torn tail so
// later appends continue from the last good frame; compaction truncates to
// zero after writing a snapshot.
func (l *Log) Truncate(n int64) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(n); err != nil {
		return err
	}
	_, err := l.f.Seek(n, 0)
	return err
}

// Close flushes and closes the file.
func (l *Log) Close() error {
	if err := l.w.Flush(); err != nil {
		closeErr := l.f.Close()
		return fmt.Errorf("storage: flush log: %v (close: %v)", err, closeErr)
	}
	return l.f.Close()
}

// ReplayFile opens path and replays its records through fn, returning the
// byte offset of the end of the last good frame. A missing file replays
// zero records. The tail error follows Replay's contract: nil for a clean
// end, ErrCorrupt-wrapped for a torn or corrupted tail (the caller should
// truncate to good and continue), anything else from fn.
func ReplayFile(path string, fn func(*Record) error) (good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	good, replayErr := Replay(bufio.NewReader(f), fn)
	if closeErr := f.Close(); replayErr == nil && closeErr != nil {
		return good, closeErr
	}
	return good, replayErr
}
