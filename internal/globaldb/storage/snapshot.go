package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapshotMagic versions the snapshot file format. Bump it on incompatible
// State changes; ReadSnapshot rejects files with a different header rather
// than misparsing them.
const snapshotMagic = "CSAWSNAP1\n"

// State is the full store state a snapshot captures. Every slice is sorted
// (users by UUID, reports by their dedup key, AS versions by ASN) so a
// snapshot is a deterministic function of store contents.
type State struct {
	Users    []UserState `json:"users"`
	Updates  int64       `json:"updates"`
	RevEpoch int64       `json:"rev_epoch"`
	// ASVersions preserves each AS index's version counter. Restoring the
	// exact counters (instead of recomputing) is what keeps ETags — which
	// name a (version, revocation-epoch) pair — stable across a restart.
	ASVersions []ASVersion `json:"as_versions"`
}

// UserState is one registered client's snapshot.
type UserState struct {
	UUID    string         `json:"uuid"`
	Revoked bool           `json:"revoked,omitempty"`
	Reports []StoredReport `json:"reports,omitempty"`
}

// StoredReport is one stored measurement; Tm and Tp are UnixNano.
type StoredReport struct {
	URL    string  `json:"url"`
	ASN    int     `json:"asn"`
	Stages []Stage `json:"stages,omitempty"`
	Tm     int64   `json:"tm"`
	Tp     int64   `json:"tp"`
}

// ASVersion records one AS index's version counter.
type ASVersion struct {
	ASN     int   `json:"asn"`
	Version int64 `json:"version"`
}

// WriteSnapshot atomically writes st to path: the bytes go to a temp file
// in the same directory which is then renamed over path, so a reader never
// observes a half-written snapshot. Layout: magic, uint32 LE payload
// length, uint32 LE CRC32 of the payload, JSON payload.
func WriteSnapshot(path string, st *State) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(snapshotMagic)+frameHeaderLen+len(payload))
	buf = append(buf, snapshotMagic...)
	buf = AppendFrame(buf, payload)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		closeErr := tmp.Close()
		removeErr := os.Remove(tmpName)
		return fmt.Errorf("storage: write snapshot: %v (close: %v, remove: %v)", err, closeErr, removeErr)
	}
	if err := tmp.Close(); err != nil {
		removeErr := os.Remove(tmpName)
		return fmt.Errorf("storage: close snapshot: %v (remove: %v)", err, removeErr)
	}
	return os.Rename(tmpName, path)
}

// ReadSnapshot reads and validates the snapshot at path. A missing file
// returns (nil, nil): recovery starts from an empty store.
func ReadSnapshot(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if len(b) < len(snapshotMagic)+frameHeaderLen || string(b[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	b = b[len(snapshotMagic):]
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	payload := b[frameHeaderLen:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("%w: snapshot length %d != header %d", ErrCorrupt, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	st := &State{}
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("%w: snapshot json: %v", ErrCorrupt, err)
	}
	return st, nil
}
