package globaldb

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// Store conformance suite: every backend — the retained single-mutex seed
// store, the sharded default, and the WAL-backed durable store (with and
// without a directory) — must expose identical ingest/dedup/revoke and
// aggregation semantics. Conditional-fetch behavior is the one permitted
// divergence, pinned by TestConformanceConditionalContract below: tagged
// stores may answer 304/delta, the tagless legacy store must always serve
// the full body.

// utc is the workload epoch; UTC so serialized instants survive export and
// restore byte-identically regardless of the host zone.
var utc = time.Unix(1_000_000_000, 0).UTC()

type storeFactory struct {
	name string
	mk   func(t *testing.T) store
}

func storeFactories() []storeFactory {
	return []storeFactory{
		{"legacy", func(t *testing.T) store { return newLegacyStore() }},
		{"sharded", func(t *testing.T) store { return newShardedStore() }},
		{"wal", func(t *testing.T) store {
			d, err := newDurableStore(StoreOptions{Dir: t.TempDir(), SnapshotEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				if err := d.close(); err != nil {
					t.Errorf("close: %v", err)
				}
			})
			return d
		}},
		{"feed-only", func(t *testing.T) store {
			d, err := newDurableStore(StoreOptions{Replicated: true})
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	}
}

// conformanceWorkload drives one scripted history through a store and
// returns every observable: ingest results, aggregations, full fetch
// bodies, and stats.
func conformanceWorkload(t *testing.T, s store) string {
	t.Helper()
	var out bytes.Buffer
	obs := func(format string, args ...any) { fmt.Fprintf(&out, format+"\n", args...) }

	s.addUser("alice")
	s.addUser("bob")
	s.addUser("alice") // idempotent re-register

	// Unknown and revoked users are rejected.
	if n, ok := s.ingest("nobody", utc, []Report{{URL: "x.example/", ASN: 100, Tm: utc}}); ok {
		t.Fatalf("unknown uuid accepted %d reports", n)
	}

	stages := []WireStage{{Type: 1, Detail: "nxdomain"}}
	batch := []Report{
		{URL: "a.example/", ASN: 100, Stages: stages, Tm: utc},
		{URL: "b.example/", ASN: 100, Stages: stages, Tm: utc},
		{URL: "", ASN: 100, Tm: utc},  // invalid: skipped
		{URL: "c.example/", Tm: utc},  // invalid: ASN 0
	}
	n, ok := s.ingest("alice", utc, batch)
	obs("alice batch1: %d %v", n, ok)

	// Re-post after a lost ack: the exact same batch again. Accepted counts
	// repeat (the server cannot tell a retry from a refresh) but the
	// dedup-aware updates counter must not move — pinned via stats below.
	n, ok = s.ingest("alice", utc.Add(time.Minute), batch)
	obs("alice repost: %d %v", n, ok)

	n, ok = s.ingest("bob", utc.Add(2*time.Minute), []Report{
		{URL: "a.example/", ASN: 100, Stages: []WireStage{{Type: 4, Detail: "rst"}}, Tm: utc},
		{URL: "d.example/", ASN: 200, Stages: nil, Tm: utc},
		{URL: "e.example/", ASN: 200, Stages: []WireStage{}, Tm: utc},
	})
	obs("bob batch: %d %v", n, ok)

	for _, asn := range []int{100, 200, 300} {
		obs("blocked %d: %+v", asn, s.blockedForAS(asn))
		obs("body %d: %s", asn, s.fetchResponse(asn, "").body)
	}

	s.revoke("bob")
	n, ok = s.ingest("bob", utc.Add(3*time.Minute), []Report{{URL: "f.example/", ASN: 100, Tm: utc}})
	obs("bob after revoke: %d %v", n, ok)
	for _, asn := range []int{100, 200} {
		obs("blocked post-revoke %d: %+v", asn, s.blockedForAS(asn))
		obs("body post-revoke %d: %s", asn, s.fetchResponse(asn, "").body)
	}

	st := s.stats()
	obs("stats: %+v", st)
	return out.String()
}

func TestStoreConformance(t *testing.T) {
	var want string
	for _, f := range storeFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			got := conformanceWorkload(t, f.mk(t))
			if want == "" {
				want = got
				return
			}
			if got != want {
				t.Fatalf("store %q diverges from reference:\n--- got ---\n%s--- want ---\n%s", f.name, got, want)
			}
		})
	}
}

// TestConformanceConditionalContract pins the conditional-fetch contract per
// backend: a tagged store answers its own current tag with 304 and never
// serves a body under a foreign tag it happens to match; the legacy store
// ignores If-None-Match entirely — a stale non-empty tag (left over from a
// tagged backend before a failover or store swap) must get the full body,
// never a spurious 304 that would freeze the client's list.
func TestConformanceConditionalContract(t *testing.T) {
	for _, f := range storeFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			s := f.mk(t)
			s.addUser("u")
			if _, ok := s.ingest("u", utc, []Report{{URL: "a.example/", ASN: 100, Tm: utc}}); !ok {
				t.Fatal("ingest rejected")
			}
			first := s.fetchResponse(100, "")
			if first.notModified || first.delta || len(first.body) == 0 {
				t.Fatalf("unconditional fetch: %+v", first)
			}
			// A stale tag from some other backend must never 304. "9.9" is a
			// plausible sharded tag no fresh store has reached.
			stale := s.fetchResponse(100, "9.9")
			if stale.notModified {
				t.Fatalf("stale foreign tag %q answered 304", "9.9")
			}
			if !bytes.Equal(stale.body, first.body) && !stale.delta {
				t.Fatalf("stale tag served neither full body nor delta")
			}
			if first.tag == "" {
				// Tagless store: even its own (empty) answer must not 304.
				again := s.fetchResponse(100, "")
				if again.notModified || !bytes.Equal(again.body, first.body) {
					t.Fatalf("tagless store conditional answer: %+v", again)
				}
				return
			}
			hit := s.fetchResponse(100, first.tag)
			if !hit.notModified || hit.body != nil || hit.tag != first.tag {
				t.Fatalf("current tag not answered 304: %+v", hit)
			}
		})
	}
}

// TestConformanceRepostDedup pins the lost-ack retry path on every backend:
// re-posting an identical batch must not inflate the updates counter.
func TestConformanceRepostDedup(t *testing.T) {
	for _, f := range storeFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			s := f.mk(t)
			s.addUser("u")
			batch := []Report{
				{URL: "a.example/", ASN: 100, Tm: utc},
				{URL: "b.example/", ASN: 200, Tm: utc},
			}
			for i := 0; i < 3; i++ {
				if n, ok := s.ingest("u", utc.Add(time.Duration(i)*time.Minute), batch); n != 2 || !ok {
					t.Fatalf("post %d: %d %v", i, n, ok)
				}
			}
			if st := s.stats(); st.Updates != 2 {
				t.Fatalf("updates after 3 identical posts = %d, want 2", st.Updates)
			}
		})
	}
}

// TestLegacyEmptyTagPath is the regression pin for the legacy store's
// explicit empty-tag contract in isolation (the cross-backend suite above
// exercises it too): tag is always "", notModified and delta never fire,
// whatever If-None-Match says.
func TestLegacyEmptyTagPath(t *testing.T) {
	s := newLegacyStore()
	s.addUser("u")
	if _, ok := s.ingest("u", utc, []Report{{URL: "a.example/", ASN: 100, Tm: utc}}); !ok {
		t.Fatal("ingest rejected")
	}
	full := s.fetchResponse(100, "")
	for _, inm := range []string{"", "0.0", "1.0", full.tag, "garbage"} {
		fr := s.fetchResponse(100, inm)
		if fr.tag != "" || fr.notModified || fr.delta {
			t.Fatalf("inm %q: tag=%q notModified=%v delta=%v, want tagless full body",
				inm, fr.tag, fr.notModified, fr.delta)
		}
		if !bytes.Equal(fr.body, full.body) {
			t.Fatalf("inm %q: body differs from unconditional fetch", inm)
		}
	}
}
