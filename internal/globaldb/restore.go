package globaldb

import (
	"sort"
	"strconv"
	"time"

	"csaw/internal/globaldb/storage"
)

// Snapshot export/restore for the sharded store. exportState serializes
// everything a restart must reproduce — users, reports, the dedup-aware
// updates counter, the revocation epoch, and each AS index's version
// counter. Restoring the exact counters (rather than replaying writes and
// recomputing) is what keeps validator tags stable across a restart: a tag
// names a (version, revocation-epoch) pair, so a client that fetched before
// the crash must see the same tag for the same aggregation after it.

// nanoOf converts a store timestamp for serialization. The zero time maps
// to 0 (time.Time{}.UnixNano() is outside the representable range); a real
// instant exactly at the 1970 epoch never occurs under the vtime clock.
func nanoOf(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// timeOf inverts nanoOf. The .UTC() matters: time.Unix returns a
// Local-zone instant, and a zone change would alter the JSON encoding of
// every served body even though the instant is the same.
func timeOf(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// stagesToStorage converts wire stages, preserving nil-ness (nil and empty
// marshal differently in served entries).
func stagesToStorage(ws []WireStage) []storage.Stage {
	if ws == nil {
		return nil
	}
	out := make([]storage.Stage, len(ws))
	for i, s := range ws {
		out[i] = storage.Stage{Type: s.Type, Detail: s.Detail}
	}
	return out
}

func stagesFromStorage(ss []storage.Stage) []WireStage {
	if ss == nil {
		return nil
	}
	out := make([]WireStage, len(ss))
	for i, s := range ss {
		out[i] = WireStage{Type: s.Type, Detail: s.Detail}
	}
	return out
}

func reportsToStorage(rs []Report) []storage.Report {
	out := make([]storage.Report, len(rs))
	for i, r := range rs {
		out[i] = storage.Report{URL: r.URL, ASN: r.ASN, Stages: stagesToStorage(r.Stages), Tm: nanoOf(r.Tm)}
	}
	return out
}

func reportsFromStorage(rs []storage.Report) []Report {
	out := make([]Report, len(rs))
	for i, r := range rs {
		out[i] = Report{URL: r.URL, ASN: r.ASN, Stages: stagesFromStorage(r.Stages), Tm: timeOf(r.Tm)}
	}
	return out
}

// exportState snapshots the full store. Users, their reports, and AS
// versions are emitted in sorted order so the snapshot is a deterministic
// function of store contents. Safe to call concurrently with reads; the
// durable store serializes it against writes.
func (s *shardedStore) exportState() *storage.State {
	st := &storage.State{Updates: s.updates.Load(), RevEpoch: s.revEpoch.Load()}
	type user struct {
		uuid string
		cs   *clientState
	}
	var all []user
	for i := range s.users {
		sh := &s.users[i]
		sh.mu.RLock()
		for uuid, cs := range sh.m {
			all = append(all, user{uuid, cs})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a].uuid < all[b].uuid })
	for _, u := range all {
		us := storage.UserState{UUID: u.uuid, Revoked: u.cs.revoked.Load()}
		u.cs.mu.Lock()
		keys := make([]string, 0, len(u.cs.reports))
		for k := range u.cs.reports {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r := u.cs.reports[k]
			us.Reports = append(us.Reports, storage.StoredReport{
				URL: r.url, ASN: r.asn, Stages: stagesToStorage(r.stages),
				Tm: nanoOf(r.tm), Tp: nanoOf(r.tp),
			})
		}
		u.cs.mu.Unlock()
		st.Users = append(st.Users, us)
	}
	for i := range s.index {
		sh := &s.index[i]
		sh.mu.RLock()
		for asn, idx := range sh.m {
			st.ASVersions = append(st.ASVersions, storage.ASVersion{ASN: asn, Version: idx.version.Load()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(st.ASVersions, func(a, b int) bool { return st.ASVersions[a].ASN < st.ASVersions[b].ASN })
	return st
}

// newShardedFromState rebuilds a store from a snapshot. Single-threaded
// (runs before the server is attached), so it can fill client state and the
// AS indexes without the ingest path's two-phase locking.
func newShardedFromState(st *storage.State) *shardedStore {
	s := newShardedStore()
	s.updates.Store(st.Updates)
	s.revEpoch.Store(st.RevEpoch)
	for _, us := range st.Users {
		s.addUser(us.UUID)
		cs := s.lookupClient(us.UUID)
		cs.revoked.Store(us.Revoked)
		cs.mu.Lock()
		// Keep the snapshot's slice order: ranging over cs.reports here
		// would bake map order into the index-fill below.
		reports := make([]*clientReport, 0, len(us.Reports))
		for _, r := range us.Reports {
			rep := &clientReport{
				url: r.URL, asn: r.ASN, stages: stagesFromStorage(r.Stages),
				tm: timeOf(r.Tm), tp: timeOf(r.Tp),
			}
			cs.reports[r.URL+"|"+strconv.Itoa(r.ASN)] = rep
			cs.asns[r.ASN] = true
			reports = append(reports, rep)
		}
		cs.d.Store(int64(len(cs.reports)))
		cs.mu.Unlock()
		for _, rep := range reports {
			idx := s.asIndexFor(rep.asn, true)
			idx.mu.Lock()
			byUUID := idx.byURL[rep.url]
			if byUUID == nil {
				byUUID = make(map[string]indexed)
				idx.byURL[rep.url] = byUUID
			}
			byUUID[us.UUID] = indexed{rep: rep, cs: cs}
			idx.mu.Unlock()
		}
	}
	// Restore the exact version counters last: asIndexFor above created the
	// indexes at version 0, and tags must match the pre-snapshot server's.
	for _, av := range st.ASVersions {
		s.asIndexFor(av.ASN, true).version.Store(av.Version)
	}
	return s
}
