package globaldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"csaw/internal/globaldb/storage"
)

// StoreOptions selects the server's storage backend.
type StoreOptions struct {
	// Dir is the durability directory holding the write-ahead log and
	// snapshots. Empty disables the on-disk log: mutations are applied (and,
	// when Replicated, streamed) but nothing survives a restart.
	Dir string
	// SnapshotEvery compacts after this many logged records: the store state
	// is written as a snapshot and the log truncated, bounding both recovery
	// time and log size. 0 selects the default (4096); negative disables
	// compaction.
	SnapshotEvery int
	// Replicated attaches an in-memory replication feed mirroring every
	// logged record, served on PathRepl for followers to pull.
	Replicated bool
}

const (
	defaultSnapshotEvery = 4096
	walFileName          = "wal.log"
	snapshotFileName     = "snapshot"
)

// durableStore wraps the sharded store with write-ahead logging: every
// mutation request is logged (and streamed to the replication feed) before
// it is applied, so replaying snapshot + log tail reproduces the exact
// store state — including the dedup-aware updates counter and the version
// counters behind validator tags. The log records requests, not effects: a
// no-op request (duplicate report, ingest for an unknown uuid) replays to
// the same no-op because replay preserves order.
//
// Durability is fail-stop: if an append or compaction fails, the error is
// latched, logging stops, and the in-memory store keeps serving. Err
// surfaces the latched error so operators (and tests) can tell a durable
// run from a degraded one.
type durableStore struct {
	mu    sync.Mutex // serializes mutations with their log appends
	inner *shardedStore
	log   *storage.Log
	feed  *storage.Feed
	dir   string

	snapshotEvery int
	sinceSnap     int
	recovered     int64 // log records replayed at open, observable in tests
	lastErr       error
}

// newDurableStore opens (or creates) the store at o.Dir, recovering state
// from the newest snapshot plus the log tail. A corrupt log tail (torn
// write from a crash) is truncated at the last valid record; any other
// error aborts the open.
func newDurableStore(o StoreOptions) (*durableStore, error) {
	d := &durableStore{dir: o.Dir, snapshotEvery: o.SnapshotEvery}
	if d.snapshotEvery == 0 {
		d.snapshotEvery = defaultSnapshotEvery
	}
	if o.Replicated {
		d.feed = storage.NewFeed()
	}
	if o.Dir == "" {
		d.inner = newShardedStore()
		return d, nil
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	st, err := storage.ReadSnapshot(d.snapPath())
	if err != nil {
		return nil, fmt.Errorf("globaldb: recover snapshot: %w", err)
	}
	if st != nil {
		d.inner = newShardedFromState(st)
	} else {
		d.inner = newShardedStore()
	}
	good, err := storage.ReplayFile(d.walPath(), func(rec *storage.Record) error {
		applyRecord(d.inner, rec)
		d.recovered++
		return nil
	})
	if err != nil && !errors.Is(err, storage.ErrCorrupt) {
		return nil, fmt.Errorf("globaldb: replay wal: %w", err)
	}
	torn := err != nil
	d.log, err = storage.OpenLog(d.walPath())
	if err != nil {
		return nil, err
	}
	if torn {
		if err := d.log.Truncate(good); err != nil {
			closeErr := d.log.Close()
			return nil, fmt.Errorf("globaldb: truncate torn wal: %v (close: %v)", err, closeErr)
		}
	}
	d.sinceSnap = int(d.recovered)
	return d, nil
}

func (d *durableStore) walPath() string  { return filepath.Join(d.dir, walFileName) }
func (d *durableStore) snapPath() string { return filepath.Join(d.dir, snapshotFileName) }

// applyRecord replays one logged mutation through the normal store paths.
// Shared by WAL recovery and follower replication, so a replica converges
// to the primary's exact state (ingest return values are meaningless during
// replay — the original caller is long gone).
func applyRecord(s store, rec *storage.Record) {
	switch rec.Kind {
	case storage.KindAddUser:
		s.addUser(rec.UUID)
	case storage.KindIngest:
		s.ingest(rec.UUID, timeOf(rec.Now), reportsFromStorage(rec.Reports))
	case storage.KindRevoke:
		s.revoke(rec.UUID)
	}
}

// record logs one mutation (and mirrors it to the feed) before the caller
// applies it. Caller holds d.mu.
func (d *durableStore) record(rec *storage.Record) {
	if d.feed != nil {
		d.feed.Append(rec)
	}
	if d.log == nil || d.lastErr != nil {
		return
	}
	if err := d.log.Append(rec); err != nil {
		d.lastErr = err
		return
	}
	d.sinceSnap++
}

// maybeCompactLocked compacts when the log grew past the snapshot cadence.
// Called after the triggering mutation has been applied — compacting from
// record() would snapshot state that misses the mutation whose record the
// truncation is about to drop. Caller holds d.mu.
func (d *durableStore) maybeCompactLocked() {
	if d.log == nil || d.lastErr != nil || d.snapshotEvery <= 0 || d.sinceSnap < d.snapshotEvery {
		return
	}
	d.compactLocked()
}

// compactLocked writes the current state as a snapshot and truncates the
// log. The snapshot rename is atomic and the log is only truncated after
// the snapshot landed, so a crash between the two replays the (now
// redundant) log tail onto the snapshot — reapplying an ingest is
// idempotent thanks to the dedup key. Caller holds d.mu.
func (d *durableStore) compactLocked() {
	if err := storage.WriteSnapshot(d.snapPath(), d.inner.exportState()); err != nil {
		d.lastErr = err
		return
	}
	if err := d.log.Truncate(0); err != nil {
		d.lastErr = err
		return
	}
	d.sinceSnap = 0
}

// Err returns the latched durability error, if any.
func (d *durableStore) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastErr
}

func (d *durableStore) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return d.lastErr
	}
	if err := d.log.Close(); err != nil {
		return err
	}
	d.log = nil
	return d.lastErr
}

func (d *durableStore) addUser(uuid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.record(&storage.Record{Kind: storage.KindAddUser, UUID: uuid})
	d.inner.addUser(uuid)
	d.maybeCompactLocked()
}

func (d *durableStore) ingest(uuid string, now time.Time, reports []Report) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.record(&storage.Record{
		Kind: storage.KindIngest, UUID: uuid, Now: nanoOf(now),
		Reports: reportsToStorage(reports),
	})
	n, ok := d.inner.ingest(uuid, now, reports)
	d.maybeCompactLocked()
	return n, ok
}

func (d *durableStore) revoke(uuid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.record(&storage.Record{Kind: storage.KindRevoke, UUID: uuid})
	d.inner.revoke(uuid)
	d.maybeCompactLocked()
}

// Reads delegate to the sharded store without d.mu: its own sharded locks
// already make reads safe against concurrent (logged) writes.

func (d *durableStore) blockedForAS(asn int) []Entry { return d.inner.blockedForAS(asn) }

func (d *durableStore) fetchResponse(asn int, inm string) fetchResult {
	return d.inner.fetchResponse(asn, inm)
}

func (d *durableStore) stats() Stats { return d.inner.stats() }
