package globaldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"csaw/internal/globaldb/storage"
)

// StoreOptions selects the server's storage backend.
type StoreOptions struct {
	// Dir is the durability directory holding the write-ahead log and
	// snapshots. Empty disables the on-disk log: mutations are applied (and,
	// when Replicated, streamed) but nothing survives a restart.
	Dir string
	// SnapshotEvery compacts after this many logged records: the store state
	// is written as a snapshot and the log truncated, bounding both recovery
	// time and log size. 0 selects the default (4096); negative disables
	// compaction.
	SnapshotEvery int
	// Replicated attaches an in-memory replication feed mirroring every
	// logged record, served on PathRepl for followers to pull.
	Replicated bool
	// Strict makes durability a precondition of acknowledgement: a mutation
	// whose log append fails is rejected (neither applied nor streamed) and
	// the server answers 503 until restart. Without Strict the store keeps
	// the original fail-stop behavior — latch the error, keep applying — which
	// favors availability but can ack a write that will not survive a crash.
	// Promotion and chaos worlds run Strict, because "no acked report lost"
	// is exactly the invariant they assert.
	Strict bool
}

const (
	defaultSnapshotEvery = 4096
	walFileName          = "wal.log"
	snapshotFileName     = "snapshot"
)

// durableStore wraps the sharded store with write-ahead logging: every
// mutation request is logged (and streamed to the replication feed) before
// it is applied, so replaying snapshot + log tail reproduces the exact
// store state — including the dedup-aware updates counter and the version
// counters behind validator tags. The log records requests, not effects: a
// no-op request (duplicate report, ingest for an unknown uuid) replays to
// the same no-op because replay preserves order.
//
// Durability is fail-stop: if an append or compaction fails, the error is
// latched, logging stops, and the in-memory store keeps serving. Err
// surfaces the latched error so operators (and tests) can tell a durable
// run from a degraded one.
type durableStore struct {
	mu    sync.Mutex // serializes mutations with their log appends
	inner *shardedStore
	log   *storage.Log
	feed  *storage.Feed
	dir   string
	opts  StoreOptions // retained for reset()

	snapshotEvery int
	strict        bool
	sinceSnap     int
	recovered     int64 // log records replayed at open, observable in tests
	lastErr       error

	// Term state recovered from (or written to) the record stream: the
	// highest term seen, the leader address it named, and the stream
	// position it began at. Zero means the stream predates promotion — the
	// founding primary's implicit term. recMarks keeps every leadership
	// change in stream order so termAt can name the lineage in effect at any
	// position (valid while the WAL holds the full history, i.e. compaction
	// disabled — which promotion worlds require anyway).
	recTerm   int64
	recLeader string
	recBase   uint64
	recMarks  []TermMark
}

// errNotDurable is returned by strict-mode mutations once durability is
// lost; the server maps it to 503.
var errNotDurable = errors.New("globaldb: write-ahead log unavailable")

// newDurableStore opens (or creates) the store at o.Dir, recovering state
// from the newest snapshot plus the log tail. A corrupt log tail (torn
// write from a crash) is truncated at the last valid record; any other
// error aborts the open.
func newDurableStore(o StoreOptions) (*durableStore, error) {
	d := &durableStore{dir: o.Dir, opts: o, snapshotEvery: o.SnapshotEvery, strict: o.Strict}
	if d.snapshotEvery == 0 {
		d.snapshotEvery = defaultSnapshotEvery
	}
	if o.Replicated {
		d.feed = storage.NewFeed()
	}
	if o.Dir == "" {
		d.inner = newShardedStore()
		return d, nil
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	st, err := storage.ReadSnapshot(d.snapPath())
	if err != nil {
		return nil, fmt.Errorf("globaldb: recover snapshot: %w", err)
	}
	if st != nil {
		d.inner = newShardedFromState(st)
	} else {
		d.inner = newShardedStore()
	}
	// With no snapshot the log is the complete history, so the replication
	// feed can be rebuilt record for record and followers' pull offsets stay
	// valid across a restart. Once a snapshot exists the prefix is gone and a
	// restarted primary's feed restarts at zero (promotion worlds disable
	// compaction for exactly this reason).
	rebuildFeed := d.feed != nil && st == nil
	good, err := storage.ReplayFile(d.walPath(), func(rec *storage.Record) error {
		if rec.Kind == storage.KindTerm {
			if rec.Now > d.recTerm {
				d.recTerm, d.recLeader = rec.Now, rec.UUID
				d.recBase = uint64(d.recovered)
				d.recMarks = append(d.recMarks, TermMark{Term: rec.Now, Leader: rec.UUID, Base: d.recBase})
			}
		}
		applyRecord(d.inner, rec)
		if rebuildFeed {
			d.feed.Append(rec)
		}
		d.recovered++
		return nil
	})
	if err != nil && !errors.Is(err, storage.ErrCorrupt) {
		return nil, fmt.Errorf("globaldb: replay wal: %w", err)
	}
	torn := err != nil
	d.log, err = storage.OpenLog(d.walPath())
	if err != nil {
		return nil, err
	}
	if torn {
		if err := d.log.Truncate(good); err != nil {
			closeErr := d.log.Close()
			return nil, fmt.Errorf("globaldb: truncate torn wal: %v (close: %v)", err, closeErr)
		}
	}
	d.sinceSnap = int(d.recovered)
	return d, nil
}

func (d *durableStore) walPath() string  { return filepath.Join(d.dir, walFileName) }
func (d *durableStore) snapPath() string { return filepath.Join(d.dir, snapshotFileName) }

// applyRecord replays one logged mutation through the normal store paths.
// Shared by WAL recovery and follower replication, so a replica converges
// to the primary's exact state (ingest return values are meaningless during
// replay — the original caller is long gone).
func applyRecord(s store, rec *storage.Record) {
	switch rec.Kind {
	case storage.KindAddUser:
		s.addUser(rec.UUID)
	case storage.KindIngest:
		s.ingest(rec.UUID, timeOf(rec.Now), reportsFromStorage(rec.Reports))
	case storage.KindRevoke:
		s.revoke(rec.UUID)
	case storage.KindTerm:
		// Leadership marker: no store mutation. Term state is tracked by the
		// durable layer, which sees the record before it gets here.
	}
}

// record logs one mutation before the caller applies it, then mirrors it to
// the feed. The log write comes first: a record must never enter the
// replication stream unless it is durable locally, or a crashed primary
// could restart without records its followers hold. In strict mode a failed
// append rejects the mutation (the caller must not apply or acknowledge
// it); otherwise the error is latched and the mutation proceeds unlogged.
// Caller holds d.mu.
func (d *durableStore) record(rec *storage.Record) error {
	if d.log != nil && d.lastErr == nil {
		if err := d.log.Append(rec); err != nil {
			d.lastErr = err
		} else {
			d.sinceSnap++
		}
	}
	if d.strict && d.lastErr != nil {
		return errNotDurable
	}
	if d.feed != nil {
		d.feed.Append(rec)
	}
	return nil
}

// absorb logs, streams, and applies one record exactly as received. It is
// the follower-side counterpart of the mutation methods: replication and
// push reconciliation hand records here so a follower's WAL and feed mirror
// the leader's stream frame for frame (EncodeRecord is a pure function, so
// re-encoding reproduces identical bytes). Term records update the tracked
// term instead of the store.
func (d *durableStore) absorb(rec *storage.Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var base uint64
	if d.feed != nil {
		base = d.feed.Head() // position the record lands at, if it does
	}
	if err := d.record(rec); err != nil {
		return err
	}
	if rec.Kind == storage.KindTerm && rec.Now > d.recTerm {
		d.recTerm, d.recLeader, d.recBase = rec.Now, rec.UUID, base
		d.recMarks = append(d.recMarks, TermMark{Term: rec.Now, Leader: rec.UUID, Base: base})
	}
	applyRecord(d.inner, rec)
	d.maybeCompactLocked()
	return nil
}

// startTerm appends a term record announcing leader as the writer for term,
// through the same durable path as any mutation. Returns the feed position
// the term begins at (the record's own sequence number).
func (d *durableStore) startTerm(term int64, leader string) (base uint64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.feed != nil {
		base = d.feed.Head()
	}
	rec := &storage.Record{Kind: storage.KindTerm, UUID: leader, Now: term}
	if err := d.record(rec); err != nil {
		return 0, err
	}
	if term > d.recTerm {
		d.recTerm, d.recLeader, d.recBase = term, leader, base
		d.recMarks = append(d.recMarks, TermMark{Term: term, Leader: leader, Base: base})
	}
	d.maybeCompactLocked()
	return base, nil
}

// termState returns the highest term in the stream, its leader address, and
// the stream position it began at.
func (d *durableStore) termState() (int64, string, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recTerm, d.recLeader, d.recBase
}

// termAt returns the lineage in effect for the stream prefix [0, pos): the
// last term record strictly below pos. (0, "") is the founding lineage.
func (d *durableStore) termAt(pos uint64) (term int64, leader string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.recMarks {
		if m.Base >= pos {
			break
		}
		term, leader = m.Term, m.Leader
	}
	return term, leader
}

// reset wipes the store to empty — log truncated, snapshot removed, feed
// and in-memory state fresh, latched errors cleared — so the node can
// resync a new leader's stream from sequence zero. Replaying that stream
// rebuilds not just the aggregate state but the exact version counters
// behind validator tags, which is what makes replicas byte-identical after
// a heal.
func (d *durableStore) reset() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log != nil {
		if err := d.log.Truncate(0); err != nil {
			return err
		}
	}
	if d.dir != "" {
		if err := os.Remove(d.snapPath()); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	hist := d.inner.histMax.Load()
	d.inner = newShardedStore()
	d.inner.histMax.Store(hist)
	if d.feed != nil {
		d.feed.Reset()
	}
	d.sinceSnap = 0
	d.recovered = 0
	d.lastErr = nil
	d.recTerm, d.recLeader, d.recBase = 0, "", 0
	d.recMarks = nil
	return nil
}

// maybeCompactLocked compacts when the log grew past the snapshot cadence.
// Called after the triggering mutation has been applied — compacting from
// record() would snapshot state that misses the mutation whose record the
// truncation is about to drop. Caller holds d.mu.
func (d *durableStore) maybeCompactLocked() {
	if d.log == nil || d.lastErr != nil || d.snapshotEvery <= 0 || d.sinceSnap < d.snapshotEvery {
		return
	}
	d.compactLocked()
}

// compactLocked writes the current state as a snapshot and truncates the
// log. The snapshot rename is atomic and the log is only truncated after
// the snapshot landed, so a crash between the two replays the (now
// redundant) log tail onto the snapshot — reapplying an ingest is
// idempotent thanks to the dedup key. Caller holds d.mu.
func (d *durableStore) compactLocked() {
	if err := storage.WriteSnapshot(d.snapPath(), d.inner.exportState()); err != nil {
		d.lastErr = err
		return
	}
	if err := d.log.Truncate(0); err != nil {
		d.lastErr = err
		return
	}
	d.sinceSnap = 0
}

// Err returns the latched durability error, if any.
func (d *durableStore) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastErr
}

// strictUnavailable reports whether strict mode has latched a durability
// error, i.e. every further mutation will be rejected until restart.
func (d *durableStore) strictUnavailable() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.strict && d.lastErr != nil
}

// tearNext arms the WAL torn-write fault hook for the next append. Reports
// whether a log was present to arm.
func (d *durableStore) tearNext(keep int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return false
	}
	d.log.TearNext(keep)
	return true
}

func (d *durableStore) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return d.lastErr
	}
	if err := d.log.Close(); err != nil {
		return err
	}
	d.log = nil
	return d.lastErr
}

func (d *durableStore) addUser(uuid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.record(&storage.Record{Kind: storage.KindAddUser, UUID: uuid}) != nil {
		return // strict: not durable, not applied; the server answers 503
	}
	d.inner.addUser(uuid)
	d.maybeCompactLocked()
}

func (d *durableStore) ingest(uuid string, now time.Time, reports []Report) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.record(&storage.Record{
		Kind: storage.KindIngest, UUID: uuid, Now: nanoOf(now),
		Reports: reportsToStorage(reports),
	})
	if err != nil {
		return 0, false // strict: rejected before apply; the server answers 503
	}
	n, ok := d.inner.ingest(uuid, now, reports)
	d.maybeCompactLocked()
	return n, ok
}

func (d *durableStore) revoke(uuid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.record(&storage.Record{Kind: storage.KindRevoke, UUID: uuid}) != nil {
		return
	}
	d.inner.revoke(uuid)
	d.maybeCompactLocked()
}

// Reads delegate to the sharded store without d.mu: its own sharded locks
// already make reads safe against concurrent (logged) writes.

func (d *durableStore) blockedForAS(asn int) []Entry { return d.inner.blockedForAS(asn) }

func (d *durableStore) fetchResponse(asn int, inm string) fetchResult {
	return d.inner.fetchResponse(asn, inm)
}

func (d *durableStore) stats() Stats { return d.inner.stats() }

func (d *durableStore) setDeltaHistory(n int) { d.inner.setDeltaHistory(n) }
