package globaldb

import "time"

// store is the server's measurement state: registered users, their blocked-URL
// reports, revocations, and the per-AS aggregation that backs /v1/blocked.
// Two implementations exist: legacyStore, the original single-mutex design the
// seed shipped with (kept as the honest baseline for the fleet throughput
// benchmarks), and shardedStore, the fleet-scale default that shards user and
// per-AS state and serves fetches from cached snapshots.
type store interface {
	// addUser registers a uuid (idempotent).
	addUser(uuid string)
	// ingest folds a client's report batch in. ok is false when the uuid is
	// unknown or revoked. The updates counter is dedup-aware: only the first
	// insertion of a (uuid, url|asn) key counts, so a client re-posting after
	// a lost ack cannot inflate it.
	ingest(uuid string, now time.Time, reports []Report) (accepted int, ok bool)
	// blockedForAS returns the aggregated entries for an AS, sorted by URL.
	blockedForAS(asn int) []Entry
	// fetchResponse returns the marshaled FetchResponse body for an AS — the
	// exact bytes /v1/blocked serves — plus a validator tag for conditional
	// fetches. When the caller's If-None-Match tag (inm) still names the
	// current aggregation, notModified is true and body is nil: at fleet
	// scale most sync rounds hit a converged list, and skipping the body
	// skips the client-side JSON decode that otherwise dominates sync cost.
	// Stores without cheap versioning return tag "" (never notModified).
	fetchResponse(asn int, inm string) (body []byte, tag string, notModified bool)
	// revoke invalidates a uuid's vote (§5).
	revoke(uuid string)
	// stats aggregates the Table-7 numbers.
	stats() Stats
}

// clientReport is one stored (url, asn) measurement. Records are immutable
// once created — a re-report replaces the pointer — so index readers holding
// only a read lock always see a consistent record.
type clientReport struct {
	url    string
	asn    int
	stages []WireStage
	tm     time.Time
	tp     time.Time
}
