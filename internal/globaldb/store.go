package globaldb

import "time"

// store is the server's measurement state: registered users, their blocked-URL
// reports, revocations, and the per-AS aggregation that backs /v1/blocked.
// Two implementations exist: legacyStore, the original single-mutex design the
// seed shipped with (kept as the honest baseline for the fleet throughput
// benchmarks), and shardedStore, the fleet-scale default that shards user and
// per-AS state and serves fetches from cached snapshots.
type store interface {
	// addUser registers a uuid (idempotent).
	addUser(uuid string)
	// ingest folds a client's report batch in. ok is false when the uuid is
	// unknown or revoked. The updates counter is dedup-aware: only the first
	// insertion of a (uuid, url|asn) key counts, so a client re-posting after
	// a lost ack cannot inflate it.
	ingest(uuid string, now time.Time, reports []Report) (accepted int, ok bool)
	// blockedForAS returns the aggregated entries for an AS, sorted by URL.
	blockedForAS(asn int) []Entry
	// fetchResponse serves /v1/blocked for an AS, conditional on the
	// caller's If-None-Match tag (inm). See fetchResult for the contract.
	fetchResponse(asn int, inm string) fetchResult
	// revoke invalidates a uuid's vote (§5).
	revoke(uuid string)
	// stats aggregates the Table-7 numbers.
	stats() Stats
}

// fetchResult is one /v1/blocked answer. When the caller's If-None-Match
// tag still names the current aggregation, notModified is set and body is
// nil: at fleet scale most sync rounds hit a converged list, and skipping
// the body skips the client-side JSON decode that otherwise dominates sync
// cost. When the tag is stale but still in the AS's recorded edit history,
// delta is set and body is a marshaled DeltaResponse carrying only the
// entries that changed since that tag (served only when it is actually
// smaller than the full body). Otherwise body is the full marshaled
// FetchResponse. Stores without cheap versioning return tag "" and never
// set notModified or delta.
type fetchResult struct {
	body        []byte
	tag         string
	notModified bool
	delta       bool
}

// clientReport is one stored (url, asn) measurement. Records are immutable
// once created — a re-report replaces the pointer — so index readers holding
// only a read lock always see a consistent record.
type clientReport struct {
	url    string
	asn    int
	stages []WireStage
	tm     time.Time
	tp     time.Time
}
