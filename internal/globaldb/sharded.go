package globaldb

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"csaw/internal/localdb"
)

// numShards partitions both the uuid table and the per-AS index. Sixteen
// shards keeps lock regions small at O(10k) clients without measurable
// overhead at pilot scale.
const numShards = 16

// shardedStore is the fleet-scale store. Design (see DESIGN.md "scale
// architecture"):
//
//   - User state is sharded by uuid hash. Each client's reports live in its
//     clientState; the report count d and the revoked flag are atomics so the
//     per-AS aggregation can read them without touching any uuid-shard lock.
//   - A per-AS inverted index (asn → url → uuid → report) is sharded by ASN,
//     so report ingestion only locks the client's own state plus the indexes
//     of the ASes in the batch, and BlockedForAS touches one AS's data
//     instead of scanning every client.
//   - Each AS index carries a version counter bumped after every write that
//     could change its aggregation (new/replaced reports, and any change to
//     a reporting client's d). BlockedForAS serves a cached sorted snapshot
//     — entries plus the pre-marshaled /v1/blocked body — and rebuilds only
//     when the version or the global revocation epoch moved. Repeated reads
//     of an unchanged AS never re-aggregate or re-sort (the regression test
//     watches the rebuilds counter).
//
// Lock order: uuid shard → clientState, and snapshot mutex → AS index read
// lock. The uuid-side and AS-side locks are never held together; ingest
// releases the clientState before touching the index, relying on report
// records being immutable-and-replaced.
type shardedStore struct {
	users    [numShards]uuidShard
	index    [numShards]asShard
	updates  atomic.Int64 // unique (uuid, url|asn) keys ever accepted
	revEpoch atomic.Int64 // bumped on revoke; invalidates every snapshot
	rebuilds atomic.Int64 // snapshot recomputations, observable in tests
	histMax  atomic.Int64 // per-AS delta history cap; 0 = deltaHistoryMax
}

// setDeltaHistory raises (or lowers) the per-AS delta edit-history cap.
func (s *shardedStore) setDeltaHistory(n int) { s.histMax.Store(int64(n)) }

type uuidShard struct {
	mu sync.RWMutex
	m  map[string]*clientState
}

// clientState is one registered client's server-side state.
type clientState struct {
	revoked atomic.Bool
	d       atomic.Int64 // len(reports), readable without cs.mu

	mu      sync.Mutex
	reports map[string]*clientReport // "url|asn" → report
	asns    map[int]bool             // ASes this client has reported on
}

type asShard struct {
	mu sync.RWMutex
	m  map[int]*asIndex
}

// asIndex is the inverted per-AS report index plus its snapshot cache.
type asIndex struct {
	asn     int
	version atomic.Int64

	mu    sync.RWMutex
	byURL map[string]map[string]indexed // url → uuid → report

	// Snapshot cache. snapMu also serializes rebuilds so concurrent fetchers
	// of a dirty AS do the aggregation once, and guards the delta history:
	// recording an edit and serving a delta happen in the same critical
	// section as the rebuild, so a delta body is always paired with the tag
	// of the snapshot it was computed against.
	snapMu  sync.Mutex
	snapVer int64
	snapRev int64
	valid   bool
	entries []Entry
	body    []byte
	history []deltaEdit
}

// indexed pairs a report with its owner's state so aggregation can read the
// owner's d and revoked flag without any uuid-shard lookup.
type indexed struct {
	rep *clientReport
	cs  *clientState
}

func newShardedStore() *shardedStore {
	s := &shardedStore{}
	for i := range s.users {
		s.users[i].m = make(map[string]*clientState)
	}
	for i := range s.index {
		s.index[i].m = make(map[int]*asIndex)
	}
	return s
}

func (s *shardedStore) uuidShard(uuid string) *uuidShard {
	h := fnv.New32a()
	h.Write([]byte(uuid))
	return &s.users[h.Sum32()%numShards]
}

func (s *shardedStore) lookupClient(uuid string) *clientState {
	sh := s.uuidShard(uuid)
	sh.mu.RLock()
	cs := sh.m[uuid]
	sh.mu.RUnlock()
	return cs
}

func (s *shardedStore) addUser(uuid string) {
	sh := s.uuidShard(uuid)
	sh.mu.Lock()
	if sh.m[uuid] == nil {
		sh.m[uuid] = &clientState{
			reports: make(map[string]*clientReport),
			asns:    make(map[int]bool),
		}
	}
	sh.mu.Unlock()
}

// asIndexFor returns the index for asn, creating it when create is set.
func (s *shardedStore) asIndexFor(asn int, create bool) *asIndex {
	sh := &s.index[asn%numShards]
	sh.mu.RLock()
	idx := sh.m[asn]
	sh.mu.RUnlock()
	if idx != nil || !create {
		return idx
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx = sh.m[asn]; idx == nil {
		idx = &asIndex{asn: asn, byURL: make(map[string]map[string]indexed)}
		sh.m[asn] = idx
	}
	return idx
}

func (s *shardedStore) ingest(uuid string, now time.Time, reports []Report) (int, bool) {
	cs := s.lookupClient(uuid)
	if cs == nil || cs.revoked.Load() {
		return 0, false
	}

	// Phase 1: fold the batch into the client's own state under cs.mu,
	// grouping index writes per ASN for phase 2.
	type write struct {
		url string
		rep *clientReport
	}
	perASN := make(map[int][]write)
	var affected []int
	accepted, newKeys := 0, 0
	cs.mu.Lock()
	for _, r := range reports {
		if r.URL == "" || r.ASN == 0 {
			continue
		}
		key := r.URL + "|" + strconv.Itoa(r.ASN)
		if _, seen := cs.reports[key]; !seen {
			newKeys++
			cs.asns[r.ASN] = true
		}
		rep := &clientReport{url: r.URL, asn: r.ASN, stages: r.Stages, tm: r.Tm, tp: now}
		cs.reports[key] = rep
		perASN[r.ASN] = append(perASN[r.ASN], write{url: r.URL, rep: rep})
		accepted++
	}
	cs.d.Store(int64(len(cs.reports)))
	if newKeys > 0 {
		// d changed: every AS this client votes in must re-aggregate, not
		// just the ones in this batch.
		affected = make([]int, 0, len(cs.asns))
		for asn := range cs.asns {
			affected = append(affected, asn)
		}
	} else {
		affected = make([]int, 0, len(perASN))
		for asn := range perASN {
			affected = append(affected, asn)
		}
	}
	// Re-aggregation is per-AS and commutative, but a deterministic order
	// keeps snapshot-build timing (and any future tie-break) seed-stable.
	sort.Ints(affected)
	cs.mu.Unlock()

	if accepted == 0 {
		return 0, true
	}
	s.updates.Add(int64(newKeys))

	// Phase 2: apply the grouped writes, one lock acquisition per AS index.
	for asn, ws := range perASN {
		idx := s.asIndexFor(asn, true)
		idx.mu.Lock()
		for _, w := range ws {
			byUUID := idx.byURL[w.url]
			if byUUID == nil {
				byUUID = make(map[string]indexed)
				idx.byURL[w.url] = byUUID
			}
			byUUID[uuid] = indexed{rep: w.rep, cs: cs}
		}
		idx.mu.Unlock()
	}
	// Version bumps happen after the writes land so a concurrent rebuild
	// that saw pre-write data also saw the pre-bump version and will rebuild
	// again on the next read.
	for _, asn := range affected {
		if idx := s.asIndexFor(asn, false); idx != nil {
			idx.version.Add(1)
		}
	}
	return accepted, true
}

func (s *shardedStore) blockedForAS(asn int) []Entry {
	entries, _, _ := s.snapshot(asn)
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out
}

func (s *shardedStore) fetchResponse(asn int, inm string) fetchResult {
	rev := s.revEpoch.Load()
	idx := s.asIndexFor(asn, false)
	if idx == nil {
		// No reports yet: version 0. The tag still varies with the
		// revocation epoch so it can never collide with a post-write tag.
		tag := snapTag(0, rev)
		if inm != "" && inm == tag {
			return fetchResult{tag: tag, notModified: true}
		}
		return fetchResult{body: emptyFetchBody(asn), tag: tag}
	}
	ver := idx.version.Load()
	idx.snapMu.Lock()
	defer idx.snapMu.Unlock()
	s.rebuildLocked(idx, ver, rev)
	tag := snapTag(idx.snapVer, idx.snapRev)
	if inm != "" {
		if inm == tag {
			return fetchResult{tag: tag, notModified: true}
		}
		if body := idx.deltaBodyLocked(inm); body != nil {
			return fetchResult{body: body, tag: tag, delta: true}
		}
	}
	return fetchResult{body: idx.body, tag: tag}
}

// snapshot returns the cached aggregation for asn, rebuilding it only when a
// write or revocation moved the AS's version since the last build, plus the
// validator tag naming the (version, revocation-epoch) pair the snapshot was
// built at. The returned slice and body are shared and must not be mutated.
func (s *shardedStore) snapshot(asn int) ([]Entry, []byte, string) {
	rev := s.revEpoch.Load()
	idx := s.asIndexFor(asn, false)
	if idx == nil {
		return nil, emptyFetchBody(asn), snapTag(0, rev)
	}
	// Load the version before reading index data: a write landing between
	// the two makes the cached version stale, forcing a harmless rebuild on
	// the next read rather than ever serving stale data as fresh.
	ver := idx.version.Load()
	idx.snapMu.Lock()
	defer idx.snapMu.Unlock()
	s.rebuildLocked(idx, ver, rev)
	return idx.entries, idx.body, snapTag(idx.snapVer, idx.snapRev)
}

// rebuildLocked brings idx's snapshot cache up to (ver, rev), recording the
// change set against the previous snapshot in the delta history. No-op when
// the cache is already at that state. Caller holds idx.snapMu.
func (s *shardedStore) rebuildLocked(idx *asIndex, ver, rev int64) {
	if idx.valid && idx.snapVer == ver && idx.snapRev == rev {
		return
	}
	s.rebuilds.Add(1)
	entries := s.aggregate(idx)
	body, err := json.Marshal(FetchResponse{ASN: idx.asn, Entries: entries})
	if err != nil {
		body = emptyFetchBody(idx.asn)
	}
	if idx.valid {
		idx.recordEditLocked(snapTag(idx.snapVer, idx.snapRev), idx.entries, entries, int(s.histMax.Load()))
	}
	idx.entries, idx.body = entries, body
	idx.snapVer, idx.snapRev, idx.valid = ver, rev, true
}

// snapTag renders a snapshot's (version, revocation epoch) as the ETag
// served by /v1/blocked. Both counters only grow, so equal tags always name
// the same aggregation state.
func snapTag(ver, rev int64) string {
	return strconv.FormatInt(ver, 10) + "." + strconv.FormatInt(rev, 10)
}

// aggregate computes the §5 voting aggregation for one AS. Everything that
// feeds the output is made order-independent so same-seed fleet runs produce
// byte-identical blocked lists: URLs are sorted, vote contributions are
// summed in sorted order (float addition is not associative), and the
// representative-stages tie between equal post times breaks on uuid.
func (s *shardedStore) aggregate(idx *asIndex) []Entry {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	urls := make([]string, 0, len(idx.byURL))
	for u := range idx.byURL {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	entries := make([]Entry, 0, len(urls))
	votes := make([]float64, 0, 16)
	for _, u := range urls {
		e := Entry{URL: u, ASN: idx.asn}
		votes = votes[:0]
		bestUUID := ""
		for uuid, ir := range idx.byURL[u] {
			if ir.cs.revoked.Load() {
				continue
			}
			d := ir.cs.d.Load()
			if d == 0 {
				continue
			}
			votes = append(votes, 1/float64(d))
			e.Reporters++
			r := ir.rep
			switch {
			case bestUUID == "" || r.tp.After(e.LastTp):
				e.LastTp, e.Stages, bestUUID = r.tp, r.stages, uuid
			case r.tp.Equal(e.LastTp) && uuid < bestUUID:
				e.Stages, bestUUID = r.stages, uuid
			}
		}
		if e.Reporters == 0 {
			continue
		}
		sort.Float64s(votes)
		for _, v := range votes {
			e.Votes += v
		}
		entries = append(entries, e)
	}
	return entries
}

// emptyFetchBody is the no-entries body. Entries is an empty slice, not
// nil, so the bytes match what the legacy store serves for the same AS
// ("entries":[]) — the store conformance suite compares bodies across
// backends byte-for-byte.
func emptyFetchBody(asn int) []byte {
	b, _ := json.Marshal(FetchResponse{ASN: asn, Entries: []Entry{}})
	return b
}

func (s *shardedStore) revoke(uuid string) {
	if cs := s.lookupClient(uuid); cs != nil {
		cs.revoked.Store(true)
	}
	// Revocations are rare (§5 abuse response); one epoch bump invalidating
	// every AS snapshot is simpler than tracking the client's AS set here.
	s.revEpoch.Add(1)
}

func (s *shardedStore) stats() Stats {
	st := Stats{ByType: make(map[string]int)}
	urls := make(map[string]bool)
	domains := make(map[string]bool)
	ases := make(map[int]bool)
	types := make(map[string]bool)
	urlType := make(map[string]string)
	// Fold in sorted client and report order: urlType is last-write-wins
	// per URL, so folding in map order would let the shard map's iteration
	// order pick the winning class when reports disagree.
	type uuidState struct {
		uuid string
		cs   *clientState
	}
	for i := range s.users {
		sh := &s.users[i]
		sh.mu.RLock()
		states := make([]uuidState, 0, len(sh.m))
		for uuid, cs := range sh.m {
			states = append(states, uuidState{uuid, cs})
		}
		st.Users += len(sh.m)
		sh.mu.RUnlock()
		sort.Slice(states, func(a, b int) bool { return states[a].uuid < states[b].uuid })
		for _, us := range states {
			cs := us.cs
			if cs.revoked.Load() {
				continue
			}
			cs.mu.Lock()
			keys := make([]string, 0, len(cs.reports))
			for k := range cs.reports {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				statsFold(cs.reports[k], urls, domains, ases, types, urlType)
			}
			cs.mu.Unlock()
		}
	}
	for _, cls := range urlType {
		st.ByType[cls]++
	}
	st.BlockedURLs = len(urls)
	st.BlockedDomains = len(domains)
	st.ASes = len(ases)
	st.BlockTypes = len(types)
	st.Updates = int(s.updates.Load())
	return st
}

// statsFold folds one report into the StatsSnapshot accumulators (shared with
// legacyStore).
func statsFold(r *clientReport, urls, domains map[string]bool, ases map[int]bool,
	types map[string]bool, urlType map[string]string) {
	urls[r.url] = true
	host, _ := localdb.SplitURL(r.url)
	domains[host] = true
	ases[r.asn] = true
	cls := primaryClass(r.stages)
	types[cls] = true
	urlType[r.url] = cls
}
