package globaldb

import (
	"encoding/json"
	"sort"
)

// Versioned delta sync. Each AS index remembers the change set between
// consecutive snapshot builds, keyed by the validator tag the previous
// snapshot was served under. A conditional fetch whose If-None-Match tag is
// still in that history gets a DeltaResponse — only the entries that changed
// since the client's snapshot — instead of the full list, so the bytes per
// sync round stay flat once the blocked-URL universe converges. Tags not in
// the history (too old, from another store, or never served) fall back to
// the full body; correctness never depends on the history being long enough.

// deltaHistoryMax is the default cap on the per-AS edit history. Sixty-four
// observed snapshot transitions cover many sync intervals of drift for a
// slow client; anything older pays one full-body fetch and re-enters the
// delta path with a fresh tag. At fleet scale the interval between one
// client's consecutive syncs spans far more than 64 rebuilds (every other
// client's fetches advance the chain), so fleet worlds raise the cap with
// Server.SetDeltaHistory to keep converging-phase syncs on the delta path.
const deltaHistoryMax = 64

// deltaEdit is the change set from the snapshot served under tag from to
// the next built snapshot. changed holds new or modified entries (sorted by
// URL, like the snapshots they diff); removed holds URLs that disappeared.
type deltaEdit struct {
	from    string
	changed []Entry
	removed []string
}

// recordEditLocked appends the old→new change set to idx's history. Caller
// holds idx.snapMu. Empty edits are recorded too: they keep the tag chain
// unbroken so a client holding fromTag can still be served a delta after a
// rebuild that changed nothing (e.g. a version bump that re-aggregated to
// the same list).
func (idx *asIndex) recordEditLocked(fromTag string, old, new []Entry, max int) {
	if max <= 0 {
		max = deltaHistoryMax
	}
	changed, removed := diffEntries(old, new)
	idx.history = append(idx.history, deltaEdit{from: fromTag, changed: changed, removed: removed})
	if len(idx.history) > max {
		// Copy the tail so the dropped head doesn't pin the backing array.
		idx.history = append([]deltaEdit(nil), idx.history[len(idx.history)-max:]...)
	}
}

// diffEntries walks two URL-sorted entry slices and returns the entries of
// new that are absent-or-different in old, plus the URLs of old absent from
// new.
func diffEntries(old, new []Entry) (changed []Entry, removed []string) {
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		switch {
		case j >= len(new) || (i < len(old) && old[i].URL < new[j].URL):
			removed = append(removed, old[i].URL)
			i++
		case i >= len(old) || new[j].URL < old[i].URL:
			changed = append(changed, new[j])
			j++
		default:
			if !entryEqual(old[i], new[j]) {
				changed = append(changed, new[j])
			}
			i++
			j++
		}
	}
	return changed, removed
}

func entryEqual(a, b Entry) bool {
	if a.URL != b.URL || a.ASN != b.ASN || a.Votes != b.Votes ||
		a.Reporters != b.Reporters || !a.LastTp.Equal(b.LastTp) {
		return false
	}
	if (a.Stages == nil) != (b.Stages == nil) || len(a.Stages) != len(b.Stages) {
		return false
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			return false
		}
	}
	return true
}

// deltaBodyLocked builds the marshaled DeltaResponse for a client at tag
// inm, or nil when the tag is not in the history or the delta would not be
// smaller than the current full body. Caller holds idx.snapMu (the history
// and idx.body are read in the same critical section that rebuilt them, so
// the delta is exact for the tag pair it names).
func (idx *asIndex) deltaBodyLocked(inm string) []byte {
	start := -1
	for i := range idx.history {
		if idx.history[i].from == inm {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	// Fold the edit suffix: later edits win per URL, and a URL cannot end up
	// in both sets.
	changed := make(map[string]Entry)
	removed := make(map[string]bool)
	for _, e := range idx.history[start:] {
		for _, c := range e.changed {
			changed[c.URL] = c
			delete(removed, c.URL)
		}
		for _, u := range e.removed {
			removed[u] = true
			delete(changed, u)
		}
	}
	dr := DeltaResponse{ASN: idx.asn, Since: inm}
	urls := make([]string, 0, len(changed))
	for u := range changed {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		dr.Changed = append(dr.Changed, changed[u])
	}
	for u := range removed {
		dr.Removed = append(dr.Removed, u)
	}
	sort.Strings(dr.Removed)
	body, err := json.Marshal(dr)
	if err != nil || len(body) >= len(idx.body) {
		return nil
	}
	return body
}

// mergeDelta applies a DeltaResponse to a URL-sorted base list and returns
// a fresh URL-sorted result equal to the server's current full list. Used
// by Client; base is never mutated.
func mergeDelta(base []Entry, changed []Entry, removed []string) []Entry {
	rm := make(map[string]bool, len(removed))
	for _, u := range removed {
		rm[u] = true
	}
	out := make([]Entry, 0, len(base)+len(changed))
	i, j := 0, 0
	for i < len(base) || j < len(changed) {
		switch {
		case j >= len(changed) || (i < len(base) && base[i].URL < changed[j].URL):
			if !rm[base[i].URL] {
				out = append(out, base[i])
			}
			i++
		case i >= len(base) || changed[j].URL < base[i].URL:
			out = append(out, changed[j])
			j++
		default:
			out = append(out, changed[j])
			i++
			j++
		}
	}
	return out
}
