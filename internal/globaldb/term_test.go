package globaldb

import (
	"bytes"
	"csaw/internal/httpx"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"csaw/internal/globaldb/storage"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// promoOptions is the store shape every promotion world uses: full history
// kept (no compaction), a replication feed, and strict durability.
func promoOptions(dir string) StoreOptions {
	return StoreOptions{Dir: dir, SnapshotEvery: -1, Replicated: true, Strict: true}
}

// TestTermMarksAndRecovery pins the lineage machinery end to end: StartTerm
// persists a KindTerm record through the WAL, TermAt reports the lineage in
// effect at every stream offset, and a restart re-derives the same lineage
// from the log alone.
func TestTermMarksAndRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := vtime.New(1000)
	srv, err := NewDurableServer(clock, nil, promoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Stream: [0] addUser, [1] ingest under the founding lineage, [2] term 1
	// record, [3] ingest under term 1, [4] term 2 record.
	srv.store.addUser("u")
	if _, ok := srv.store.ingest("u", clock.Now(), []Report{{URL: "a.example/", ASN: 7, Tm: clock.Now()}}); !ok {
		t.Fatal("ingest rejected")
	}
	if err := srv.StartTerm(1, "30.0.0.1:80"); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.store.ingest("u", clock.Now(), []Report{{URL: "b.example/", ASN: 7, Tm: clock.Now()}}); !ok {
		t.Fatal("ingest under term 1 rejected")
	}
	if err := srv.StartTerm(2, "30.0.0.2:80"); err != nil {
		t.Fatal(err)
	}

	if term, leader, base := srv.TermState(); term != 2 || leader != "30.0.0.2:80" || base != 4 {
		t.Fatalf("TermState = (%d, %q, %d), want (2, 30.0.0.2:80, 4)", term, leader, base)
	}
	wantAt := []struct {
		pos    uint64
		term   int64
		leader string
	}{
		{0, 0, ""}, {2, 0, ""}, // the term record at its own base is not yet in the prefix
		{3, 1, "30.0.0.1:80"}, {4, 1, "30.0.0.1:80"},
		{5, 2, "30.0.0.2:80"}, {99, 2, "30.0.0.2:80"},
	}
	check := func(stage string) {
		for _, w := range wantAt {
			if term, leader := srv.TermAt(w.pos); term != w.term || leader != w.leader {
				t.Fatalf("%s: TermAt(%d) = (%d, %q), want (%d, %q)", stage, w.pos, term, leader, w.term, w.leader)
			}
		}
	}
	check("live")

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err = NewDurableServer(clock, nil, promoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if term, leader, _ := srv.TermState(); term != 2 || leader != "30.0.0.2:80" {
		t.Fatalf("recovered TermState = (%d, %q), want (2, 30.0.0.2:80)", term, leader)
	}
	check("recovered")
	if head := srv.ReplicationFeed().Head(); head != 5 {
		t.Fatalf("recovered feed head = %d, want 5", head)
	}
}

// TestFenceLeavesLineageAlone is the lineage/fence separation: a fence hint
// rejects writes and repoints writers, but must not make the node claim a
// stream it never pulled.
func TestFenceLeavesLineageAlone(t *testing.T) {
	clock := vtime.New(1000)
	srv := NewServer(clock, nil)
	srv.Fence(7, "30.0.0.3:80")
	if !srv.Fenced() {
		t.Fatal("Fence did not fence")
	}
	if term, leader, _ := srv.TermState(); term != 0 || leader != "" {
		t.Fatalf("fence polluted lineage: (%d, %q)", term, leader)
	}
	// The hint ratchets: a stale lower-term fence cannot downgrade it.
	srv.Fence(5, "30.0.0.9:80")

	body, _ := json.Marshal(ReportRequest{UUID: "u", Reports: []Report{{URL: "x.example/", ASN: 1, Tm: clock.Now()}}})
	req := postJSON("POST", "globaldb.example", PathReport, body)
	resp := srv.Handler().ServeHTTP(req, netem.Flow{})
	if resp.StatusCode != StatusFenced {
		t.Fatalf("fenced report: status %d, want %d", resp.StatusCode, StatusFenced)
	}
	if got := resp.Header.Get(TermHeader); got != "7" {
		t.Fatalf("fenced term hint = %q, want 7", got)
	}
	if got := resp.Header.Get(LeaderHeader); got != "30.0.0.3:80" {
		t.Fatalf("fenced leader hint = %q, want 30.0.0.3:80", got)
	}

	// StartTerm lifts the fence and installs the lineage.
	if err := srv.StartTerm(8, "30.0.0.4:80"); err != nil {
		t.Fatal(err)
	}
	if srv.Fenced() {
		t.Fatal("StartTerm did not lift the fence")
	}
	if term, leader, _ := srv.TermState(); term != 8 || leader != "30.0.0.4:80" {
		t.Fatalf("post-promotion lineage = (%d, %q)", term, leader)
	}
}

// TestStrictTornWriteRejects pins strict durability: a torn WAL append
// rejects the mutation (no ack, no feed entry), latches the durability
// error, and turns the client-facing rejection into a 503.
func TestStrictTornWriteRejects(t *testing.T) {
	clock := vtime.New(1000)
	srv, err := NewDurableServer(clock, nil, promoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err == nil || !errors.Is(err, storage.ErrInjectedTear) {
			t.Errorf("close after torn write: %v, want the latched tear", err)
		}
	}()
	srv.store.addUser("u")
	headBefore := srv.ReplicationFeed().Head()

	if !srv.InjectTornWrite(5) {
		t.Fatal("InjectTornWrite found no WAL")
	}
	if _, ok := srv.store.ingest("u", clock.Now(), []Report{{URL: "t.example/", ASN: 2, Tm: clock.Now()}}); ok {
		t.Fatal("strict store acked a torn write")
	}
	if head := srv.ReplicationFeed().Head(); head != headBefore {
		t.Fatalf("torn write leaked into the feed: head %d -> %d", headBefore, head)
	}
	if err := srv.DurabilityErr(); !errors.Is(err, storage.ErrInjectedTear) {
		t.Fatalf("DurabilityErr = %v, want ErrInjectedTear", err)
	}

	body, _ := json.Marshal(ReportRequest{UUID: "u", Reports: []Report{{URL: "y.example/", ASN: 2, Tm: clock.Now()}}})
	resp := srv.Handler().ServeHTTP(postJSON("POST", "globaldb.example", PathReport, body), netem.Flow{})
	if resp.StatusCode != 503 {
		t.Fatalf("strict-degraded report: status %d, want 503", resp.StatusCode)
	}
}

// TestResetForResyncKeepsDurablePath is the regression pin for the chaos
// harness's worst bug: after ResetForResync the server's mutation path must
// still run through the WAL, the feed, and strict mode. (An earlier version
// rebound s.store to the bare inner store on reset, so every post-resync
// write was acked from memory only — never logged, never replicated.)
func TestResetForResyncKeepsDurablePath(t *testing.T) {
	dir := t.TempDir()
	clock := vtime.New(1000)
	srv, err := NewDurableServer(clock, nil, promoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv.store.addUser("old")
	if err := srv.StartTerm(3, "30.0.0.1:80"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ResetForResync(); err != nil {
		t.Fatal(err)
	}
	if head := srv.ReplicationFeed().Head(); head != 0 {
		t.Fatalf("feed head %d after reset, want 0", head)
	}
	if term, leader, _ := srv.TermState(); term != 0 || leader != "" {
		t.Fatalf("lineage survived reset: (%d, %q)", term, leader)
	}

	// Post-reset writes must be durable and streamed.
	srv.store.addUser("new")
	if _, ok := srv.store.ingest("new", clock.Now(), []Report{{URL: "n.example/", ASN: 9, Tm: clock.Now()}}); !ok {
		t.Fatal("post-reset ingest rejected")
	}
	if head := srv.ReplicationFeed().Head(); head != 2 {
		t.Fatalf("post-reset feed head = %d, want 2 (writes bypassed the feed)", head)
	}
	if b, err := os.ReadFile(filepath.Join(dir, walFileName)); err != nil || len(b) == 0 {
		t.Fatalf("post-reset WAL empty (err %v): writes bypassed the log", err)
	}
	before := srv.store.fetchResponse(9, "")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewDurableServer(clock, nil, promoOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// The test's last act is a torn write, so the latched error rides out
		// through Close.
		if err := srv2.Close(); err == nil || !errors.Is(err, storage.ErrInjectedTear) {
			t.Errorf("close after torn write: %v, want the latched tear", err)
		}
	}()
	after := srv2.store.fetchResponse(9, "")
	if !bytes.Equal(before.body, after.body) || !bytes.Contains(after.body, []byte("n.example/")) {
		t.Fatalf("post-reset write lost across restart: %q vs %q", before.body, after.body)
	}

	// Strict mode still bites after a reset.
	srv2.InjectTornWrite(3)
	if _, ok := srv2.store.ingest("new", clock.Now(), []Report{{URL: "z.example/", ASN: 9, Tm: clock.Now()}}); ok {
		t.Fatal("strict mode lost across reset: torn write acked")
	}
}

// TestDurableRecoveryHistoryLoss pins that mid-history WAL corruption —
// damage with intact committed records behind it — aborts recovery with
// ErrHistoryLoss instead of silently truncating the valid suffix away.
func TestDurableRecoveryHistoryLoss(t *testing.T) {
	dir := t.TempDir()
	d, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	walWorkload(t, d, 3, 2)
	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte early in the file: many intact frames follow.
	b[20] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: -1}); !errors.Is(err, storage.ErrHistoryLoss) {
		t.Fatalf("mid-history corruption: err = %v, want ErrHistoryLoss", err)
	}
}

// postJSON builds the httpx request the way client code does; a tiny helper
// so handler-level tests read like the wire exchange.
func postJSON(method, host, target string, body []byte) *httpx.Request {
	req := httpx.NewRequest(method, host, target)
	req.Body = body
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req
}
