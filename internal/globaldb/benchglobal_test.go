package globaldb

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// --- The BENCH_globaldb.json emitter ------------------------------------
//
// The durable-replicated-DB trajectory: recovery cost vs log length (does
// the WAL+snapshot design keep restart cheap), bytes/sync full-vs-delta as
// the URL universe grows (does versioned delta sync keep the client's
// steady-state traffic flat, §5's scaling concern), and the virtual-time
// cost of failing over from a blackholed primary to a follower replica.
// `make bench-globaldb` runs TestEmitBenchGlobalDB with
// CSAW_BENCH_GLOBALDB_OUT set; CI uploads the document alongside
// BENCH_fleet.json and the delta gate fails the job when a converged
// list's delta payload exceeds 20% of the full body.

// deltaRatioGate is the acceptance gate: on a converged list, one drifted
// entry must cost at most this fraction of a full-list download.
const deltaRatioGate = 0.20

type recoveryPoint struct {
	// LogRecords is the number of mutations written before the restart.
	LogRecords int64 `json:"log_records"`
	// Compacted marks the snapshot-cadence control: same mutation count,
	// default compaction instead of an unbounded tail.
	Compacted bool `json:"compacted"`
	// Replayed is how many log records recovery actually replayed (the
	// tail past the newest snapshot).
	Replayed int64 `json:"replayed_records"`
	// RecoveryMs is the wall-clock open time of the restarted store.
	RecoveryMs float64 `json:"recovery_ms"`
}

type deltaSyncPoint struct {
	Universe       int     `json:"universe"`
	FullBytes      int     `json:"full_bytes"`
	MeanDeltaBytes float64 `json:"mean_delta_bytes"`
	Ratio          float64 `json:"delta_full_ratio"`
	Rounds         int     `json:"drift_rounds"`
}

type failoverPoint struct {
	// VirtualSeconds is the virtual time from issuing a sync against a
	// blackholed primary to the first successful follower-served response —
	// dominated by the client timeout that detects the silent drop.
	VirtualSeconds float64 `json:"virtual_seconds"`
	TimeoutSeconds float64 `json:"timeout_seconds"`
	ServedBy       string  `json:"served_by"`
	// Fetch304 records whether the primary's cached validator tag was
	// answered 304 by the follower (converged replicas share tags, so a
	// failover sync moves zero list bytes).
	Fetch304 bool `json:"fetch_304"`
}

type benchGlobalDBDoc struct {
	Schema         int              `json:"schema"`
	Generated      string           `json:"generated"`
	Recovery       []recoveryPoint  `json:"recovery"`
	DeltaSync      []deltaSyncPoint `json:"delta_sync"`
	DeltaRatioGate float64          `json:"delta_ratio_gate"`
	Failover       failoverPoint    `json:"failover"`
}

// benchRecoveryPoint writes records mutations into a fresh WAL store, kills
// it, and times the reopen. snapshotEvery < 0 keeps the whole history in
// the tail (recovery cost scales with the log); 0 uses the default cadence
// (recovery cost is bounded by snapshot + short tail regardless of history).
func benchRecoveryPoint(t *testing.T, records int64, snapshotEvery int) recoveryPoint {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := NewWALBenchStore(dir, snapshotEvery)
	if err != nil {
		t.Fatalf("open wal store: %v", err)
	}
	s.AddUser("bench-writer")
	for i := int64(1); i < records; i++ { // addUser wrote record 0
		if _, ok := s.Ingest("bench-writer", utc, []Report{{
			URL: fmt.Sprintf("u%06d.example/", i), ASN: 100 + int(i)%16,
			Stages: []WireStage{{Type: 1, Detail: "nxdomain"}}, Tm: utc,
		}}); !ok {
			t.Fatal("bench ingest rejected")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close wal store: %v", err)
	}

	start := time.Now() //lint:allow-realtime benchmark measures real recovery time by design
	re, err := NewWALBenchStore(dir, snapshotEvery)
	if err != nil {
		t.Fatalf("reopen wal store: %v", err)
	}
	elapsed := time.Since(start) //lint:allow-realtime see above
	p := recoveryPoint{
		LogRecords: records,
		Compacted:  snapshotEvery >= 0,
		Replayed:   re.Recovered(),
		RecoveryMs: float64(elapsed.Microseconds()) / 1000,
	}
	if body := re.FetchResponse(100); len(body) == 0 {
		t.Error("recovered store serves an empty body")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if !p.Compacted && p.Replayed != records {
		t.Errorf("uncompacted recovery replayed %d records, want the full %d-record log", p.Replayed, records)
	}
	if p.Compacted && p.Replayed >= records {
		t.Errorf("compacted recovery replayed %d of %d records: compaction never truncated the log", p.Replayed, records)
	}
	return p
}

// benchDeltaPoint converges a universe-sized list from one seeder batch
// (one batch keeps the seeder's vote weight 1/d fixed, so later drift from
// fresh reporters changes exactly one entry per round), then measures the
// mean conditional-fetch payload over driftRounds single-entry drifts.
func benchDeltaPoint(t *testing.T, universe, driftRounds int) deltaSyncPoint {
	t.Helper()
	s := NewShardedBenchStore()
	const asn = 100
	s.AddUser("seeder")
	batch := make([]Report, universe)
	for i := range batch {
		batch[i] = Report{
			URL: fmt.Sprintf("u%06d.example/", i), ASN: asn,
			Stages: []WireStage{{Type: 1, Detail: "nxdomain"}}, Tm: utc,
		}
	}
	if n, ok := s.Ingest("seeder", utc, batch); !ok || n != universe {
		t.Fatalf("seeding %d URLs: accepted %d, ok %v", universe, n, ok)
	}

	full, tag, delta := s.FetchConditional(asn, "")
	if delta || len(full) == 0 || tag == "" {
		t.Fatalf("initial fetch: %d bytes, tag %q, delta %v — want a tagged full body", len(full), tag, delta)
	}

	deltaBytes := 0
	for r := 0; r < driftRounds; r++ {
		drifter := fmt.Sprintf("drifter-%03d", r)
		s.AddUser(drifter)
		if n, ok := s.Ingest(drifter, utc, []Report{{
			URL: fmt.Sprintf("drift%03d.example/", r), ASN: asn,
			Stages: []WireStage{{Type: 3, Detail: "blockpage"}}, Tm: utc,
		}}); !ok || n != 1 {
			t.Fatalf("drift round %d: accepted %d, ok %v", r, n, ok)
		}
		body, newTag, isDelta := s.FetchConditional(asn, tag)
		if !isDelta {
			t.Fatalf("drift round %d at universe %d: conditional fetch fell back to a full body (%d bytes)",
				r, universe, len(body))
		}
		deltaBytes += len(body)
		tag = newTag
	}
	mean := float64(deltaBytes) / float64(driftRounds)
	return deltaSyncPoint{
		Universe: universe, FullBytes: len(full),
		MeanDeltaBytes: mean, Ratio: mean / float64(len(full)),
		Rounds: driftRounds,
	}
}

// benchFailover reuses the failover world (three converged replicas, a
// client with the full replica set) and measures the virtual time a sync
// takes when the censor has just blackholed the primary: detection is one
// client timeout, then the follower answers the same call.
func benchFailover(t *testing.T) failoverPoint {
	t.Helper()
	n, servers, mk := failoverWorld(t)
	c := mk("bench-user", "10.0.0.9")
	ctx := context.Background()
	if _, err := c.FetchBlocked(ctx, 100); err != nil {
		t.Fatalf("warm fetch: %v", err)
	}

	servers[0].Faults().SetDrop(true)
	servers[0].Faults().SetOutage(true)
	start := n.Clock().Now()
	if _, err := c.FetchBlocked(ctx, 100); err != nil {
		t.Fatalf("failover fetch: %v", err)
	}
	elapsed := n.Clock().Now().Sub(start)
	st := c.Stats()
	if st.Failovers != 1 || st.ReplicaDown != 1 {
		t.Errorf("failover stats = %+v, want exactly one failover and one down transition", st)
	}
	return failoverPoint{
		VirtualSeconds: elapsed.Seconds(),
		TimeoutSeconds: c.Timeout.Seconds(),
		ServedBy:       c.LastServed(),
		Fetch304:       st.Fetch304 == 1, // the follower answered the cached tag 304
	}
}

// TestEmitBenchGlobalDB writes BENCH_globaldb.json when
// CSAW_BENCH_GLOBALDB_OUT is set (`make bench-globaldb`) and enforces the
// delta-sync acceptance gate: at every measured universe size the mean
// delta payload must stay at or under 20% of the full-list body. CI uploads
// the document alongside BENCH_fleet.json.
func TestEmitBenchGlobalDB(t *testing.T) {
	out := os.Getenv("CSAW_BENCH_GLOBALDB_OUT")
	if out == "" {
		t.Skip("set CSAW_BENCH_GLOBALDB_OUT=BENCH_globaldb.json to emit the benchmark document")
	}

	var doc benchGlobalDBDoc
	doc.Schema = 1
	doc.Generated = time.Now().UTC().Format(time.RFC3339) //lint:allow-realtime artifact timestamp for the operator
	doc.DeltaRatioGate = deltaRatioGate

	for _, records := range []int64{1_000, 10_000, 100_000} {
		doc.Recovery = append(doc.Recovery, benchRecoveryPoint(t, records, -1))
	}
	// The compaction control: same longest history, default snapshot
	// cadence — recovery replays snapshot + short tail, not the log.
	doc.Recovery = append(doc.Recovery, benchRecoveryPoint(t, 100_000, 0))

	for _, universe := range []int{1_000, 10_000, 100_000} {
		p := benchDeltaPoint(t, universe, 5)
		doc.DeltaSync = append(doc.DeltaSync, p)
		if p.Ratio > deltaRatioGate {
			t.Errorf("delta/full ratio %.4f at universe %d exceeds the %.0f%% acceptance gate",
				p.Ratio, p.Universe, deltaRatioGate*100)
		}
	}

	doc.Failover = benchFailover(t)
	if doc.Failover.VirtualSeconds > 2*doc.Failover.TimeoutSeconds {
		t.Errorf("failover took %.1f virtual seconds against a %.1fs client timeout: more than one timeout window",
			doc.Failover.VirtualSeconds, doc.Failover.TimeoutSeconds)
	}

	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	for _, p := range doc.Recovery {
		t.Logf("recovery: %6d records (compacted=%v) → replayed %6d in %8.2fms",
			p.LogRecords, p.Compacted, p.Replayed, p.RecoveryMs)
	}
	for _, p := range doc.DeltaSync {
		t.Logf("delta: universe %6d → full %8d B, mean delta %6.0f B, ratio %.4f",
			p.Universe, p.FullBytes, p.MeanDeltaBytes, p.Ratio)
	}
	t.Logf("failover: %.1f virtual s (timeout %.1fs), served by %s, 304=%v",
		doc.Failover.VirtualSeconds, doc.Failover.TimeoutSeconds, doc.Failover.ServedBy, doc.Failover.Fetch304)
}
