package globaldb

import (
	"math/rand"
	"strings"
	"sync"

	"csaw/internal/httpx"
)

// FaultPolicy injects failures into a Server for resilience experiments:
// full outages (503s), silent drops (the server says nothing, so the client
// times out), a one-shot fail-the-next-N budget, and a random failure rate.
// A path filter narrows any of these to matching requests — e.g.
// SetPathFilter("asn=30") fails only AS-30 blocked-list fetches, which is
// how tests exercise per-AS partial failure. The zero value injects nothing.
type FaultPolicy struct {
	mu       sync.Mutex
	outage   bool
	drop     bool
	failNext int
	failRate float64
	rng      *rand.Rand
	filter   string
	injected int
}

// SetOutage turns the whole-DB outage on or off (matching requests get 503).
func (f *FaultPolicy) SetOutage(on bool) {
	f.mu.Lock()
	f.outage = on
	f.mu.Unlock()
}

// SetDrop makes injected faults silent: instead of a 503 the server returns
// nothing and the client runs into its timeout.
func (f *FaultPolicy) SetDrop(on bool) {
	f.mu.Lock()
	f.drop = on
	f.mu.Unlock()
}

// FailNext makes the next n matching requests fail, then recovers.
func (f *FaultPolicy) FailNext(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

// SetFailRate fails each matching request independently with probability p,
// deterministically from seed.
func (f *FaultPolicy) SetFailRate(p float64, seed int64) {
	f.mu.Lock()
	f.failRate = p
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// SetPathFilter narrows fault injection to requests whose target contains
// substr (""= all requests). "asn=30" hits only AS-30 fetches; PathReport
// hits only report posts.
func (f *FaultPolicy) SetPathFilter(substr string) {
	f.mu.Lock()
	f.filter = substr
	f.mu.Unlock()
}

// Injected reports how many requests have been failed so far.
func (f *FaultPolicy) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// intercept decides whether to fail req. It returns (resp, true) when a
// fault fires; a nil resp with true means "say nothing" (client timeout).
func (f *FaultPolicy) intercept(req *httpx.Request) (*httpx.Response, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.filter != "" && !strings.Contains(req.Target, f.filter) {
		return nil, false
	}
	fire := f.outage
	if !fire && f.failNext > 0 {
		f.failNext--
		fire = true
	}
	if !fire && f.failRate > 0 && f.rng != nil && f.rng.Float64() < f.failRate {
		fire = true
	}
	if !fire {
		return nil, false
	}
	f.injected++
	if f.drop {
		return nil, true
	}
	return httpx.NewResponse(503, []byte("injected fault: service unavailable")), true
}
