package globaldb

import (
	"bytes"
	"errors"
	"strconv"
	"sync"

	"csaw/internal/globaldb/storage"
	"csaw/internal/httpx"
)

// Term and fencing state. A term names one leadership lineage: it is minted
// by a promoted follower, persisted as a KindTerm record in the WAL/feed
// stream, and carried on replication pulls and fencing rejections.
//
// The two halves are deliberately independent:
//
//   - Lineage (term, leader, base) identifies the stream this node's state
//     was built from. It comes only from the record stream itself — a
//     KindTerm record absorbed, minted by StartTerm, or replayed at
//     recovery — and a (term, leader) pair names exactly one single-writer
//     stream, so two nodes with equal pairs hold prefixes of the same
//     history. Divergence detection compares lineages, never fence hints.
//   - Fencing (refusing writes and pointing at the believed leader) is pure
//     runtime state: a restarted node comes up unfenced and relies on the
//     replica controller's reconciliation to fence it again if the world
//     moved on. A fence hint must not touch the lineage, or a follower
//     pointed at a new leader would claim a history it never pulled.
type termState struct {
	mu     sync.Mutex
	term   int64
	leader string // client-facing address of term's leader
	base   uint64 // feed position of the term's KindTerm record
	marks  []TermMark

	fenced      bool
	fenceTerm   int64
	fenceLeader string
}

// TermMark is one leadership change in a stream: from position Base onward
// (exclusive of the KindTerm record itself at index Base) the stream was
// written under Term by Leader.
type TermMark struct {
	Term   int64
	Leader string
	Base   uint64
}

// TermState returns the lineage the server's state was built under: the
// stream's highest term, the leader address that minted it, and the feed
// position of its term record. Term zero with an empty leader is the
// implicit founding lineage of a stream that predates any promotion.
func (s *Server) TermState() (term int64, leader string, base uint64) {
	if s.durable != nil {
		return s.durable.termState()
	}
	s.terms.mu.Lock()
	defer s.terms.mu.Unlock()
	return s.terms.term, s.terms.leader, s.terms.base
}

// TermAt returns the lineage in effect for the stream prefix [0, pos): the
// term and leader of the last KindTerm record strictly below pos. A
// follower whose own lineage equals the leader's lineage-at-its-offset
// holds a verbatim prefix of the leader's stream and can pull onward; any
// mismatch is a fork. Only meaningful on stores that keep their full
// history (promotion worlds disable compaction).
func (s *Server) TermAt(pos uint64) (term int64, leader string) {
	if s.durable != nil {
		return s.durable.termAt(pos)
	}
	s.terms.mu.Lock()
	defer s.terms.mu.Unlock()
	for _, m := range s.terms.marks {
		if m.Base >= pos {
			break
		}
		term, leader = m.Term, m.Leader
	}
	return term, leader
}

// Fenced reports whether the server is currently rejecting writes.
func (s *Server) Fenced() bool {
	s.terms.mu.Lock()
	defer s.terms.mu.Unlock()
	return s.terms.fenced
}

// Fence puts the server in write-rejecting mode, directing writers at
// leader. Only the hint state changes — the lineage stays whatever the
// stream says. The hinted term ratchets up so a late, stale fence cannot
// downgrade the redirect target.
func (s *Server) Fence(term int64, leader string) {
	s.terms.mu.Lock()
	defer s.terms.mu.Unlock()
	s.terms.fenced = true
	if term > s.terms.fenceTerm {
		s.terms.fenceTerm, s.terms.fenceLeader = term, leader
	} else if term == s.terms.fenceTerm && leader != "" {
		s.terms.fenceLeader = leader
	}
}

// StartTerm makes this server the writer for term, led from leader (its own
// client-facing address): the term is persisted as a KindTerm record
// through the normal durable path, the fence lifts, and the term's base is
// recorded. Only a promotion (or the initial wiring of a world) calls this.
func (s *Server) StartTerm(term int64, leader string) error {
	var base uint64
	if s.durable != nil {
		b, err := s.durable.startTerm(term, leader)
		if err != nil {
			return err
		}
		base = b
	}
	s.terms.mu.Lock()
	defer s.terms.mu.Unlock()
	if term >= s.terms.term {
		s.terms.term, s.terms.leader, s.terms.base = term, leader, base
		s.terms.marks = append(s.terms.marks, TermMark{Term: term, Leader: leader, Base: base})
	}
	s.terms.fenced = false
	return nil
}

// Absorb logs, streams, and applies one replicated record exactly as
// received, so a follower's WAL and feed mirror its leader's stream frame
// for frame. For in-memory servers it degrades to Apply plus term tracking.
// An error means the record is not durable and must not be acknowledged.
func (s *Server) Absorb(rec *storage.Record) error {
	if s.durable != nil {
		return s.durable.absorb(rec) // lineage tracked by the durable layer
	}
	applyRecord(s.store, rec)
	if rec.Kind == storage.KindTerm {
		s.terms.mu.Lock()
		if rec.Now > s.terms.term {
			s.terms.term, s.terms.leader = rec.Now, rec.UUID
			s.terms.marks = append(s.terms.marks, TermMark{Term: rec.Now, Leader: rec.UUID, Base: s.terms.base})
		}
		s.terms.mu.Unlock()
	}
	return nil
}

// ResetForResync wipes the server's entire measurement state — WAL,
// snapshot, feed, in-memory aggregates, latched durability errors — so the
// node can replay a new leader's stream from sequence zero. The caller is
// responsible for having pushed any unreplicated suffix to the leader
// first; this method destroys it.
func (s *Server) ResetForResync() error {
	if s.durable != nil {
		// s.store stays pointed at the durable wrapper — it swapped its own
		// inner store. Rebinding to the bare store here would silently route
		// every later mutation around the WAL, the feed, and strict mode.
		if err := s.durable.reset(); err != nil {
			return err
		}
	} else {
		s.store = newShardedStore()
	}
	// The stream is empty again: lineage reverts to the founding state (the
	// next pull re-derives it from the new leader's term records). Fencing
	// is untouched — a resyncing node stays fenced toward its new leader.
	s.terms.mu.Lock()
	s.terms.term, s.terms.leader, s.terms.base = 0, "", 0
	s.terms.marks = nil
	s.terms.mu.Unlock()
	return nil
}

// DurabilityErr returns the latched WAL error, nil for in-memory servers.
func (s *Server) DurabilityErr() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.Err()
}

// InjectTornWrite arms the WAL torn-write fault hook: the next logged
// mutation writes only keep bytes of its frame and fails. Chaos schedules
// use it; reports whether a WAL was present to arm.
func (s *Server) InjectTornWrite(keep int) bool {
	if s.durable == nil {
		return false
	}
	return s.durable.tearNext(keep)
}

// strictUnavailable reports whether strict durability has latched an error,
// turning mutation rejections into 503s rather than semantic failures.
func (s *Server) strictUnavailable() bool {
	return s.durable != nil && s.durable.strictUnavailable()
}

// fencedResponse is the StatusFenced rejection: no body the caller should
// parse, just the term and the leader hint to chase. The hint state (what
// the fencer told us) is preferred over the lineage — the whole point of a
// fence is that the stream this node holds is no longer the one to follow.
func (s *Server) fencedResponse() *httpx.Response {
	s.terms.mu.Lock()
	term, leader := s.terms.fenceTerm, s.terms.fenceLeader
	s.terms.mu.Unlock()
	if leader == "" {
		lt, ll, _ := s.TermState()
		term, leader = lt, ll
	}
	resp := httpx.NewResponse(StatusFenced, []byte("fenced: stale term"))
	resp.Header.Set(TermHeader, strconv.FormatInt(term, 10))
	if leader != "" {
		resp.Header.Set(LeaderHeader, leader)
	}
	return resp
}

// handleReplPush absorbs a pushed suffix of framed records from a demoted
// or diverged node. Term records are skipped — a stale lineage's leadership
// markers must not enter the current stream — and ingest dedup makes
// re-absorbing an already-pushed record a harmless no-op, so the pusher can
// retry after a lost acknowledgement.
func (s *Server) handleReplPush(req *httpx.Request) *httpx.Response {
	if s.Fenced() {
		return s.fencedResponse()
	}
	if s.durable == nil {
		return httpx.NewResponse(404, []byte("push needs a durable store"))
	}
	n := 0
	_, err := storage.Replay(bytes.NewReader(req.Body), func(rec *storage.Record) error {
		if rec.Kind == storage.KindTerm {
			return nil
		}
		if err := s.Absorb(rec); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		if errors.Is(err, storage.ErrCorrupt) {
			return httpx.NewResponse(400, []byte("bad push payload"))
		}
		return httpx.NewResponse(503, []byte(err.Error()))
	}
	return jsonResponse(200, ReplPushResponse{Absorbed: n})
}
