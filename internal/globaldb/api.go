// Package globaldb implements C-Saw's crowdsourced measurement service: the
// global_DB plus the co-located server_DB of §4.2 and §5.
//
// Clients register by solving a (simulated) "No CAPTCHA reCAPTCHA" and
// receive a UUID — a hash of the server time, as in the paper — used for
// all future updates. They periodically post the blocked URLs they measured
// and download the blocked-URL list for their own AS. No IP addresses are
// stored (the paper's privacy constraint); abuse is limited by the CAPTCHA
// rate limit and by the §5 voting mechanism: each client holds one unit of
// vote spread evenly over the d blocked URLs it reports (v = 1/d), and per
// (URL, AS) the server exposes the vote sum s_jk and reporter count n_jk so
// consumers can discount low-confidence or spammy measurements.
package globaldb

import (
	"time"

	"csaw/internal/localdb"
)

// API paths.
const (
	PathRegister = "/v1/register"
	PathReport   = "/v1/report"
	PathFetch    = "/v1/blocked"
	PathStats    = "/v1/stats"
	// PathRepl is the replication pull endpoint served by durable primaries:
	// GET /v1/repl?from=N&follower=name&max=M returns framed WAL records
	// starting at sequence N (at most M bytes), recording name's ack at N.
	PathRepl = "/v1/repl"
	// PathReplStatus is served by every replica-set node (the replica layer
	// answers it, not the bare server): GET returns a ReplStatus describing
	// the node's role, term, and replication offsets. Election probes and
	// leader reconciliation are built on it.
	PathReplStatus = "/v1/repl/status"
	// PathReplDemote tells a stale leader a newer term exists:
	// POST /v1/repl/demote?term=T&leader=ADDR&have=N. The receiver fences
	// itself toward ADDR and schedules its own push-then-resync (the response
	// carries only a ReplStatus — a demoted node pushes its unreplicated
	// suffix itself, so a lost response cannot lose acked records). have=N
	// means the new leader already holds the first N records of the
	// receiver's stream.
	PathReplDemote = "/v1/repl/demote"
	// PathReplPush lets a demoted or diverged node hand the current leader
	// the feed suffix the leader never pulled: POST with a body of framed WAL
	// records. The leader absorbs them in order (skipping term records) and
	// acknowledges with the count; ingest dedup makes re-pushing after a lost
	// ack idempotent.
	PathReplPush = "/v1/repl/push"
)

// StatusFenced is the status a node returns for writes (and replication
// pulls) carrying a stale term: HTTP 421 Misdirected Request, with
// TermHeader and LeaderHeader naming the fencing term and where the current
// leader is believed to be. Clients and forwarders chase the hint.
const StatusFenced = 421

// CaptchaHeader carries the solved-CAPTCHA token on registration.
const CaptchaHeader = "X-Recaptcha-Token"

// DeltaHeader marks a 200 /v1/blocked response whose body is a
// DeltaResponse rather than a full FetchResponse. Its value is
// DeltaEncoding; clients that did not send If-None-Match never see it.
const (
	DeltaHeader   = "X-List-Encoding"
	DeltaEncoding = "delta"
)

// Replication response headers: the sequence the next pull should start at,
// and the primary's current head.
const (
	ReplNextHeader = "X-Repl-Next"
	ReplHeadHeader = "X-Repl-Head"
)

// Term headers. TermHeader carries the responding node's current lineage
// term on replication pulls and the fencing term on StatusFenced
// rejections; LeaderHeader carries the client-facing address of that term's
// leader. ReplBaseHeader rides pull responses with the feed position at
// which the current term began.
//
// ReplTermAtHeader / ReplLeaderAtHeader answer the puller's real question:
// which lineage was in effect at the offset it is pulling from, in the
// responder's stream. A (term, leader) pair names exactly one single-writer
// history, so a follower whose own lineage matches the responder's
// lineage-at-offset holds a verbatim prefix and can pull onward; any
// mismatch (or an offset past the responder's head) means the streams
// forked, and the follower must push its suffix and resync from zero.
const (
	TermHeader         = "X-Csaw-Term"
	LeaderHeader       = "X-Csaw-Leader"
	ReplBaseHeader     = "X-Repl-Base"
	ReplTermAtHeader   = "X-Repl-Term-At"
	ReplLeaderAtHeader = "X-Repl-Leader-At"
)

// Replica roles, as reported in ReplStatus.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// ReplStatus describes one replica-set node for election probes and leader
// reconciliation: who it is, what role it believes it holds, its current
// term, how much of the leader's stream it has applied (Offset), its own
// feed head (Head), and the feed position its current term began at (Base).
type ReplStatus struct {
	Name   string `json:"name"`
	Addr   string `json:"addr"`
	Role   string `json:"role"`
	Term   int64  `json:"term"`
	Offset uint64 `json:"offset"`
	Head   uint64 `json:"head"`
	Base   uint64 `json:"base"`
}

// ReplPushResponse acknowledges an absorbed push.
type ReplPushResponse struct {
	Absorbed int `json:"absorbed"`
}

// RegisterResponse returns the server-assigned UUID.
type RegisterResponse struct {
	UUID string `json:"uuid"`
}

// WireStage mirrors localdb.Stage for transport.
type WireStage struct {
	Type   int    `json:"type"`
	Detail string `json:"detail,omitempty"`
}

// Report is one blocked-URL measurement posted by a client. Only blocked
// URLs are reported (§3: updates include information about blocked URLs
// only).
type Report struct {
	URL    string      `json:"url"`
	ASN    int         `json:"asn"`
	Stages []WireStage `json:"stages"`
	Tm     time.Time   `json:"tm"` // when the client measured it
}

// ReportRequest is a batch of reports from one client.
type ReportRequest struct {
	UUID    string   `json:"uuid"`
	Reports []Report `json:"reports"`
}

// ReportResponse acknowledges accepted reports.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}

// Entry is one aggregated blocked-URL record served to clients of an AS,
// with the §5 confidence statistics.
type Entry struct {
	URL       string      `json:"url"`
	ASN       int         `json:"asn"`
	Stages    []WireStage `json:"stages"`
	LastTp    time.Time   `json:"last_tp"` // most recent post time
	Votes     float64     `json:"s"`       // s_jk
	Reporters int         `json:"n"`       // n_jk
}

// FetchResponse is the per-AS blocked list.
type FetchResponse struct {
	ASN     int     `json:"asn"`
	Entries []Entry `json:"entries"`
}

// DeltaResponse is the versioned delta served to a conditional fetch whose
// If-None-Match tag is stale but still within the server's edit history:
// only the entries changed since the snapshot named by Since, plus the URLs
// removed from the list. Applying it to the cached list for Since yields
// exactly the server's current full list.
type DeltaResponse struct {
	ASN     int      `json:"asn"`
	Since   string   `json:"since"`
	Changed []Entry  `json:"changed,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Stats aggregates the deployment-level numbers reported in Table 7.
type Stats struct {
	Users          int            `json:"users"`
	BlockedURLs    int            `json:"blocked_urls"`
	BlockedDomains int            `json:"blocked_domains"`
	ASes           int            `json:"ases"`
	BlockTypes     int            `json:"block_types"`
	ByType         map[string]int `json:"by_type"` // URLs per primary mechanism
	Updates        int            `json:"updates"`
}

// ToWire converts localdb stages for transport.
func ToWire(stages []localdb.Stage) []WireStage {
	out := make([]WireStage, len(stages))
	for i, s := range stages {
		out[i] = WireStage{Type: int(s.Type), Detail: s.Detail}
	}
	return out
}

// FromWire converts transport stages back to localdb stages.
func FromWire(stages []WireStage) []localdb.Stage {
	out := make([]localdb.Stage, len(stages))
	for i, s := range stages {
		out[i] = localdb.Stage{Type: localdb.BlockType(s.Type), Detail: s.Detail}
	}
	return out
}

// TrustFilter is the client-side confidence rule of §5: distrust entries
// with too few reporters, and entries whose vote sum is small relative to
// their reporter count (many reports per user — the spammer signature).
type TrustFilter struct {
	// MinReporters is the minimum n_jk (default 1).
	MinReporters int
	// MinAvgVote is the minimum s_jk/n_jk (default 0.02, i.e. distrust
	// clients spraying votes over 50+ URLs).
	MinAvgVote float64
}

// Trusted applies the filter.
func (f TrustFilter) Trusted(e Entry) bool {
	minN := f.MinReporters
	if minN <= 0 {
		minN = 1
	}
	minAvg := f.MinAvgVote
	if minAvg <= 0 {
		minAvg = 0.02
	}
	if e.Reporters < minN {
		return false
	}
	return e.Votes/float64(e.Reporters) >= minAvg
}
