package globaldb

import (
	"context"
	"math"
	"testing"
	"time"

	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// gdbWorld runs a global DB on an emulated host and returns a client
// factory.
func gdbWorld(t *testing.T) (*netem.Network, *Server, func(name, ip string) *Client) {
	t.Helper()
	clock := vtime.New(1000)
	n := netem.New(clock, netem.WithSeed(41), netem.WithJitter(0))
	pk := n.AddAS(100, "ISP", "PK")
	cloud := n.AddAS(900, "Cloud", "US")
	srvHost := n.MustAddHost("globaldb", "40.0.0.1", "us", cloud)
	n.SetRTT("pk", "us", 120*time.Millisecond)

	srv := NewServer(clock, nil)
	if err := srv.Attach(srvHost, 80); err != nil {
		t.Fatal(err)
	}
	mk := func(name, ip string) *Client {
		h := n.MustAddHost(name, ip, "pk", pk)
		return &Client{
			Addr: "40.0.0.1:80", Host: "globaldb.example",
			Clock: clock, ReportDial: h.Dial, FetchDial: h.Dial,
		}
	}
	return n, srv, mk
}

func register(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Register(context.Background(), "human-ok"); err != nil {
		t.Fatal(err)
	}
}

func blockedRec(url string, asn int, bt localdb.BlockType, detail string) localdb.Record {
	return localdb.Record{
		URL: url, ASN: asn, Status: localdb.Blocked,
		Stages: []localdb.Stage{{Type: bt, Detail: detail}},
	}
}

func TestRegisterReportFetch(t *testing.T) {
	_, _, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	if c.UUID() == "" {
		t.Fatal("no uuid assigned")
	}
	n, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("www.youtube.com/", 100, localdb.BlockDNS, "nxdomain"),
		blockedRec("porn.example.net/", 100, localdb.BlockHTTP, "blockpage"),
		{URL: "fine.example.com/", ASN: 100, Status: localdb.NotBlocked}, // must be skipped
	})
	if err != nil || n != 2 {
		t.Fatalf("report = %d, %v", n, err)
	}
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].URL != "porn.example.net/" || entries[1].URL != "www.youtube.com/" {
		t.Fatalf("order = %+v", entries)
	}
	if entries[0].Reporters != 1 || math.Abs(entries[0].Votes-0.5) > 1e-9 {
		t.Fatalf("votes = %+v (want 1/d = 0.5)", entries[0])
	}
}

func TestFetchScopedToAS(t *testing.T) {
	_, _, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	if _, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("a.example/", 100, localdb.BlockDNS, ""),
		blockedRec("b.example/", 200, localdb.BlockHTTP, "blockpage"),
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := c.FetchBlocked(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].URL != "b.example/" {
		t.Fatalf("AS-200 list = %+v", entries)
	}
}

func TestCaptchaRejected(t *testing.T) {
	_, _, mk := gdbWorld(t)
	c := mk("bot", "10.0.0.9")
	if err := c.Register(context.Background(), "bot-token"); err == nil {
		t.Fatal("bot registration accepted")
	}
}

func TestRegistrationRateLimit(t *testing.T) {
	_, _, mk := gdbWorld(t)
	c := mk("greedy", "10.0.0.7")
	for i := 0; i < RegistrationRateLimit; i++ {
		if err := c.Register(context.Background(), "human-ok"); err != nil {
			t.Fatalf("registration %d: %v", i, err)
		}
	}
	if err := c.Register(context.Background(), "human-ok"); err == nil {
		t.Fatal("rate limit not enforced")
	}
}

func TestUnregisteredReportRejected(t *testing.T) {
	_, _, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	if _, err := c.Report(context.Background(), []localdb.Record{blockedRec("x/", 1, localdb.BlockDNS, "")}); err == nil {
		t.Fatal("unregistered report accepted")
	}
	c.SetUUID("deadbeefdeadbeef")
	if _, err := c.Report(context.Background(), []localdb.Record{blockedRec("x.example/", 100, localdb.BlockDNS, "")}); err == nil {
		t.Fatal("forged uuid accepted")
	}
}

func TestVotingDilutesSpammers(t *testing.T) {
	// §5: one honest user reports 2 URLs (vote ½ each); a malicious user
	// sprays 100 URLs (vote 1/100 each). The honest URL keeps a high
	// per-reporter vote; the spam entries get s/n = 0.01 and fail the
	// trust filter.
	_, _, mk := gdbWorld(t)
	honest := mk("honest", "10.0.0.1")
	spammer := mk("spammer", "10.0.0.2")
	register(t, honest)
	register(t, spammer)

	if _, err := honest.Report(context.Background(), []localdb.Record{
		blockedRec("real-blocked.example/", 100, localdb.BlockDNS, "nxdomain"),
		blockedRec("also-blocked.example/", 100, localdb.BlockHTTP, "blockpage"),
	}); err != nil {
		t.Fatal(err)
	}
	var spam []localdb.Record
	for i := 0; i < 100; i++ {
		spam = append(spam, blockedRec(
			"fake-"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+".example/",
			100, localdb.BlockHTTP, "blockpage"))
	}
	if _, err := spammer.Report(context.Background(), spam); err != nil {
		t.Fatal(err)
	}

	entries, err := honest.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	filter := TrustFilter{}
	trusted, distrusted := 0, 0
	for _, e := range entries {
		if filter.Trusted(e) {
			trusted++
		} else {
			distrusted++
		}
	}
	if trusted != 2 {
		t.Errorf("trusted = %d, want the 2 honest URLs", trusted)
	}
	if distrusted < 90 {
		t.Errorf("distrusted = %d, want the spam sprayed entries", distrusted)
	}
}

func TestRevokeSilencesUser(t *testing.T) {
	_, srv, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	if _, err := c.Report(context.Background(), []localdb.Record{blockedRec("x.example/", 100, localdb.BlockDNS, "")}); err != nil {
		t.Fatal(err)
	}
	srv.Revoke(c.UUID())
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("revoked user's reports still served: %+v", entries)
	}
	if _, err := c.Report(context.Background(), []localdb.Record{blockedRec("y.example/", 100, localdb.BlockDNS, "")}); err == nil {
		t.Fatal("revoked uuid can still report")
	}
}

func TestReportIdempotentPerURL(t *testing.T) {
	// Re-reporting the same URL updates rather than double-counts votes.
	_, _, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	rec := blockedRec("x.example/", 100, localdb.BlockDNS, "nxdomain")
	for i := 0; i < 3; i++ {
		if _, err := c.Report(context.Background(), []localdb.Record{rec}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Reporters != 1 || math.Abs(entries[0].Votes-1.0) > 1e-9 {
		t.Fatalf("entries = %+v, want single full-vote entry", entries)
	}
}

func TestStatsSnapshot(t *testing.T) {
	_, srv, mk := gdbWorld(t)
	u1, u2 := mk("u1", "10.0.0.1"), mk("u2", "10.0.0.2")
	register(t, u1)
	register(t, u2)
	if _, err := u1.Report(context.Background(), []localdb.Record{
		blockedRec("a.example/page1", 100, localdb.BlockDNS, "nxdomain"),
		blockedRec("a.example/page2", 100, localdb.BlockDNS, "nxdomain"),
		blockedRec("b.example/", 200, localdb.BlockHTTP, "blockpage"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := u2.Report(context.Background(), []localdb.Record{
		blockedRec("c.example/", 300, localdb.BlockTCPTimeout, "connect-timeout"),
	}); err != nil {
		t.Fatal(err)
	}
	st := srv.StatsSnapshot()
	if st.Users != 2 || st.BlockedURLs != 4 || st.BlockedDomains != 3 || st.ASes != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByType["dns"] != 2 || st.ByType["blockpage"] != 1 || st.ByType["tcp-timeout"] != 1 {
		t.Fatalf("by-type = %+v", st.ByType)
	}
	if st.Updates != 4 {
		t.Fatalf("updates = %d", st.Updates)
	}

	// And over the API.
	st2, err := u1.FetchStats(context.Background())
	if err != nil || st2.Users != 2 {
		t.Fatalf("stats via API = %+v, %v", st2, err)
	}
}

func TestTrustFilterDefaults(t *testing.T) {
	f := TrustFilter{}
	if f.Trusted(Entry{Votes: 0.001, Reporters: 1}) {
		t.Error("spam-grade entry trusted")
	}
	if !f.Trusted(Entry{Votes: 0.5, Reporters: 1}) {
		t.Error("honest entry distrusted")
	}
	if f.Trusted(Entry{Votes: 0, Reporters: 0}) {
		t.Error("empty entry trusted")
	}
}

func TestConditionalFetchReusesCache(t *testing.T) {
	_, _, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	if _, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("a.example/", 100, localdb.BlockDNS, "nxdomain"),
	}); err != nil {
		t.Fatal(err)
	}

	first, err := c.FetchBlocked(context.Background(), 100)
	if err != nil || len(first) != 1 {
		t.Fatalf("first fetch = %+v, %v", first, err)
	}
	tag := c.blocked[100].tag
	if tag == "" {
		t.Fatal("no validator tag cached after a 200 fetch")
	}

	// Unchanged list: the refetch must come back 304 and hand out the cached
	// slice itself — no new decode.
	second, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if &second[0] != &first[0] {
		t.Fatal("unchanged refetch did not reuse the cached entries")
	}
	if c.blocked[100].tag != tag {
		t.Fatalf("tag moved on an unchanged list: %q → %q", tag, c.blocked[100].tag)
	}

	// New report: the tag must turn over and the next fetch must see the
	// update (a stale 304 here would freeze the client's list).
	if _, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("b.example/", 100, localdb.BlockHTTP, "blockpage"),
	}); err != nil {
		t.Fatal(err)
	}
	third, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != 2 {
		t.Fatalf("post-update fetch = %+v, want 2 entries", third)
	}
	if c.blocked[100].tag == tag {
		t.Fatal("validator tag did not change after a write")
	}
}

func TestConditionalFetchRevocationInvalidates(t *testing.T) {
	_, srv, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	if _, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("a.example/", 100, localdb.BlockDNS, "nxdomain"),
	}); err != nil {
		t.Fatal(err)
	}
	if entries, err := c.FetchBlocked(context.Background(), 100); err != nil || len(entries) != 1 {
		t.Fatalf("fetch = %+v, %v", entries, err)
	}
	// Revocation bumps the epoch: the cached tag must stop validating even
	// though the AS index version did not move.
	srv.Revoke(c.UUID())
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("revoked reports still served from client cache: %+v", entries)
	}
}

func TestWireRoundTrip(t *testing.T) {
	stages := []localdb.Stage{{Type: localdb.BlockDNS, Detail: "nxdomain"}, {Type: localdb.BlockHTTP}}
	back := FromWire(ToWire(stages))
	if len(back) != 2 || back[0] != stages[0] || back[1] != stages[1] {
		t.Fatalf("round trip = %+v", back)
	}
}
