package globaldb

import "time"

// BenchStore exposes the store backends' ingest/fetch surface to the
// cross-package benchmark trajectory (internal/fleet's BenchmarkFleet*
// suite and the BENCH_fleet.json emitter): the before/after comparison of
// the retained single-mutex seed store against the sharded default. It is
// not part of the simulation API — the Server never hands one out.
type BenchStore struct{ s store }

// NewLegacyBenchStore returns the seed's single-mutex store.
func NewLegacyBenchStore() BenchStore { return BenchStore{newLegacyStore()} }

// NewShardedBenchStore returns the sharded default store.
func NewShardedBenchStore() BenchStore { return BenchStore{newShardedStore()} }

// AddUser registers a uuid.
func (b BenchStore) AddUser(uuid string) { b.s.addUser(uuid) }

// Ingest folds a report batch in, as handleReport does.
func (b BenchStore) Ingest(uuid string, now time.Time, reports []Report) (int, bool) {
	return b.s.ingest(uuid, now, reports)
}

// FetchResponse serves the /v1/blocked body, as handleFetch does for an
// unconditional request.
func (b BenchStore) FetchResponse(asn int) []byte {
	body, _, _ := b.s.fetchResponse(asn, "")
	return body
}

// BlockedForAS aggregates an AS's entries.
func (b BenchStore) BlockedForAS(asn int) []Entry { return b.s.blockedForAS(asn) }
