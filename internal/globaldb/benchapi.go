package globaldb

import "time"

// BenchStore exposes the store backends' ingest/fetch surface to the
// cross-package benchmark trajectory (internal/fleet's BenchmarkFleet*
// suite and the BENCH_fleet.json / BENCH_globaldb.json emitters): the
// before/after comparison of the retained single-mutex seed store against
// the sharded default, and the WAL-backed store's recovery and delta-sync
// costs. It is not part of the simulation API — the Server never hands one
// out.
type BenchStore struct{ s store }

// NewLegacyBenchStore returns the seed's single-mutex store.
func NewLegacyBenchStore() BenchStore { return BenchStore{newLegacyStore()} }

// NewShardedBenchStore returns the sharded default store.
func NewShardedBenchStore() BenchStore { return BenchStore{newShardedStore()} }

// NewWALBenchStore opens a WAL-backed store rooted at dir (see
// StoreOptions). Reopening the same dir measures recovery.
func NewWALBenchStore(dir string, snapshotEvery int) (BenchStore, error) {
	d, err := newDurableStore(StoreOptions{Dir: dir, SnapshotEvery: snapshotEvery})
	if err != nil {
		return BenchStore{}, err
	}
	return BenchStore{d}, nil
}

// Recovered reports how many log records the WAL-backed store replayed at
// open (0 for other backends).
func (b BenchStore) Recovered() int64 {
	if d, ok := b.s.(*durableStore); ok {
		return d.recovered
	}
	return 0
}

// Close releases the backend's files (no-op for in-memory stores).
func (b BenchStore) Close() error {
	if d, ok := b.s.(*durableStore); ok {
		return d.close()
	}
	return nil
}

// AddUser registers a uuid.
func (b BenchStore) AddUser(uuid string) { b.s.addUser(uuid) }

// Ingest folds a report batch in, as handleReport does.
func (b BenchStore) Ingest(uuid string, now time.Time, reports []Report) (int, bool) {
	return b.s.ingest(uuid, now, reports)
}

// FetchResponse serves the /v1/blocked body, as handleFetch does for an
// unconditional request.
func (b BenchStore) FetchResponse(asn int) []byte {
	return b.s.fetchResponse(asn, "").body
}

// FetchConditional serves a conditional fetch: the body (nil on a
// not-modified hit), the new validator tag, and whether the body is a
// delta against inm.
func (b BenchStore) FetchConditional(asn int, inm string) (body []byte, tag string, delta bool) {
	fr := b.s.fetchResponse(asn, inm)
	return fr.body, fr.tag, fr.delta
}

// BlockedForAS aggregates an AS's entries.
func (b BenchStore) BlockedForAS(asn int) []Entry { return b.s.blockedForAS(asn) }
