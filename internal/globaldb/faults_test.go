package globaldb

import (
	"context"
	"fmt"
	"testing"
	"time"

	"csaw/internal/localdb"
)

func TestRegistrationMapSwept(t *testing.T) {
	// One-shot registrants must not leak regByIP entries forever: after the
	// sliding rate-limit window passes, a sweep drops their IPs.
	n, srv, mk := gdbWorld(t)
	const oneShots = 40
	for i := 0; i < oneShots; i++ {
		c := mk(fmt.Sprintf("one-shot-%d", i), fmt.Sprintf("10.0.1.%d", i+1))
		register(t, c)
	}
	srv.mu.Lock()
	before := len(srv.regByIP)
	srv.mu.Unlock()
	if before != oneShots {
		t.Fatalf("regByIP = %d entries, want %d", before, oneShots)
	}

	// All 40 windows expire; the next registration triggers the sweep.
	n.Clock().Advance(2 * time.Hour)
	late := mk("late-comer", "10.0.2.1")
	register(t, late)

	srv.mu.Lock()
	after := len(srv.regByIP)
	srv.mu.Unlock()
	if after > 1 {
		t.Fatalf("regByIP = %d entries after sweep, want just the fresh registrant", after)
	}
}

func TestFaultInjectionOutage(t *testing.T) {
	_, srv, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)
	if _, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("x.example/", 100, localdb.BlockDNS, "nxdomain"),
	}); err != nil {
		t.Fatal(err)
	}

	srv.Faults().SetOutage(true)
	if _, err := c.FetchBlocked(context.Background(), 100); err == nil {
		t.Fatal("fetch succeeded during injected outage")
	}
	if _, err := c.Report(context.Background(), []localdb.Record{
		blockedRec("y.example/", 100, localdb.BlockDNS, ""),
	}); err == nil {
		t.Fatal("report succeeded during injected outage")
	}
	if srv.Faults().Injected() != 2 {
		t.Fatalf("injected = %d, want 2", srv.Faults().Injected())
	}

	srv.Faults().SetOutage(false)
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil || len(entries) != 1 {
		t.Fatalf("after recovery: entries=%+v err=%v", entries, err)
	}
}

func TestFaultInjectionFailNextAndFilter(t *testing.T) {
	_, srv, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	register(t, c)

	// FailNext: exactly the next n matching requests fail.
	srv.Faults().FailNext(1)
	if _, err := c.FetchBlocked(context.Background(), 100); err == nil {
		t.Fatal("first fetch should hit the injected fault")
	}
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatalf("second fetch should heal: %v", err)
	}

	// A path filter narrows the outage to one AS's fetches.
	srv.Faults().SetPathFilter("asn=200")
	srv.Faults().SetOutage(true)
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatalf("AS-100 fetch must pass the asn=200 filter: %v", err)
	}
	if _, err := c.FetchBlocked(context.Background(), 200); err == nil {
		t.Fatal("AS-200 fetch should fail under the filtered outage")
	}
}

func TestFaultInjectionDropTimesOut(t *testing.T) {
	// Drop mode: the server says nothing, so the client runs into its own
	// (virtual-time) timeout rather than seeing a 503.
	n, srv, mk := gdbWorld(t)
	c := mk("u1", "10.0.0.1")
	c.Timeout = 5 * time.Second // keep the virtual wait short
	register(t, c)
	srv.Faults().SetDrop(true)
	srv.Faults().SetOutage(true)
	start := n.Clock().Now()
	if _, err := c.FetchBlocked(context.Background(), 100); err == nil {
		t.Fatal("fetch succeeded during silent outage")
	}
	if waited := n.Clock().Now().Sub(start); waited < 4*time.Second {
		t.Fatalf("silent drop failed after only %v of virtual time, want a timeout", waited)
	}
}
