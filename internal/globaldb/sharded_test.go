package globaldb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Unix(1_000_000_000, 0)

func mkReports(rng *rand.Rand, n, ases int) []Report {
	out := make([]Report, n)
	for i := range out {
		out[i] = Report{
			URL:    fmt.Sprintf("site%d.example/", rng.Intn(40)),
			ASN:    100 + rng.Intn(ases),
			Stages: []WireStage{{Type: 1, Detail: "nxdomain"}},
			Tm:     t0,
		}
	}
	return out
}

// TestSnapshotCacheNoRebuildOnRepeatedReads is the satellite regression test:
// repeated BlockedForAS reads of an unchanged AS must serve the cached sorted
// snapshot, not re-aggregate and re-sort per call (the seed behavior).
func TestSnapshotCacheNoRebuildOnRepeatedReads(t *testing.T) {
	s := newShardedStore()
	s.addUser("u1")
	if _, ok := s.ingest("u1", t0, []Report{
		{URL: "a.example/", ASN: 100, Tm: t0},
		{URL: "b.example/", ASN: 100, Tm: t0},
	}); !ok {
		t.Fatal("ingest rejected")
	}

	first := s.blockedForAS(100)
	if len(first) != 2 || s.rebuilds.Load() != 1 {
		t.Fatalf("first read: %d entries, %d rebuilds, want 2 entries from 1 rebuild",
			len(first), s.rebuilds.Load())
	}
	for i := 0; i < 50; i++ {
		if got := s.blockedForAS(100); len(got) != 2 {
			t.Fatalf("read %d: %d entries", i, len(got))
		}
		s.fetchResponse(100, "")
	}
	if n := s.rebuilds.Load(); n != 1 {
		t.Fatalf("unchanged AS rebuilt %d times across repeated reads, want 1", n)
	}

	// A write to the AS invalidates exactly once more.
	s.ingest("u1", t0.Add(time.Minute), []Report{{URL: "c.example/", ASN: 100, Tm: t0}})
	s.blockedForAS(100)
	s.blockedForAS(100)
	if n := s.rebuilds.Load(); n != 2 {
		t.Fatalf("rebuilds after one write = %d, want 2", n)
	}

	// Writes to a different AS leave this snapshot alone.
	s.ingest("u1", t0.Add(2*time.Minute), []Report{{URL: "c.example/", ASN: 200, Tm: t0}})
	// (new key changes u1's d, which DOES affect AS 100's votes — so that
	// must rebuild. Re-posting an existing AS-200 key afterwards must not.)
	s.blockedForAS(100)
	if n := s.rebuilds.Load(); n != 3 {
		t.Fatalf("rebuilds after cross-AS d change = %d, want 3", n)
	}
	s.ingest("u1", t0.Add(3*time.Minute), []Report{{URL: "c.example/", ASN: 200, Tm: t0}})
	s.blockedForAS(100)
	if n := s.rebuilds.Load(); n != 3 {
		t.Fatalf("AS-100 rebuilt on an unrelated AS-200 re-post (rebuilds=%d)", n)
	}
}

// TestShardedMatchesLegacy drives an identical randomized workload into both
// stores and requires the same aggregation: entries, order, votes (up to
// float summation order), reporters, and stats.
func TestShardedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	leg, sh := newLegacyStore(), newShardedStore()
	const users, ases = 30, 4
	for u := 0; u < users; u++ {
		id := fmt.Sprintf("user-%02d", u)
		leg.addUser(id)
		sh.addUser(id)
	}
	for round := 0; round < 20; round++ {
		u := fmt.Sprintf("user-%02d", rng.Intn(users))
		batch := mkReports(rng, 1+rng.Intn(6), ases)
		now := t0.Add(time.Duration(round) * time.Minute)
		a1, ok1 := leg.ingest(u, now, batch)
		a2, ok2 := sh.ingest(u, now, batch)
		if a1 != a2 || ok1 != ok2 {
			t.Fatalf("round %d: ingest diverged (%d,%v) vs (%d,%v)", round, a1, ok1, a2, ok2)
		}
	}
	leg.revoke("user-03")
	sh.revoke("user-03")

	for asn := 100; asn < 100+ases; asn++ {
		le, se := leg.blockedForAS(asn), sh.blockedForAS(asn)
		if len(le) != len(se) {
			t.Fatalf("asn %d: %d vs %d entries", asn, len(le), len(se))
		}
		for i := range le {
			l, s := le[i], se[i]
			if l.URL != s.URL || l.Reporters != s.Reporters || !l.LastTp.Equal(s.LastTp) {
				t.Fatalf("asn %d entry %d: %+v vs %+v", asn, i, l, s)
			}
			if math.Abs(l.Votes-s.Votes) > 1e-9 {
				t.Fatalf("asn %d %s: votes %v vs %v", asn, l.URL, l.Votes, s.Votes)
			}
		}
	}

	ls, ss := leg.stats(), sh.stats()
	if ls.Users != ss.Users || ls.BlockedURLs != ss.BlockedURLs ||
		ls.BlockedDomains != ss.BlockedDomains || ls.ASes != ss.ASes ||
		ls.Updates != ss.Updates {
		t.Fatalf("stats diverged: %+v vs %+v", ls, ss)
	}
}

// TestShardedRevokeInvalidates: a revocation must drop the client's votes
// from already-cached snapshots.
func TestShardedRevokeInvalidates(t *testing.T) {
	s := newShardedStore()
	s.addUser("good")
	s.addUser("bad")
	s.ingest("good", t0, []Report{{URL: "a.example/", ASN: 100, Tm: t0}})
	s.ingest("bad", t0, []Report{{URL: "a.example/", ASN: 100, Tm: t0}})
	if e := s.blockedForAS(100); len(e) != 1 || e[0].Reporters != 2 {
		t.Fatalf("before revoke: %+v", e)
	}
	s.revoke("bad")
	if e := s.blockedForAS(100); len(e) != 1 || e[0].Reporters != 1 {
		t.Fatalf("after revoke: %+v", e)
	}
	if _, ok := s.ingest("bad", t0, []Report{{URL: "b.example/", ASN: 100, Tm: t0}}); ok {
		t.Fatal("revoked uuid may not ingest")
	}
}

// TestShardedUpdatesDedup: the updates counter counts unique (uuid, url|asn)
// keys, so ack-lost re-posts cannot inflate it.
func TestShardedUpdatesDedup(t *testing.T) {
	s := newShardedStore()
	s.addUser("u1")
	batch := []Report{
		{URL: "a.example/", ASN: 100, Tm: t0},
		{URL: "b.example/", ASN: 100, Tm: t0},
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.ingest("u1", t0.Add(time.Duration(i)*time.Minute), batch); !ok {
			t.Fatal("ingest rejected")
		}
	}
	if got := s.stats().Updates; got != 2 {
		t.Fatalf("updates = %d after re-posts, want 2 unique", got)
	}
}
