package globaldb

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"csaw/internal/netem"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// failoverWorld runs three independent, identically seeded global DB servers
// (40.0.0.1–3) and returns them plus a replica-set client factory. The
// servers are seeded with the same ingest sequence, so their sharded stores
// converge to byte-identical bodies and tags — a client's cached validator
// stays valid across a failover, exactly as with real replicas.
func failoverWorld(t *testing.T) (*netem.Network, []*Server, func(name, ip string) *Client) {
	t.Helper()
	clock := vtime.New(1000)
	n := netem.New(clock, netem.WithSeed(41), netem.WithJitter(0))
	pk := n.AddAS(100, "ISP", "PK")
	cloud := n.AddAS(900, "Cloud", "US")
	n.SetRTT("pk", "us", 100*time.Millisecond)

	servers := make([]*Server, 3)
	for i := range servers {
		srv := NewServer(clock, nil)
		host := n.MustAddHost(fmt.Sprintf("gdb%d", i), fmt.Sprintf("40.0.0.%d", i+1), "us", cloud)
		if err := srv.Attach(host, 80); err != nil {
			t.Fatal(err)
		}
		srv.store.addUser("seed")
		if _, ok := srv.store.ingest("seed", utc, []Report{
			{URL: "blocked.example/", ASN: 100, Stages: []WireStage{{Type: 1, Detail: "nxdomain"}}, Tm: utc},
		}); !ok {
			t.Fatal("seed ingest rejected")
		}
		servers[i] = srv
	}

	mk := func(name, ip string) *Client {
		h := n.MustAddHost(name, ip, "pk", pk)
		return &Client{
			Replicas: []string{"40.0.0.1:80", "40.0.0.2:80", "40.0.0.3:80"},
			Host:     "globaldb.example", Clock: clock,
			ReportDial: h.Dial, FetchDial: h.Dial,
			Timeout: 5 * time.Second,
		}
	}
	return n, servers, mk
}

// TestClientFailover pins the replica-set contract: a blackholed primary
// (silent drop — the censor signature) times the client out and the same
// call is answered by the next replica; the cached validator tag from the
// primary still 304s there.
func TestClientFailover(t *testing.T) {
	_, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")
	sink := &trace.CollectSink{}
	c.Trace = trace.New(c.Clock, sink)

	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil || len(entries) != 1 {
		t.Fatalf("healthy fetch = %+v, %v", entries, err)
	}
	if got := c.LastServed(); got != "40.0.0.1:80" {
		t.Fatalf("healthy fetch served by %q, want the primary", got)
	}
	if st := c.Stats(); st.Failovers != 0 || st.ReplicaDown != 0 {
		t.Fatalf("healthy stats = %+v", st)
	}

	// Censor blackholes the primary: SYNs vanish, the client times out and
	// must fail over within the same call.
	servers[0].Faults().SetDrop(true)
	servers[0].Faults().SetOutage(true)
	entries, err = c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatalf("fetch did not fail over: %v", err)
	}
	if len(entries) != 1 || entries[0].URL != "blocked.example/" {
		t.Fatalf("failover fetch = %+v", entries)
	}
	if got := c.LastServed(); got != "40.0.0.2:80" {
		t.Fatalf("failover served by %q, want the second replica", got)
	}
	st := c.Stats()
	if st.Failovers != 1 || st.ReplicaDown != 1 {
		t.Fatalf("failover stats = %+v, want 1 failover + 1 down transition", st)
	}
	// Identically converged replicas share tags: the tag cached from the
	// primary validated on the secondary as a 304.
	if st.Fetch304 != 1 {
		t.Fatalf("stats = %+v: primary's tag should have 304'd on the secondary", st)
	}

	// While the primary cools down it is not retried: the next call goes
	// straight to the secondary without a fresh down transition.
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ReplicaDown != 1 || st.Failovers != 2 {
		t.Fatalf("cooldown stats = %+v, want no new down transition", st)
	}
	// Every replica-set call finished its span (one per FetchBlocked).
	if got := len(sink.Records()); got != 3 {
		t.Fatalf("trace recorded %d spans, want 3", got)
	}
}

// TestClientOutageNoFailover pins the failover trigger: an HTTP error status
// is a server answer, not unreachability — the client must surface it, not
// mask it by hopping to another replica (which may disagree about, say, a
// revoked uuid or a rate limit).
func TestClientOutageNoFailover(t *testing.T) {
	_, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")

	servers[0].Faults().SetOutage(true) // 503s, but the server is reachable
	if _, err := c.FetchBlocked(context.Background(), 100); err == nil {
		t.Fatal("503 answer did not surface as an error")
	}
	st := c.Stats()
	if st.Failovers != 0 || st.ReplicaDown != 0 {
		t.Fatalf("stats = %+v: a 503 must not trigger failover", st)
	}
}

// TestClientFailoverCooldownRecovery pins the return path: once the
// cooldown passes, a healed primary is preferred again.
func TestClientFailoverCooldownRecovery(t *testing.T) {
	n, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")
	c.ReplicaCooldown = time.Minute

	servers[0].Faults().SetDrop(true)
	servers[0].Faults().SetOutage(true)
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := c.LastServed(); got != "40.0.0.2:80" {
		t.Fatalf("served by %q, want the second replica", got)
	}

	servers[0].Faults().SetDrop(false)
	servers[0].Faults().SetOutage(false)
	// Still cooling: the healed primary is not retried yet.
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := c.LastServed(); got != "40.0.0.2:80" {
		t.Fatalf("served by %q during cooldown, want the secondary", got)
	}

	n.Clock().Advance(2 * time.Minute)
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := c.LastServed(); got != "40.0.0.1:80" {
		t.Fatalf("served by %q after cooldown, want the primary back", got)
	}
	if st := c.Stats(); st.Failovers != 2 {
		t.Fatalf("stats = %+v, want failovers to stop at 2", st)
	}
}

// TestClientAllReplicasDown pins the exhaustion path: every endpoint
// unreachable surfaces a transport error (after trying them all), and a
// later call with one replica healed succeeds as a last-resort retry even
// inside the cooldown window.
func TestClientAllReplicasDown(t *testing.T) {
	_, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")

	for _, srv := range servers {
		srv.Faults().SetDrop(true)
		srv.Faults().SetOutage(true)
	}
	if _, err := c.FetchBlocked(context.Background(), 100); err == nil {
		t.Fatal("fetch succeeded with every replica blackholed")
	}
	if st := c.Stats(); st.ReplicaDown != 3 {
		t.Fatalf("stats = %+v, want all 3 replicas marked down", st)
	}

	// One replica heals. All endpoints are still inside their cooldown, but
	// a client never refuses to try: cooling endpoints are attempted as a
	// last resort, in preference order.
	servers[2].Faults().SetDrop(false)
	servers[2].Faults().SetOutage(false)
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil || len(entries) != 1 {
		t.Fatalf("last-resort fetch = %+v, %v", entries, err)
	}
	if got := c.LastServed(); got != "40.0.0.3:80" {
		t.Fatalf("served by %q, want the healed third replica", got)
	}
}

// TestClientCooldownExpiryMidCall pins a timing edge: an endpoint that was
// cooling when the call started is still attempted (as a last resort) and,
// with its cooldown having expired while earlier attempts timed out, serves
// the call — the order computed at call start must not freeze an endpoint
// out of the very call during which it becomes retryable.
func TestClientCooldownExpiryMidCall(t *testing.T) {
	_, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")
	c.ReplicaCooldown = 8 * time.Second // shorter than two attempt timeouts

	// Round 1: primary blackholed, client fails over and the primary cools.
	servers[0].Faults().SetDrop(true)
	servers[0].Faults().SetOutage(true)
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := c.LastServed(); got != "40.0.0.2:80" {
		t.Fatalf("served by %q, want the second replica", got)
	}

	// Round 2: the primary heals but is still cooling; the other two go
	// dark. Their two timeouts (5s each) outlast the 8s cooldown, so the
	// last-resort attempt at the primary lands after its cooldown expired.
	servers[0].Faults().SetDrop(false)
	servers[0].Faults().SetOutage(false)
	for _, srv := range servers[1:] {
		srv.Faults().SetDrop(true)
		srv.Faults().SetOutage(true)
	}
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil || len(entries) != 1 {
		t.Fatalf("mid-call recovery fetch = %+v, %v", entries, err)
	}
	if got := c.LastServed(); got != "40.0.0.1:80" {
		t.Fatalf("served by %q, want the healed primary as last resort", got)
	}
	if st := c.Stats(); st.ReplicaDown != 3 {
		t.Fatalf("stats = %+v, want the two dark replicas to add down transitions", st)
	}
}

// TestClientAllCoolingPreferenceOrder pins the exhaustion ordering: when
// every endpoint is cooling, the client still tries them all, in preference
// order — so a fully healed set answers from the primary, not whichever
// replica happened to fail last.
func TestClientAllCoolingPreferenceOrder(t *testing.T) {
	_, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")
	c.ReplicaCooldown = 10 * time.Minute

	for _, srv := range servers {
		srv.Faults().SetDrop(true)
		srv.Faults().SetOutage(true)
	}
	if _, err := c.FetchBlocked(context.Background(), 100); err == nil {
		t.Fatal("fetch succeeded with every replica blackholed")
	}
	for _, srv := range servers {
		srv.Faults().SetDrop(false)
		srv.Faults().SetOutage(false)
	}
	// Everything is deep inside its cooldown window; the call must still go
	// out and must prefer the primary.
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil || len(entries) != 1 {
		t.Fatalf("all-cooling fetch = %+v, %v", entries, err)
	}
	if got := c.LastServed(); got != "40.0.0.1:80" {
		t.Fatalf("served by %q, want the primary first among cooling endpoints", got)
	}
	// Serving clears the primary's cooldown; the next call hits it again
	// without a failover increment.
	before := c.Stats().Failovers
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Failovers != before {
		t.Fatalf("failovers %d -> %d on a healthy-primary call", before, st.Failovers)
	}
}

// TestClientStatsConcurrentFetches hammers one replica-set client from many
// goroutines while the primary is dark — the cooldown map, LastServed, and
// the stats counters are shared state, and this test (run under -race in CI)
// pins that concurrent failovers keep them consistent.
func TestClientStatsConcurrentFetches(t *testing.T) {
	_, servers, mk := failoverWorld(t)
	c := mk("u1", "10.0.0.1")
	servers[0].Faults().SetDrop(true)
	servers[0].Faults().SetOutage(true)

	const workers, rounds = 6, 3
	errs := make(chan error, workers*rounds)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				entries, err := c.FetchBlocked(context.Background(), 100)
				if err != nil {
					errs <- err
					return
				}
				if len(entries) != 1 {
					errs <- fmt.Errorf("got %d entries", len(entries))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent fetch: %v", err)
	}
	st := c.Stats()
	if st.ReplicaDown < 1 || st.ReplicaDown > workers*rounds {
		t.Fatalf("stats = %+v, want 1..%d down transitions", st, workers*rounds)
	}
	if st.Failovers < 1 {
		t.Fatalf("stats = %+v, want at least one failover", st)
	}
	if got := c.LastServed(); got == "40.0.0.1:80" || got == "" {
		t.Fatalf("last served %q, want a live replica", got)
	}
}
