package replica

import (
	"context"
	"fmt"
	"testing"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/httpx"
	"csaw/internal/localdb"
	"csaw/internal/netem"
	"csaw/internal/vtime"
)

// replWorld builds a primary with a replication feed on 40.0.0.1 plus two
// followers on hosts in other worldgen-style regions, and returns everything
// a test needs to drive and observe them.
type replWorld struct {
	n         *netem.Network
	clock     *vtime.Clock
	primary   *globaldb.Server
	followers []*Follower
	set       *Set
	clientPK  *netem.Host
}

func newReplWorld(t *testing.T) *replWorld {
	t.Helper()
	clock := vtime.New(1000)
	n := netem.New(clock, netem.WithSeed(41), netem.WithJitter(0))
	pk := n.AddAS(100, "ISP", "PK")
	cloud := n.AddAS(900, "Cloud", "US")
	for _, pair := range [][2]string{{"pk", "us"}, {"pk", "nl"}, {"pk", "de"}, {"us", "nl"}, {"us", "de"}} {
		n.SetRTT(pair[0], pair[1], 100*time.Millisecond)
	}

	primary, err := globaldb.NewDurableServer(clock, nil, globaldb.StoreOptions{Replicated: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Attach(n.MustAddHost("gdb-primary", "40.0.0.1", "us", cloud), 80); err != nil {
		t.Fatal(err)
	}

	regions := []string{"nl", "de"}
	followers := make([]*Follower, 2)
	for i := range followers {
		host := n.MustAddHost(fmt.Sprintf("gdb-replica-%d", i), fmt.Sprintf("40.0.1.%d", i+1), regions[i], cloud)
		f := &Follower{
			Name:        fmt.Sprintf("replica-%d", i),
			Server:      globaldb.NewServer(clock, nil),
			PrimaryAddr: "40.0.0.1:80",
			PrimaryHost: "globaldb.example",
			Dial:        host.Dial,
			Clock:       clock,
		}
		if err := f.Attach(host, 80); err != nil {
			t.Fatal(err)
		}
		followers[i] = f
	}
	return &replWorld{
		n: n, clock: clock, primary: primary, followers: followers,
		set:      &Set{Followers: followers, Clock: clock, Interval: 10 * time.Second},
		clientPK: n.MustAddHost("client", "10.0.0.1", "pk", pk),
	}
}

func (w *replWorld) client(addr string, addrs ...string) *globaldb.Client {
	return &globaldb.Client{
		Addr: addr, Replicas: addrs, Host: "globaldb.example",
		Clock: w.clock, ReportDial: w.clientPK.Dial, FetchDial: w.clientPK.Dial,
		Timeout: 5 * time.Second,
	}
}

// rawFetch GETs /v1/blocked directly so the test can compare wire bytes and
// validator tags across primary and followers.
func (w *replWorld) rawFetch(t *testing.T, addr string, asn int) (body []byte, tag string) {
	t.Helper()
	hc := &httpx.Client{Dial: w.clientPK.Dial, Clock: w.clock, Timeout: 5 * time.Second}
	req := httpx.NewRequest("GET", "globaldb.example", fmt.Sprintf("%s?asn=%d", globaldb.PathFetch, asn))
	resp, err := hc.Do(context.Background(), addr, req)
	if err != nil {
		t.Fatalf("raw fetch %s: %v", addr, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("raw fetch %s: %d %s", addr, resp.StatusCode, resp.Body)
	}
	return resp.Body, resp.Header.Get("ETag")
}

func seedReports(t *testing.T, c *globaldb.Client, urls ...string) {
	t.Helper()
	if err := c.Register(context.Background(), "human-ok"); err != nil {
		t.Fatal(err)
	}
	recs := make([]localdb.Record, 0, len(urls))
	for _, u := range urls {
		recs = append(recs, localdb.Record{
			URL: u, ASN: 100, Status: localdb.Blocked,
			Stages: []localdb.Stage{{Type: localdb.BlockDNS, Detail: "nxdomain"}},
		})
	}
	if n, err := c.Report(context.Background(), recs); err != nil || n != len(urls) {
		t.Fatalf("report = %d, %v", n, err)
	}
}

// TestFollowerConvergesByteIdentical is the replication pin: after a sync
// round, each follower serves byte-identical /v1/blocked bodies under the
// same validator tags as the primary — a failing-over client's conditional
// fetch state stays valid.
func TestFollowerConvergesByteIdentical(t *testing.T) {
	w := newReplWorld(t)
	seedReports(t, w.client("40.0.0.1:80"), "a.example/", "b.example/", "c.example/")

	if err := w.set.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantBody, wantTag := w.rawFetch(t, "40.0.0.1:80", 100)
	if wantTag == "" {
		t.Fatal("primary served no validator tag")
	}
	for i, addr := range []string{"40.0.1.1:80", "40.0.1.2:80"} {
		body, tag := w.rawFetch(t, addr, 100)
		if string(body) != string(wantBody) {
			t.Fatalf("replica %d body diverges:\n got %s\nwant %s", i, body, wantBody)
		}
		if tag != wantTag {
			t.Fatalf("replica %d tag %q, want %q", i, tag, wantTag)
		}
	}
	for i, f := range w.followers {
		if f.Err() != nil {
			t.Fatalf("replica %d latched error: %v", i, f.Err())
		}
	}
}

// TestFeedLagStats pins the ack-for-free protocol: pulling from offset N
// acknowledges everything below N, so lag shows up one round late and
// settles to zero once the followers pull again at the head.
func TestFeedLagStats(t *testing.T) {
	w := newReplWorld(t)
	seedReports(t, w.client("40.0.0.1:80"), "a.example/", "b.example/")

	feed := w.primary.ReplicationFeed()
	if feed == nil {
		t.Fatal("primary has no replication feed")
	}
	head := feed.Head()
	if head == 0 {
		t.Fatal("no records in the feed after reports")
	}
	if st := Lag(feed); st.MaxLag != head || len(st.Followers) != 0 {
		// No follower has pulled yet: stats list nobody. MaxLag over zero
		// followers is 0 by construction, so assert the follower list only.
		if len(st.Followers) != 0 {
			t.Fatalf("stats before any pull: %+v", st)
		}
	}

	if err := w.set.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// First round: each follower applied everything but its ack still rides
	// the next pull.
	st := Lag(feed)
	if len(st.Followers) != 2 {
		t.Fatalf("stats followers = %+v", st.Followers)
	}
	for _, f := range st.Followers {
		if f.Acked != 0 || f.Lag != head {
			t.Fatalf("after first round: %+v, want acked 0 (ack rides the next pull)", f)
		}
	}
	if got := w.set.Offsets(); got[0] != head || got[1] != head {
		t.Fatalf("offsets = %v, want both at head %d", got, head)
	}

	// Second round: the from=head pulls ack the full history.
	if err := w.set.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = Lag(feed)
	if st.MaxLag != 0 {
		t.Fatalf("stats after ack round: %+v, want zero lag", st)
	}
	for _, f := range st.Followers {
		if f.Acked != head {
			t.Fatalf("follower ack %+v, want %d", f, head)
		}
	}
}

// TestFollowerForwardsWrites pins the follower's API front: reads are
// answered locally, writes travel to the primary and come back via
// replication.
func TestFollowerForwardsWrites(t *testing.T) {
	w := newReplWorld(t)
	// The client only ever talks to follower 0.
	c := w.client("40.0.1.1:80")
	seedReports(t, w.client("40.0.1.1:80"), "via-follower.example/")

	if st := w.primary.StatsSnapshot(); st.Users == 0 || st.Updates != 1 {
		t.Fatalf("primary stats = %+v, want the forwarded registration and report", st)
	}
	// Before replication the follower's local store is empty...
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("follower served %+v before any sync", entries)
	}
	// ...and one sync round later the forwarded write is readable locally.
	if err := w.set.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries, err = c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].URL != "via-follower.example/" {
		t.Fatalf("follower list after sync = %+v", entries)
	}
}

// TestClientFailoverToReplica pins the end-to-end §5 scenario: the censor
// blackholes the primary; a replica-set client fails over to a follower and
// — because replication preserves tags — its cached validator still 304s.
func TestClientFailoverToReplica(t *testing.T) {
	w := newReplWorld(t)
	seedReports(t, w.client("40.0.0.1:80"), "a.example/", "b.example/")
	if err := w.set.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	c := w.client("", "40.0.0.1:80", "40.0.1.1:80", "40.0.1.2:80")
	if _, err := c.FetchBlocked(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := c.LastServed(); got != "40.0.0.1:80" {
		t.Fatalf("served by %q, want the primary first", got)
	}

	w.primary.Faults().SetDrop(true)
	w.primary.Faults().SetOutage(true)
	entries, err := c.FetchBlocked(context.Background(), 100)
	if err != nil {
		t.Fatalf("failover to replica failed: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("replica served %+v", entries)
	}
	if got := c.LastServed(); got != "40.0.1.1:80" {
		t.Fatalf("served by %q, want the first follower", got)
	}
	st := c.Stats()
	if st.Failovers != 1 || st.ReplicaDown != 1 {
		t.Fatalf("client stats = %+v", st)
	}
	if st.Fetch304 != 1 {
		t.Fatalf("client stats = %+v: the primary's tag should 304 on a caught-up follower", st)
	}
}

// TestSetBackgroundLoop drives the ticker-based loops under virtual time:
// new primary writes land on the followers within one interval.
func TestSetBackgroundLoop(t *testing.T) {
	w := newReplWorld(t)
	seedReports(t, w.client("40.0.0.1:80"), "a.example/")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.set.Start(ctx)
	defer w.set.Stop()

	// Let virtual time flow until both loops have drained the feed (the
	// scaled clock keeps the goroutines running while we sleep virtually).
	head := w.primary.ReplicationFeed().Head()
	deadline := w.clock.Now().Add(5 * time.Minute)
	for w.followers[0].Offset() < head || w.followers[1].Offset() < head {
		if w.clock.Now().After(deadline) {
			t.Fatalf("background loops never caught up: offsets %v, head %d", w.set.Offsets(), head)
		}
		w.clock.Sleep(time.Second)
	}
	body, tag := w.rawFetch(t, "40.0.0.1:80", 100)
	got, gotTag := w.rawFetch(t, "40.0.1.1:80", 100)
	if string(got) != string(body) || gotTag != tag {
		t.Fatalf("background sync diverged: %q/%q vs %q/%q", got, gotTag, body, tag)
	}
}

// TestForwardHonorsRequestContext is the regression pin for the forward
// path's context plumbing: a forwarded write used to run under
// context.Background(), so a client that had already hung up (or a closing
// server) left the relay burning its full timeout against an unreachable
// primary. The incoming request's context must bound the upstream call.
func TestForwardHonorsRequestContext(t *testing.T) {
	w := newReplWorld(t)
	// Blackhole the primary so an unbounded forward would only die by its
	// own 30s (virtual) timeout.
	w.primary.Faults().SetDrop(true)
	w.primary.Faults().SetOutage(true)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the relay even started

	body := []byte(`{"uuid":"u","reports":[]}`)
	req := httpx.NewRequest("POST", "globaldb.example", globaldb.PathReport)
	req.Body = body
	start := w.clock.Now()
	resp := w.followers[0].Handler().ServeHTTP(req.WithContext(ctx), netem.Flow{})
	if resp.StatusCode != 502 {
		t.Fatalf("forward with dead context: status %d %s, want 502", resp.StatusCode, resp.Body)
	}
	if elapsed := w.clock.Now().Sub(start); elapsed > time.Second {
		t.Fatalf("forward with dead context burned %v of virtual time, want an immediate abort", elapsed)
	}
}
