package replica

import (
	"context"
	"sync"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/globaldb/storage"
	"csaw/internal/vtime"
)

// Set drives a group of followers against one primary: a background loop
// per follower pulls every Interval until caught up, and SyncAll offers a
// deterministic foreground pump for discrete-event experiments that want
// replication to quiesce at a known virtual instant.
type Set struct {
	Followers []*Follower
	Clock     *vtime.Clock
	// Interval is the pull cadence (virtual); default 30s.
	Interval time.Duration

	mu     sync.Mutex
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func (s *Set) interval() time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return 30 * time.Second
}

// Start launches the background pull loops. Stop (or ctx cancellation)
// ends them.
func (s *Set) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.cancel = cancel
	s.mu.Unlock()
	for _, f := range s.Followers {
		s.wg.Add(1)
		go s.loop(ctx, f)
	}
}

func (s *Set) loop(ctx context.Context, f *Follower) {
	defer s.wg.Done()
	tk := s.Clock.NewTicker(s.interval())
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
			s.drain(ctx, f)
		}
	}
}

// drain pulls until the follower is caught up or a pull fails (the error
// stays latched in the follower for the next Stats reader; the loop
// retries on the next tick).
func (s *Set) drain(ctx context.Context, f *Follower) {
	if f.RoleName() == globaldb.RoleLeader {
		return
	}
	for {
		_, caughtUp, err := f.SyncOnce(ctx)
		if err != nil || caughtUp {
			return
		}
	}
}

// Stop halts the background loops and waits for them to exit.
func (s *Set) Stop() {
	s.mu.Lock()
	cancel := s.cancel
	s.cancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
}

// Tick runs one promotion-controller step on every member, in slice order.
// This is the deterministic foreground pump for promotion-enabled sets: the
// experiment or chaos harness calls it once per virtual sync round instead
// of running background loops. Actions are returned in member order, for
// traces and assertions.
func (s *Set) Tick(ctx context.Context) []string {
	out := make([]string, len(s.Followers))
	for i, f := range s.Followers {
		out[i] = f.Step(ctx)
	}
	return out
}

// SyncAll pumps every follower to the primary's current head and returns
// the first pull error, if any. Deterministic: followers sync in slice
// order, so same-seed runs replicate in the same order. Members currently
// acting as the leader are skipped — the leader has nothing to pull.
func (s *Set) SyncAll(ctx context.Context) error {
	for _, f := range s.Followers {
		if f.RoleName() == globaldb.RoleLeader {
			continue
		}
		for {
			_, caughtUp, err := f.SyncOnce(ctx)
			if err != nil {
				return err
			}
			if caughtUp {
				break
			}
		}
	}
	return nil
}

// Offsets reports each follower's replication offset, in Followers order.
func (s *Set) Offsets() []uint64 {
	out := make([]uint64, len(s.Followers))
	for i, f := range s.Followers {
		out[i] = f.Offset()
	}
	return out
}

// Lag returns the primary-side feed stats (per-follower acknowledged
// offsets and worst lag) given the primary's feed.
func Lag(feed *storage.Feed) storage.FeedStats { return feed.Stats() }
