// Package replica implements asynchronous replication for the global DB
// (§5: blocking access to the global_DB is countered by moving it — here,
// by running several of it). A primary built with
// globaldb.StoreOptions{Replicated: true} streams its write-ahead log
// through an in-memory feed; each Follower runs its own globaldb.Server on
// another emulated host and pulls framed WAL records over plain HTTP
// (GET /v1/repl), applying them in order. Because the log records mutation
// requests and both sides apply them through the same store paths, a
// caught-up follower converges to the primary's exact state — including
// the validator tags behind conditional fetches, so a client failing over
// mid-sync keeps its delta chain.
//
// Replication is pull-based and carries the follower's acknowledgement for
// free: pulling from sequence N acks everything below N, and the primary's
// feed stats report per-follower lag without extra round trips.
//
// A follower also fronts the full client API (Handler): reads are served
// from its local store; writes (registration, reports) are forwarded to
// the primary, which remains the single writer. Forwarding means the
// primary's registration rate limiter sees the follower's IP as the
// source for forwarded registrations — fine for the emulated scenarios,
// where clients register before any failover, but a real deployment would
// propagate the original source.
package replica

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"csaw/internal/globaldb"
	"csaw/internal/globaldb/storage"
	"csaw/internal/httpx"
	"csaw/internal/netem"
	"csaw/internal/trace"
	"csaw/internal/vtime"
)

// defaultMaxBytes bounds one pull's payload.
const defaultMaxBytes = 1 << 20

// Peer names one other member of the replica set for election probes and
// leader reconciliation. Addr is the member's client-facing "ip:port".
type Peer struct {
	Name string
	Addr string
}

// Follower replicates a primary's WAL stream into a local server. With
// Promote set it is also one node of a self-healing replica set: it counts
// missed pulls, runs elections, can be promoted to leader, fences stale
// writers, and resyncs after demotion (see promote.go).
type Follower struct {
	// Name identifies the follower in the primary's lag stats.
	Name string
	// Server is the local store the stream is applied into (and, via
	// Handler, the read side served to clients).
	Server *globaldb.Server
	// PrimaryAddr/PrimaryHost locate the primary; Dial is the follower
	// host's dialer.
	PrimaryAddr string
	PrimaryHost string
	Dial        netem.DialFunc
	Clock       *vtime.Clock
	// Timeout bounds each pull (virtual); default 30s.
	Timeout time.Duration
	// MaxBytes bounds one pull's payload; default 1 MiB.
	MaxBytes int
	// Trace, when set, records one span per pull on the "repl" lane.
	Trace *trace.Tracer

	// Promote enables the promotion controller (Step): missed-pull
	// detection, elections, fencing, demotion and resync. Off by default —
	// plain pull replication behaves exactly as before.
	Promote bool
	// Self is this node's own client-facing "ip:port"; required with
	// Promote (it is what a minted term's leader hint points at).
	Self string
	// Peers lists the other replica-set members, the current primary
	// included, for election probes and reconciliation.
	Peers []Peer
	// MissedThreshold is how many consecutive failed pulls declare the
	// primary dead and trigger an election; default 3.
	MissedThreshold int

	mu      sync.Mutex
	offset  uint64
	applied int64
	lastErr error
	seq     uint64

	// Promotion state, all guarded by mu.
	role     string // globaldb.RoleLeader or "" / RoleFollower
	primary  string // current primary override; "" means PrimaryAddr
	missed   int    // consecutive failed pulls
	resync   bool   // a push-then-reset toward resyncTo is pending
	resyncTo string
	pushFrom uint64 // feed records below this are already held by the leader
}

func (f *Follower) timeout() time.Duration {
	if f.Timeout > 0 {
		return f.Timeout
	}
	return 30 * time.Second
}

// Offset returns the next sequence this follower will pull from (= records
// applied since attach).
func (f *Follower) Offset() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.offset
}

// SetOffset primes the pull offset, used when a restarted node recovered n
// records from its own WAL and should continue pulling from there.
func (f *Follower) SetOffset(n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offset = n
}

// RoleName returns the node's current role.
func (f *Follower) RoleName() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.role == "" {
		return globaldb.RoleFollower
	}
	return f.role
}

// SetRole sets the node's role; wiring marks the founding primary's node
// with globaldb.RoleLeader.
func (f *Follower) SetRole(role string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.role = role
}

// primaryAddr is the address the node currently pulls from and forwards to:
// the configured PrimaryAddr until a leader change repoints it.
func (f *Follower) primaryAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.primary != "" {
		return f.primary
	}
	return f.PrimaryAddr
}

func (f *Follower) repoint(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.primary = addr
}

// Err returns the most recent pull error, cleared by a successful pull.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

func (f *Follower) nextSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	return f.seq
}

// SyncOnce pulls one batch from the primary and applies it. caughtUp is
// true when the follower reached the head the primary reported in this
// pull's response.
func (f *Follower) SyncOnce(ctx context.Context) (applied int, caughtUp bool, err error) {
	if f.Trace != nil {
		sp := f.Trace.Start(f.Name, f.nextSeq(), globaldb.PathRepl)
		defer func() {
			sp.EventNum("repl", "applied", "", float64(applied))
			status := "ok"
			if err != nil {
				status = "error"
			}
			sp.Finish("replica", status, err)
		}()
	}
	f.mu.Lock()
	from := f.offset
	f.mu.Unlock()
	maxBytes := f.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultMaxBytes
	}
	target := fmt.Sprintf("%s?from=%d&follower=%s&max=%d", globaldb.PathRepl, from, f.Name, maxBytes)
	req := httpx.NewRequest("GET", f.PrimaryHost, target)
	hc := &httpx.Client{Dial: f.Dial, Clock: f.Clock, Timeout: f.timeout()}
	resp, err := hc.Do(ctx, f.primaryAddr(), req)
	if err != nil {
		return 0, false, f.fail(fmt.Errorf("replica: pull: %w", err))
	}
	if resp.StatusCode == globaldb.StatusFenced {
		// The node we pull from is no longer the leader. Chase its hint so
		// the next pull lands on the current lineage.
		f.adoptHint(resp)
		return 0, false, f.fail(fmt.Errorf("replica: pull: primary fenced (term %s, leader %s)",
			resp.Header.Get(globaldb.TermHeader), resp.Header.Get(globaldb.LeaderHeader)))
	}
	if resp.StatusCode != 200 {
		return 0, false, f.fail(fmt.Errorf("replica: pull: %d %s", resp.StatusCode, resp.Body))
	}
	next, err := strconv.ParseUint(resp.Header.Get(globaldb.ReplNextHeader), 10, 64)
	if err != nil {
		return 0, false, f.fail(fmt.Errorf("replica: bad next header: %w", err))
	}
	head, err := strconv.ParseUint(resp.Header.Get(globaldb.ReplHeadHeader), 10, 64)
	if err != nil {
		return 0, false, f.fail(fmt.Errorf("replica: bad head header: %w", err))
	}
	if f.Promote {
		if diverged := f.checkDivergence(resp, from, head); diverged != nil {
			return 0, false, f.fail(diverged)
		}
	}
	if _, err := storage.Replay(bytes.NewReader(resp.Body), func(rec *storage.Record) error {
		if err := f.Server.Absorb(rec); err != nil {
			return err
		}
		applied++
		return nil
	}); err != nil {
		// A truncated or corrupt batch would desync the offset from what was
		// actually applied; refuse it rather than guessing.
		return applied, false, f.fail(fmt.Errorf("replica: batch at %d: %w", from+uint64(applied), err))
	}
	if uint64(applied) != next-from {
		return applied, false, f.fail(fmt.Errorf("replica: applied %d records, primary advanced %d", applied, next-from))
	}
	f.mu.Lock()
	f.offset = next
	f.applied += int64(applied)
	f.lastErr = nil
	f.mu.Unlock()
	return applied, next >= head, nil
}

func (f *Follower) fail(err error) error {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
	return err
}

// Handler fronts the full client API on the node. Replica-set control
// endpoints (status, demote) are answered here for every role. A leader
// serves everything from its local server. A follower serves GETs (list
// fetches, stats) from the local replica and forwards writes to the
// primary over the follower's dialer, chasing one fencing hint so a write
// that lands mid-promotion still reaches the new leader.
func (f *Follower) Handler() httpx.Handler {
	local := f.Server.Handler()
	return httpx.HandlerFunc(func(req *httpx.Request, flow netem.Flow) *httpx.Response {
		path := req.Target
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		switch {
		case req.Method == "GET" && path == globaldb.PathReplStatus:
			return jsonResponse(200, f.Status())
		case req.Method == "POST" && path == globaldb.PathReplDemote:
			return f.handleDemote(req)
		}
		if req.Method == "GET" || f.RoleName() == globaldb.RoleLeader {
			return local.ServeHTTP(req, flow)
		}
		return f.forward(req)
	})
}

// forward relays one write to the current primary. The incoming request's
// context bounds the upstream call: a client that hung up (or a closing
// server) cancels the forward instead of leaving it to run out its own
// timeout against an unreachable primary.
func (f *Follower) forward(req *httpx.Request) *httpx.Response {
	fwd := httpx.NewRequest(req.Method, f.PrimaryHost, req.Target)
	for k, vs := range req.Header {
		for _, v := range vs {
			fwd.Header.Add(k, v)
		}
	}
	fwd.Body = req.Body
	hc := &httpx.Client{Dial: f.Dial, Clock: f.Clock, Timeout: f.timeout()}
	resp, err := hc.Do(req.Context(), f.primaryAddr(), fwd)
	if err != nil {
		return httpx.NewResponse(502, []byte("primary unreachable: "+err.Error()))
	}
	if resp.StatusCode == globaldb.StatusFenced {
		if hint := resp.Header.Get(globaldb.LeaderHeader); hint != "" && hint != f.primaryAddr() {
			f.adoptHint(resp)
			if retried, err := hc.Do(req.Context(), hint, fwd); err == nil {
				return retried
			}
		}
	}
	return resp
}

// Attach serves the client API (Handler) on host:port.
func (f *Follower) Attach(host *netem.Host, port int) error {
	l, err := host.Listen(port)
	if err != nil {
		return err
	}
	httpx.Serve(l, f.Handler())
	return nil
}
